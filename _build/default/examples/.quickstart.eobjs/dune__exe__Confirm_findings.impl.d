examples/confirm_findings.ml: List Printf Wap_confirm Wap_core Wap_php Wap_taint
