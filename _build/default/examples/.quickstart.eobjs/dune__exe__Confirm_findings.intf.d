examples/confirm_findings.mli:
