examples/custom_sanitizer.ml: List Printf Wap_catalog Wap_core Wap_taint
