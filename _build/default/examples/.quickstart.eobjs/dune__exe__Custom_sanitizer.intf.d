examples/custom_sanitizer.mli:
