examples/nosqli_weapon.ml: Filename List Printf Sys Wap_core Wap_fixer Wap_taint Wap_weapon
