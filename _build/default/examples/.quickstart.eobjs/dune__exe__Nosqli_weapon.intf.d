examples/nosqli_weapon.mli:
