examples/quickstart.ml: List Printf String Wap_core Wap_fixer Wap_php Wap_taint
