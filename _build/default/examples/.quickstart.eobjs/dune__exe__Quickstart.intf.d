examples/quickstart.mli:
