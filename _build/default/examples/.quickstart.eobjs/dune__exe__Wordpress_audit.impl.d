examples/wordpress_audit.ml: List Printf String Wap_core Wap_corpus Wap_taint Wap_weapon
