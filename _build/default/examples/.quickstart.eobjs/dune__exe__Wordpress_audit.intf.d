examples/wordpress_audit.mli:
