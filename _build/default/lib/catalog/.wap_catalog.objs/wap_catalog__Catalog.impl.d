lib/catalog/catalog.pp.ml: Hashtbl List Ppx_deriving_runtime Set String Submodule Vuln_class
