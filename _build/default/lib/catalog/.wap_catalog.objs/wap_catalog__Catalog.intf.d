lib/catalog/catalog.pp.mli: Ppx_deriving_runtime Submodule Vuln_class
