lib/catalog/spec_file.pp.ml: Buffer Catalog List Option Printf String Submodule Vuln_class
