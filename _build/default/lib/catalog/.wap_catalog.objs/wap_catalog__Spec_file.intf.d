lib/catalog/spec_file.pp.mli: Catalog Vuln_class
