lib/catalog/submodule.pp.ml: Ppx_deriving_runtime Printf Vuln_class
