lib/catalog/submodule.pp.mli: Ppx_deriving_runtime Vuln_class
