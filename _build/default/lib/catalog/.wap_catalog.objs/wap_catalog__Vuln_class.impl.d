lib/catalog/vuln_class.pp.ml: List Ppx_deriving_runtime String
