lib/catalog/vuln_class.pp.mli: Ppx_deriving_runtime
