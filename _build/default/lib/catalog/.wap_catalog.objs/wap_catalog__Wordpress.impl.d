lib/catalog/wordpress.pp.ml: Catalog Vuln_class
