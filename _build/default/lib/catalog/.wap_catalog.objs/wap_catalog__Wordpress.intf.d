lib/catalog/wordpress.pp.mli: Catalog
