(** Entry points, sensitive sinks and sanitization functions per
    vulnerability class.

    In the restructured WAP these three sets live in external files (the
    ep/ss/san files of Fig. 2) so users can extend a detector without
    recompiling; {!Spec_file} provides that serialization.  This module
    defines the shipped defaults. *)

type source =
  | Src_superglobal of string  (** e.g. [_GET]: any [$_GET[...]] access *)
  | Src_fn of string
      (** a function whose return value is attacker-controlled, e.g.
          database fetch results for stored XSS *)
[@@deriving show, eq, ord]

type sink =
  | Sink_fn of string * int list
      (** named function; the int list is the set of dangerous argument
          positions (empty = any argument) *)
  | Sink_method of string * string
      (** [obj, method]: method call on a named variable, e.g.
          [$wpdb->query] — obj is matched without the [$] *)
  | Sink_echo  (** [echo] / [print] / [printf] output constructs *)
  | Sink_include  (** [include] / [require] constructs *)
[@@deriving show, eq, ord]

type sanitizer =
  | San_fn of string
  | San_method of string * string  (** e.g. [$wpdb->prepare] *)
[@@deriving show, eq, ord]

type spec = {
  vclass : Vuln_class.t;
  submodule : Submodule.t;
  sources : source list;
  sinks : sink list;
  sanitizers : sanitizer list;
}
[@@deriving show, eq]

(** The superglobal arrays every detector treats as tainted input. *)
let default_superglobals =
  [ "_GET"; "_POST"; "_COOKIE"; "_REQUEST"; "_SERVER"; "_FILES" ]

let default_sources = List.map (fun s -> Src_superglobal s) default_superglobals

let fn ?(args = []) name = Sink_fn (name, args)

(* ------------------------------------------------------------------ *)
(* Per-class defaults.                                                 *)

let sql_write_sinks =
  [ fn "mysql_query"; fn "mysql_unbuffered_query"; fn "mysql_db_query";
    fn "mysqli_query" ~args:[ 1 ]; fn "mysqli_real_query" ~args:[ 1 ];
    fn "mysqli_multi_query" ~args:[ 1 ];
    Sink_method ("mysqli", "query"); Sink_method ("mysqli", "multi_query");
    Sink_method ("db", "query"); Sink_method ("pdo", "query");
    Sink_method ("pdo", "exec");
    fn "pg_query"; fn "pg_send_query"; fn "sqlite_query"; fn "sqlite_exec" ]

let sql_sanitizers =
  [ San_fn "mysql_real_escape_string"; San_fn "mysql_escape_string";
    San_fn "mysqli_real_escape_string"; San_fn "mysqli_escape_string";
    San_method ("mysqli", "real_escape_string");
    San_fn "pg_escape_string"; San_fn "sqlite_escape_string";
    San_fn "addslashes" ]

let xss_sanitizers =
  [ San_fn "htmlspecialchars"; San_fn "htmlentities"; San_fn "strip_tags";
    San_fn "urlencode"; San_fn "rawurlencode" ]

let fetch_sources =
  (* functions whose results carry data previously stored by users: the
     secondary entry points of stored XSS *)
  [ Src_fn "mysql_fetch_array"; Src_fn "mysql_fetch_assoc"; Src_fn "mysql_fetch_row";
    Src_fn "mysql_fetch_object"; Src_fn "mysql_result";
    Src_fn "mysqli_fetch_array"; Src_fn "mysqli_fetch_assoc"; Src_fn "mysqli_fetch_row";
    Src_fn "pg_fetch_array"; Src_fn "pg_fetch_assoc"; Src_fn "pg_fetch_row";
    Src_fn "file_get_contents"; Src_fn "fgets"; Src_fn "fread" ]

(* file_get_contents / file_put_contents are owned by the CS detector
   (Table IV); leaving them out here keeps the "Files" and "CS" report
   groups disjoint. *)
let file_sinks =
  [ fn "fopen"; fn "file"; fn "readfile"; fn "unlink";
    fn "copy"; fn "rename"; fn "mkdir"; fn "rmdir"; fn "opendir"; fn "scandir";
    fn "glob" ]

let path_sanitizers = [ San_fn "basename"; San_fn "realpath"; San_fn "pathinfo" ]

(** The tool's own fix functions count as sanitizers: corrected code
    must not be re-flagged.  Names match {!Wap_fixer.Fix.stock}. *)
let stock_fix_name (vclass : Vuln_class.t) : string =
  match vclass with
  | Sqli -> "san_sqli"
  | Xss_reflected -> "san_out"
  | Xss_stored -> "san_wdata"
  | Osci -> "san_osci"
  | Phpci -> "san_eval"
  | Rfi | Lfi | Dt_pt | Scd -> "san_mix"
  | Ldapi -> "san_ldap"
  | Xpathi -> "san_xpath"
  | Nosqli -> "san_nosqli"
  | Hi | Ei -> "san_hei"
  | Cs -> "san_write"
  | Sf -> "san_sf"
  | Wp_sqli -> "san_wpsqli"
  | Custom name -> "san_" ^ name

let default_spec (vclass : Vuln_class.t) : spec =
  let mk ?(sources = default_sources) ?(sinks = []) ?(sanitizers = []) () =
    { vclass; submodule = Submodule.of_class vclass; sources; sinks;
      sanitizers = San_fn (stock_fix_name vclass) :: sanitizers }
  in
  match vclass with
  | Sqli -> mk ~sinks:sql_write_sinks ~sanitizers:sql_sanitizers ()
  | Xss_reflected ->
      mk
        ~sinks:[ Sink_echo; fn "printf"; fn "vprintf"; fn "print_r"; fn "exit" ]
        ~sanitizers:xss_sanitizers ()
  | Xss_stored ->
      mk
        ~sources:(default_sources @ fetch_sources)
        ~sinks:[ Sink_echo; fn "printf"; fn "print_r" ]
        ~sanitizers:xss_sanitizers ()
  | Rfi | Lfi ->
      mk ~sinks:[ Sink_include ] ~sanitizers:path_sanitizers ()
  | Dt_pt -> mk ~sinks:file_sinks ~sanitizers:path_sanitizers ()
  | Scd ->
      mk
        ~sinks:[ fn "show_source"; fn "highlight_file"; fn "php_strip_whitespace" ]
        ~sanitizers:path_sanitizers ()
  | Osci ->
      mk
        ~sinks:[ fn "exec"; fn "system"; fn "shell_exec"; fn "passthru"; fn "popen";
                 fn "proc_open"; fn "pcntl_exec" ]
        ~sanitizers:[ San_fn "escapeshellarg"; San_fn "escapeshellcmd" ] ()
  | Phpci ->
      mk
        ~sinks:[ fn "eval"; fn "assert"; fn "create_function"; fn "preg_replace" ]
        ~sanitizers:[] ()
  (* --- new classes (Table IV + Section IV-C) --- *)
  | Sf ->
      mk ~sinks:[ fn "setcookie"; fn "setrawcookie"; fn "session_id" ] ~sanitizers:[] ()
  | Cs ->
      mk
        ~sinks:[ fn "file_put_contents"; fn "file_get_contents" ]
        ~sanitizers:[ San_fn "strip_tags" ] ()
  | Ldapi ->
      mk
        ~sinks:[ fn "ldap_add"; fn "ldap_delete"; fn "ldap_list"; fn "ldap_read"; fn "ldap_search" ]
        ~sanitizers:[ San_fn "ldap_escape" ] ()
  | Xpathi ->
      mk
        ~sinks:[ fn "xpath_eval"; fn "xptr_eval"; fn "xpath_eval_expression" ]
        ~sanitizers:[] ()
  | Nosqli ->
      (* the NoSQLI weapon of Section IV-C1 *)
      mk
        ~sinks:[ Sink_method ("collection", "find"); Sink_method ("collection", "findone");
                 Sink_method ("collection", "findandmodify"); Sink_method ("collection", "insert");
                 Sink_method ("collection", "remove"); Sink_method ("collection", "save");
                 Sink_method ("db", "execute");
                 fn "find"; fn "findone"; fn "findandmodify" ]
        ~sanitizers:[ San_fn "mysql_real_escape_string" ] ()
  | Hi -> mk ~sinks:[ fn "header" ] ~sanitizers:[] ()
  | Ei -> mk ~sinks:[ fn "mail" ] ~sanitizers:[] ()
  | Wp_sqli ->
      mk
        ~sinks:[ Sink_method ("wpdb", "query"); Sink_method ("wpdb", "get_results");
                 Sink_method ("wpdb", "get_row"); Sink_method ("wpdb", "get_var");
                 Sink_method ("wpdb", "get_col") ]
        ~sanitizers:[ San_method ("wpdb", "prepare"); San_fn "esc_sql"; San_fn "like_escape" ]
        ()
  | Custom name ->
      { vclass; submodule = Submodule.Generated name; sources = default_sources;
        sinks = []; sanitizers = [] }

(** All default specs for a list of classes. *)
let specs_for classes = List.map default_spec classes

(** Lookup tables used by the taint analyzer: quick membership tests. *)
module Lookup = struct
  module SS = Set.Make (String)

  type t = {
    superglobals : SS.t;
    source_fns : SS.t;
    sink_fns : (string, Vuln_class.t * int list) Hashtbl.t;
    sink_methods : (string * string, Vuln_class.t) Hashtbl.t;
    echo_classes : Vuln_class.t list;
    include_classes : Vuln_class.t list;
    san_fns : SS.t;
    san_methods : (string * string, unit) Hashtbl.t;
  }

  let of_specs (specs : spec list) : t =
    let superglobals = ref SS.empty in
    let source_fns = ref SS.empty in
    let sink_fns = Hashtbl.create 64 in
    let sink_methods = Hashtbl.create 16 in
    let echo_classes = ref [] in
    let include_classes = ref [] in
    let san_fns = ref SS.empty in
    let san_methods = Hashtbl.create 16 in
    List.iter
      (fun spec ->
        List.iter
          (function
            | Src_superglobal s -> superglobals := SS.add s !superglobals
            | Src_fn f -> source_fns := SS.add (String.lowercase_ascii f) !source_fns)
          spec.sources;
        List.iter
          (function
            | Sink_fn (f, args) ->
                Hashtbl.add sink_fns (String.lowercase_ascii f) (spec.vclass, args)
            | Sink_method (o, m) ->
                Hashtbl.add sink_methods
                  (String.lowercase_ascii o, String.lowercase_ascii m)
                  spec.vclass
            | Sink_echo -> echo_classes := spec.vclass :: !echo_classes
            | Sink_include -> include_classes := spec.vclass :: !include_classes)
          spec.sinks;
        List.iter
          (function
            | San_fn f -> san_fns := SS.add (String.lowercase_ascii f) !san_fns
            | San_method (o, m) ->
                Hashtbl.replace san_methods
                  (String.lowercase_ascii o, String.lowercase_ascii m)
                  ())
          spec.sanitizers)
      specs;
    {
      superglobals = !superglobals;
      source_fns = !source_fns;
      sink_fns;
      sink_methods;
      echo_classes = List.rev !echo_classes;
      include_classes = List.rev !include_classes;
      san_fns = !san_fns;
      san_methods;
    }

  let is_superglobal t name = SS.mem name t.superglobals
  let is_source_fn t name = SS.mem (String.lowercase_ascii name) t.source_fns

  let sink_classes_of_fn t name =
    Hashtbl.find_all t.sink_fns (String.lowercase_ascii name)

  let sink_class_of_method t obj meth =
    Hashtbl.find_all t.sink_methods
      (String.lowercase_ascii obj, String.lowercase_ascii meth)

  let is_sanitizer_fn t name = SS.mem (String.lowercase_ascii name) t.san_fns

  let is_sanitizer_method t obj meth =
    Hashtbl.mem t.san_methods (String.lowercase_ascii obj, String.lowercase_ascii meth)
end
