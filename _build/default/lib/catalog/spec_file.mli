(** Textual ep/ss/san specification files.

    The restructured WAP stores each detector's entry points (ep),
    sensitive sinks (ss) and sanitization functions (san) in external
    files so that users can add items without recompiling
    (Section III-A).  The format is line-based:

    {v
    # comment
    entry: _GET
    entry_fn: mysql_fetch_assoc
    sink: mysql_query
    sink: mysqli_query args=1
    sink_method: wpdb query
    sink_echo:
    sink_include:
    sanitizer: esc_sql
    sanitizer_method: wpdb prepare
    v} *)

(** Malformed spec file: message and 1-based line number. *)
exception Parse_error of string * int

(** Parse a spec file body into sources, sinks and sanitizers. *)
val parse :
  string -> Catalog.source list * Catalog.sink list * Catalog.sanitizer list

(** Serialize a spec to the file format (inverse of {!parse}). *)
val to_string : Catalog.spec -> string

(** Build a spec for [vclass] from file contents; an empty entry-point
    section falls back to the default superglobals. *)
val spec_of_string : vclass:Vuln_class.t -> string -> Catalog.spec

val load_file : vclass:Vuln_class.t -> string -> Catalog.spec
val save_file : Catalog.spec -> string -> unit
