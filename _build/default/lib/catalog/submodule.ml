(** The detector sub-modules of the restructured code analyzer (Fig. 2).

    Every vulnerability class is handled by one sub-module; the
    [Generated] case corresponds to detectors produced by the weapon
    generator (the "new vulnerability detector" boxes of the figure). *)

type t =
  | Rce_file  (** RCE & file injection: OSCI, PHPCI, RFI, LFI, DT, SCD (+SF) *)
  | Client_side  (** client-side injection: reflected and stored XSS (+CS) *)
  | Query  (** query injection: SQLI (+LDAPI, XPathI) *)
  | Generated of string  (** a weapon-generated detector, by weapon name *)
[@@deriving show, eq, ord]

let name = function
  | Rce_file -> "RCE & file injection"
  | Client_side -> "client-side injection"
  | Query -> "query injection"
  | Generated w -> Printf.sprintf "generated detector (%s)" w

(** Sub-module that hosts each built-in class.  The assignments for the
    four reused classes (SF, CS, LDAPI, XPathI) follow Table IV. *)
let of_class : Vuln_class.t -> t = function
  | Vuln_class.Osci | Phpci | Rfi | Lfi | Dt_pt | Scd -> Rce_file
  | Sf -> Rce_file
  | Xss_reflected | Xss_stored -> Client_side
  | Cs -> Client_side
  | Sqli -> Query
  | Ldapi | Xpathi -> Query
  | Nosqli -> Generated "nosqli"
  | Hi | Ei -> Generated "hei"
  | Wp_sqli -> Generated "wpsqli"
  | Custom w -> Generated w

let all_static = [ Rce_file; Client_side; Query ]

(** Classes hosted by a given static sub-module (inverse of
    {!of_class}, restricted to built-ins). *)
let classes_of = function
  | Rce_file -> Vuln_class.[ Osci; Phpci; Rfi; Lfi; Dt_pt; Scd; Sf ]
  | Client_side -> Vuln_class.[ Xss_reflected; Xss_stored; Cs ]
  | Query -> Vuln_class.[ Sqli; Ldapi; Xpathi ]
  | Generated "nosqli" -> [ Vuln_class.Nosqli ]
  | Generated "hei" -> Vuln_class.[ Hi; Ei ]
  | Generated "wpsqli" -> [ Vuln_class.Wp_sqli ]
  | Generated w -> [ Vuln_class.Custom w ]
