(** The detector sub-modules of the restructured code analyzer (Fig. 2).

    Every vulnerability class is handled by one sub-module; the
    [Generated] case corresponds to detectors produced by the weapon
    generator (the "new vulnerability detector" boxes of the figure). *)

type t =
  | Rce_file  (** RCE & file injection: OSCI, PHPCI, RFI, LFI, DT, SCD (+SF) *)
  | Client_side  (** client-side injection: reflected and stored XSS (+CS) *)
  | Query  (** query injection: SQLI (+LDAPI, XPathI) *)
  | Generated of string  (** a weapon-generated detector, by weapon name *)
[@@deriving show, eq, ord]

(** Display name, e.g. ["RCE & file injection"]. *)
val name : t -> string

(** Sub-module hosting each built-in class; the assignments of the four
    reused classes (SF, CS, LDAPI, XPathI) follow Table IV. *)
val of_class : Vuln_class.t -> t

(** The three static sub-modules. *)
val all_static : t list

(** Classes hosted by a sub-module (inverse of {!of_class}, restricted
    to built-ins). *)
val classes_of : t -> Vuln_class.t list
