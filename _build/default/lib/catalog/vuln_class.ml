(** The vulnerability classes handled by the tool.

    WAP v2.1 ships the first eight (counting reflected and stored XSS as
    two detectors of one class, as the paper does); the DSN'16 extension
    adds seven more plus the WordPress-specific SQLI weapon. *)

type t =
  (* original WAP v2.1 *)
  | Sqli  (** SQL injection *)
  | Xss_reflected  (** reflected cross-site scripting *)
  | Xss_stored  (** stored cross-site scripting *)
  | Rfi  (** remote file inclusion *)
  | Lfi  (** local file inclusion *)
  | Dt_pt  (** directory / path traversal *)
  | Osci  (** OS command injection *)
  | Scd  (** source code disclosure *)
  | Phpci  (** PHP command injection *)
  (* new in WAPe *)
  | Ldapi  (** LDAP injection *)
  | Xpathi  (** XPath injection *)
  | Nosqli  (** NoSQL (MongoDB) injection *)
  | Cs  (** comment spamming injection *)
  | Hi  (** header injection / HTTP response splitting *)
  | Ei  (** email injection *)
  | Sf  (** session fixation *)
  (* weapon-defined *)
  | Wp_sqli  (** SQLI through WordPress [$wpdb] *)
  | Custom of string  (** a user weapon's class, by weapon name *)
[@@deriving show, eq, ord]

let all_builtin =
  [ Sqli; Xss_reflected; Xss_stored; Rfi; Lfi; Dt_pt; Osci; Scd; Phpci;
    Ldapi; Xpathi; Nosqli; Cs; Hi; Ei; Sf; Wp_sqli ]

(** Classes detected by the original WAP v2.1 tool. *)
let wap_v21 = [ Sqli; Xss_reflected; Xss_stored; Rfi; Lfi; Dt_pt; Osci; Scd; Phpci ]

(** Classes detected by the extended tool (WAPe) out of the box. *)
let wape = wap_v21 @ [ Ldapi; Xpathi; Nosqli; Cs; Hi; Ei; Sf ]

(** The seven classes the paper adds (Section IV-A). *)
let new_in_wape = [ Ldapi; Xpathi; Nosqli; Cs; Hi; Ei; Sf ]

let acronym = function
  | Sqli -> "SQLI"
  | Xss_reflected -> "XSS-R"
  | Xss_stored -> "XSS-S"
  | Rfi -> "RFI"
  | Lfi -> "LFI"
  | Dt_pt -> "DT/PT"
  | Osci -> "OSCI"
  | Scd -> "SCD"
  | Phpci -> "PHPCI"
  | Ldapi -> "LDAPI"
  | Xpathi -> "XPathI"
  | Nosqli -> "NoSQLI"
  | Cs -> "CS"
  | Hi -> "HI"
  | Ei -> "EI"
  | Sf -> "SF"
  | Wp_sqli -> "WP-SQLI"
  | Custom name -> String.uppercase_ascii name

let description = function
  | Sqli -> "SQL injection"
  | Xss_reflected -> "reflected cross-site scripting"
  | Xss_stored -> "stored cross-site scripting"
  | Rfi -> "remote file inclusion"
  | Lfi -> "local file inclusion"
  | Dt_pt -> "directory traversal / path traversal"
  | Osci -> "OS command injection"
  | Scd -> "source code disclosure"
  | Phpci -> "PHP command injection"
  | Ldapi -> "LDAP injection"
  | Xpathi -> "XPath injection"
  | Nosqli -> "NoSQL (MongoDB) injection"
  | Cs -> "comment spamming injection"
  | Hi -> "header injection / HTTP response splitting"
  | Ei -> "email injection"
  | Sf -> "session fixation"
  | Wp_sqli -> "SQL injection through WordPress $wpdb"
  | Custom name -> "user-defined class " ^ name

(** Command-line flag that activates the detector, e.g. [-sqli]. *)
let flag = function
  | Sqli -> "-sqli"
  | Xss_reflected -> "-xss"
  | Xss_stored -> "-xss"
  | Rfi -> "-rfi"
  | Lfi -> "-lfi"
  | Dt_pt -> "-dtpt"
  | Osci -> "-osci"
  | Scd -> "-scd"
  | Phpci -> "-phpci"
  | Ldapi -> "-ldapi"
  | Xpathi -> "-xpathi"
  | Nosqli -> "-nosqli"
  | Cs -> "-cs"
  | Hi -> "-hei"
  | Ei -> "-hei"
  | Sf -> "-sf"
  | Wp_sqli -> "-wpsqli"
  | Custom name -> "-" ^ String.lowercase_ascii name

let of_acronym s =
  let s = String.uppercase_ascii s in
  List.find_opt (fun c -> String.uppercase_ascii (acronym c) = s) all_builtin

(** Grouping used in the paper's Tables VI/VII, where RFI, LFI and DT/PT
    are reported together as "Files". *)
let report_group = function
  | Rfi | Lfi | Dt_pt -> "Files"
  | Xss_reflected | Xss_stored -> "XSS"
  | Wp_sqli -> "SQLI"
  | c -> acronym c

let is_original c = List.mem c wap_v21
