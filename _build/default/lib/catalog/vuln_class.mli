(** The vulnerability classes handled by the tool.

    WAP v2.1 ships the first nine detectors (the paper counts reflected
    and stored XSS as one class: "eight classes"); the DSN'16 extension
    adds seven more plus the WordPress-specific SQLI weapon. *)

type t =
  | Sqli  (** SQL injection *)
  | Xss_reflected  (** reflected cross-site scripting *)
  | Xss_stored  (** stored cross-site scripting *)
  | Rfi  (** remote file inclusion *)
  | Lfi  (** local file inclusion *)
  | Dt_pt  (** directory / path traversal *)
  | Osci  (** OS command injection *)
  | Scd  (** source code disclosure *)
  | Phpci  (** PHP command injection *)
  | Ldapi  (** LDAP injection *)
  | Xpathi  (** XPath injection *)
  | Nosqli  (** NoSQL (MongoDB) injection *)
  | Cs  (** comment spamming injection *)
  | Hi  (** header injection / HTTP response splitting *)
  | Ei  (** email injection *)
  | Sf  (** session fixation *)
  | Wp_sqli  (** SQLI through WordPress [$wpdb] *)
  | Custom of string  (** a user weapon's class, by weapon name *)
[@@deriving show, eq, ord]

(** Every built-in class, in declaration order. *)
val all_builtin : t list

(** Classes detected by the original WAP v2.1 tool. *)
val wap_v21 : t list

(** Classes detected by the extended tool (WAPe) out of the box. *)
val wape : t list

(** The seven classes the paper adds (Section IV-A). *)
val new_in_wape : t list

(** Short name used in reports, e.g. ["SQLI"], ["XSS-R"]. *)
val acronym : t -> string

(** Human-readable description. *)
val description : t -> string

(** Command-line flag that activates the detector, e.g. ["-nosqli"]. *)
val flag : t -> string

(** Inverse of {!acronym}, case-insensitive; [None] for unknown names. *)
val of_acronym : string -> t option

(** Grouping used in the paper's Tables VI/VII, where RFI, LFI and DT/PT
    are reported together as ["Files"], both XSS flavours as ["XSS"],
    and WordPress SQLI under ["SQLI"]. *)
val report_group : t -> string

(** Was the class already detected by WAP v2.1? *)
val is_original : t -> bool
