(** WordPress-specific functions used by the [-wpsqli] weapon
    (Section IV-C3).

    WordPress plugins reach the database through the [$wpdb] object and
    sanitize/validate input with their own helper functions; a stock
    detector knows none of them.  This module is the catalog half of the
    weapon: sinks and sanitizers live in {!Catalog.default_spec} under
    {!Vuln_class.Wp_sqli}; here we list the validation helpers that
    become {e dynamic symptoms} for the false-positive predictor. *)

(** WordPress validation/sanitization helpers, each mapped to the static
    symptom it behaves like (Section III-B2).  The static symptom names
    are those of {!Wap_mining.Symptom}. *)
let dynamic_symptoms : (string * string) list =
  [
    ("absint", "intval");
    ("sanitize_text_field", "user_white_list");
    ("sanitize_key", "user_white_list");
    ("sanitize_email", "user_white_list");
    ("sanitize_file_name", "user_white_list");
    ("sanitize_title", "user_white_list");
    ("esc_attr", "user_white_list");
    ("esc_html", "user_white_list");
    ("esc_url", "user_white_list");
    ("esc_js", "user_white_list");
    ("wp_kses", "user_white_list");
    ("wp_kses_post", "user_white_list");
    ("is_email", "preg_match");
    ("wp_verify_nonce", "user_white_list");
  ]

(** Entry points specific to WordPress plugins, in addition to the
    superglobals: data already persisted that plugin code re-reads. *)
let extra_sources =
  [ Catalog.Src_fn "get_option"; Catalog.Src_fn "get_post_meta";
    Catalog.Src_fn "get_user_meta"; Catalog.Src_fn "get_query_var" ]

(** The full spec for the WordPress SQLI weapon: the stock
    {!Vuln_class.Wp_sqli} defaults plus the WP-specific entry points. *)
let wpsqli_spec () : Catalog.spec =
  let base = Catalog.default_spec Vuln_class.Wp_sqli in
  { base with sources = base.sources @ extra_sources }
