(** WordPress-specific functions used by the [-wpsqli] weapon
    (Section IV-C3).

    WordPress plugins reach the database through the [$wpdb] object and
    sanitize/validate input with their own helper functions; a stock
    detector knows none of them. *)

(** WordPress validation/sanitization helpers, each mapped to the static
    symptom it behaves like — the weapon's {e dynamic symptoms}
    (Section III-B2). *)
val dynamic_symptoms : (string * string) list

(** Entry points specific to WordPress plugins, in addition to the
    superglobals: persisted data plugin code re-reads. *)
val extra_sources : Catalog.source list

(** The full spec for the WordPress SQLI weapon: the stock
    {!Vuln_class.Wp_sqli} defaults plus the WP-specific entry points. *)
val wpsqli_spec : unit -> Catalog.spec
