lib/confirm/builtins.pp.ml: Buffer Char List Option Printf Regex String Value
