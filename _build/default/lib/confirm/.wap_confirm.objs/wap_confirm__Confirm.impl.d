lib/confirm/confirm.pp.ml: Ast Evaluator Hashtbl List Loc Parser Ppx_deriving_runtime Printf Seq String Value Wap_catalog Wap_php Wap_taint
