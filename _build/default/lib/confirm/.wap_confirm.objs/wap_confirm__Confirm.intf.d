lib/confirm/confirm.pp.mli: Ppx_deriving_runtime Wap_catalog Wap_php Wap_taint
