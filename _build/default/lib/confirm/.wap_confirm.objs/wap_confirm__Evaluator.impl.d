lib/confirm/evaluator.pp.ml: Ast Builtins Hashtbl List Loc Option String Value Visitor Wap_php
