lib/confirm/evaluator.pp.mli: Ast Hashtbl Loc Value Wap_php
