lib/confirm/regex.pp.ml: Buffer Char List Printf String
