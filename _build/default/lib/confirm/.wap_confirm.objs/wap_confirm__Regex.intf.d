lib/confirm/regex.pp.mli:
