lib/confirm/value.pp.ml: List Ppx_deriving_runtime Printf String
