lib/confirm/value.pp.mli: Ppx_deriving_runtime
