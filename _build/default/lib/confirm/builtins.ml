(** PHP builtin functions implemented by the bounded evaluator — the
    sanitizers, validators and string manipulations that decide whether
    an attack payload survives to the sink. *)

open Value

let str1 f = function
  | [ v ] -> Some (f (to_string v))
  | _ -> None

let sstr f args = Option.map (fun s -> Str s) (str1 f args)

let lowercase = String.lowercase_ascii
let uppercase = String.uppercase_ascii

(* deterministic stand-in for md5: 32 hex chars from an FNV-1a pass —
   what matters is that the output is alphanumeric and input-dependent *)
let fake_md5 s =
  let h = ref 2166136261 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 16777619 land 0x3FFFFFFF) s;
  let h2 = ref (!h lxor 0x5bd1e995) in
  String.iter (fun c -> h2 := ((!h2 * 31) + Char.code c) land 0x3FFFFFFF) s;
  Printf.sprintf "%08x%08x%08x%08x" !h !h2 (!h lxor !h2) ((!h + !h2) land 0x3FFFFFFF)

let escape_quotes s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\'' -> Buffer.add_string b "\\'"
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\000' -> Buffer.add_string b "\\0"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let html_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '&' -> Buffer.add_string b "&amp;"
      | '"' -> Buffer.add_string b "&quot;"
      | '\'' -> Buffer.add_string b "&#039;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let strip_tags s =
  let b = Buffer.create (String.length s) in
  let in_tag = ref false in
  String.iter
    (fun c ->
      if c = '<' then in_tag := true
      else if c = '>' then in_tag := false
      else if not !in_tag then Buffer.add_char b c)
    s;
  Buffer.contents b

let escapeshellarg s =
  (* POSIX single-quote wrapping *)
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '\'';
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string b "'\\''" else Buffer.add_char b c)
    s;
  Buffer.add_char b '\'';
  Buffer.contents b

let escapeshellcmd s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      (match c with
      | '#' | '&' | ';' | '`' | '|' | '*' | '?' | '~' | '<' | '>' | '^' | '('
      | ')' | '[' | ']' | '{' | '}' | '$' | '\\' | '\'' | '"' | '\n' ->
          Buffer.add_char b '\\'
      | _ -> ());
      Buffer.add_char b c)
    s;
  Buffer.contents b

let ldap_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '*' | '(' | ')' | '\\' | '\000' ->
          Buffer.add_string b (Printf.sprintf "\\%02x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let urlencode s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> Buffer.add_char b c
      | ' ' -> Buffer.add_char b '+'
      | c -> Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents b

let basename s =
  match String.rindex_opt s '/' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> ( match String.rindex_opt s '\\' with
              | Some i -> String.sub s (i + 1) (String.length s - i - 1)
              | None -> s)

let ctype pred s = s <> "" && String.for_all pred s

let str_replace_one ~search ~repl subject =
  if search = "" then subject
  else begin
    let b = Buffer.create (String.length subject) in
    let slen = String.length search and n = String.length subject in
    let i = ref 0 in
    while !i < n do
      if !i + slen <= n && String.sub subject !i slen = search then begin
        Buffer.add_string b repl;
        i := !i + slen
      end
      else begin
        Buffer.add_char b subject.[!i];
        incr i
      end
    done;
    Buffer.contents b
  end

let str_replace ~ci (search : t) (repl : t) (subject : string) : string =
  let pairs =
    match (search, repl) with
    | Arr searches, Arr repls ->
        List.mapi
          (fun i (_, s) ->
            let r = match List.nth_opt repls i with Some (_, r) -> to_string r | None -> "" in
            (to_string s, r))
          searches
    | Arr searches, r -> List.map (fun (_, s) -> (to_string s, to_string r)) searches
    | s, r -> [ (to_string s, to_string r) ]
  in
  List.fold_left
    (fun subject (search, repl) ->
      if ci then
        (* case-insensitive replace via lowercase scanning *)
        let low_sub = lowercase subject and low_search = lowercase search in
        let slen = String.length search and n = String.length subject in
        if slen = 0 then subject
        else begin
          let b = Buffer.create n in
          let i = ref 0 in
          while !i < n do
            if !i + slen <= n && String.sub low_sub !i slen = low_search then begin
              Buffer.add_string b repl;
              i := !i + slen
            end
            else begin
              Buffer.add_char b subject.[!i];
              incr i
            end
          done;
          Buffer.contents b
        end
      else str_replace_one ~search ~repl subject)
    subject pairs

let explode sep s =
  if sep = "" then [ s ]
  else begin
    let out = ref [] in
    let seplen = String.length sep and n = String.length s in
    let start = ref 0 in
    let i = ref 0 in
    while !i <= n - seplen do
      if String.sub s !i seplen = sep then begin
        out := String.sub s !start (!i - !start) :: !out;
        i := !i + seplen;
        start := !i
      end
      else incr i
    done;
    out := String.sub s !start (n - !start) :: !out;
    List.rev !out
  end

let sprintf_php fmt (args : t list) : string =
  let b = Buffer.create (String.length fmt) in
  let args = ref args in
  let next () =
    match !args with
    | [] -> Null
    | a :: rest ->
        args := rest;
        a
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    if fmt.[!i] = '%' && !i + 1 < n then begin
      (* skip flags/width/precision *)
      let j = ref (!i + 1) in
      while
        !j < n
        && (match fmt.[!j] with
           | '0' .. '9' | '.' | '-' | '+' | ' ' | '\'' -> true
           | _ -> false)
      do
        incr j
      done;
      (if !j < n then
         match fmt.[!j] with
         | '%' -> Buffer.add_char b '%'
         | 's' -> Buffer.add_string b (to_string (next ()))
         | 'd' | 'u' -> Buffer.add_string b (string_of_int (to_int (next ())))
         | 'f' | 'F' -> Buffer.add_string b (Printf.sprintf "%f" (to_float (next ())))
         | 'x' -> Buffer.add_string b (Printf.sprintf "%x" (to_int (next ())))
         | 'X' -> Buffer.add_string b (Printf.sprintf "%X" (to_int (next ())))
         | c ->
             Buffer.add_char b '%';
             Buffer.add_char b c);
      i := !j + 1
    end
    else begin
      Buffer.add_char b fmt.[!i];
      incr i
    end
  done;
  Buffer.contents b

(* ------------------------------------------------------------------ *)

(** [call name args] evaluates a builtin; [None] when [name] is not a
    builtin (user function or opaque API). *)
let call (name : string) (args : t list) : t option =
  let s0 () = match args with v :: _ -> to_string v | [] -> "" in
  let v0 () = match args with v :: _ -> v | [] -> Null in
  match (lowercase name, args) with
  (* --- string basics --- *)
  | "strlen", _ -> Some (Int (String.length (s0 ())))
  | "trim", _ -> Some (Str (String.trim (s0 ())))
  | "ltrim", _ ->
      let s = s0 () in
      let i = ref 0 in
      while !i < String.length s && (s.[!i] = ' ' || s.[!i] = '\t' || s.[!i] = '\n' || s.[!i] = '\r') do incr i done;
      Some (Str (String.sub s !i (String.length s - !i)))
  | "rtrim", _ | "chop", _ ->
      let s = s0 () in
      let j = ref (String.length s) in
      while !j > 0 && (let c = s.[!j - 1] in c = ' ' || c = '\t' || c = '\n' || c = '\r') do decr j done;
      Some (Str (String.sub s 0 !j))
  | "strtolower", _ -> sstr lowercase args
  | "strtoupper", _ -> sstr uppercase args
  | "substr", [ s; start ] ->
      let s = to_string s and start = to_int start in
      let n = String.length s in
      let start = if start < 0 then max 0 (n + start) else min start n in
      Some (Str (String.sub s start (n - start)))
  | "substr", [ s; start; len ] ->
      let s = to_string s and start = to_int start and len = to_int len in
      let n = String.length s in
      let start = if start < 0 then max 0 (n + start) else min start n in
      let len = if len < 0 then max 0 (n - start + len) else min len (n - start) in
      Some (Str (String.sub s start len))
  | "str_pad", (s :: len :: rest) ->
      let s = to_string s and len = to_int len in
      let pad = match rest with p :: _ -> to_string p | [] -> " " in
      let pad = if pad = "" then " " else pad in
      let b = Buffer.create len in
      Buffer.add_string b s;
      while Buffer.length b < len do
        Buffer.add_string b pad
      done;
      Some (Str (if Buffer.length b > len && String.length s < len
                 then String.sub (Buffer.contents b) 0 len
                 else Buffer.contents b))
  | "str_repeat", [ s; k ] ->
      let s = to_string s and k = max 0 (to_int k) in
      Some (Str (String.concat "" (List.init k (fun _ -> s))))
  | "strrev", _ ->
      let s = s0 () in
      Some (Str (String.init (String.length s) (fun i -> s.[String.length s - 1 - i])))
  | "str_shuffle", _ -> Some (Str (s0 ()))  (* deterministic: identity *)
  | "chunk_split", (s :: _) -> Some (Str (to_string s))
  | "ucfirst", _ ->
      let s = s0 () in
      Some (Str (if s = "" then s else String.make 1 (Char.uppercase_ascii s.[0]) ^ String.sub s 1 (String.length s - 1)))
  | "str_replace", [ se; re; subj ] -> Some (Str (str_replace ~ci:false se re (to_string subj)))
  | "str_ireplace", [ se; re; subj ] -> Some (Str (str_replace ~ci:true se re (to_string subj)))
  | "substr_replace", [ s; repl; start ] ->
      let s = to_string s and repl = to_string repl and start = to_int start in
      let n = String.length s in
      let start = if start < 0 then max 0 (n + start) else min start n in
      Some (Str (String.sub s 0 start ^ repl))
  | "substr_replace", [ s; repl; start; len ] ->
      let s = to_string s and repl = to_string repl and start = to_int start in
      let n = String.length s in
      let start = if start < 0 then max 0 (n + start) else min start n in
      let len = max 0 (min (to_int len) (n - start)) in
      Some (Str (String.sub s 0 start ^ repl ^ String.sub s (start + len) (n - start - len)))
  | "implode", [ g; Arr pairs ] | "join", [ g; Arr pairs ] ->
      Some (Str (String.concat (to_string g) (List.map (fun (_, v) -> to_string v) pairs)))
  | "implode", [ Arr pairs ] | "join", [ Arr pairs ] ->
      Some (Str (String.concat "" (List.map (fun (_, v) -> to_string v) pairs)))
  | "explode", [ sep; s ] ->
      Some (Arr (List.mapi (fun i p -> (Int i, Str p)) (explode (to_string sep) (to_string s))))
  | ("split" | "spliti"), [ sep; s ] ->
      Some (Arr (List.mapi (fun i p -> (Int i, Str p)) (explode (to_string sep) (to_string s))))
  | "sprintf", (fmt :: rest) -> Some (Str (sprintf_php (to_string fmt) rest))
  | "number_format", (v :: _) -> Some (Str (string_of_int (to_int v)))
  (* --- type checks & conversions --- *)
  | "intval", _ -> Some (Int (to_int (v0 ())))
  | "floatval", _ | "doubleval", _ -> Some (Float (to_float (v0 ())))
  | "strval", _ -> Some (Str (s0 ()))
  | "boolval", _ -> Some (Bool (to_bool (v0 ())))
  | "is_numeric", _ ->
      Some (Bool (match v0 () with
                  | Int _ | Float _ -> true
                  | Str s -> is_numeric_string s
                  | _ -> false))
  | ("is_int" | "is_integer" | "is_long"), _ ->
      Some (Bool (match v0 () with Int _ -> true | _ -> false))
  | ("is_float" | "is_double" | "is_real"), _ ->
      Some (Bool (match v0 () with Float _ -> true | _ -> false))
  | "is_string", _ -> Some (Bool (match v0 () with Str _ -> true | _ -> false))
  | "is_bool", _ -> Some (Bool (match v0 () with Bool _ -> true | _ -> false))
  | "is_array", _ -> Some (Bool (match v0 () with Arr _ -> true | _ -> false))
  | "is_null", _ -> Some (Bool (v0 () = Null))
  | "is_scalar", _ ->
      Some (Bool (match v0 () with Int _ | Float _ | Str _ | Bool _ -> true | _ -> false))
  | "ctype_digit", _ -> Some (Bool (ctype (fun c -> c >= '0' && c <= '9') (s0 ())))
  | "ctype_alpha", _ ->
      Some (Bool (ctype (fun c -> (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) (s0 ())))
  | "ctype_alnum", _ ->
      Some (Bool (ctype (fun c ->
                      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9'))
                    (s0 ())))
  (* --- comparisons --- *)
  | "strcmp", [ a; b ] -> Some (Int (compare (to_string a) (to_string b)))
  | "strcasecmp", [ a; b ] ->
      Some (Int (compare (lowercase (to_string a)) (lowercase (to_string b))))
  | "strncmp", [ a; b; k ] ->
      let k = to_int k in
      let cut s = String.sub s 0 (min k (String.length s)) in
      Some (Int (compare (cut (to_string a)) (cut (to_string b))))
  | "strncasecmp", [ a; b; k ] ->
      let k = to_int k in
      let cut s = String.sub s 0 (min k (String.length s)) in
      Some (Int (compare (lowercase (cut (to_string a))) (lowercase (cut (to_string b)))))
  | "strnatcmp", [ a; b ] -> Some (Int (compare (to_string a) (to_string b)))
  | "strpos", [ h; ne ] ->
      let h = to_string h and ne = to_string ne in
      let nh = String.length h and nn = String.length ne in
      let rec go i = if i + nn > nh then None else if String.sub h i nn = ne then Some i else go (i + 1) in
      Some (match go 0 with Some i -> Int i | None -> Bool false)
  | "stripos", [ h; ne ] ->
      let h = lowercase (to_string h) and ne = lowercase (to_string ne) in
      let nh = String.length h and nn = String.length ne in
      let rec go i = if i + nn > nh then None else if String.sub h i nn = ne then Some i else go (i + 1) in
      Some (match go 0 with Some i -> Int i | None -> Bool false)
  (* --- arrays --- *)
  | ("count" | "sizeof"), [ Arr pairs ] -> Some (Int (List.length pairs))
  | ("count" | "sizeof"), _ -> Some (Int 1)
  | "in_array", [ needle; Arr pairs ] ->
      Some (Bool (List.exists (fun (_, v) -> loose_eq v needle) pairs))
  | "in_array", [ needle; Arr pairs; _strict ] ->
      Some (Bool (List.exists (fun (_, v) -> strict_eq v needle) pairs))
  | "array_key_exists", [ key; Arr pairs ] -> Some (Bool (arr_has pairs key))
  | "array_keys", [ Arr pairs ] ->
      Some (Arr (List.mapi (fun i (k, _) -> (Int i, k)) pairs))
  | "array_values", [ Arr pairs ] ->
      Some (Arr (List.mapi (fun i (_, v) -> (Int i, v)) pairs))
  | "array_merge", _ ->
      Some (Arr (List.concat_map (function Arr p -> p | _ -> []) args))
  (* --- sanitizers --- *)
  | ("mysql_real_escape_string" | "mysql_escape_string" | "mysqli_real_escape_string"
    | "mysqli_escape_string" | "addslashes" | "pg_escape_string"
    | "sqlite_escape_string" | "esc_sql"), _ ->
      (* two-argument mysqli_real_escape_string($link, $s) *)
      let s = match args with [ _; s ] -> to_string s | _ -> s0 () in
      Some (Str (escape_quotes s))
  | ("htmlspecialchars" | "htmlentities" | "esc_html" | "esc_attr"), _ ->
      Some (Str (html_escape (s0 ())))
  | "strip_tags", _ -> Some (Str (strip_tags (s0 ())))
  | "escapeshellarg", _ -> Some (Str (escapeshellarg (s0 ())))
  | "escapeshellcmd", _ -> Some (Str (escapeshellcmd (s0 ())))
  | "ldap_escape", _ -> Some (Str (ldap_escape (s0 ())))
  | ("urlencode" | "rawurlencode"), _ -> Some (Str (urlencode (s0 ())))
  | "basename", _ -> Some (Str (basename (s0 ())))
  | "realpath", _ -> Some (Str (s0 ()))
  | "absint", _ -> Some (Int (abs (to_int (v0 ()))))
  | "sanitize_text_field", _ -> Some (Str (strip_tags (String.trim (s0 ()))))
  | "md5" , _ | "sha1", _ | "crc32", _ -> Some (Str (fake_md5 (s0 ())))
  (* --- regex --- *)
  | "preg_match", (pat :: subj :: _) -> (
      match Regex.compile (to_string pat) with
      | Some re -> Some (Int (if Regex.matches re (to_string subj) then 1 else 0))
      | None -> Some (Int 0))
  | "preg_match_all", (pat :: subj :: _) -> (
      match Regex.compile (to_string pat) with
      | Some re -> Some (Int (if Regex.matches re (to_string subj) then 1 else 0))
      | None -> Some (Int 0))
  | ("ereg" | "eregi"), [ pat; subj ] -> (
      let delim = "/" ^ to_string pat ^ "/" ^ (if lowercase name = "eregi" then "i" else "") in
      match Regex.compile delim with
      | Some re -> Some (Int (if Regex.matches re (to_string subj) then 1 else 0))
      | None -> Some (Int 0))
  | ("preg_replace" | "preg_filter"), [ pat; repl; subj ] -> (
      match Regex.compile (to_string pat) with
      | Some re -> Some (Str (Regex.replace re ~template:(to_string repl) (to_string subj)))
      | None -> Some (Str (to_string subj)))
  | ("ereg_replace" | "eregi_replace"), [ pat; repl; subj ] -> (
      match Regex.compile ("/" ^ to_string pat ^ "/") with
      | Some re -> Some (Str (Regex.replace re ~template:(to_string repl) (to_string subj)))
      | None -> Some (Str (to_string subj)))
  | "preg_split", (pat :: subj :: _) -> (
      match Regex.compile (to_string pat) with
      | Some re ->
          Some (Arr (List.mapi (fun i p -> (Int i, Str p)) (Regex.split re (to_string subj))))
      | None -> Some (Arr [ (Int 0, Str (to_string subj)) ]))
  (* --- misc no-ops with benign results --- *)
  | "rand", _ | "mt_rand", _ -> Some (Int 4)  (* deterministic *)
  | "time", _ -> Some (Int 1_450_000_000)
  | "date", _ -> Some (Str "2016-06-28")
  | ("error_log" | "trigger_error" | "user_error"), _ -> Some (Bool true)
  | "checkdate", _ -> Some (Bool true)
  | "filter_var", (v :: _) -> Some v
  | _ -> None
