(** Dynamic confirmation of candidate vulnerabilities.

    The paper's authors confirmed every reported vulnerability manually
    (Section V-B: "All were confirmed by us manually").  This module
    mechanizes that step: it replays the program with a class-specific
    attack payload bound to the candidate's entry point, intercepts the
    sink, and checks whether the payload's active characters survived —
    running the {e real} sanitizer/validator semantics through the
    bounded evaluator. *)

open Wap_php
module VC = Wap_catalog.Vuln_class
module V = Value

type verdict =
  | Confirmed  (** the payload reached the sink with its teeth intact *)
  | Not_confirmed
      (** execution completed but the payload never reached the sink in
          exploitable form (blocked, sanitized, or neutralized) *)
  | Unsupported  (** this class cannot be replayed (e.g. stored XSS) *)
[@@deriving show, eq]

let marker = "PWNED"

(** The attack payload injected at the candidate's entry point, plus the
    check deciding whether a sink-argument string is still exploitable. *)
type attack = {
  payload : string;
  exploitable : string -> bool;
}

(* case-insensitive: strtolower() does not defuse SQL keywords, HTML
   tags or PHP function names *)
let contains hay needle =
  let hay = String.lowercase_ascii hay and needle = String.lowercase_ascii needle in
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn > 0 && go 0

(* the needle present and not preceded by a backslash: an escaped quote
   is neutralized, an intact one is not *)
let contains_unescaped hay needle =
  let hay = String.lowercase_ascii hay and needle = String.lowercase_ascii needle in
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    i + nn <= nh
    && ((String.sub hay i nn = needle && (i = 0 || hay.[i - 1] <> '\\')) || go (i + 1))
  in
  nn > 0 && go 0

(* an unquoted shell metacharacter: ';' outside single quotes *)
let has_unquoted_semicolon s =
  let in_quote = ref false in
  let found = ref false in
  String.iter
    (fun c ->
      if c = '\'' then in_quote := not !in_quote
      else if c = ';' && not !in_quote then found := true)
    s;
  !found

let attack_for (vclass : VC.t) : attack option =
  match vclass with
  | VC.Sqli | VC.Wp_sqli | VC.Xpathi | VC.Nosqli ->
      Some
        {
          payload = Printf.sprintf "' OR '%s'='%s" marker marker;
          (* exploitable as long as a quote right before the marker
             survives unescaped — an attacker adapts the rest of the
             payload to whatever mangling the flow applies *)
          exploitable = (fun s -> contains_unescaped s ("'" ^ marker));
        }
  | VC.Xss_reflected ->
      Some
        {
          payload = Printf.sprintf "<script>%s()</script>" marker;
          exploitable = (fun s -> contains s ("<script>" ^ marker));
        }
  | VC.Hi | VC.Ei ->
      Some
        {
          payload = Printf.sprintf "x\r\nX-%s: 1" marker;
          exploitable = (fun s -> contains s ("\r\nX-" ^ marker));
        }
  | VC.Osci ->
      Some
        {
          payload = Printf.sprintf "; echo %s" marker;
          exploitable =
            (fun s -> contains s marker && has_unquoted_semicolon s);
        }
  | VC.Phpci ->
      Some
        {
          payload = Printf.sprintf "1; %s();" marker;
          exploitable = (fun s -> contains s (marker ^ "();"));
        }
  | VC.Rfi | VC.Lfi | VC.Dt_pt | VC.Scd ->
      Some
        {
          payload = "../../" ^ marker;
          exploitable = (fun s -> contains s ("../../" ^ marker));
        }
  | VC.Ldapi ->
      Some
        {
          payload = Printf.sprintf "*)(uid=%s" marker;
          exploitable = (fun s -> contains s ("*)(uid=" ^ marker));
        }
  | VC.Cs ->
      Some
        {
          payload = Printf.sprintf "visit http://%s.example.com/" marker;
          exploitable = (fun s -> contains s ("http://" ^ marker));
        }
  | VC.Sf ->
      Some
        {
          (* any attacker-chosen token accepted as session id is a fix *)
          payload = marker ^ "SESSION1234567890";
          exploitable = (fun s -> contains s (marker ^ "SESSION"));
        }
  | VC.Xss_stored (* needs a database round-trip *) | VC.Custom _ -> None

(* sinks whose events we accept for a class, besides an exact
   sink-name match *)
let sink_names (vclass : VC.t) : string list =
  let spec = Wap_catalog.Catalog.default_spec vclass in
  List.concat_map
    (function
      | Wap_catalog.Catalog.Sink_fn (f, _) -> [ String.lowercase_ascii f ]
      | Wap_catalog.Catalog.Sink_method (o, m) ->
          [ String.lowercase_ascii o ^ "->" ^ String.lowercase_ascii m ]
      | Wap_catalog.Catalog.Sink_echo -> [ "echo"; "print"; "printf"; "print_r" ]
      | Wap_catalog.Catalog.Sink_include -> [ "include" ])
    spec.Wap_catalog.Catalog.sinks

(* parse "$_GET['id']" into (superglobal, key) *)
let parse_source (source : string) : (string * string) option =
  if String.length source > 3 && String.sub source 0 2 = "$_" then begin
    match String.index_opt source '[' with
    | Some lb ->
        let sg = String.sub source 1 (lb - 1) in
        let rest = String.sub source (lb + 1) (String.length source - lb - 1) in
        let key =
          String.to_seq rest
          |> Seq.filter (fun c -> c <> '\'' && c <> '"' && c <> ']')
          |> String.of_seq
        in
        Some (sg, key)
    | None -> Some (String.sub source 1 (String.length source - 1), "")
  end
  else None

(** Replay [program] against [candidate] with the class payload.

    The candidate's entry point receives the payload; every other input
    gets a benign numeric-ish default (so unrelated guards pass).  The
    verdict is [Confirmed] iff a sink event of the candidate's class —
    at the candidate's sink line when events repeat — carries the
    payload in exploitable form. *)
let confirm_candidate ~(program : Ast.program)
    (candidate : Wap_taint.Trace.candidate) : verdict =
  match attack_for candidate.Wap_taint.Trace.vclass with
  | None -> Unsupported
  | Some attack -> (
      let origin = Wap_taint.Trace.primary candidate in
      match parse_source origin.Wap_taint.Trace.source with
      | None -> Unsupported
      | Some (target_sg, target_key) ->
          let sinks = sink_names candidate.Wap_taint.Trace.vclass in
          let confirmed = ref false in
          let input ~superglobal ~key =
            if String.equal superglobal target_sg
               && (String.equal key target_key || target_key = "")
            then V.Str attack.payload
            else V.Str "7"
          in
          let input_array ~superglobal =
            if String.equal superglobal target_sg then
              [ (V.Str (if target_key = "" then "k" else target_key), V.Str attack.payload) ]
            else [ (V.Str "k", V.Str "7") ]
          in
          let sink_line = candidate.Wap_taint.Trace.sink_loc.Loc.line in
          let on_event (ev : Evaluator.event) =
            if List.mem ev.Evaluator.ev_name sinks
               && ev.Evaluator.ev_loc.Loc.line = sink_line
            then
              let hit =
                List.exists
                  (fun arg ->
                    match arg with
                    | V.Arr pairs ->
                        List.exists
                          (fun (_, v) -> attack.exploitable (V.to_string v))
                          pairs
                    | v -> attack.exploitable (V.to_string v))
                  ev.Evaluator.ev_args
              in
              if hit then confirmed := true
          in
          let cfg =
            { Evaluator.input; input_array; on_event; max_steps = 200_000 }
          in
          (* start at the flow's entry point so an unrelated earlier
             flow's die() cannot mask it *)
          let start_line =
            min origin.Wap_taint.Trace.source_loc.Loc.line sink_line
          in
          (match Evaluator.run ~start_line cfg program with
          | Evaluator.Completed | Evaluator.Exited | Evaluator.Uncaught _ -> ()
          | Evaluator.Timed_out -> ());
          if !confirmed then Confirmed else Not_confirmed)

(** Convenience: parse and confirm from source text. *)
let confirm_source ~file (src : string)
    (candidate : Wap_taint.Trace.candidate) : verdict =
  let program = Parser.parse_string ~file src in
  confirm_candidate ~program candidate

(** Batch confirmation over a package's parsed files: returns
    (confirmed, not confirmed, unsupported) counts over the given
    candidates. *)
let confirm_batch (units : Wap_taint.Analyzer.file_unit list)
    (candidates : Wap_taint.Trace.candidate list) : int * int * int =
  let by_file = Hashtbl.create 16 in
  List.iter
    (fun (u : Wap_taint.Analyzer.file_unit) ->
      Hashtbl.replace by_file u.Wap_taint.Analyzer.path u.Wap_taint.Analyzer.program)
    units;
  List.fold_left
    (fun (c, n, u) cand ->
      match Hashtbl.find_opt by_file cand.Wap_taint.Trace.file with
      | None -> (c, n, u + 1)
      | Some program -> (
          match confirm_candidate ~program cand with
          | Confirmed -> (c + 1, n, u)
          | Not_confirmed -> (c, n + 1, u)
          | Unsupported -> (c, n, u + 1)))
    (0, 0, 0) candidates
