(** Dynamic confirmation of candidate vulnerabilities.

    The paper's authors confirmed every reported vulnerability manually
    (Section V-B: "All were confirmed by us manually").  This module
    mechanizes that step: it replays the program with a class-specific
    attack payload bound to the candidate's entry point, intercepts the
    sink, and checks whether the payload's active characters survived —
    running the {e real} sanitizer/validator semantics through the
    bounded evaluator. *)

type verdict =
  | Confirmed  (** the payload reached the sink with its teeth intact *)
  | Not_confirmed
      (** execution completed but the payload never reached the sink in
          exploitable form (blocked, sanitized, or neutralized) *)
  | Unsupported  (** this class cannot be replayed (e.g. stored XSS) *)
[@@deriving show, eq]

(** The token embedded in every payload. *)
val marker : string

(** The attack payload for a class and the predicate deciding whether a
    sink-argument string is still exploitable. *)
type attack = {
  payload : string;
  exploitable : string -> bool;
}

(** [None] for classes that cannot be replayed (stored XSS, custom). *)
val attack_for : Wap_catalog.Vuln_class.t -> attack option

(** Replay [program] against the candidate with the class payload bound
    to the candidate's entry point; every other input gets a benign
    default.  Execution starts at the flow's entry line so unrelated
    earlier flows cannot mask it, and only sink events at the
    candidate's sink line count. *)
val confirm_candidate :
  program:Wap_php.Ast.program -> Wap_taint.Trace.candidate -> verdict

(** Parse and confirm from source text. *)
val confirm_source :
  file:string -> string -> Wap_taint.Trace.candidate -> verdict

(** Batch confirmation over a package's parsed files:
    (confirmed, not confirmed, unsupported) counts. *)
val confirm_batch :
  Wap_taint.Analyzer.file_unit list ->
  Wap_taint.Trace.candidate list ->
  int * int * int
