(** A bounded evaluator for the PHP subset: executes a program with
    attacker-chosen superglobal inputs and reports every sink-relevant
    event (calls, echos, includes, backticks) to a callback.

    This is not a general PHP runtime — objects are opaque, I/O does
    nothing, and execution is step-bounded — but it is faithful on the
    string/array/control-flow fragment that decides whether an attack
    payload survives validation and sanitization on its way to a sink. *)

open Wap_php
module V = Value

(** A sink-relevant runtime event. *)
type event = {
  ev_name : string;
      (** function name (lowercase), ["obj->method"], ["echo"],
          ["include"], ["exit"], or ["shell_exec"] for backticks *)
  ev_args : V.t list;
  ev_loc : Loc.t;
}

type config = {
  input : superglobal:string -> key:string -> V.t;
      (** value of [$_SG['key']] *)
  input_array : superglobal:string -> (V.t * V.t) list;
      (** the whole array, for [foreach ($_GET as ...)] *)
  on_event : event -> unit;
  max_steps : int;
}

exception Exit_script
exception Timeout

(* internal control flow *)
exception Return_v of V.t
exception Break_n of int
exception Continue_n of int
exception Php_exception of V.t

type scope = (string, V.t) Hashtbl.t

type state = {
  cfg : config;
  globals : scope;
  functions : (string, Ast.func) Hashtbl.t;
  mutable steps : int;
  mutable depth : int;
}

let tick st =
  st.steps <- st.steps + 1;
  if st.steps > st.cfg.max_steps then raise Timeout

let get_var (sc : scope) v = Option.value ~default:V.Null (Hashtbl.find_opt sc v)

let constant_value = function
  | "true" | "TRUE" | "True" -> V.Bool true
  | "false" | "FALSE" | "False" -> V.Bool false
  | "null" | "NULL" | "Null" -> V.Null
  | "PHP_EOL" -> V.Str "\n"
  | "E_USER_WARNING" -> V.Int 512
  | "E_USER_ERROR" -> V.Int 256
  | "FILE_APPEND" -> V.Int 8
  | c -> V.Str c

let rec eval st (sc : scope) (e : Ast.expr) : V.t =
  tick st;
  match e.Ast.e with
  | Ast.Int n -> V.Int n
  | Ast.Float f -> V.Float f
  | Ast.String s -> V.Str s
  | Ast.Constant c -> constant_value c
  | Ast.Interp parts ->
      V.Str
        (String.concat ""
           (List.map
              (function
                | Ast.Ip_str s -> s
                | Ast.Ip_expr pe -> V.to_string (eval st sc pe))
              parts))
  | Ast.Backtick parts ->
      let cmd =
        String.concat ""
          (List.map
             (function
               | Ast.Ip_str s -> s
               | Ast.Ip_expr pe -> V.to_string (eval st sc pe))
             parts)
      in
      st.cfg.on_event { ev_name = "shell_exec"; ev_args = [ V.Str cmd ]; ev_loc = e.Ast.eloc };
      V.Str ""
  | Ast.Var v ->
      if Ast.is_superglobal v then V.Arr (st.cfg.input_array ~superglobal:v)
      else get_var sc v
  | Ast.Var_var inner ->
      let name = V.to_string (eval st sc inner) in
      get_var sc name
  | Ast.Index ({ e = Ast.Var sg; _ }, Some key) when Ast.is_superglobal sg ->
      let key = V.to_string (eval st sc key) in
      st.cfg.input ~superglobal:sg ~key
  | Ast.Index (base, idx) -> (
      let b = eval st sc base in
      match (b, idx) with
      | V.Arr pairs, Some idx -> V.arr_get pairs (eval st sc idx)
      | V.Str s, Some idx ->
          let i = V.to_int (eval st sc idx) in
          if i >= 0 && i < String.length s then V.Str (String.make 1 s.[i]) else V.Str ""
      | _ -> V.Null)
  | Ast.Prop (_, _) | Ast.Static_prop _ -> V.Null
  | Ast.Class_const (_, _) -> V.Null
  | Ast.Call (callee, args) -> eval_call st sc e.Ast.eloc callee args
  | Ast.New (_, args) ->
      List.iter (fun (a : Ast.arg) -> ignore (eval st sc a.Ast.a_expr)) args;
      V.Null
  | Ast.Clone inner -> eval st sc inner
  | Ast.Binop (op, l, r) -> eval_binop st sc op l r
  | Ast.Unop (op, inner) -> (
      let v = eval st sc inner in
      match op with
      | Ast.Not -> V.Bool (not (V.to_bool v))
      | Ast.Neg -> (
          match v with V.Int n -> V.Int (-n) | _ -> V.Float (-.V.to_float v))
      | Ast.Uplus -> v
      | Ast.Bit_not -> V.Int (lnot (V.to_int v))
      | Ast.Silence -> v)
  | Ast.Incdec (k, target) -> (
      let old = eval st sc target in
      let bump d = V.Int (V.to_int old + d) in
      match k with
      | Ast.Pre_inc ->
          let v = bump 1 in
          assign st sc target v;
          v
      | Ast.Pre_dec ->
          let v = bump (-1) in
          assign st sc target v;
          v
      | Ast.Post_inc ->
          assign st sc target (bump 1);
          old
      | Ast.Post_dec ->
          assign st sc target (bump (-1));
          old)
  | Ast.Assign (Ast.A_eq, lhs, rhs) ->
      let v = eval st sc rhs in
      assign st sc lhs v;
      v
  | Ast.Assign (op, lhs, rhs) ->
      let old = eval st sc lhs in
      let v = eval st sc rhs in
      let combined =
        match op with
        | Ast.A_concat -> V.Str (V.to_string old ^ V.to_string v)
        | Ast.A_plus -> V.Int (V.to_int old + V.to_int v)
        | Ast.A_minus -> V.Int (V.to_int old - V.to_int v)
        | Ast.A_mul -> V.Int (V.to_int old * V.to_int v)
        | Ast.A_div ->
            let d = V.to_float v in
            if d = 0.0 then V.Int 0 else V.Float (V.to_float old /. d)
        | Ast.A_mod ->
            let d = V.to_int v in
            if d = 0 then V.Int 0 else V.Int (V.to_int old mod d)
        | _ -> v
      in
      assign st sc lhs combined;
      combined
  | Ast.Assign_ref (lhs, rhs) ->
      (* references degrade to copies in this evaluator *)
      let v = eval st sc rhs in
      assign st sc lhs v;
      v
  | Ast.Ternary (c, t, f) ->
      let cv = eval st sc c in
      if V.to_bool cv then match t with Some t -> eval st sc t | None -> cv
      else eval st sc f
  | Ast.Cast (c, inner) -> (
      let v = eval st sc inner in
      match c with
      | Ast.C_int -> V.Int (V.to_int v)
      | Ast.C_float -> V.Float (V.to_float v)
      | Ast.C_string -> V.Str (V.to_string v)
      | Ast.C_bool -> V.Bool (V.to_bool v)
      | Ast.C_array -> ( match v with V.Arr _ -> v | _ -> V.Arr [ (V.Int 0, v) ])
      | Ast.C_object -> v)
  | Ast.Isset es ->
      V.Bool
        (List.for_all
           (fun e1 ->
             match e1.Ast.e with
             | Ast.Index ({ e = Ast.Var sg; _ }, Some _) when Ast.is_superglobal sg -> true
             | Ast.Var v -> Hashtbl.mem sc v
             | _ -> eval st sc e1 <> V.Null)
           es)
  | Ast.Empty e1 -> V.Bool (not (V.to_bool (eval st sc e1)))
  | Ast.Exit arg ->
      (match arg with
      | Some a ->
          let v = eval st sc a in
          st.cfg.on_event { ev_name = "exit"; ev_args = [ v ]; ev_loc = e.Ast.eloc }
      | None -> ());
      raise Exit_script
  | Ast.Print e1 ->
      let v = eval st sc e1 in
      st.cfg.on_event { ev_name = "echo"; ev_args = [ v ]; ev_loc = e.Ast.eloc };
      V.Int 1
  | Ast.Include (_, e1) ->
      let v = eval st sc e1 in
      st.cfg.on_event { ev_name = "include"; ev_args = [ v ]; ev_loc = e.Ast.eloc };
      V.Null
  | Ast.List _ -> V.Null
  | Ast.Array_lit items ->
      V.Arr
        (List.fold_left
           (fun pairs (it : Ast.array_item) ->
             let v = eval st sc it.Ast.ai_value in
             match it.Ast.ai_key with
             | Some k -> V.arr_set pairs (eval st sc k) v
             | None -> V.arr_push pairs v)
           [] items)
  | Ast.Closure _ -> V.Null

and eval_binop st sc op l r =
  match op with
  | Ast.Bool_and ->
      if V.to_bool (eval st sc l) then V.Bool (V.to_bool (eval st sc r)) else V.Bool false
  | Ast.Bool_or ->
      if V.to_bool (eval st sc l) then V.Bool true else V.Bool (V.to_bool (eval st sc r))
  | _ -> (
      let a = eval st sc l in
      let b = eval st sc r in
      match op with
      | Ast.Concat -> V.Str (V.to_string a ^ V.to_string b)
      | Ast.Plus -> (
          match (a, b) with
          | V.Int x, V.Int y -> V.Int (x + y)
          | _ -> V.Float (V.to_float a +. V.to_float b))
      | Ast.Minus -> (
          match (a, b) with
          | V.Int x, V.Int y -> V.Int (x - y)
          | _ -> V.Float (V.to_float a -. V.to_float b))
      | Ast.Mul -> (
          match (a, b) with
          | V.Int x, V.Int y -> V.Int (x * y)
          | _ -> V.Float (V.to_float a *. V.to_float b))
      | Ast.Div ->
          let d = V.to_float b in
          if d = 0.0 then V.Bool false else V.Float (V.to_float a /. d)
      | Ast.Mod ->
          let d = V.to_int b in
          if d = 0 then V.Bool false else V.Int (V.to_int a mod d)
      | Ast.Pow -> V.Float (V.to_float a ** V.to_float b)
      | Ast.Eq_eq -> V.Bool (V.loose_eq a b)
      | Ast.Neq -> V.Bool (not (V.loose_eq a b))
      | Ast.Identical -> V.Bool (V.strict_eq a b)
      | Ast.Not_identical -> V.Bool (not (V.strict_eq a b))
      | Ast.Lt -> V.Bool (V.to_float a < V.to_float b)
      | Ast.Gt -> V.Bool (V.to_float a > V.to_float b)
      | Ast.Le -> V.Bool (V.to_float a <= V.to_float b)
      | Ast.Ge -> V.Bool (V.to_float a >= V.to_float b)
      | Ast.Spaceship -> V.Int (compare (V.to_float a) (V.to_float b))
      | Ast.Bool_xor -> V.Bool (V.to_bool a <> V.to_bool b)
      | Ast.Bit_and -> V.Int (V.to_int a land V.to_int b)
      | Ast.Bit_or -> V.Int (V.to_int a lor V.to_int b)
      | Ast.Bit_xor -> V.Int (V.to_int a lxor V.to_int b)
      | Ast.Shl -> V.Int (V.to_int a lsl min 62 (max 0 (V.to_int b)))
      | Ast.Shr -> V.Int (V.to_int a asr min 62 (max 0 (V.to_int b)))
      | Ast.Coalesce -> if a = V.Null then b else a
      | Ast.Instanceof -> V.Bool false
      | Ast.Bool_and | Ast.Bool_or -> assert false)

and assign st sc (lhs : Ast.expr) (v : V.t) : unit =
  match lhs.Ast.e with
  | Ast.Var name -> Hashtbl.replace sc name v
  | Ast.Index (base, idx) -> (
      match base.Ast.e with
      | Ast.Var name ->
          let cur = match get_var sc name with V.Arr p -> p | _ -> [] in
          let updated =
            match idx with
            | Some idx -> V.arr_set cur (eval st sc idx) v
            | None -> V.arr_push cur v
          in
          Hashtbl.replace sc name (V.Arr updated)
      | _ -> ())
  | Ast.List es ->
      let pairs = match v with V.Arr p -> p | _ -> [] in
      List.iteri
        (fun i target ->
          match target with
          | Some t -> assign st sc t (V.arr_get pairs (V.Int i))
          | None -> ())
        es
  | Ast.Prop _ | Ast.Static_prop _ | Ast.Var_var _ -> ()
  | _ -> ()

and eval_call st sc loc (callee : Ast.callee) (args : Ast.arg list) : V.t =
  let argv = List.map (fun (a : Ast.arg) -> eval st sc a.Ast.a_expr) args in
  match callee with
  | Ast.F_ident f -> call_function st sc loc (String.lowercase_ascii f) argv
  | Ast.F_var fe ->
      let name = V.to_string (eval st sc fe) in
      call_function st sc loc (String.lowercase_ascii name) argv
  | Ast.F_method (obj, Ast.Mem_ident m) ->
      let objname =
        match obj.Ast.e with Ast.Var v -> String.lowercase_ascii v | _ -> "obj"
      in
      st.cfg.on_event
        { ev_name = objname ^ "->" ^ String.lowercase_ascii m; ev_args = argv; ev_loc = loc };
      (* $wpdb->prepare behaves like sprintf with escaping *)
      if String.lowercase_ascii m = "prepare" then
        match argv with
        | fmt :: rest ->
            V.Str
              (Builtins.sprintf_php (V.to_string fmt)
                 (List.map (fun v -> V.Str (Builtins.escape_quotes (V.to_string v))) rest))
        | [] -> V.Null
      else V.Null
  | Ast.F_method (_, Ast.Mem_expr _) -> V.Null
  | Ast.F_static (_, m) -> call_function st sc loc (String.lowercase_ascii m) argv

and call_function st _sc loc (name : string) (argv : V.t list) : V.t =
  st.cfg.on_event { ev_name = name; ev_args = argv; ev_loc = loc };
  match Hashtbl.find_opt st.functions name with
  | Some f -> call_user st f argv
  | None -> (
      match Builtins.call name argv with
      | Some v -> v
      | None -> (
          (* a few builtins need the scope *)
          match name with
          | "compact" | "extract" -> V.Null
          | _ -> V.Null))

and call_user st (f : Ast.func) (argv : V.t list) : V.t =
  if st.depth > 48 then V.Null
  else begin
    st.depth <- st.depth + 1;
    let sc : scope = Hashtbl.create 16 in
    List.iteri
      (fun i (p : Ast.param) ->
        let v =
          match List.nth_opt argv i with
          | Some v -> v
          | None -> (
              match p.Ast.p_default with
              | Some d -> eval st sc d
              | None -> V.Null)
        in
        Hashtbl.replace sc p.Ast.p_name v)
      f.Ast.f_params;
    let result =
      try
        exec_stmts st sc f.Ast.f_body;
        V.Null
      with Return_v v -> v
    in
    st.depth <- st.depth - 1;
    result
  end

(* ------------------------------------------------------------------ *)

and exec_stmts st sc stmts = List.iter (exec_stmt st sc) stmts

and exec_stmt st sc (s : Ast.stmt) : unit =
  tick st;
  match s.Ast.s with
  | Ast.Expr_stmt e -> ignore (eval st sc e)
  | Ast.Echo es ->
      List.iter
        (fun e ->
          let v = eval st sc e in
          st.cfg.on_event { ev_name = "echo"; ev_args = [ v ]; ev_loc = s.Ast.sloc })
        es
  | Ast.If (branches, els) -> (
      let rec go = function
        | (cond, body) :: rest ->
            if V.to_bool (eval st sc cond) then exec_stmts st sc body else go rest
        | [] -> ( match els with Some body -> exec_stmts st sc body | None -> ())
      in
      go branches)
  | Ast.While (cond, body) ->
      let iter = ref 0 in
      (try
         while V.to_bool (eval st sc cond) && !iter < 10_000 do
           incr iter;
           try exec_stmts st sc body with Continue_n n when n <= 1 -> ()
         done
       with Break_n n when n <= 1 -> ())
  | Ast.Do_while (body, cond) ->
      let iter = ref 0 in
      (try
         let continue = ref true in
         while !continue && !iter < 10_000 do
           incr iter;
           (try exec_stmts st sc body with Continue_n n when n <= 1 -> ());
           continue := V.to_bool (eval st sc cond)
         done
       with Break_n n when n <= 1 -> ())
  | Ast.For (init, conds, steps, body) ->
      List.iter (fun e -> ignore (eval st sc e)) init;
      let check () =
        match conds with
        | [] -> true
        | _ -> V.to_bool (eval st sc (List.nth conds (List.length conds - 1)))
      in
      let iter = ref 0 in
      (try
         while check () && !iter < 10_000 do
           incr iter;
           (try exec_stmts st sc body with Continue_n n when n <= 1 -> ());
           List.iter (fun e -> ignore (eval st sc e)) steps
         done
       with Break_n n when n <= 1 -> ())
  | Ast.Foreach (subject, binding, body) -> (
      let subj = eval st sc subject in
      match subj with
      | V.Arr pairs -> (
          try
            List.iter
              (fun (k, v) ->
                tick st;
                (match binding.Ast.fe_key with
                | Some ke -> assign st sc ke k
                | None -> ());
                assign st sc binding.Ast.fe_value v;
                try exec_stmts st sc body with Continue_n n when n <= 1 -> ())
              pairs
          with Break_n n when n <= 1 -> ())
      | _ -> ())
  | Ast.Switch (subject, cases) -> (
      let v = eval st sc subject in
      (* find the matching case, then fall through *)
      let rec find = function
        | [] -> []
        | Ast.Case (e, _) :: _ as all when V.loose_eq v (eval st sc e) -> all
        | _ :: rest -> find rest
      in
      let selected =
        match find cases with
        | [] ->
            (* no case matched: run from default *)
            let rec from_default = function
              | Ast.Default _ :: _ as all -> all
              | _ :: rest -> from_default rest
              | [] -> []
            in
            from_default cases
        | l -> l
      in
      try
        List.iter
          (function
            | Ast.Case (_, body) | Ast.Default body -> exec_stmts st sc body)
          selected
      with Break_n n when n <= 1 -> ())
  | Ast.Break n -> raise (Break_n (Option.value ~default:1 n))
  | Ast.Continue n -> raise (Continue_n (Option.value ~default:1 n))
  | Ast.Return e ->
      let v = match e with Some e -> eval st sc e | None -> V.Null in
      raise (Return_v v)
  | Ast.Global names ->
      List.iter
        (fun name ->
          Hashtbl.replace sc name (get_var st.globals name))
        names
  | Ast.Static_vars vars ->
      List.iter
        (fun (name, init) ->
          if not (Hashtbl.mem sc name) then
            Hashtbl.replace sc name
              (match init with Some e -> eval st sc e | None -> V.Null))
        vars
  | Ast.Unset es ->
      List.iter
        (fun e -> match e.Ast.e with Ast.Var v -> Hashtbl.remove sc v | _ -> ())
        es
  | Ast.Throw e -> raise (Php_exception (eval st sc e))
  | Ast.Try (body, catches, fin) ->
      (try exec_stmts st sc body
       with Php_exception v -> (
         match catches with
         | c :: _ ->
             (match c.Ast.c_var with
             | Some var -> Hashtbl.replace sc var v
             | None -> ());
             exec_stmts st sc c.Ast.c_body
         | [] -> ()));
      (match fin with Some body -> exec_stmts st sc body | None -> ())
  | Ast.Func_def _ | Ast.Class_def _ | Ast.Inline_html _ | Ast.Nop | Ast.Const_def _ -> ()
  | Ast.Block body -> exec_stmts st sc body

(* ------------------------------------------------------------------ *)

(** Collect the callable functions of a program (including methods,
    registered under their bare name). *)
let collect_functions (prog : Ast.program) : (string, Ast.func) Hashtbl.t =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (f : Ast.func) ->
      let key = String.lowercase_ascii f.Ast.f_name in
      if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key f)
    (Visitor.collect_functions prog);
  tbl

(** Execute a program under [config].  Termination is guaranteed by the
    step bound; the result tells how the run ended.

    [start_line] skips top-level statements that begin before the given
    line (function definitions are still collected from the whole
    program) — used by the confirmation replays so an unrelated earlier
    flow's [die()] cannot mask the flow under test. *)
type outcome = Completed | Exited | Timed_out | Uncaught of string

let run ?(start_line = 0) (cfg : config) (prog : Ast.program) : outcome =
  let st =
    {
      cfg;
      globals = Hashtbl.create 32;
      functions = collect_functions prog;
      steps = 0;
      depth = 0;
    }
  in
  let body =
    (* run from the top-level statement containing [start_line]: the last
       statement starting at or before it *)
    let anchor =
      List.fold_left
        (fun acc (s : Ast.stmt) ->
          let l = s.Ast.sloc.Loc.line in
          if l <= start_line && l > acc then l else acc)
        0 prog
    in
    List.filter (fun (s : Ast.stmt) -> s.Ast.sloc.Loc.line >= anchor) prog
  in
  try
    exec_stmts st st.globals body;
    Completed
  with
  | Exit_script -> Exited
  | Timeout -> Timed_out
  | Php_exception v -> Uncaught (V.to_string v)
  | Return_v _ | Break_n _ | Continue_n _ -> Completed
