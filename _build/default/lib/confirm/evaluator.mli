(** A bounded evaluator for the PHP subset: executes a program with
    attacker-chosen superglobal inputs and reports every sink-relevant
    event (calls, echos, includes, backticks) to a callback.

    This is not a general PHP runtime — objects are opaque, I/O does
    nothing, and execution is step-bounded — but it is faithful on the
    string/array/control-flow fragment that decides whether an attack
    payload survives validation and sanitization on its way to a sink. *)

open Wap_php

(** A sink-relevant runtime event. *)
type event = {
  ev_name : string;
      (** function name (lowercase), ["obj->method"], ["echo"],
          ["include"], ["exit"], or ["shell_exec"] for backticks *)
  ev_args : Value.t list;
  ev_loc : Loc.t;
}

type config = {
  input : superglobal:string -> key:string -> Value.t;
      (** value of [$_SG['key']] *)
  input_array : superglobal:string -> (Value.t * Value.t) list;
      (** the whole array, for [foreach ($_GET as ...)] *)
  on_event : event -> unit;
  max_steps : int;
}

(** How a run ended. *)
type outcome = Completed | Exited | Timed_out | Uncaught of string

(** Execute a program under [config].  Termination is guaranteed by the
    step bound (and per-loop iteration caps).

    [start_line] skips top-level statements that begin before the given
    line — function definitions are still collected from the whole
    program — so a confirmation replay can start at the flow under
    test. *)
val run : ?start_line:int -> config -> Ast.program -> outcome

(** All callable functions of a program (including methods, registered
    under their bare lowercase name). *)
val collect_functions : Ast.program -> (string, Ast.func) Hashtbl.t
