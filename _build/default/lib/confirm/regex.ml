(** A small backtracking regex engine covering the PCRE subset that
    appears in real validation code: literals, [.], escapes ([\d \w \s]
    and friends), character classes with ranges and negation, greedy
    quantifiers ([* + ? {m} {m,} {m,n}]), groups, alternation, anchors
    and the [i] flag.

    Used by the dynamic confirmation engine to give [preg_match],
    [preg_replace] and [preg_split] real semantics when replaying
    candidate flows with attack payloads. *)

type node =
  | Lit of char
  | Any  (** [.] — everything but newline *)
  | Cls of (char * char) list * bool  (** ranges, negated? *)
  | Seq of node list
  | Alt of node list
  | Rep of node * int * int option  (** greedy {min, max} *)
  | Bol  (** [^] *)
  | Eol  (** [$] *)

type t = {
  node : node;
  ci : bool;  (** case-insensitive ([i] flag) *)
}

exception Unsupported of string

(* ------------------------------------------------------------------ *)
(* Parsing.                                                            *)

let class_of_escape = function
  | 'd' -> Some ([ ('0', '9') ], false)
  | 'D' -> Some ([ ('0', '9') ], true)
  | 'w' -> Some ([ ('a', 'z'); ('A', 'Z'); ('0', '9'); ('_', '_') ], false)
  | 'W' -> Some ([ ('a', 'z'); ('A', 'Z'); ('0', '9'); ('_', '_') ], true)
  | 's' -> Some ([ (' ', ' '); ('\t', '\t'); ('\n', '\n'); ('\r', '\r'); ('\011', '\012') ], false)
  | 'S' -> Some ([ (' ', ' '); ('\t', '\t'); ('\n', '\n'); ('\r', '\r'); ('\011', '\012') ], true)
  | _ -> None

let escaped_literal = function
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | 'f' -> '\012'
  | 'v' -> '\011'
  | '0' -> '\000'
  | c -> c

(* parse the body (no delimiters) *)
let parse_body (src : string) : node =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> raise (Unsupported (Printf.sprintf "expected %c in regex" c))
  in
  let parse_int () =
    let start = !pos in
    while !pos < n && src.[!pos] >= '0' && src.[!pos] <= '9' do
      advance ()
    done;
    if !pos = start then None else Some (int_of_string (String.sub src start (!pos - start)))
  in
  let parse_class () =
    (* [ already consumed *)
    let neg =
      match peek () with
      | Some '^' ->
          advance ();
          true
      | _ -> false
    in
    let ranges = ref [] in
    let rec loop () =
      match peek () with
      | None -> raise (Unsupported "unterminated character class")
      | Some ']' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some c ->
              advance ();
              (match class_of_escape c with
              | Some (rs, false) -> ranges := rs @ !ranges
              | Some (_, true) -> raise (Unsupported "negated escape inside class")
              | None ->
                  let c = escaped_literal c in
                  ranges := (c, c) :: !ranges)
          | None -> raise (Unsupported "dangling backslash in class"));
          loop ()
      | Some c ->
          advance ();
          if peek () = Some '-' && !pos + 1 < n && src.[!pos + 1] <> ']' then begin
            advance ();
            match peek () with
            | Some hi ->
                advance ();
                ranges := (c, hi) :: !ranges;
                loop ()
            | None -> raise (Unsupported "unterminated range")
          end
          else begin
            ranges := (c, c) :: !ranges;
            loop ()
          end
    in
    loop ();
    Cls (List.rev !ranges, neg)
  in
  let rec parse_alt () =
    let first = parse_seq () in
    let rec more acc =
      match peek () with
      | Some '|' ->
          advance ();
          more (parse_seq () :: acc)
      | _ -> List.rev acc
    in
    match more [ first ] with [ single ] -> single | alts -> Alt alts
  and parse_seq () =
    let items = ref [] in
    let rec loop () =
      match peek () with
      | None | Some '|' | Some ')' -> ()
      | Some _ ->
          items := parse_postfix () :: !items;
          loop ()
    in
    loop ();
    match List.rev !items with [ single ] -> single | l -> Seq l
  and parse_postfix () =
    let atom = parse_atom () in
    match peek () with
    | Some '*' ->
        advance ();
        Rep (atom, 0, None)
    | Some '+' ->
        advance ();
        Rep (atom, 1, None)
    | Some '?' ->
        advance ();
        Rep (atom, 0, Some 1)
    | Some '{' ->
        advance ();
        let lo = match parse_int () with Some l -> l | None -> 0 in
        let hi =
          match peek () with
          | Some ',' ->
              advance ();
              parse_int ()
          | _ -> Some lo
        in
        expect '}';
        Rep (atom, lo, hi)
    | _ -> atom
  and parse_atom () =
    match peek () with
    | None -> raise (Unsupported "empty atom")
    | Some '(' ->
        advance ();
        (* tolerate the non-capturing marker *)
        if !pos + 1 < n && src.[!pos] = '?' && src.[!pos + 1] = ':' then pos := !pos + 2;
        let inner = parse_alt () in
        expect ')';
        inner
    | Some '[' ->
        advance ();
        parse_class ()
    | Some '.' ->
        advance ();
        Any
    | Some '^' ->
        advance ();
        Bol
    | Some '$' ->
        advance ();
        Eol
    | Some '\\' ->
        advance ();
        (match peek () with
        | Some c ->
            advance ();
            (match class_of_escape c with
            | Some (ranges, neg) -> Cls (ranges, neg)
            | None -> Lit (escaped_literal c))
        | None -> raise (Unsupported "dangling backslash"))
    | Some ('*' | '+' | '?') -> raise (Unsupported "quantifier without atom")
    | Some c ->
        advance ();
        Lit c
  in
  let node = parse_alt () in
  if !pos <> n then raise (Unsupported "trailing regex syntax");
  node

(** Compile a full PCRE-style pattern with delimiters and flags, e.g.
    ["/^[a-z]+$/i"].  Returns [None] when the pattern uses features
    outside the supported subset. *)
let compile (pattern : string) : t option =
  try
    if String.length pattern < 2 then None
    else begin
      let delim = pattern.[0] in
      let close =
        match delim with '(' -> ')' | '{' -> '}' | '[' -> ']' | '<' -> '>' | c -> c
      in
      match String.rindex_opt pattern close with
      | None | Some 0 -> None
      | Some last ->
          let body = String.sub pattern 1 (last - 1) in
          let flags = String.sub pattern (last + 1) (String.length pattern - last - 1) in
          let ci = String.contains flags 'i' in
          Some { node = parse_body body; ci }
    end
  with Unsupported _ -> None

(* ------------------------------------------------------------------ *)
(* Matching.                                                           *)

let canon ci c = if ci then Char.lowercase_ascii c else c

let in_class ci ranges neg c =
  let c = canon ci c in
  let hit =
    List.exists
      (fun (lo, hi) ->
        let lo = canon ci lo and hi = canon ci hi in
        c >= lo && c <= hi)
      ranges
  in
  if neg then not hit else hit

(* continuation-passing backtracking matcher; [k] receives the end
   position *)
let rec mnode re (s : string) (node : node) (i : int) (k : int -> bool) : bool =
  let len = String.length s in
  match node with
  | Lit c -> i < len && canon re.ci s.[i] = canon re.ci c && k (i + 1)
  | Any -> i < len && s.[i] <> '\n' && k (i + 1)
  | Cls (ranges, neg) -> i < len && in_class re.ci ranges neg s.[i] && k (i + 1)
  | Bol -> (i = 0 || s.[i - 1] = '\n') && k i
  | Eol -> (i = len || s.[i] = '\n') && k i
  | Seq items ->
      let rec go items i =
        match items with
        | [] -> k i
        | first :: rest -> mnode re s first i (fun j -> go rest j)
      in
      go items i
  | Alt alts -> List.exists (fun a -> mnode re s a i k) alts
  | Rep (inner, lo, hi) ->
      (* greedy: consume as many as possible, backtrack down to [lo] *)
      let rec consume count i =
        let can_more = match hi with None -> true | Some h -> count < h in
        (if can_more then
           mnode re s inner i (fun j -> j > i && consume (count + 1) j)
         else false)
        || (count >= lo && k i)
      in
      consume 0 i

(** Leftmost match: [Some (start, stop)] of the first match at or after
    position 0, greedy within. *)
let find (re : t) (s : string) : (int * int) option =
  let len = String.length s in
  let result = ref None in
  let rec try_at i =
    if i > len then None
    else if
      mnode re s re.node i (fun j ->
          result := Some (i, j);
          true)
    then !result
    else try_at (i + 1)
  in
  try_at 0

(** [preg_match] semantics: does the pattern match anywhere? *)
let matches (re : t) (s : string) : bool = find re s <> None

(** [preg_replace] semantics: replace every match (no backreferences in
    the template).  Empty matches advance by one to guarantee
    termination. *)
let replace (re : t) ~(template : string) (s : string) : string =
  let buf = Buffer.create (String.length s) in
  let len = String.length s in
  let rec go pos =
    if pos > len then ()
    else
      let rest = String.sub s pos (len - pos) in
      match find re rest with
      | None -> Buffer.add_string buf rest
      | Some (mstart, mstop) ->
          Buffer.add_string buf (String.sub rest 0 mstart);
          Buffer.add_string buf template;
          let advance = if mstop = mstart then mstart + 1 else mstop in
          if mstop = mstart && pos + mstart < len then
            Buffer.add_char buf s.[pos + mstart];
          go (pos + advance)
  in
  go 0;
  Buffer.contents buf

(** [preg_split] semantics (no limit, no flags). *)
let split (re : t) (s : string) : string list =
  let len = String.length s in
  let out = ref [] in
  let rec go pos =
    if pos > len then ()
    else
      let rest = String.sub s pos (len - pos) in
      match find re rest with
      | None | Some (_, 0) -> out := rest :: !out
      | Some (mstart, mstop) ->
          out := String.sub rest 0 mstart :: !out;
          go (pos + mstop)
  in
  go 0;
  List.rev !out
