(** A small backtracking regex engine covering the PCRE subset that
    appears in real validation code: literals, [.], escapes ([\d \w \s]
    and friends), character classes with ranges and negation, greedy
    quantifiers ([* + ? {m} {m,} {m,n}]), groups, alternation, anchors
    and the [i] flag.

    Used by the dynamic confirmation engine to give [preg_match],
    [preg_replace] and [preg_split] real semantics when replaying
    candidate flows with attack payloads. *)

type t

(** Compile a full PCRE-style pattern with delimiters and flags, e.g.
    ["/^[a-z]+$/i"].  [None] when the pattern uses unsupported
    features. *)
val compile : string -> t option

(** Leftmost match as [(start, stop)] byte offsets, greedy within. *)
val find : t -> string -> (int * int) option

(** [preg_match] semantics: does the pattern match anywhere? *)
val matches : t -> string -> bool

(** [preg_replace] semantics: replace every match (no backreferences). *)
val replace : t -> template:string -> string -> string

(** [preg_split] semantics (no limit, no flags). *)
val split : t -> string -> string list
