(** Runtime values of the bounded PHP evaluator, with PHP's loose
    coercion rules (the subset the corpus and fixes exercise). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of (t * t) list  (** insertion-ordered key/value pairs *)
[@@deriving show, eq]

let to_string = function
  | Null -> ""
  | Bool true -> "1"
  | Bool false -> ""
  | Int n -> string_of_int n
  | Float f ->
      let s = Printf.sprintf "%.10g" f in
      s
  | Str s -> s
  | Arr _ -> "Array"

let to_bool = function
  | Null -> false
  | Bool b -> b
  | Int n -> n <> 0
  | Float f -> f <> 0.0
  | Str s -> s <> "" && s <> "0"
  | Arr l -> l <> []

let is_numeric_string s =
  let s = String.trim s in
  s <> ""
  &&
  match float_of_string_opt s with
  | Some _ -> true
  | None -> false

let to_float = function
  | Null -> 0.0
  | Bool b -> if b then 1.0 else 0.0
  | Int n -> float_of_int n
  | Float f -> f
  | Str s -> (
      (* PHP takes the numeric prefix *)
      let rec prefix i =
        if i < String.length s
           && (match s.[i] with '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true | _ -> false)
        then prefix (i + 1)
        else i
      in
      match float_of_string_opt (String.sub s 0 (prefix 0)) with
      | Some f -> f
      | None -> 0.0)
  | Arr _ -> 1.0

let to_int v = int_of_float (to_float v)

(** PHP loose equality ([==]) for the scalar subset. *)
let rec loose_eq a b =
  match (a, b) with
  | Null, Null -> true
  | Arr x, Arr y ->
      List.length x = List.length y
      && List.for_all2 (fun (k1, v1) (k2, v2) -> loose_eq k1 k2 && loose_eq v1 v2) x y
  | Str x, Str y ->
      if is_numeric_string x && is_numeric_string y then to_float a = to_float b
      else String.equal x y
  | (Int _ | Float _), Str s when not (is_numeric_string s) -> (
      (* PHP 8 semantics: number == non-numeric-string compares as strings *)
      String.equal (to_string a) s)
  | Str s, (Int _ | Float _) when not (is_numeric_string s) ->
      String.equal s (to_string b)
  | Null, x | x, Null -> not (to_bool x)
  | Bool _, _ | _, Bool _ -> to_bool a = to_bool b
  | _ -> to_float a = to_float b

(** Strict equality ([===]). *)
let strict_eq a b = equal a b

(* --- array helpers --- *)

let arr_get (pairs : (t * t) list) key =
  let rec go = function
    | [] -> Null
    | (k, v) :: rest -> if loose_eq k key then v else go rest
  in
  go pairs

let arr_set (pairs : (t * t) list) key v =
  let rec go = function
    | [] -> [ (key, v) ]
    | (k, old) :: rest ->
        if loose_eq k key then (k, v) :: rest else (k, old) :: go rest
  in
  go pairs

let arr_push (pairs : (t * t) list) v =
  let next =
    List.fold_left
      (fun acc (k, _) -> match k with Int n when n >= acc -> n + 1 | _ -> acc)
      0 pairs
  in
  pairs @ [ (Int next, v) ]

let arr_has (pairs : (t * t) list) key =
  List.exists (fun (k, _) -> loose_eq k key) pairs
