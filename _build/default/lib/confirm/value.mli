(** Runtime values of the bounded PHP evaluator, with PHP's loose
    coercion rules (the subset the corpus and fixes exercise). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of (t * t) list  (** insertion-ordered key/value pairs *)
[@@deriving show, eq]

val to_string : t -> string
val to_bool : t -> bool
val to_float : t -> float
val to_int : t -> int

(** Is the string numeric in PHP's sense ([is_numeric])? *)
val is_numeric_string : string -> bool

(** PHP loose equality ([==]) for the scalar subset. *)
val loose_eq : t -> t -> bool

(** Strict equality ([===]). *)
val strict_eq : t -> t -> bool

(** {1 Array helpers} *)

val arr_get : (t * t) list -> t -> t
val arr_set : (t * t) list -> t -> t -> (t * t) list

(** Append with the next free integer key ([$a[] = v]). *)
val arr_push : (t * t) list -> t -> (t * t) list

val arr_has : (t * t) list -> t -> bool
