lib/core/aggregate.pp.ml: Hashtbl List Option String Tool Wap_catalog Wap_corpus Wap_php Wap_taint
