lib/core/aggregate.pp.mli: Tool Wap_corpus Wap_taint
