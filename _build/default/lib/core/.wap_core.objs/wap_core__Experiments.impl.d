lib/core/experiments.pp.ml: Aggregate List Printf String Tool Training Version Wap_catalog Wap_confirm Wap_corpus Wap_mining Wap_php Wap_report Wap_taint Wap_weapon
