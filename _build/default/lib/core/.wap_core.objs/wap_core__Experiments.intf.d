lib/core/experiments.pp.mli: Aggregate Tool Wap_corpus Wap_mining
