lib/core/export.pp.ml: Hashtbl Lazy List Option Printf Tool Wap_catalog Wap_confirm Wap_corpus Wap_php Wap_report Wap_taint
