lib/core/export.pp.mli: Tool Wap_confirm Wap_php Wap_report Wap_taint
