lib/core/tool.pp.ml: Hashtbl List Printf Sys Training Version Wap_catalog Wap_corpus Wap_fixer Wap_mining Wap_php Wap_taint Wap_weapon
