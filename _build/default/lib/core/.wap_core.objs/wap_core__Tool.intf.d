lib/core/tool.pp.mli: Version Wap_catalog Wap_corpus Wap_fixer Wap_mining Wap_php Wap_taint Wap_weapon
