lib/core/training.pp.ml: List Version Wap_catalog Wap_corpus Wap_mining Wap_php Wap_taint
