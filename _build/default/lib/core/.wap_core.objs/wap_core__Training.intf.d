lib/core/training.pp.mli: Version Wap_catalog Wap_corpus Wap_mining Wap_taint
