lib/core/version.pp.ml: Ppx_deriving_runtime Wap_catalog Wap_mining
