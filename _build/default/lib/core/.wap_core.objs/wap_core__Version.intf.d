lib/core/version.pp.mli: Ppx_deriving_runtime Wap_catalog Wap_mining
