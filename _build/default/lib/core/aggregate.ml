(** Scoring pipeline results against corpus ground truth, and
    aggregating them into the shapes of the paper's tables. *)

module VC = Wap_catalog.Vuln_class
module App = Wap_corpus.Appgen

(** Ground-truth lookup for one candidate: the seeded snippet whose line
    range contains the candidate's sink. *)
let truth_of_candidate (pkg : App.package) (c : Wap_taint.Trace.candidate) :
    App.seeded option =
  let line = c.Wap_taint.Trace.sink_loc.Wap_php.Loc.line in
  List.find_opt
    (fun (s : App.seeded) ->
      String.equal s.App.sd_file c.Wap_taint.Trace.file
      && line >= s.App.sd_line_lo && line <= s.App.sd_line_hi)
    pkg.App.pkg_seeded

let is_fp_label = function
  | Wap_corpus.Snippet.Fp_easy | Wap_corpus.Snippet.Fp_hard -> true
  | Wap_corpus.Snippet.Real | Wap_corpus.Snippet.Sanitized -> false

(** Per-package score: the FPP/FP bookkeeping of Tables VI and VII. *)
type score = {
  real_reported : int;  (** real vulnerabilities correctly reported *)
  real_missed : int;  (** real vulnerabilities dismissed as FP (bad!) *)
  real_undetected : int;  (** seeded real flows the detector never flagged *)
  fpp : int;  (** false positives correctly predicted (FPP column) *)
  fp : int;  (** false positives reported as vulnerabilities (FP column) *)
  unmatched : int;  (** candidates with no ground-truth entry (should be 0) *)
  by_group : (string * int) list;  (** reported real vulns per report group *)
  vuln_files : int;  (** files with at least one reported real vuln *)
}

let score_package (r : Tool.package_result) : score =
  let pkg = r.Tool.package in
  let real_reported = ref 0
  and real_missed = ref 0
  and fpp = ref 0
  and fp = ref 0
  and unmatched = ref 0 in
  let by_group : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let vuln_files : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (f : Tool.finding) ->
      match truth_of_candidate pkg f.Tool.candidate with
      | None -> incr unmatched
      | Some seeded ->
          let truly_fp = is_fp_label seeded.App.sd_label in
          if truly_fp then if f.Tool.predicted_fp then incr fpp else incr fp
          else if f.Tool.predicted_fp then incr real_missed
          else begin
            incr real_reported;
            let grp = VC.report_group seeded.App.sd_class in
            Hashtbl.replace by_group grp
              (1 + Option.value ~default:0 (Hashtbl.find_opt by_group grp));
            Hashtbl.replace vuln_files f.Tool.candidate.Wap_taint.Trace.file ()
          end)
    r.Tool.findings;
  let seeded_real =
    List.length
      (List.filter
         (fun s -> Wap_corpus.Snippet.equal_label s.App.sd_label Wap_corpus.Snippet.Real)
         pkg.App.pkg_seeded)
  in
  let detected_real = !real_reported + !real_missed in
  {
    real_reported = !real_reported;
    real_missed = !real_missed;
    real_undetected = max 0 (seeded_real - detected_real);
    fpp = !fpp;
    fp = !fp;
    unmatched = !unmatched;
    by_group =
      Hashtbl.fold (fun g n acc -> (g, n) :: acc) by_group []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    vuln_files = Hashtbl.length vuln_files;
  }

let group_count score g = Option.value ~default:0 (List.assoc_opt g score.by_group)

(** The report-group columns of Table VI (web applications). *)
let webapp_groups = [ "SQLI"; "XSS"; "Files"; "SCD"; "LDAPI"; "SF"; "HI"; "CS" ]

(** The report-group columns of Table VII (plugins). *)
let plugin_groups = [ "SQLI"; "XSS"; "Files"; "SCD"; "CS"; "HI" ]

let sum_scores (scores : score list) : score =
  List.fold_left
    (fun acc s ->
      {
        real_reported = acc.real_reported + s.real_reported;
        real_missed = acc.real_missed + s.real_missed;
        real_undetected = acc.real_undetected + s.real_undetected;
        fpp = acc.fpp + s.fpp;
        fp = acc.fp + s.fp;
        unmatched = acc.unmatched + s.unmatched;
        by_group =
          List.fold_left
            (fun bg (g, n) ->
              let cur = Option.value ~default:0 (List.assoc_opt g bg) in
              (g, cur + n) :: List.remove_assoc g bg)
            acc.by_group s.by_group;
        vuln_files = acc.vuln_files + s.vuln_files;
      })
    {
      real_reported = 0; real_missed = 0; real_undetected = 0; fpp = 0; fp = 0;
      unmatched = 0; by_group = []; vuln_files = 0;
    }
    scores
