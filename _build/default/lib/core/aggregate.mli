(** Scoring pipeline results against corpus ground truth, and
    aggregating them into the shapes of the paper's tables. *)

(** The seeded snippet whose line range contains the candidate's sink,
    if any. *)
val truth_of_candidate :
  Wap_corpus.Appgen.package ->
  Wap_taint.Trace.candidate ->
  Wap_corpus.Appgen.seeded option

val is_fp_label : Wap_corpus.Snippet.label -> bool

(** Per-package score: the FPP/FP bookkeeping of Tables VI and VII. *)
type score = {
  real_reported : int;  (** real vulnerabilities correctly reported *)
  real_missed : int;  (** real vulnerabilities dismissed as FP (bad!) *)
  real_undetected : int;  (** seeded real flows the detector never flagged *)
  fpp : int;  (** false positives correctly predicted (FPP column) *)
  fp : int;  (** false positives reported as vulnerabilities (FP column) *)
  unmatched : int;  (** candidates with no ground-truth entry (should be 0) *)
  by_group : (string * int) list;  (** reported real vulns per report group *)
  vuln_files : int;  (** files with at least one reported real vuln *)
}

val score_package : Tool.package_result -> score
val group_count : score -> string -> int

(** The report-group columns of Table VI (web applications). *)
val webapp_groups : string list

(** The report-group columns of Table VII (plugins). *)
val plugin_groups : string list

(** Pointwise sum of scores (group counts merged). *)
val sum_scores : score list -> score
