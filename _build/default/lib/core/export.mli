(** Machine-readable export of analysis results (JSON), for integration
    with editors, CI pipelines and issue trackers. *)

val loc_to_json : Wap_php.Loc.t -> Wap_report.Json.t
val origin_to_json : Wap_taint.Trace.origin -> Wap_report.Json.t

(** One finding; [verdict] attaches a dynamic-confirmation result. *)
val finding_to_json :
  ?verdict:Wap_confirm.Confirm.verdict -> Tool.finding -> Wap_report.Json.t

(** The whole result of one analyzed package/file as a JSON document.
    [confirm] additionally replays each finding with an attack payload
    and attaches the verdict. *)
val result_to_json : ?confirm:bool -> Tool.package_result -> Wap_report.Json.t

val result_to_string : ?confirm:bool -> Tool.package_result -> string

(** One finding as an HTML report row. *)
val html_row :
  ?verdict:Wap_confirm.Confirm.verdict -> Tool.finding -> Wap_report.Html.row

(** The whole result as a standalone HTML report; [confirm] attaches
    dynamic-confirmation verdicts. *)
val result_to_html : ?confirm:bool -> Tool.package_result -> string
