(** The WAP tool pipeline (Fig. 1): code analyzer -> false positive
    predictor -> code corrector, assembled for one of the two tool
    versions, optionally equipped with weapons. *)

module VC = Wap_catalog.Vuln_class
module Cat = Wap_catalog.Catalog

type t = {
  version : Version.t;
  specs : Cat.spec list;  (** active detectors, sub-modules + weapons *)
  predictor : Wap_mining.Predictor.t;
  weapons : Wap_weapon.Weapon.t list;
}

(** Create a tool instance.

    [weapons] adds weapon detectors (and their dynamic symptoms);
    [extra_sanitizers] registers user sanitization functions for
    specific classes, the §V-A "escape" extensibility mechanism —
    [None] as the class applies to every detector. *)
let create ?(seed = 2016) ?(weapons = []) ?(extra_sanitizers = []) ?dataset
    (version : Version.t) : t =
  let base_specs = Cat.specs_for (Version.classes version) in
  let weapon_specs = List.map (fun w -> w.Wap_weapon.Weapon.spec) weapons in
  let apply_extra (spec : Cat.spec) =
    let extras =
      List.filter_map
        (fun (cls, fn) ->
          match cls with
          | None -> Some (Cat.San_fn fn)
          | Some c when VC.equal c spec.Cat.vclass -> Some (Cat.San_fn fn)
          | Some _ -> None)
        extra_sanitizers
    in
    { spec with Cat.sanitizers = spec.Cat.sanitizers @ extras }
  in
  let specs = List.map apply_extra (base_specs @ weapon_specs) in
  let dynamic =
    List.concat_map (fun w -> w.Wap_weapon.Weapon.dynamic_symptoms) weapons
  in
  let config =
    Wap_mining.Predictor.with_dynamic_symptoms
      (Version.predictor_config version)
      dynamic
  in
  let dataset =
    match dataset with
    | Some d -> d
    | None -> Training.dataset_for ~seed version
  in
  let predictor = Wap_mining.Predictor.train ~seed config dataset in
  { version; specs; predictor; weapons }

(* ------------------------------------------------------------------ *)
(* Analysis results.                                                   *)

type finding = {
  candidate : Wap_taint.Trace.candidate;
  predicted_fp : bool;
  symptoms : string list;  (** justification (Fig. 3) *)
}

type package_result = {
  package : Wap_corpus.Appgen.package;
  files_analyzed : int;
  loc : int;
  analysis_seconds : float;
  candidates : Wap_taint.Trace.candidate list;  (** de-duplicated *)
  findings : finding list;
  reported : Wap_taint.Trace.candidate list;  (** predicted real -> reported *)
  predicted_fps : Wap_taint.Trace.candidate list;
}

(** De-duplicate candidates found by several detectors for the same sink
    location and report group (e.g. RFI and LFI both firing on one
    include). *)
let dedup_candidates (cands : Wap_taint.Trace.candidate list) :
    Wap_taint.Trace.candidate list =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun c ->
      let key = Wap_taint.Trace.dedup_key c in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    cands

exception Parse_failure of string * string (* file, message *)

let parse_package (pkg : Wap_corpus.Appgen.package) :
    Wap_taint.Analyzer.file_unit list =
  List.map
    (fun (f : Wap_corpus.Appgen.file) ->
      try
        {
          Wap_taint.Analyzer.path = f.Wap_corpus.Appgen.f_name;
          program =
            Wap_php.Parser.parse_string ~file:f.Wap_corpus.Appgen.f_name
              f.Wap_corpus.Appgen.f_source;
        }
      with
      | Wap_php.Parser.Error (msg, loc) ->
          raise (Parse_failure (f.Wap_corpus.Appgen.f_name,
                                Printf.sprintf "%s at %s" msg (Wap_php.Loc.to_string loc)))
      | Wap_php.Lexer.Error (msg, loc) ->
          raise (Parse_failure (f.Wap_corpus.Appgen.f_name,
                                Printf.sprintf "%s at %s" msg (Wap_php.Loc.to_string loc))))
    pkg.Wap_corpus.Appgen.pkg_files

(* the pipeline proper, once files are parsed *)
let analyze_units (t : t) (pkg : Wap_corpus.Appgen.package)
    (units : Wap_taint.Analyzer.file_unit list) ~(t0 : float) : package_result =
  let raw = Wap_taint.Analyzer.analyze_with_specs ~specs:t.specs units in
  let candidates = dedup_candidates raw in
  let findings =
    List.map
      (fun c ->
        {
          candidate = c;
          predicted_fp = Wap_mining.Predictor.is_false_positive t.predictor c;
          symptoms = Wap_mining.Predictor.justification t.predictor c;
        })
      candidates
  in
  let predicted_fps, reported =
    List.partition (fun f -> f.predicted_fp) findings
  in
  {
    package = pkg;
    files_analyzed = List.length pkg.Wap_corpus.Appgen.pkg_files;
    loc = Wap_corpus.Appgen.loc_of_package pkg;
    analysis_seconds = Sys.time () -. t0;
    candidates;
    findings;
    reported = List.map (fun f -> f.candidate) reported;
    predicted_fps = List.map (fun f -> f.candidate) predicted_fps;
  }

(** Run the full pipeline over one package. *)
let analyze_package (t : t) (pkg : Wap_corpus.Appgen.package) : package_result =
  let t0 = Sys.time () in
  let units = parse_package pkg in
  analyze_units t pkg units ~t0

(** Analyze a set of in-memory files as one application, parsing
    tolerantly: malformed files contribute what parses plus recovered
    errors instead of aborting the scan. *)
let analyze_sources (t : t) (files : (string * string) list) :
    package_result * (string * Wap_php.Parser.recovered_error list) list =
  let t0 = Sys.time () in
  let pkg =
    {
      Wap_corpus.Appgen.pkg_name =
        (match files with (n, _) :: _ -> n | [] -> "<empty>");
      pkg_version = "";
      pkg_kind = Wap_corpus.Appgen.Webapp;
      pkg_files =
        List.map
          (fun (f_name, f_source) -> { Wap_corpus.Appgen.f_name; f_source })
          files;
      pkg_seeded = [];
    }
  in
  let units, errors =
    List.fold_left
      (fun (units, errors) (path, src) ->
        let program, errs = Wap_php.Parser.parse_string_tolerant ~file:path src in
        ( { Wap_taint.Analyzer.path; program } :: units,
          if errs = [] then errors else (path, errs) :: errors ))
      ([], []) files
  in
  (analyze_units t pkg (List.rev units) ~t0, List.rev errors)

(** Analyze raw PHP source (used by the CLI and the examples). *)
let analyze_source (t : t) ~file (src : string) : package_result =
  let pkg =
    {
      Wap_corpus.Appgen.pkg_name = file;
      pkg_version = "";
      pkg_kind = Wap_corpus.Appgen.Webapp;
      pkg_files = [ { Wap_corpus.Appgen.f_name = file; f_source = src } ];
      pkg_seeded = [];
    }
  in
  analyze_package t pkg

(** Correct the reported vulnerabilities of a single source file,
    returning the fixed PHP. *)
let correct_source (t : t) ~file (src : string) : string * Wap_fixer.Corrector.report =
  let result = analyze_source t ~file src in
  Wap_fixer.Corrector.correct_source ~file src result.reported
