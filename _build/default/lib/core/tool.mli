(** The WAP tool pipeline (Fig. 1): code analyzer -> false positive
    predictor -> code corrector, assembled for one of the two tool
    versions, optionally equipped with weapons. *)

type t = {
  version : Version.t;
  specs : Wap_catalog.Catalog.spec list;
      (** active detectors: sub-modules + weapons *)
  predictor : Wap_mining.Predictor.t;
  weapons : Wap_weapon.Weapon.t list;
}

(** Create a tool instance; trains the false-positive predictor
    deterministically from the seed.

    [weapons] adds weapon detectors (and their dynamic symptoms);
    [extra_sanitizers] registers user sanitization functions — the §V-A
    "escape" extensibility mechanism ([(None, fn)] applies to every
    detector, [(Some cls, fn)] to one class); [dataset] supplies an
    external training set (the "trained data sets" input of Fig. 1)
    instead of generating one. *)
val create :
  ?seed:int ->
  ?weapons:Wap_weapon.Weapon.t list ->
  ?extra_sanitizers:(Wap_catalog.Vuln_class.t option * string) list ->
  ?dataset:Wap_mining.Dataset.t ->
  Version.t ->
  t

type finding = {
  candidate : Wap_taint.Trace.candidate;
  predicted_fp : bool;
  symptoms : string list;  (** justification (Fig. 3) *)
}

type package_result = {
  package : Wap_corpus.Appgen.package;
  files_analyzed : int;
  loc : int;
  analysis_seconds : float;
  candidates : Wap_taint.Trace.candidate list;  (** de-duplicated *)
  findings : finding list;
  reported : Wap_taint.Trace.candidate list;
      (** predicted real -> reported to the user *)
  predicted_fps : Wap_taint.Trace.candidate list;
}

(** De-duplicate candidates found by several detectors for the same sink
    location and report group (e.g. RFI and LFI both firing on one
    include). *)
val dedup_candidates :
  Wap_taint.Trace.candidate list -> Wap_taint.Trace.candidate list

(** A corpus file failed to parse: (file, message). *)
exception Parse_failure of string * string

(** Parse a package's files into analyzer units.
    @raise Parse_failure on malformed PHP. *)
val parse_package :
  Wap_corpus.Appgen.package -> Wap_taint.Analyzer.file_unit list

(** Run the full pipeline over one package. *)
val analyze_package : t -> Wap_corpus.Appgen.package -> package_result

(** Analyze a set of in-memory [(path, source)] files as one
    application, parsing tolerantly: malformed files contribute what
    parses, plus their recovered errors, instead of aborting the scan. *)
val analyze_sources :
  t ->
  (string * string) list ->
  package_result * (string * Wap_php.Parser.recovered_error list) list

(** Analyze raw PHP source (used by the CLI and the examples). *)
val analyze_source : t -> file:string -> string -> package_result

(** Correct the reported vulnerabilities of a single source file,
    returning the fixed PHP. *)
val correct_source :
  t -> file:string -> string -> string * Wap_fixer.Corrector.report
