(** Building the predictor's training data set.

    The paper created its data set by running WAP in
    candidate-outputting mode over 29 open-source applications and
    labelling every candidate by hand; here the corpus generator plays
    the role of those applications, and labels come from the generation
    ground truth.  The rest of the procedure is the paper's: collect
    symptoms with the real collector, de-duplicate, drop ambiguous
    instances, balance the classes. *)

module VC = Wap_catalog.Vuln_class
module Cat = Wap_catalog.Catalog

(** Candidate flows of one labelled training program, found by the real
    detector. *)
let candidates_of_program (tp : Wap_corpus.Corpus.training_program) :
    Wap_taint.Trace.candidate list =
  let spec = Cat.default_spec tp.Wap_corpus.Corpus.tp_class in
  let program =
    Wap_php.Parser.parse_string ~file:"<train>" tp.Wap_corpus.Corpus.tp_source
  in
  Wap_taint.Analyzer.analyze_program ~spec ~file:"<train>" program

(** Labelled evidence pairs for a version's class list. *)
let evidence_pairs ?(legacy = false) ~seed ~(classes : VC.t list) ~per_label () :
    (Wap_mining.Evidence.t * bool) list =
  let programs = Wap_corpus.Corpus.training_programs ~seed ~legacy ~per_label () in
  List.concat_map
    (fun (tp : Wap_corpus.Corpus.training_program) ->
      if not (List.mem tp.Wap_corpus.Corpus.tp_class classes) then []
      else
        candidates_of_program tp
        |> List.map (fun c ->
               (Wap_mining.Evidence.collect c, tp.Wap_corpus.Corpus.tp_is_fp)))
    programs

(** Build the training data set for a tool version: [target] instances,
    balanced, de-duplicated, deterministic in [seed]. *)
let build_dataset ?(seed = 2016) ?split ~(mode : Wap_mining.Attributes.mode)
    ~(classes : VC.t list) ~target () : Wap_mining.Dataset.t =
  (* over-generate: de-duplication discards most raw instances; the
     Original attribute encoding only ever sees legacy-era snippets, as
     the paper's 76-instance set predates the new symptoms *)
  let legacy = mode = Wap_mining.Attributes.Original in
  (* the coarse 15-attribute encoding yields few distinct vectors, so the
     legacy set needs a much larger raw pool to fill its 76 instances *)
  let per_label = max 128 (target * if legacy then 16 else 8) in
  let pairs = evidence_pairs ~legacy ~seed ~classes ~per_label () in
  let deduped =
    Wap_mining.Dataset.of_evidence ~mode pairs |> Wap_mining.Dataset.deduplicate
  in
  let selected =
    match split with
    | Some (fp, rv) -> Wap_mining.Dataset.take_split ~fp ~rv deduped
    | None -> Wap_mining.Dataset.balance ~n:target deduped
  in
  Wap_mining.Dataset.shuffle ~seed selected

(** The data set of a tool version: 256 balanced instances for WAPe;
    for WAP v2.1 the paper's unbalanced 76-instance split (32 false
    positives, 44 real vulnerabilities). *)
let dataset_for ?(seed = 2016) (v : Version.t) : Wap_mining.Dataset.t =
  let split = match v with Version.Wap_v21 -> Some (32, 44) | Version.Wape -> None in
  build_dataset ~seed ?split ~mode:(Version.attribute_mode v)
    ~classes:(Version.classes v)
    ~target:(Version.training_instances v) ()
