(** Building the predictor's training data set.

    The paper created its data set by running WAP in
    candidate-outputting mode over 29 open-source applications and
    labelling every candidate by hand; here the corpus generator plays
    the role of those applications, and labels come from the generation
    ground truth.  The rest of the procedure is the paper's: collect
    symptoms with the real collector, de-duplicate, drop ambiguous
    instances, balance the classes. *)

(** Candidate flows of one labelled training program, found by the real
    detector for the program's class. *)
val candidates_of_program :
  Wap_corpus.Corpus.training_program -> Wap_taint.Trace.candidate list

(** Labelled (evidence, is-false-positive) pairs, restricted to
    [classes]. *)
val evidence_pairs :
  ?legacy:bool ->
  seed:int ->
  classes:Wap_catalog.Vuln_class.t list ->
  per_label:int ->
  unit ->
  (Wap_mining.Evidence.t * bool) list

(** Build a training data set: [target] instances (balanced, or split
    as [fp, rv] when [split] is given), de-duplicated, deterministic in
    [seed].  The [Original] attribute mode automatically restricts the
    generator to legacy-era snippets. *)
val build_dataset :
  ?seed:int ->
  ?split:int * int ->
  mode:Wap_mining.Attributes.mode ->
  classes:Wap_catalog.Vuln_class.t list ->
  target:int ->
  unit ->
  Wap_mining.Dataset.t

(** The data set of a tool version: 256 balanced instances for WAPe;
    for WAP v2.1 the paper's unbalanced split (32 false positives,
    44 real vulnerabilities, as available). *)
val dataset_for : ?seed:int -> Version.t -> Wap_mining.Dataset.t
