(** The two tool configurations compared in the evaluation:

    - [Wap_v21]: the original tool — 8 vulnerability classes, the
      16-attribute predictor trained on the small 76-instance set with
      Logistic Regression, Random Tree and SVM;
    - [Wape]: the extended tool of the paper — 15 classes, the
      61-attribute predictor trained on the 256-instance set with SVM,
      Logistic Regression and Random Forest. *)

module VC = Wap_catalog.Vuln_class

type t = Wap_v21 | Wape [@@deriving show, eq]

let name = function Wap_v21 -> "WAP v2.1" | Wape -> "WAPe"

let classes = function Wap_v21 -> VC.wap_v21 | Wape -> VC.wape

let predictor_config = function
  | Wap_v21 -> Wap_mining.Predictor.original_config
  | Wape -> Wap_mining.Predictor.extended_config

let attribute_mode = function
  | Wap_v21 -> Wap_mining.Attributes.Original
  | Wape -> Wap_mining.Attributes.Extended

(** Training-set size (number of labelled instances). *)
let training_instances = function Wap_v21 -> 76 | Wape -> 256
