(** The two tool configurations compared in the evaluation:

    - [Wap_v21]: the original tool — 8 vulnerability classes (9
      detectors), the 16-attribute predictor trained on the small
      76-instance set with Logistic Regression, Random Tree and SVM;
    - [Wape]: the extended tool of the paper — 15 classes (16
      detectors), the 61-attribute predictor trained on the 256-instance
      set with SVM, Logistic Regression and Random Forest. *)

type t = Wap_v21 | Wape [@@deriving show, eq]

val name : t -> string
val classes : t -> Wap_catalog.Vuln_class.t list
val predictor_config : t -> Wap_mining.Predictor.config
val attribute_mode : t -> Wap_mining.Attributes.mode

(** Training-set size the paper reports (76 / 256 instances). *)
val training_instances : t -> int
