lib/corpus/appgen.pp.ml: Array Buffer Char List Printf Profiles Random Snippet String Wap_catalog
