lib/corpus/appgen.pp.mli: Profiles Snippet Wap_catalog
