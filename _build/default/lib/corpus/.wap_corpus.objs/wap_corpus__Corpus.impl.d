lib/corpus/corpus.pp.ml: Appgen List Profiles Snippet String Wap_catalog
