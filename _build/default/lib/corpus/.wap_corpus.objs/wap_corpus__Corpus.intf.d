lib/corpus/corpus.pp.mli: Appgen Profiles Wap_catalog
