lib/corpus/profiles.pp.ml: List Printf Wap_catalog
