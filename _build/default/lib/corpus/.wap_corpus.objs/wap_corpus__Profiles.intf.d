lib/corpus/profiles.pp.mli: Wap_catalog
