lib/corpus/snippet.pp.ml: List Ppx_deriving_runtime Printf Random String Wap_catalog
