lib/corpus/snippet.pp.mli: Ppx_deriving_runtime Random Wap_catalog
