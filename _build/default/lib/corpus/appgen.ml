(** Synthetic application generator.

    Builds complete PHP packages from a profile: the requested number of
    files, with the profile's real vulnerabilities, false-positive
    candidates and a sprinkling of sanitized flows distributed over
    them, embedded in benign filler code.  Everything is deterministic
    in the seed. *)

module VC = Wap_catalog.Vuln_class

type file = { f_name : string; f_source : string }

type seeded = {
  sd_class : VC.t;
  sd_label : Snippet.label;
  sd_file : string;
  sd_line_lo : int;  (** first line of the seeded snippet (1-based) *)
  sd_line_hi : int;  (** last line of the seeded snippet *)
}

type kind = Webapp | Plugin

type package = {
  pkg_name : string;
  pkg_version : string;
  pkg_kind : kind;
  pkg_files : file list;
  pkg_seeded : seeded list;  (** ground truth *)
}

let loc_of_package p =
  List.fold_left
    (fun acc f ->
      acc + List.length (String.split_on_char '\n' f.f_source))
    0 p.pkg_files

(* count ground-truth entries by label *)
let count_label p label =
  List.length (List.filter (fun s -> Snippet.equal_label s.sd_label label) p.pkg_seeded)

let seeded_files p =
  List.sort_uniq String.compare
    (List.filter_map
       (fun s -> if Snippet.equal_label s.sd_label Snippet.Real then Some s.sd_file else None)
       p.pkg_seeded)

(* ------------------------------------------------------------------ *)

let hash_name name =
  (* stable across runs, unlike Hashtbl.hash on boxed values in theory;
     simple FNV-1a *)
  let h = ref 2166136261 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 16777619 land 0x3FFFFFFF) name;
  !h

(* expand per-class counts into a snippet work list *)
let expand_vulns vulns : (VC.t * Snippet.label) list =
  List.concat_map (fun (c, n) -> List.init n (fun _ -> (c, Snippet.Real))) vulns

let fp_classes vulns =
  (* false positives are seeded in the classes the app actually uses,
     defaulting to SQLI/XSS; session fixation is excluded because
     input validation cannot make an SF flow a false positive *)
  match List.filter (fun c -> c <> VC.Sf) (List.map fst vulns) with
  | [] -> [ VC.Sqli; VC.Xss_reflected ]
  | cs -> cs

let file_name kind i =
  match kind with
  | Webapp ->
      let stems =
        [| "index"; "admin"; "view"; "edit"; "list"; "login"; "profile"; "search";
           "report"; "config"; "util"; "page"; "export"; "gallery"; "comment" |]
      in
      Printf.sprintf "%s_%d.php" stems.(i mod Array.length stems) i
  | Plugin ->
      let stems = [| "plugin"; "admin"; "widget"; "shortcode"; "settings"; "ajax" |] in
      Printf.sprintf "%s_%d.php" stems.(i mod Array.length stems) i

(* assemble one file's source from benign filler + seeded snippet codes;
   returns the file plus the ground-truth entries with line ranges *)
let render_file ~kind ~g ~name (snips : Snippet.t list) : file * seeded list =
  let b = Buffer.create 1024 in
  let line = ref 1 in
  let add s =
    String.iter (fun c -> if c = '\n' then incr line) s;
    Buffer.add_string b s
  in
  let cur_line () = !line in
  add "<?php\n";
  (match kind with
  | Plugin ->
      add (Printf.sprintf "/*\n * Plugin file %s\n * Generated corpus member.\n */\n" name)
  | Webapp -> add (Printf.sprintf "// %s - generated corpus member\n" name));
  let needs_escape_helper =
    List.exists
      (fun (s : Snippet.t) ->
        Snippet.equal_label s.Snippet.label Snippet.Fp_hard
        &&
        (* only flows that call escape() need the helper; cheap over-approx *)
        let rec contains h n i =
          i + String.length n <= String.length h
          && (String.sub h i (String.length n) = n || contains h n (i + 1))
        in
        contains s.Snippet.code "escape(" 0)
      snips
  in
  if needs_escape_helper then begin
    add Snippet.escape_helper;
    add "\n"
  end;
  let n_benign = 2 + Random.State.int g.Snippet.rng 3 in
  for _ = 1 to n_benign do
    add (Snippet.benign g);
    add "\n"
  done;
  let seeded =
    List.map
      (fun (s : Snippet.t) ->
        let lo = cur_line () in
        add s.Snippet.code;
        add "\n";
        let hi = cur_line () - 1 in
        { sd_class = s.Snippet.vclass; sd_label = s.Snippet.label; sd_file = name;
          sd_line_lo = lo; sd_line_hi = hi })
      snips
  in
  ({ f_name = name; f_source = Buffer.contents b }, seeded)

(** Generate a package from counts.

    [vulns] are the real vulnerabilities per class; [vuln_files] bounds
    how many distinct files carry them; [fp_easy]/[fp_hard] add
    false-positive candidates; [sanitized] adds protected flows the
    detector must stay silent about. *)
let generate ~seed ~kind ~name ~version ~files:n_files ~vuln_files ~vulns
    ~fp_easy ~fp_hard ~sanitized () : package =
  let g = Snippet.make_gen ~seed:(seed + hash_name (name ^ version)) in
  let work_real = expand_vulns vulns in
  let fpc = fp_classes vulns in
  let pick_fp i = List.nth fpc (i mod List.length fpc) in
  let work_fp_easy = List.init fp_easy (fun i -> (pick_fp i, Snippet.Fp_easy)) in
  let work_fp_hard = List.init fp_hard (fun i -> (pick_fp (i + 1), Snippet.Fp_hard)) in
  let san_classes =
    [ VC.Sqli; VC.Xss_reflected; VC.Dt_pt; VC.Osci; VC.Cs; VC.Wp_sqli ]
  in
  let work_san =
    List.init sanitized (fun i ->
        ( (match kind with
          | Plugin -> if i mod 2 = 0 then VC.Wp_sqli else VC.Xss_reflected
          | Webapp -> List.nth san_classes (i mod List.length san_classes)),
          Snippet.Sanitized ))
  in
  let n_files = max n_files 1 in
  (* real vulnerabilities go into the first [nv] files *)
  let nv = max 1 (min vuln_files (max 1 (List.length work_real))) in
  let nv = min nv n_files in
  let buckets = Array.make n_files [] in
  List.iteri
    (fun i (c, label) ->
      let fi = i mod nv in
      buckets.(fi) <- (c, label) :: buckets.(fi))
    work_real;
  (* FPs and sanitized flows spread over all files *)
  List.iteri
    (fun i (c, label) ->
      let fi = (hash_name name + (i * 7)) mod n_files in
      buckets.(fi) <- (c, label) :: buckets.(fi))
    (work_fp_easy @ work_fp_hard @ work_san);
  let files = ref [] and seeded = ref [] in
  for i = 0 to n_files - 1 do
    let fname = file_name kind i in
    let snips =
      List.rev_map (fun (c, label) -> Snippet.generate g c label) buckets.(i)
    in
    let file, entries = render_file ~kind ~g ~name:fname snips in
    files := file :: !files;
    seeded := List.rev_append entries !seeded
  done;
  {
    pkg_name = name;
    pkg_version = version;
    pkg_kind = kind;
    pkg_files = List.rev !files;
    pkg_seeded = List.rev !seeded;
  }

(** Instantiate a web application profile. *)
let of_webapp_profile ~seed (p : Profiles.app_profile) : package =
  generate ~seed ~kind:Webapp ~name:p.Profiles.ap_name ~version:p.Profiles.ap_version
    ~files:p.Profiles.ap_files ~vuln_files:p.Profiles.ap_vuln_files
    ~vulns:p.Profiles.ap_vulns ~fp_easy:p.Profiles.ap_fp_easy
    ~fp_hard:p.Profiles.ap_fp_hard
    ~sanitized:(2 + (p.Profiles.ap_files / 40))
    ()

(** Instantiate a WordPress plugin profile. *)
let of_plugin_profile ~seed (p : Profiles.plugin_profile) : package =
  generate ~seed ~kind:Plugin ~name:p.Profiles.pp_name ~version:p.Profiles.pp_version
    ~files:p.Profiles.pp_files
    ~vuln_files:(max 1 (List.length p.Profiles.pp_vulns))
    ~vulns:p.Profiles.pp_vulns ~fp_easy:p.Profiles.pp_fp_easy
    ~fp_hard:p.Profiles.pp_fp_hard ~sanitized:2 ()
