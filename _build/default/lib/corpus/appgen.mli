(** Synthetic application generator.

    Builds complete PHP packages from a profile: the requested number of
    files, with the profile's real vulnerabilities, false-positive
    candidates and a sprinkling of sanitized flows distributed over
    them, embedded in benign filler code.  Everything is deterministic
    in the seed. *)

module VC := Wap_catalog.Vuln_class

type file = { f_name : string; f_source : string }

(** One ground-truth entry: a seeded snippet and where it landed. *)
type seeded = {
  sd_class : VC.t;
  sd_label : Snippet.label;
  sd_file : string;
  sd_line_lo : int;  (** first line of the seeded snippet (1-based) *)
  sd_line_hi : int;  (** last line of the seeded snippet *)
}

type kind = Webapp | Plugin

type package = {
  pkg_name : string;
  pkg_version : string;
  pkg_kind : kind;
  pkg_files : file list;
  pkg_seeded : seeded list;  (** ground truth *)
}

(** Total generated lines of code. *)
val loc_of_package : package -> int

(** Ground-truth entries with the given label. *)
val count_label : package -> Snippet.label -> int

(** Files containing at least one seeded real vulnerability. *)
val seeded_files : package -> string list

(** Generate a package from explicit counts.  [vulns] are the real
    vulnerabilities per class; [vuln_files] bounds how many distinct
    files carry them; [fp_easy]/[fp_hard] add false-positive candidates;
    [sanitized] adds protected flows the detector must stay silent
    about. *)
val generate :
  seed:int ->
  kind:kind ->
  name:string ->
  version:string ->
  files:int ->
  vuln_files:int ->
  vulns:(VC.t * int) list ->
  fp_easy:int ->
  fp_hard:int ->
  sanitized:int ->
  unit ->
  package

(** Instantiate a web application profile (Tables V/VI). *)
val of_webapp_profile : seed:int -> Profiles.app_profile -> package

(** Instantiate a WordPress plugin profile (Table VII). *)
val of_plugin_profile : seed:int -> Profiles.plugin_profile -> package
