(** Corpus profiles: the 54 web application packages (Tables V and VI)
    and the 115 WordPress plugins (Table VII, Fig. 4).

    Per-application class counts are reconstructed from the paper so
    that every row total and every class-column total of the tables
    match exactly (413 vulnerabilities over 17 vulnerable packages; 169
    over 23 vulnerable plugins).  Where the paper's per-cell values are
    ambiguous in the text, cells were chosen to preserve the row and
    column sums; EXPERIMENTS.md lists the deviations.

    File counts match the paper; lines of code are scaled down (the
    generator emits ~30-line files instead of the real apps' ~250-line
    average) so a full evaluation runs in seconds. *)

module VC = Wap_catalog.Vuln_class

type app_profile = {
  ap_name : string;
  ap_version : string;
  ap_files : int;
  ap_vuln_files : int;
  ap_vulns : (VC.t * int) list;  (** real vulnerabilities to seed *)
  ap_fp_easy : int;  (** classic false positives (should be predicted) *)
  ap_fp_hard : int;  (** symptom-free false positives (WAPe misses) *)
}

let total_vulns p = List.fold_left (fun acc (_, n) -> acc + n) 0 p.ap_vulns

(* Split an "XSS" count into reflected and stored (every fifth stored),
   and a "Files" count across RFI / LFI / DT. *)
let xss n =
  let stored = n / 5 in
  [ (VC.Xss_reflected, n - stored); (VC.Xss_stored, stored) ]

let files n =
  let rfi = n / 3 and lfi = (n + 1) / 3 in
  let dt = n - rfi - lfi in
  [ (VC.Rfi, rfi); (VC.Lfi, lfi); (VC.Dt_pt, dt) ]

let nonzero = List.filter (fun (_, n) -> n > 0)

(** The 17 vulnerable packages of Table V / Table VI. *)
let vulnerable_webapps : app_profile list =
  [
    { ap_name = "Admin Control Panel Lite 2"; ap_version = "0.10.2";
      ap_files = 14; ap_vuln_files = 9;
      ap_vulns = nonzero ([ (VC.Sqli, 9) ] @ xss 72);
      ap_fp_easy = 8; ap_fp_hard = 0 };
    { ap_name = "Anywhere Board Games"; ap_version = "0.150215";
      ap_files = 3; ap_vuln_files = 1;
      ap_vulns = nonzero (xss 1 @ [ (VC.Lfi, 1); (VC.Hi, 1) ]);
      ap_fp_easy = 0; ap_fp_hard = 0 };
    { ap_name = "Clip Bucket"; ap_version = "2.7.0.4";
      ap_files = 597; ap_vuln_files = 16;
      ap_vulns = nonzero ([ (VC.Sqli, 10) ] @ xss 11 @ [ (VC.Scd, 1) ]);
      ap_fp_easy = 4; ap_fp_hard = 2 };
    { ap_name = "Clip Bucket"; ap_version = "2.8";
      ap_files = 606; ap_vuln_files = 18;
      ap_vulns = nonzero ([ (VC.Sqli, 14) ] @ xss 11 @ [ (VC.Scd, 1) ]);
      ap_fp_easy = 4; ap_fp_hard = 2 };
    { ap_name = "Community Mobile Channels"; ap_version = "0.2.0";
      ap_files = 372; ap_vuln_files = 116;
      ap_vulns = nonzero ([ (VC.Sqli, 14) ] @ xss 27 @ files 3 @ [ (VC.Hi, 3) ]);
      ap_fp_easy = 4; ap_fp_hard = 0 };
    { ap_name = "divine"; ap_version = "0.1.3a";
      ap_files = 5; ap_vuln_files = 2;
      ap_vulns = nonzero ([ (VC.Sqli, 4) ] @ xss 2 @ files 3);
      ap_fp_easy = 0; ap_fp_hard = 0 };
    { ap_name = "Ldap address book"; ap_version = "0.22";
      ap_files = 18; ap_vuln_files = 4;
      ap_vulns = [ (VC.Ldapi, 1) ];
      ap_fp_easy = 0; ap_fp_hard = 0 };
    { ap_name = "Minutes"; ap_version = "0.42";
      ap_files = 19; ap_vuln_files = 2;
      ap_vulns = nonzero (xss 9 @ [ (VC.Dt_pt, 1) ]);
      ap_fp_easy = 0; ap_fp_hard = 0 };
    { ap_name = "Mle Moodle"; ap_version = "0.8.8.5";
      ap_files = 235; ap_vuln_files = 4;
      ap_vulns = nonzero (xss 6 @ [ (VC.Lfi, 1) ]);
      ap_fp_easy = 2; ap_fp_hard = 1 };
    { ap_name = "Php Open Chat"; ap_version = "3.0.2";
      ap_files = 249; ap_vuln_files = 9;
      ap_vulns = nonzero (xss 10 @ [ (VC.Scd, 1) ]);
      ap_fp_easy = 0; ap_fp_hard = 0 };
    { ap_name = "Pivotx"; ap_version = "2.3.10";
      ap_files = 254; ap_vuln_files = 1;
      ap_vulns = xss 1 |> nonzero;
      ap_fp_easy = 9; ap_fp_hard = 0 };
    { ap_name = "Play sms"; ap_version = "1.3.1";
      ap_files = 1420; ap_vuln_files = 7;
      ap_vulns = xss 6 |> nonzero;
      ap_fp_easy = 2; ap_fp_hard = 0 };
    { ap_name = "RCR AEsir"; ap_version = "0.11a";
      ap_files = 8; ap_vuln_files = 6;
      ap_vulns = nonzero ([ (VC.Sqli, 9) ] @ xss 3 @ [ (VC.Hi, 1) ]);
      ap_fp_easy = 1; ap_fp_hard = 0 };
    { ap_name = "refbase"; ap_version = "0.9.6";
      ap_files = 171; ap_vuln_files = 18;
      ap_vulns = nonzero (xss 46 @ [ (VC.Hi, 2) ]);
      ap_fp_easy = 9; ap_fp_hard = 2 };
    { ap_name = "SAE"; ap_version = "1.1";
      ap_files = 150; ap_vuln_files = 39;
      ap_vulns =
        nonzero ([ (VC.Sqli, 11) ] @ xss 25 @ files 10 @ [ (VC.Sf, 1); (VC.Hi, 1) ]);
      ap_fp_easy = 21; ap_fp_hard = 2 };
    { ap_name = "Tomahawk Mail"; ap_version = "2.0";
      ap_files = 155; ap_vuln_files = 3;
      ap_vulns = nonzero (xss 2 @ [ (VC.Hi, 1) ]);
      ap_fp_easy = 3; ap_fp_hard = 0 };
    { ap_name = "vfront"; ap_version = "0.99.3";
      ap_files = 438; ap_vuln_files = 25;
      ap_vulns =
        nonzero
          ([ (VC.Sqli, 1) ] @ xss 23 @ files 36
          @ [ (VC.Scd, 1); (VC.Ldapi, 1); (VC.Hi, 10); (VC.Cs, 5) ]);
      ap_fp_easy = 37; ap_fp_hard = 9 };
  ]

(** The remaining 37 packages of the 54 analyzed: no vulnerabilities
    (only sanitized flows and benign code).  File counts bring the
    corpus to the paper's 8,374 files. *)
let clean_webapps : app_profile list =
  let names =
    [ "Gallerio"; "Notemark"; "FormMailer"; "Cartonis"; "Blogure"; "Wikilite";
      "Shoplet"; "Eventora"; "Pollbox"; "Faqtory"; "Linkhub"; "Calendra";
      "Mailform"; "Statsy"; "Guestbookr"; "Filebox"; "Chatlite"; "Newsflow";
      "Docuview"; "Taskman"; "Invoicer"; "Bookmarkly"; "Surveyor"; "Classify";
      "Photonis"; "Webshopper"; "Quizmaker"; "Feedview"; "Sitemapr"; "Countrly";
      "Rsviewer"; "Helpdeskly"; "Timeclock"; "Recipedia"; "Budgetly"; "Forumino";
      "Accountive" ]
  in
  (* 37 apps covering 8374 - 4714 = 3660 files *)
  let base = 3660 / 37 in
  let extra = 3660 - (base * 37) in
  List.mapi
    (fun i name ->
      {
        ap_name = name;
        ap_version = Printf.sprintf "1.%d" (i mod 10);
        ap_files = (base + if i < extra then 1 else 0);
        ap_vuln_files = 0;
        ap_vulns = [];
        ap_fp_easy = 0;
        ap_fp_hard = 0;
      })
    names

let all_webapps = vulnerable_webapps @ clean_webapps

(* ------------------------------------------------------------------ *)
(* WordPress plugins (Table VII, Fig. 4).                              *)

type plugin_profile = {
  pp_name : string;
  pp_version : string;
  pp_files : int;
  pp_vulns : (VC.t * int) list;
  pp_fp_easy : int;
  pp_fp_hard : int;
  pp_downloads : int;
  pp_active_installs : int;
  pp_cve : bool;  (** had vulnerabilities registered in CVE *)
}

let plugin_total_vulns p = List.fold_left (fun acc (_, n) -> acc + n) 0 p.pp_vulns

(* In plugins the SQLI column comes from the -wpsqli weapon. *)
let wps n = [ (VC.Wp_sqli, n) ]

(** The 23 vulnerable plugins of Table VII. *)
let vulnerable_plugins : plugin_profile list =
  [
    { pp_name = "Appointment Booking Calendar"; pp_version = "1.1.7"; pp_files = 6;
      pp_vulns = nonzero (wps 1 @ xss 3); pp_fp_easy = 1; pp_fp_hard = 0;
      pp_downloads = 23_000; pp_active_installs = 1_500; pp_cve = true };
    { pp_name = "Auth0"; pp_version = "1.3.6"; pp_files = 5;
      pp_vulns = xss 1 |> nonzero; pp_fp_easy = 0; pp_fp_hard = 0;
      pp_downloads = 7_000; pp_active_installs = 280; pp_cve = false };
    { pp_name = "Authorizer"; pp_version = "2.3.6"; pp_files = 4;
      pp_vulns = xss 2 |> nonzero; pp_fp_easy = 0; pp_fp_hard = 0;
      pp_downloads = 71_000; pp_active_installs = 7_200; pp_cve = false };
    { pp_name = "BuddyPress"; pp_version = "2.4.0"; pp_files = 8;
      pp_vulns = []; pp_fp_easy = 0; pp_fp_hard = 1;
      pp_downloads = 1_200_000; pp_active_installs = 28_000; pp_cve = false };
    { pp_name = "Contact form generator"; pp_version = "2.0.1"; pp_files = 6;
      pp_vulns = wps 11; pp_fp_easy = 0; pp_fp_hard = 0;
      pp_downloads = 71_000; pp_active_installs = 3_300; pp_cve = false };
    { pp_name = "CP Appointment Calendar"; pp_version = "1.1.7"; pp_files = 5;
      pp_vulns = wps 2; pp_fp_easy = 0; pp_fp_hard = 0;
      pp_downloads = 23_000; pp_active_installs = 700; pp_cve = false };
    { pp_name = "Easy2map"; pp_version = "1.2.9"; pp_files = 5;
      pp_vulns = nonzero (wps 1 @ xss 2); pp_fp_easy = 0; pp_fp_hard = 0;
      pp_downloads = 23_000; pp_active_installs = 1_500; pp_cve = true };
    { pp_name = "Ecwid Shopping Cart"; pp_version = "3.4.6"; pp_files = 7;
      pp_vulns = xss 1 |> nonzero; pp_fp_easy = 0; pp_fp_hard = 0;
      pp_downloads = 740_000; pp_active_installs = 28_000; pp_cve = false };
    { pp_name = "Gantry Framework"; pp_version = "4.1.6"; pp_files = 7;
      pp_vulns = xss 3 |> nonzero; pp_fp_easy = 0; pp_fp_hard = 0;
      pp_downloads = 210_000; pp_active_installs = 7_200; pp_cve = false };
    { pp_name = "Google Maps Travel Route"; pp_version = "1.3.1"; pp_files = 4;
      pp_vulns = nonzero (wps 1 @ xss 2); pp_fp_easy = 0; pp_fp_hard = 0;
      pp_downloads = 7_000; pp_active_installs = 280; pp_cve = false };
    { pp_name = "Lightbox Plus Colorbox"; pp_version = "2.7.2"; pp_files = 5;
      pp_vulns = xss 8 |> nonzero; pp_fp_easy = 0; pp_fp_hard = 0;
      pp_downloads = 210_000; pp_active_installs = 200_000; pp_cve = false };
    { pp_name = "Payment form for Paypal pro"; pp_version = "1.0.1"; pp_files = 4;
      pp_vulns = xss 2 |> nonzero; pp_fp_easy = 0; pp_fp_hard = 0;
      pp_downloads = 23_000; pp_active_installs = 700; pp_cve = true };
    { pp_name = "Recipes writer"; pp_version = "1.0.4"; pp_files = 4;
      pp_vulns = xss 4 |> nonzero; pp_fp_easy = 0; pp_fp_hard = 0;
      pp_downloads = 3_200; pp_active_installs = 60; pp_cve = false };
    { pp_name = "ResAds"; pp_version = "1.0.1"; pp_files = 4;
      pp_vulns = xss 2 |> nonzero; pp_fp_easy = 0; pp_fp_hard = 0;
      pp_downloads = 3_200; pp_active_installs = 280; pp_cve = true };
    { pp_name = "Simple support ticket system"; pp_version = "1.2"; pp_files = 5;
      pp_vulns = wps 18; pp_fp_easy = 0; pp_fp_hard = 0;
      pp_downloads = 23_000; pp_active_installs = 3_300; pp_cve = true };
    { pp_name = "The CartPress eCommerce Shopping Cart"; pp_version = "1.4.7";
      pp_files = 8;
      pp_vulns = nonzero (wps 8 @ xss 17); pp_fp_easy = 0; pp_fp_hard = 0;
      pp_downloads = 210_000; pp_active_installs = 28_000; pp_cve = false };
    { pp_name = "WebKite"; pp_version = "2.0.1"; pp_files = 3;
      pp_vulns = xss 1 |> nonzero; pp_fp_easy = 0; pp_fp_hard = 0;
      pp_downloads = 7_000; pp_active_installs = 280; pp_cve = false };
    { pp_name = "WP EasyCart - eCommerce Shopping Cart"; pp_version = "3.2.3";
      pp_files = 12;
      pp_vulns =
        nonzero (wps 13 @ xss 6 @ files 29 @ [ (VC.Scd, 5); (VC.Cs, 2); (VC.Hi, 5) ]);
      pp_fp_easy = 0; pp_fp_hard = 0;
      pp_downloads = 740_000; pp_active_installs = 28_000; pp_cve = false };
    { pp_name = "WP Marketplace"; pp_version = "2.4.1"; pp_files = 6;
      pp_vulns = nonzero (xss 8 @ [ (VC.Dt_pt, 1) ]); pp_fp_easy = 1; pp_fp_hard = 0;
      pp_downloads = 71_000; pp_active_installs = 3_300; pp_cve = false };
    { pp_name = "WP Shop"; pp_version = "3.5.3"; pp_files = 5;
      pp_vulns = xss 5 |> nonzero; pp_fp_easy = 1; pp_fp_hard = 0;
      pp_downloads = 210_000; pp_active_installs = 7_200; pp_cve = false };
    { pp_name = "WP ToolBar Removal Node"; pp_version = "1839"; pp_files = 2;
      pp_vulns = [ (VC.Lfi, 1) ]; pp_fp_easy = 0; pp_fp_hard = 0;
      pp_downloads = 800; pp_active_installs = 60; pp_cve = false };
    { pp_name = "WP ultimate recipe"; pp_version = "2.5"; pp_files = 6;
      pp_vulns = []; pp_fp_easy = 0; pp_fp_hard = 1;
      pp_downloads = 800; pp_active_installs = 60; pp_cve = false };
    { pp_name = "WP Web Scraper"; pp_version = "3.5"; pp_files = 4;
      pp_vulns = xss 4 |> nonzero; pp_fp_easy = 0; pp_fp_hard = 0;
      pp_downloads = 23_000; pp_active_installs = 3_300; pp_cve = false };
  ]

(* Fig. 4 histogram bins. *)
let download_bins =
  [ ("< 2000", 0, 1_999); ("2K - 5K", 2_000, 4_999); ("5K - 10K", 5_000, 9_999);
    ("10K - 50K", 10_000, 49_999); ("50K - 100K", 50_000, 99_999);
    ("100K - 500K", 100_000, 499_999); ("> 500K", 500_000, max_int) ]

let active_bins =
  [ ("< 100", 0, 99); ("100 - 500", 100, 499); ("500 - 1K", 500, 999);
    ("1K - 2K", 1_000, 1_999); ("2K - 5K", 2_000, 4_999);
    ("5K - 10K", 5_000, 9_999); ("> 10K", 10_000, max_int) ]

(* Per-bin counts for the 92 clean plugins, completing Fig. 4's blue
   columns: analyzed downloads [10;12;13;33;12;24;11], active installs
   [18;23;12;12;17;12;21]. *)
let clean_download_quota = [ 8; 10; 10; 27; 9; 20; 8 ]
let clean_active_quota = [ 15; 19; 10; 10; 13; 9; 16 ]

let bin_representative = function
  | 0 -> (800, 60)
  | 1 -> (3_200, 280)
  | 2 -> (7_000, 700)
  | 3 -> (23_000, 1_500)
  | 4 -> (71_000, 3_300)
  | 5 -> (210_000, 7_200)
  | _ -> (740_000, 28_000)

let plugin_tags =
  [ "arts"; "food"; "health"; "shopping"; "travel"; "authentication"; "popular";
    "gallery"; "seo"; "social" ]

(** The 92 clean plugins, with popularity metadata filling the Fig. 4
    quotas. *)
let clean_plugins : plugin_profile list =
  (* expand quotas into per-plugin bin assignments *)
  let expand quota = List.concat (List.mapi (fun bin n -> List.init n (fun _ -> bin)) quota) in
  let dl_bins = expand clean_download_quota in
  let ai_bins = expand clean_active_quota in
  List.mapi
    (fun i (dl_bin, ai_bin) ->
      let downloads = fst (bin_representative dl_bin) in
      let active = snd (bin_representative ai_bin) in
      let tag = List.nth plugin_tags (i mod List.length plugin_tags) in
      {
        pp_name = Printf.sprintf "%s-helper-%d" tag (i + 1);
        pp_version = Printf.sprintf "%d.%d" (1 + (i mod 3)) (i mod 10);
        pp_files = 2 + (i mod 5);
        pp_vulns = [];
        pp_fp_easy = 0;
        pp_fp_hard = 0;
        pp_downloads = downloads;
        pp_active_installs = active;
        pp_cve = false;
      })
    (List.combine dl_bins ai_bins)

let all_plugins = vulnerable_plugins @ clean_plugins

(* ------------------------------------------------------------------ *)
(* Consistency checks (used by the test suite).                        *)

let webapp_class_totals () =
  List.fold_left
    (fun acc p ->
      List.fold_left
        (fun acc (c, n) ->
          let g = VC.report_group c in
          let cur = try List.assoc g acc with Not_found -> 0 in
          (g, cur + n) :: List.remove_assoc g acc)
        acc p.ap_vulns)
    [] vulnerable_webapps

let plugin_class_totals () =
  List.fold_left
    (fun acc p ->
      List.fold_left
        (fun acc (c, n) ->
          let g = VC.report_group c in
          let cur = try List.assoc g acc with Not_found -> 0 in
          (g, cur + n) :: List.remove_assoc g acc)
        acc p.pp_vulns)
    [] vulnerable_plugins
