(** Corpus profiles: the 54 web application packages (Tables V and VI)
    and the 115 WordPress plugins (Table VII, Fig. 4).

    Per-application class counts are reconstructed from the paper so
    that every row total and every class-column total of the tables
    match exactly (413 vulnerabilities over 17 vulnerable packages; 169
    over 23 vulnerable plugins).  File counts match the paper; lines of
    code are scaled down so a full evaluation runs in seconds
    (EXPERIMENTS.md discusses the deviations). *)

module VC := Wap_catalog.Vuln_class

type app_profile = {
  ap_name : string;
  ap_version : string;
  ap_files : int;
  ap_vuln_files : int;
  ap_vulns : (VC.t * int) list;  (** real vulnerabilities to seed *)
  ap_fp_easy : int;  (** classic false positives (should be predicted) *)
  ap_fp_hard : int;  (** symptom-free false positives (WAPe misses) *)
}

val total_vulns : app_profile -> int

(** The 17 vulnerable packages of Table V / Table VI. *)
val vulnerable_webapps : app_profile list

(** The remaining 37 clean packages of the 54 analyzed. *)
val clean_webapps : app_profile list

(** All 54 packages (8,374 files). *)
val all_webapps : app_profile list

type plugin_profile = {
  pp_name : string;
  pp_version : string;
  pp_files : int;
  pp_vulns : (VC.t * int) list;
  pp_fp_easy : int;
  pp_fp_hard : int;
  pp_downloads : int;
  pp_active_installs : int;
  pp_cve : bool;  (** had vulnerabilities registered in CVE *)
}

val plugin_total_vulns : plugin_profile -> int

(** The 23 vulnerable plugins of Table VII. *)
val vulnerable_plugins : plugin_profile list

(** The 92 clean plugins, with popularity metadata filling Fig. 4's
    analyzed histograms. *)
val clean_plugins : plugin_profile list

(** All 115 plugins. *)
val all_plugins : plugin_profile list

(** Fig. 4 histogram bins: (label, inclusive lower, inclusive upper). *)
val download_bins : (string * int * int) list

val active_bins : (string * int * int) list

(** Seeded real-vulnerability totals by report group (consistency
    checks for the tests). *)
val webapp_class_totals : unit -> (string * int) list

val plugin_class_totals : unit -> (string * int) list
