(** PHP snippet generator with known ground truth.

    Each snippet is a short, self-contained piece of PHP exercising one
    data flow from an entry point towards a sensitive sink of a given
    vulnerability class.  Three labels exist:

    - [Real]: exploitable — the flow reaches the sink unsanitized and
      unvalidated; the detector should flag it and the predictor should
      keep it.
    - [Fp_easy]: a false positive with the classic symptoms (type
      checks, pattern guards, numeric coercion...) — the detector flags
      it, the trained predictor should dismiss it.
    - [Fp_hard]: a false positive whose protection leaves no recognized
      symptom (md5, hand-rolled character filtering) — the paper's 18
      WAPe misses.
    - [Sanitized]: protected by the class's sanitization function — the
      detector must not flag it at all.

    Snippets are deterministic in the [rng] state, so a seeded corpus is
    fully reproducible. *)

module VC = Wap_catalog.Vuln_class

type label = Real | Fp_easy | Fp_hard | Sanitized [@@deriving show, eq]

type t = {
  vclass : VC.t;
  label : label;
  code : string;  (** PHP statements, no [<?php] marker *)
}

(* ------------------------------------------------------------------ *)
(* Small deterministic helpers.                                        *)

type gen = { rng : Random.State.t; mutable counter : int }

let make_gen ~seed = { rng = Random.State.make [| seed; 2654435761 |]; counter = 0 }

let fresh g prefix =
  g.counter <- g.counter + 1;
  Printf.sprintf "%s%d" prefix g.counter

let pick g l = List.nth l (Random.State.int g.rng (List.length l))

let sources = [ "_GET"; "_POST"; "_COOKIE"; "_REQUEST" ]
let keys = [ "id"; "user"; "name"; "page"; "q"; "cat"; "item"; "ref"; "token"; "v" ]

let source_access g =
  Printf.sprintf "$%s['%s']" (pick g sources) (pick g keys)

(* a benign string-manipulation step applied to variable [v]; returns
   the PHP line and keeps the data tainted.  [legacy] restricts the
   choice to manipulations whose symptom the original WAP already knew
   (Table I, middle column). *)
let manipulation ?(legacy = false) ?(preserve_ws = false) g v =
  (* [preserve_ws] excludes whitespace-normalizing manipulations: on a
     real header/email-injection flow they would destroy the CRLF that
     makes the flow exploitable, falsifying the ground-truth label *)
  let original =
    [
      Printf.sprintf "$%s = trim($%s);" v v;
      Printf.sprintf "$%s = substr($%s, 0, 64);" v v;
      Printf.sprintf "$%s = strtolower($%s);" v v;
      Printf.sprintf "$%s = substr_replace($%s, '', 100);" v v;
    ]
    @ (if preserve_ws then []
       else
         [ Printf.sprintf "$%s = str_replace(' ', '_', $%s);" v v;
           Printf.sprintf "$%s = preg_replace('/\\s+/', ' ', $%s);" v v ])
  in
  let extended =
    [
      Printf.sprintf "$%s = ltrim($%s);" v v;
      Printf.sprintf "$%s = rtrim($%s);" v v;
      Printf.sprintf "$%s = str_pad($%s, 4, '0');" v v;
      Printf.sprintf "$%s = str_ireplace('admin', 'user', $%s);" v v;
      Printf.sprintf "$%s = chunk_split($%s, 76);" v v;
    ]
    @ (if preserve_ws then []
       else
         [ Printf.sprintf "$%s = implode('-', explode(' ', $%s));" v v;
           Printf.sprintf "$%s = join(',', preg_split('/\\s+/', $%s));" v v ])
  in
  pick g (if legacy then original else original @ extended)

(* zero to two manipulation steps *)
let manipulations ?(legacy = false) ?(preserve_ws = false) g v =
  match Random.State.int g.rng 4 with
  | 0 -> []
  | 1 | 2 -> [ manipulation ~legacy ~preserve_ws g v ]
  | _ -> [ manipulation ~legacy ~preserve_ws g v; manipulation ~legacy ~preserve_ws g v ]

(* ------------------------------------------------------------------ *)
(* Per-class code fragments.                                           *)

(* a read of the entry point into variable [v], possibly through a chain *)
let intake ?(legacy = false) ?(preserve_ws = false) g v =
  let src = source_access g in
  match Random.State.int g.rng 3 with
  | 0 -> [ Printf.sprintf "$%s = %s;" v src ]
  | 1 ->
      let tmp = fresh g "t" in
      [ Printf.sprintf "$%s = %s;" tmp src; Printf.sprintf "$%s = $%s;" v tmp ]
  | _ -> [ Printf.sprintf "$%s = %s;" v src; manipulation ~legacy ~preserve_ws g v ]

(* the sink line(s) for a class, consuming tainted variable [v] *)
let sink_lines g (vclass : VC.t) v : string list =
  match vclass with
  | VC.Sqli ->
      let q = fresh g "q" in
      let table = pick g [ "users"; "items"; "posts"; "orders"; "news" ] in
      let col = pick g [ "name"; "login"; "title"; "ref" ] in
      (match Random.State.int g.rng 10 with
      | 0 ->
          [ Printf.sprintf "$%s = \"SELECT * FROM %s WHERE %s = '$%s'\";" q table col v;
            Printf.sprintf "$r = mysql_query($%s);" q ]
      | 1 ->
          [ Printf.sprintf
              "$%s = \"SELECT id, %s FROM %s WHERE %s = '\" . $%s . \"' ORDER BY id\";"
              q col table col v;
            Printf.sprintf "mysql_query($%s);" q ]
      | 2 ->
          [ Printf.sprintf "$r = mysqli_query($link, \"UPDATE %s SET %s='$%s' WHERE id=1\");"
              table col v ]
      | 3 ->
          [ Printf.sprintf
              "$%s = \"SELECT COUNT(*) FROM %s WHERE %s = '$%s' GROUP BY %s ORDER BY 1\";"
              q table col v col;
            Printf.sprintf "mysql_query($%s);" q ]
      | 4 ->
          [ Printf.sprintf
              "$%s = \"SELECT AVG(price), MAX(price) FROM %s t JOIN meta m ON m.id = t.id WHERE t.%s = '$%s' LIMIT 25\";"
              q table col v;
            Printf.sprintf "mysql_query($%s);" q ]
      | 5 ->
          [ Printf.sprintf "$%s = \"SELECT %s FROM %s WHERE id = \" . $%s;" q col table v;
            Printf.sprintf "$r = mysql_query($%s);" q ]
      | 6 ->
          (* no FROM, no concat context beyond the values list *)
          [ Printf.sprintf "$r = mysql_query(\"INSERT INTO %s (%s) VALUES ('$%s')\");"
              table col v ]
      | 7 ->
          [ Printf.sprintf "$%s = \"SELECT AVG(total) FROM %s WHERE %s = '$%s'\";"
              q table col v;
            Printf.sprintf "mysql_query($%s);" q ]
      | 8 ->
          [ Printf.sprintf
              "$%s = \"DELETE FROM %s WHERE %s = \" . $%s . \" LIMIT 1\";" q table col v;
            Printf.sprintf "mysql_query($%s);" q ]
      | _ ->
          (* the whole query comes from the input: no literal context *)
          [ Printf.sprintf "$r = mysql_query($%s);" v ])
  | VC.Xss_reflected ->
      [ pick g
          [ Printf.sprintf "echo \"<p>$%s</p>\";" v;
            Printf.sprintf "echo '<td>' . $%s . '</td>';" v;
            Printf.sprintf "print(\"<div>$%s</div>\");" v;
            Printf.sprintf "echo $%s;" v;
            Printf.sprintf "print($%s);" v ] ]
  | VC.Xss_stored ->
      let r = fresh g "r" in
      let row = fresh g "row" in
      [ Printf.sprintf "$%s = mysql_query(\"SELECT body FROM comments\");" r;
        Printf.sprintf "while ($%s = mysql_fetch_assoc($%s)) {" row r;
        Printf.sprintf "    echo \"<li>\" . $%s['body'] . \"</li>\";" row;
        "}" ]
  | VC.Rfi ->
      [ pick g
          [ Printf.sprintf "include($%s . '.php');" v;
            Printf.sprintf "include($%s);" v ] ]
  | VC.Lfi ->
      [ pick g
          [ Printf.sprintf "require('./pages/' . $%s);" v;
            Printf.sprintf "require_once($%s);" v ] ]
  | VC.Dt_pt ->
      [ pick g
          [ Printf.sprintf "$fh = fopen('./data/' . $%s, 'r');" v;
            Printf.sprintf "readfile('./docs/' . $%s);" v;
            Printf.sprintf "unlink('./tmp/' . $%s);" v;
            Printf.sprintf "readfile($%s);" v ] ]
  | VC.Osci ->
      [ pick g
          [ Printf.sprintf "system('ls -l ' . $%s);" v;
            Printf.sprintf "exec(\"convert $%s out.png\");" v;
            Printf.sprintf "$out = shell_exec('cat ' . $%s);" v;
            Printf.sprintf "system($%s);" v ] ]
  | VC.Scd ->
      [ pick g
          [ Printf.sprintf "show_source($%s);" v;
            Printf.sprintf "highlight_file('./src/' . $%s);" v ] ]
  | VC.Phpci ->
      [ pick g
          [ Printf.sprintf "eval('$x = ' . $%s . ';');" v;
            Printf.sprintf "assert(\"is_valid('$%s')\");" v ] ]
  | VC.Ldapi ->
      [ Printf.sprintf "$res = ldap_search($conn, 'dc=example,dc=org', \"(uid=$%s)\");" v ]
  | VC.Xpathi ->
      [ Printf.sprintf "$nodes = xpath_eval($xctx, \"//user[name='$%s']\");" v ]
  | VC.Nosqli ->
      [ pick g
          [ Printf.sprintf "$doc = $collection->find(array('login' => $%s));" v;
            Printf.sprintf "$doc = $collection->findOne(array('user' => $%s));" v;
            Printf.sprintf "$collection->remove(array('sid' => $%s));" v ] ]
  | VC.Cs ->
      [ Printf.sprintf "file_put_contents('./comments.txt', $%s, FILE_APPEND);" v ]
  | VC.Hi ->
      [ pick g
          [ Printf.sprintf "header('Location: ' . $%s);" v;
            Printf.sprintf "header(\"X-Forwarded: $%s\");" v ] ]
  | VC.Ei ->
      [ Printf.sprintf "mail($%s, 'Notification', 'Your report is ready.');" v ]
  | VC.Sf ->
      [ pick g
          [ Printf.sprintf "session_id($%s);" v;
            Printf.sprintf "setcookie('session', $%s);" v ] ]
  | VC.Wp_sqli ->
      let style = Random.State.int g.rng 2 in
      if style = 0 then
        [ Printf.sprintf
            "$rows = $wpdb->get_results(\"SELECT * FROM {$wpdb->prefix}posts WHERE post_author = $%s\");"
            v ]
      else
        [ Printf.sprintf "$wpdb->query(\"DELETE FROM wp_meta WHERE meta_key = '$%s'\");" v ]
  | VC.Custom _ -> [ Printf.sprintf "custom_sink($%s);" v ]

(* the class's sanitization call, for [Sanitized] snippets *)
let sanitize_line (vclass : VC.t) v : string list =
  match vclass with
  | VC.Sqli -> [ Printf.sprintf "$%s = mysql_real_escape_string($%s);" v v ]
  | VC.Xss_reflected | VC.Xss_stored ->
      [ Printf.sprintf "$%s = htmlspecialchars($%s);" v v ]
  | VC.Rfi | VC.Lfi | VC.Dt_pt | VC.Scd ->
      [ Printf.sprintf "$%s = basename($%s);" v v ]
  | VC.Osci -> [ Printf.sprintf "$%s = escapeshellarg($%s);" v v ]
  | VC.Ldapi -> [ Printf.sprintf "$%s = ldap_escape($%s);" v v ]
  | VC.Nosqli -> [ Printf.sprintf "$%s = mysql_real_escape_string($%s);" v v ]
  | VC.Cs -> [ Printf.sprintf "$%s = strip_tags($%s);" v v ]
  | VC.Wp_sqli -> [ Printf.sprintf "$%s = esc_sql($%s);" v v ]
  | VC.Phpci | VC.Xpathi | VC.Hi | VC.Ei | VC.Sf | VC.Custom _ ->
      (* no stock sanitizer: fall back to a recognized one for tests *)
      [ Printf.sprintf "$%s = htmlspecialchars($%s);" v v ]

(* validation patterns that create classic false positives.  In
   [legacy] mode only the patterns visible to the original WAP's
   symptom set are produced (those are styles 0, 1, 3 and the numeric
   fallback). *)
let fp_guard ?(legacy = false) g (vclass : VC.t) v : string list =
  if vclass = VC.Sf then
    (* character checks cannot stop session fixation; only a strict
       server-token format check makes the flow a false positive *)
    [ Printf.sprintf "if (!preg_match('/^[a-f0-9]{32}$/', $%s)) {" v;
      "    die('bad session token');"; "}" ]
  else
  let numericish =
    match vclass with
    | VC.Sqli | VC.Wp_sqli | VC.Nosqli | VC.Ldapi | VC.Xpathi -> true
    | _ -> false
  in
  let style =
    if legacy then
      match Random.State.int g.rng (if numericish then 5 else 4) with
      | 0 -> 0
      | 1 -> 1
      | 2 -> 3
      | 3 -> 4
      | _ -> 99 (* numeric fallback *)
    else begin
      (* weighted draw: the patterns the original symptom set already
         recognizes dominate, the ambiguous manipulation-only
         protections are rare — matching the distribution the paper
         reports (most FPs predicted, a residue of hard cases) *)
      let roll = Random.State.int g.rng (if numericish then 22 else 20) in
      if roll < 3 then 0
      else if roll < 6 then 1
      else if roll < 8 then 3
      else if roll < 10 then 4
      else if roll < 12 then 2
      else if roll < 14 then 5
      else if roll < 16 then 6
      else if roll < 18 then 7
      else if roll < 19 then 8
      else if roll < 20 then 9
      else 99
    end
  in
  match style with
  | 0 ->
      [ Printf.sprintf "if (!preg_match('/^[a-zA-Z0-9_-]+$/', $%s)) {" v;
        "    die('invalid input');"; "}" ]
  | 1 ->
      [ Printf.sprintf "if (!isset($%s) || !ctype_alnum($%s)) {" v v;
        "    exit('bad request');"; "}" ]
  | 2 ->
      [ Printf.sprintf "if (strcmp($%s, 'admin') == 0 || strcmp($%s, 'guest') == 0) {" v v;
        "    $allowed = 1;"; "} else {"; "    die('unknown role');"; "}" ]
  | 3 ->
      (* presence checks alone would not protect; the ctype makes it a
         genuine false positive *)
      [ Printf.sprintf "if (empty($%s) || !is_string($%s) || !ctype_alnum($%s)) {" v v v;
        "    exit('missing parameter');"; "}" ]
  | 4 ->
      [ Printf.sprintf "if (!ctype_digit($%s) || !preg_match('/^[0-9]{1,6}$/', $%s)) {" v v;
        "    exit('not a digit');"; "}" ]
  | 5 ->
      [ Printf.sprintf "if (strncasecmp($%s, 'pub_', 4) != 0) {" v;
        "    die('outside public area');"; "}";
        Printf.sprintf "$%s = trim($%s);" v v ]
  | 6 ->
      [ Printf.sprintf "if (!is_scalar($%s) || is_null($%s) || !preg_match('/^[\\w.]+$/', $%s)) {"
          v v v;
        "    exit('bad type');"; "}" ]
  | 7 ->
      [ Printf.sprintf "if (!eregi('^[a-z ]+$', $%s)) {" v;
        "    trigger_error('rejected input', E_USER_ERROR);"; "    exit;"; "}" ]
  | 8 ->
      (* manipulation-only protection: strips the dangerous characters,
         leaving just a replace_string symptom — the kind of flow whose
         attribute vector overlaps with harmless manipulations on real
         vulnerabilities *)
      let chars =
        match vclass with
        | VC.Sqli | VC.Wp_sqli | VC.Nosqli | VC.Xpathi ->
            "array(\"'\", '\"', '\\\\')"
        | VC.Hi | VC.Ei -> "array(\"\\r\", \"\\n\")"
        | VC.Rfi | VC.Lfi | VC.Dt_pt | VC.Scd -> "array('..', '/', '\\\\')"
        | VC.Ldapi -> "array('*', '(', ')', '\\\\')"
        | VC.Phpci -> "array(';', '(', ')', '`')"
        | VC.Osci -> "array(';', '|', '&', '`')"
        | VC.Cs -> "array('http://', 'https://')"
        | _ -> "array('<', '>', \"'\", '\"')"
      in
      [ Printf.sprintf "$%s = str_replace(%s, '', $%s);" v chars v ]
  | 9 ->
      [ Printf.sprintf "$%s = substr(trim($%s), 0, 8);" v v;
        Printf.sprintf "if (!in_array($%s, array('news', 'faq', 'home', 'about'))) {" v;
        "    exit('unknown section');"; "}" ]
  | _ ->
      [ Printf.sprintf "if (!is_numeric($%s)) {" v; "    die('expected a number');"; "}";
        Printf.sprintf "$%s = intval($%s);" v v ]

(* protections that leave no recognized symptom: the hard false
   positives of Section V-A.  escape() only strips quotes and
   backslashes, so it genuinely protects only the quote-delimited
   query classes — other classes get the hashing variants. *)
let fp_hard_protection g (vclass : VC.t) v : string list =
  let quote_class =
    match vclass with
    | VC.Sqli | VC.Wp_sqli | VC.Nosqli | VC.Xpathi -> true
    | _ -> false
  in
  match Random.State.int g.rng (if quote_class then 3 else 2) with
  | 0 -> [ Printf.sprintf "$%s = md5($%s);" v v ]
  | 1 when not quote_class ->
      [ Printf.sprintf "$%s = sizeof(array($%s)) > 0 ? md5($%s) : '';" v v v ]
  | 1 -> [ Printf.sprintf "$%s = escape($%s);" v v ]
  | _ ->
      [ Printf.sprintf "$%s = sizeof(array($%s)) > 0 ? md5($%s) : '';" v v v ]

(** The hand-rolled sanitizer used by the hard false positives; emitted
    once per file that needs it.  Its body keeps the data flowing only
    through character-level operations, so no symptom is visible. *)
let escape_helper =
  String.concat "\n"
    [ "function escape($value) {";
      "    $out = '';";
      "    for ($i = 0; $i < strlen($value); $i++) {";
      "        $c = $value[$i];";
      "        if ($c != \"'\" && $c != '\"' && $c != '\\\\') {";
      "            $out = $out . $c;";
      "        }";
      "    }";
      "    return $out;";
      "}" ]

(* ------------------------------------------------------------------ *)
(* Snippet assembly.                                                   *)

(* Stored XSS flows live entirely between the database fetch and the
   echo, so the protection (or its absence) must apply to the fetched
   row, not to a request parameter. *)
let stored_xss g (label : label) : string list =
  let r = fresh g "r" in
  let row = fresh g "row" in
  let body =
    match label with
    | Real -> [ Printf.sprintf "    echo \"<li>\" . $%s['body'] . \"</li>\";" row ]
    | Fp_easy ->
        (match Random.State.int g.rng 3 with
        | 0 ->
            [ Printf.sprintf "    if (!ctype_alnum($%s['body'])) {" row;
              "        continue;"; "    }";
              Printf.sprintf "    echo \"<li>\" . $%s['body'] . \"</li>\";" row ]
        | 1 ->
            [ Printf.sprintf "    if (!preg_match('/^[a-zA-Z0-9 ]*$/', $%s['body'])) {" row;
              "        continue;"; "    }";
              Printf.sprintf "    echo '<li>' . $%s['body'] . '</li>';" row ]
        | _ ->
            [ Printf.sprintf "    $score = intval($%s['score']);" row;
              "    echo \"<b>$score</b>\";" ])
    | Fp_hard ->
        [ Printf.sprintf "    $h = md5($%s['body']);" row;
          "    echo \"<i>$h</i>\";" ]
    | Sanitized ->
        [ Printf.sprintf "    echo '<li>' . htmlspecialchars($%s['body']) . '</li>';" row ]
  in
  [ Printf.sprintf "$%s = mysql_query(\"SELECT body, score FROM comments\");" r;
    Printf.sprintf "while ($%s = mysql_fetch_assoc($%s)) {" row r ]
  @ body @ [ "}" ]

let generate ?(legacy = false) (g : gen) (vclass : VC.t) (label : label) : t =
  let v = fresh g "in" in
  let preserve_ws =
    (* never destroy the CRLF of a real header/email-injection flow *)
    (match vclass with VC.Hi | VC.Ei -> true | _ -> false) && label = Real
  in
  let intake g v = intake ~legacy ~preserve_ws g v in
  if vclass = VC.Xss_stored then
    { vclass; label; code = String.concat "\n" (stored_xss g label) }
  else
  let lines =
    match label with
    | Real when (not legacy) && Random.State.int g.rng 5 = 0 ->
        (* interprocedural variant: the flow crosses a call boundary, the
           sink lives in a helper function *)
        let fname = fresh g "flow" in
        let p = fresh g "p" in
        intake g v
        @ [ Printf.sprintf "function %s($%s) {" fname p ]
        @ List.map (fun l -> "    " ^ l) (sink_lines g vclass p)
        @ [ "}"; Printf.sprintf "%s($%s);" fname v ]
    | Real ->
        let extra = manipulations ~legacy ~preserve_ws g v in
        (* a quarter of the real vulnerabilities carry a weak presence
           check — still exploitable, but the isset/empty symptom shows
           up in both classes, as it does in real applications *)
        let weak_guard =
          match Random.State.int g.rng 4 with
          | 0 ->
              [ Printf.sprintf "if (!isset($%s)) {" v; "    die('missing');"; "}" ]
          | 1 ->
              [ Printf.sprintf "if (empty($%s)) {" v;
                Printf.sprintf "    $%s = 'default';" v; "}" ]
          | _ -> []
        in
        intake g v @ weak_guard @ extra @ sink_lines g vclass v
    | Fp_easy ->
        (* real validation code often checks presence before validating,
           so a share of the false positives carries an isset/empty
           prefix on top of the protective guard *)
        let presence =
          match Random.State.int g.rng 4 with
          | 0 -> [ Printf.sprintf "if (!isset($%s)) {" v; "    die('missing');"; "}" ]
          | 1 ->
              [ Printf.sprintf "if (empty($%s)) {" v;
                Printf.sprintf "    $%s = 'none';" v; "}" ]
          | _ -> []
        in
        intake g v @ presence
        @ fp_guard ~legacy g vclass v
        @ manipulations ~legacy g v
        @ sink_lines g vclass v
    | Fp_hard -> intake g v @ fp_hard_protection g vclass v @ sink_lines g vclass v
    | Sanitized -> intake g v @ sanitize_line vclass v @ sink_lines g vclass v
  in
  { vclass; label; code = String.concat "\n" lines }

(* ------------------------------------------------------------------ *)
(* Benign filler code: must not touch any source or sink.              *)

let benign (g : gen) : string =
  let n = fresh g "b" in
  pick g
    [
      Printf.sprintf
        "function util_%s($a, $b) {\n    return $a * 31 + $b;\n}" n;
      Printf.sprintf
        "$cfg_%s = array('debug' => false, 'lang' => 'en', 'items' => 25);" n;
      Printf.sprintf
        "function label_%s($k) {\n    $map = array('a' => 'Alpha', 'b' => 'Beta');\n    return isset($map[$k]) ? $map[$k] : 'Unknown';\n}" n;
      Printf.sprintf
        "for ($i_%s = 0; $i_%s < 10; $i_%s++) {\n    $acc_%s = ($i_%s * 7) %% 13;\n}" n n n n n;
      Printf.sprintf
        "class Model_%s {\n    public $id;\n    public function total($rows) {\n        $sum = 0;\n        foreach ($rows as $r) {\n            $sum += $r;\n        }\n        return $sum;\n    }\n}" n;
      Printf.sprintf "echo '<div class=\"widget-%s\">static content</div>';" n;
      Printf.sprintf
        "function render_%s($title) {\n    return '<h1>' . htmlspecialchars($title) . '</h1>';\n}" n;
    ]
