(** PHP snippet generator with known ground truth.

    Each snippet is a short, self-contained piece of PHP exercising one
    data flow from an entry point towards a sensitive sink of a given
    vulnerability class.  Snippets are deterministic in the generator
    state, so a seeded corpus is fully reproducible. *)

module VC := Wap_catalog.Vuln_class

(** Ground-truth labels:
    - [Real]: exploitable — unsanitized, unvalidated;
    - [Fp_easy]: a false positive with classic symptoms (type checks,
      pattern guards, numeric coercion...);
    - [Fp_hard]: a false positive whose protection leaves no recognized
      symptom (md5, hand-rolled filtering) — the paper's WAPe misses;
    - [Sanitized]: protected by the class's sanitization function — the
      detector must stay silent. *)
type label = Real | Fp_easy | Fp_hard | Sanitized [@@deriving show, eq]

type t = {
  vclass : VC.t;
  label : label;
  code : string;  (** PHP statements, no [<?php] marker *)
}

(** Deterministic generator state. *)
type gen = { rng : Random.State.t; mutable counter : int }

val make_gen : seed:int -> gen

(** Fresh identifier with the given prefix. *)
val fresh : gen -> string -> string

(** Generate one snippet.  [legacy] restricts validations and
    manipulations to the symptom set the original WAP already knew
    (used to build the 76-instance v2.1 training set). *)
val generate : ?legacy:bool -> gen -> VC.t -> label -> t

(** Benign filler code that touches no source and no sink. *)
val benign : gen -> string

(** The hand-rolled sanitizer used by the hard false positives; emitted
    once per file that needs it (the §V-A "escape" function). *)
val escape_helper : string
