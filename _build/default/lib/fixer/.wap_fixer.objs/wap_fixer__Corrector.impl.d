lib/fixer/corrector.pp.ml: Ast Fix Hashtbl List Loc Parser Printer String Visitor Wap_php Wap_taint
