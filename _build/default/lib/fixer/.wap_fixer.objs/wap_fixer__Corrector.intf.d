lib/fixer/corrector.pp.mli: Ast Fix Loc Wap_php Wap_taint
