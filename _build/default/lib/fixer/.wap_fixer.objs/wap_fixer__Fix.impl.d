lib/fixer/fix.pp.ml: Char List Ppx_deriving_runtime Printf String Wap_catalog
