lib/fixer/fix.pp.mli: Ppx_deriving_runtime Wap_catalog
