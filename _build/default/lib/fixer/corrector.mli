(** The code corrector: inserts fixes into vulnerable source (the
    right-hand module of Fig. 1).

    Correction happens on the AST: the tainted argument expressions at
    the sink are wrapped in a call to the fix function, whose definition
    is prepended once per file.  Fixes are applied at the line of the
    sensitive sink, as in the original WAP. *)

open Wap_php

type correction = {
  candidate : Wap_taint.Trace.candidate;
  fix : Fix.t;
}

type report = {
  file : string;
  applied : (Fix.t * Loc.t) list;  (** fix and the sink line it protects *)
}

(** Apply a batch of corrections to a parsed file: wraps every tainted
    sink argument and prepends each needed fix definition once.
    Duplicate corrections for one sink are collapsed; already-wrapped
    arguments and already-defined fix functions are left alone. *)
val correct_program : Ast.program -> correction list -> Ast.program * report

(** End-to-end correction of source text: parse, fix every candidate
    with its class's stock fix, and print the corrected PHP. *)
val correct_source :
  file:string ->
  string ->
  Wap_taint.Trace.candidate list ->
  string * report
