(** Fixes: small pieces of PHP inserted to sanitize or validate a
    vulnerable data flow (Section III-C).

    A fix is realized as a PHP function (e.g. [san_sqli]) whose
    definition is emitted once per corrected file and whose call wraps
    the tainted expression at the sink line.  Three templates generate
    fixes automatically for new vulnerability classes. *)

type template =
  | Php_sanitization of { sanitizer : string }
      (** wrap with an existing PHP sanitization function *)
  | User_sanitization of { malicious : char list; neutralizer : string }
      (** replace each malicious character with [neutralizer] *)
  | User_validation of { malicious : char list }
      (** reject (message + empty result) when a malicious character is
          present *)
  | Content_validation of { patterns : string list }
      (** reject when content matches one of the regex patterns — used by
          the comment-spamming fixes that look for hyperlinks *)
  | Session_reset
      (** the session-fixation fix written from scratch: never accept a
          caller-provided token *)
[@@deriving show, eq]

type t = {
  fix_name : string;  (** the generated PHP function name, e.g. ["san_sqli"] *)
  vclass : Wap_catalog.Vuln_class.t;
  template : template;
}
[@@deriving show, eq]

(* characters are emitted inside double-quoted PHP strings *)
let php_escape_char c =
  match c with
  | '"' -> "\\\""
  | '$' -> "\\$"
  | '\\' -> "\\\\"
  | '\n' -> "\\n"
  | '\r' -> "\\r"
  | '\t' -> "\\t"
  | c when Char.code c < 32 -> Printf.sprintf "\\x%02x" (Char.code c)
  | c -> String.make 1 c

let char_array chars =
  "array("
  ^ String.concat ", " (List.map (fun c -> "\"" ^ php_escape_char c ^ "\"") chars)
  ^ ")"

(** The PHP source of the fix function. *)
let runtime_code (fix : t) : string =
  match fix.template with
  | Php_sanitization { sanitizer } ->
      Printf.sprintf "function %s($v) {\n    return %s($v);\n}\n" fix.fix_name sanitizer
  | User_sanitization { malicious; neutralizer } ->
      Printf.sprintf
        "function %s($v) {\n    return str_replace(%s, \"%s\", $v);\n}\n"
        fix.fix_name (char_array malicious)
        (String.concat "" (List.map php_escape_char (String.to_seq neutralizer |> List.of_seq)))
  | User_validation { malicious } ->
      Printf.sprintf
        "function %s($v) {\n\
        \    foreach (%s as $c) {\n\
        \        if (strpos($v, $c) !== false) {\n\
        \            trigger_error('malicious character detected', E_USER_WARNING);\n\
        \            return '';\n\
        \        }\n\
        \    }\n\
        \    return $v;\n\
         }\n"
        fix.fix_name (char_array malicious)
  | Content_validation { patterns } ->
      Printf.sprintf
        "function %s($v) {\n\
        \    foreach (array(%s) as $re) {\n\
        \        if (preg_match($re, $v)) {\n\
        \            trigger_error('forbidden content detected', E_USER_WARNING);\n\
        \            return '';\n\
        \        }\n\
        \    }\n\
        \    return $v;\n\
         }\n"
        fix.fix_name
        (String.concat ", " (List.map (fun p -> "'" ^ p ^ "'") patterns))
  | Session_reset ->
      Printf.sprintf
        "function %s($v) {\n\
        \    // never trust a caller-provided session token\n\
        \    if (!preg_match('/^[a-zA-Z0-9,-]{22,40}$/', $v)) {\n\
        \        session_regenerate_id(true);\n\
        \        return session_id();\n\
        \    }\n\
        \    session_regenerate_id(true);\n\
        \    return session_id();\n\
         }\n"
        fix.fix_name

(* ------------------------------------------------------------------ *)
(* Stock fixes shipped with the tool.                                  *)

let hei_malicious = [ '\r'; '\n' ]

let stock (vclass : Wap_catalog.Vuln_class.t) : t =
  let open Wap_catalog.Vuln_class in
  match vclass with
  | Sqli ->
      { fix_name = "san_sqli"; vclass;
        template = Php_sanitization { sanitizer = "mysql_real_escape_string" } }
  | Xss_reflected ->
      { fix_name = "san_out"; vclass;
        template = Php_sanitization { sanitizer = "htmlspecialchars" } }
  | Xss_stored ->
      { fix_name = "san_wdata"; vclass;
        template = Php_sanitization { sanitizer = "htmlspecialchars" } }
  | Osci ->
      { fix_name = "san_osci"; vclass;
        template = Php_sanitization { sanitizer = "escapeshellarg" } }
  | Phpci ->
      { fix_name = "san_eval"; vclass;
        template = User_validation { malicious = [ ';'; '('; ')'; '`'; '$' ] } }
  | Rfi | Lfi | Dt_pt | Scd ->
      { fix_name = "san_mix"; vclass;
        template = User_validation { malicious = [ '/'; '\\'; '.'; ':' ] } }
  | Ldapi ->
      { fix_name = "san_ldap"; vclass;
        template = User_validation { malicious = [ '*'; '('; ')'; '\\'; '|'; '&'; '=' ] } }
  | Xpathi ->
      { fix_name = "san_xpath"; vclass;
        template = User_validation { malicious = [ '\''; '"'; '['; ']'; '('; ')'; '=' ] } }
  | Nosqli ->
      (* Section IV-C1: PHP sanitization template with
         mysql_real_escape_string *)
      { fix_name = "san_nosqli"; vclass;
        template = Php_sanitization { sanitizer = "mysql_real_escape_string" } }
  | Hi | Ei ->
      (* Section IV-C2: user sanitization template replacing \r \n by a
         space *)
      { fix_name = "san_hei"; vclass;
        template = User_sanitization { malicious = hei_malicious; neutralizer = " " } }
  | Cs ->
      (* the modified san_read/san_write checking for hyperlinks *)
      { fix_name = "san_write"; vclass;
        template =
          Content_validation
            { patterns = [ "/https?:\\/\\//i"; "/<a\\s/i"; "/\\[url/i" ] } }
  | Sf -> { fix_name = "san_sf"; vclass; template = Session_reset }
  | Wp_sqli ->
      { fix_name = "san_wpsqli"; vclass;
        template = Php_sanitization { sanitizer = "esc_sql" } }
  | Custom name ->
      { fix_name = "san_" ^ name; vclass;
        template = User_validation { malicious = [ '\''; '"' ] } }
