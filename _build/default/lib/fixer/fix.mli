(** Fixes: small pieces of PHP inserted to sanitize or validate a
    vulnerable data flow (Section III-C).

    A fix is realized as a PHP function (e.g. [san_sqli]) whose
    definition is emitted once per corrected file and whose call wraps
    the tainted expression at the sink line.  Three templates generate
    fixes automatically for new vulnerability classes; two more cover
    the special CS and SF fixes of Section IV-B. *)

type template =
  | Php_sanitization of { sanitizer : string }
      (** wrap with an existing PHP sanitization function *)
  | User_sanitization of { malicious : char list; neutralizer : string }
      (** replace each malicious character with [neutralizer] *)
  | User_validation of { malicious : char list }
      (** reject (warning + empty result) when a malicious character is
          present *)
  | Content_validation of { patterns : string list }
      (** reject when content matches one of the regex patterns — used
          by the comment-spamming fixes that look for hyperlinks *)
  | Session_reset
      (** the session-fixation fix written from scratch: never accept a
          caller-provided token *)
[@@deriving show, eq]

type t = {
  fix_name : string;  (** the generated PHP function name, e.g. ["san_sqli"] *)
  vclass : Wap_catalog.Vuln_class.t;
  template : template;
}
[@@deriving show, eq]

(** The PHP source of the fix function (parseable, one function). *)
val runtime_code : t -> string

(** The fix shipped for each class, with the paper's names
    ([san_nosqli], [san_hei], [san_wpsqli], ...). *)
val stock : Wap_catalog.Vuln_class.t -> t
