lib/mining/attributes.pp.ml: Array Evidence List Ppx_deriving_runtime Symptom
