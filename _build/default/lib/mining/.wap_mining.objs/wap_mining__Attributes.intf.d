lib/mining/attributes.pp.mli: Evidence Ppx_deriving_runtime
