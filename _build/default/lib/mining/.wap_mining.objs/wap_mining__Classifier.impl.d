lib/mining/classifier.pp.ml: Array Dataset
