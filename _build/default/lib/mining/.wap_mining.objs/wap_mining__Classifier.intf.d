lib/mining/classifier.pp.mli: Dataset
