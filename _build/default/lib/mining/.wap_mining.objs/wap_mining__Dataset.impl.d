lib/mining/dataset.pp.ml: Array Attributes Buffer Evidence Fun Hashtbl List Printf Random String
