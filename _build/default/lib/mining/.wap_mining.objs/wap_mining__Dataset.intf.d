lib/mining/dataset.pp.mli: Attributes Evidence
