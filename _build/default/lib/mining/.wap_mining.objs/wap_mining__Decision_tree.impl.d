lib/mining/decision_tree.pp.ml: Array Classifier Dataset Fun Hashtbl List Random
