lib/mining/decision_tree.pp.mli: Classifier Dataset
