lib/mining/evaluation.pp.ml: Classifier Dataset Decision_tree Knn List Logistic Metrics Mlp Naive_bayes Random_forest Random_tree Svm
