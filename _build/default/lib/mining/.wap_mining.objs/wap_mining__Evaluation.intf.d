lib/mining/evaluation.pp.mli: Classifier Dataset Metrics
