lib/mining/evidence.pp.ml: Ast List Set String Symptom Wap_catalog Wap_php Wap_taint
