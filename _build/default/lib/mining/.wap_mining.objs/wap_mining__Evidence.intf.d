lib/mining/evidence.pp.mli: Symptom Wap_php Wap_taint
