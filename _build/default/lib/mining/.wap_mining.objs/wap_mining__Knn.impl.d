lib/mining/knn.pp.ml: Array Classifier Dataset Int
