lib/mining/knn.pp.mli: Classifier Dataset
