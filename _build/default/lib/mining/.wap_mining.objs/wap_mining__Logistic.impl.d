lib/mining/logistic.pp.ml: Array Classifier Dataset List
