lib/mining/logistic.pp.mli: Classifier Dataset
