lib/mining/metrics.pp.ml: Ppx_deriving_runtime
