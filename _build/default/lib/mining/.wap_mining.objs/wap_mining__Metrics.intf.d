lib/mining/metrics.pp.mli: Ppx_deriving_runtime
