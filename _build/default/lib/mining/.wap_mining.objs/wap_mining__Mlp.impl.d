lib/mining/mlp.pp.ml: Array Classifier Dataset Random
