lib/mining/mlp.pp.mli: Classifier Dataset
