lib/mining/naive_bayes.pp.ml: Array Classifier Dataset List
