lib/mining/naive_bayes.pp.mli: Classifier Dataset
