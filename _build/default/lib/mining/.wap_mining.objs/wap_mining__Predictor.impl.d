lib/mining/predictor.pp.ml: Attributes Classifier Dataset Evidence List Logistic Random_forest Random_tree Svm Symptom Wap_taint
