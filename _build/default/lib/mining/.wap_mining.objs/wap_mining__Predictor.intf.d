lib/mining/predictor.pp.mli: Attributes Classifier Dataset Symptom Wap_taint
