lib/mining/random_forest.pp.ml: Array Classifier Dataset Decision_tree List Random Random_tree
