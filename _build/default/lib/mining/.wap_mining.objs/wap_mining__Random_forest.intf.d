lib/mining/random_forest.pp.mli: Classifier Dataset Decision_tree
