lib/mining/random_tree.pp.ml: Array Classifier Dataset Decision_tree
