lib/mining/random_tree.pp.mli: Classifier Dataset Decision_tree
