lib/mining/svm.pp.ml: Array Classifier Dataset Random
