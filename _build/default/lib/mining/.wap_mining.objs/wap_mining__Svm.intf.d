lib/mining/svm.pp.mli: Classifier Dataset
