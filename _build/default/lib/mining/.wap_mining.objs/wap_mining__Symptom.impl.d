lib/mining/symptom.pp.ml: List Ppx_deriving_runtime String
