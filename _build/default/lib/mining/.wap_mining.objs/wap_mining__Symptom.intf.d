lib/mining/symptom.pp.mli: Ppx_deriving_runtime
