(** Attribute vectors for the classifiers.

    Two granularities exist (Section III-B1):
    - [Original]: WAP v2.1's 15 attributes, each the disjunction of the
      symptoms in its group (plus the class attribute: 16);
    - [Extended]: the new WAP's 60 attributes, one per symptom (plus the
      class attribute: 61). *)

type mode = Original | Extended [@@deriving show, eq]

(** Attribute names, in vector order (without the class attribute). *)
let names = function
  | Original -> Symptom.original_groups
  | Extended -> Symptom.names

let arity mode = List.length (names mode)

(** Number of attributes as the paper counts them (including the class
    attribute): 16 for the original tool, 61 for the new one. *)
let paper_count mode = arity mode + 1

(** Encode a symptom set as a binary feature vector. *)
let vector_of_evidence (mode : mode) (ev : Evidence.t) : float array =
  match mode with
  | Extended ->
      Array.of_list
        (List.map (fun n -> if Evidence.mem n ev then 1.0 else 0.0) Symptom.names)
  | Original ->
      Array.of_list
        (List.map
           (fun g ->
             let syms = Symptom.group_symptoms ~original_only:true g in
             if List.exists (fun (s : Symptom.t) -> Evidence.mem s.name ev) syms
             then 1.0
             else 0.0)
           Symptom.original_groups)
