(** Attribute vectors for the classifiers.

    Two granularities exist (Section III-B1):
    - [Original]: WAP v2.1's 15 attributes, each the disjunction of the
      symptoms in its group (plus the class attribute: 16);
    - [Extended]: the new WAP's 60 attributes, one per symptom (plus the
      class attribute: 61). *)

type mode = Original | Extended [@@deriving show, eq]

(** Attribute names, in vector order (without the class attribute). *)
val names : mode -> string list

(** Vector length: 15 or 60. *)
val arity : mode -> int

(** Attribute count as the paper reports it (including the class
    attribute): 16 or 61. *)
val paper_count : mode -> int

(** Encode a symptom set as a binary feature vector. *)
val vector_of_evidence : mode -> Evidence.t -> float array
