(** Common interface for the machine-learning classifiers.

    Every model predicts whether a candidate vulnerability is a false
    positive ([true]) from its binary attribute vector.  All training is
    deterministic given the seed so the experiment tables are
    reproducible. *)

type model = {
  name : string;
  predict : float array -> bool;
  score : float array -> float;  (** confidence in the FP class, in [0,1] *)
}

type algorithm = {
  algo_name : string;
  train : seed:int -> Dataset.t -> model;
}

let predict m x = m.predict x
let score m x = m.score x

(* small shared helpers *)

let dot w x =
  let s = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    s := !s +. (w.(i) *. x.(i))
  done;
  !s

let sigmoid z = 1.0 /. (1.0 +. exp (-.z))
