(** Common interface for the machine-learning classifiers.

    Every model predicts whether a candidate vulnerability is a false
    positive ([true]) from its binary attribute vector.  All training is
    deterministic given the seed so the experiment tables are
    reproducible. *)

type model = {
  name : string;
  predict : float array -> bool;
  score : float array -> float;  (** confidence in the FP class, in [0,1] *)
}

type algorithm = {
  algo_name : string;
  train : seed:int -> Dataset.t -> model;
}

val predict : model -> float array -> bool
val score : model -> float array -> float

(** Dense dot product (shared by the linear models). *)
val dot : float array -> float array -> float

val sigmoid : float -> float
