(** Training data for the false-positive predictor.

    An instance is one candidate vulnerability encoded as a binary
    attribute vector plus its manually assigned class: [true] when the
    candidate is a false positive, [false] when it is a real
    vulnerability — the Yes/No of Table III. *)

type instance = {
  features : float array;
  label : bool;  (** [true] = false positive (class Yes) *)
}

type t = {
  mode : Attributes.mode;
  instances : instance list;
}

let size d = List.length d.instances
let positives d = List.length (List.filter (fun i -> i.label) d.instances)
let negatives d = size d - positives d

let make ~mode instances = { mode; instances }

let of_evidence ~mode (labelled : (Evidence.t * bool) list) : t =
  {
    mode;
    instances =
      List.map
        (fun (ev, label) ->
          { features = Attributes.vector_of_evidence mode ev; label })
        labelled;
  }

(* ------------------------------------------------------------------ *)
(* Noise elimination (Section III-B1): duplicated instances are kept
   once; ambiguous ones (same features, both labels) are removed.       *)

let feature_key fs =
  String.init (Array.length fs) (fun i -> if fs.(i) > 0.5 then '1' else '0')

let deduplicate (d : t) : t =
  let tbl : (string, bool list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun inst ->
      let k = feature_key inst.features in
      match Hashtbl.find_opt tbl k with
      | Some labels -> labels := inst.label :: !labels
      | None ->
          Hashtbl.add tbl k (ref [ inst.label ]);
          order := (k, inst.features) :: !order)
    d.instances;
  let keep =
    List.filter_map
      (fun (k, features) ->
        let labels = !(Hashtbl.find tbl k) in
        let fp = List.length (List.filter Fun.id labels) in
        let rv = List.length labels - fp in
        if fp > 0 && rv > 0 then None (* ambiguous: drop *)
        else Some { features; label = fp > 0 })
      (List.rev !order)
  in
  { d with instances = keep }

(** Balance the data set to [n/2] false positives and [n/2] real
    vulnerabilities (the paper's 256-instance set is balanced).  When
    one class is short the result is as large as possible while staying
    balanced. *)
let balance ?n (d : t) : t =
  let fps = List.filter (fun i -> i.label) d.instances in
  let rvs = List.filter (fun i -> not i.label) d.instances in
  let half =
    match n with
    | Some n -> min (n / 2) (min (List.length fps) (List.length rvs))
    | None -> min (List.length fps) (List.length rvs)
  in
  let take k l =
    let rec go k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: tl -> x :: go (k - 1) tl
    in
    go k l
  in
  { d with instances = take half fps @ take half rvs }

(** Take up to [fp] false-positive and [rv] real-vulnerability
    instances — the original WAP's set was unbalanced (32 FP / 44 RV). *)
let take_split ~fp ~rv (d : t) : t =
  let fps = List.filter (fun i -> i.label) d.instances in
  let rvs = List.filter (fun i -> not i.label) d.instances in
  let take k l =
    List.filteri (fun i _ -> i < k) l
  in
  { d with instances = take fp fps @ take rv rvs }

(** Deterministic shuffle. *)
let shuffle ~seed (d : t) : t =
  let rng = Random.State.make [| seed |] in
  let arr = Array.of_list d.instances in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  { d with instances = Array.to_list arr }

(* ------------------------------------------------------------------ *)
(* Stratified k-fold split.                                            *)

(** [stratified_folds ~k d] partitions the instances into [k] folds,
    preserving the class ratio in each fold.  Returns a list of
    (train, test) pairs. *)
let stratified_folds ~k (d : t) : (t * t) list =
  let fps = List.filter (fun i -> i.label) d.instances in
  let rvs = List.filter (fun i -> not i.label) d.instances in
  let assign instances =
    List.mapi (fun i inst -> (i mod k, inst)) instances
  in
  let tagged = assign fps @ assign rvs in
  List.init k (fun fold ->
      let test = List.filter_map (fun (f, i) -> if f = fold then Some i else None) tagged in
      let train = List.filter_map (fun (f, i) -> if f <> fold then Some i else None) tagged in
      ({ d with instances = train }, { d with instances = test }))

(* ------------------------------------------------------------------ *)
(* Serialization (CSV with a header, ARFF-of-the-poor).                *)

let to_csv (d : t) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b (String.concat "," (Attributes.names d.mode) ^ ",class\n");
  List.iter
    (fun inst ->
      Array.iter
        (fun f -> Buffer.add_string b (if f > 0.5 then "1," else "0,"))
        inst.features;
      Buffer.add_string b (if inst.label then "FP\n" else "RV\n"))
    d.instances;
  Buffer.contents b

let of_csv ~mode (contents : string) : t =
  let lines =
    String.split_on_char '\n' contents
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> { mode; instances = [] }
  | _header :: rows ->
      let instances =
        List.map
          (fun row ->
            let cells = String.split_on_char ',' row in
            let rec split_last acc = function
              | [] -> invalid_arg "empty csv row"
              | [ last ] -> (List.rev acc, last)
              | x :: tl -> split_last (x :: acc) tl
            in
            let feats, label = split_last [] cells in
            {
              features = Array.of_list (List.map float_of_string feats);
              label = String.trim label = "FP";
            })
          rows
      in
      { mode; instances }

(** WEKA ARFF export — the format the paper's data-mining step consumed. *)
let to_arff ?(relation = "wap-false-positive-prediction") (d : t) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "@relation %s\n\n" relation);
  List.iter
    (fun name -> Buffer.add_string b (Printf.sprintf "@attribute %s {0,1}\n" name))
    (Attributes.names d.mode);
  Buffer.add_string b "@attribute class {FP,RV}\n\n@data\n";
  List.iter
    (fun inst ->
      Array.iter
        (fun f -> Buffer.add_string b (if f > 0.5 then "1," else "0,"))
        inst.features;
      Buffer.add_string b (if inst.label then "FP\n" else "RV\n"))
    d.instances;
  Buffer.contents b
