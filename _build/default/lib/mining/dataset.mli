(** Training data for the false-positive predictor.

    An instance is one candidate vulnerability encoded as a binary
    attribute vector plus its manually assigned class: [true] when the
    candidate is a false positive, [false] when it is a real
    vulnerability — the Yes/No of Table III. *)

type instance = {
  features : float array;
  label : bool;  (** [true] = false positive (class Yes) *)
}

type t = {
  mode : Attributes.mode;
  instances : instance list;
}

val size : t -> int

(** Number of false-positive instances. *)
val positives : t -> int

(** Number of real-vulnerability instances. *)
val negatives : t -> int

val make : mode:Attributes.mode -> instance list -> t

(** Encode labelled evidence sets. *)
val of_evidence : mode:Attributes.mode -> (Evidence.t * bool) list -> t

(** Noise elimination (Section III-B1): duplicated instances are kept
    once; ambiguous ones (same features, both labels) are removed. *)
val deduplicate : t -> t

(** Balance to [n/2] false positives and [n/2] real vulnerabilities
    (at most — limited by the smaller class). *)
val balance : ?n:int -> t -> t

(** Take up to [fp] false-positive and [rv] real-vulnerability
    instances — the original WAP's set was unbalanced (32 FP / 44 RV). *)
val take_split : fp:int -> rv:int -> t -> t

(** Deterministic Fisher-Yates shuffle. *)
val shuffle : seed:int -> t -> t

(** [stratified_folds ~k d] partitions the instances into [k] folds
    preserving the class ratio; returns (train, test) pairs. *)
val stratified_folds : k:int -> t -> (t * t) list

(** CSV with a header row; labels are [FP] / [RV]. *)
val to_csv : t -> string

val of_csv : mode:Attributes.mode -> string -> t

(** WEKA ARFF export — the format the paper's data-mining step consumed. *)
val to_arff : ?relation:string -> t -> string
