(** CART-style decision trees over binary attributes.

    Shared by {!Random_tree} (a single tree choosing among a random
    attribute subset at each split, as in WEKA's RandomTree — one of the
    original WAP's classifiers) and {!Random_forest} (bagged trees, one
    of the new top 3). *)

type node =
  | Leaf of float  (** probability of the FP class *)
  | Split of int * node * node  (** attribute index; zero branch, one branch *)

type t = { root : node }

type params = {
  max_depth : int;
  min_samples : int;
  feature_subset : int option;
      (** when set, each split considers only this many randomly chosen
          attributes — [None] examines all (plain CART) *)
}

let default_params = { max_depth = 12; min_samples = 2; feature_subset = None }

let gini (instances : Dataset.instance list) =
  let n = List.length instances in
  if n = 0 then 0.0
  else
    let p = float_of_int (List.length (List.filter (fun i -> i.Dataset.label) instances))
            /. float_of_int n in
    2.0 *. p *. (1.0 -. p)

let fp_fraction instances =
  let n = List.length instances in
  if n = 0 then 0.5
  else
    float_of_int (List.length (List.filter (fun i -> i.Dataset.label) instances))
    /. float_of_int n

let split_on idx instances =
  List.partition (fun (i : Dataset.instance) -> i.features.(idx) <= 0.5) instances

let candidate_features ~params ~rng dim =
  match params.feature_subset with
  | None -> List.init dim Fun.id
  | Some k ->
      let k = min k dim in
      (* sample k distinct indices *)
      let chosen = Hashtbl.create k in
      let rec draw n =
        if n = 0 then ()
        else
          let i = Random.State.int rng dim in
          if Hashtbl.mem chosen i then draw n
          else begin
            Hashtbl.add chosen i ();
            draw (n - 1)
          end
      in
      draw k;
      Hashtbl.fold (fun i () acc -> i :: acc) chosen []

let rec build ~params ~rng depth (instances : Dataset.instance list) : node =
  let n = List.length instances in
  let impurity = gini instances in
  if depth >= params.max_depth || n < params.min_samples || impurity = 0.0 then
    Leaf (fp_fraction instances)
  else
    match instances with
    | [] -> Leaf 0.5
    | first :: _ ->
        let dim = Array.length first.features in
        let best = ref None in
        List.iter
          (fun idx ->
            let zeros, ones = split_on idx instances in
            if zeros <> [] && ones <> [] then begin
              let nz = float_of_int (List.length zeros)
              and no = float_of_int (List.length ones) in
              let weighted =
                ((nz *. gini zeros) +. (no *. gini ones)) /. float_of_int n
              in
              let gain = impurity -. weighted in
              match !best with
              | Some (g, _, _, _) when g >= gain -> ()
              | _ -> best := Some (gain, idx, zeros, ones)
            end)
          (candidate_features ~params ~rng dim);
        (match !best with
        | None -> Leaf (fp_fraction instances)
        | Some (_, idx, zeros, ones) ->
            (* zero-gain splits are allowed (XOR-style interactions only
               pay off one level deeper); max_depth bounds the tree *)
            Split
              ( idx,
                build ~params ~rng (depth + 1) zeros,
                build ~params ~rng (depth + 1) ones ))

let train ?(params = default_params) ~seed (d : Dataset.t) : t =
  let rng = Random.State.make [| seed; 104729 |] in
  { root = build ~params ~rng 0 d.Dataset.instances }

let rec score_node node x =
  match node with
  | Leaf p -> p
  | Split (idx, zero, one) ->
      if x.(idx) <= 0.5 then score_node zero x else score_node one x

let score (m : t) x = score_node m.root x
let predict (m : t) x = score m x >= 0.5

let algorithm : Classifier.algorithm =
  {
    algo_name = "Decision Tree";
    train =
      (fun ~seed d ->
        let m = train ~seed d in
        { Classifier.name = "Decision Tree"; predict = predict m; score = score m });
  }

(** Depth and node count, used by tests. *)
let rec depth_of = function
  | Leaf _ -> 0
  | Split (_, a, b) -> 1 + max (depth_of a) (depth_of b)

let rec nodes_of = function Leaf _ -> 1 | Split (_, a, b) -> 1 + nodes_of a + nodes_of b
