(** CART-style decision trees over binary attributes.

    Shared by {!Random_tree} (a single tree choosing among a random
    attribute subset at each split, as in WEKA's RandomTree — one of the
    original WAP's classifiers) and {!Random_forest} (bagged trees, one
    of the new top 3).  Zero-gain splits are allowed so XOR-style
    attribute interactions can be learned; [max_depth] bounds growth. *)

type node =
  | Leaf of float  (** probability of the FP class *)
  | Split of int * node * node  (** attribute index; zero branch, one branch *)

type t = { root : node }

type params = {
  max_depth : int;
  min_samples : int;
  feature_subset : int option;
      (** when set, each split considers only this many randomly chosen
          attributes — [None] examines all (plain CART) *)
}

val default_params : params

val train : ?params:params -> seed:int -> Dataset.t -> t
val score : t -> float array -> float
val predict : t -> float array -> bool
val algorithm : Classifier.algorithm

(** Tree depth (a lone leaf has depth 0). *)
val depth_of : node -> int

(** Total node count. *)
val nodes_of : node -> int
