(** Model evaluation: stratified cross-validation, classifier ranking
    and top-3 selection (the data-mining process of Section III-B1,
    standing in for WEKA). *)

(** Aggregate confusion matrix of [algo] under stratified [k]-fold
    cross-validation. *)
let cross_validate ?(k = 10) ~seed (algo : Classifier.algorithm) (d : Dataset.t) :
    Metrics.confusion =
  let d = Dataset.shuffle ~seed d in
  let folds = Dataset.stratified_folds ~k d in
  List.fold_left
    (fun acc (train, test) ->
      let model = algo.Classifier.train ~seed train in
      List.fold_left
        (fun acc (inst : Dataset.instance) ->
          Metrics.observe acc
            ~predicted:(Classifier.predict model inst.features)
            ~actual:inst.label)
        acc test.Dataset.instances)
    Metrics.empty folds

(** Train on the full set and evaluate on it (resubstitution): used for
    the confusion matrices of Table III, which the paper reports over
    the whole 256-instance data set. *)
let resubstitution ~seed (algo : Classifier.algorithm) (d : Dataset.t) :
    Metrics.confusion =
  let model = algo.Classifier.train ~seed d in
  List.fold_left
    (fun acc (inst : Dataset.instance) ->
      Metrics.observe acc
        ~predicted:(Classifier.predict model inst.features)
        ~actual:inst.label)
    Metrics.empty d.Dataset.instances

type ranked = {
  algo : Classifier.algorithm;
  confusion : Metrics.confusion;
}

(** Evaluate a pool of classifiers and rank them by the paper's goals:
    primarily high tpp (catch false positives), secondarily low pfp
    (don't dismiss real vulnerabilities), then accuracy. *)
let rank_classifiers ?(k = 10) ~seed (pool : Classifier.algorithm list)
    (d : Dataset.t) : ranked list =
  let scored =
    List.map (fun algo -> { algo; confusion = cross_validate ~k ~seed algo d }) pool
  in
  List.sort
    (fun a b ->
      let key c =
        ( Metrics.tpp c.confusion -. Metrics.pfp c.confusion,
          Metrics.acc c.confusion )
      in
      compare (key b) (key a))
    scored

(** The default classifier pool, echoing the paper's re-evaluation. *)
let default_pool =
  [
    Svm.algorithm;
    Logistic.algorithm;
    Random_forest.algorithm;
    Random_tree.algorithm;
    Decision_tree.algorithm;
    Naive_bayes.algorithm;
    Knn.algorithm;
    Mlp.algorithm;
  ]

(** Top-3 selection over the default pool. *)
let top3 ?(k = 10) ~seed (d : Dataset.t) : ranked list =
  match rank_classifiers ~k ~seed default_pool d with
  | a :: b :: c :: _ -> [ a; b; c ]
  | short -> short
