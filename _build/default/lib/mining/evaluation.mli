(** Model evaluation: stratified cross-validation, classifier ranking
    and top-3 selection (the data-mining process of Section III-B1,
    standing in for WEKA). *)

(** Aggregate confusion matrix of [algo] under stratified [k]-fold
    cross-validation (default [k = 10]); every instance is tested
    exactly once. *)
val cross_validate :
  ?k:int -> seed:int -> Classifier.algorithm -> Dataset.t -> Metrics.confusion

(** Train on the full set and evaluate on it (resubstitution). *)
val resubstitution :
  seed:int -> Classifier.algorithm -> Dataset.t -> Metrics.confusion

type ranked = {
  algo : Classifier.algorithm;
  confusion : Metrics.confusion;
}

(** Evaluate a pool and rank by the paper's goals: primarily high tpp
    with low pfp (informedness), secondarily accuracy. *)
val rank_classifiers :
  ?k:int -> seed:int -> Classifier.algorithm list -> Dataset.t -> ranked list

(** The default classifier pool, echoing the paper's re-evaluation. *)
val default_pool : Classifier.algorithm list

(** Top-3 selection over the default pool. *)
val top3 : ?k:int -> seed:int -> Dataset.t -> ranked list
