(** Symptom collection: turning a candidate vulnerability into the set
    of symptoms present in its data flow (the front half of Fig. 3).

    Evidence comes from three places: the validation guards the taint
    analyzer observed dominating the flow, the manipulation functions
    the tainted data passed through, and a syntactic analysis of the SQL
    query built at the sink. *)

open Wap_php
module SS = Set.Make (String)

type t = SS.t

let to_list = SS.elements
let mem = SS.mem

(* ------------------------------------------------------------------ *)
(* Flattening a sink argument into literal / dynamic parts.            *)

type part = Lit of string | Dyn

let rec flatten (e : Ast.expr) : part list =
  match e.e with
  | Ast.String s -> [ Lit s ]
  | Ast.Int n -> [ Lit (string_of_int n) ]
  | Ast.Interp parts ->
      List.concat_map
        (function Ast.Ip_str s -> [ Lit s ] | Ast.Ip_expr e -> flatten e)
        parts
  | Ast.Binop (Ast.Concat, l, r) -> flatten l @ flatten r
  | Ast.Ternary (_, Some t, f) -> flatten t @ flatten f
  | _ -> [ Dyn ]

let literal_text parts =
  String.concat " "
    (List.filter_map (function Lit s -> Some s | Dyn -> None) parts)

(* ------------------------------------------------------------------ *)
(* SQL query symptoms.                                                 *)

let contains_ci haystack needle =
  let h = String.uppercase_ascii haystack and n = String.uppercase_ascii needle in
  let nh = String.length h and nn = String.length n in
  let rec go i = i + nn <= nh && (String.sub h i nn = n || go (i + 1)) in
  nn > 0 && go 0

let sql_symptoms ?(origin_parts : part list = []) (sink_args : Ast.expr list) :
    string list =
  let parts = List.concat_map flatten sink_args @ origin_parts in
  let text = literal_text parts in
  let has = contains_ci text in
  let syms = ref [] in
  let add s = syms := s :: !syms in
  if has "FROM " || has " FROM" then add "from";
  if has "AVG(" || has "AVG (" then add "avg";
  if has "COUNT(" || has "COUNT (" then add "count";
  if has "SUM(" || has "SUM (" then add "sum";
  if has "MAX(" || has "MAX (" then add "max";
  if has "MIN(" || has "MIN (" then add "min";
  (* a complex query combines several clauses or nests a select *)
  let clause_hits =
    List.length
      (List.filter has
         [ "JOIN"; "UNION"; "GROUP BY"; "HAVING"; "ORDER BY"; "LIMIT"; "DISTINCT" ])
  in
  let nested_select =
    (* two SELECTs = sub-query *)
    let rec count_sel i acc =
      if i + 6 > String.length text then acc
      else if String.uppercase_ascii (String.sub text i 6) = "SELECT" then
        count_sel (i + 6) (acc + 1)
      else count_sel (i + 1) acc
    in
    count_sel 0 0 >= 2
  in
  if clause_hits >= 2 || nested_select then add "complex_sql";
  (* numeric entry point: a dynamic part spliced right after '=' or
     'LIMIT' with no quote in between, e.g. "... WHERE id=" . $id *)
  let rec numeric_pos = function
    | Lit before :: Dyn :: _rest ->
        let trimmed = String.trim before in
        let n = String.length trimmed in
        (n > 0
        && (trimmed.[n - 1] = '='
           || (n >= 5 && String.uppercase_ascii (String.sub trimmed (n - 5) 5) = "LIMIT")))
        || numeric_pos (Dyn :: _rest)
    | _ :: rest -> numeric_pos rest
    | [] -> false
  in
  if numeric_pos parts then add "is_num";
  !syms

(* ------------------------------------------------------------------ *)
(* Full evidence extraction.                                           *)

(** [collect ?dynamic ?user_functions candidate] computes the symptom
    set of a candidate.

    [dynamic] maps user function names to the static symptom they behave
    like (dynamic symptoms, Section III-B2).  [user_functions] is the
    set of function names defined by the application itself: a user
    function on the flow that is not otherwise mapped counts as a
    white-list validation only when listed in [dynamic]. *)
let collect ?(dynamic : Symptom.dynamic_map = []) (c : Wap_taint.Trace.candidate) : t =
  let add_name acc name =
    match Symptom.of_function_name name with
    | Some s -> SS.add s acc
    | None -> (
        match Symptom.resolve_dynamic dynamic name with
        | Some s -> SS.add s acc
        | None -> acc)
  in
  let acc =
    List.fold_left
      (fun acc (o : Wap_taint.Trace.origin) ->
        let acc = List.fold_left add_name acc o.Wap_taint.Trace.through in
        List.fold_left add_name acc o.Wap_taint.Trace.guards)
      SS.empty c.Wap_taint.Trace.origins
  in
  let is_query_class =
    match c.Wap_taint.Trace.vclass with
    | Wap_catalog.Vuln_class.Sqli | Ldapi | Xpathi | Nosqli | Wp_sqli -> true
    | _ -> false
  in
  let acc =
    if is_query_class then begin
      let origin_parts =
        List.concat_map
          (fun (o : Wap_taint.Trace.origin) ->
            List.map
              (function
                | Wap_taint.Trace.Qlit s -> Lit s
                | Wap_taint.Trace.Qdyn -> Dyn)
              o.Wap_taint.Trace.parts)
          c.Wap_taint.Trace.origins
      in
      List.fold_left (fun acc s -> SS.add s acc)
        acc
        (sql_symptoms ~origin_parts c.Wap_taint.Trace.sink_args)
    end
    else acc
  in
  acc

let of_names names = SS.of_list (List.map String.lowercase_ascii names)
