(** Symptom collection: turning a candidate vulnerability into the set
    of symptoms present in its data flow (the front half of Fig. 3).

    Evidence comes from three places: the validation guards the taint
    analyzer observed dominating the flow, the manipulation functions
    the tainted data passed through, and a syntactic analysis of the
    SQL query built at the sink. *)

(** A set of symptom names. *)
type t

val to_list : t -> string list
val mem : string -> t -> bool

(** Build an evidence set from raw names (used by tests). *)
val of_names : string list -> t

(** Literal/dynamic split of a string-building expression. *)
type part = Lit of string | Dyn

val flatten : Wap_php.Ast.expr -> part list

(** The SQL-manipulation symptoms of a query: FROM clause, aggregates,
    complex structure, numeric entry-point positions.  [origin_parts]
    supplies the structure recorded on the flow when the query was
    assembled before the sink. *)
val sql_symptoms : ?origin_parts:part list -> Wap_php.Ast.expr list -> string list

(** [collect ?dynamic candidate] computes the symptom set of a
    candidate.  [dynamic] maps user function names to the static symptom
    they behave like (dynamic symptoms, Section III-B2). *)
val collect : ?dynamic:Symptom.dynamic_map -> Wap_taint.Trace.candidate -> t
