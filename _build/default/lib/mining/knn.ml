(** k-nearest-neighbours over Hamming distance.

    Part of the wider pool evaluated during model selection. *)

type t = { k : int; instances : Dataset.instance array }

let train ?(k = 5) (d : Dataset.t) : t =
  { k; instances = Array.of_list d.Dataset.instances }

let hamming a b =
  let d = ref 0 in
  for i = 0 to Array.length a - 1 do
    if (a.(i) > 0.5) <> (b.(i) > 0.5) then incr d
  done;
  !d

let score (m : t) x =
  let n = Array.length m.instances in
  if n = 0 then 0.5
  else begin
    let dist = Array.map (fun (i : Dataset.instance) -> (hamming i.features x, i.label)) m.instances in
    Array.sort (fun (a, _) (b, _) -> Int.compare a b) dist;
    let k = min m.k n in
    let fp = ref 0 in
    for i = 0 to k - 1 do
      if snd dist.(i) then incr fp
    done;
    float_of_int !fp /. float_of_int k
  end

let predict (m : t) x = score m x >= 0.5

let algorithm : Classifier.algorithm =
  {
    algo_name = "k-NN";
    train =
      (fun ~seed:_ d ->
        let m = train d in
        { Classifier.name = "k-NN"; predict = predict m; score = score m });
  }
