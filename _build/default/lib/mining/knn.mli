(** k-nearest-neighbours over Hamming distance.

    Part of the wider pool evaluated during model selection. *)

type t = { k : int; instances : Dataset.instance array }

val train : ?k:int -> Dataset.t -> t

(** Fraction of FP labels among the k nearest training instances. *)
val score : t -> float array -> float

val predict : t -> float array -> bool
val algorithm : Classifier.algorithm
