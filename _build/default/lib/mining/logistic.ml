(** Logistic regression with L2 regularization, trained by batch
    gradient descent.

    One of the original WAP's top-3 classifiers, kept in the new top 3
    (Table II). *)

type params = {
  learning_rate : float;
  iterations : int;
  l2 : float;
}

let default_params = { learning_rate = 0.5; iterations = 400; l2 = 0.001 }

type t = { weights : float array; bias : float }

let train ?(params = default_params) (d : Dataset.t) : t =
  match d.Dataset.instances with
  | [] -> { weights = [||]; bias = 0.0 }
  | first :: _ ->
      let dim = Array.length first.Dataset.features in
      let n = List.length d.Dataset.instances in
      let w = Array.make dim 0.0 in
      let b = ref 0.0 in
      let xs = Array.of_list d.Dataset.instances in
      for _ = 1 to params.iterations do
        let grad_w = Array.make dim 0.0 in
        let grad_b = ref 0.0 in
        Array.iter
          (fun (inst : Dataset.instance) ->
            let y = if inst.label then 1.0 else 0.0 in
            let p = Classifier.sigmoid (Classifier.dot w inst.features +. !b) in
            let err = p -. y in
            for i = 0 to dim - 1 do
              grad_w.(i) <- grad_w.(i) +. (err *. inst.features.(i))
            done;
            grad_b := !grad_b +. err)
          xs;
        let nf = float_of_int n in
        for i = 0 to dim - 1 do
          w.(i) <-
            w.(i) -. (params.learning_rate *. ((grad_w.(i) /. nf) +. (params.l2 *. w.(i))))
        done;
        b := !b -. (params.learning_rate *. (!grad_b /. nf))
      done;
      { weights = w; bias = !b }

let score (m : t) x = Classifier.sigmoid (Classifier.dot m.weights x +. m.bias)
let predict (m : t) x = score m x >= 0.5

let algorithm : Classifier.algorithm =
  {
    algo_name = "Logistic Regression";
    train =
      (fun ~seed:_ d ->
        let m = train d in
        { Classifier.name = "Logistic Regression"; predict = predict m; score = score m });
  }
