(** Logistic regression with L2 regularization, trained by batch
    gradient descent.

    One of the original WAP's top-3 classifiers, kept in the new top 3
    (Table II). *)

type params = {
  learning_rate : float;
  iterations : int;
  l2 : float;
}

val default_params : params

type t = { weights : float array; bias : float }

val train : ?params:params -> Dataset.t -> t
val score : t -> float array -> float
val predict : t -> float array -> bool

(** Packaged for {!Evaluation} and {!Predictor}. *)
val algorithm : Classifier.algorithm
