(** Confusion matrices and the nine evaluation metrics of Table II.

    Class conventions follow the paper: the positive class "Yes" is
    {e false positive}; misclassifying a real vulnerability as a false
    positive therefore shows up as [fp] in the matrix and corresponds to
    a missed vulnerability. *)

type confusion = {
  tp : int;  (** false positives predicted as false positives *)
  fp : int;  (** real vulnerabilities predicted as false positives *)
  fn : int;  (** false positives predicted as real vulnerabilities *)
  tn : int;  (** real vulnerabilities predicted as real vulnerabilities *)
}
[@@deriving show, eq]

let empty = { tp = 0; fp = 0; fn = 0; tn = 0 }

let add a b = { tp = a.tp + b.tp; fp = a.fp + b.fp; fn = a.fn + b.fn; tn = a.tn + b.tn }

let observe c ~predicted ~actual =
  match (predicted, actual) with
  | true, true -> { c with tp = c.tp + 1 }
  | true, false -> { c with fp = c.fp + 1 }
  | false, true -> { c with fn = c.fn + 1 }
  | false, false -> { c with tn = c.tn + 1 }

let total c = c.tp + c.fp + c.fn + c.tn

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

(** tpp = recall = tp / (tp + fn): fraction of false positives caught. *)
let tpp c = ratio c.tp (c.tp + c.fn)

(** pfp = fallout = fp / (tn + fp): fraction of real vulnerabilities
    wrongly dismissed — the paper's goal (2) is minimizing this. *)
let pfp c = ratio c.fp (c.tn + c.fp)

(** prfp = precision on the FP class = tp / (tp + fp). *)
let prfp c = ratio c.tp (c.tp + c.fp)

(** pd = specificity = tn / (tn + fp). *)
let pd c = ratio c.tn (c.tn + c.fp)

(** ppd = inverse precision = tn / (tn + fn). *)
let ppd c = ratio c.tn (c.tn + c.fn)

(** accuracy = (tp + tn) / N. *)
let acc c = ratio (c.tp + c.tn) (total c)

(** pr = (prfp + ppd) / 2: macro precision. *)
let pr c = (prfp c +. ppd c) /. 2.0

(** informedness = tpp + pd - 1 = tpp - pfp. *)
let inform c = tpp c +. pd c -. 1.0

(** jaccard = tp / (tp + fn + fp). *)
let jacc c = ratio c.tp (c.tp + c.fn + c.fp)

type row = { metric : string; value : float }

let all_metrics c : row list =
  [
    { metric = "tpp"; value = tpp c };
    { metric = "pfp"; value = pfp c };
    { metric = "prfp"; value = prfp c };
    { metric = "pd"; value = pd c };
    { metric = "ppd"; value = ppd c };
    { metric = "acc"; value = acc c };
    { metric = "pr"; value = pr c };
    { metric = "inform"; value = inform c };
    { metric = "jacc"; value = jacc c };
  ]

let metric_names =
  [ "tpp"; "pfp"; "prfp"; "pd"; "ppd"; "acc"; "pr"; "inform"; "jacc" ]

let get c = function
  | "tpp" -> tpp c
  | "pfp" -> pfp c
  | "prfp" -> prfp c
  | "pd" -> pd c
  | "ppd" -> ppd c
  | "acc" -> acc c
  | "pr" -> pr c
  | "inform" -> inform c
  | "jacc" -> jacc c
  | m -> invalid_arg ("unknown metric " ^ m)

let pct f = 100.0 *. f
