(** Confusion matrices and the nine evaluation metrics of Table II.

    Class conventions follow the paper: the positive class "Yes" is
    {e false positive}; misclassifying a real vulnerability as a false
    positive therefore shows up as [fp] in the matrix and corresponds to
    a missed vulnerability. *)

type confusion = {
  tp : int;  (** false positives predicted as false positives *)
  fp : int;  (** real vulnerabilities predicted as false positives *)
  fn : int;  (** false positives predicted as real vulnerabilities *)
  tn : int;  (** real vulnerabilities predicted as real vulnerabilities *)
}
[@@deriving show, eq]

val empty : confusion
val add : confusion -> confusion -> confusion
val observe : confusion -> predicted:bool -> actual:bool -> confusion
val total : confusion -> int

(** tpp = recall = tp / (tp + fn): fraction of false positives caught. *)
val tpp : confusion -> float

(** pfp = fallout = fp / (tn + fp): fraction of real vulnerabilities
    wrongly dismissed — the paper's goal (2) is minimizing this. *)
val pfp : confusion -> float

(** prfp = precision on the FP class = tp / (tp + fp). *)
val prfp : confusion -> float

(** pd = specificity = tn / (tn + fp). *)
val pd : confusion -> float

(** ppd = inverse precision = tn / (tn + fn). *)
val ppd : confusion -> float

(** accuracy = (tp + tn) / N. *)
val acc : confusion -> float

(** pr = (prfp + ppd) / 2: macro precision. *)
val pr : confusion -> float

(** informedness = tpp + pd - 1 = tpp - pfp. *)
val inform : confusion -> float

(** jaccard = tp / (tp + fn + fp). *)
val jacc : confusion -> float

type row = { metric : string; value : float }

(** All nine metrics, in Table II order. *)
val all_metrics : confusion -> row list

val metric_names : string list

(** Lookup by name; @raise Invalid_argument for unknown names. *)
val get : confusion -> string -> float

(** Fraction to percentage. *)
val pct : float -> float
