(** A small multi-layer perceptron (one hidden layer, sigmoid
    activations) trained with plain backpropagation.

    WEKA's MultilayerPerceptron was part of the classifier families
    typically screened in model selections of the paper's era; included
    here in the re-evaluation pool. *)

type params = {
  hidden : int;
  learning_rate : float;
  epochs : int;
}

let default_params = { hidden = 8; learning_rate = 0.3; epochs = 200 }

type t = {
  w1 : float array array;  (** hidden x input *)
  b1 : float array;
  w2 : float array;  (** output <- hidden *)
  mutable b2 : float;
}

let hidden_activations (m : t) (x : float array) : float array =
  Array.mapi
    (fun j row ->
      let s = ref m.b1.(j) in
      Array.iteri (fun i w -> s := !s +. (w *. x.(i))) row;
      Classifier.sigmoid !s)
    m.w1

let score (m : t) (x : float array) : float =
  if Array.length m.w1 = 0 then 0.5
  else begin
    let h = hidden_activations m x in
    let o = ref m.b2 in
    Array.iteri (fun j hv -> o := !o +. (m.w2.(j) *. hv)) h;
    Classifier.sigmoid !o
  end

let predict (m : t) x = score m x >= 0.5

let train ?(params = default_params) ~seed (d : Dataset.t) : t =
  match d.Dataset.instances with
  | [] -> { w1 = [||]; b1 = [||]; w2 = [||]; b2 = 0.0 }
  | first :: _ ->
      let dim = Array.length first.Dataset.features in
      let rng = Random.State.make [| seed; 7127 |] in
      let rand () = Random.State.float rng 0.5 -. 0.25 in
      let m =
        {
          w1 = Array.init params.hidden (fun _ -> Array.init dim (fun _ -> rand ()));
          b1 = Array.init params.hidden (fun _ -> rand ());
          w2 = Array.init params.hidden (fun _ -> rand ());
          b2 = rand ();
        }
      in
      let xs = Array.of_list d.Dataset.instances in
      for _epoch = 1 to params.epochs do
        Array.iter
          (fun (inst : Dataset.instance) ->
            let x = inst.Dataset.features in
            let y = if inst.Dataset.label then 1.0 else 0.0 in
            let h = hidden_activations m x in
            let o =
              let s = ref m.b2 in
              Array.iteri (fun j hv -> s := !s +. (m.w2.(j) *. hv)) h;
              Classifier.sigmoid !s
            in
            let delta_o = (o -. y) *. o *. (1.0 -. o) in
            let delta_h =
              Array.mapi (fun j hv -> delta_o *. m.w2.(j) *. hv *. (1.0 -. hv)) h
            in
            Array.iteri
              (fun j hv ->
                m.w2.(j) <- m.w2.(j) -. (params.learning_rate *. delta_o *. hv))
              h;
            m.b2 <- m.b2 -. (params.learning_rate *. delta_o);
            Array.iteri
              (fun j row ->
                Array.iteri
                  (fun i xi ->
                    row.(i) <- row.(i) -. (params.learning_rate *. delta_h.(j) *. xi))
                  x;
                m.b1.(j) <- m.b1.(j) -. (params.learning_rate *. delta_h.(j)))
              m.w1)
          xs
      done;
      m

let algorithm : Classifier.algorithm =
  {
    algo_name = "MLP";
    train =
      (fun ~seed d ->
        let m = train ~seed d in
        { Classifier.name = "MLP"; predict = predict m; score = score m });
  }
