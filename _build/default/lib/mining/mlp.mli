(** A small multi-layer perceptron (one hidden layer, sigmoid
    activations) trained with plain backpropagation — part of the
    re-evaluation pool behind the paper's top-3 selection. *)

type params = {
  hidden : int;
  learning_rate : float;
  epochs : int;
}

val default_params : params

type t

val train : ?params:params -> seed:int -> Dataset.t -> t
val score : t -> float array -> float
val predict : t -> float array -> bool
val algorithm : Classifier.algorithm
