(** Bernoulli naive Bayes with Laplace smoothing.

    Not among the paper's top 3; included because the paper's model
    selection re-evaluated a wider pool of classifiers before picking
    SVM, Logistic Regression and Random Forest. *)

type t = {
  prior_fp : float;
  (* per attribute: P(attr=1 | FP) and P(attr=1 | RV) *)
  p_given_fp : float array;
  p_given_rv : float array;
}

let train (d : Dataset.t) : t =
  match d.Dataset.instances with
  | [] -> { prior_fp = 0.5; p_given_fp = [||]; p_given_rv = [||] }
  | first :: _ ->
      let dim = Array.length first.Dataset.features in
      let fps = List.filter (fun i -> i.Dataset.label) d.Dataset.instances in
      let rvs = List.filter (fun i -> not i.Dataset.label) d.Dataset.instances in
      let count instances idx =
        List.length
          (List.filter (fun (i : Dataset.instance) -> i.features.(idx) > 0.5) instances)
      in
      let laplace c n = (float_of_int c +. 1.0) /. (float_of_int n +. 2.0) in
      {
        prior_fp =
          float_of_int (List.length fps)
          /. float_of_int (List.length d.Dataset.instances);
        p_given_fp = Array.init dim (fun i -> laplace (count fps i) (List.length fps));
        p_given_rv = Array.init dim (fun i -> laplace (count rvs i) (List.length rvs));
      }

let log_likelihood probs x =
  let s = ref 0.0 in
  Array.iteri
    (fun i p -> s := !s +. if x.(i) > 0.5 then log p else log (1.0 -. p))
    probs;
  !s

let score (m : t) x =
  if Array.length m.p_given_fp = 0 then 0.5
  else
    let lf = log (max 1e-9 m.prior_fp) +. log_likelihood m.p_given_fp x in
    let lr = log (max 1e-9 (1.0 -. m.prior_fp)) +. log_likelihood m.p_given_rv x in
    (* normalized posterior *)
    let mx = max lf lr in
    let ef = exp (lf -. mx) and er = exp (lr -. mx) in
    ef /. (ef +. er)

let predict (m : t) x = score m x >= 0.5

let algorithm : Classifier.algorithm =
  {
    algo_name = "Naive Bayes";
    train =
      (fun ~seed:_ d ->
        let m = train d in
        { Classifier.name = "Naive Bayes"; predict = predict m; score = score m });
  }
