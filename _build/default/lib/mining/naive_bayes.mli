(** Bernoulli naive Bayes with Laplace smoothing.

    Not among the paper's top 3; included because the paper's model
    selection re-evaluated a wider pool of classifiers before picking
    SVM, Logistic Regression and Random Forest. *)

type t = {
  prior_fp : float;
  p_given_fp : float array;  (** per attribute, P(attr=1 | FP) *)
  p_given_rv : float array;  (** per attribute, P(attr=1 | RV) *)
}

val train : Dataset.t -> t

(** Normalized posterior P(FP | x). *)
val score : t -> float array -> float

val predict : t -> float array -> bool
val algorithm : Classifier.algorithm
