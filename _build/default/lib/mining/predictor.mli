(** The false-positive predictor (Fig. 3): collects symptoms from a
    candidate, builds the attribute vector, and classifies it with the
    top-3 ensemble. *)

type config = {
  mode : Attributes.mode;
  algorithms : Classifier.algorithm list;  (** the top-3 ensemble *)
  dynamic_symptoms : Symptom.dynamic_map;
}

(** WAP v2.1: 16 attributes, Logistic Regression + Random Tree + SVM. *)
val original_config : config

(** WAPe: 61 attributes, SVM + Logistic Regression + Random Forest. *)
val extended_config : config

(** Extend a config with weapon-supplied dynamic symptoms. *)
val with_dynamic_symptoms : config -> Symptom.dynamic_map -> config

type t

(** Train the ensemble on a labelled data set.

    @raise Invalid_argument when the data set's attribute mode does not
    match the config. *)
val train : ?seed:int -> config -> Dataset.t -> t

(** Majority vote of the ensemble: is the candidate a false positive? *)
val is_false_positive : t -> Wap_taint.Trace.candidate -> bool

(** Mean ensemble confidence that the candidate is a false positive. *)
val fp_score : t -> Wap_taint.Trace.candidate -> float

(** The symptoms the predictor saw for a candidate — used to justify FP
    verdicts to the user (the "justifying false positives" box of
    Fig. 3). *)
val justification : t -> Wap_taint.Trace.candidate -> string list

(** Split candidates into (predicted false positives, predicted real
    vulnerabilities); the latter go to the code corrector. *)
val triage :
  t ->
  Wap_taint.Trace.candidate list ->
  Wap_taint.Trace.candidate list * Wap_taint.Trace.candidate list
