(** Random Forest: bagged CART trees with per-split random attribute
    subsets, majority vote.

    Newly selected into the top 3 (Table II): best fallout (pfp), i.e.
    it dismisses the fewest real vulnerabilities. *)

type params = {
  n_trees : int;
  max_depth : int;
}

let default_params = { n_trees = 60; max_depth = 14 }

type t = { trees : Decision_tree.t array }

let bootstrap ~rng (instances : Dataset.instance array) : Dataset.instance list =
  let n = Array.length instances in
  List.init n (fun _ -> instances.(Random.State.int rng n))

let train ?(params = default_params) ~seed (d : Dataset.t) : t =
  let instances = Array.of_list d.Dataset.instances in
  let dim =
    if Array.length instances = 0 then 1
    else Array.length instances.(0).Dataset.features
  in
  let rng = Random.State.make [| seed; 15485863 |] in
  let tree_params =
    {
      Decision_tree.max_depth = params.max_depth;
      min_samples = 2;
      feature_subset = Some (Random_tree.subset_size dim);
    }
  in
  let trees =
    Array.init params.n_trees (fun i ->
        let sample = bootstrap ~rng instances in
        Decision_tree.train ~params:tree_params ~seed:(seed + (i * 31))
          { d with Dataset.instances = sample })
  in
  { trees }

let score (m : t) x =
  if Array.length m.trees = 0 then 0.5
  else
    let s =
      Array.fold_left (fun acc t -> acc +. Decision_tree.score t x) 0.0 m.trees
    in
    s /. float_of_int (Array.length m.trees)

let predict (m : t) x = score m x >= 0.5

let algorithm : Classifier.algorithm =
  {
    algo_name = "Random Forest";
    train =
      (fun ~seed d ->
        let m = train ~seed d in
        { Classifier.name = "Random Forest"; predict = predict m; score = score m });
  }
