(** Random Forest: bagged CART trees with per-split random attribute
    subsets, averaged vote.

    Newly selected into the top 3 (Table II): best fallout (pfp) in the
    paper, i.e. it dismisses the fewest real vulnerabilities. *)

type params = {
  n_trees : int;
  max_depth : int;
}

val default_params : params

type t = { trees : Decision_tree.t array }

val train : ?params:params -> seed:int -> Dataset.t -> t

(** Mean of the trees' leaf probabilities. *)
val score : t -> float array -> float

val predict : t -> float array -> bool
val algorithm : Classifier.algorithm
