(** Random Tree: a single decision tree that examines a random subset of
    attributes at each split (as in WEKA).

    Part of the original WAP's top 3; replaced by Random Forest in the
    new version (Section III-B1). *)

let subset_size dim = max 1 (int_of_float (sqrt (float_of_int dim)) + 1)

let train ~seed (d : Dataset.t) : Decision_tree.t =
  let dim =
    match d.Dataset.instances with
    | first :: _ -> Array.length first.Dataset.features
    | [] -> 1
  in
  let params =
    { Decision_tree.default_params with feature_subset = Some (subset_size dim) }
  in
  Decision_tree.train ~params ~seed d

let algorithm : Classifier.algorithm =
  {
    algo_name = "Random Tree";
    train =
      (fun ~seed d ->
        let m = train ~seed d in
        {
          Classifier.name = "Random Tree";
          predict = Decision_tree.predict m;
          score = Decision_tree.score m;
        });
  }
