(** Random Tree: a single decision tree that examines a random subset of
    attributes at each split (as in WEKA).

    Part of the original WAP's top 3; replaced by Random Forest in the
    new version (Section III-B1). *)

(** The per-split attribute-subset size for [dim] attributes
    (⌊√dim⌋+1). *)
val subset_size : int -> int

val train : seed:int -> Dataset.t -> Decision_tree.t
val algorithm : Classifier.algorithm
