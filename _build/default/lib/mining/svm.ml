(** Linear support vector machine trained with the Pegasos stochastic
    sub-gradient algorithm (Shalev-Shwartz et al.).

    The paper's best classifier for goal (1): catching as many false
    positives as possible (highest tpp in Table II). *)

type params = {
  lambda : float;  (** regularization strength *)
  epochs : int;
}

let default_params = { lambda = 0.005; epochs = 120 }

type t = { weights : float array; bias : float }

let train ?(params = default_params) ~seed (d : Dataset.t) : t =
  match d.Dataset.instances with
  | [] -> { weights = [||]; bias = 0.0 }
  | first :: _ ->
      let dim = Array.length first.Dataset.features in
      let xs = Array.of_list d.Dataset.instances in
      let n = Array.length xs in
      let rng = Random.State.make [| seed; 7919 |] in
      let w = Array.make dim 0.0 in
      let b = ref 0.0 in
      let t = ref 1 in
      for _epoch = 1 to params.epochs do
        for _step = 1 to n do
          let inst = xs.(Random.State.int rng n) in
          let y = if inst.Dataset.label then 1.0 else -1.0 in
          let eta = 1.0 /. (params.lambda *. float_of_int !t) in
          let margin = y *. (Classifier.dot w inst.features +. !b) in
          (* shrink *)
          let shrink = 1.0 -. (eta *. params.lambda) in
          for i = 0 to dim - 1 do
            w.(i) <- w.(i) *. shrink
          done;
          if margin < 1.0 then begin
            for i = 0 to dim - 1 do
              w.(i) <- w.(i) +. (eta *. y *. inst.features.(i))
            done;
            b := !b +. (eta *. y *. 0.1)
          end;
          incr t
        done
      done;
      { weights = w; bias = !b }

let margin (m : t) x = Classifier.dot m.weights x +. m.bias
let predict (m : t) x = margin m x >= 0.0
let score (m : t) x = Classifier.sigmoid (2.0 *. margin m x)

let algorithm : Classifier.algorithm =
  {
    algo_name = "SVM";
    train =
      (fun ~seed d ->
        let m = train ~seed d in
        { Classifier.name = "SVM"; predict = predict m; score = score m });
  }
