(** Linear support vector machine trained with the Pegasos stochastic
    sub-gradient algorithm.

    The paper's best classifier for goal (1): catching as many false
    positives as possible (highest tpp in Table II). *)

type params = {
  lambda : float;  (** regularization strength *)
  epochs : int;
}

val default_params : params

type t = { weights : float array; bias : float }

val train : ?params:params -> seed:int -> Dataset.t -> t

(** Signed distance to the separating hyperplane. *)
val margin : t -> float array -> float

val predict : t -> float array -> bool

(** Margin squashed to [0,1]. *)
val score : t -> float array -> float

val algorithm : Classifier.algorithm
