(** The symptom catalog of Table I.

    A symptom is a source-code feature observed in a candidate
    vulnerability's data flow: a PHP function that validates or
    manipulates the entry point, or a property of the SQL query built at
    the sink.  The original WAP knew 24 symptoms grouped into 15
    attributes; the new version raises the granularity to 60 symptoms,
    each being its own attribute (plus the class attribute: 61). *)

type category = Validation | String_manipulation | Sql_manipulation
[@@deriving show, eq]

type t = {
  name : string;  (** canonical symptom name, e.g. ["is_int"], ["FROM"] *)
  category : category;
  group : string;  (** the original WAP attribute it belongs to *)
  original : bool;  (** present in WAP v2.1's symptom set *)
}
[@@deriving show, eq]

let v ?(original = false) group name = { name; category = Validation; group; original }
let s ?(original = false) group name =
  { name; category = String_manipulation; group; original }
let q ?(original = false) group name = { name; category = Sql_manipulation; group; original }

(** The full symptom list (60 symptoms; with the class attribute the
    instance vectors of the new WAP have 61 positions). *)
let all : t list =
  [
    (* --- validation: type checking --- *)
    v ~original:true "type_checking" "is_string";
    v ~original:true "type_checking" "is_int";
    v ~original:true "type_checking" "is_float";
    v ~original:true "type_checking" "is_numeric";
    v ~original:true "type_checking" "ctype_digit";
    v ~original:true "type_checking" "ctype_alpha";
    v ~original:true "type_checking" "ctype_alnum";
    v ~original:true "type_checking" "intval";
    v "type_checking" "is_double";
    v "type_checking" "is_integer";
    v "type_checking" "is_long";
    v "type_checking" "is_real";
    v "type_checking" "is_scalar";
    (* --- validation: entry point is set --- *)
    v ~original:true "entry_point_is_set" "isset";
    v "entry_point_is_set" "is_null";
    v "entry_point_is_set" "empty";
    (* --- validation: pattern control --- *)
    v ~original:true "pattern_control" "preg_match";
    v "pattern_control" "preg_match_all";
    v "pattern_control" "ereg";
    v "pattern_control" "eregi";
    v "pattern_control" "strnatcmp";
    v "pattern_control" "strcmp";
    v "pattern_control" "strncmp";
    v "pattern_control" "strncasecmp";
    v "pattern_control" "strcasecmp";
    (* --- validation: white / black lists of user functions --- *)
    v ~original:true "white_list" "user_white_list";
    v ~original:true "black_list" "user_black_list";
    (* --- validation: error and exit --- *)
    v ~original:true "error_exit" "error";
    v ~original:true "error_exit" "exit";
    (* --- string manipulation: extract substring --- *)
    s ~original:true "extract_substring" "substr";
    s "extract_substring" "preg_split";
    s "extract_substring" "str_split";
    s "extract_substring" "explode";
    s "extract_substring" "split";
    s "extract_substring" "spliti";
    (* --- string manipulation: concatenation --- *)
    s ~original:true "string_concatenation" "concat_op";
    s "string_concatenation" "implode";
    s "string_concatenation" "join";
    (* --- string manipulation: add char --- *)
    s ~original:true "add_char" "addchar";
    s "add_char" "str_pad";
    (* --- string manipulation: replace string --- *)
    s ~original:true "replace_string" "substr_replace";
    s ~original:true "replace_string" "str_replace";
    s ~original:true "replace_string" "preg_replace";
    s "replace_string" "preg_filter";
    s "replace_string" "ereg_replace";
    s "replace_string" "eregi_replace";
    s "replace_string" "str_ireplace";
    s "replace_string" "str_shuffle";
    s "replace_string" "chunk_split";
    (* --- string manipulation: remove whitespace --- *)
    s ~original:true "remove_whitespace" "trim";
    s "remove_whitespace" "rtrim";
    s "remove_whitespace" "ltrim";
    (* --- SQL query manipulation --- *)
    q ~original:true "complex_query" "complex_sql";
    q ~original:true "numeric_entry_point" "is_num";
    q ~original:true "from_clause" "from";
    q ~original:true "aggregated_function" "avg";
    q "aggregated_function" "count";
    q "aggregated_function" "sum";
    q "aggregated_function" "max";
    q "aggregated_function" "min";
  ]

let count = List.length all
let () = assert (count = 60)

let names = List.map (fun sym -> sym.name) all

let find name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun sym -> sym.name = name) all

let is_symptom name = find name <> None

(** The original WAP's 15 attribute groups, in Table I order. *)
let original_groups =
  [ "type_checking"; "entry_point_is_set"; "pattern_control"; "white_list";
    "black_list"; "error_exit"; "extract_substring"; "string_concatenation";
    "add_char"; "replace_string"; "remove_whitespace"; "complex_query";
    "numeric_entry_point"; "from_clause"; "aggregated_function" ]

(** Symptoms of one original attribute group (original symptom set only
    when [original_only]). *)
let group_symptoms ?(original_only = false) g =
  List.filter (fun sym -> sym.group = g && ((not original_only) || sym.original)) all

(** PHP function names that map directly onto a symptom of the same
    name, used when interpreting the [through]/[guards] evidence of a
    candidate.  Aliases cover spelling differences. *)
let of_function_name fname =
  let fname = String.lowercase_ascii fname in
  match fname with
  | "(int)" | "(integer)" -> Some "intval"
  | "(float)" | "(double)" | "(real)" -> Some "is_float"
  | "(bool)" | "(boolean)" -> Some "is_scalar"
  | "die" -> Some "exit"
  | "trigger_error" | "error_log" | "user_error" -> Some "error"
  | "in_array" | "array_key_exists" -> Some "user_white_list"
  | _ -> if is_symptom fname then Some fname else None

(** Dynamic symptoms: a user-provided mapping from the user's own
    function names to the static symptom each behaves like
    (Section III-B2). *)
type dynamic_map = (string * string) list

let resolve_dynamic (map : dynamic_map) fname =
  List.assoc_opt (String.lowercase_ascii fname) map
