(** The symptom catalog of Table I.

    A symptom is a source-code feature observed in a candidate
    vulnerability's data flow: a PHP function that validates or
    manipulates the entry point, or a property of the SQL query built at
    the sink.  The original WAP knew 24 symptoms grouped into 15
    attributes; the new version raises the granularity to 60 symptoms,
    each being its own attribute (plus the class attribute: 61). *)

type category = Validation | String_manipulation | Sql_manipulation
[@@deriving show, eq]

type t = {
  name : string;  (** canonical symptom name, e.g. ["is_int"], ["from"] *)
  category : category;
  group : string;  (** the original WAP attribute it belongs to *)
  original : bool;  (** present in WAP v2.1's symptom set *)
}
[@@deriving show, eq]

(** The full symptom list, in Table I order. *)
val all : t list

(** [List.length all] = 60. *)
val count : int

(** All symptom names, in vector order. *)
val names : string list

(** Case-insensitive lookup. *)
val find : string -> t option

val is_symptom : string -> bool

(** The original WAP's 15 attribute groups, in Table I order. *)
val original_groups : string list

(** Symptoms of one attribute group; [original_only] restricts to WAP
    v2.1's symptom set. *)
val group_symptoms : ?original_only:bool -> string -> t list

(** Map a PHP function name (or cast marker like ["(int)"]) to the
    symptom it realizes; [None] when the function is not a symptom. *)
val of_function_name : string -> string option

(** Dynamic symptoms: a user-provided mapping from the user's own
    function names to the static symptom each behaves like
    (Section III-B2). *)
type dynamic_map = (string * string) list

val resolve_dynamic : dynamic_map -> string -> string option
