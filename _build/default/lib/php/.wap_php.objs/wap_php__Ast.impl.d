lib/php/ast.pp.ml: List Loc Ppx_deriving_runtime String
