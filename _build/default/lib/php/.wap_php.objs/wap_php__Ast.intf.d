lib/php/ast.pp.mli: Loc Ppx_deriving_runtime
