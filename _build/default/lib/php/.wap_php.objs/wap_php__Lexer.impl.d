lib/php/lexer.pp.ml: Buffer Char List Loc Printf String Token
