lib/php/lexer.pp.mli: Loc Token
