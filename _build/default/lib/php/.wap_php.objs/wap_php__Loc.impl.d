lib/php/loc.pp.ml: Fmt Int Ppx_deriving_runtime Printf String
