lib/php/loc.pp.mli: Format Ppx_deriving_runtime
