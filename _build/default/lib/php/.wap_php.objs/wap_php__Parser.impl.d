lib/php/parser.pp.ml: Array Ast Lexer List Loc Printf String Token
