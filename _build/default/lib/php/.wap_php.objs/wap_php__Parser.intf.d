lib/php/parser.pp.mli: Ast Loc
