lib/php/printer.pp.ml: Ast Buffer Char List Printf String
