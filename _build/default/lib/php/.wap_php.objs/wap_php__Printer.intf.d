lib/php/printer.pp.mli: Ast
