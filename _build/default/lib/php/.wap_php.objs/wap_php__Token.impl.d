lib/php/token.pp.ml: List Ppx_deriving_runtime Printf String
