lib/php/token.pp.mli: Ppx_deriving_runtime
