lib/php/visitor.pp.ml: Ast List Loc Option
