lib/php/visitor.pp.mli: Ast Loc
