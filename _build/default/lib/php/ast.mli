(** Abstract syntax tree for the PHP subset.

    The shape mirrors what WAP's detectors need: expressions carry
    locations so a candidate vulnerability can be traced back to its
    source line, and string interpolation is represented explicitly (an
    [Interp] node) because tainted variables flowing through interpolated
    SQL strings are the single most common vulnerable pattern. *)

type ident = string [@@deriving show, eq]

type binop =
  | Concat
  | Plus | Minus | Mul | Div | Mod | Pow
  | Eq_eq | Neq | Identical | Not_identical
  | Lt | Gt | Le | Ge | Spaceship
  | Bool_and | Bool_or | Bool_xor
  | Bit_and | Bit_or | Bit_xor | Shl | Shr
  | Coalesce
  | Instanceof
[@@deriving show, eq]

type unop = Neg | Uplus | Not | Bit_not | Silence [@@deriving show, eq]

type incdec = Pre_inc | Pre_dec | Post_inc | Post_dec [@@deriving show, eq]

type assign_op =
  | A_eq | A_concat | A_plus | A_minus | A_mul | A_div | A_mod | A_pow
  | A_bit_and | A_bit_or | A_bit_xor | A_shl | A_shr | A_coalesce
[@@deriving show, eq]

type cast = C_int | C_float | C_string | C_bool | C_array | C_object
[@@deriving show, eq]

type include_kind = Inc | Inc_once | Req | Req_once [@@deriving show, eq]

type visibility = Public | Private | Protected [@@deriving show, eq]

type expr = { e : expr_kind; eloc : Loc.t }

and expr_kind =
  | Int of int
  | Float of float
  | String of string  (** literal, escapes resolved *)
  | Interp of interp_part list  (** double-quoted string with interpolation *)
  | Var of ident  (** [$x] *)
  | Var_var of expr  (** [$$x] *)
  | Constant of ident  (** bareword constant; [true]/[false]/[null] included *)
  | Array_lit of array_item list
  | Index of expr * expr option  (** [$a[e]]; [None] is the push form [$a[]] *)
  | Prop of expr * member  (** [$o->p] *)
  | Static_prop of ident * ident  (** [C::$p] *)
  | Class_const of ident * ident  (** [C::K] *)
  | Call of callee * arg list
  | New of ident * arg list
  | Clone of expr
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Incdec of incdec * expr
  | Assign of assign_op * expr * expr
  | Assign_ref of expr * expr  (** [$a =& $b] *)
  | Ternary of expr * expr option * expr  (** [c ? a : b]; [None] is [c ?: b] *)
  | Cast of cast * expr
  | Isset of expr list
  | Empty of expr
  | Exit of expr option
  | Print of expr
  | Include of include_kind * expr
  | List of expr option list  (** [list($a, , $b)] destructuring target *)
  | Closure of closure
  | Backtick of interp_part list
      (** [`cmd`] shell execution; interpolates like a double-quoted string *)

and interp_part = Ip_str of string | Ip_expr of expr

and array_item = { ai_key : expr option; ai_value : expr; ai_by_ref : bool }

and member = Mem_ident of ident | Mem_expr of expr

and callee =
  | F_ident of ident  (** [foo(...)] *)
  | F_var of expr  (** [$f(...)] dynamic call *)
  | F_method of expr * member  (** [$o->m(...)] *)
  | F_static of ident * ident  (** [C::m(...)] *)

and arg = { a_expr : expr; a_spread : bool }

and closure = {
  cl_params : param list;
  cl_uses : (bool * ident) list;  (** [(by_ref, name)] in [use (...)] *)
  cl_body : stmt list;
  cl_static : bool;
}

and param = {
  p_name : ident;
  p_default : expr option;
  p_by_ref : bool;
  p_hint : ident option;
  p_variadic : bool;
}

and stmt = { s : stmt_kind; sloc : Loc.t }

and stmt_kind =
  | Expr_stmt of expr
  | Echo of expr list
  | If of (expr * stmt list) list * stmt list option
      (** if / elseif chain, optional else *)
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | For of expr list * expr list * expr list * stmt list
  | Foreach of expr * foreach_binding * stmt list
  | Switch of expr * case list
  | Break of int option
  | Continue of int option
  | Return of expr option
  | Global of ident list
  | Static_vars of (ident * expr option) list
  | Unset of expr list
  | Throw of expr
  | Try of stmt list * catch list * stmt list option
  | Func_def of func
  | Class_def of cls
  | Block of stmt list
  | Inline_html of string
  | Const_def of (ident * expr) list
  | Nop

and foreach_binding = {
  fe_key : expr option;
  fe_by_ref : bool;
  fe_value : expr;
}

and case = Case of expr * stmt list | Default of stmt list

and catch = { c_types : ident list; c_var : ident option; c_body : stmt list }

and func = {
  f_name : ident;
  f_params : param list;
  f_body : stmt list;
  f_by_ref : bool;
  f_loc : Loc.t;
}

and cls = {
  k_name : ident;
  k_parent : ident option;
  k_implements : ident list;
  k_abstract : bool;
  k_final : bool;
  k_interface : bool;
  k_consts : (ident * expr) list;
  k_props : prop list;
  k_methods : meth list;
  k_loc : Loc.t;
}

and prop = {
  pr_name : ident;
  pr_static : bool;
  pr_visibility : visibility;
  pr_default : expr option;
}

and meth = {
  m_visibility : visibility;
  m_static : bool;
  m_abstract : bool;
  m_final : bool;
  m_func : func;
}
[@@deriving show, eq]

type program = stmt list [@@deriving show, eq]

(** {1 Constructors and helpers} *)

val mk_e : ?loc:Loc.t -> expr_kind -> expr
val mk_s : ?loc:Loc.t -> stmt_kind -> stmt

(** [var "x"] builds the expression [$x]. *)
val var : ?loc:Loc.t -> ident -> expr

(** [call "f" args] builds the expression [f(args)]. *)
val call : ?loc:Loc.t -> ident -> expr list -> expr

val str : ?loc:Loc.t -> string -> expr
val int_ : ?loc:Loc.t -> int -> expr

(** Name of the called function, when the callee is a plain identifier
    (lowercased; static calls as ["class::name"]). *)
val callee_name : callee -> string option

(** [Some (obj, meth)] when the callee is a method call on a named
    variable, e.g. [$wpdb->query(...)]. *)
val method_call_on_var : callee -> (string * string) option

(** The PHP superglobal array names. *)
val superglobals : string list

val is_superglobal : string -> bool

(** The variable at the root of an lvalue chain: [$a[0]->x] ~> ["a"]. *)
val base_variable : expr -> ident option
