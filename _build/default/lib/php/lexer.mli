(** Hand-written lexer for the PHP subset understood by the tool.

    The lexer alternates between two modes, like PHP itself: outside
    [<?php ... ?>] everything is inline HTML; inside, it produces
    {!Token.t} values.  Double-quoted strings, heredocs and backticks are
    split into interpolation parts here so the parser can rebuild the
    implicit concatenation that WAP's taint analysis must see. *)

(** Lexical error with its position. *)
exception Error of string * Loc.t

(** [tokenize ~file src] turns a whole source text (HTML and PHP
    segments) into a located token stream ending with {!Token.EOF}.

    @raise Error on malformed input (unterminated strings or comments,
    bad characters, malformed literals). *)
val tokenize : file:string -> string -> (Token.t * Loc.t) list

(** Read and tokenize a file from disk. *)
val tokenize_file : string -> (Token.t * Loc.t) list
