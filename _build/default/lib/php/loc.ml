(** Source locations for the PHP front-end.

    A location identifies a point in a source file by line (1-based) and
    column (0-based).  Every AST node carries one so that detectors can
    report precise vulnerability positions and the corrector can insert
    fixes at the right line. *)

type t = {
  file : string;
  line : int;
  col : int;
}
[@@deriving show, eq]

let dummy = { file = "<none>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let to_string { file; line; col } = Printf.sprintf "%s:%d:%d" file line col

(** Ordering by file, then line, then column. *)
let compare a b =
  match String.compare a.file b.file with
  | 0 -> ( match Int.compare a.line b.line with 0 -> Int.compare a.col b.col | c -> c)
  | c -> c

let pp_short ppf { line; col; _ } = Fmt.pf ppf "%d:%d" line col
