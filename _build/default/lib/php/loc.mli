(** Source locations for the PHP front-end.

    A location identifies a point in a source file by line (1-based) and
    column (0-based).  Every AST node carries one so that detectors can
    report precise vulnerability positions and the corrector can insert
    fixes at the right line. *)

type t = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
}
[@@deriving show, eq]

(** A placeholder location for synthesized nodes. *)
val dummy : t

val make : file:string -> line:int -> col:int -> t

(** ["file:line:col"]. *)
val to_string : t -> string

(** Ordering by file, then line, then column. *)
val compare : t -> t -> int

(** Prints just ["line:col"]. *)
val pp_short : Format.formatter -> t -> unit
