(** Pretty-printer that turns the AST back into parseable PHP.

    Used by the code corrector to emit fixed source files, and by the
    round-trip property tests: printing is idempotent after one
    normalizing pass through the parser.  Output favours correctness
    over beauty — operands are parenthesized whenever precedence could
    be ambiguous. *)

(** Render an expression as PHP source. *)
val expr_to_string : Ast.expr -> string

(** Render a statement as PHP source (no [<?php] header). *)
val stmt_to_string : Ast.stmt -> string

(** Render a whole program as a PHP file, including the [<?php] header. *)
val program_to_string : Ast.program -> string
