(** Tokens produced by the PHP lexer.

    Double-quoted strings and heredocs are pre-split into interpolation
    parts by the lexer ({!interp_part}); the parser turns [Part_complex]
    parts (the [{$expr}] syntax) into full expressions by re-entering the
    expression grammar. *)

type interp_part =
  | Part_str of string  (** literal text, escapes already resolved *)
  | Part_var of string  (** [$name] *)
  | Part_index of string * index_sub  (** [$name[sub]] simple syntax *)
  | Part_prop of string * string  (** [$name->prop] simple syntax *)
  | Part_complex of string  (** [{$ ... }] raw inner text, parsed later *)
[@@deriving show, eq]

and index_sub =
  | Sub_name of string  (** bareword key: [$a[key]] *)
  | Sub_int of int  (** integer key: [$a[3]] *)
  | Sub_var of string  (** variable key: [$a[$k]] *)
[@@deriving show, eq]

type t =
  (* literals *)
  | INT of int
  | FLOAT of float
  | CONST_STRING of string  (** single-quoted or interpolation-free *)
  | INTERP_STRING of interp_part list  (** double-quoted / heredoc *)
  | VARIABLE of string  (** [$name], payload without the [$] *)
  | IDENT of string
  | INLINE_HTML of string
  | BACKTICK_STRING of interp_part list
      (** [`cmd $arg`] shell-execution operator; interpolates like a
          double-quoted string *)
  (* keywords *)
  | K_IF | K_ELSE | K_ELSEIF | K_ENDIF
  | K_WHILE | K_ENDWHILE | K_DO
  | K_FOR | K_ENDFOR | K_FOREACH | K_ENDFOREACH | K_AS
  | K_SWITCH | K_ENDSWITCH | K_CASE | K_DEFAULT
  | K_BREAK | K_CONTINUE | K_RETURN
  | K_FUNCTION | K_USE | K_GLOBAL | K_STATIC
  | K_CLASS | K_INTERFACE | K_EXTENDS | K_IMPLEMENTS | K_NEW
  | K_PUBLIC | K_PRIVATE | K_PROTECTED | K_ABSTRACT | K_FINAL | K_CONST | K_VAR
  | K_ECHO | K_PRINT
  | K_UNSET | K_ISSET | K_EMPTY | K_LIST | K_ARRAY | K_EXIT
  | K_INCLUDE | K_INCLUDE_ONCE | K_REQUIRE | K_REQUIRE_ONCE
  | K_TRY | K_CATCH | K_FINALLY | K_THROW
  | K_INSTANCEOF | K_CLONE
  | K_AND | K_OR | K_XOR  (** low-precedence word operators *)
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | COLON | DOUBLE_COLON | ARROW | DOUBLE_ARROW
  | QUESTION | QQ (* ?? *) | QQ_EQ (* ??= *)
  | AT (* error-silence *) | DOLLAR (* for $$var *)
  | ELLIPSIS (* ... *)
  (* operators *)
  | PLUS | MINUS | STAR | SLASH | PERCENT | POW
  | DOT (* concatenation *)
  | EQ (* = *) | PLUS_EQ | MINUS_EQ | STAR_EQ | SLASH_EQ | PERCENT_EQ
  | DOT_EQ | POW_EQ | AMP_EQ | PIPE_EQ | CARET_EQ | SHL_EQ | SHR_EQ
  | EQ_EQ | NEQ | IDENTICAL | NOT_IDENTICAL
  | LT | GT | LE | GE | SPACESHIP
  | AMP_AMP | PIPE_PIPE | BANG
  | AMP | PIPE | CARET | TILDE | SHL | SHR
  | INC | DEC
  | EQ_REF (* =& , emitted as EQ followed by AMP; kept for clarity *)
  | EOF
[@@deriving show, eq]

(** Keyword table: lowercase reserved word -> token. PHP keywords are
    case-insensitive; the lexer lowercases before lookup. *)
let keyword_table : (string * t) list =
  [
    ("if", K_IF); ("else", K_ELSE); ("elseif", K_ELSEIF); ("endif", K_ENDIF);
    ("while", K_WHILE); ("endwhile", K_ENDWHILE); ("do", K_DO);
    ("for", K_FOR); ("endfor", K_ENDFOR);
    ("foreach", K_FOREACH); ("endforeach", K_ENDFOREACH); ("as", K_AS);
    ("switch", K_SWITCH); ("endswitch", K_ENDSWITCH);
    ("case", K_CASE); ("default", K_DEFAULT);
    ("break", K_BREAK); ("continue", K_CONTINUE); ("return", K_RETURN);
    ("function", K_FUNCTION); ("use", K_USE);
    ("global", K_GLOBAL); ("static", K_STATIC);
    ("class", K_CLASS); ("interface", K_INTERFACE);
    ("extends", K_EXTENDS); ("implements", K_IMPLEMENTS); ("new", K_NEW);
    ("public", K_PUBLIC); ("private", K_PRIVATE); ("protected", K_PROTECTED);
    ("abstract", K_ABSTRACT); ("final", K_FINAL); ("const", K_CONST);
    ("var", K_VAR);
    ("echo", K_ECHO); ("print", K_PRINT);
    ("unset", K_UNSET); ("isset", K_ISSET); ("empty", K_EMPTY);
    ("list", K_LIST); ("array", K_ARRAY);
    ("exit", K_EXIT); ("die", K_EXIT);
    ("include", K_INCLUDE); ("include_once", K_INCLUDE_ONCE);
    ("require", K_REQUIRE); ("require_once", K_REQUIRE_ONCE);
    ("try", K_TRY); ("catch", K_CATCH); ("finally", K_FINALLY);
    ("throw", K_THROW);
    ("instanceof", K_INSTANCEOF); ("clone", K_CLONE);
    ("and", K_AND); ("or", K_OR); ("xor", K_XOR);
  ]

let of_keyword s = List.assoc_opt (String.lowercase_ascii s) keyword_table

(** Human-readable token name used in parse-error messages. *)
let describe = function
  | INT n -> Printf.sprintf "integer %d" n
  | FLOAT f -> Printf.sprintf "float %g" f
  | CONST_STRING s -> Printf.sprintf "string %S" s
  | INTERP_STRING _ -> "interpolated string"
  | VARIABLE v -> Printf.sprintf "variable $%s" v
  | IDENT s -> Printf.sprintf "identifier %s" s
  | INLINE_HTML _ -> "inline HTML"
  | EOF -> "end of file"
  | t -> show t
