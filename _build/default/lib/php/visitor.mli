(** Generic traversals over the PHP AST.

    The detectors and the symptom collector both need to walk every
    expression and statement; these folds centralize the recursion so
    each client only writes the interesting cases. *)

(** [fold_expr f acc e] applies [f] to [e] and every sub-expression, in
    pre-order (including expressions inside closure bodies). *)
val fold_expr : ('a -> Ast.expr -> 'a) -> 'a -> Ast.expr -> 'a

(** [fold_stmts_with_expr f acc stmts] folds [f] over every expression
    reachable from [stmts], including nested functions and classes. *)
val fold_stmts_with_expr : ('a -> Ast.expr -> 'a) -> 'a -> Ast.stmt list -> 'a

val fold_stmt_with_expr : ('a -> Ast.expr -> 'a) -> 'a -> Ast.stmt -> 'a

(** [iter_exprs f prog] applies [f] to every expression in the program. *)
val iter_exprs : (Ast.expr -> unit) -> Ast.program -> unit

(** All calls to named functions in a program, with their arguments and
    locations.  Method names appear lowercased as ["name"]; static calls
    as ["class::name"]. *)
val named_calls : Ast.program -> (string * Ast.arg list * Loc.t) list

(** All top-level and nested user function definitions, including class
    methods. *)
val collect_functions : Ast.stmt list -> Ast.func list

(** Count of AST statement nodes, used as a cheap program-size proxy in
    benchmarks. *)
val stmt_count : Ast.program -> int

(** [map_expr f e] rebuilds [e] bottom-up, applying [f] to every node
    after its children have been rewritten. *)
val map_expr : (Ast.expr -> Ast.expr) -> Ast.expr -> Ast.expr

(** [map_stmts f stmts] applies {!map_expr}[ f] to every expression in
    the statements, preserving statement structure. *)
val map_stmts : (Ast.expr -> Ast.expr) -> Ast.stmt list -> Ast.stmt list

val map_stmt : (Ast.expr -> Ast.expr) -> Ast.stmt -> Ast.stmt
