lib/report/histogram.ml: Buffer List Printf String
