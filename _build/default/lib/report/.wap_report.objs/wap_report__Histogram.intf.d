lib/report/histogram.mli:
