lib/report/html.ml: Buffer List Printf String
