lib/report/html.mli:
