lib/report/json.mli:
