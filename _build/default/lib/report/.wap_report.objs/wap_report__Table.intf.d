lib/report/table.mli:
