(** Horizontal bar charts for the figures (Fig. 4, Fig. 5). *)

type series = { label : string; values : (string * int) list }

(** Render one or two series side by side as labelled bars. *)
let render ~title (series : series list) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b ("== " ^ title ^ " ==\n");
  let max_v =
    List.fold_left
      (fun m s -> List.fold_left (fun m (_, v) -> max m v) m s.values)
      1 series
  in
  let bins =
    match series with s :: _ -> List.map fst s.values | [] -> []
  in
  let bin_w =
    List.fold_left (fun w bname -> max w (String.length bname)) 4 bins
  in
  let scale = 40.0 /. float_of_int max_v in
  List.iter
    (fun bin ->
      List.iteri
        (fun i s ->
          let v = try List.assoc bin s.values with Not_found -> 0 in
          let bar_len = int_of_float (ceil (float_of_int v *. scale)) in
          let bar = String.make (max (if v > 0 then 1 else 0) bar_len) (if i = 0 then '#' else '*') in
          Buffer.add_string b
            (Printf.sprintf "%-*s %-12s |%-41s %d\n" bin_w
               (if i = 0 then bin else "")
               s.label bar v))
        series;
      Buffer.add_char b '\n')
    bins;
  let legend =
    String.concat "   "
      (List.mapi
         (fun i s -> Printf.sprintf "%c = %s" (if i = 0 then '#' else '*') s.label)
         series)
  in
  Buffer.add_string b (legend ^ "\n");
  Buffer.contents b
