(** Horizontal bar charts for the figures (Fig. 4, Fig. 5). *)

type series = { label : string; values : (string * int) list }

(** Render one or more series side by side as labelled bars; bins come
    from the first series. *)
val render : title:string -> series list -> string
