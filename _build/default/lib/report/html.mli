(** Self-contained HTML report for analysis results — the shareable
    artifact a security review hands to developers. *)

type row = {
  r_kind : [ `Vulnerability | `False_positive ];
  r_class : string;  (** e.g. ["SQLI"] *)
  r_file : string;
  r_line : int;
  r_sink : string;
  r_source : string;
  r_symptoms : string list;
  r_steps : (string * int * string) list;  (** file, line, code *)
  r_confirmation : string option;
      (** e.g. ["exploit confirmed"], when the dynamic replay ran *)
}

type t = {
  title : string;
  generated_by : string;
  rows : row list;
}

(** HTML-escape text content. *)
val escape : string -> string

(** Render a complete standalone HTML document. *)
val render : t -> string
