(** A minimal JSON emitter (no external dependency), used to export
    findings and experiment data for downstream tooling. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec write ~indent buf (v : t) (level : int) =
  let pad n = if indent then String.make (2 * n) ' ' else "" in
  let nl = if indent then "\n" else "" in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf ("[" ^ nl);
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ("," ^ nl);
          Buffer.add_string buf (pad (level + 1));
          write ~indent buf item (level + 1))
        items;
      Buffer.add_string buf (nl ^ pad level ^ "]")
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf ("{" ^ nl);
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ("," ^ nl);
          Buffer.add_string buf (pad (level + 1));
          Buffer.add_string buf ("\"" ^ escape_string k ^ "\":");
          if indent then Buffer.add_char buf ' ';
          write ~indent buf v (level + 1))
        fields;
      Buffer.add_string buf (nl ^ pad level ^ "}")

(** Serialize; [indent] pretty-prints with two-space indentation. *)
let to_string ?(indent = true) (v : t) : string =
  let buf = Buffer.create 256 in
  write ~indent buf v 0;
  Buffer.contents buf
