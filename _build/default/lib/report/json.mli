(** A minimal JSON emitter (no external dependency), used to export
    findings and experiment data for downstream tooling. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Serialize; [indent] (default true) pretty-prints with two-space
    indentation.  Strings are escaped per RFC 8259. *)
val to_string : ?indent:bool -> t -> string
