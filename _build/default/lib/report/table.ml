(** Plain-text table rendering for the experiment reports. *)

type align = L | R

type t = {
  title : string;
  header : string list;
  aligns : align list;
  rows : string list list;
}

let make ~title ~header ?aligns rows =
  let aligns =
    match aligns with
    | Some a -> a
    | None -> List.mapi (fun i _ -> if i = 0 then L else R) header
  in
  { title; header; aligns; rows }

let cell_width rows header col =
  List.fold_left
    (fun w row ->
      match List.nth_opt row col with
      | Some c -> max w (String.length c)
      | None -> w)
    (String.length (List.nth header col))
    rows

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else match align with L -> s ^ String.make n ' ' | R -> String.make n ' ' ^ s

let render (t : t) : string =
  let ncols = List.length t.header in
  let widths = List.init ncols (cell_width t.rows t.header) in
  let b = Buffer.create 1024 in
  let line ch =
    Buffer.add_string b
      (String.concat "-+-" (List.map (fun w -> String.make w ch) widths));
    Buffer.add_char b '\n'
  in
  let row cells =
    let padded =
      List.mapi
        (fun i c ->
          let w = List.nth widths i in
          let a = try List.nth t.aligns i with _ -> R in
          pad a w c)
        cells
    in
    Buffer.add_string b (String.concat " | " padded);
    Buffer.add_char b '\n'
  in
  Buffer.add_string b ("== " ^ t.title ^ " ==\n");
  row t.header;
  line '-';
  List.iter
    (fun r ->
      (* a row of all "---" cells renders as a separator *)
      if List.for_all (fun c -> c = "---") r then line '-' else row r)
    t.rows;
  Buffer.contents b

let print t = print_string (render t)

let pctf f = Printf.sprintf "%.1f%%" (100.0 *. f)
let intf n = string_of_int n
let blank_if_zero n = if n = 0 then "" else string_of_int n
