(** Plain-text table rendering for the experiment reports. *)

type align = L | R

type t = {
  title : string;
  header : string list;
  aligns : align list;
  rows : string list list;
}

(** Build a table; default alignment is first column left, rest right.
    A row whose cells are all ["---"] renders as a separator line. *)
val make :
  title:string -> header:string list -> ?aligns:align list -> string list list -> t

val render : t -> string
val print : t -> unit

(** Format a fraction as ["94.5%"]. *)
val pctf : float -> string

val intf : int -> string

(** Empty string for 0, used for the sparse table cells of the paper. *)
val blank_if_zero : int -> string
