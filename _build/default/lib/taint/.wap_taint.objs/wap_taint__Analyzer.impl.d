lib/taint/analyzer.pp.ml: Ast Buffer Env Filename Hashtbl List Loc Printer Printf String Summary Trace Visitor Wap_catalog Wap_php
