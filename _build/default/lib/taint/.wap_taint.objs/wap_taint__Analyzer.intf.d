lib/taint/analyzer.pp.mli: Ast Trace Wap_catalog Wap_php
