lib/taint/env.pp.ml: List Map Ppx_deriving_runtime String Trace
