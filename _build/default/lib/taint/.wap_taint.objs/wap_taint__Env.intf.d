lib/taint/env.pp.mli: Ppx_deriving_runtime Trace
