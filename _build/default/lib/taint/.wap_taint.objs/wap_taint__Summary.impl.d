lib/taint/summary.pp.ml: Hashtbl List Ppx_deriving_runtime String Trace Wap_php
