lib/taint/summary.pp.mli: Ppx_deriving_runtime Trace Wap_php
