lib/taint/trace.pp.ml: Ast List Loc Ppx_deriving_runtime Printf String Wap_catalog Wap_php
