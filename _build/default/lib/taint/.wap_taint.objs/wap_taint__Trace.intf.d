lib/taint/trace.pp.mli: Ast Loc Ppx_deriving_runtime Wap_catalog Wap_php
