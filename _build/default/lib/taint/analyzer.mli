(** The taint analyzer: detects candidate vulnerabilities for one
    detector specification.

    The analysis is flow-sensitive inside each scope and interprocedural
    through {!Summary} tables.  Sanitization functions of the spec kill
    taint; validation functions do {e not} — they only add guard
    evidence to the flow, exactly like the original WAP, whose
    false-positive predictor is in charge of deciding whether the
    observed validations make the candidate a false alarm. *)

open Wap_php

(** The validation functions recognized as guards (Table I's validation
    category, plus a few common membership checks). *)
val guard_fns : string list

val is_guard_fn : string -> bool

(** One parsed source file of an application. *)
type file_unit = { path : string; program : Ast.program }

(** Top-level [include]/[require] of project files (matched by base
    name, literal paths only) spliced in place, so taint set up in an
    included file flows into the includer.  Cycles and chains deeper
    than 8 are cut. *)
val splice_includes :
  units:file_unit list -> depth:int -> visited:string list ->
  Ast.program -> Ast.program

(** Raised by {!Wap_core.Tool} helpers; kept here for reuse. *)

(** Analyze a set of files as one application under a single detector
    spec.  Function summaries are shared across the whole set, which is
    how WAP sees applications spread over many included files.

    [interprocedural:false] disables the summary mechanism (function
    bodies are still scanned for local flows, but taint no longer
    crosses call boundaries) — the ablation of DESIGN.md §6. *)
val analyze_project :
  ?interprocedural:bool ->
  spec:Wap_catalog.Catalog.spec ->
  file_unit list ->
  Trace.candidate list

(** Analyze a single parsed file. *)
val analyze_program :
  spec:Wap_catalog.Catalog.spec ->
  file:string ->
  Ast.program ->
  Trace.candidate list

(** Run several detector specs over the same project and concatenate the
    findings (one run per sub-module configuration, as in Fig. 2). *)
val analyze_with_specs :
  ?interprocedural:bool ->
  specs:Wap_catalog.Catalog.spec list ->
  file_unit list ->
  Trace.candidate list
