(** Taint environments: a flow-sensitive map from variable names to
    taint values.

    Arrays and objects are tracked coarsely by their base variable, which
    matches the granularity of the original WAP analyzer: if any element
    of [$a] is tainted, [$a] is tainted. *)

type taint = Clean | Tainted of Trace.origin [@@deriving show]

let is_tainted = function Tainted _ -> true | Clean -> false

(** Join for control-flow merges: taint wins (may-analysis).  When both
    sides are tainted we keep the left origin but merge guard evidence,
    so a guard present on only one path does not count. *)
let join a b =
  match (a, b) with
  | Clean, Clean -> Clean
  | Tainted o, Clean | Clean, Tainted o -> Tainted o
  | Tainted o1, Tainted o2 ->
      let guards = List.filter (fun g -> List.mem g o2.Trace.guards) o1.Trace.guards in
      Tainted { o1 with Trace.guards = guards }

(** Join used when combining operands of one expression (concatenation,
    arithmetic): evidence from both operands accumulates. *)
let join_operands a b =
  match (a, b) with
  | Clean, t | t, Clean -> t
  | Tainted o1, Tainted o2 ->
      let add l x = if List.mem x l then l else x :: l in
      Tainted
        {
          o1 with
          Trace.through = List.fold_left add o1.Trace.through o2.Trace.through;
          Trace.guards = List.fold_left add o1.Trace.guards o2.Trace.guards;
        }

module M = Map.Make (String)

type t = taint M.t

let empty : t = M.empty
let get env v = match M.find_opt v env with Some t -> t | None -> Clean
let set env v t : t = M.add v t env
let remove env v : t = M.remove v env

(** Pointwise join of two environments (after an if/else, loop, ...). *)
let merge (a : t) (b : t) : t =
  M.merge
    (fun _ ta tb ->
      match (ta, tb) with
      | Some ta, Some tb -> Some (join ta tb)
      | Some t, None | None, Some t -> Some t
      | None, None -> None)
    a b

let equal_shallow (a : t) (b : t) =
  (* cheap stabilization test for loop fixpoints: same tainted key set *)
  let keys m = M.fold (fun k v acc -> if is_tainted v then k :: acc else acc) m [] in
  keys a = keys b

(** Apply [f] to the origin of every tainted variable named in [vars]. *)
let update_vars env vars f : t =
  List.fold_left
    (fun env v ->
      match M.find_opt v env with
      | Some (Tainted o) -> M.add v (Tainted (f o)) env
      | _ -> env)
    env vars
