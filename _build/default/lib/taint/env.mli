(** Taint environments: a flow-sensitive map from variable names to
    taint values.

    Arrays and objects are tracked coarsely by their base variable,
    matching the granularity of the original WAP analyzer: if any
    element of [$a] is tainted, [$a] is tainted. *)

type taint = Clean | Tainted of Trace.origin [@@deriving show]

val is_tainted : taint -> bool

(** Join for control-flow merges: taint wins (may-analysis); guards
    present on only one path are dropped. *)
val join : taint -> taint -> taint

(** Join used when combining operands of one expression (concatenation,
    arithmetic): evidence from both operands accumulates. *)
val join_operands : taint -> taint -> taint

type t

val empty : t
val get : t -> string -> taint
val set : t -> string -> taint -> t
val remove : t -> string -> t

(** Pointwise join of two environments (after an if/else, loop, ...). *)
val merge : t -> t -> t

(** Cheap stabilization test for loop fixpoints: same tainted key set. *)
val equal_shallow : t -> t -> bool

(** Apply [f] to the origin of every tainted variable named in the
    list. *)
val update_vars : t -> string list -> (Trace.origin -> Trace.origin) -> t
