(** Interprocedural function summaries.

    For each user-defined function the analyzer records, per parameter:
    whether tainted data entering through it reaches the return value
    (and through which manipulation functions), and which sensitive
    sinks inside the body it can reach.  A parameter whose flow is
    killed by a sanitizer simply does not appear — so a user wrapper
    around [mysql_real_escape_string] is automatically treated as a
    sanitizer at call sites. *)

type param_flow = {
  pf_index : int;
  pf_through : string list;  (** manipulation functions on the way to return *)
  pf_guards : string list;  (** validation guards observed on the way *)
}
[@@deriving show]

type param_sink = {
  ps_index : int;
  ps_sink_name : string;
  ps_sink_loc : Wap_php.Loc.t;
  ps_through : string list;
}
[@@deriving show]

type t = {
  fn_name : string;  (** lowercase *)
  arity : int;
  returns_params : param_flow list;  (** params that flow to the return value *)
  param_sinks : param_sink list;  (** params that reach a sink inside *)
  returns_tainted : Trace.origin option;
      (** the function returns attacker data of its own (e.g. reads a
          superglobal and returns it) *)
}
[@@deriving show]

let empty fn_name arity =
  { fn_name; arity; returns_params = []; param_sinks = []; returns_tainted = None }

let find_param_flow t i = List.find_opt (fun pf -> pf.pf_index = i) t.returns_params

(** Summaries table keyed by lowercase function name.  Methods are
    registered under their bare method name. *)
type table = (string, t) Hashtbl.t

let create_table () : table = Hashtbl.create 64
let find (tbl : table) name = Hashtbl.find_opt tbl (String.lowercase_ascii name)
let register (tbl : table) (s : t) = Hashtbl.replace tbl s.fn_name s
