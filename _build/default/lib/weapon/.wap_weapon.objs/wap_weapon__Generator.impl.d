lib/weapon/generator.pp.ml: List Printf String Wap_catalog Wap_fixer Wap_mining Weapon
