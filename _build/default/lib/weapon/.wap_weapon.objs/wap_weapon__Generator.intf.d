lib/weapon/generator.pp.mli: Wap_catalog Wap_mining Weapon
