lib/weapon/registry.pp.ml: Generator Hashtbl List String Wap_catalog Wap_mining Weapon
