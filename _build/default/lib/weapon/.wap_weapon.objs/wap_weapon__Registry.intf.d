lib/weapon/registry.pp.mli: Wap_catalog Wap_mining Weapon
