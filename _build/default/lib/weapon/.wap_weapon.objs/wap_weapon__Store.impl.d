lib/weapon/store.pp.ml: Buffer Char Filename List Printf String Sys Wap_catalog Wap_fixer Wap_mining Weapon
