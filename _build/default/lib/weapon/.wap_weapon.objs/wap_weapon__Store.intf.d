lib/weapon/store.pp.mli: Weapon
