lib/weapon/weapon.pp.ml: List Printf Wap_catalog Wap_fixer Wap_mining
