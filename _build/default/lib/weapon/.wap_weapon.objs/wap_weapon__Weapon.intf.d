lib/weapon/weapon.pp.mli: Wap_catalog Wap_fixer Wap_mining
