(** The weapon generator (Section III-D).

    Takes the data a user supplies — sensitive sinks, sanitization
    functions, optional extra entry points, a fix-template choice, and
    optional dynamic symptoms — and assembles a ready-to-activate
    {!Weapon.t}.  No programming involved: this is exactly the
    configuration surface the paper describes. *)

module Cat = Wap_catalog.Catalog

(** What the user provides for the fix part, mirroring the three fix
    templates of Section III-C. *)
type fix_request =
  | With_php_sanitizer of string
      (** the PHP sanitization function to apply at the sink *)
  | With_user_sanitization of { malicious : char list; neutralizer : string }
  | With_user_validation of { malicious : char list }

type request = {
  req_name : string;  (** weapon name; flag becomes ["-<name>"] *)
  req_vclass : Wap_catalog.Vuln_class.t option;
      (** the class the weapon detects; [None] creates a fresh
          [Custom req_name] class *)
  req_sources : Cat.source list;  (** extra entry points ([] = superglobals only) *)
  req_sinks : Cat.sink list;
  req_sanitizers : Cat.sanitizer list;
  req_fix : fix_request;
  req_dynamic_symptoms : Wap_mining.Symptom.dynamic_map;
}

exception Invalid_request of string

let validate (r : request) =
  if r.req_name = "" then raise (Invalid_request "weapon name must not be empty");
  if String.exists (fun c -> c = ' ' || c = '/') r.req_name then
    raise (Invalid_request "weapon name must not contain spaces or slashes");
  if r.req_sinks = [] then
    raise (Invalid_request "a weapon needs at least one sensitive sink");
  List.iter
    (fun (fn, mapped) ->
      if not (Wap_mining.Symptom.is_symptom mapped
              || mapped = "user_white_list" || mapped = "user_black_list") then
        raise
          (Invalid_request
             (Printf.sprintf
                "dynamic symptom %s maps to unknown static symptom %s" fn mapped)))
    r.req_dynamic_symptoms

(** Generate a weapon from a request. *)
let generate (r : request) : Weapon.t =
  validate r;
  let vclass =
    match r.req_vclass with
    | Some c -> c
    | None -> Wap_catalog.Vuln_class.Custom r.req_name
  in
  let spec =
    {
      Cat.vclass;
      submodule = Wap_catalog.Submodule.Generated r.req_name;
      sources = Cat.default_sources @ r.req_sources;
      sinks = r.req_sinks;
      (* the weapon's own fix counts as a sanitizer so corrected code is
         not re-flagged *)
      sanitizers = Cat.San_fn ("san_" ^ r.req_name) :: r.req_sanitizers;
    }
  in
  let template =
    match r.req_fix with
    | With_php_sanitizer sanitizer -> Wap_fixer.Fix.Php_sanitization { sanitizer }
    | With_user_sanitization { malicious; neutralizer } ->
        Wap_fixer.Fix.User_sanitization { malicious; neutralizer }
    | With_user_validation { malicious } -> Wap_fixer.Fix.User_validation { malicious }
  in
  {
    Weapon.name = r.req_name;
    flag = "-" ^ r.req_name;
    vclass;
    spec;
    fix = { Wap_fixer.Fix.fix_name = "san_" ^ r.req_name; vclass; template };
    dynamic_symptoms = r.req_dynamic_symptoms;
  }

(* ------------------------------------------------------------------ *)
(* The three weapons built in Section IV-C, expressed as requests to    *)
(* this generator.                                                      *)

(** NoSQL injection for MongoDB (activated by [-nosqli]). *)
let nosqli_request : request =
  {
    req_name = "nosqli";
    req_vclass = Some Wap_catalog.Vuln_class.Nosqli;
    req_sources = [];
    req_sinks =
      [ Cat.Sink_method ("collection", "find"); Cat.Sink_method ("collection", "findOne");
        Cat.Sink_method ("collection", "findAndModify");
        Cat.Sink_method ("collection", "insert"); Cat.Sink_method ("collection", "remove");
        Cat.Sink_method ("collection", "save"); Cat.Sink_method ("db", "execute") ];
    req_sanitizers = [ Cat.San_fn "mysql_real_escape_string" ];
    req_fix = With_php_sanitizer "mysql_real_escape_string";
    req_dynamic_symptoms = [];
  }

(** Header injection and email injection (activated by [-hei]). *)
let hei_request : request =
  {
    req_name = "hei";
    req_vclass = Some Wap_catalog.Vuln_class.Hi;
    req_sources = [];
    req_sinks = [ Cat.Sink_fn ("header", []); Cat.Sink_fn ("mail", []) ];
    req_sanitizers = [];
    req_fix = With_user_sanitization { malicious = [ '\r'; '\n' ]; neutralizer = " " };
    req_dynamic_symptoms = [];
  }

(** SQLI through WordPress [$wpdb] (activated by [-wpsqli]). *)
let wpsqli_request : request =
  {
    req_name = "wpsqli";
    req_vclass = Some Wap_catalog.Vuln_class.Wp_sqli;
    req_sources = Wap_catalog.Wordpress.extra_sources;
    req_sinks =
      [ Cat.Sink_method ("wpdb", "query"); Cat.Sink_method ("wpdb", "get_results");
        Cat.Sink_method ("wpdb", "get_row"); Cat.Sink_method ("wpdb", "get_var");
        Cat.Sink_method ("wpdb", "get_col") ];
    req_sanitizers =
      [ Cat.San_method ("wpdb", "prepare"); Cat.San_fn "esc_sql"; Cat.San_fn "like_escape" ];
    req_fix = With_php_sanitizer "esc_sql";
    req_dynamic_symptoms = Wap_catalog.Wordpress.dynamic_symptoms;
  }

let nosqli () = generate nosqli_request
let hei () = generate hei_request
let wpsqli () = generate wpsqli_request
