(** The weapon generator (Section III-D).

    Takes the data a user supplies — sensitive sinks, sanitization
    functions, optional extra entry points, a fix-template choice, and
    optional dynamic symptoms — and assembles a ready-to-activate
    {!Weapon.t}.  No programming involved: this is exactly the
    configuration surface the paper describes. *)

(** What the user provides for the fix part, mirroring the three fix
    templates of Section III-C. *)
type fix_request =
  | With_php_sanitizer of string
      (** the PHP sanitization function to apply at the sink *)
  | With_user_sanitization of { malicious : char list; neutralizer : string }
  | With_user_validation of { malicious : char list }

type request = {
  req_name : string;  (** weapon name; flag becomes ["-<name>"] *)
  req_vclass : Wap_catalog.Vuln_class.t option;
      (** the class the weapon detects; [None] creates a fresh
          [Custom req_name] class *)
  req_sources : Wap_catalog.Catalog.source list;
      (** extra entry points ([[]] = superglobals only) *)
  req_sinks : Wap_catalog.Catalog.sink list;
  req_sanitizers : Wap_catalog.Catalog.sanitizer list;
  req_fix : fix_request;
  req_dynamic_symptoms : Wap_mining.Symptom.dynamic_map;
}

exception Invalid_request of string

(** Generate a weapon.

    @raise Invalid_request for empty/ill-formed names, empty sink sets,
    or dynamic symptoms mapping to unknown static symptoms. *)
val generate : request -> Weapon.t

(** The three weapons built in Section IV-C, as generator requests. *)

val nosqli_request : request
val hei_request : request
val wpsqli_request : request

val nosqli : unit -> Weapon.t
val hei : unit -> Weapon.t
val wpsqli : unit -> Weapon.t
