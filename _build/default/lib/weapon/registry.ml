(** The weapon registry: flags -> weapons.

    WAP links generated weapons into the tool and activates each with a
    command-line flag; this registry is that linking step. *)

type t = (string, Weapon.t) Hashtbl.t

let create () : t = Hashtbl.create 8

let register (t : t) (w : Weapon.t) =
  Hashtbl.replace t w.Weapon.flag w

let find_flag (t : t) flag = Hashtbl.find_opt t flag

let all (t : t) : Weapon.t list =
  Hashtbl.fold (fun _ w acc -> w :: acc) t []
  |> List.sort (fun a b -> String.compare a.Weapon.name b.Weapon.name)

(** A registry preloaded with the paper's three weapons. *)
let builtin () : t =
  let t = create () in
  register t (Generator.nosqli ());
  register t (Generator.hei ());
  register t (Generator.wpsqli ());
  t

(** The detector specs of the active weapons. *)
let active_specs (t : t) (flags : string list) : Wap_catalog.Catalog.spec list =
  List.filter_map (find_flag t) flags
  |> List.map (fun w -> w.Weapon.spec)

(** The dynamic symptoms contributed by the active weapons. *)
let active_symptoms (t : t) (flags : string list) : Wap_mining.Symptom.dynamic_map =
  List.concat_map
    (fun flag ->
      match find_flag t flag with
      | Some w -> w.Weapon.dynamic_symptoms
      | None -> [])
    flags
