(** The weapon registry: activation flags -> weapons.

    WAP links generated weapons into the tool and activates each with a
    command-line flag; this registry is that linking step. *)

type t

val create : unit -> t
val register : t -> Weapon.t -> unit
val find_flag : t -> string -> Weapon.t option

(** All registered weapons, sorted by name. *)
val all : t -> Weapon.t list

(** A registry preloaded with the paper's three weapons
    ([-nosqli], [-hei], [-wpsqli]). *)
val builtin : unit -> t

(** The detector specs of the weapons matching the given flags. *)
val active_specs : t -> string list -> Wap_catalog.Catalog.spec list

(** The dynamic symptoms contributed by the weapons matching the given
    flags. *)
val active_symptoms : t -> string list -> Wap_mining.Symptom.dynamic_map
