(** Weapon persistence.

    A weapon is stored as a directory:
    {v
    <dir>/<name>/
      meta.spec         class: <acronym>
      detector.spec     ep/ss/san lines (Spec_file format)
      fix.spec          fix template configuration
      symptoms.spec     dynamic symptoms, "user_fn -> static_symptom"
    v}

    This mirrors the paper's design where the generated detector reads
    its ep/ss/san sets from files, so users can edit a weapon without
    touching the tool. *)

(** Malformed weapon files. *)
exception Corrupt of string

(** Save a weapon under [dir/<name>/] (the directory is created). *)
val save : dir:string -> Weapon.t -> unit

(** Load a weapon from [dir/<name>/].

    @raise Corrupt on malformed files;
    @raise Sys_error when files are missing. *)
val load : dir:string -> name:string -> Weapon.t
