(** Weapons: WAP extensions for new vulnerability classes
    (Section III-D).

    A weapon bundles the three artifacts the weapon generator produces
    from user-supplied data: a detector (an ep/ss/san specification fed
    to the generic detector sub-module), a fix (instantiated from one of
    the fix templates), and an optional set of dynamic symptoms for the
    false-positive predictor.  It is activated on the command line by
    its flag, e.g. [-nosqli]. *)

type t = {
  name : string;  (** short name, e.g. ["nosqli"] *)
  flag : string;  (** activation flag, e.g. ["-nosqli"] *)
  vclass : Wap_catalog.Vuln_class.t;
  spec : Wap_catalog.Catalog.spec;  (** the detector *)
  fix : Wap_fixer.Fix.t;
  dynamic_symptoms : Wap_mining.Symptom.dynamic_map;
}

let detector w = w.spec
let fix w = w.fix

let describe w =
  Printf.sprintf "weapon %s (%s): detects %s, fix %s, %d dynamic symptom(s)"
    w.name w.flag
    (Wap_catalog.Vuln_class.description w.vclass)
    w.fix.Wap_fixer.Fix.fix_name
    (List.length w.dynamic_symptoms)
