test/fixtures.ml:
