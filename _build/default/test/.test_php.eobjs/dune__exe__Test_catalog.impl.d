test/test_catalog.ml: Alcotest Gen List QCheck QCheck_alcotest String Wap_catalog Wap_mining
