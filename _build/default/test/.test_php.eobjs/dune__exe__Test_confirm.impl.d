test/test_confirm.ml: Alcotest List QCheck QCheck_alcotest String Wap_catalog Wap_confirm Wap_corpus Wap_php Wap_taint
