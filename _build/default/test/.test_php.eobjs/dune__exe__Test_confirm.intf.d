test/test_confirm.mli:
