test/test_core.ml: Alcotest Array Lazy List String Wap_catalog Wap_core Wap_corpus Wap_fixer Wap_mining Wap_weapon
