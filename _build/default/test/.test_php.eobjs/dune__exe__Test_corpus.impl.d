test/test_corpus.ml: Alcotest Array List Option QCheck QCheck_alcotest String Wap_catalog Wap_corpus Wap_php
