test/test_fixer.ml: Alcotest List QCheck QCheck_alcotest String Wap_catalog Wap_corpus Wap_fixer Wap_php Wap_taint
