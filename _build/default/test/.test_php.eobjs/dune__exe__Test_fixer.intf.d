test/test_fixer.mli:
