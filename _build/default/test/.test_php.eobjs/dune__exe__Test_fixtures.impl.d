test/test_fixtures.ml: Alcotest Fixtures Lazy List Wap_catalog Wap_confirm Wap_core Wap_corpus Wap_fixer Wap_php Wap_taint Wap_weapon
