test/test_fixtures.mli:
