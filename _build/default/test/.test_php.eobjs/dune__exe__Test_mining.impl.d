test/test_mining.ml: Alcotest Array Gen List QCheck QCheck_alcotest Wap_catalog Wap_core Wap_mining Wap_php Wap_taint
