test/test_php.ml: Alcotest Ast Gen Lexer List Loc Parser Printer Printf QCheck QCheck_alcotest String Token Visitor Wap_catalog Wap_corpus Wap_php
