test/test_php.mli:
