test/test_report.ml: Alcotest Gen List QCheck QCheck_alcotest String Wap_core Wap_report
