test/test_taint.ml: Alcotest List QCheck QCheck_alcotest Wap_catalog Wap_corpus Wap_mining Wap_php Wap_taint
