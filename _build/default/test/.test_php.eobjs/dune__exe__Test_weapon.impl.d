test/test_weapon.ml: Alcotest Filename List Sys Wap_catalog Wap_fixer Wap_php Wap_taint Wap_weapon
