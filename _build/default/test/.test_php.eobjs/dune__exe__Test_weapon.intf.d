test/test_weapon.mli:
