(** Handwritten fixture applications: small but realistic multi-file
    PHP programs with known vulnerabilities, used as golden integration
    tests.  Unlike the generated corpus these mix inline HTML,
    alternative syntax, classes, includes and both safe and unsafe
    idioms the way real code does. *)

(* --------------------------------------------------------------- *)
(* Fixture 1: "nightingale", a small blog.                          *)
(* --------------------------------------------------------------- *)

let blog_config_php =
  {php|<?php
// nightingale configuration
$db_host = 'localhost';
$db_name = 'nightingale';
// the visitor-selected theme travels through the config into pages
$site_theme = $_COOKIE['theme'];
$posts_per_page = 10;
function db_connect($host) {
    return mysql_connect($host);
}
|php}

let blog_lib_php =
  {php|<?php
// nightingale helpers
function clean_html($value) {
    return htmlspecialchars($value);
}
function q($sql) {
    return mysql_query($sql);
}
function post_link($id, $title) {
    return '<a href="post.php?id=' . $id . '">' . clean_html($title) . '</a>';
}
|php}

let blog_index_php =
  {php|<html><head><title>nightingale</title></head>
<?php
include 'config.php';
include 'lib.php';
// VULN (XSS): the theme flows from config.php into the page
echo "<body class='$site_theme'>";
$page = isset($_GET['page']) ? $_GET['page'] : 1;
if (!is_numeric($page)) {
    die('bad page number');
}
$page = intval($page);
// FP (SQLI): $page is validated and coerced above
$res = q('SELECT id, title FROM posts WHERE visible = 1 LIMIT ' . $page);
while ($row = mysql_fetch_assoc($res)): ?>
  <li><?= post_link($row['id'], $row['title']) ?></li>
<?php endwhile; ?>
<?php
// VULN (XSS): search terms echoed raw
if (isset($_GET['q'])) {
    echo '<p>results for ' . $_GET['q'] . '</p>';
}
?>
</body></html>
|php}

let blog_post_php =
  {php|<?php
include 'lib.php';
// VULN (SQLI): id goes into the query unsanitized
$id = $_GET['id'];
$res = q("SELECT * FROM posts WHERE id = '$id'");
$post = mysql_fetch_assoc($res);
echo '<h1>' . clean_html($post['title']) . '</h1>';
// VULN (HI): untrusted redirect target
if (isset($_GET['back'])) {
    header('Location: ' . $_GET['back']);
}
|php}

let blog_comment_php =
  {php|<?php
include 'lib.php';
$author = trim($_POST['author']);
if (!preg_match('/^[a-zA-Z ]{1,40}$/', $author)) {
    die('bad author name');
}
// FP (SQLI): author passed the whitelist
q("INSERT INTO comments (author) VALUES ('$author')");
// VULN (CS): raw comment body appended to the moderation queue
file_put_contents('queue.txt', $_POST['body'], FILE_APPEND);
|php}

let blog =
  [ ("config.php", blog_config_php); ("lib.php", blog_lib_php);
    ("index.php", blog_index_php); ("post.php", blog_post_php);
    ("comment.php", blog_comment_php) ]

(* Expected real findings after FP triage: (report group, file of the
   sensitive sink).  The SQLI sinks sit inside the q() helper of
   lib.php, so that is where they are reported; the three XSS findings
   on index.php are the theme (arriving through the config include),
   the raw search-term echo, and the stored flavour — the id of a
   fetched row reaching echo through post_link() unescaped. *)
let blog_expected_vulns =
  [ ("XSS", "index.php"); ("XSS", "index.php"); ("XSS", "index.php");
    ("SQLI", "lib.php"); ("HI", "post.php"); ("CS", "comment.php") ]

let blog_expected_fps = [ ("SQLI", "lib.php"); ("SQLI", "lib.php") ]

(* --------------------------------------------------------------- *)
(* Fixture 2: "tinystore", a small shop with classes.               *)
(* --------------------------------------------------------------- *)

let store_cart_php =
  {php|<?php
class Cart {
    public $items = array();
    public function add($sku, $qty) {
        $this->items[$sku] = $qty;
    }
    public function receipt_row($sku) {
        // VULN (XSS) when called with raw input: sku echoed by render()
        return '<td>' . $sku . '</td>';
    }
}
function render($html) {
    echo $html;
}
|php}

let store_checkout_php =
  {php|<?php
include 'cart.php';
$cart = new Cart();
render($cart->receipt_row($_GET['sku']));
// VULN (EI): attacker-controlled recipient allows header smuggling
mail($_POST['email'], 'Your order', 'Thank you!');
// VULN (OSCI): filename reaches the shell
$invoice = $_GET['invoice'];
system("lp -d office printer_$invoice");
|php}

let store_admin_php =
  {php|<?php
$action = $_GET['action'];
if (!in_array($action, array('rebuild', 'flush', 'report'))) {
    exit('unknown action');
}
// FP (PHPCI): action comes from the closed whitelist above
eval('admin_' . $action . '();');
// VULN (Files): template name concatenated into a require
require './templates/' . $_GET['template'];
|php}

let store_download_php =
  {php|<?php
// safe: basename() strips traversal — must not be reported at all
$name = basename($_GET['file']);
readfile('./exports/' . $name);
// VULN (Files): this one forgot the basename
readfile('./exports/' . $_GET['raw']);
|php}

let store =
  [ ("cart.php", store_cart_php); ("checkout.php", store_checkout_php);
    ("admin.php", store_admin_php); ("download.php", store_download_php) ]

let store_expected_vulns =
  [ ("XSS", "cart.php"); ("EI", "checkout.php"); ("OSCI", "checkout.php");
    ("Files", "admin.php"); ("Files", "download.php") ]

let store_expected_fps = [ ("PHPCI", "admin.php") ]

(* --------------------------------------------------------------- *)
(* Fixture 3: "metrics", a WordPress plugin.                        *)
(* --------------------------------------------------------------- *)

let wp_plugin_php =
  {php|<?php
/*
 * Plugin Name: Tiny Metrics
 */
function tm_track() {
    global $wpdb;
    // VULN (SQLI via $wpdb): raw request value in the query
    $ref = $_SERVER['HTTP_REFERER'];
    $wpdb->query("INSERT INTO {$wpdb->prefix}hits (ref) VALUES ('$ref')");
}
function tm_top_pages() {
    global $wpdb;
    // safe: prepared statement
    $n = $_GET['n'];
    return $wpdb->get_results($wpdb->prepare('SELECT * FROM wp_hits LIMIT %d', $n));
}
function tm_widget() {
    global $wpdb;
    // FP (SQLI): absint() is a WordPress validator (dynamic symptom)
    $days = absint($_GET['days']);
    $wpdb->get_var("SELECT COUNT(*) FROM wp_hits WHERE age < $days");
}
|php}

let wp_plugin = [ ("tiny-metrics.php", wp_plugin_php) ]

let wp_expected_vulns = [ ("SQLI", "tiny-metrics.php") ]
let wp_expected_fps = [ ("SQLI", "tiny-metrics.php") ]
