(** Tests for the vulnerability-class catalog, spec files and lookups. *)

module VC = Wap_catalog.Vuln_class
module Cat = Wap_catalog.Catalog
module SF = Wap_catalog.Spec_file
module Sub = Wap_catalog.Submodule

let test_class_counts () =
  (* 9 detectors for the original tool (the paper counts reflected and
     stored XSS as one class: "eight classes"), 16 for WAPe *)
  Alcotest.(check int) "v2.1 detectors" 9 (List.length VC.wap_v21);
  Alcotest.(check int) "WAPe detectors" 16 (List.length VC.wape);
  Alcotest.(check int) "new classes" 7 (List.length VC.new_in_wape);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (VC.acronym c ^ " is new")
        false (List.mem c VC.wap_v21))
    VC.new_in_wape

let test_acronyms_unique () =
  let acronyms = List.map VC.acronym VC.all_builtin in
  let uniq = List.sort_uniq String.compare acronyms in
  Alcotest.(check int) "unique acronyms" (List.length acronyms) (List.length uniq)

let test_of_acronym () =
  Alcotest.(check bool) "sqli" true (VC.of_acronym "SQLI" = Some VC.Sqli);
  Alcotest.(check bool) "case-insensitive" true (VC.of_acronym "nosqli" = Some VC.Nosqli);
  Alcotest.(check bool) "unknown" true (VC.of_acronym "nope" = None)

let test_report_groups () =
  Alcotest.(check string) "rfi" "Files" (VC.report_group VC.Rfi);
  Alcotest.(check string) "lfi" "Files" (VC.report_group VC.Lfi);
  Alcotest.(check string) "dt" "Files" (VC.report_group VC.Dt_pt);
  Alcotest.(check string) "xss merged" "XSS" (VC.report_group VC.Xss_stored);
  Alcotest.(check string) "wp sqli counts as SQLI" "SQLI" (VC.report_group VC.Wp_sqli);
  Alcotest.(check string) "hi" "HI" (VC.report_group VC.Hi)

let test_submodule_assignment () =
  (* Table IV: SF -> RCE & file; CS -> client-side; LDAPI, XPathI -> query *)
  Alcotest.(check bool) "sf" true (Sub.of_class VC.Sf = Sub.Rce_file);
  Alcotest.(check bool) "cs" true (Sub.of_class VC.Cs = Sub.Client_side);
  Alcotest.(check bool) "ldapi" true (Sub.of_class VC.Ldapi = Sub.Query);
  Alcotest.(check bool) "xpathi" true (Sub.of_class VC.Xpathi = Sub.Query);
  (* every class of a static sub-module maps back to it *)
  List.iter
    (fun sm ->
      List.iter
        (fun c ->
          Alcotest.(check bool) (VC.acronym c) true (Sub.equal (Sub.of_class c) sm))
        (Sub.classes_of sm))
    Sub.all_static

let test_specs_have_sinks () =
  List.iter
    (fun c ->
      let spec = Cat.default_spec c in
      Alcotest.(check bool) (VC.acronym c ^ " has sinks") true (spec.Cat.sinks <> []);
      Alcotest.(check bool)
        (VC.acronym c ^ " has sources")
        true
        (spec.Cat.sources <> []))
    VC.all_builtin

let test_table4_sinks () =
  (* the sinks named in Table IV are present *)
  let has_sink c name =
    let spec = Cat.default_spec c in
    List.exists
      (function Cat.Sink_fn (f, _) -> f = name | _ -> false)
      spec.Cat.sinks
  in
  List.iter
    (fun (c, s) -> Alcotest.(check bool) s true (has_sink c s))
    [ (VC.Sf, "setcookie"); (VC.Sf, "setrawcookie"); (VC.Sf, "session_id");
      (VC.Cs, "file_put_contents"); (VC.Cs, "file_get_contents");
      (VC.Ldapi, "ldap_add"); (VC.Ldapi, "ldap_delete"); (VC.Ldapi, "ldap_list");
      (VC.Ldapi, "ldap_read"); (VC.Ldapi, "ldap_search");
      (VC.Xpathi, "xpath_eval"); (VC.Xpathi, "xptr_eval");
      (VC.Xpathi, "xpath_eval_expression");
      (VC.Hi, "header"); (VC.Ei, "mail") ]

let test_nosqli_spec () =
  (* Section IV-C1: Mongo sinks + mysql_real_escape_string sanitizer *)
  let spec = Cat.default_spec VC.Nosqli in
  let has_method m =
    List.exists
      (function Cat.Sink_method (_, m') -> String.lowercase_ascii m' = m | _ -> false)
      spec.Cat.sinks
  in
  List.iter
    (fun m -> Alcotest.(check bool) m true (has_method m))
    [ "find"; "findone"; "findandmodify"; "insert"; "remove"; "save"; "execute" ];
  Alcotest.(check bool) "sanitizer" true
    (List.mem (Cat.San_fn "mysql_real_escape_string") spec.Cat.sanitizers)

let test_lookup () =
  let lookup = Cat.Lookup.of_specs [ Cat.default_spec VC.Sqli ] in
  Alcotest.(check bool) "superglobal" true (Cat.Lookup.is_superglobal lookup "_GET");
  Alcotest.(check bool) "not a superglobal" false (Cat.Lookup.is_superglobal lookup "data");
  Alcotest.(check bool) "sink" true
    (Cat.Lookup.sink_classes_of_fn lookup "mysql_query" <> []);
  Alcotest.(check bool) "sink case-insensitive" true
    (Cat.Lookup.sink_classes_of_fn lookup "MYSQL_QUERY" <> []);
  Alcotest.(check bool) "sanitizer" true
    (Cat.Lookup.is_sanitizer_fn lookup "mysql_real_escape_string");
  Alcotest.(check bool) "not sanitizer" false (Cat.Lookup.is_sanitizer_fn lookup "trim")

let test_wpdb_lookup () =
  let lookup = Cat.Lookup.of_specs [ Cat.default_spec VC.Wp_sqli ] in
  Alcotest.(check bool) "wpdb->query sink" true
    (Cat.Lookup.sink_class_of_method lookup "wpdb" "query" <> []);
  Alcotest.(check bool) "wpdb->prepare sanitizer" true
    (Cat.Lookup.is_sanitizer_method lookup "wpdb" "prepare")

(* ------------------------------------------------------------------ *)
(* Spec files.                                                         *)

let test_spec_file_round_trip () =
  List.iter
    (fun c ->
      let spec = Cat.default_spec c in
      let text = SF.to_string spec in
      let back = SF.spec_of_string ~vclass:c text in
      Alcotest.(check bool)
        (VC.acronym c ^ " sinks round-trip")
        true
        (back.Cat.sinks = spec.Cat.sinks);
      Alcotest.(check bool)
        (VC.acronym c ^ " sanitizers round-trip")
        true
        (back.Cat.sanitizers = spec.Cat.sanitizers);
      Alcotest.(check bool)
        (VC.acronym c ^ " sources round-trip")
        true
        (back.Cat.sources = spec.Cat.sources))
    VC.all_builtin

let test_spec_file_parse () =
  let src, sinks, sans =
    SF.parse
      "# comment\n\
       entry: _GET\n\
       entry_fn: my_source\n\
       sink: mysql_query\n\
       sink: mysqli_query args=1,2\n\
       sink_method: wpdb query\n\
       sink_echo:\n\
       sink_include:\n\
       sanitizer: esc_sql\n\
       sanitizer_method: wpdb prepare\n"
  in
  Alcotest.(check int) "sources" 2 (List.length src);
  Alcotest.(check int) "sinks" 5 (List.length sinks);
  Alcotest.(check int) "sanitizers" 2 (List.length sans);
  Alcotest.(check bool) "args parsed" true
    (List.mem (Cat.Sink_fn ("mysqli_query", [ 1; 2 ])) sinks)

let test_spec_file_errors () =
  let bad line =
    try
      ignore (SF.parse line);
      false
    with SF.Parse_error _ -> true
  in
  Alcotest.(check bool) "no colon" true (bad "just words\n");
  Alcotest.(check bool) "bad kind" true (bad "sinkz: foo\n");
  Alcotest.(check bool) "bad args" true (bad "sink: f argz=1\n")

let test_wordpress_dynamic_symptoms_valid () =
  List.iter
    (fun (fn, static) ->
      let ok =
        Wap_mining.Symptom.is_symptom static
        || static = "user_white_list" || static = "user_black_list"
      in
      Alcotest.(check bool) (fn ^ " -> " ^ static) true ok)
    Wap_catalog.Wordpress.dynamic_symptoms

let qcheck_spec_file_round_trip =
  QCheck.Test.make ~name:"spec file round trips arbitrary identifiers" ~count:100
    QCheck.(pair (string_gen_of_size (Gen.int_range 1 12) (Gen.char_range 'a' 'z'))
              (string_gen_of_size (Gen.int_range 1 12) (Gen.char_range 'a' 'z')))
    (fun (f1, f2) ->
      let spec =
        { Cat.vclass = VC.Custom "q"; submodule = Sub.Generated "q";
          sources = [ Cat.Src_fn f1 ];
          sinks = [ Cat.Sink_fn (f2, [ 0 ]); Cat.Sink_method (f1, f2) ];
          sanitizers = [ Cat.San_fn f1 ] }
      in
      let back = SF.spec_of_string ~vclass:(VC.Custom "q") (SF.to_string spec) in
      back.Cat.sinks = spec.Cat.sinks && back.Cat.sanitizers = spec.Cat.sanitizers)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wap_catalog"
    [
      ( "classes",
        [
          Alcotest.test_case "class counts" `Quick test_class_counts;
          Alcotest.test_case "acronyms unique" `Quick test_acronyms_unique;
          Alcotest.test_case "of_acronym" `Quick test_of_acronym;
          Alcotest.test_case "report groups" `Quick test_report_groups;
          Alcotest.test_case "submodule assignment (Table IV)" `Quick
            test_submodule_assignment;
        ] );
      ( "specs",
        [
          Alcotest.test_case "all specs have sinks" `Quick test_specs_have_sinks;
          Alcotest.test_case "Table IV sinks present" `Quick test_table4_sinks;
          Alcotest.test_case "NoSQLI weapon spec" `Quick test_nosqli_spec;
          Alcotest.test_case "lookup" `Quick test_lookup;
          Alcotest.test_case "wpdb lookup" `Quick test_wpdb_lookup;
        ] );
      ( "spec files",
        [
          Alcotest.test_case "default specs round-trip" `Quick test_spec_file_round_trip;
          Alcotest.test_case "parse all line kinds" `Quick test_spec_file_parse;
          Alcotest.test_case "parse errors" `Quick test_spec_file_errors;
          Alcotest.test_case "wordpress dynamic symptoms valid" `Quick
            test_wordpress_dynamic_symptoms_valid;
          qt qcheck_spec_file_round_trip;
        ] );
    ]
