(** Tests for the dynamic confirmation engine: values, the micro-regex
    engine, the bounded evaluator, and end-to-end confirmation. *)

module V = Wap_confirm.Value
module R = Wap_confirm.Regex
module E = Wap_confirm.Evaluator
module C = Wap_confirm.Confirm
module VC = Wap_catalog.Vuln_class

(* ------------------------------------------------------------------ *)
(* Values.                                                             *)

let test_coercions () =
  Alcotest.(check string) "int to string" "42" (V.to_string (V.Int 42));
  Alcotest.(check string) "true" "1" (V.to_string (V.Bool true));
  Alcotest.(check string) "false" "" (V.to_string (V.Bool false));
  Alcotest.(check int) "numeric string" 12 (V.to_int (V.Str "12abc"));
  Alcotest.(check bool) "'0' is falsy" false (V.to_bool (V.Str "0"));
  Alcotest.(check bool) "'00' is truthy" true (V.to_bool (V.Str "00"));
  Alcotest.(check bool) "empty array falsy" false (V.to_bool (V.Arr []))

let test_loose_equality () =
  Alcotest.(check bool) "1 == '1'" true (V.loose_eq (V.Int 1) (V.Str "1"));
  Alcotest.(check bool) "'1.0' == '1'" true (V.loose_eq (V.Str "1.0") (V.Str "1"));
  Alcotest.(check bool) "'abc' != 0 (PHP 8)" false (V.loose_eq (V.Str "abc") (V.Int 0));
  Alcotest.(check bool) "null == false" true (V.loose_eq V.Null (V.Bool false));
  Alcotest.(check bool) "strict 1 !== '1'" false (V.strict_eq (V.Int 1) (V.Str "1"))

let test_array_ops () =
  let a = V.arr_push (V.arr_push [] (V.Str "x")) (V.Str "y") in
  Alcotest.(check bool) "push keys" true
    (V.arr_get a (V.Int 0) = V.Str "x" && V.arr_get a (V.Int 1) = V.Str "y");
  let a = V.arr_set a (V.Str "k") (V.Int 7) in
  Alcotest.(check bool) "string key" true (V.arr_get a (V.Str "k") = V.Int 7);
  Alcotest.(check bool) "has" true (V.arr_has a (V.Str "k"));
  Alcotest.(check bool) "missing" false (V.arr_has a (V.Str "z"))

(* ------------------------------------------------------------------ *)
(* Regex engine.                                                       *)

let re pattern =
  match R.compile pattern with
  | Some re -> re
  | None -> Alcotest.failf "pattern %s did not compile" pattern

let test_regex_basics () =
  Alcotest.(check bool) "literal" true (R.matches (re "/abc/") "xxabcyy");
  Alcotest.(check bool) "no match" false (R.matches (re "/abc/") "abd");
  Alcotest.(check bool) "dot" true (R.matches (re "/a.c/") "azc");
  Alcotest.(check bool) "anchors hit" true (R.matches (re "/^ab$/") "ab");
  Alcotest.(check bool) "anchors miss" false (R.matches (re "/^ab$/") "xab");
  Alcotest.(check bool) "case flag" true (R.matches (re "/abc/i") "xABCy");
  Alcotest.(check bool) "alternation" true (R.matches (re "/cat|dog/") "hotdog!")

let test_regex_classes_and_quantifiers () =
  Alcotest.(check bool) "class" true (R.matches (re "/^[a-z0-9_-]+$/") "ab_9-z");
  Alcotest.(check bool) "class rejects" false (R.matches (re "/^[a-z0-9_-]+$/") "ab'9");
  Alcotest.(check bool) "negated class" true (R.matches (re "/[^0-9]/") "12a34");
  Alcotest.(check bool) "negated class rejects" false (R.matches (re "/[^0-9]/") "1234");
  Alcotest.(check bool) "plus needs one" false (R.matches (re "/^a+$/") "");
  Alcotest.(check bool) "star allows zero" true (R.matches (re "/^a*$/") "");
  Alcotest.(check bool) "optional" true (R.matches (re "/^https?:/") "http:");
  Alcotest.(check bool) "optional with s" true (R.matches (re "/^https?:/") "https:");
  Alcotest.(check bool) "bounded repeat hit" true (R.matches (re "/^[0-9]{1,6}$/") "12345");
  Alcotest.(check bool) "bounded repeat miss" false (R.matches (re "/^[0-9]{1,6}$/") "1234567");
  Alcotest.(check bool) "escape classes" true (R.matches (re "/^\\w+\\s\\d+$/") "ab_c 42");
  Alcotest.(check bool) "group quantifier" true (R.matches (re "/^(ab)+$/") "ababab")

let test_regex_paper_patterns () =
  (* the patterns the corpus and the fixes actually use *)
  Alcotest.(check bool) "url" true (R.matches (re "/https?:\\/\\//i") "see HTTP://x.com");
  Alcotest.(check bool) "anchor tag" true (R.matches (re "/<a\\s/i") "<A href=");
  Alcotest.(check bool) "session token" true
    (R.matches (re "/^[a-f0-9]{32}$/") (String.make 32 'a'));
  Alcotest.(check bool) "session token rejects" false
    (R.matches (re "/^[a-f0-9]{32}$/") "PWNEDSESSION1234567890")

let test_regex_replace_split () =
  Alcotest.(check string) "replace" "a-b-c"
    (R.replace (re "/\\s+/") ~template:"-" "a b  c");
  Alcotest.(check (list string)) "split" [ "a"; "b"; "c" ]
    (R.split (re "/,/") "a,b,c");
  Alcotest.(check string) "strip quotes" "abc"
    (R.replace (re "/['\"]/") ~template:"" "a'b\"c")

let test_regex_unsupported () =
  Alcotest.(check bool) "lookahead unsupported" true (R.compile "/(?=x)/" = None);
  Alcotest.(check bool) "too short" true (R.compile "/" = None)

(* ------------------------------------------------------------------ *)
(* Evaluator.                                                          *)

let run_php ?(get = fun _ -> V.Str "7") src =
  let program = Wap_php.Parser.parse_string ~file:"t.php" ("<?php\n" ^ src) in
  let events = ref [] in
  let cfg =
    {
      E.input = (fun ~superglobal:_ ~key -> get key);
      input_array = (fun ~superglobal:_ -> [ (V.Str "k", get "k") ]);
      on_event = (fun ev -> events := ev :: !events);
      max_steps = 100_000;
    }
  in
  let outcome = E.run cfg program in
  (outcome, List.rev !events)

let echoed events =
  List.filter_map
    (fun (ev : E.event) ->
      if ev.E.ev_name = "echo" then Some (String.concat "" (List.map V.to_string ev.E.ev_args))
      else None)
    events

let test_eval_arithmetic_and_strings () =
  let _, evs = run_php "echo 1 + 2 * 3; echo 'a' . 'b'; echo strlen('hello');" in
  Alcotest.(check (list string)) "outputs" [ "7"; "ab"; "5" ] (echoed evs)

let test_eval_interpolation () =
  let _, evs = run_php "$x = 'world';\necho \"hello $x!\";" in
  Alcotest.(check (list string)) "interp" [ "hello world!" ] (echoed evs)

let test_eval_control_flow () =
  let _, evs =
    run_php
      "$n = 0;\nfor ($i = 0; $i < 5; $i++) { if ($i == 2) { continue; } $n += $i; }\necho $n;"
  in
  Alcotest.(check (list string)) "loop with continue" [ "8" ] (echoed evs)

let test_eval_while_break () =
  let _, evs =
    run_php "$i = 0;\nwhile (true) { $i++; if ($i >= 3) { break; } }\necho $i;"
  in
  Alcotest.(check (list string)) "break" [ "3" ] (echoed evs)

let test_eval_functions () =
  let _, evs =
    run_php
      "function add($a, $b = 10) { return $a + $b; }\necho add(1, 2);\necho add(5);"
  in
  Alcotest.(check (list string)) "calls" [ "3"; "15" ] (echoed evs)

let test_eval_recursion_bounded () =
  let outcome, _ = run_php "function f($n) { return f($n + 1); }\nf(0);" in
  Alcotest.(check bool) "terminates" true
    (match outcome with E.Completed | E.Timed_out -> true | _ -> false)

let test_eval_infinite_loop_bounded () =
  let outcome, _ = run_php "$i = 0;\nwhile (true) { $i++; }\necho 'after';" in
  Alcotest.(check bool) "bounded" true
    (match outcome with E.Completed | E.Timed_out -> true | _ -> false)

let test_eval_exit () =
  let outcome, evs = run_php "echo 'a';\ndie('bye');\necho 'b';" in
  Alcotest.(check bool) "exited" true (outcome = E.Exited);
  Alcotest.(check (list string)) "only first echo" [ "a" ] (echoed evs)

let test_eval_superglobals () =
  let _, evs =
    run_php ~get:(fun key -> V.Str ("v_" ^ key)) "echo $_GET['id'];\necho $_POST['x'];"
  in
  Alcotest.(check (list string)) "inputs" [ "v_id"; "v_x" ] (echoed evs)

let test_eval_foreach_superglobal () =
  let _, evs =
    run_php ~get:(fun _ -> V.Str "val") "foreach ($_GET as $k => $v) { echo \"$k=$v\"; }"
  in
  Alcotest.(check (list string)) "foreach" [ "k=val" ] (echoed evs)

let test_eval_arrays_and_switch () =
  let _, evs =
    run_php
      "$a = array('x' => 1, 'y' => 2);\n$a['z'] = 3;\n$a[] = 4;\n\
       echo count($a);\nswitch ($a['y']) { case 1: echo 'one'; break; case 2: echo 'two'; break; default: echo 'other'; }"
  in
  Alcotest.(check (list string)) "array + switch" [ "4"; "two" ] (echoed evs)

let test_eval_sanitizers () =
  let _, evs =
    run_php
      "echo mysql_real_escape_string(\"a'b\");\necho htmlspecialchars('<b>');\necho basename('../../etc/passwd');"
  in
  Alcotest.(check (list string)) "sanitizers"
    [ "a\\'b"; "&lt;b&gt;"; "passwd" ] (echoed evs)

let test_eval_builtin_validators () =
  let _, evs =
    run_php
      "echo is_numeric('12.5') ? 'y' : 'n';\necho is_numeric('12a') ? 'y' : 'n';\n\
       echo ctype_alnum('ab9') ? 'y' : 'n';\necho ctype_alnum(\"a b\") ? 'y' : 'n';\n\
       echo preg_match('/^[a-z]+$/', 'abc');\necho preg_match('/^[a-z]+$/', 'a1c');"
  in
  Alcotest.(check (list string)) "validators" [ "y"; "n"; "y"; "n"; "1"; "0" ] (echoed evs)

let test_eval_start_line () =
  let program =
    Wap_php.Parser.parse_string ~file:"t.php" "<?php\ndie('early');\necho 'reached';\n"
  in
  let events = ref [] in
  let cfg =
    { E.input = (fun ~superglobal:_ ~key:_ -> V.Str "7");
      input_array = (fun ~superglobal:_ -> []);
      on_event = (fun ev -> events := ev :: !events);
      max_steps = 1000 }
  in
  let _ = E.run ~start_line:3 cfg program in
  Alcotest.(check int) "skipped the early die" 1
    (List.length (List.filter (fun (e : E.event) -> e.E.ev_name = "echo") !events))

(* ------------------------------------------------------------------ *)
(* End-to-end confirmation.                                            *)

let candidate_of ?(vclass = VC.Sqli) src =
  let program = Wap_php.Parser.parse_string ~file:"t.php" ("<?php\n" ^ src) in
  match
    Wap_taint.Analyzer.analyze_program
      ~spec:(Wap_catalog.Catalog.default_spec vclass) ~file:"t.php" program
  with
  | c :: _ -> (program, c)
  | [] -> Alcotest.fail "no candidate"

let verdict ?vclass src =
  let program, c = candidate_of ?vclass src in
  C.confirm_candidate ~program c

let vt = Alcotest.testable C.pp_verdict C.equal_verdict

let test_confirm_real_sqli () =
  Alcotest.check vt "raw sqli confirmed" C.Confirmed
    (verdict "$u = $_GET['u'];\nmysql_query(\"SELECT * FROM t WHERE u = '$u'\");")

let test_confirm_guarded_sqli () =
  Alcotest.check vt "guarded flow refuted" C.Not_confirmed
    (verdict
       "$u = $_GET['u'];\nif (!is_numeric($u)) { die('no'); }\n\
        mysql_query('SELECT * FROM t WHERE u = ' . $u);")

let test_confirm_escaped_sqli () =
  (* the analyzer still flags it if escape() is unknown — but the replay
     shows the quotes never survive *)
  Alcotest.check vt "hand-rolled escape refuted" C.Not_confirmed
    (verdict
       (Wap_corpus.Snippet.escape_helper
       ^ "\n$u = escape($_GET['u']);\nmysql_query(\"SELECT * FROM t WHERE u = '$u'\");"))

let test_confirm_md5 () =
  Alcotest.check vt "md5 refuted" C.Not_confirmed
    (verdict "$u = md5($_GET['u']);\nmysql_query(\"SELECT * FROM t WHERE u = '$u'\");")

let test_confirm_xss () =
  Alcotest.check vt "xss confirmed" C.Confirmed
    (verdict ~vclass:VC.Xss_reflected "echo '<p>' . $_GET['m'] . '</p>';");
  Alcotest.check vt "tag stripping refuted" C.Not_confirmed
    (verdict ~vclass:VC.Xss_reflected
       "$m = str_replace(array('<', '>'), '', $_GET['m']);\necho \"<p>$m</p>\";")

let test_confirm_hi_and_files () =
  Alcotest.check vt "header injection" C.Confirmed
    (verdict ~vclass:VC.Hi "header('Location: ' . $_GET['next']);");
  Alcotest.check vt "traversal confirmed" C.Confirmed
    (verdict ~vclass:VC.Dt_pt "readfile('./docs/' . $_GET['f']);");
  Alcotest.check vt "basename would block — not flagged, so craft one" C.Not_confirmed
    (verdict ~vclass:VC.Hi
       "$n = str_replace(array(\"\\r\", \"\\n\"), '', $_GET['next']);\nheader('L: ' . $n);")

let test_confirm_osci_backtick () =
  Alcotest.check vt "backtick command injection" C.Confirmed
    (verdict ~vclass:VC.Osci "$d = $_GET['d'];\n$out = `ls $d`;");
  Alcotest.check vt "metacharacter stripping refuted" C.Not_confirmed
    (verdict ~vclass:VC.Osci
       "$d = str_replace(array(';', '|', '&', '`'), '', $_GET['d']);\nsystem('ls ' . $d);")

let test_confirm_stored_xss_unsupported () =
  Alcotest.check vt "stored xss is not replayable" C.Unsupported
    (verdict ~vclass:VC.Xss_stored
       "$r = mysql_query('SELECT body FROM c');\n\
        while ($row = mysql_fetch_assoc($r)) { echo $row['body']; }")

let test_confirm_interprocedural () =
  Alcotest.check vt "flow through helper confirmed" C.Confirmed
    (verdict ~vclass:VC.Hi
       "function redirect($to) { header('Location: ' . $to); }\nredirect($_COOKIE['r']);")

let test_confirm_wpdb_prepare () =
  Alcotest.check vt "raw wpdb confirmed" C.Confirmed
    (verdict ~vclass:VC.Wp_sqli
       "$id = $_GET['id'];\n$wpdb->query(\"DELETE FROM t WHERE name = '$id'\");")

(* every corpus snippet label agrees with the dynamic verdict *)
let qcheck_corpus_ground_truth =
  QCheck.Test.make ~name:"corpus ground truth is dynamically consistent" ~count:120
    QCheck.(int_bound 50_000)
    (fun seed ->
      let classes =
        VC.[ Sqli; Xss_reflected; Hi; Ei; Osci; Phpci; Rfi; Lfi; Dt_pt; Scd;
             Ldapi; Xpathi; Cs; Sf; Wp_sqli; Nosqli ]
      in
      let vclass = List.nth classes (seed mod List.length classes) in
      let label =
        List.nth Wap_corpus.Snippet.[ Real; Fp_easy; Fp_hard ] (seed mod 3)
      in
      let g = Wap_corpus.Snippet.make_gen ~seed in
      let snip = Wap_corpus.Snippet.generate g vclass label in
      let needs =
        let rec c h n i =
          i + String.length n <= String.length h
          && (String.sub h i (String.length n) = n || c h n (i + 1))
        in
        c snip.Wap_corpus.Snippet.code "escape(" 0
      in
      let src =
        "<?php\n"
        ^ (if needs then Wap_corpus.Snippet.escape_helper ^ "\n" else "")
        ^ snip.Wap_corpus.Snippet.code
      in
      let program = Wap_php.Parser.parse_string ~file:"q.php" src in
      let cands =
        Wap_taint.Analyzer.analyze_program
          ~spec:(Wap_catalog.Catalog.default_spec vclass) ~file:"q.php" program
      in
      List.for_all
        (fun c ->
          match (label, C.confirm_candidate ~program c) with
          | Wap_corpus.Snippet.Real, C.Confirmed -> true
          | (Wap_corpus.Snippet.Fp_easy | Fp_hard), C.Not_confirmed -> true
          | _, C.Unsupported -> true
          | _ -> false)
        cands)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wap_confirm"
    [
      ( "values",
        [
          Alcotest.test_case "coercions" `Quick test_coercions;
          Alcotest.test_case "loose equality" `Quick test_loose_equality;
          Alcotest.test_case "arrays" `Quick test_array_ops;
        ] );
      ( "regex",
        [
          Alcotest.test_case "basics" `Quick test_regex_basics;
          Alcotest.test_case "classes & quantifiers" `Quick
            test_regex_classes_and_quantifiers;
          Alcotest.test_case "paper patterns" `Quick test_regex_paper_patterns;
          Alcotest.test_case "replace & split" `Quick test_regex_replace_split;
          Alcotest.test_case "unsupported" `Quick test_regex_unsupported;
        ] );
      ( "evaluator",
        [
          Alcotest.test_case "arithmetic & strings" `Quick test_eval_arithmetic_and_strings;
          Alcotest.test_case "interpolation" `Quick test_eval_interpolation;
          Alcotest.test_case "control flow" `Quick test_eval_control_flow;
          Alcotest.test_case "while & break" `Quick test_eval_while_break;
          Alcotest.test_case "functions" `Quick test_eval_functions;
          Alcotest.test_case "recursion bounded" `Quick test_eval_recursion_bounded;
          Alcotest.test_case "infinite loop bounded" `Quick test_eval_infinite_loop_bounded;
          Alcotest.test_case "exit" `Quick test_eval_exit;
          Alcotest.test_case "superglobals" `Quick test_eval_superglobals;
          Alcotest.test_case "foreach superglobal" `Quick test_eval_foreach_superglobal;
          Alcotest.test_case "arrays & switch" `Quick test_eval_arrays_and_switch;
          Alcotest.test_case "sanitizers" `Quick test_eval_sanitizers;
          Alcotest.test_case "validators" `Quick test_eval_builtin_validators;
          Alcotest.test_case "start line" `Quick test_eval_start_line;
        ] );
      ( "confirmation",
        [
          Alcotest.test_case "raw sqli" `Quick test_confirm_real_sqli;
          Alcotest.test_case "guarded sqli" `Quick test_confirm_guarded_sqli;
          Alcotest.test_case "hand-rolled escape" `Quick test_confirm_escaped_sqli;
          Alcotest.test_case "md5" `Quick test_confirm_md5;
          Alcotest.test_case "xss" `Quick test_confirm_xss;
          Alcotest.test_case "hi & files" `Quick test_confirm_hi_and_files;
          Alcotest.test_case "osci & backtick" `Quick test_confirm_osci_backtick;
          Alcotest.test_case "stored xss unsupported" `Quick
            test_confirm_stored_xss_unsupported;
          Alcotest.test_case "interprocedural" `Quick test_confirm_interprocedural;
          Alcotest.test_case "wpdb" `Quick test_confirm_wpdb_prepare;
        ] );
      ("properties", [ qt qcheck_corpus_ground_truth ]);
    ]
