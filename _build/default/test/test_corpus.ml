(** Tests for the synthetic corpus: profile consistency with the paper's
    tables, package generation, determinism, and plugin metadata. *)

module VC = Wap_catalog.Vuln_class
module P = Wap_corpus.Profiles
module App = Wap_corpus.Appgen
module S = Wap_corpus.Snippet

let sum f l = List.fold_left (fun acc x -> acc + f x) 0 l

(* ------------------------------------------------------------------ *)
(* Profile consistency with the paper.                                 *)

let test_webapp_counts () =
  Alcotest.(check int) "54 packages" 54 (List.length P.all_webapps);
  Alcotest.(check int) "17 vulnerable" 17 (List.length P.vulnerable_webapps);
  Alcotest.(check int) "8374 files total" 8374
    (sum (fun p -> p.P.ap_files) P.all_webapps);
  Alcotest.(check int) "4714 files in vulnerable packages" 4714
    (sum (fun p -> p.P.ap_files) P.vulnerable_webapps);
  Alcotest.(check int) "413 vulnerabilities" 413
    (sum P.total_vulns P.vulnerable_webapps)

let test_webapp_class_totals () =
  (* Table VI's class columns: 72 / 255 / 55 / 4 / 2 / 1 / 19 / 5 *)
  let totals = P.webapp_class_totals () in
  let get g = Option.value ~default:0 (List.assoc_opt g totals) in
  Alcotest.(check int) "SQLI" 72 (get "SQLI");
  Alcotest.(check int) "XSS" 255 (get "XSS");
  Alcotest.(check int) "Files" 55 (get "Files");
  Alcotest.(check int) "SCD" 4 (get "SCD");
  Alcotest.(check int) "LDAPI" 2 (get "LDAPI");
  Alcotest.(check int) "SF" 1 (get "SF");
  Alcotest.(check int) "HI" 19 (get "HI");
  Alcotest.(check int) "CS" 5 (get "CS")

let test_webapp_fp_totals () =
  (* 104 predictable + 18 hard false positives (Table VI's WAPe columns) *)
  Alcotest.(check int) "easy FPs" 104 (sum (fun p -> p.P.ap_fp_easy) P.vulnerable_webapps);
  Alcotest.(check int) "hard FPs" 18 (sum (fun p -> p.P.ap_fp_hard) P.vulnerable_webapps)

let test_plugin_counts () =
  Alcotest.(check int) "115 plugins" 115 (List.length P.all_plugins);
  Alcotest.(check int) "23 vulnerable" 23 (List.length P.vulnerable_plugins);
  Alcotest.(check int) "169 vulnerabilities" 169
    (sum P.plugin_total_vulns P.vulnerable_plugins);
  Alcotest.(check int) "5 with CVE entries" 5
    (List.length (List.filter (fun p -> p.P.pp_cve) P.vulnerable_plugins))

let test_plugin_class_totals () =
  (* Table VII's columns: 55 / 71 / 31 / 5 / 2 / 5 *)
  let totals = P.plugin_class_totals () in
  let get g = Option.value ~default:0 (List.assoc_opt g totals) in
  Alcotest.(check int) "SQLI" 55 (get "SQLI");
  Alcotest.(check int) "XSS" 71 (get "XSS");
  Alcotest.(check int) "Files" 31 (get "Files");
  Alcotest.(check int) "SCD" 5 (get "SCD");
  Alcotest.(check int) "CS" 2 (get "CS");
  Alcotest.(check int) "HI" 5 (get "HI");
  Alcotest.(check int) "plugin FPP" 3 (sum (fun p -> p.P.pp_fp_easy) P.vulnerable_plugins);
  Alcotest.(check int) "plugin FP" 2 (sum (fun p -> p.P.pp_fp_hard) P.vulnerable_plugins)

let bin_index bins v =
  let rec go i = function
    | [] -> -1
    | (_, lo, hi) :: rest -> if v >= lo && v <= hi then i else go (i + 1) rest
  in
  go 0 bins

let test_fig4_histograms () =
  (* the analyzed histograms of Fig. 4 *)
  let count bins pick plugins =
    let arr = Array.make (List.length bins) 0 in
    List.iter
      (fun p ->
        let i = bin_index bins (pick p) in
        Alcotest.(check bool) "in some bin" true (i >= 0);
        arr.(i) <- arr.(i) + 1)
      plugins;
    Array.to_list arr
  in
  Alcotest.(check (list int)) "downloads, analyzed"
    [ 10; 12; 13; 33; 12; 24; 11 ]
    (count P.download_bins (fun p -> p.P.pp_downloads) P.all_plugins);
  Alcotest.(check (list int)) "active installs, analyzed"
    [ 18; 23; 12; 12; 17; 12; 21 ]
    (count P.active_bins (fun p -> p.P.pp_active_installs) P.all_plugins);
  (* 16 of the 23 vulnerable plugins have >10K downloads (paper text) *)
  let vulnerable_10k =
    List.length
      (List.filter (fun p -> p.P.pp_downloads >= 10_000) P.vulnerable_plugins)
  in
  Alcotest.(check int) "vulnerable with >10K downloads" 16 vulnerable_10k;
  (* 12 plugins are used in more than 2000 web sites *)
  let active_2k =
    List.length
      (List.filter (fun p -> p.P.pp_active_installs >= 2_000) P.vulnerable_plugins)
  in
  Alcotest.(check int) "vulnerable in >2000 sites" 12 active_2k;
  (* the most used plugin is active in more than 200,000 sites *)
  Alcotest.(check bool) "lightbox reach" true
    (List.exists (fun p -> p.P.pp_active_installs >= 200_000) P.vulnerable_plugins)

(* ------------------------------------------------------------------ *)
(* Package generation.                                                 *)

let test_package_matches_profile () =
  List.iter
    (fun profile ->
      let pkg = App.of_webapp_profile ~seed:2016 profile in
      Alcotest.(check int)
        (profile.P.ap_name ^ " files")
        profile.P.ap_files
        (List.length pkg.App.pkg_files);
      Alcotest.(check int)
        (profile.P.ap_name ^ " seeded reals")
        (P.total_vulns profile)
        (App.count_label pkg S.Real);
      Alcotest.(check int)
        (profile.P.ap_name ^ " seeded easy FPs")
        profile.P.ap_fp_easy
        (App.count_label pkg S.Fp_easy);
      Alcotest.(check int)
        (profile.P.ap_name ^ " seeded hard FPs")
        profile.P.ap_fp_hard
        (App.count_label pkg S.Fp_hard))
    P.vulnerable_webapps

let test_package_line_ranges () =
  let profile = List.nth P.vulnerable_webapps 0 in
  let pkg = App.of_webapp_profile ~seed:2016 profile in
  List.iter
    (fun (s : App.seeded) ->
      Alcotest.(check bool) "range ordered" true (s.App.sd_line_lo <= s.App.sd_line_hi);
      let file =
        List.find (fun f -> f.App.f_name = s.App.sd_file) pkg.App.pkg_files
      in
      let lines = List.length (String.split_on_char '\n' file.App.f_source) in
      Alcotest.(check bool) "range within file" true (s.App.sd_line_hi <= lines))
    pkg.App.pkg_seeded

let test_packages_parse () =
  (* every generated file in a couple of packages is valid PHP *)
  List.iter
    (fun profile ->
      let pkg = App.of_webapp_profile ~seed:2016 profile in
      List.iter
        (fun (f : App.file) ->
          ignore (Wap_php.Parser.parse_string ~file:f.App.f_name f.App.f_source))
        pkg.App.pkg_files)
    [ List.nth P.vulnerable_webapps 0; List.nth P.vulnerable_webapps 12 ]

let test_generation_deterministic () =
  let profile = List.nth P.vulnerable_webapps 5 in
  let a = App.of_webapp_profile ~seed:7 profile in
  let b = App.of_webapp_profile ~seed:7 profile in
  Alcotest.(check bool) "same files" true
    (List.for_all2
       (fun (x : App.file) (y : App.file) ->
         x.App.f_name = y.App.f_name && x.App.f_source = y.App.f_source)
       a.App.pkg_files b.App.pkg_files);
  let c = App.of_webapp_profile ~seed:8 profile in
  Alcotest.(check bool) "different seed differs" false
    (List.for_all2
       (fun (x : App.file) (y : App.file) -> x.App.f_source = y.App.f_source)
       a.App.pkg_files c.App.pkg_files)

let test_plugin_packages () =
  List.iter
    (fun profile ->
      let pkg = App.of_plugin_profile ~seed:2016 profile in
      Alcotest.(check bool) (profile.P.pp_name ^ " is a plugin") true
        (pkg.App.pkg_kind = App.Plugin);
      Alcotest.(check int)
        (profile.P.pp_name ^ " seeded")
        (P.plugin_total_vulns profile)
        (App.count_label pkg S.Real))
    P.vulnerable_plugins

let test_truth_summary () =
  let profile = List.nth P.vulnerable_webapps 0 in
  let pkg = App.of_webapp_profile ~seed:2016 profile in
  let truth = Wap_corpus.Corpus.truth_of_package pkg in
  Alcotest.(check int) "reals" 81 truth.Wap_corpus.Corpus.t_real;
  Alcotest.(check int) "fps" 8 truth.Wap_corpus.Corpus.t_fp;
  let by = truth.Wap_corpus.Corpus.t_real_by_group in
  Alcotest.(check (option int)) "sqli" (Some 9) (List.assoc_opt "SQLI" by);
  Alcotest.(check (option int)) "xss" (Some 72) (List.assoc_opt "XSS" by)

let test_training_programs () =
  let programs = Wap_corpus.Corpus.training_programs ~seed:11 ~per_label:40 () in
  Alcotest.(check int) "count" 80 (List.length programs);
  let fps = List.filter (fun p -> p.Wap_corpus.Corpus.tp_is_fp) programs in
  Alcotest.(check int) "half are FPs" 40 (List.length fps);
  List.iter
    (fun (p : Wap_corpus.Corpus.training_program) ->
      ignore (Wap_php.Parser.parse_string ~file:"t.php" p.Wap_corpus.Corpus.tp_source))
    programs

let test_escape_helper_emitted_once () =
  let pkg =
    App.generate ~seed:3 ~kind:App.Webapp ~name:"h" ~version:"1" ~files:1
      ~vuln_files:1 ~vulns:[] ~fp_easy:0 ~fp_hard:6 ~sanitized:0 ()
  in
  let src = (List.hd pkg.App.pkg_files).App.f_source in
  let prog = Wap_php.Parser.parse_string ~file:"h.php" src in
  let escapes =
    List.filter
      (fun (f : Wap_php.Ast.func) -> f.Wap_php.Ast.f_name = "escape")
      (Wap_php.Visitor.collect_functions prog)
  in
  Alcotest.(check bool) "at most one escape()" true (List.length escapes <= 1)

let qcheck_snippet_labels_honest =
  (* Real snippets must never contain the class sanitizer *)
  QCheck.Test.make ~name:"real snippets are not sanitized" ~count:100
    QCheck.(int_bound 20_000)
    (fun seed ->
      let g = S.make_gen ~seed in
      let snip = S.generate g VC.Sqli S.Real in
      not
        (let code = snip.S.code in
         let needle = "mysql_real_escape_string" in
         let rec contains i =
           i + String.length needle <= String.length code
           && (String.sub code i (String.length needle) = needle || contains (i + 1))
         in
         contains 0))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wap_corpus"
    [
      ( "profiles (paper tables)",
        [
          Alcotest.test_case "web application counts (Table V)" `Quick test_webapp_counts;
          Alcotest.test_case "class totals (Table VI)" `Quick test_webapp_class_totals;
          Alcotest.test_case "false-positive totals" `Quick test_webapp_fp_totals;
          Alcotest.test_case "plugin counts (Table VII)" `Quick test_plugin_counts;
          Alcotest.test_case "plugin class totals" `Quick test_plugin_class_totals;
          Alcotest.test_case "Fig. 4 histograms" `Quick test_fig4_histograms;
        ] );
      ( "generation",
        [
          Alcotest.test_case "packages match profiles" `Slow test_package_matches_profile;
          Alcotest.test_case "line ranges valid" `Quick test_package_line_ranges;
          Alcotest.test_case "generated files parse" `Quick test_packages_parse;
          Alcotest.test_case "deterministic" `Quick test_generation_deterministic;
          Alcotest.test_case "plugin packages" `Quick test_plugin_packages;
          Alcotest.test_case "truth summary" `Quick test_truth_summary;
          Alcotest.test_case "training programs" `Quick test_training_programs;
          Alcotest.test_case "escape helper emitted once" `Quick
            test_escape_helper_emitted_once;
        ] );
      ("properties", [ qt qcheck_snippet_labels_honest ]);
    ]
