(** Tests for the code corrector and the fix templates. *)

module VC = Wap_catalog.Vuln_class
module Fix = Wap_fixer.Fix
module Cor = Wap_fixer.Corrector

let analyze ?(vclass = VC.Sqli) src =
  let program = Wap_php.Parser.parse_string ~file:"t.php" src in
  Wap_taint.Analyzer.analyze_program
    ~spec:(Wap_catalog.Catalog.default_spec vclass) ~file:"t.php" program

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn > 0 && go 0

(* ------------------------------------------------------------------ *)
(* Fix templates.                                                      *)

let test_stock_fixes_parse () =
  (* every stock fix's runtime code is valid PHP *)
  List.iter
    (fun c ->
      let fix = Fix.stock c in
      let src = "<?php\n" ^ Fix.runtime_code fix in
      match Wap_php.Parser.parse_string ~file:"fix.php" src with
      | [ { Wap_php.Ast.s = Wap_php.Ast.Func_def f; _ } ] ->
          Alcotest.(check string)
            (VC.acronym c ^ " fix name")
            fix.Fix.fix_name f.Wap_php.Ast.f_name
      | _ -> Alcotest.failf "%s fix is not a single function" (VC.acronym c))
    VC.all_builtin

let test_fix_names_are_sanitizers () =
  (* the catalog registers every stock fix as a sanitizer of its class,
     so corrected code is never re-flagged; names must agree *)
  List.iter
    (fun c ->
      Alcotest.(check string)
        (VC.acronym c ^ " fix/sanitizer name")
        (Wap_catalog.Catalog.stock_fix_name c)
        (Fix.stock c).Fix.fix_name;
      let spec = Wap_catalog.Catalog.default_spec c in
      Alcotest.(check bool)
        (VC.acronym c ^ " registered")
        true
        (List.mem
           (Wap_catalog.Catalog.San_fn (Wap_catalog.Catalog.stock_fix_name c))
           spec.Wap_catalog.Catalog.sanitizers))
    VC.all_builtin

let test_template_names () =
  (* the names the paper gives to its fixes *)
  Alcotest.(check string) "nosqli" "san_nosqli" (Fix.stock VC.Nosqli).Fix.fix_name;
  Alcotest.(check string) "hei" "san_hei" (Fix.stock VC.Hi).Fix.fix_name;
  Alcotest.(check string) "wpsqli" "san_wpsqli" (Fix.stock VC.Wp_sqli).Fix.fix_name;
  Alcotest.(check string) "cs is san_write" "san_write" (Fix.stock VC.Cs).Fix.fix_name

let test_php_sanitization_template () =
  let fix =
    { Fix.fix_name = "san_x"; vclass = VC.Sqli;
      template = Fix.Php_sanitization { sanitizer = "some_escape" } }
  in
  Alcotest.(check bool) "calls the sanitizer" true
    (contains (Fix.runtime_code fix) "some_escape($v)")

let test_user_sanitization_template () =
  let fix = Fix.stock VC.Hi in
  let code = Fix.runtime_code fix in
  Alcotest.(check bool) "replaces CR" true (contains code "\\r");
  Alcotest.(check bool) "replaces LF" true (contains code "\\n");
  Alcotest.(check bool) "uses str_replace" true (contains code "str_replace")

let test_user_validation_template () =
  let fix = Fix.stock VC.Ldapi in
  let code = Fix.runtime_code fix in
  Alcotest.(check bool) "raises a warning" true (contains code "trigger_error");
  Alcotest.(check bool) "checks characters" true (contains code "strpos")

let test_content_validation_template () =
  let code = Fix.runtime_code (Fix.stock VC.Cs) in
  Alcotest.(check bool) "checks hyperlinks" true (contains code "https?");
  Alcotest.(check bool) "uses preg_match" true (contains code "preg_match")

let test_session_reset_template () =
  let code = Fix.runtime_code (Fix.stock VC.Sf) in
  Alcotest.(check bool) "regenerates the id" true (contains code "session_regenerate_id")

(* ------------------------------------------------------------------ *)
(* Correction.                                                         *)

let vulnerable = "<?php\n$u = $_GET['u'];\nmysql_query(\"SELECT * FROM t WHERE u = '$u'\");\necho $_GET['m'];\n"

let test_correct_wraps_sink_arg () =
  let cands = analyze vulnerable in
  let fixed, report = Cor.correct_source ~file:"t.php" vulnerable cands in
  Alcotest.(check int) "one fix applied" 1 (List.length report.Cor.applied);
  Alcotest.(check bool) "wrapped" true (contains fixed "mysql_query(san_sqli(");
  Alcotest.(check bool) "definition emitted" true
    (contains fixed "function san_sqli($v)");
  (* the fixed file still parses *)
  ignore (Wap_php.Parser.parse_string ~file:"fixed.php" fixed)

let test_correct_multiple_classes () =
  let sqli = analyze vulnerable in
  let xss = analyze ~vclass:VC.Xss_reflected vulnerable in
  let fixed, report = Cor.correct_source ~file:"t.php" vulnerable (sqli @ xss) in
  Alcotest.(check int) "two fixes" 2 (List.length report.Cor.applied);
  Alcotest.(check bool) "san_sqli applied" true (contains fixed "san_sqli(");
  Alcotest.(check bool) "san_out applied" true (contains fixed "echo san_out(")

let test_correct_idempotent () =
  let cands = analyze vulnerable in
  let once, _ = Cor.correct_source ~file:"t.php" vulnerable cands in
  (* analyzing the fixed source again finds nothing: san_sqli wraps the
     flow and its body uses the class sanitizer *)
  let again = analyze once in
  Alcotest.(check int) "fixed source is clean" 0 (List.length again)

let test_no_double_wrap () =
  let cands = analyze vulnerable in
  (* the same candidate passed twice must not wrap twice *)
  let fixed, _ = Cor.correct_source ~file:"t.php" vulnerable (cands @ cands) in
  Alcotest.(check bool) "no nested wrap" false (contains fixed "san_sqli(san_sqli(")

let test_existing_definition_not_duplicated () =
  let src =
    "<?php\nfunction san_sqli($v) { return mysql_real_escape_string($v); }\n\
     $u = $_GET['u'];\nmysql_query(\"SELECT * FROM t WHERE u = '$u'\");\n"
  in
  let cands = analyze src in
  let fixed, _ = Cor.correct_source ~file:"t.php" src cands in
  let count_defs =
    List.length
      (List.filter
         (fun (f : Wap_php.Ast.func) -> f.Wap_php.Ast.f_name = "san_sqli")
         (Wap_php.Visitor.collect_functions
            (Wap_php.Parser.parse_string ~file:"f.php" fixed)))
  in
  Alcotest.(check int) "single definition" 1 count_defs

let test_echo_sink_correction () =
  let src = "<?php\necho '<b>' . $_GET['m'] . '</b>';\n" in
  let cands = analyze ~vclass:VC.Xss_reflected src in
  let fixed, _ = Cor.correct_source ~file:"t.php" src cands in
  Alcotest.(check bool) "echo wrapped" true (contains fixed "echo san_out(")

let test_report_locations () =
  let cands = analyze vulnerable in
  let _, report = Cor.correct_source ~file:"t.php" vulnerable cands in
  match report.Cor.applied with
  | [ (fix, loc) ] ->
      Alcotest.(check string) "fix" "san_sqli" fix.Fix.fix_name;
      Alcotest.(check int) "sink line" 3 loc.Wap_php.Loc.line
  | _ -> Alcotest.fail "expected one applied fix"

let qcheck_correction_parses =
  QCheck.Test.make ~name:"corrected corpus snippets always parse" ~count:60
    QCheck.(int_bound 10_000)
    (fun seed ->
      let classes = VC.wape in
      let vclass = List.nth classes (seed mod List.length classes) in
      let g = Wap_corpus.Snippet.make_gen ~seed in
      let snip = Wap_corpus.Snippet.generate g vclass Wap_corpus.Snippet.Real in
      let src = "<?php\n" ^ snip.Wap_corpus.Snippet.code in
      let cands = analyze ~vclass src in
      let fixed, _ = Cor.correct_source ~file:"q.php" src cands in
      match Wap_php.Parser.parse_string ~file:"q.php" fixed with
      | _ -> true
      | exception _ -> false)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wap_fixer"
    [
      ( "templates",
        [
          Alcotest.test_case "stock fixes parse" `Quick test_stock_fixes_parse;
          Alcotest.test_case "fix names are sanitizers" `Quick
            test_fix_names_are_sanitizers;
          Alcotest.test_case "paper fix names" `Quick test_template_names;
          Alcotest.test_case "php sanitization" `Quick test_php_sanitization_template;
          Alcotest.test_case "user sanitization" `Quick test_user_sanitization_template;
          Alcotest.test_case "user validation" `Quick test_user_validation_template;
          Alcotest.test_case "content validation" `Quick test_content_validation_template;
          Alcotest.test_case "session reset" `Quick test_session_reset_template;
        ] );
      ( "correction",
        [
          Alcotest.test_case "wraps sink argument" `Quick test_correct_wraps_sink_arg;
          Alcotest.test_case "multiple classes" `Quick test_correct_multiple_classes;
          Alcotest.test_case "fixed source is clean" `Quick test_correct_idempotent;
          Alcotest.test_case "no double wrap" `Quick test_no_double_wrap;
          Alcotest.test_case "existing definition kept" `Quick
            test_existing_definition_not_duplicated;
          Alcotest.test_case "echo sink" `Quick test_echo_sink_correction;
          Alcotest.test_case "report locations" `Quick test_report_locations;
        ] );
      ("properties", [ qt qcheck_correction_parses ]);
    ]
