(** Tests for the data-mining stack: symptoms, evidence, attributes,
    datasets, metrics and the classifiers. *)

module Sym = Wap_mining.Symptom
module Ev = Wap_mining.Evidence
module At = Wap_mining.Attributes
module DS = Wap_mining.Dataset
module M = Wap_mining.Metrics
module VC = Wap_catalog.Vuln_class

(* ------------------------------------------------------------------ *)
(* Symptoms (Table I).                                                 *)

let test_symptom_counts () =
  Alcotest.(check int) "60 symptoms" 60 Sym.count;
  Alcotest.(check int) "61 attributes with class" 61 (At.paper_count At.Extended);
  Alcotest.(check int) "16 attributes originally" 16 (At.paper_count At.Original);
  Alcotest.(check int) "15 original groups" 15 (List.length Sym.original_groups)

let test_symptom_groups_consistent () =
  List.iter
    (fun (s : Sym.t) ->
      Alcotest.(check bool)
        (s.Sym.name ^ " group known")
        true
        (List.mem s.Sym.group Sym.original_groups))
    Sym.all

let test_original_symptom_set () =
  (* a few spot checks against Table I's left columns *)
  let orig s = match Sym.find s with Some x -> x.Sym.original | None -> false in
  List.iter (fun s -> Alcotest.(check bool) (s ^ " original") true (orig s))
    [ "is_int"; "isset"; "preg_match"; "substr"; "concat_op"; "trim";
      "complex_sql"; "is_num"; "from"; "avg"; "str_replace" ];
  List.iter (fun s -> Alcotest.(check bool) (s ^ " new") false (orig s))
    [ "is_integer"; "empty"; "strcmp"; "explode"; "implode"; "str_pad";
      "ltrim"; "count"; "min"; "preg_split" ]

let test_of_function_name () =
  Alcotest.(check (option string)) "direct" (Some "trim") (Sym.of_function_name "TRIM");
  Alcotest.(check (option string)) "(int) cast" (Some "intval") (Sym.of_function_name "(int)");
  Alcotest.(check (option string)) "die" (Some "exit") (Sym.of_function_name "die");
  Alcotest.(check (option string)) "error fns" (Some "error")
    (Sym.of_function_name "trigger_error");
  Alcotest.(check (option string)) "in_array is a whitelist" (Some "user_white_list")
    (Sym.of_function_name "in_array");
  Alcotest.(check (option string)) "unknown" None (Sym.of_function_name "md5")

let test_dynamic_symptoms () =
  let map = [ ("val_int", "is_int"); ("my_clean", "user_white_list") ] in
  Alcotest.(check (option string)) "mapped" (Some "is_int")
    (Sym.resolve_dynamic map "VAL_INT");
  Alcotest.(check (option string)) "unmapped" None (Sym.resolve_dynamic map "other")

(* ------------------------------------------------------------------ *)
(* Evidence collection.                                                *)

let candidate_of ?(vclass = VC.Sqli) src =
  let program = Wap_php.Parser.parse_string ~file:"t.php" ("<?php\n" ^ src) in
  match
    Wap_taint.Analyzer.analyze_program
      ~spec:(Wap_catalog.Catalog.default_spec vclass) ~file:"t.php" program
  with
  | c :: _ -> c
  | [] -> Alcotest.fail "no candidate"

let test_evidence_validation_and_sql () =
  let c =
    candidate_of
      "$id = $_GET['id'];\nif (!is_numeric($id)) { die('x'); }\n\
       mysql_query('SELECT COUNT(*) FROM t JOIN u ON 1 WHERE id = ' . $id . ' LIMIT 1');"
  in
  let ev = Ev.collect c in
  List.iter
    (fun s -> Alcotest.(check bool) s true (Ev.mem s ev))
    [ "is_numeric"; "exit"; "concat_op"; "from"; "count"; "complex_sql"; "is_num" ]

let test_evidence_dynamic_map () =
  let c =
    candidate_of
      "$v = val_int($_GET['v']);\nmysql_query('SELECT * FROM t WHERE v = ' . $v);"
  in
  let without = Ev.collect c in
  Alcotest.(check bool) "unmapped user fn invisible" false (Ev.mem "is_int" without);
  let with_map = Ev.collect ~dynamic:[ ("val_int", "is_int") ] c in
  Alcotest.(check bool) "mapped user fn visible" true (Ev.mem "is_int" with_map)

let test_evidence_sql_only_for_query_classes () =
  let c = candidate_of ~vclass:VC.Xss_reflected "echo 'SELECT x FROM t' . $_GET['m'];" in
  Alcotest.(check bool) "no FROM symptom for XSS" false (Ev.mem "from" (Ev.collect c))

let test_sql_symptom_details () =
  let parse_expr s = Wap_php.Parser.parse_expression s in
  let syms args = Ev.sql_symptoms (List.map parse_expr args) in
  Alcotest.(check bool) "avg" true (List.mem "avg" (syms [ "\"SELECT AVG(x) FROM t\"" ]));
  Alcotest.(check bool) "numeric position" true
    (List.mem "is_num" (syms [ "'UPDATE t SET a = 1 WHERE id = ' . $x" ]));
  Alcotest.(check bool) "quoted is not numeric" false
    (List.mem "is_num" (syms [ "\"SELECT * FROM t WHERE id = 'abc'\"" ]));
  Alcotest.(check bool) "nested select is complex" true
    (List.mem "complex_sql"
       (syms [ "'SELECT * FROM t WHERE id IN (SELECT id FROM u)' . $x" ]))

(* ------------------------------------------------------------------ *)
(* Attributes.                                                         *)

let test_attribute_vectors () =
  let ev = Ev.of_names [ "is_int"; "preg_match"; "trim" ] in
  let ext = At.vector_of_evidence At.Extended ev in
  Alcotest.(check int) "extended length" 60 (Array.length ext);
  Alcotest.(check int) "three bits set" 3
    (Array.fold_left (fun n f -> if f > 0.5 then n + 1 else n) 0 ext);
  let orig = At.vector_of_evidence At.Original ev in
  Alcotest.(check int) "original length" 15 (Array.length orig);
  (* is_int -> type_checking, preg_match -> pattern_control, trim -> remove_whitespace *)
  Alcotest.(check int) "three groups set" 3
    (Array.fold_left (fun n f -> if f > 0.5 then n + 1 else n) 0 orig)

let test_original_mode_ignores_new_symptoms () =
  (* strcmp is a new symptom: the original encoding must not see it *)
  let ev = Ev.of_names [ "strcmp" ] in
  let orig = At.vector_of_evidence At.Original ev in
  Alcotest.(check int) "invisible to original" 0
    (Array.fold_left (fun n f -> if f > 0.5 then n + 1 else n) 0 orig);
  let ext = At.vector_of_evidence At.Extended ev in
  Alcotest.(check int) "visible to extended" 1
    (Array.fold_left (fun n f -> if f > 0.5 then n + 1 else n) 0 ext)

(* ------------------------------------------------------------------ *)
(* Datasets.                                                           *)

let mk_instance bits label =
  { DS.features = Array.of_list (List.map float_of_int bits); label }

let test_dataset_dedup () =
  let d =
    DS.make ~mode:At.Extended
      [ mk_instance [ 1; 0 ] true; mk_instance [ 1; 0 ] true;
        mk_instance [ 0; 1 ] false;
        (* ambiguous pair: must be dropped entirely *)
        mk_instance [ 1; 1 ] true; mk_instance [ 1; 1 ] false ]
  in
  let dd = DS.deduplicate d in
  Alcotest.(check int) "kept" 2 (DS.size dd);
  Alcotest.(check int) "one FP" 1 (DS.positives dd)

let test_dataset_balance_and_split () =
  let d =
    DS.make ~mode:At.Extended
      (List.init 10 (fun i -> mk_instance [ i; 0 ] true)
      @ List.init 4 (fun i -> mk_instance [ i; 1 ] false))
  in
  let b = DS.balance d in
  Alcotest.(check int) "balanced size" 8 (DS.size b);
  Alcotest.(check int) "balanced positives" 4 (DS.positives b);
  let s = DS.take_split ~fp:3 ~rv:2 d in
  Alcotest.(check int) "split fp" 3 (DS.positives s);
  Alcotest.(check int) "split rv" 2 (DS.negatives s)

let test_stratified_folds () =
  let d =
    DS.make ~mode:At.Extended
      (List.init 20 (fun i -> mk_instance [ i ] (i mod 2 = 0)))
  in
  let folds = DS.stratified_folds ~k:5 d in
  Alcotest.(check int) "5 folds" 5 (List.length folds);
  List.iter
    (fun (train, test) ->
      Alcotest.(check int) "test size" 4 (DS.size test);
      Alcotest.(check int) "train size" 16 (DS.size train);
      Alcotest.(check int) "test balanced" 2 (DS.positives test))
    folds;
  (* each instance appears in exactly one test fold *)
  let total_test = List.fold_left (fun n (_, t) -> n + DS.size t) 0 folds in
  Alcotest.(check int) "partition" 20 total_test

let test_csv_round_trip () =
  let d =
    DS.make ~mode:At.Extended
      [ mk_instance [ 1; 0; 1 ] true; mk_instance [ 0; 1; 0 ] false ]
  in
  let back = DS.of_csv ~mode:At.Extended (DS.to_csv d) in
  Alcotest.(check int) "size" 2 (DS.size back);
  Alcotest.(check int) "positives" 1 (DS.positives back)

(* ------------------------------------------------------------------ *)
(* Metrics: reproduce Table II's numbers from Table III's matrices.    *)

let paper_svm = { M.tp = 121; fp = 6; fn = 7; tn = 122 }
let paper_lr = { M.tp = 119; fp = 6; fn = 9; tn = 122 }
let paper_rf = { M.tp = 116; fp = 3; fn = 12; tn = 125 }

let near name expected actual =
  Alcotest.(check (float 0.11)) name expected (M.pct actual)

let test_metrics_svm () =
  near "tpp" 94.5 (M.tpp paper_svm);
  near "pfp" 4.7 (M.pfp paper_svm);
  near "prfp" 95.3 (M.prfp paper_svm);
  near "pd" 95.3 (M.pd paper_svm);
  near "ppd" 94.6 (M.ppd paper_svm);
  near "acc" 94.9 (M.acc paper_svm);
  near "pr" 94.9 (M.pr paper_svm)

let test_metrics_lr () =
  near "tpp" 93.0 (M.tpp paper_lr);
  near "acc" 94.1 (M.acc paper_lr);
  near "pfp" 4.7 (M.pfp paper_lr)

let test_metrics_rf () =
  near "tpp" 90.6 (M.tpp paper_rf);
  near "pfp" 2.3 (M.pfp paper_rf);
  near "prfp" 97.5 (M.prfp paper_rf);
  near "pd" 97.7 (M.pd paper_rf);
  near "acc" 94.1 (M.acc paper_rf)

let test_metric_identities () =
  List.iter
    (fun c ->
      Alcotest.(check (float 1e-9)) "inform = tpp - pfp" (M.tpp c -. M.pfp c) (M.inform c);
      Alcotest.(check bool) "acc in [0,1]" true (M.acc c >= 0.0 && M.acc c <= 1.0);
      Alcotest.(check bool) "jacc <= tpp" true (M.jacc c <= M.tpp c +. 1e-9))
    [ paper_svm; paper_lr; paper_rf ]

let test_confusion_observe () =
  let c = M.empty in
  let c = M.observe c ~predicted:true ~actual:true in
  let c = M.observe c ~predicted:true ~actual:false in
  let c = M.observe c ~predicted:false ~actual:true in
  let c = M.observe c ~predicted:false ~actual:false in
  Alcotest.(check bool) "all cells" true (c = { M.tp = 1; fp = 1; fn = 1; tn = 1 });
  Alcotest.(check int) "total" 4 (M.total c)

(* ------------------------------------------------------------------ *)
(* Classifiers.                                                        *)

(* A linearly separable toy problem: label = attribute 0. *)
let separable n =
  DS.make ~mode:At.Extended
    (List.init n (fun i ->
         let bit = i mod 2 in
         mk_instance [ bit; 1 - bit; (i / 2) mod 2 ] (bit = 1)))

(* XOR of attributes 0 and 1: not linearly separable. *)
let xor_data n =
  DS.make ~mode:At.Extended
    (List.init n (fun i ->
         let a = i mod 2 and b = (i / 2) mod 2 in
         mk_instance [ a; b ] (a <> b)))

let accuracy_of predict (d : DS.t) =
  let ok =
    List.length
      (List.filter (fun (i : DS.instance) -> predict i.DS.features = i.DS.label)
         d.DS.instances)
  in
  float_of_int ok /. float_of_int (DS.size d)

let test_all_classifiers_learn_separable () =
  let d = separable 64 in
  List.iter
    (fun (algo : Wap_mining.Classifier.algorithm) ->
      let m = algo.Wap_mining.Classifier.train ~seed:7 d in
      Alcotest.(check (float 0.01))
        (algo.Wap_mining.Classifier.algo_name ^ " separable accuracy")
        1.0
        (accuracy_of (Wap_mining.Classifier.predict m) d))
    Wap_mining.Evaluation.default_pool

let test_trees_learn_xor () =
  let d = xor_data 64 in
  List.iter
    (fun (algo : Wap_mining.Classifier.algorithm) ->
      let m = algo.Wap_mining.Classifier.train ~seed:7 d in
      Alcotest.(check (float 0.01))
        (algo.Wap_mining.Classifier.algo_name ^ " xor accuracy")
        1.0
        (accuracy_of (Wap_mining.Classifier.predict m) d))
    [ Wap_mining.Decision_tree.algorithm; Wap_mining.Random_forest.algorithm;
      Wap_mining.Knn.algorithm ]

let test_scores_in_range () =
  let d = separable 32 in
  List.iter
    (fun (algo : Wap_mining.Classifier.algorithm) ->
      let m = algo.Wap_mining.Classifier.train ~seed:7 d in
      List.iter
        (fun (i : DS.instance) ->
          let s = Wap_mining.Classifier.score m i.DS.features in
          Alcotest.(check bool)
            (algo.Wap_mining.Classifier.algo_name ^ " score in [0,1]")
            true
            (s >= 0.0 && s <= 1.0))
        d.DS.instances)
    Wap_mining.Evaluation.default_pool

let test_training_deterministic () =
  let d = separable 64 in
  List.iter
    (fun (algo : Wap_mining.Classifier.algorithm) ->
      let m1 = algo.Wap_mining.Classifier.train ~seed:13 d in
      let m2 = algo.Wap_mining.Classifier.train ~seed:13 d in
      List.iter
        (fun (i : DS.instance) ->
          Alcotest.(check bool)
            (algo.Wap_mining.Classifier.algo_name ^ " deterministic")
            (Wap_mining.Classifier.predict m1 i.DS.features)
            (Wap_mining.Classifier.predict m2 i.DS.features))
        d.DS.instances)
    Wap_mining.Evaluation.default_pool

let test_tree_structure () =
  let d = separable 32 in
  let t = Wap_mining.Decision_tree.train ~seed:3 d in
  Alcotest.(check bool) "depth >= 1" true (Wap_mining.Decision_tree.depth_of t.root >= 1);
  Alcotest.(check bool) "has nodes" true (Wap_mining.Decision_tree.nodes_of t.root >= 3)

let test_cross_validation_covers_all () =
  let d = separable 50 in
  let conf =
    Wap_mining.Evaluation.cross_validate ~k:10 ~seed:3 Wap_mining.Logistic.algorithm d
  in
  Alcotest.(check int) "every instance tested once" 50 (M.total conf)

let test_top3_selection () =
  let d = separable 60 in
  let top = Wap_mining.Evaluation.top3 ~seed:3 d in
  Alcotest.(check int) "three selected" 3 (List.length top)

(* ------------------------------------------------------------------ *)
(* Predictor.                                                          *)

let test_predictor_triage () =
  let fp_cand =
    candidate_of
      "$v = $_GET['v'];\nif (!is_numeric($v)) { die('x'); }\n$v = intval($v);\nmysql_query('SELECT * FROM t WHERE v = ' . $v);"
  in
  let real_cand =
    candidate_of "$v = $_GET['v'];\nmysql_query(\"SELECT * FROM t WHERE v = '$v'\");"
  in
  let d = Wap_core.Training.dataset_for ~seed:2016 Wap_core.Version.Wape in
  let p = Wap_mining.Predictor.train ~seed:2016 Wap_mining.Predictor.extended_config d in
  Alcotest.(check bool) "guarded flow predicted FP" true
    (Wap_mining.Predictor.is_false_positive p fp_cand);
  Alcotest.(check bool) "raw flow predicted real" false
    (Wap_mining.Predictor.is_false_positive p real_cand);
  let fps, reals = Wap_mining.Predictor.triage p [ fp_cand; real_cand ] in
  Alcotest.(check int) "one of each" 1 (List.length fps);
  Alcotest.(check int) "one real" 1 (List.length reals);
  Alcotest.(check bool) "justification mentions the guard" true
    (List.mem "is_numeric" (Wap_mining.Predictor.justification p fp_cand))

let test_predictor_mode_mismatch () =
  let d = DS.make ~mode:At.Original [ mk_instance [ 1 ] true ] in
  Alcotest.check_raises "mode mismatch"
    (Invalid_argument "Predictor.train: dataset attribute mode mismatch")
    (fun () ->
      ignore (Wap_mining.Predictor.train Wap_mining.Predictor.extended_config d))

(* ------------------------------------------------------------------ *)
(* Properties.                                                         *)

let qcheck_dedup_idempotent =
  QCheck.Test.make ~name:"dedup is idempotent" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 40) (pair (list_of_size (Gen.return 4) bool) bool))
    (fun raw ->
      let d =
        DS.make ~mode:At.Extended
          (List.map
             (fun (bits, label) ->
               mk_instance (List.map (fun b -> if b then 1 else 0) bits) label)
             raw)
      in
      let once = DS.deduplicate d in
      let twice = DS.deduplicate once in
      DS.size once = DS.size twice)

let qcheck_folds_partition =
  QCheck.Test.make ~name:"folds partition the data" ~count:50
    QCheck.(int_range 4 60)
    (fun n ->
      let d = separable n in
      let folds = DS.stratified_folds ~k:4 d in
      List.fold_left (fun acc (_, t) -> acc + DS.size t) 0 folds = DS.size d)

let qcheck_metrics_bounded =
  QCheck.Test.make ~name:"all metrics bounded" ~count:200
    QCheck.(quad (int_bound 50) (int_bound 50) (int_bound 50) (int_bound 50))
    (fun (tp, fp, fn, tn) ->
      let c = { M.tp; fp; fn; tn } in
      List.for_all
        (fun { M.metric = _; value } -> value >= -1.0 && value <= 1.0)
        (M.all_metrics c))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wap_mining"
    [
      ( "symptoms",
        [
          Alcotest.test_case "counts" `Quick test_symptom_counts;
          Alcotest.test_case "groups consistent" `Quick test_symptom_groups_consistent;
          Alcotest.test_case "original flags" `Quick test_original_symptom_set;
          Alcotest.test_case "function name mapping" `Quick test_of_function_name;
          Alcotest.test_case "dynamic symptoms" `Quick test_dynamic_symptoms;
        ] );
      ( "evidence",
        [
          Alcotest.test_case "validation + SQL" `Quick test_evidence_validation_and_sql;
          Alcotest.test_case "dynamic map" `Quick test_evidence_dynamic_map;
          Alcotest.test_case "SQL symptoms only for query classes" `Quick
            test_evidence_sql_only_for_query_classes;
          Alcotest.test_case "sql details" `Quick test_sql_symptom_details;
        ] );
      ( "attributes",
        [
          Alcotest.test_case "vectors" `Quick test_attribute_vectors;
          Alcotest.test_case "original ignores new symptoms" `Quick
            test_original_mode_ignores_new_symptoms;
        ] );
      ( "datasets",
        [
          Alcotest.test_case "dedup + ambiguity" `Quick test_dataset_dedup;
          Alcotest.test_case "balance and split" `Quick test_dataset_balance_and_split;
          Alcotest.test_case "stratified folds" `Quick test_stratified_folds;
          Alcotest.test_case "csv round trip" `Quick test_csv_round_trip;
        ] );
      ( "metrics (paper formulas)",
        [
          Alcotest.test_case "SVM column of Table II" `Quick test_metrics_svm;
          Alcotest.test_case "LR column of Table II" `Quick test_metrics_lr;
          Alcotest.test_case "RF column of Table II" `Quick test_metrics_rf;
          Alcotest.test_case "identities" `Quick test_metric_identities;
          Alcotest.test_case "confusion observe" `Quick test_confusion_observe;
        ] );
      ( "classifiers",
        [
          Alcotest.test_case "all learn separable data" `Quick
            test_all_classifiers_learn_separable;
          Alcotest.test_case "trees learn XOR" `Quick test_trees_learn_xor;
          Alcotest.test_case "scores in range" `Quick test_scores_in_range;
          Alcotest.test_case "deterministic training" `Quick test_training_deterministic;
          Alcotest.test_case "tree structure" `Quick test_tree_structure;
          Alcotest.test_case "cross-validation coverage" `Quick
            test_cross_validation_covers_all;
          Alcotest.test_case "top-3 selection" `Quick test_top3_selection;
        ] );
      ( "predictor",
        [
          Alcotest.test_case "triage" `Slow test_predictor_triage;
          Alcotest.test_case "mode mismatch" `Quick test_predictor_mode_mismatch;
        ] );
      ( "properties",
        [ qt qcheck_dedup_idempotent; qt qcheck_folds_partition; qt qcheck_metrics_bounded ] );
    ]
