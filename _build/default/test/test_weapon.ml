(** Tests for the weapon generator, registry and persistence. *)

module VC = Wap_catalog.Vuln_class
module Cat = Wap_catalog.Catalog
module G = Wap_weapon.Generator
module W = Wap_weapon.Weapon

let test_builtin_weapons () =
  let nosqli = G.nosqli () and hei = G.hei () and wpsqli = G.wpsqli () in
  Alcotest.(check string) "nosqli flag" "-nosqli" nosqli.W.flag;
  Alcotest.(check string) "hei flag" "-hei" hei.W.flag;
  Alcotest.(check string) "wpsqli flag" "-wpsqli" wpsqli.W.flag;
  Alcotest.(check bool) "nosqli class" true (VC.equal nosqli.W.vclass VC.Nosqli);
  Alcotest.(check bool) "hei class" true (VC.equal hei.W.vclass VC.Hi);
  Alcotest.(check bool) "wpsqli class" true (VC.equal wpsqli.W.vclass VC.Wp_sqli);
  (* fix templates per Section IV-C *)
  (match nosqli.W.fix.Wap_fixer.Fix.template with
  | Wap_fixer.Fix.Php_sanitization { sanitizer = "mysql_real_escape_string" } -> ()
  | _ -> Alcotest.fail "nosqli fix should be PHP sanitization");
  (match hei.W.fix.Wap_fixer.Fix.template with
  | Wap_fixer.Fix.User_sanitization { malicious = [ '\r'; '\n' ]; neutralizer = " " } -> ()
  | _ -> Alcotest.fail "hei fix should replace CR/LF by a space");
  Alcotest.(check int) "wpsqli carries WP dynamic symptoms"
    (List.length Wap_catalog.Wordpress.dynamic_symptoms)
    (List.length wpsqli.W.dynamic_symptoms)

let base_request =
  {
    G.req_name = "xmli";
    req_vclass = None;
    req_sources = [];
    req_sinks = [ Cat.Sink_fn ("xml_run_query", []) ];
    req_sanitizers = [ Cat.San_fn "xml_escape" ];
    req_fix = G.With_user_validation { malicious = [ '<'; '>' ] };
    req_dynamic_symptoms = [];
  }

let test_generate_custom () =
  let w = G.generate base_request in
  Alcotest.(check string) "flag" "-xmli" w.W.flag;
  Alcotest.(check bool) "class" true (VC.equal w.W.vclass (VC.Custom "xmli"));
  Alcotest.(check string) "fix name" "san_xmli" w.W.fix.Wap_fixer.Fix.fix_name;
  Alcotest.(check bool) "superglobals included" true
    (List.mem (Cat.Src_superglobal "_GET") w.W.spec.Cat.sources)

let test_validation_errors () =
  let expect_invalid req =
    try
      ignore (G.generate req);
      false
    with G.Invalid_request _ -> true
  in
  Alcotest.(check bool) "empty name" true (expect_invalid { base_request with G.req_name = "" });
  Alcotest.(check bool) "bad name" true
    (expect_invalid { base_request with G.req_name = "a b" });
  Alcotest.(check bool) "no sinks" true
    (expect_invalid { base_request with G.req_sinks = [] });
  Alcotest.(check bool) "bad dynamic symptom" true
    (expect_invalid
       { base_request with G.req_dynamic_symptoms = [ ("f", "not_a_symptom") ] })

let test_generated_weapon_detects () =
  let w = G.generate base_request in
  let src = "<?php\nxml_run_query('//user[name=\"' . $_GET['n'] . '\"]');\n" in
  let program = Wap_php.Parser.parse_string ~file:"x.php" src in
  let cands =
    Wap_taint.Analyzer.analyze_program ~spec:w.W.spec ~file:"x.php" program
  in
  Alcotest.(check int) "weapon detects" 1 (List.length cands);
  (* and its sanitizer protects *)
  let src2 = "<?php\nxml_run_query(xml_escape($_GET['n']));\n" in
  let program2 = Wap_php.Parser.parse_string ~file:"x.php" src2 in
  Alcotest.(check int) "weapon sanitizer" 0
    (List.length (Wap_taint.Analyzer.analyze_program ~spec:w.W.spec ~file:"x.php" program2))

(* ------------------------------------------------------------------ *)
(* Persistence.                                                        *)

let temp_dir () =
  let d = Filename.temp_file "wap_test" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let test_store_round_trip () =
  let dir = temp_dir () in
  List.iter
    (fun w ->
      Wap_weapon.Store.save ~dir w;
      let back = Wap_weapon.Store.load ~dir ~name:w.W.name in
      Alcotest.(check string) (w.W.name ^ " name") w.W.name back.W.name;
      Alcotest.(check bool) (w.W.name ^ " class") true (VC.equal w.W.vclass back.W.vclass);
      Alcotest.(check bool)
        (w.W.name ^ " sinks")
        true
        (back.W.spec.Cat.sinks = w.W.spec.Cat.sinks);
      Alcotest.(check bool)
        (w.W.name ^ " sanitizers")
        true
        (back.W.spec.Cat.sanitizers = w.W.spec.Cat.sanitizers);
      Alcotest.(check bool) (w.W.name ^ " fix") true (back.W.fix = w.W.fix);
      Alcotest.(check bool)
        (w.W.name ^ " symptoms")
        true
        (back.W.dynamic_symptoms = w.W.dynamic_symptoms))
    [ G.nosqli (); G.hei (); G.wpsqli (); G.generate base_request ]

let test_store_all_fix_templates () =
  let dir = temp_dir () in
  let mk name template =
    {
      W.name; flag = "-" ^ name; vclass = VC.Custom name;
      spec =
        { Cat.vclass = VC.Custom name;
          submodule = Wap_catalog.Submodule.Generated name;
          sources = Cat.default_sources;
          sinks = [ Cat.Sink_fn ("f", []) ]; sanitizers = [] };
      fix = { Wap_fixer.Fix.fix_name = "san_" ^ name; vclass = VC.Custom name; template };
      dynamic_symptoms = [];
    }
  in
  List.iter
    (fun (name, template) ->
      let w = mk name template in
      Wap_weapon.Store.save ~dir w;
      let back = Wap_weapon.Store.load ~dir ~name in
      Alcotest.(check bool) (name ^ " template") true
        (back.W.fix.Wap_fixer.Fix.template = template))
    [ ("t1", Wap_fixer.Fix.Php_sanitization { sanitizer = "esc" });
      ("t2", Wap_fixer.Fix.User_sanitization { malicious = [ 'a'; '\n' ]; neutralizer = "_" });
      ("t3", Wap_fixer.Fix.User_validation { malicious = [ '\''; '"' ] });
      ("t4", Wap_fixer.Fix.Content_validation { patterns = [ "/x/"; "/y/i" ] });
      ("t5", Wap_fixer.Fix.Session_reset) ]

(* ------------------------------------------------------------------ *)
(* Registry.                                                           *)

let test_registry () =
  let reg = Wap_weapon.Registry.builtin () in
  Alcotest.(check int) "three builtin weapons" 3 (List.length (Wap_weapon.Registry.all reg));
  (match Wap_weapon.Registry.find_flag reg "-nosqli" with
  | Some w -> Alcotest.(check string) "found by flag" "nosqli" w.W.name
  | None -> Alcotest.fail "missing -nosqli");
  Alcotest.(check bool) "unknown flag" true
    (Wap_weapon.Registry.find_flag reg "-nope" = None);
  let specs = Wap_weapon.Registry.active_specs reg [ "-nosqli"; "-hei" ] in
  Alcotest.(check int) "active specs" 2 (List.length specs);
  let syms = Wap_weapon.Registry.active_symptoms reg [ "-wpsqli" ] in
  Alcotest.(check bool) "wp symptoms active" true (syms <> [])

let () =
  Alcotest.run "wap_weapon"
    [
      ( "generator",
        [
          Alcotest.test_case "builtin weapons (Section IV-C)" `Quick test_builtin_weapons;
          Alcotest.test_case "custom weapon" `Quick test_generate_custom;
          Alcotest.test_case "validation errors" `Quick test_validation_errors;
          Alcotest.test_case "generated weapon detects" `Quick test_generated_weapon_detects;
        ] );
      ( "store",
        [
          Alcotest.test_case "round trip" `Quick test_store_round_trip;
          Alcotest.test_case "all fix templates" `Quick test_store_all_fix_templates;
        ] );
      ("registry", [ Alcotest.test_case "registry" `Quick test_registry ]);
    ]
