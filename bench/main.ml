(** Benchmark and experiment harness.

    [dune exec bench/main.exe] regenerates every table and figure of the
    paper's evaluation (printed to stdout, suitable for [tee]) and then
    runs the Bechamel micro-benchmarks: one kernel per table/figure plus
    the substrate benchmarks (lexer, parser, taint analysis, symptom
    collection, classifiers, weapon generation, fix insertion).

    Flags: [--tables-only] skips Bechamel; [--bench-only] skips the
    tables; [--quick] limits the corpus runs to the vulnerable packages. *)

open Bechamel
module E = Wap_core.Experiments

let seed = 2016

(* ------------------------------------------------------------------ *)
(* Experiment regeneration.                                            *)

let print_tables ~quick () =
  let t_total = Sys.time () in
  print_string (E.table1 ());
  print_newline ();
  let dataset = Wap_core.Training.dataset_for ~seed Wap_core.Version.Wape in
  print_string (E.table2 ~seed ~dataset ());
  print_newline ();
  print_string (E.table3 ~seed ~dataset ());
  print_newline ();
  print_string (E.classifier_ranking ~seed ());
  print_newline ();
  print_string (E.ablation_attributes ~seed ());
  print_newline ();
  print_string (E.ablation_interprocedural ~seed ());
  print_newline ();
  print_string (E.ablation_vote ~seed ());
  print_newline ();
  print_string (E.table4 ());
  print_newline ();
  let webapps = E.run_webapps ~seed ~only_vulnerable:quick () in
  print_string (E.table5 webapps);
  print_newline ();
  print_string (E.table6 webapps);
  print_newline ();
  let plugins = E.run_plugins ~seed ~only_vulnerable:quick () in
  print_string (E.table7 plugins);
  print_newline ();
  print_string (E.fig4 plugins);
  print_newline ();
  print_string (E.fig5 webapps plugins);
  print_newline ();
  print_string (E.confirmation_table ~seed ~packages:6 ());
  print_newline ();
  let before, after = E.escape_experiment ~seed () in
  Printf.printf
    "Extensibility experiment (Section V-A): a vfront-like module reports %d\n\
     candidate(s); after feeding the application's own escape() function as a\n\
     sanitizer, %d remain (the custom-sanitized flows are no longer reported).\n"
    before after;
  Printf.printf "\n[experiments regenerated in %.1fs cpu]\n%!" (Sys.time () -. t_total)

(* ------------------------------------------------------------------ *)
(* Scan-engine kernel: parallel speedup and warm-cache rescan.         *)

let run_scan_engine ?(check_fused = false) ?(check_ir = false)
    ?(check_obs = false) ?(check_parse = false) () =
  (* merge several packages into one large application so the scan has
     enough files and spec-tasks to spread over the workers *)
  let profiles =
    List.filteri (fun i _ -> i < 4) Wap_corpus.Profiles.vulnerable_webapps
  in
  let files =
    List.concat_map
      (fun profile ->
        let pkg = Wap_corpus.Appgen.of_webapp_profile ~seed profile in
        List.map
          (fun (f : Wap_corpus.Appgen.file) ->
            ( Filename.concat pkg.Wap_corpus.Appgen.pkg_name
                f.Wap_corpus.Appgen.f_name,
              f.Wap_corpus.Appgen.f_source ))
          pkg.Wap_corpus.Appgen.pkg_files)
      profiles
  in
  let tool = Wap_core.Tool.create ~seed Wap_core.Version.Wape in
  let scan ?cache ?(fuse = true) jobs =
    Wap_core.Scan.run tool (Wap_core.Scan.request ~jobs ?cache ~fuse files)
  in
  print_string "== Scan engine (lib/engine) ==\n";
  Printf.printf "corpus: %d files from %d packages, %d detector specs\n"
    (List.length files) (List.length profiles)
    (List.length tool.Wap_core.Tool.specs);
  let cores = Domain.recommended_domain_count () in
  (* speedup is only physically possible up to the core count; past it,
     extra domains just contend on the stop-the-world minor GC *)
  let par_jobs = if cores >= 4 then 4 else max 1 cores in
  let o1 = scan 1 in
  let opar = scan par_jobs in
  let w1 = o1.Wap_core.Scan.result.Wap_core.Tool.analysis_seconds in
  let wp = opar.Wap_core.Scan.result.Wap_core.Tool.analysis_seconds in
  Printf.printf "cold scan, jobs=1: %6.2fs wall  (%.2fs cpu)\n" w1
    o1.Wap_core.Scan.result.Wap_core.Tool.analysis_cpu_seconds;
  (* fused vs per-spec: same scan, same jobs=1, only the fusion differs *)
  let ons = scan ~fuse:false 1 in
  let wns = ons.Wap_core.Scan.result.Wap_core.Tool.analysis_seconds in
  let fused_speedup = if w1 > 0. then wns /. w1 else 0. in
  Printf.printf
    "cold scan, jobs=1, --no-fuse: %6.2fs wall — fused speedup %.2fx\n" wns
    fused_speedup;
  (* on a 1-core host jobs=1 vs jobs=1 is pure noise, not a parallel
     speedup: report it as not-measured instead of as a regression *)
  let par_speedup =
    if par_jobs <= 1 then None else Some (if wp > 0. then w1 /. wp else 0.)
  in
  (match par_speedup with
  | Some s ->
      Printf.printf
        "cold scan, jobs=%d: %6.2fs wall  (%.2fs cpu)  speedup %.2fx\n"
        par_jobs wp
        opar.Wap_core.Scan.result.Wap_core.Tool.analysis_cpu_seconds s
  | None ->
      Printf.printf
        "cold scan, jobs=%d: %6.2fs wall  (%.2fs cpu)  speedup n/a — host \
         reports %d core(s), parallel-speedup check skipped\n"
        par_jobs wp
        opar.Wap_core.Scan.result.Wap_core.Tool.analysis_cpu_seconds cores);
  if cores < 4 && par_jobs > 1 then
    Printf.printf
      "  (host reports %d core(s); speedup measured at jobs=%d, not 4)\n"
      cores par_jobs;
  (* IR vs AST walker: the retargeted pass alone — pass 3, the per-file
     top-level sweep — at jobs=1.  Parse, digest, summaries and merge
     are byte-for-byte shared between the two modes, so timing the
     whole analyze phase would gate on noise in work that cannot
     differ.  min-of-3 per side; the IR side runs with its per-file
     lowering memo, i.e. the steady state of repeated scans. *)
  let keyed_units =
    List.map
      (fun (path, src) ->
        ( {
            Wap_taint.Analyzer.path;
            program = fst (Wap_php.Parser.parse_string_tolerant ~file:path src);
          },
          (* path alone is ambiguous: the merged corpus repeats file
             names across packages, so the memo key carries the source
             digest exactly like the engine's does *)
          String.concat "\x01"
            [ "bench"; path; Digest.to_hex (Digest.string src) ] ))
      files
  in
  let units = List.map fst keyed_units in
  let st =
    Wap_taint.Analyzer.project_state ~specs:tool.Wap_core.Tool.specs ()
  in
  List.iter (Wap_taint.Analyzer.summarize_file st) units;
  let pass3_wall one =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      List.iter (fun ku -> ignore (one ku)) keyed_units;
      let w = Unix.gettimeofday () -. t0 in
      if w < !best then best := w
    done;
    !best
  in
  let w_ast =
    pass3_wall (fun (u, _) ->
        Wap_taint.Analyzer.analyze_file_toplevel st ~units u)
  in
  let w_ir =
    pass3_wall (fun (u, memo_key) ->
        Wap_ir.Exec.analyze_file_toplevel ~memo_key st ~units u)
  in
  let ir_speedup = if w_ir > 0. then w_ast /. w_ir else 0. in
  Printf.printf
    "fused pass 3, jobs=1 (min of 3): AST walker %6.3fs, lowered IR %6.3fs \
     (memo warm) — IR speedup %.2fx\n"
    w_ast w_ir ir_speedup;
  (* parse kernel: the full lex+parse of the corpus, old list pipeline vs
     the buffer scanner.  The old side is the retained reference lexer
     plus the compat bridge into the buffer parser — the same
     list-then-array shape the pre-buffer parser built.  min-of-3 per
     side, like the pass-3 kernel; same rule as above, time only the
     phase that differs. *)
  let parse_wall one =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      List.iter (fun (path, src) -> ignore (one ~file:path src)) files;
      let w = Unix.gettimeofday () -. t0 in
      if w < !best then best := w
    done;
    !best
  in
  let w_parse_ref =
    parse_wall (fun ~file src ->
        Wap_php.Parser.parse_buf
          (Wap_php.Token_buf.of_list ~file (Wap_php.Lexer_ref.tokenize ~file src)))
  in
  let w_parse =
    parse_wall (fun ~file src ->
        Wap_php.Parser.parse_buf (Wap_php.Lexer.tokenize_buf ~file src))
  in
  let parse_speedup = if w_parse > 0. then w_parse_ref /. w_parse else 0. in
  Printf.printf
    "parse, jobs=1 (min of 3): list lexer %6.3fs, buffer scanner %6.3fs — \
     parse speedup %.2fx\n"
    w_parse_ref w_parse parse_speedup;
  let o4 = scan 4 in
  let same =
    List.length o1.Wap_core.Scan.result.Wap_core.Tool.candidates
    = List.length o4.Wap_core.Scan.result.Wap_core.Tool.candidates
  in
  Printf.printf "deterministic at jobs=4: %s (%d candidates)\n"
    (if same then "yes" else "NO — MISMATCH")
    (List.length o4.Wap_core.Scan.result.Wap_core.Tool.candidates);
  let cache = Wap_engine.Cache.create () in
  let oc1 = scan ~cache 4 in
  let oc2 = scan ~cache 4 in
  Printf.printf "cache fill:   %6.2fs wall  (%d hit(s), %d miss(es))\n"
    oc1.Wap_core.Scan.result.Wap_core.Tool.analysis_seconds
    oc1.Wap_core.Scan.cache_hits oc1.Wap_core.Scan.cache_misses;
  Printf.printf
    "warm rescan:  %6.2fs wall  (%d hit(s), %d miss(es)) — unchanged files skipped\n"
    oc2.Wap_core.Scan.result.Wap_core.Tool.analysis_seconds
    oc2.Wap_core.Scan.cache_hits oc2.Wap_core.Scan.cache_misses;
  (* incremental-edit kernel: a session over a 100-file project, then
     repeated summary-preserving edits of one function-free file — the
     [wap serve] steady state.  Each round measures update + renewed
     per-file diagnostics; min-of-rounds against a fresh batch scan of
     the same project. *)
  let inc_files = List.filteri (fun i _ -> i < 100) files in
  let edit_path, edit_src =
    let no_funcs (path, src) =
      Wap_php.Visitor.collect_functions
        (fst (Wap_php.Parser.parse_string_tolerant ~file:path src))
      = []
    in
    match List.find_opt no_funcs inc_files with
    | Some f -> f
    | None -> List.hd inc_files
  in
  let inc_request =
    Wap_engine.Session.request ~jobs:1
      ~fingerprint:(Wap_core.Scan.fingerprint tool)
      ~specs:tool.Wap_core.Tool.specs inc_files
  in
  let session = Wap_engine.Session.open_project inc_request in
  let inc_reran = ref 0 in
  let inc_best = ref infinity and inc_total = ref 0. in
  let inc_rounds = 20 in
  for i = 1 to inc_rounds do
    (* alternate two variants so every round really changes the digest *)
    let src = if i mod 2 = 0 then edit_src else edit_src ^ "\n" in
    let t0 = Unix.gettimeofday () in
    let reran = Wap_engine.Session.update_file session ~path:edit_path src in
    ignore (Wap_engine.Session.diagnostics session ~path:edit_path);
    let w = Unix.gettimeofday () -. t0 in
    inc_reran := List.length reran;
    inc_total := !inc_total +. w;
    if w < !inc_best then inc_best := w
  done;
  let inc_mean = !inc_total /. float_of_int inc_rounds in
  let inc_full =
    let t0 = Unix.gettimeofday () in
    ignore (Wap_engine.Session.run inc_request);
    Unix.gettimeofday () -. t0
  in
  let inc_speedup = if !inc_best > 0. then inc_full /. !inc_best else 0. in
  Printf.printf
    "incremental edit (session, %d files, %d re-analyzed): %.2fms min / \
     %.2fms mean — full rescan %.1fms (%.0fx)%s\n"
    (List.length inc_files) !inc_reran (1000. *. !inc_best)
    (1000. *. inc_mean) (1000. *. inc_full) inc_speedup
    (if !inc_best < 0.010 then "" else "  [above the 10ms target]");
  (* telemetry overhead: the same full-corpus scan with the daemon's
     observability plane on (bounded ring tracer + wall-clock log
     timestamps) vs off.  Each round times the two sides back to back —
     scheduler and thermal drift is correlated over adjacent ~100ms
     windows, so drift hits both sides — and the gate compares the
     MINIMUM of each side across all rounds.  Two further defences
     against shared-host noise: the sides are timed in CPU seconds
     ([Sys.time], microsecond granularity), which scheduler preemption
     by neighbour tenants cannot inflate the way it inflates wall
     clock, while every real telemetry cost (clock reads, ring stores,
     the GC work they cause) is still in-process CPU; and the minimum
     across rounds converges on the true cost because the remaining
     noise (GC slices, frequency steps) is strictly additive.  No
     [Gc.compact] between rounds on purpose: compaction makes the heap
     layout deterministic per side, so an unlucky cache-alignment of
     the traced side's layout persists for every round of an
     invocation and reads as phantom overhead — letting the layout
     drift round to round turns that bias into noise the min absorbs. *)
  let obs_scan () =
    let t0 = Sys.time () in
    ignore (Wap_core.Scan.run tool (Wap_core.Scan.request ~jobs:1 files));
    Sys.time () -. t0
  in
  (* ONE tracer for every on-round, created before the warm-up and kept
     alive across the off-rounds too: its ring (a fixed array, full
     after the warm-up) is then part of the live set on both sides, so
     the [Gc.compact] in [obs_scan] produces the same heap layout for
     both and the ratio measures per-event cost, not an
     alignment-lottery difference between two layouts *)
  let tracer = Wap_obs.Trace.create ~ring_capacity:4096 () in
  let obs_on () =
    Wap_obs.Trace.set_global (Some tracer);
    Wap_obs.Log.set_timestamps true
  in
  let obs_off () =
    Wap_obs.Trace.set_global None;
    Wap_obs.Log.set_timestamps false
  in
  obs_on ();
  ignore (obs_scan ()) (* warm-up: allocator, code paths, the ring *);
  obs_off ();
  let rounds = 13 in
  let w_plain = ref infinity and w_obs = ref infinity in
  for round = 1 to rounds do
    (* counterbalance within-pair order: second position is usually the
       warmer one, and always giving it to the same side would bias the
       ratio *)
    let p, o =
      if round land 1 = 1 then begin
        obs_off ();
        let p = obs_scan () in
        obs_on ();
        (p, obs_scan ())
      end
      else begin
        obs_on ();
        let o = obs_scan () in
        obs_off ();
        (obs_scan (), o)
      end
    in
    if p < !w_plain then w_plain := p;
    if o < !w_obs then w_obs := o
  done;
  obs_off ();
  let obs_ratio = if !w_plain > 0. then !w_obs /. !w_plain else 0. in
  Printf.printf
    "telemetry overhead (%d files, jobs=1, min of %d alternating rounds \
     per side, cpu): plain %.3fs, ring tracer + timestamps %.3fs — ratio \
     %.3fx\n"
    (List.length files) rounds !w_plain !w_obs obs_ratio;
  (* machine-readable companion for CI trend tracking *)
  let wc1 = oc1.Wap_core.Scan.result.Wap_core.Tool.analysis_seconds in
  let wc2 = oc2.Wap_core.Scan.result.Wap_core.Tool.analysis_seconds in
  let module J = Wap_report.Json in
  let phase_obj (o : Wap_core.Scan.outcome) =
    J.Obj
      (List.map
         (fun (k, s) -> (k, J.Float s))
         o.Wap_core.Scan.result.Wap_core.Tool.phase_seconds)
  in
  let doc =
    J.Obj
      [
        ("kernel", J.Str "scan");
        ("files", J.Int (List.length files));
        ("packages", J.Int (List.length profiles));
        ("specs", J.Int (List.length tool.Wap_core.Tool.specs));
        ("cores", J.Int cores);
        ("jobs_parallel", J.Int par_jobs);
        ("cold_jobs1_wall_seconds", J.Float w1);
        ( "cold_jobs1_cpu_seconds",
          J.Float o1.Wap_core.Scan.result.Wap_core.Tool.analysis_cpu_seconds );
        ("cold_parallel_wall_seconds", J.Float wp);
        ( "cold_parallel_cpu_seconds",
          J.Float opar.Wap_core.Scan.result.Wap_core.Tool.analysis_cpu_seconds );
        ( "speedup",
          match par_speedup with Some s -> J.Float s | None -> J.Null );
        ("per_spec_jobs1_wall_seconds", J.Float wns);
        ("fused_speedup", J.Float fused_speedup);
        ("ast_pass3_jobs1_wall_seconds", J.Float w_ast);
        ("ir_pass3_jobs1_wall_seconds", J.Float w_ir);
        ("ir_speedup", J.Float ir_speedup);
        ("parse_ref_jobs1_wall_seconds", J.Float w_parse_ref);
        ("parse_jobs1_wall_seconds", J.Float w_parse);
        ("parse_speedup", J.Float parse_speedup);
        ("phases_fused_jobs1", phase_obj o1);
        ("phases_per_spec_jobs1", phase_obj ons);
        ("deterministic", J.Bool same);
        ( "candidates",
          J.Int (List.length o4.Wap_core.Scan.result.Wap_core.Tool.candidates) );
        ("cache_fill_wall_seconds", J.Float wc1);
        ("warm_rescan_wall_seconds", J.Float wc2);
        ( "cache_rescan_ratio",
          J.Float (if wc1 > 0. then wc2 /. wc1 else 0.) );
        ("warm_cache_hits", J.Int oc2.Wap_core.Scan.cache_hits);
        ("warm_cache_misses", J.Int oc2.Wap_core.Scan.cache_misses);
        ("incremental_project_files", J.Int (List.length inc_files));
        ("incremental_edit_reanalyzed", J.Int !inc_reran);
        ("incremental_edit_wall_seconds", J.Float !inc_best);
        ("incremental_edit_mean_wall_seconds", J.Float inc_mean);
        ("incremental_full_rescan_wall_seconds", J.Float inc_full);
        ("incremental_speedup", J.Float inc_speedup);
        ("obs_plain_cpu_seconds", J.Float !w_plain);
        ("obs_on_cpu_seconds", J.Float !w_obs);
        ("obs_overhead_ratio", J.Float obs_ratio);
      ]
  in
  let oc = open_out "BENCH_scan.json" in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  print_string "wrote BENCH_scan.json\n";
  print_newline ();
  if check_fused && fused_speedup < 1.0 then begin
    Printf.eprintf
      "FAIL: fused scan slower than the per-spec pipeline (speedup %.2fx < 1.0)\n"
      fused_speedup;
    exit 1
  end;
  if check_ir && ir_speedup < 1.0 then begin
    Printf.eprintf
      "FAIL: IR analyze slower than the AST walker (speedup %.2fx < 1.0)\n"
      ir_speedup;
    exit 1
  end;
  if check_obs && obs_ratio > 1.05 then begin
    Printf.eprintf
      "FAIL: telemetry overhead above the 5%% budget (ratio %.3fx > 1.05)\n"
      obs_ratio;
    exit 1
  end;
  if check_parse && parse_speedup < 1.3 then begin
    Printf.eprintf
      "FAIL: buffer scanner below the parse-speedup floor (speedup %.2fx < \
       1.3)\n"
      parse_speedup;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Fleet kernel: multi-project sharding vs a single process.           *)

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    Sys.mkdir d 0o755
  end

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let write_projects dir projects =
  List.iter
    (fun (name, (pkg : Wap_corpus.Appgen.package)) ->
      List.iter
        (fun (f : Wap_corpus.Appgen.file) ->
          let path =
            Filename.concat (Filename.concat dir name)
              f.Wap_corpus.Appgen.f_name
          in
          mkdir_p (Filename.dirname path);
          let oc = open_out_bin path in
          output_string oc f.Wap_corpus.Appgen.f_source;
          close_out oc)
        pkg.Wap_corpus.Appgen.pkg_files)
    projects

let run_fleet ?(check_fleet = false) () =
  let n_projects = 10 and project_files = 240 in
  let root = "_bench_fleet_corpus" in
  let cache_1 = "_bench_fleet_cache1" and cache_2 = "_bench_fleet_cache2" in
  let scratch = [ root; cache_1; cache_2 ] in
  List.iter (fun d -> if Sys.file_exists d then rm_rf d) scratch;
  write_projects root
    (Wap_corpus.Corpus.generated_projects ~seed ~files:project_files
       ~count:n_projects ());
  let dirs = Wap_fleet.Coordinator.discover [ root ] in
  let total_files =
    List.fold_left
      (fun n dir -> n + List.length (Wap_fleet.Worker.php_files dir))
      0 dirs
  in
  print_string "== Fleet (lib/fleet) ==\n";
  Printf.printf
    "corpus: %d projects, %d files, sharing a %d-file framework layer\n"
    (List.length dirs) total_files
    (List.length (Wap_corpus.Corpus.shared_layer ~seed ()));
  (* each run gets its own fresh cache directory: neither side may
     inherit the other's warm disk cache *)
  let fleet_run ~cache_dir workers =
    Wap_fleet.Coordinator.run
      {
        Wap_fleet.Coordinator.fc_workers = workers;
        fc_worker_jobs = 1;
        fc_cache_dir = Some cache_dir;
        fc_summary_store = true;
        (* progress lines would pollute the timed runs' stderr *)
        fc_progress = false;
      }
      ~dirs
  in
  let rp1 = (fleet_run ~cache_dir:cache_1 1).Wap_fleet.Coordinator.report in
  let rp = (fleet_run ~cache_dir:cache_2 2).Wap_fleet.Coordinator.report in
  let w_single = rp1.Wap_fleet.Coordinator.rp_wall_seconds in
  let w_fleet = rp.Wap_fleet.Coordinator.rp_wall_seconds in
  let cores = Domain.recommended_domain_count () in
  (* two workers on one core just time-slice; the ratio is scheduler
     noise, not a parallel speedup — report it as not-measured, exactly
     like the scan kernel's [speedup] *)
  let fleet_speedup =
    if cores < 2 then None
    else Some (if w_fleet > 0. then w_single /. w_fleet else 0.)
  in
  Printf.printf "fleet, 1 worker (single scanning process): %6.2fs wall\n"
    w_single;
  let speedup_str =
    match fleet_speedup with
    | Some s -> Printf.sprintf "%.2fx" s
    | None -> Printf.sprintf "n/a — host reports %d core(s)" cores
  in
  Printf.printf
    "fleet, 2 workers: %6.2fs wall — speedup %s, %.1f projects/s, %.1f \
     files/s, dedup hit ratio %.2f\n"
    w_fleet speedup_str rp.Wap_fleet.Coordinator.rp_projects_per_second
    rp.Wap_fleet.Coordinator.rp_files_per_second
    rp.Wap_fleet.Coordinator.rp_dedup_hit_ratio;
  (* fold the fleet numbers into the engine kernel's CI document *)
  let module J = Wap_report.Json in
  let fleet_fields =
    [ ("fleet_projects", J.Int rp.Wap_fleet.Coordinator.rp_projects);
      ("fleet_single_process_wall_seconds", J.Float w_single);
      ("fleet_wall_seconds", J.Float w_fleet);
      ( "fleet_speedup",
        match fleet_speedup with Some s -> J.Float s | None -> J.Null );
      ( "fleet_projects_per_second",
        J.Float rp.Wap_fleet.Coordinator.rp_projects_per_second );
      ( "fleet_files_per_second",
        J.Float rp.Wap_fleet.Coordinator.rp_files_per_second );
      ( "fleet_dedup_hit_ratio",
        J.Float rp.Wap_fleet.Coordinator.rp_dedup_hit_ratio ) ]
  in
  (match J.of_string (Wap_php.Io.read_file "BENCH_scan.json") with
  | Ok (J.Obj fields) ->
      let oc = open_out "BENCH_scan.json" in
      output_string oc (J.to_string (J.Obj (fields @ fleet_fields)));
      output_char oc '\n';
      close_out oc;
      print_string "updated BENCH_scan.json with fleet metrics\n"
  | Ok _ | Error _ | (exception Sys_error _) ->
      print_string "BENCH_scan.json not found; fleet metrics not recorded\n");
  print_newline ();
  List.iter rm_rf scratch;
  if check_fleet then begin
    let failed =
      rp1.Wap_fleet.Coordinator.rp_failed @ rp.Wap_fleet.Coordinator.rp_failed
    in
    if failed <> [] then begin
      Printf.eprintf "FAIL: fleet projects failed: %s\n"
        (String.concat ", " failed);
      exit 1
    end;
    if not (rp.Wap_fleet.Coordinator.rp_dedup_hit_ratio > 0.) then begin
      Printf.eprintf
        "FAIL: fleet dedup hit ratio is 0 on the shared-layer corpus\n";
      exit 1
    end;
    (* a 2-worker fleet can only beat one process when there are at
       least two cores to run the workers on; on a 1-core host the
       speedup is null and the gate skips *)
    match fleet_speedup with
    | Some s when s < 1.0 ->
        Printf.eprintf
          "FAIL: 2-worker fleet slower than a single process (speedup %.2fx < \
           1.0)\n"
          s;
        exit 1
    | Some _ | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks.                                          *)

let sample_php =
  {php|<?php
$user = $_GET['user'];
$pass = trim($_POST['pass']);
if (!preg_match('/^[a-z0-9]+$/', $user)) { die('bad'); }
$q = "SELECT * FROM users WHERE u = '$user' AND p = '$pass' LIMIT 1";
$r = mysql_query($q);
while ($row = mysql_fetch_assoc($r)) {
    echo "<td>" . $row['u'] . "</td>";
}
function helper($x) { return "[" . substr($x, 0, 8) . "]"; }
header("Location: " . $_GET['next']);
|php}

let small_pkg =
  Wap_corpus.Appgen.of_webapp_profile ~seed
    (List.nth Wap_corpus.Profiles.vulnerable_webapps 5 (* divine: 5 files *))

let staged = Staged.stage

let substrate_tests () =
  let tokens () = Wap_php.Lexer.tokenize ~file:"bench.php" sample_php in
  let program = Wap_php.Parser.parse_string ~file:"bench.php" sample_php in
  let unit_ = [ { Wap_taint.Analyzer.path = "bench.php"; program } ] in
  let sqli_spec = Wap_catalog.Catalog.default_spec Wap_catalog.Vuln_class.Sqli in
  let xss_spec =
    Wap_catalog.Catalog.default_spec Wap_catalog.Vuln_class.Xss_reflected
  in
  let catalog_specs =
    (Wap_core.Tool.create ~seed Wap_core.Version.Wape).Wap_core.Tool.specs
  in
  let candidates = Wap_taint.Analyzer.analyze_project ~spec:sqli_spec unit_ in
  let dataset = Wap_core.Training.dataset_for ~seed Wap_core.Version.Wape in
  let svm = Wap_mining.Svm.train ~seed dataset in
  let sample_vec =
    match dataset.Wap_mining.Dataset.instances with
    | i :: _ -> i.Wap_mining.Dataset.features
    | [] -> [||]
  in
  [
    Test.make ~name:"lexer" (staged tokens);
    Test.make ~name:"parser"
      (staged (fun () -> Wap_php.Parser.parse_string ~file:"bench.php" sample_php));
    Test.make ~name:"printer"
      (staged (fun () -> Wap_php.Printer.program_to_string program));
    Test.make ~name:"taint-query-submodule"
      (staged (fun () -> Wap_taint.Analyzer.analyze_project ~spec:sqli_spec unit_));
    Test.make ~name:"taint-clientside-submodule"
      (staged (fun () -> Wap_taint.Analyzer.analyze_project ~spec:xss_spec unit_));
    (* fused_vs_per_spec: the same full-catalog analysis, one fused pass
       vs one single-spec pass per spec — the micro view of the scan
       engine's fused_speedup *)
    Test.make ~name:"taint-full-catalog-fused"
      (staged (fun () ->
           Wap_taint.Analyzer.analyze_with_specs ~specs:catalog_specs unit_));
    Test.make ~name:"taint-full-catalog-per-spec"
      (staged (fun () ->
           List.concat_map
             (fun spec -> Wap_taint.Analyzer.analyze_project ~spec unit_)
             catalog_specs));
    Test.make ~name:"symptom-collection"
      (staged (fun () -> List.map Wap_mining.Evidence.collect candidates));
    Test.make ~name:"svm-train"
      (staged (fun () -> Wap_mining.Svm.train ~seed dataset));
    Test.make ~name:"logistic-train"
      (staged (fun () -> Wap_mining.Logistic.train dataset));
    Test.make ~name:"random-forest-train"
      (staged (fun () ->
           Wap_mining.Random_forest.train
             ~params:{ Wap_mining.Random_forest.n_trees = 15; max_depth = 10 }
             ~seed dataset));
    Test.make ~name:"svm-predict" (staged (fun () -> Wap_mining.Svm.predict svm sample_vec));
    Test.make ~name:"weapon-generation"
      (staged (fun () -> Wap_weapon.Generator.wpsqli ()));
    Test.make ~name:"fix-insertion"
      (staged (fun () ->
           Wap_fixer.Corrector.correct_source ~file:"bench.php" sample_php candidates));
    Test.make ~name:"dynamic-confirmation"
      (staged (fun () ->
           List.map
             (fun c -> Wap_confirm.Confirm.confirm_candidate ~program c)
             candidates));
  ]

(* one kernel per paper table/figure: the computation that regenerates
   it, at a size small enough to sample *)
let experiment_tests () =
  let dataset = Wap_core.Training.dataset_for ~seed Wap_core.Version.Wape in
  let tool = Wap_core.Tool.create ~seed Wap_core.Version.Wape in
  [
    Test.make ~name:"table1-symptom-catalog" (staged (fun () -> E.table1 ()));
    Test.make ~name:"table2-crossval-svm"
      (staged (fun () ->
           Wap_mining.Evaluation.cross_validate ~k:10 ~seed
             Wap_mining.Svm.algorithm dataset));
    Test.make ~name:"table3-confusion"
      (staged (fun () ->
           Wap_mining.Evaluation.resubstitution ~seed
             Wap_mining.Logistic.algorithm dataset));
    Test.make ~name:"table4-sink-catalog" (staged (fun () -> E.table4 ()));
    Test.make ~name:"table5-6-pipeline-per-app"
      (staged (fun () ->
           (Wap_core.Tool.Scan.run tool
              (Wap_core.Tool.Scan.request_of_package small_pkg))
             .Wap_core.Tool.Scan.result));
    Test.make ~name:"table7-plugin-pipeline"
      (staged (fun () ->
           let _, pkg = List.hd (Wap_corpus.Corpus.vulnerable_plugins ~seed ()) in
           (Wap_core.Tool.Scan.run tool (Wap_core.Tool.Scan.request_of_package pkg))
             .Wap_core.Tool.Scan.result));
    Test.make ~name:"fig4-histogram"
      (staged (fun () ->
           List.map
             (fun (p : Wap_corpus.Profiles.plugin_profile) ->
               p.Wap_corpus.Profiles.pp_downloads)
             Wap_corpus.Profiles.all_plugins));
    Test.make ~name:"fig5-aggregation"
      (staged (fun () -> Wap_corpus.Profiles.webapp_class_totals ()));
  ]

let run_bechamel () =
  let tests =
    Test.make_grouped ~name:"wap"
      [ Test.make_grouped ~name:"substrate" (substrate_tests ());
        Test.make_grouped ~name:"experiments" (experiment_tests ()) ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> est
        | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) !rows in
  print_newline ();
  print_string "== Bechamel micro-benchmarks (monotonic clock) ==\n";
  Printf.printf "%-42s %16s\n" "benchmark" "time/run";
  List.iter
    (fun (name, ns) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "%-42s %16s\n" name human)
    rows;
  print_newline ()

(* the bench binary doubles as the fleet worker when the fleet kernel
   spawns it — must run before cmdline parsing *)
let () = Wap_fleet.Worker.maybe_main ()

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let tables_only = List.mem "--tables-only" args in
  let bench_only = List.mem "--bench-only" args in
  let engine_only = List.mem "--engine-only" args in
  let check_fused = List.mem "--check-fused" args in
  let check_ir = List.mem "--check-ir" args in
  let check_obs = List.mem "--check-obs" args in
  let check_fleet = List.mem "--check-fleet" args in
  let check_parse = List.mem "--check-parse" args in
  if engine_only then begin
    run_scan_engine ~check_fused ~check_ir ~check_obs ~check_parse ();
    run_fleet ~check_fleet ()
  end
  else begin
    if not bench_only then print_tables ~quick ();
    run_scan_engine ~check_fused ~check_ir ~check_obs ~check_parse ();
    run_fleet ~check_fleet ();
    if not tables_only then run_bechamel ()
  end
