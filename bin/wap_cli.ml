(** The [wap] command-line tool.

    Sub-commands:
    - [analyze]     run the detectors + false-positive predictor on PHP
                    files, optionally emitting corrected source;
    - [lint]        run the control-flow lint rules (Wap_lint) alone;
    - [weapon-gen]  generate a weapon from ep/ss/san data and a fix
                    template, and store it on disk;
    - [corpus-gen]  materialize the synthetic evaluation corpus;
    - [experiments] regenerate the paper's tables and figures;
    - [train]       build and export the predictor's training data set;
    - [symptoms]    list the symptom/attribute catalog (Table I);
    - [ir]          dump the three-address IR a PHP file lowers to
                    (block structure, temporaries, taint annotations);
    - [fuzz]        generate random PHP programs and check the pipeline
                    against differential oracles, shrinking and saving
                    any violation as a reproducer;
    - [serve]       run the LSP diagnostics daemon over stdio (or a
                    socket), re-analyzing only what each edit touches
                    via the session engine;
    - [top]         live terminal view of a running daemon, polling its
                    admin plane ([/status] + [/metrics]);
    - [fleet]       shard a directory of projects across spawned worker
                    processes (this binary re-executed in a hidden
                    worker mode) and merge the per-project reports
                    deterministically. *)

open Cmdliner

let read_file = Wap_php.Io.read_file

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let seed_arg =
  let doc = "Deterministic seed for training and corpus generation." in
  Arg.(value & opt int 2016 & info [ "seed" ] ~docv:"N" ~doc)

(* scan-engine flags, shared by analyze / lint / experiments *)

let jobs_arg =
  let doc =
    "Worker domains for parsing and analysis (default: the machine's \
     recommended domain count; the WAP_JOBS environment variable overrides \
     the default)."
  in
  Arg.(value & opt int (Wap_engine.Config.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let no_cache_arg =
  Arg.(value & flag
       & info [ "no-cache" ] ~doc:"Disable the incremental scan result cache.")

let cache_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Persist cached scan results under $(docv) between runs.")

let make_cache ~no_cache ~cache_dir =
  if no_cache then None else Some (Wap_engine.Cache.create ?dir:cache_dir ())

let no_fuse_arg =
  Arg.(value & flag
       & info [ "no-fuse" ]
           ~doc:"Run one taint pass per detector spec instead of the fused \
                 multi-spec pass.  Slower; the output is byte-identical — \
                 this is the escape hatch used to differentially check the \
                 fused analyzer (the WAP_FUSE=0 environment variable has the \
                 same effect).")

let no_ir_arg =
  Arg.(value & flag
       & info [ "no-ir" ]
           ~doc:"Run the fused taint pass as the original AST walker instead \
                 of over the lowered three-address IR.  Slower; the output is \
                 byte-identical — this is the differential reference the \
                 scan-ir-equiv fuzz oracle checks against (the WAP_IR=0 \
                 environment variable has the same effect).")

(* observability flags (Wap_obs), shared by analyze / lint / experiments *)

let log_level_conv =
  let parse s =
    match Wap_obs.Log.level_of_string s with
    | Some l -> Ok l
    | None ->
        Error (`Msg (Printf.sprintf "unknown log level %S (debug|info|warn|error|quiet)" s))
  in
  Arg.conv (parse, fun ppf l -> Fmt.string ppf (Wap_obs.Log.level_name l))

let log_format_conv =
  let parse s =
    match Wap_obs.Log.format_of_string s with
    | Some f -> Ok f
    | None -> Error (`Msg (Printf.sprintf "unknown log format %S (text|json)" s))
  in
  Arg.conv
    ( parse,
      fun ppf f ->
        Fmt.string ppf
          (match f with Wap_obs.Log.Text -> "text" | Wap_obs.Log.Json -> "json") )

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Record spans for the whole run and write them as Chrome \
                 trace-event JSON to $(docv) (open in chrome://tracing or \
                 https://ui.perfetto.dev).  Defaults to the WAP_TRACE_OUT \
                 environment variable; the flag wins when both are set.")

let log_level_arg =
  Arg.(value & opt log_level_conv Wap_obs.Log.Info
       & info [ "log-level" ] ~docv:"LEVEL"
           ~doc:"Diagnostics verbosity on stderr: debug, info, warn, error or \
                 quiet.  debug logs per-file/per-spec progress.")

let log_format_arg =
  Arg.(value & opt log_format_conv Wap_obs.Log.Text
       & info [ "log-format" ] ~docv:"FMT"
           ~doc:"Diagnostics format on stderr: text or json (one JSON object \
                 per line).")

(* Configure logger + tracer from the flags; returns the finish action
   that unsets the tracer and writes the trace file. *)
let setup_obs trace_out log_level log_format =
  Wap_obs.Log.set_level log_level;
  Wap_obs.Log.set_format log_format;
  match Wap_engine.Config.trace_out trace_out with
  | None -> fun () -> ()
  | Some path ->
      let tracer = Wap_obs.Trace.create () in
      Wap_obs.Trace.set_global (Some tracer);
      fun () ->
        Wap_obs.Trace.set_global None;
        Wap_obs.Trace.write tracer ~file:path;
        Wap_obs.Log.info
          ~fields:
            [ ("file", path);
              ("events", string_of_int (Wap_obs.Trace.event_count tracer)) ]
          "wrote trace"

(* Per-file/per-spec progress, logged at debug level only. *)
let progress_logger () =
  if not (Wap_obs.Log.enabled Wap_obs.Log.Debug) then None
  else
    Some
      (function
      | Wap_engine.Scan.File_parsed { path; cached } ->
          Wap_obs.Log.debug
            ~fields:[ ("file", path); ("cached", string_of_bool cached) ]
            "parsed"
      | Wap_engine.Scan.Spec_analyzed { spec; cached } ->
          Wap_obs.Log.debug
            ~fields:[ ("spec", spec); ("cached", string_of_bool cached) ]
            "analyzed"
      | Wap_engine.Scan.File_analyzed { path; cached } ->
          Wap_obs.Log.debug
            ~fields:[ ("file", path); ("cached", string_of_bool cached) ]
            "analyzed")

let stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Print per-phase timing, counter and per-detector tables to \
                 stderr after the scan.")

(* The --stats summary: per-phase wall clock (sums to ~analysis_seconds),
   scan counters, and the per-detector breakdown — all on stderr so
   stdout stays machine-parseable. *)
let print_scan_stats (outcome : Wap_core.Scan.outcome) =
  let module Tbl = Wap_report.Table in
  let r = outcome.Wap_core.Scan.result in
  let total = r.Wap_core.Tool.analysis_seconds in
  let phases = r.Wap_core.Tool.phase_seconds in
  let accounted = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 phases in
  let share s = if total <= 0.0 then "" else Tbl.pctf (s /. total) in
  let phase_rows =
    List.map (fun (k, s) -> [ k; Printf.sprintf "%.4f" s; share s ]) phases
    @ [ [ "---"; "---"; "---" ];
        [ "accounted"; Printf.sprintf "%.4f" accounted; share accounted ];
        [ "analysis total"; Printf.sprintf "%.4f" total; share total ] ]
  in
  let t1 =
    Tbl.make ~title:"scan phases (wall clock)"
      ~header:[ "phase"; "seconds"; "share" ]
      phase_rows
  in
  let snap = Wap_obs.Metrics.snapshot Wap_obs.Metrics.global in
  let hist name =
    List.assoc_opt name snap.Wap_obs.Metrics.histograms
  in
  let mean_ms h =
    match h with
    | Some h when h.Wap_obs.Metrics.h_count > 0 ->
        Printf.sprintf "%.3f"
          (1e3 *. h.Wap_obs.Metrics.h_sum /. float_of_int h.Wap_obs.Metrics.h_count)
    | _ -> "n/a"
  in
  let counter_rows =
    [
      [ "files parsed"; string_of_int r.Wap_core.Tool.files_analyzed ];
      [ "lines of code"; string_of_int r.Wap_core.Tool.loc ];
      [ "parse errors recovered";
        string_of_int
          (List.fold_left
             (fun acc (_, errs) -> acc + List.length errs)
             0 outcome.Wap_core.Scan.parse_errors) ];
      [ "detector specs"; string_of_int (List.length outcome.Wap_core.Scan.spec_timings) ];
      [ "candidates"; string_of_int (List.length r.Wap_core.Tool.candidates) ];
      [ "vulnerabilities"; string_of_int (List.length r.Wap_core.Tool.reported) ];
      [ "predicted false positives";
        string_of_int (List.length r.Wap_core.Tool.predicted_fps) ];
      [ "worker domains"; string_of_int outcome.Wap_core.Scan.jobs_used ];
      [ "cache hits"; string_of_int outcome.Wap_core.Scan.cache_hits ];
      [ "cache misses"; string_of_int outcome.Wap_core.Scan.cache_misses ];
      [ "pool queue-wait mean (ms)";
        mean_ms (hist "engine.pool.queue_wait_seconds") ];
      [ "pool task-run mean (ms)"; mean_ms (hist "engine.pool.task_run_seconds") ];
    ]
  in
  let t2 = Tbl.make ~title:"scan counters" ~header:[ "counter"; "value" ] counter_rows in
  let spec_rows =
    List.map
      (fun (s : Wap_engine.Scan.spec_report) ->
        [
          s.Wap_engine.Scan.sr_spec;
          string_of_int s.Wap_engine.Scan.sr_candidates;
          Printf.sprintf "%.4f" s.Wap_engine.Scan.sr_seconds;
          (if s.Wap_engine.Scan.sr_cached then "yes" else "no");
        ])
      outcome.Wap_core.Scan.spec_timings
  in
  let t3 =
    Tbl.make ~title:"per-detector breakdown"
      ~header:[ "detector"; "candidates"; "seconds"; "cached" ]
      spec_rows
  in
  (* every latency histogram in the registry, with interpolated
     quantiles — the same estimate Prometheus's histogram_quantile
     would compute from the exposed buckets *)
  let q_ms h q =
    let v = Wap_obs.Metrics.quantile_of_snapshot h q in
    if Float.is_nan v then "n/a" else Printf.sprintf "%.3f" (1e3 *. v)
  in
  let hist_rows =
    List.filter_map
      (fun (name, (h : Wap_obs.Metrics.hist_snapshot)) ->
        if h.Wap_obs.Metrics.h_count = 0 then None
        else
          Some
            [
              name;
              string_of_int h.Wap_obs.Metrics.h_count;
              mean_ms (Some h);
              q_ms h 0.5;
              q_ms h 0.95;
            ])
      snap.Wap_obs.Metrics.histograms
  in
  let t4 =
    Tbl.make ~title:"latency histograms (ms)"
      ~header:[ "histogram"; "count"; "mean"; "p50"; "p95" ]
      hist_rows
  in
  Printf.eprintf "%s\n%s\n%s%s%!" (Tbl.render t1) (Tbl.render t2)
    (Tbl.render t3)
    (if hist_rows = [] then "" else "\n" ^ Tbl.render t4)

(* expand directories to their .php files, recursively; explicitly named
   files pass through regardless of extension *)
let expand_php_paths files =
  let rec expand path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.concat_map (fun entry -> expand (Filename.concat path entry))
    else if Filename.check_suffix path ".php" || List.mem path files then
      [ path ]
    else []
  in
  List.concat_map expand files

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)

let version_conv =
  let parse = function
    | "wape" | "new" -> Ok Wap_core.Version.Wape
    | "v21" | "2.1" | "original" -> Ok Wap_core.Version.Wap_v21
    | s -> Error (`Msg (Printf.sprintf "unknown tool version %S (wape|v21)" s))
  in
  Arg.conv (parse, fun ppf v -> Fmt.string ppf (Wap_core.Version.name v))

let analyze_cmd =
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"PHP files to analyze.")
  in
  let fix =
    Arg.(value & flag
         & info [ "fix" ] ~doc:"Write corrected source next to each file (.fixed.php).")
  in
  let version =
    Arg.(value & opt version_conv Wap_core.Version.Wape
         & info [ "tool-version" ] ~docv:"V" ~doc:"Tool configuration: wape or v21.")
  in
  let weapons =
    Arg.(value & opt_all string []
         & info [ "weapon" ] ~docv:"NAME"
             ~doc:"Activate a weapon: nosqli, hei, wpsqli, or a name stored under --weapon-dir.")
  in
  let weapon_dir =
    Arg.(value & opt (some dir) None
         & info [ "weapon-dir" ] ~docv:"DIR" ~doc:"Directory holding stored weapons.")
  in
  let sanitizers =
    Arg.(value & opt_all string []
         & info [ "sanitizer" ] ~docv:"FN"
             ~doc:"Register a user sanitization function (applies to every detector).")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Show symptoms and flow steps.")
  in
  let confirm =
    Arg.(value & flag
         & info [ "confirm" ]
             ~doc:"Dynamically confirm each finding by replaying it with an attack payload.")
  in
  let training_set =
    Arg.(value & opt (some file) None
         & info [ "training-set" ] ~docv:"FILE"
             ~doc:"Train the false-positive predictor from this CSV (as exported by `wap train`).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON instead of text.")
  in
  let html_out =
    Arg.(value & opt (some string) None
         & info [ "html" ] ~docv:"FILE" ~doc:"Also write a standalone HTML report.")
  in
  let run files fix version weapons weapon_dir sanitizers seed verbose confirm json training_set html_out jobs no_cache cache_dir no_fuse no_ir trace_out stats log_level log_format =
    let finish_obs = setup_obs trace_out log_level log_format in
    let weapons =
      List.map
        (fun name ->
          match name with
          | "nosqli" -> Wap_weapon.Generator.nosqli ()
          | "hei" -> Wap_weapon.Generator.hei ()
          | "wpsqli" -> Wap_weapon.Generator.wpsqli ()
          | name -> (
              match weapon_dir with
              | Some dir -> Wap_weapon.Store.load ~dir ~name
              | None -> failwith ("unknown weapon " ^ name ^ " (no --weapon-dir)")))
        weapons
    in
    let extra_sanitizers = List.map (fun fn -> (None, fn)) sanitizers in
    let dataset =
      Option.map
        (fun path ->
          Wap_mining.Dataset.of_csv
            ~mode:(Wap_core.Version.attribute_mode version)
            (read_file path))
        training_set
    in
    let tool = Wap_core.Tool.create ~seed ~weapons ~extra_sanitizers ?dataset version in
    let paths = expand_php_paths files in
    let sources = List.map (fun p -> (p, read_file p)) paths in
    let cache = make_cache ~no_cache ~cache_dir in
    let outcome =
      Wap_core.Scan.run tool
        (Wap_core.Scan.request ~jobs ?cache
           ?fuse:(if no_fuse then Some false else None)
           ?ir:(if no_ir then Some false else None)
           ?on_progress:(progress_logger ()) sources)
    in
    let result = outcome.Wap_core.Scan.result in
    let parse_errors = outcome.Wap_core.Scan.parse_errors in
    if verbose then
      Wap_obs.Log.info
        ~fields:
          [ ("workers", string_of_int outcome.Wap_core.Scan.jobs_used);
            ( "cache",
              match (cache, cache_dir) with
              | None, _ -> "off"
              | Some _, Some dir -> "on (" ^ dir ^ ")"
              | Some _, None -> "on (memory)" );
            ("hits", string_of_int outcome.Wap_core.Scan.cache_hits);
            ("misses", string_of_int outcome.Wap_core.Scan.cache_misses) ]
        "scan finished";
    List.iter
      (fun (path, errs) ->
        List.iter
          (fun (e : Wap_php.Parser.recovered_error) ->
            Wap_obs.Log.warn
              ~fields:
                [ ("file", path);
                  ("loc", Wap_php.Loc.to_string e.Wap_php.Parser.err_loc) ]
              (Printf.sprintf "parse error recovered: %s"
                 e.Wap_php.Parser.err_msg))
          errs)
      parse_errors;
    (match html_out with
    | Some path ->
        write_file path (Wap_core.Export.result_to_html ~confirm result);
        Wap_obs.Log.info ~fields:[ ("file", path) ] "wrote HTML report"
    | None -> ());
    if json then print_endline (Wap_core.Export.result_to_string ~confirm result)
    else begin
      Printf.printf
        "%d file(s): %d candidate(s), %d vulnerability(ies), %d predicted false positive(s)\n"
        (List.length paths)
        (List.length result.Wap_core.Tool.candidates)
        (List.length result.Wap_core.Tool.reported)
        (List.length result.Wap_core.Tool.predicted_fps);
      let by_file = Hashtbl.create 8 in
      List.iter
        (fun (path, src) ->
          Hashtbl.replace by_file path
            (lazy (fst (Wap_php.Parser.parse_string_tolerant ~file:path src))))
        sources;
      List.iter
        (fun (f : Wap_core.Tool.finding) ->
          let c = f.Wap_core.Tool.candidate in
          let dyn =
            if not confirm then ""
            else
              match Hashtbl.find_opt by_file c.Wap_taint.Trace.file with
              | Some program -> (
                  match
                    Wap_confirm.Confirm.confirm_candidate
                      ~program:(Lazy.force program) c
                  with
                  | Wap_confirm.Confirm.Confirmed -> " (exploit confirmed)"
                  | Wap_confirm.Confirm.Not_confirmed -> " (exploit not reproduced)"
                  | Wap_confirm.Confirm.Unsupported -> " (not replayable)")
              | None -> ""
          in
          Printf.printf "  [%s] %s%s\n"
            (if f.Wap_core.Tool.predicted_fp then "FP " else "VULN")
            (Wap_taint.Trace.summary c) dyn;
          if verbose then begin
            let o = Wap_taint.Trace.primary c in
            List.iter
              (fun (s : Wap_taint.Trace.step) ->
                Printf.printf "        via %s: %s\n"
                  (Wap_php.Loc.to_string s.Wap_taint.Trace.step_loc)
                  s.Wap_taint.Trace.step_desc)
              o.Wap_taint.Trace.steps;
            Printf.printf "        symptoms: %s\n"
              (String.concat ", " f.Wap_core.Tool.symptoms)
          end)
        result.Wap_core.Tool.findings;
      if fix then
        List.iter
          (fun (path, src) ->
            let here =
              List.filter
                (fun (c : Wap_taint.Trace.candidate) ->
                  String.equal c.Wap_taint.Trace.file path)
                result.Wap_core.Tool.reported
            in
            if here <> [] then begin
              let fixed, report =
                Wap_fixer.Corrector.correct_source ~file:path src here
              in
              let out = path ^ ".fixed.php" in
              write_file out fixed;
              Wap_obs.Log.info
                ~fields:
                  [ ("file", out);
                    ( "fixes",
                      string_of_int
                        (List.length report.Wap_fixer.Corrector.applied) ) ]
                "wrote corrected source"
            end)
          sources
    end;
    if stats then print_scan_stats outcome;
    finish_obs ();
    `Ok ()
  in
  let doc = "Detect (and optionally correct) vulnerabilities in PHP files." in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(ret (const run $ files $ fix $ version $ weapons $ weapon_dir
               $ sanitizers $ seed_arg $ verbose $ confirm $ json $ training_set
               $ html_out $ jobs_arg $ no_cache_arg $ cache_dir_arg
               $ no_fuse_arg $ no_ir_arg $ trace_out_arg $ stats_arg
               $ log_level_arg $ log_format_arg))

(* ------------------------------------------------------------------ *)
(* lint                                                                *)

let lint_cmd =
  let files =
    Arg.(value & pos_all file []
         & info [] ~docv:"FILE" ~doc:"PHP files or directories to lint.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON instead of text.")
  in
  let only_rules =
    Arg.(value & opt_all string []
         & info [ "rule" ] ~docv:"ID"
             ~doc:"Run only this rule (repeatable); default: all rules.")
  in
  let list_rules =
    Arg.(value & flag & info [ "list-rules" ] ~doc:"List the available rules and exit.")
  in
  let run files json only_rules list_rules jobs no_cache cache_dir trace_out log_level log_format =
    let finish_obs = setup_obs trace_out log_level log_format in
    Fun.protect ~finally:finish_obs @@ fun () ->
    if list_rules then begin
      List.iter
        (fun (r : Wap_lint.Rule.t) ->
          Printf.printf "%-20s %s\n" r.Wap_lint.Rule.id r.Wap_lint.Rule.doc)
        (Wap_lint.Lint.all_rules ());
      `Ok ()
    end
    else if files = [] then `Error (true, "required argument FILE is missing")
    else begin
      let all = Wap_lint.Lint.all_rules () in
      let unknown =
        List.filter
          (fun id ->
            not (List.exists (fun (r : Wap_lint.Rule.t) -> r.Wap_lint.Rule.id = id) all))
          only_rules
      in
      if unknown <> [] then
        `Error
          ( false,
            Printf.sprintf "unknown rule %s (see --list-rules)"
              (String.concat ", " unknown) )
      else begin
      let rules =
        match only_rules with
        | [] -> None
        | ids ->
            Some
              (List.filter
                 (fun (r : Wap_lint.Rule.t) -> List.mem r.Wap_lint.Rule.id ids)
                 all)
      in
      let cache = make_cache ~no_cache ~cache_dir in
      (* lint is per-file, so its diagnostics cache honestly keys on the
         file digest plus the active rule set alone *)
      let rule_ids =
        List.sort String.compare
          (List.map
             (fun (r : Wap_lint.Rule.t) -> r.Wap_lint.Rule.id)
             (match rules with Some rs -> rs | None -> all))
      in
      let lint_one path : Wap_lint.Rule.diag list =
        Wap_obs.Trace.with_span ~cat:"lint" "lint_file"
          ~args:[ ("file", path) ]
        @@ fun () ->
        let src = read_file path in
        let compute () =
          let program, _errs =
            Wap_php.Parser.parse_string_tolerant ~file:path src
          in
          Wap_lint.Lint.run ?rules ~file:path program
        in
        match cache with
        | None -> compute ()
        | Some c ->
            let key =
              Wap_engine.Cache.key
                ("lint" :: path :: Digest.to_hex (Digest.string src) :: rule_ids)
            in
            fst (Wap_engine.Cache.memoize c ~key compute)
      in
      let diags =
        List.concat
          (Wap_engine.Pool.map_list ~jobs lint_one (expand_php_paths files))
      in
      let items =
        List.map
          (fun (d : Wap_lint.Rule.diag) ->
            {
              Wap_report.Diag.file = d.Wap_lint.Rule.loc.Wap_php.Loc.file;
              line = d.Wap_lint.Rule.loc.Wap_php.Loc.line;
              col = d.Wap_lint.Rule.loc.Wap_php.Loc.col;
              severity = Wap_lint.Rule.severity_name d.Wap_lint.Rule.severity;
              rule = d.Wap_lint.Rule.rule;
              message = d.Wap_lint.Rule.message;
            })
          diags
      in
      if json then
        print_endline (Wap_report.Json.to_string (Wap_report.Diag.to_json items))
      else begin
        if items <> [] then print_endline (Wap_report.Diag.render_all items);
        Printf.printf "%s\n" (Wap_report.Diag.summary items)
      end;
      `Ok ()
      end
    end
  in
  let doc = "Run the control-flow lint rules over PHP files." in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(ret (const run $ files $ json $ only_rules $ list_rules $ jobs_arg
               $ no_cache_arg $ cache_dir_arg $ trace_out_arg $ log_level_arg
               $ log_format_arg))

(* ------------------------------------------------------------------ *)
(* weapon-gen                                                          *)

let weapon_gen_cmd =
  let name_arg =
    Arg.(required & opt (some string) None
         & info [ "name" ] ~docv:"NAME" ~doc:"Weapon name; activation flag becomes -NAME.")
  in
  let sinks =
    Arg.(value & opt_all string []
         & info [ "sink" ] ~docv:"FN" ~doc:"Sensitive sink function (repeatable).")
  in
  let sink_methods =
    Arg.(value & opt_all (pair ~sep:':' string string) []
         & info [ "sink-method" ] ~docv:"OBJ:METHOD"
             ~doc:"Sensitive sink method, e.g. wpdb:query (repeatable).")
  in
  let sans =
    Arg.(value & opt_all string []
         & info [ "san" ] ~docv:"FN" ~doc:"Sanitization function (repeatable).")
  in
  let entries =
    Arg.(value & opt_all string []
         & info [ "entry-fn" ] ~docv:"FN" ~doc:"Extra entry-point function (repeatable).")
  in
  let fix_spec =
    Arg.(value & opt string "validate:'\""
         & info [ "fix" ] ~docv:"TEMPLATE"
             ~doc:"Fix template: php:FUNC, sanitize:CHARS (replaced by space), or validate:CHARS.")
  in
  let symptoms =
    Arg.(value & opt_all (pair ~sep:'=' string string) []
         & info [ "symptom" ] ~docv:"FN=STATIC"
             ~doc:"Dynamic symptom: user function FN behaves like static symptom STATIC.")
  in
  let out =
    Arg.(value & opt string "weapons" & info [ "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let run name sinks sink_methods sans entries fix_spec symptoms out =
    let req_fix =
      match String.index_opt fix_spec ':' with
      | Some i -> (
          let kind = String.sub fix_spec 0 i in
          let payload = String.sub fix_spec (i + 1) (String.length fix_spec - i - 1) in
          let chars = List.of_seq (String.to_seq payload) in
          match kind with
          | "php" -> Wap_weapon.Generator.With_php_sanitizer payload
          | "sanitize" ->
              Wap_weapon.Generator.With_user_sanitization
                { malicious = chars; neutralizer = " " }
          | "validate" -> Wap_weapon.Generator.With_user_validation { malicious = chars }
          | k -> failwith ("unknown fix template kind: " ^ k))
      | None -> failwith "fix template must be php:FN, sanitize:CHARS or validate:CHARS"
    in
    let request =
      {
        Wap_weapon.Generator.req_name = name;
        req_vclass = None;
        req_sources = List.map (fun f -> Wap_catalog.Catalog.Src_fn f) entries;
        req_sinks =
          List.map (fun f -> Wap_catalog.Catalog.Sink_fn (f, [])) sinks
          @ List.map (fun (o, m) -> Wap_catalog.Catalog.Sink_method (o, m)) sink_methods;
        req_sanitizers = List.map (fun f -> Wap_catalog.Catalog.San_fn f) sans;
        req_fix;
        req_dynamic_symptoms = symptoms;
      }
    in
    let weapon = Wap_weapon.Generator.generate request in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    Wap_weapon.Store.save ~dir:out weapon;
    Printf.printf "generated %s\nstored under %s/%s/\nactivate with: wap analyze --weapon %s --weapon-dir %s FILE...\n"
      (Wap_weapon.Weapon.describe weapon) out name name out;
    `Ok ()
  in
  let doc = "Generate a weapon (detector + fix + dynamic symptoms) without programming." in
  Cmd.v (Cmd.info "weapon-gen" ~doc)
    Term.(ret (const run $ name_arg $ sinks $ sink_methods $ sans $ entries
               $ fix_spec $ symptoms $ out))

(* ------------------------------------------------------------------ *)
(* corpus-gen                                                          *)

let corpus_gen_cmd =
  let out =
    Arg.(value & opt string "corpus" & info [ "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let plugins =
    Arg.(value & flag & info [ "plugins" ] ~doc:"Also write the 115 WordPress plugins.")
  in
  let projects =
    Arg.(value & opt int 0
         & info [ "projects" ] ~docv:"N"
             ~doc:"Also write $(docv) fleet projects sharing one framework \
                   layer (under $(b,projects/), for $(b,wap fleet)).")
  in
  let run out plugins projects seed =
    let ( / ) = Filename.concat in
    let mkdir d = if not (Sys.file_exists d) then Sys.mkdir d 0o755 in
    let rec mkdir_p d =
      if not (Sys.file_exists d) then begin
        mkdir_p (Filename.dirname d);
        mkdir d
      end
    in
    mkdir_p out;
    let write_pkg dir (pkg : Wap_corpus.Appgen.package) =
      let pdir = dir / (pkg.Wap_corpus.Appgen.pkg_name ^ "-" ^ pkg.Wap_corpus.Appgen.pkg_version) in
      mkdir pdir;
      List.iter
        (fun (f : Wap_corpus.Appgen.file) ->
          let path = pdir / f.Wap_corpus.Appgen.f_name in
          mkdir_p (Filename.dirname path);
          write_file path f.Wap_corpus.Appgen.f_source)
        pkg.Wap_corpus.Appgen.pkg_files
    in
    let apps = Wap_corpus.Corpus.webapps ~seed () in
    mkdir (out / "webapps");
    List.iter (fun (_, pkg) -> write_pkg (out / "webapps") pkg) apps;
    Wap_obs.Log.info "wrote web applications"
      ~fields:
        [ ("count", string_of_int (List.length apps));
          ("dir", Filename.concat out "webapps") ];
    if plugins then begin
      let ps = Wap_corpus.Corpus.plugins ~seed () in
      mkdir (out / "plugins");
      List.iter (fun (_, pkg) -> write_pkg (out / "plugins") pkg) ps;
      Wap_obs.Log.info "wrote plugins"
        ~fields:
          [ ("count", string_of_int (List.length ps));
            ("dir", Filename.concat out "plugins") ]
    end;
    if projects > 0 then begin
      let ps = Wap_corpus.Corpus.generated_projects ~seed ~count:projects () in
      mkdir (out / "projects");
      List.iter (fun (_, pkg) -> write_pkg (out / "projects") pkg) ps;
      Wap_obs.Log.info "wrote fleet projects"
        ~fields:
          [ ("count", string_of_int (List.length ps));
            ("dir", Filename.concat out "projects") ]
    end;
    `Ok ()
  in
  let doc = "Materialize the synthetic evaluation corpus on disk." in
  Cmd.v (Cmd.info "corpus-gen" ~doc)
    Term.(ret (const run $ out $ plugins $ projects $ seed_arg))

(* ------------------------------------------------------------------ *)
(* fleet                                                               *)

let fleet_cmd =
  let roots =
    Arg.(non_empty & pos_all dir []
         & info [] ~docv:"DIR"
             ~doc:"Fleet root: a directory whose subdirectories are the \
                   projects to shard across workers (a directory without \
                   subdirectories is itself a single project).")
  in
  let workers =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N" ~doc:"Worker processes to spawn.")
  in
  let worker_jobs =
    Arg.(value & opt int 1
         & info [ "worker-jobs" ] ~docv:"N"
             ~doc:"Analysis domains inside each worker (the fleet \
                   parallelizes across processes; keep this low).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the merged NDJSON report to $(docv) instead of \
                   stdout.")
  in
  let summary =
    Arg.(value & opt (some string) None
         & info [ "summary" ] ~docv:"FILE"
             ~doc:"Also write the fleet summary (throughput, cache traffic, \
                   retries) as JSON to $(docv).")
  in
  let no_summary_store =
    Arg.(value & flag
         & info [ "no-summary-store" ]
             ~doc:"Disable the content-addressed cross-project summary \
                   store (files shared between projects are then \
                   re-summarized per project).")
  in
  let quiet =
    Arg.(value & flag
         & info [ "quiet" ]
             ~doc:"Silence the periodic progress/ETA line on stderr.")
  in
  let run roots workers worker_jobs out summary no_cache cache_dir
      no_summary_store quiet log_level log_format =
    Wap_obs.Log.set_level log_level;
    Wap_obs.Log.set_format log_format;
    let dirs = Wap_fleet.Coordinator.discover roots in
    let cfg =
      {
        Wap_fleet.Coordinator.fc_workers = workers;
        fc_worker_jobs = worker_jobs;
        fc_cache_dir = (if no_cache then None else cache_dir);
        fc_summary_store = (not no_summary_store) && not no_cache;
        fc_progress = not quiet;
      }
    in
    let on_result (r : Wap_fleet.Proto.result) =
      if r.Wap_fleet.Proto.res_ok then
        Wap_obs.Log.info "project scanned"
          ~fields:
            [ ("project", r.Wap_fleet.Proto.res_project);
              ("files", string_of_int r.Wap_fleet.Proto.res_files);
              ("reported", string_of_int r.Wap_fleet.Proto.res_reported);
              ( "seconds",
                Printf.sprintf "%.3f" r.Wap_fleet.Proto.res_seconds ) ]
      else
        Wap_obs.Log.error "project failed"
          ~fields:
            [ ("project", r.Wap_fleet.Proto.res_project);
              ("error", r.Wap_fleet.Proto.res_error) ]
    in
    Wap_obs.Log.info "fleet starting"
      ~fields:
        [ ("projects", string_of_int (List.length dirs));
          ("workers", string_of_int workers) ];
    let o = Wap_fleet.Coordinator.run ~on_result cfg ~dirs in
    let merged =
      String.concat ""
        (List.map (fun l -> l ^ "\n") (Wap_fleet.Coordinator.merged_lines o))
    in
    (match out with
    | Some f -> write_file f merged
    | None -> print_string merged);
    let rp = o.Wap_fleet.Coordinator.report in
    (match summary with
    | Some f ->
        write_file f
          (Wap_report.Json.to_string
             (Wap_fleet.Coordinator.report_json rp)
          ^ "\n")
    | None -> ());
    Wap_obs.Log.info "fleet done"
      ~fields:
        [ ("projects", string_of_int rp.Wap_fleet.Coordinator.rp_projects);
          ("files", string_of_int rp.Wap_fleet.Coordinator.rp_files);
          ( "wall",
            Printf.sprintf "%.3fs" rp.Wap_fleet.Coordinator.rp_wall_seconds );
          ( "projects/s",
            Printf.sprintf "%.2f"
              rp.Wap_fleet.Coordinator.rp_projects_per_second );
          ( "dedup_hit_ratio",
            Printf.sprintf "%.2f" rp.Wap_fleet.Coordinator.rp_dedup_hit_ratio
          );
          ("retried", string_of_int rp.Wap_fleet.Coordinator.rp_retried) ];
    match rp.Wap_fleet.Coordinator.rp_failed with
    | [] -> `Ok ()
    | failed ->
        `Error
          ( false,
            Printf.sprintf "%d project(s) failed after retry: %s"
              (List.length failed)
              (String.concat ", " failed) )
  in
  let doc =
    "Shard a directory of projects across worker processes and merge the \
     per-project scan reports deterministically."
  in
  Cmd.v (Cmd.info "fleet" ~doc)
    Term.(ret (const run $ roots $ workers $ worker_jobs $ out $ summary
               $ no_cache_arg $ cache_dir_arg $ no_summary_store $ quiet
               $ log_level_arg $ log_format_arg))

(* ------------------------------------------------------------------ *)
(* experiments                                                         *)

let experiments_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Only the vulnerable packages.")
  in
  let run quick seed jobs no_cache cache_dir trace_out log_level log_format =
    let finish_obs = setup_obs trace_out log_level log_format in
    Fun.protect ~finally:finish_obs @@ fun () ->
    let module E = Wap_core.Experiments in
    let cache = make_cache ~no_cache ~cache_dir in
    print_string (E.table1 ());
    print_newline ();
    let dataset = Wap_core.Training.dataset_for ~seed Wap_core.Version.Wape in
    print_string (E.table2 ~seed ~dataset ());
    print_newline ();
    print_string (E.table3 ~seed ~dataset ());
    print_newline ();
    print_string (E.table4 ());
    print_newline ();
    let webapps = E.run_webapps ~seed ~only_vulnerable:quick ~jobs ?cache () in
    print_string (E.table5 webapps);
    print_newline ();
    print_string (E.table6 webapps);
    print_newline ();
    let plugins = E.run_plugins ~seed ~only_vulnerable:quick ~jobs ?cache () in
    print_string (E.table7 plugins);
    print_newline ();
    print_string (E.fig4 plugins);
    print_newline ();
    print_string (E.fig5 webapps plugins);
    print_newline ();
    print_string (E.confirmation_table ~seed ~packages:(if quick then 3 else 6) ());
    `Ok ()
  in
  let doc = "Regenerate the paper's evaluation tables and figures." in
  Cmd.v (Cmd.info "experiments" ~doc)
    Term.(ret (const run $ quick $ seed_arg $ jobs_arg $ no_cache_arg
               $ cache_dir_arg $ trace_out_arg $ log_level_arg
               $ log_format_arg))

(* ------------------------------------------------------------------ *)
(* train                                                               *)

let train_cmd =
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Write the data set as CSV.")
  in
  let version =
    Arg.(value & opt version_conv Wap_core.Version.Wape
         & info [ "tool-version" ] ~docv:"V" ~doc:"Data set flavour: wape or v21.")
  in
  let arff =
    Arg.(value & flag & info [ "arff" ] ~doc:"Write WEKA ARFF instead of CSV.")
  in
  let run out version seed arff =
    let d = Wap_core.Training.dataset_for ~seed version in
    Printf.printf "%s data set: %d instances (%d FP / %d RV), %d attributes\n"
      (Wap_core.Version.name version)
      (Wap_mining.Dataset.size d) (Wap_mining.Dataset.positives d)
      (Wap_mining.Dataset.negatives d)
      (Wap_mining.Attributes.paper_count d.Wap_mining.Dataset.mode);
    (match out with
    | Some path ->
        write_file path
          (if arff then Wap_mining.Dataset.to_arff d else Wap_mining.Dataset.to_csv d);
        Wap_obs.Log.info "wrote training data set" ~fields:[ ("file", path) ]
    | None -> ());
    `Ok ()
  in
  let doc = "Build (and optionally export) the predictor training data set." in
  Cmd.v (Cmd.info "train" ~doc) Term.(ret (const run $ out $ version $ seed_arg $ arff))

(* ------------------------------------------------------------------ *)
(* symptoms                                                            *)

let symptoms_cmd =
  let run () =
    print_string (Wap_core.Experiments.table1 ());
    `Ok ()
  in
  let doc = "List the symptom and attribute catalog (Table I)." in
  Cmd.v (Cmd.info "symptoms" ~doc) Term.(ret (const run $ const ()))

(* ------------------------------------------------------------------ *)
(* ir                                                                  *)

let ir_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"PHP file to lower.")
  in
  let dump =
    Arg.(value & flag
         & info [ "dump" ]
             ~doc:"Print the lowered blocks, temporaries and per-instruction \
                   taint annotations (the default — and currently only — \
                   mode).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the dump as JSON instead of text.")
  in
  let version =
    Arg.(value & opt version_conv Wap_core.Version.Wape
         & info [ "tool-version" ] ~docv:"V"
             ~doc:"Detector set whose catalog facts annotate the IR: wape or \
                   v21.")
  in
  let run file _dump json version =
    let src = read_file file in
    let program, errs = Wap_php.Parser.parse_string_tolerant ~file src in
    List.iter
      (fun (e : Wap_php.Parser.recovered_error) ->
        Wap_obs.Log.warn
          ~fields:
            [ ("file", file);
              ("loc", Wap_php.Loc.to_string e.Wap_php.Parser.err_loc) ]
          (Printf.sprintf "parse error recovered: %s" e.Wap_php.Parser.err_msg))
      errs;
    let specs =
      Wap_catalog.Catalog.specs_for (Wap_core.Version.classes version)
    in
    let body =
      Wap_ir.Lower.program ~specs:(Array.of_list specs)
        ~lookup:(Wap_catalog.Catalog.Lookup.of_specs specs)
        program
    in
    if json then
      print_endline (Wap_report.Json.to_string (Wap_ir.Dump.to_json body))
    else print_string (Wap_ir.Dump.to_string body);
    `Ok ()
  in
  let doc =
    "Dump the three-address IR a PHP file lowers to: basic-block structure, \
     temporary numbering and the source/sink/sanitizer annotations resolved \
     from the detector catalog at lowering time."
  in
  Cmd.v (Cmd.info "ir" ~doc) Term.(ret (const run $ file $ dump $ json $ version))

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

let serve_cmd =
  let version =
    Arg.(value & opt version_conv Wap_core.Version.Wape
         & info [ "tool-version" ] ~docv:"V" ~doc:"Tool configuration: wape or v21.")
  in
  let weapons =
    Arg.(value & opt_all string []
         & info [ "weapon" ] ~docv:"NAME"
             ~doc:"Activate a weapon: nosqli, hei, wpsqli, or a name stored under --weapon-dir.")
  in
  let weapon_dir =
    Arg.(value & opt (some dir) None
         & info [ "weapon-dir" ] ~docv:"DIR" ~doc:"Directory holding stored weapons.")
  in
  let sanitizers =
    Arg.(value & opt_all string []
         & info [ "sanitizer" ] ~docv:"FN"
             ~doc:"Register a user sanitization function (applies to every detector).")
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Listen on a Unix-domain socket at $(docv) instead of stdio.")
  in
  let port =
    Arg.(value & opt (some int) None
         & info [ "port" ] ~docv:"N"
             ~doc:"Listen on localhost TCP port $(docv) instead of stdio.")
  in
  let admin_port =
    Arg.(value & opt (some int) None
         & info [ "admin-port" ] ~docv:"N"
             ~doc:"Serve the admin plane (GET /metrics, /healthz, /readyz, \
                   /status, /trace) on localhost TCP port $(docv), from a \
                   dedicated domain so scrapes never wait on LSP traffic.")
  in
  let admin_socket =
    Arg.(value & opt (some string) None
         & info [ "admin-socket" ] ~docv:"PATH"
             ~doc:"Serve the admin plane on a Unix-domain socket at $(docv).")
  in
  let slow_ms =
    Arg.(value & opt (some float) None
         & info [ "slow-ms" ] ~docv:"MS"
             ~doc:"Log a warning for any request slower than $(docv) \
                   milliseconds.")
  in
  let trace_ring =
    Arg.(value & opt int 4096
         & info [ "trace-ring" ] ~docv:"N"
             ~doc:"Capacity (events per domain) of the bounded trace ring \
                   GET /trace drains; 0 disables ring tracing.  Only \
                   consulted when the admin plane is on and --trace-out is \
                   not (a batch trace file takes precedence).")
  in
  let run version weapons weapon_dir sanitizers seed jobs socket port
      admin_port admin_socket slow_ms trace_ring trace_out log_level
      log_format =
    let finish_obs = setup_obs trace_out log_level log_format in
    let weapons =
      List.map
        (fun name ->
          match name with
          | "nosqli" -> Wap_weapon.Generator.nosqli ()
          | "hei" -> Wap_weapon.Generator.hei ()
          | "wpsqli" -> Wap_weapon.Generator.wpsqli ()
          | name -> (
              match weapon_dir with
              | Some dir -> Wap_weapon.Store.load ~dir ~name
              | None -> failwith ("unknown weapon " ^ name ^ " (no --weapon-dir)")))
        weapons
    in
    let extra_sanitizers = List.map (fun fn -> (None, fn)) sanitizers in
    match (socket, port, admin_port, admin_socket) with
    | Some _, Some _, _, _ ->
        finish_obs ();
        `Error (false, "--socket and --port are mutually exclusive")
    | _, _, Some _, Some _ ->
        finish_obs ();
        `Error (false, "--admin-port and --admin-socket are mutually exclusive")
    | _ ->
        (* a peer (LSP client or admin scraper) dropping its connection
           mid-write must surface as EPIPE, not kill the daemon *)
        (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
         with Invalid_argument _ -> ());
        let admin_on = admin_port <> None || admin_socket <> None in
        if admin_on then begin
          (* daemon logs carry wall-clock timestamps so they correlate
             with scrapes and traces *)
          Wap_obs.Log.set_timestamps true;
          (* without a batch --trace-out, trace into the bounded ring
             GET /trace drains *)
          if Wap_obs.Trace.global () = None && trace_ring > 0 then
            Wap_obs.Trace.set_global
              (Some (Wap_obs.Trace.create ~ring_capacity:trace_ring ()))
        end;
        let tool =
          Wap_core.Tool.create ~seed ~weapons ~extra_sanitizers version
        in
        let server = Wap_serve.Server.create ~jobs ?slow_ms tool in
        let admin_cleanup =
          if not admin_on then fun () -> ()
          else begin
            let src = Wap_serve.Server.admin_source server in
            match (admin_port, admin_socket) with
            | Some p, None ->
                let sock = Wap_serve.Admin.listen_tcp ~port:p in
                Wap_serve.Admin.spawn src sock;
                Wap_obs.Log.info
                  ~fields:[ ("admin_port", string_of_int p) ]
                  "admin plane listening";
                fun () -> (try Unix.close sock with _ -> ())
            | None, Some path ->
                let sock = Wap_serve.Admin.listen_unix ~path in
                Wap_serve.Admin.spawn src sock;
                Wap_obs.Log.info
                  ~fields:[ ("admin_socket", path) ]
                  "admin plane listening";
                fun () ->
                  (try Unix.close sock with _ -> ());
                  (try Unix.unlink path with _ -> ())
            | _ -> fun () -> ()
          end
        in
        (match (socket, port) with
        | Some path, None -> Wap_serve.Server.run_unix_socket server ~path
        | None, Some port -> Wap_serve.Server.run_tcp server ~port
        | _ -> Wap_serve.Server.run_stdio server);
        admin_cleanup ();
        finish_obs ();
        `Ok ()
  in
  let doc =
    "Run the LSP diagnostics daemon: analyzes the documents an editor opens \
     with the session engine, publishes findings as diagnostics after every \
     change (re-analyzing only the edited file), and offers the fixer's \
     sanitization/validation templates as quick fixes.  Speaks the Language \
     Server Protocol over stdio by default (logs go to stderr); --socket or \
     --port select a socket transport.  --admin-port/--admin-socket add an \
     HTTP admin plane (Prometheus /metrics, /healthz, /readyz, /status and a \
     draining Chrome-trace /trace) served from a dedicated domain; wap top \
     renders it as a live terminal view."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(ret (const run $ version $ weapons $ weapon_dir $ sanitizers
               $ seed_arg $ jobs_arg $ socket $ port $ admin_port
               $ admin_socket $ slow_ms $ trace_ring $ trace_out_arg
               $ log_level_arg $ log_format_arg))

(* ------------------------------------------------------------------ *)
(* top                                                                 *)

(* A one-shot HTTP GET against the daemon's admin plane (loopback TCP
   or Unix socket).  Hand-rolled on purpose: the admin server speaks
   Connection: close, so "read to EOF after the blank line" is the
   whole client. *)
let admin_get ~(connect : unit -> Unix.file_descr) (path : string) :
    (int * string, string) result =
  match connect () with
  | exception e -> Error (Printexc.to_string e)
  | fd -> (
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let finally () =
        (try close_out_noerr oc with _ -> ());
        (try close_in_noerr ic with _ -> ());
        try Unix.close fd with _ -> ()
      in
      Fun.protect ~finally @@ fun () ->
      Printf.fprintf oc "GET %s HTTP/1.1\r\nHost: wap\r\nConnection: close\r\n\r\n"
        path;
      flush oc;
      match input_line ic with
      | exception End_of_file -> Error "empty response"
      | status_line -> (
          match String.split_on_char ' ' (String.trim status_line) with
          | _http :: code :: _ -> (
              match int_of_string_opt code with
              | None -> Error ("malformed status line: " ^ status_line)
              | Some code ->
                  (* skip headers *)
                  let rec headers () =
                    match input_line ic with
                    | exception End_of_file -> ()
                    | "" | "\r" -> ()
                    | _ -> headers ()
                  in
                  headers ();
                  let body = Buffer.create 4096 in
                  (try
                     while true do
                       Buffer.add_channel body ic 1
                     done
                   with End_of_file -> ());
                  Ok (code, Buffer.contents body))
          | _ -> Error ("malformed status line: " ^ status_line)))

(* Rebuild per-method histogram snapshots from scraped
   wap_serve_request_seconds_* samples, so quantiles are computed
   client-side from the same buckets Prometheus would use. *)
let hists_of_samples (samples : Wap_obs.Expo.sample list) ~(base : string) :
    (string * Wap_obs.Metrics.hist_snapshot) list =
  let tbl : (string, (float * float) list ref * float ref * int ref) Hashtbl.t
      =
    Hashtbl.create 8
  in
  let entry m =
    match Hashtbl.find_opt tbl m with
    | Some e -> e
    | None ->
        let e = (ref [], ref 0., ref 0) in
        Hashtbl.add tbl m e;
        e
  in
  List.iter
    (fun (s : Wap_obs.Expo.sample) ->
      let meth =
        Option.value
          (List.assoc_opt "method" s.Wap_obs.Expo.s_labels)
          ~default:""
      in
      let buckets, sum, count = entry meth in
      if s.Wap_obs.Expo.s_name = base ^ "_bucket" then (
        match List.assoc_opt "le" s.Wap_obs.Expo.s_labels with
        | Some "+Inf" | None -> ()
        | Some le -> (
            match float_of_string_opt le with
            | Some b -> buckets := (b, s.Wap_obs.Expo.s_value) :: !buckets
            | None -> ()))
      else if s.Wap_obs.Expo.s_name = base ^ "_sum" then
        sum := s.Wap_obs.Expo.s_value
      else if s.Wap_obs.Expo.s_name = base ^ "_count" then
        count := int_of_float s.Wap_obs.Expo.s_value)
    samples;
  Hashtbl.fold
    (fun meth (buckets, sum, count) acc ->
      if !count = 0 then acc
      else begin
        let sorted = List.sort compare !buckets in
        let bounds = Array.of_list (List.map fst sorted) in
        (* cumulative scrape counts back to per-bucket counts, plus the
           overflow slot *)
        let counts = Array.make (Array.length bounds + 1) 0 in
        let prev = ref 0 in
        List.iteri
          (fun i (_, cum) ->
            let cum = int_of_float cum in
            counts.(i) <- max 0 (cum - !prev);
            prev := cum)
          sorted;
        counts.(Array.length bounds) <- max 0 (!count - !prev);
        ( meth,
          {
            Wap_obs.Metrics.h_buckets = bounds;
            h_counts = counts;
            h_count = !count;
            h_sum = !sum;
          } )
        :: acc
      end)
    tbl []
  |> List.sort compare

let top_cmd =
  let port =
    Arg.(value & opt (some int) None
         & info [ "port" ] ~docv:"N"
             ~doc:"Admin port of the daemon (its --admin-port).")
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Admin Unix socket of the daemon (its --admin-socket).")
  in
  let interval =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~docv:"SECONDS"
             ~doc:"Seconds between polls.")
  in
  let once =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:"Poll once, print the view without clearing the screen, \
                   and exit (what the smoke test runs).")
  in
  let run port socket interval once =
    let connect =
      match (port, socket) with
      | Some n, None ->
          Ok
            (fun () ->
              let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
              Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, n));
              fd)
      | None, Some path ->
          Ok
            (fun () ->
              let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
              Unix.connect fd (Unix.ADDR_UNIX path);
              fd)
      | _ -> Error "exactly one of --port or --socket is required"
    in
    match connect with
    | Error e -> `Error (false, e)
    | Ok connect ->
        let module Tbl = Wap_report.Table in
        let module Json = Wap_report.Json in
        (* previous poll's (time, per-method request totals), for rates *)
        let prev : (float * (string * float) list) option ref = ref None in
        let render () =
          match (admin_get ~connect "/status", admin_get ~connect "/metrics")
          with
          | Error e, _ | _, Error e -> Error e
          | Ok (sc, _), Ok (mc, _) when sc <> 200 || mc <> 200 ->
              Error (Printf.sprintf "admin plane answered %d/%d" sc mc)
          | Ok (_, status_body), Ok (_, metrics_body) -> (
              match
                (Json.of_string status_body, Wap_obs.Expo.parse_text metrics_body)
              with
              | Error e, _ -> Error ("bad /status JSON: " ^ e)
              | _, Error e -> Error ("bad /metrics document: " ^ e)
              | Ok status, Ok parsed ->
                  let now = Unix.gettimeofday () in
                  let samples = parsed.Wap_obs.Expo.p_samples in
                  let int_field k =
                    match Json.member k status with
                    | Some (Json.Int n) -> string_of_int n
                    | _ -> "n/a"
                  in
                  let float_field k =
                    match Json.member k status with
                    | Some (Json.Float f) -> f
                    | Some (Json.Int n) -> float_of_int n
                    | _ -> nan
                  in
                  let requests_by_method =
                    List.filter_map
                      (fun (s : Wap_obs.Expo.sample) ->
                        if s.Wap_obs.Expo.s_name = "wap_serve_requests_total"
                        then
                          Some
                            ( Option.value
                                (List.assoc_opt "method"
                                   s.Wap_obs.Expo.s_labels)
                                ~default:"",
                              s.Wap_obs.Expo.s_value )
                        else None)
                      samples
                  in
                  let total l = List.fold_left (fun a (_, v) -> a +. v) 0. l in
                  let rate =
                    match !prev with
                    | Some (t0, prev_reqs) when now > t0 ->
                        Printf.sprintf "%.1f"
                          ((total requests_by_method -. total prev_reqs)
                          /. (now -. t0))
                    | _ -> "n/a"
                  in
                  prev := Some (now, requests_by_method);
                  let ratio =
                    let r = float_field "cache_hit_ratio" in
                    if Float.is_nan r then "n/a" else Tbl.pctf r
                  in
                  let uptime =
                    let u = float_field "uptime_seconds" in
                    if Float.is_nan u then "n/a"
                    else Printf.sprintf "%.0fs" u
                  in
                  let overview =
                    Tbl.make ~title:"wap serve"
                      ~header:[ "fact"; "value" ]
                      [
                        [ "uptime"; uptime ];
                        [ "requests/s"; rate ];
                        [ "requests"; int_field "requests" ];
                        [ "errors"; int_field "errors" ];
                        [ "open documents"; int_field "open_documents" ];
                        [ "session files"; int_field "session_files" ];
                        [ "candidates"; int_field "session_candidates" ];
                        [ "generation"; int_field "generation" ];
                        [ "last edit reanalyzed"; int_field "last_reanalyzed" ];
                        [ "cache hit ratio"; ratio ];
                        [ "stale events"; int_field "stale_events" ];
                        [ "rss bytes"; int_field "rss_bytes" ];
                      ]
                  in
                  let q_ms h q =
                    let v = Wap_obs.Metrics.quantile_of_snapshot h q in
                    if Float.is_nan v then "n/a"
                    else Printf.sprintf "%.3f" (1e3 *. v)
                  in
                  let lat_rows =
                    hists_of_samples samples ~base:"wap_serve_request_seconds"
                    |> List.map (fun (meth, h) ->
                           [
                             (if meth = "" then "(all)" else meth);
                             string_of_int h.Wap_obs.Metrics.h_count;
                             q_ms h 0.5;
                             q_ms h 0.95;
                           ])
                  in
                  let latency =
                    Tbl.make ~title:"request latency (ms)"
                      ~header:[ "method"; "count"; "p50"; "p95" ]
                      lat_rows
                  in
                  Ok (Tbl.render overview ^ "\n" ^ Tbl.render latency))
        in
        let rec loop () =
          match render () with
          | Error e -> `Error (false, e)
          | Ok view ->
              if once then begin
                print_string view;
                `Ok ()
              end
              else begin
                (* clear + home, then the fresh frame *)
                print_string "\027[2J\027[H";
                print_string view;
                flush stdout;
                Unix.sleepf interval;
                loop ()
              end
        in
        loop ()
  in
  let doc =
    "Live terminal view of a running wap serve daemon: polls its admin \
     plane (/status and /metrics) and renders requests/s, per-method p50/p95 \
     latency, cache hit ratio and last-edit reanalysis counts.  Point it at \
     the daemon's --admin-port or --admin-socket; --once prints a single \
     frame for scripting."
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(ret (const run $ port $ socket $ interval $ once))

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)

let fuzz_cmd =
  let iterations =
    Arg.(value & opt int 500
         & info [ "iterations" ] ~docv:"N"
             ~doc:"Number of random programs to generate and check.")
  in
  let fuzz_seed =
    Arg.(value & opt int 2016
         & info [ "seed" ] ~docv:"N"
             ~doc:"Generator seed; one (seed, iteration) pair always \
                   regenerates the same program.")
  in
  let oracle =
    Arg.(value & opt_all string []
         & info [ "oracle" ] ~docv:"NAME"
             ~doc:"Oracle to check (repeatable; default: all of \
                   lexer-totality, printer-fixpoint, scan-determinism, \
                   scan-fused-equiv, scan-ir-equiv, sanitizer-monotonicity, \
                   fixer-soundness).")
  in
  let out_seed_dir =
    Arg.(value & opt string "fuzz-seeds"
         & info [ "out-seed-dir" ] ~docv:"DIR"
             ~doc:"Directory where shrunk reproducers of violations are \
                   written.")
  in
  let max_size =
    Arg.(value & opt int 10
         & info [ "max-size" ] ~docv:"N"
             ~doc:"Top-level statement bound per generated program.")
  in
  let max_failures =
    Arg.(value & opt int 5
         & info [ "max-failures" ] ~docv:"N"
             ~doc:"Stop fuzzing after this many violations.")
  in
  let run iterations seed oracle_names out_seed_dir max_size max_failures
      trace_out log_level log_format =
    let finish_obs = setup_obs trace_out log_level log_format in
    let unknown =
      List.filter (fun n -> Wap_fuzz.Oracle.by_name n = None) oracle_names
    in
    if unknown <> [] then begin
      finish_obs ();
      `Error
        ( false,
          Printf.sprintf "unknown oracle %s (known: %s)"
            (String.concat ", " unknown)
            (String.concat ", " Wap_fuzz.Oracle.names) )
    end
    else begin
      let oracles =
        match oracle_names with
        | [] -> Wap_fuzz.Oracle.all
        | names -> List.filter_map Wap_fuzz.Oracle.by_name names
      in
      let config =
        {
          Wap_fuzz.Driver.seed;
          iterations;
          max_stmts = max_size;
          oracles;
          out_seed_dir = Some out_seed_dir;
          max_failures;
          shrink_budget = 400;
        }
      in
      let on_progress done_ total =
        if done_ mod 250 = 0 || done_ = total then
          Wap_obs.Log.info "fuzz progress"
            ~fields:
              [ ("cases", string_of_int done_); ("of", string_of_int total) ]
      in
      let report = Wap_fuzz.Driver.run ~on_progress config in
      finish_obs ();
      Printf.printf "fuzz: %d cases, seed %d, oracles [%s]: %d violation(s)\n"
        report.Wap_fuzz.Driver.cases seed
        (String.concat ", "
           (List.map (fun (o : Wap_fuzz.Oracle.t) -> o.name) oracles))
        (List.length report.Wap_fuzz.Driver.failures);
      if report.Wap_fuzz.Driver.failures = [] then `Ok ()
      else begin
        List.iter
          (fun (f : Wap_fuzz.Driver.failure) ->
            Printf.printf "\n%s (iteration %d): %s\n" f.fl_oracle
              f.fl_iteration f.fl_message;
            (match f.fl_seed_file with
            | Some path -> Printf.printf "reproducer written to %s\n" path
            | None -> ());
            print_string "--- shrunk reproducer ---\n";
            print_string f.fl_source;
            if String.length f.fl_source > 0
               && f.fl_source.[String.length f.fl_source - 1] <> '\n'
            then print_newline ())
          report.Wap_fuzz.Driver.failures;
        exit 1
      end
    end
  in
  let doc =
    "Fuzz the pipeline with random PHP programs against differential \
     oracles (lexer totality, printer/parser fixpoint, scan determinism, \
     fused/per-spec and IR/AST scan equivalence, sanitizer monotonicity, \
     fixer soundness)."
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(ret (const run $ iterations $ fuzz_seed $ oracle $ out_seed_dir
               $ max_size $ max_failures $ trace_out_arg $ log_level_arg
               $ log_format_arg))

let main =
  let doc = "modular, extensible static analysis for PHP web applications" in
  let info = Cmd.info "wap" ~version:"3.0-repro" ~doc in
  Cmd.group info
    [ analyze_cmd; lint_cmd; weapon_gen_cmd; corpus_gen_cmd; fleet_cmd;
      experiments_cmd; train_cmd; symptoms_cmd; ir_cmd; fuzz_cmd; serve_cmd;
      top_cmd ]

(* hidden fleet-worker mode: when spawned by the coordinator as
   [wap __fleet-worker], run the worker loop and exit before cmdliner
   ever sees the argv *)
let () = Wap_fleet.Worker.maybe_main ()
let () = exit (Cmd.eval main)
