(** Dynamic confirmation: replay each finding with an attack payload
    (the mechanized version of the paper's "all were confirmed by us
    manually", Section V-B).

    The replay runs the real sanitizer/validator semantics through a
    bounded PHP evaluator: a confirmed finding means the payload's
    active characters reached the sink; a refuted one means the flow
    neutralized them.

    Run with: [dune exec examples/confirm_findings.exe] *)

let app =
  {php|<?php
// 1. plainly exploitable
$q = $_GET['q'];
mysql_query("SELECT * FROM posts WHERE title = '$q'");

// 2. the tool flags it (escape() is unknown), but the replay refutes it
function escape($value) {
    $out = '';
    for ($i = 0; $i < strlen($value); $i++) {
        $c = $value[$i];
        if ($c != "'" && $c != '"' && $c != '\\') {
            $out = $out . $c;
        }
    }
    return $out;
}
$name = escape($_POST['name']);
mysql_query("SELECT * FROM people WHERE name = '$name'");

// 3. guarded: predicted FP and indeed not reproducible
$id = $_GET['id'];
if (!ctype_digit($id)) {
    die('bad id');
}
mysql_query('SELECT * FROM items WHERE id = ' . $id);

// 4. header injection, exploitable
header('Location: ' . $_GET['back']);
|php}

let () =
  print_endline "=== dynamic confirmation of findings ===\n";
  let tool = Wap_core.Tool.create ~seed:2016 Wap_core.Version.Wape in
  let result =
    (Wap_core.Tool.Scan.run tool (Wap_core.Tool.Scan.request [ ("app.php", app) ]))
      .Wap_core.Tool.Scan.result
  in
  let program = Wap_php.Parser.parse_string ~file:"app.php" app in
  List.iter
    (fun (f : Wap_core.Tool.finding) ->
      let c = f.Wap_core.Tool.candidate in
      let verdict = Wap_confirm.Confirm.confirm_candidate ~program c in
      Printf.printf "%-5s %-55s -> %s\n"
        (if f.Wap_core.Tool.predicted_fp then "FP" else "VULN")
        (Wap_taint.Trace.summary c)
        (match verdict with
        | Wap_confirm.Confirm.Confirmed -> "EXPLOIT CONFIRMED"
        | Wap_confirm.Confirm.Not_confirmed -> "exploit not reproduced"
        | Wap_confirm.Confirm.Unsupported -> "not replayable"))
    result.Wap_core.Tool.findings;
  print_newline ();
  (* the same machinery at corpus scale *)
  print_endline "--- corpus-scale confirmation (3 packages) ---";
  let c = Wap_core.Experiments.run_confirmation ~seed:2016 ~packages:3 () in
  Printf.printf
    "reported vulnerabilities: %d confirmed, %d refuted, %d not replayable\n"
    c.Wap_core.Experiments.cf_reported_confirmed
    c.Wap_core.Experiments.cf_reported_refuted
    c.Wap_core.Experiments.cf_reported_unsupported;
  Printf.printf
    "predicted false positives: %d confirmed (should be 0), %d refuted, %d not replayable\n"
    c.Wap_core.Experiments.cf_fps_confirmed c.Wap_core.Experiments.cf_fps_refuted
    c.Wap_core.Experiments.cf_fps_unsupported
