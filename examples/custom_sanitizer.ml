(** The extensibility experiment of Section V-A: an application ships
    its own sanitization function ([escape]) that no generic tool can
    know about.  WAPe reports those flows as vulnerabilities until the
    user feeds [escape] to the tool as an external sanitization
    function — then the reports disappear, with zero code changes.

    Run with: [dune exec examples/custom_sanitizer.exe] *)

let app_source =
  {php|<?php
// the application's home-grown sanitizer (vfront's "escape")
function escape($value) {
    $out = '';
    for ($i = 0; $i < strlen($value); $i++) {
        $c = $value[$i];
        if ($c != "'" && $c != '"' && $c != '\\') {
            $out = $out . $c;
        }
    }
    return $out;
}

// flow 1: protected by escape() — a false report for a generic tool
$name = escape($_POST['name']);
mysql_query("SELECT * FROM people WHERE name = '$name'");

// flow 2: genuinely vulnerable
$city = $_POST['city'];
mysql_query("SELECT * FROM people WHERE city = '$city'");
|php}

let print_run label tool =
  let result =
    (Wap_core.Tool.Scan.run tool
       (Wap_core.Tool.Scan.request [ ("vfront.php", app_source) ]))
      .Wap_core.Tool.Scan.result
  in
  Printf.printf "%s: %d reported\n" label (List.length result.Wap_core.Tool.reported);
  List.iter
    (fun (f : Wap_core.Tool.finding) ->
      if not f.Wap_core.Tool.predicted_fp then
        Printf.printf "  VULN %s\n" (Wap_taint.Trace.summary f.Wap_core.Tool.candidate))
    result.Wap_core.Tool.findings

let () =
  print_endline "=== user sanitization functions (Section V-A) ===\n";
  let plain = Wap_core.Tool.create ~seed:2016 Wap_core.Version.Wape in
  print_run "without knowledge of escape()" plain;
  print_newline ();
  let informed =
    Wap_core.Tool.create ~seed:2016
      ~extra_sanitizers:[ (Some Wap_catalog.Vuln_class.Sqli, "escape") ]
      Wap_core.Version.Wape
  in
  print_run "with escape() registered as a SQLI sanitizer" informed;
  print_endline "\nOnly the genuinely vulnerable flow remains reported."
