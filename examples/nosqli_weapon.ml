(** Creating a weapon (Section III-D / IV-C1): the NoSQL-injection
    detector for MongoDB, generated from plain configuration data — no
    programming — then saved, reloaded and used on a MongoDB-backed
    application.

    Run with: [dune exec examples/nosqli_weapon.exe] *)

let mongo_app =
  {php|<?php
$m = new MongoClient();
$db = $m->selectDB('shop');
$collection = $db->users;

// vulnerable: attacker-controlled filter reaches find()
$login = $_POST['login'];
$doc = $collection->find(array('login' => $login));

// vulnerable through string building
$sid = $_COOKIE['sid'];
$collection->remove(array('session' => $sid));

// protected: the weapon's sanitization function kills the flow
$safe = mysql_real_escape_string($_POST['q']);
$doc2 = $collection->findOne(array('q' => $safe));
|php}

let () =
  print_endline "=== weapon generation: -nosqli ===\n";

  (* the configuration a user would supply: sinks, sanitizer, fix *)
  let request = Wap_weapon.Generator.nosqli_request in
  let weapon = Wap_weapon.Generator.generate request in
  print_endline (Wap_weapon.Weapon.describe weapon);

  (* weapons round-trip through their on-disk ep/ss/san representation *)
  let dir = Filename.temp_file "wap" "weapons" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Wap_weapon.Store.save ~dir weapon;
  let weapon = Wap_weapon.Store.load ~dir ~name:"nosqli" in
  Printf.printf "reloaded from %s\n\n" dir;

  (* activate it: the tool gains a 16th detector *)
  let tool = Wap_core.Tool.create ~seed:2016 ~weapons:[ weapon ] Wap_core.Version.Wape in
  let result =
    (Wap_core.Tool.Scan.run tool
       (Wap_core.Tool.Scan.request [ ("mongo.php", mongo_app) ]))
      .Wap_core.Tool.Scan.result
  in
  List.iter
    (fun (f : Wap_core.Tool.finding) ->
      Printf.printf "%-5s %s\n"
        (if f.Wap_core.Tool.predicted_fp then "FP" else "VULN")
        (Wap_taint.Trace.summary f.Wap_core.Tool.candidate))
    result.Wap_core.Tool.findings;

  (* the weapon also carries its fix *)
  let fixed, _ =
    Wap_fixer.Corrector.correct_source ~file:"mongo.php" mongo_app
      result.Wap_core.Tool.reported
  in
  print_endline "\n--- corrected source (weapon fix applied at the sinks) ---";
  print_string fixed
