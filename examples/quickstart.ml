(** Quickstart: analyze a vulnerable PHP login page, triage the
    candidates with the false-positive predictor, and print the
    corrected source.

    Run with: [dune exec examples/quickstart.exe] *)

let vulnerable_login =
  {php|<?php
// A small login handler with classic mistakes.
$user = $_POST['user'];
$style = $_GET['style'];

// this one is guarded: the predictor should call it a false positive
$page = $_GET['page'];
if (!is_numeric($page)) {
    die('page must be a number');
}

$q = "SELECT id, name FROM users WHERE login = '$user' LIMIT 1";
$result = mysql_query($q);

mysql_query("SELECT * FROM stats WHERE page = " . $page);

echo "<body class='" . $style . "'>";

header("X-Back: " . $_SERVER['HTTP_REFERER']);
|php}

let () =
  print_endline "=== WAP quickstart ===\n";
  (* 1. create the extended tool (15 vulnerability classes); training of
     the false-positive predictor happens here, deterministically *)
  let tool = Wap_core.Tool.create ~seed:2016 Wap_core.Version.Wape in

  (* 2. run the code analyzer + predictor *)
  let result =
    (Wap_core.Tool.Scan.run tool
       (Wap_core.Tool.Scan.request [ ("login.php", vulnerable_login) ]))
      .Wap_core.Tool.Scan.result
  in
  Printf.printf "candidates found by the taint analyzer: %d\n\n"
    (List.length result.Wap_core.Tool.candidates);
  List.iter
    (fun (f : Wap_core.Tool.finding) ->
      Printf.printf "%-5s %s\n      symptoms: [%s]\n"
        (if f.Wap_core.Tool.predicted_fp then "FP" else "VULN")
        (Wap_taint.Trace.summary f.Wap_core.Tool.candidate)
        (String.concat "; " f.Wap_core.Tool.symptoms))
    result.Wap_core.Tool.findings;

  (* 3. let the code corrector fix what remains *)
  let fixed, report =
    Wap_fixer.Corrector.correct_source ~file:"login.php" vulnerable_login
      result.Wap_core.Tool.reported
  in
  Printf.printf "\nfixes applied: %d\n" (List.length report.Wap_fixer.Corrector.applied);
  List.iter
    (fun ((fix : Wap_fixer.Fix.t), loc) ->
      Printf.printf "  %s at line %d\n" fix.Wap_fixer.Fix.fix_name loc.Wap_php.Loc.line)
    report.Wap_fixer.Corrector.applied;
  print_endline "\n--- corrected source ---";
  print_string fixed
