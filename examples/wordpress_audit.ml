(** Auditing WordPress plugins with the [-wpsqli] weapon
    (Section IV-C3 / V-B).

    WordPress plugins reach the database through [$wpdb] and validate
    input with WordPress helper functions; the stock SQLI detector knows
    none of them.  The wpsqli weapon supplies the [$wpdb] sinks, the
    [prepare]/[esc_sql] sanitizers, and WP validation helpers as dynamic
    symptoms.

    Run with: [dune exec examples/wordpress_audit.exe] *)

let plugin_source =
  {php|<?php
/*
 * Plugin Name: Tiny Shop
 */
function tiny_shop_lookup() {
    global $wpdb;
    // vulnerable: raw request data in a $wpdb query
    $pid = $_GET['pid'];
    $rows = $wpdb->get_results("SELECT * FROM {$wpdb->prefix}shop WHERE id = $pid");
    return $rows;
}

function tiny_shop_save() {
    global $wpdb;
    // safe: $wpdb->prepare is the sanitizer
    $name = $_POST['name'];
    $wpdb->query($wpdb->prepare("INSERT INTO wp_shop (name) VALUES (%s)", $name));
}

function tiny_shop_delete() {
    global $wpdb;
    // false-positive candidate: absint() is a WordPress validation
    // helper, registered as a dynamic symptom of the weapon
    $id = absint($_GET['id']);
    $wpdb->query("DELETE FROM wp_shop WHERE id = $id");
}
|php}

let () =
  print_endline "=== WordPress plugin audit with -wpsqli ===\n";
  let weapon = Wap_weapon.Generator.wpsqli () in
  Printf.printf "%s\n\n" (Wap_weapon.Weapon.describe weapon);
  let tool = Wap_core.Tool.create ~seed:2016 ~weapons:[ weapon ] Wap_core.Version.Wape in

  print_endline "--- single plugin ---";
  let result =
    (Wap_core.Tool.Scan.run tool
       (Wap_core.Tool.Scan.request [ ("tiny-shop.php", plugin_source) ]))
      .Wap_core.Tool.Scan.result
  in
  List.iter
    (fun (f : Wap_core.Tool.finding) ->
      Printf.printf "%-5s %s   symptoms=[%s]\n"
        (if f.Wap_core.Tool.predicted_fp then "FP" else "VULN")
        (Wap_taint.Trace.summary f.Wap_core.Tool.candidate)
        (String.concat ";" f.Wap_core.Tool.symptoms))
    result.Wap_core.Tool.findings;

  (* scale up: the synthetic 115-plugin corpus of the evaluation *)
  print_endline "\n--- the 23 vulnerable plugins of the evaluation corpus ---";
  let plugins = Wap_corpus.Corpus.vulnerable_plugins ~seed:2016 () in
  let total = ref 0 in
  List.iter
    (fun ((profile : Wap_corpus.Profiles.plugin_profile), pkg) ->
      let r =
        (Wap_core.Tool.Scan.run tool (Wap_core.Tool.Scan.request_of_package pkg))
          .Wap_core.Tool.Scan.result
      in
      let score = Wap_core.Aggregate.score_package r in
      total := !total + score.Wap_core.Aggregate.real_reported;
      Printf.printf "%-42s %-8s %3d vulnerability(ies)\n"
        profile.Wap_corpus.Profiles.pp_name profile.Wap_corpus.Profiles.pp_version
        score.Wap_core.Aggregate.real_reported)
    plugins;
  Printf.printf "total: %d (paper: 169 across the same plugins)\n" !total
