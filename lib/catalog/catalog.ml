(** Entry points, sensitive sinks and sanitization functions per
    vulnerability class.

    In the restructured WAP these three sets live in external files (the
    ep/ss/san files of Fig. 2) so users can extend a detector without
    recompiling; {!Spec_file} provides that serialization.  This module
    defines the shipped defaults. *)

type source =
  | Src_superglobal of string  (** e.g. [_GET]: any [$_GET[...]] access *)
  | Src_fn of string
      (** a function whose return value is attacker-controlled, e.g.
          database fetch results for stored XSS *)
[@@deriving show, eq, ord]

type sink =
  | Sink_fn of string * int list
      (** named function; the int list is the set of dangerous argument
          positions (empty = any argument) *)
  | Sink_method of string * string
      (** [obj, method]: method call on a named variable, e.g.
          [$wpdb->query] — obj is matched without the [$] *)
  | Sink_echo  (** [echo] / [print] / [printf] output constructs *)
  | Sink_include  (** [include] / [require] constructs *)
[@@deriving show, eq, ord]

type sanitizer =
  | San_fn of string
  | San_method of string * string  (** e.g. [$wpdb->prepare] *)
[@@deriving show, eq, ord]

type spec = {
  vclass : Vuln_class.t;
  submodule : Submodule.t;
  sources : source list;
  sinks : sink list;
  sanitizers : sanitizer list;
}
[@@deriving show, eq]

(** The superglobal arrays every detector treats as tainted input. *)
let default_superglobals =
  [ "_GET"; "_POST"; "_COOKIE"; "_REQUEST"; "_SERVER"; "_FILES" ]

let default_sources = List.map (fun s -> Src_superglobal s) default_superglobals

let fn ?(args = []) name = Sink_fn (name, args)

(* ------------------------------------------------------------------ *)
(* Per-class defaults.                                                 *)

let sql_write_sinks =
  [ fn "mysql_query"; fn "mysql_unbuffered_query"; fn "mysql_db_query";
    fn "mysqli_query" ~args:[ 1 ]; fn "mysqli_real_query" ~args:[ 1 ];
    fn "mysqli_multi_query" ~args:[ 1 ];
    Sink_method ("mysqli", "query"); Sink_method ("mysqli", "multi_query");
    Sink_method ("db", "query"); Sink_method ("pdo", "query");
    Sink_method ("pdo", "exec");
    fn "pg_query"; fn "pg_send_query"; fn "sqlite_query"; fn "sqlite_exec" ]

let sql_sanitizers =
  [ San_fn "mysql_real_escape_string"; San_fn "mysql_escape_string";
    San_fn "mysqli_real_escape_string"; San_fn "mysqli_escape_string";
    San_method ("mysqli", "real_escape_string");
    San_fn "pg_escape_string"; San_fn "sqlite_escape_string";
    San_fn "addslashes" ]

let xss_sanitizers =
  [ San_fn "htmlspecialchars"; San_fn "htmlentities"; San_fn "strip_tags";
    San_fn "urlencode"; San_fn "rawurlencode" ]

let fetch_sources =
  (* functions whose results carry data previously stored by users: the
     secondary entry points of stored XSS *)
  [ Src_fn "mysql_fetch_array"; Src_fn "mysql_fetch_assoc"; Src_fn "mysql_fetch_row";
    Src_fn "mysql_fetch_object"; Src_fn "mysql_result";
    Src_fn "mysqli_fetch_array"; Src_fn "mysqli_fetch_assoc"; Src_fn "mysqli_fetch_row";
    Src_fn "pg_fetch_array"; Src_fn "pg_fetch_assoc"; Src_fn "pg_fetch_row";
    Src_fn "file_get_contents"; Src_fn "fgets"; Src_fn "fread" ]

(* file_get_contents / file_put_contents are owned by the CS detector
   (Table IV); leaving them out here keeps the "Files" and "CS" report
   groups disjoint. *)
let file_sinks =
  [ fn "fopen"; fn "file"; fn "readfile"; fn "unlink";
    fn "copy"; fn "rename"; fn "mkdir"; fn "rmdir"; fn "opendir"; fn "scandir";
    fn "glob" ]

let path_sanitizers = [ San_fn "basename"; San_fn "realpath"; San_fn "pathinfo" ]

(** The tool's own fix functions count as sanitizers: corrected code
    must not be re-flagged.  Names match {!Wap_fixer.Fix.stock}. *)
let stock_fix_name (vclass : Vuln_class.t) : string =
  match vclass with
  | Sqli -> "san_sqli"
  | Xss_reflected -> "san_out"
  | Xss_stored -> "san_wdata"
  | Osci -> "san_osci"
  | Phpci -> "san_eval"
  | Rfi | Lfi | Dt_pt | Scd -> "san_mix"
  | Ldapi -> "san_ldap"
  | Xpathi -> "san_xpath"
  | Nosqli -> "san_nosqli"
  | Hi | Ei -> "san_hei"
  | Cs -> "san_write"
  | Sf -> "san_sf"
  | Wp_sqli -> "san_wpsqli"
  | Custom name -> "san_" ^ name

let default_spec (vclass : Vuln_class.t) : spec =
  let mk ?(sources = default_sources) ?(sinks = []) ?(sanitizers = []) () =
    { vclass; submodule = Submodule.of_class vclass; sources; sinks;
      sanitizers = San_fn (stock_fix_name vclass) :: sanitizers }
  in
  match vclass with
  | Sqli -> mk ~sinks:sql_write_sinks ~sanitizers:sql_sanitizers ()
  | Xss_reflected ->
      mk
        ~sinks:[ Sink_echo; fn "printf"; fn "vprintf"; fn "print_r"; fn "exit" ]
        ~sanitizers:xss_sanitizers ()
  | Xss_stored ->
      mk
        ~sources:(default_sources @ fetch_sources)
        ~sinks:[ Sink_echo; fn "printf"; fn "print_r" ]
        ~sanitizers:xss_sanitizers ()
  | Rfi | Lfi ->
      mk ~sinks:[ Sink_include ] ~sanitizers:path_sanitizers ()
  | Dt_pt -> mk ~sinks:file_sinks ~sanitizers:path_sanitizers ()
  | Scd ->
      mk
        ~sinks:[ fn "show_source"; fn "highlight_file"; fn "php_strip_whitespace" ]
        ~sanitizers:path_sanitizers ()
  | Osci ->
      mk
        ~sinks:[ fn "exec"; fn "system"; fn "shell_exec"; fn "passthru"; fn "popen";
                 fn "proc_open"; fn "pcntl_exec" ]
        ~sanitizers:[ San_fn "escapeshellarg"; San_fn "escapeshellcmd" ] ()
  | Phpci ->
      mk
        ~sinks:[ fn "eval"; fn "assert"; fn "create_function"; fn "preg_replace" ]
        ~sanitizers:[] ()
  (* --- new classes (Table IV + Section IV-C) --- *)
  | Sf ->
      mk ~sinks:[ fn "setcookie"; fn "setrawcookie"; fn "session_id" ] ~sanitizers:[] ()
  | Cs ->
      mk
        ~sinks:[ fn "file_put_contents"; fn "file_get_contents" ]
        ~sanitizers:[ San_fn "strip_tags" ] ()
  | Ldapi ->
      mk
        ~sinks:[ fn "ldap_add"; fn "ldap_delete"; fn "ldap_list"; fn "ldap_read"; fn "ldap_search" ]
        ~sanitizers:[ San_fn "ldap_escape" ] ()
  | Xpathi ->
      mk
        ~sinks:[ fn "xpath_eval"; fn "xptr_eval"; fn "xpath_eval_expression" ]
        ~sanitizers:[] ()
  | Nosqli ->
      (* the NoSQLI weapon of Section IV-C1 *)
      mk
        ~sinks:[ Sink_method ("collection", "find"); Sink_method ("collection", "findone");
                 Sink_method ("collection", "findandmodify"); Sink_method ("collection", "insert");
                 Sink_method ("collection", "remove"); Sink_method ("collection", "save");
                 Sink_method ("db", "execute");
                 fn "find"; fn "findone"; fn "findandmodify" ]
        ~sanitizers:[ San_fn "mysql_real_escape_string" ] ()
  | Hi -> mk ~sinks:[ fn "header" ] ~sanitizers:[] ()
  | Ei -> mk ~sinks:[ fn "mail" ] ~sanitizers:[] ()
  | Wp_sqli ->
      mk
        ~sinks:[ Sink_method ("wpdb", "query"); Sink_method ("wpdb", "get_results");
                 Sink_method ("wpdb", "get_row"); Sink_method ("wpdb", "get_var");
                 Sink_method ("wpdb", "get_col") ]
        ~sanitizers:[ San_method ("wpdb", "prepare"); San_fn "esc_sql"; San_fn "like_escape" ]
        ()
  | Custom name ->
      { vclass; submodule = Submodule.Generated name; sources = default_sources;
        sinks = []; sanitizers = [] }

(** All default specs for a list of classes. *)
let specs_for classes = List.map default_spec classes

(* ------------------------------------------------------------------ *)
(* Stable spec identity.                                               *)

(** Content-derived identity of one spec: stable across processes (no
    marshalling, no hash-function drift), used as cache-key material. *)
let spec_id (s : spec) : string = Digest.to_hex (Digest.string (show_spec s))

(** Identity of an ordered spec set.  The order is part of the identity:
    it determines the deterministic merge order of scan results. *)
let set_fingerprint (specs : spec list) : string =
  Digest.to_hex (Digest.string (String.concat "\x00" (List.map spec_id specs)))

(** Lookup tables used by the taint analyzer: quick membership tests.

    Every table is indexed by {e spec id} — the position of a spec in
    the list given to {!Lookup.of_specs} — so one fused analysis pass can
    ask "for which of the active specs is [name] a source/sink/
    sanitizer?" in one lookup.  The single-spec boolean API is kept on
    top for callers that only care about membership. *)
module Lookup = struct
  type t = {
    nspecs : int;
    superglobals : (string, int list) Hashtbl.t;  (** name -> spec ids, ascending *)
    source_fns : (string, int list) Hashtbl.t;
    sink_fns : (string, (int * Vuln_class.t * int list) list) Hashtbl.t;
        (** per name: (spec id, class, dangerous positions), ids
            ascending; a spec's own entries keep most-recent-first
            order, matching a single-spec [Hashtbl.find_all] *)
    sink_methods : (string * string, (int * Vuln_class.t) list) Hashtbl.t;
    echo_specs : int list;
    include_specs : int list;
    san_fns : (string, int list) Hashtbl.t;
    san_methods : (string * string, int list) Hashtbl.t;
  }

  let add_id tbl key id =
    let cur = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
    if not (List.mem id cur) then Hashtbl.replace tbl key (cur @ [ id ])

  let of_specs (specs : spec list) : t =
    let superglobals = Hashtbl.create 16 in
    let source_fns = Hashtbl.create 32 in
    let sink_fns = Hashtbl.create 64 in
    let sink_methods = Hashtbl.create 16 in
    let echo_specs = ref [] in
    let include_specs = ref [] in
    let san_fns = Hashtbl.create 32 in
    let san_methods = Hashtbl.create 16 in
    List.iteri
      (fun id spec ->
        List.iter
          (function
            | Src_superglobal s -> add_id superglobals s id
            | Src_fn f -> add_id source_fns (String.lowercase_ascii f) id)
          spec.sources;
        List.iter
          (function
            | Sink_fn (f, args) ->
                let key = String.lowercase_ascii f in
                Hashtbl.replace sink_fns key
                  ((id, spec.vclass, args)
                  :: Option.value ~default:[] (Hashtbl.find_opt sink_fns key))
            | Sink_method (o, m) ->
                let key = (String.lowercase_ascii o, String.lowercase_ascii m) in
                let cur =
                  Option.value ~default:[] (Hashtbl.find_opt sink_methods key)
                in
                if not (List.exists (fun (i, _) -> i = id) cur) then
                  Hashtbl.replace sink_methods key (cur @ [ (id, spec.vclass) ])
            | Sink_echo ->
                if not (List.mem id !echo_specs) then
                  echo_specs := id :: !echo_specs
            | Sink_include ->
                if not (List.mem id !include_specs) then
                  include_specs := id :: !include_specs)
          spec.sinks;
        List.iter
          (function
            | San_fn f -> add_id san_fns (String.lowercase_ascii f) id
            | San_method (o, m) ->
                add_id san_methods
                  (String.lowercase_ascii o, String.lowercase_ascii m)
                  id)
          spec.sanitizers)
      specs;
    (* prepending while walking specs in order left ids descending and
       each spec's own entries reversed; a stable ascending sort restores
       id order while keeping the per-spec reversal (= find_all order) *)
    Hashtbl.filter_map_inplace
      (fun _ entries ->
        Some
          (List.stable_sort
             (fun (a, _, _) (b, _, _) -> compare (a : int) b)
             entries))
      sink_fns;
    {
      nspecs = List.length specs;
      superglobals;
      source_fns;
      sink_fns;
      sink_methods;
      echo_specs = List.rev !echo_specs;
      include_specs = List.rev !include_specs;
      san_fns;
      san_methods;
    }

  let nspecs t = t.nspecs
  let ids tbl key = Option.value ~default:[] (Hashtbl.find_opt tbl key)
  let superglobal_ids t name = ids t.superglobals name
  let source_fn_ids t name = ids t.source_fns (String.lowercase_ascii name)

  let sink_fn_entries t name =
    Option.value ~default:[]
      (Hashtbl.find_opt t.sink_fns (String.lowercase_ascii name))

  let sink_method_entries t obj meth =
    Option.value ~default:[]
      (Hashtbl.find_opt t.sink_methods
         (String.lowercase_ascii obj, String.lowercase_ascii meth))

  let sink_method_ids t obj meth = List.map fst (sink_method_entries t obj meth)

  let echo_ids t = t.echo_specs
  let include_ids t = t.include_specs
  let sanitizer_fn_ids t name = ids t.san_fns (String.lowercase_ascii name)

  let sanitizer_method_ids t obj meth =
    ids t.san_methods (String.lowercase_ascii obj, String.lowercase_ascii meth)

  (* ---- single-spec boolean view ---------------------------------- *)

  let is_superglobal t name = Hashtbl.mem t.superglobals name

  let is_source_fn t name =
    Hashtbl.mem t.source_fns (String.lowercase_ascii name)

  let sink_classes_of_fn t name =
    List.map (fun (_, vc, args) -> (vc, args)) (sink_fn_entries t name)

  let sink_class_of_method t obj meth =
    List.map snd (sink_method_entries t obj meth)

  let is_sanitizer_fn t name =
    Hashtbl.mem t.san_fns (String.lowercase_ascii name)

  let is_sanitizer_method t obj meth =
    Hashtbl.mem t.san_methods
      (String.lowercase_ascii obj, String.lowercase_ascii meth)
end
