(** Entry points, sensitive sinks and sanitization functions per
    vulnerability class.

    In the restructured WAP these three sets live in external files (the
    ep/ss/san files of Fig. 2) so users can extend a detector without
    recompiling; {!Spec_file} provides that serialization.  This module
    defines the shipped defaults. *)

type source =
  | Src_superglobal of string  (** e.g. [_GET]: any [$_GET[...]] access *)
  | Src_fn of string
      (** a function whose return value is attacker-controlled, e.g.
          database fetch results for stored XSS *)
[@@deriving show, eq, ord]

type sink =
  | Sink_fn of string * int list
      (** named function; the int list is the set of dangerous argument
          positions (empty = any argument) *)
  | Sink_method of string * string
      (** [obj, method]: method call on a named variable, e.g.
          [$wpdb->query] — obj is matched without the [$] *)
  | Sink_echo  (** [echo] / [print] / [printf] output constructs *)
  | Sink_include  (** [include] / [require] constructs *)
[@@deriving show, eq, ord]

type sanitizer =
  | San_fn of string
  | San_method of string * string  (** e.g. [$wpdb->prepare] *)
[@@deriving show, eq, ord]

(** One detector's configuration. *)
type spec = {
  vclass : Vuln_class.t;
  submodule : Submodule.t;
  sources : source list;
  sinks : sink list;
  sanitizers : sanitizer list;
}
[@@deriving show, eq]

(** The superglobal arrays every detector treats as tainted input. *)
val default_superglobals : string list

val default_sources : source list

(** The name of the fix function the corrector inserts for a class
    (always registered as a sanitizer, so corrected code is not
    re-flagged).  Matches [Wap_fixer.Fix.stock]. *)
val stock_fix_name : Vuln_class.t -> string

(** The shipped detector configuration of a class (Table IV and
    Section IV-C for the new classes); always includes
    {!stock_fix_name} among the sanitizers. *)
val default_spec : Vuln_class.t -> spec

(** [specs_for classes] = [List.map default_spec classes]. *)
val specs_for : Vuln_class.t list -> spec list

(** Content-derived identity of one spec: stable across processes, used
    as cache-key material. *)
val spec_id : spec -> string

(** Identity of an ordered spec set; the order is part of it (it
    determines the deterministic merge order of scan results). *)
val set_fingerprint : spec list -> string

(** Fast membership structures derived from a spec set, used by the
    taint analyzer on every call site.

    Tables are indexed by {e spec id} — the position of a spec in the
    list given to {!Lookup.of_specs} — so one fused analysis pass can ask
    "for which of the active specs is [name] a source/sink/sanitizer?"
    in a single lookup.  All [*_ids] results are ascending and
    duplicate-free.  The boolean single-spec view is kept on top. *)
module Lookup : sig
  type t

  val of_specs : spec list -> t

  (** Number of specs the table was built from. *)
  val nspecs : t -> int

  (** Specs treating [$name] as a tainted superglobal (exact case). *)
  val superglobal_ids : t -> string -> int list

  (** Specs treating a call of [name] as an entry point. *)
  val source_fn_ids : t -> string -> int list

  (** All (spec id, class, dangerous positions) sink entries for a
      function name; ids ascending, one spec's own entries in its
      single-spec [find_all] order (most recently declared first). *)
  val sink_fn_entries : t -> string -> (int * Vuln_class.t * int list) list

  (** Specs with an [obj->meth] sink; the object ["*"] matches any
      variable. *)
  val sink_method_ids : t -> string -> string -> int list

  (** Specs sinking on [echo]/[print] constructs. *)
  val echo_ids : t -> int list

  (** Specs sinking on [include]/[require] constructs. *)
  val include_ids : t -> int list

  val sanitizer_fn_ids : t -> string -> int list
  val sanitizer_method_ids : t -> string -> string -> int list

  (** {2 Single-spec boolean view} *)

  val is_superglobal : t -> string -> bool
  val is_source_fn : t -> string -> bool

  (** All (class, dangerous-argument) entries registered for a function
      name (case-insensitive); [[]] when it is not a sink. *)
  val sink_classes_of_fn : t -> string -> (Vuln_class.t * int list) list

  (** Classes registered for an [obj->meth] sink; the object ["*"]
      matches any variable. *)
  val sink_class_of_method : t -> string -> string -> Vuln_class.t list

  val is_sanitizer_fn : t -> string -> bool
  val is_sanitizer_method : t -> string -> string -> bool
end
