(** Textual ep/ss/san specification files.

    The restructured WAP stores each detector's entry points (ep),
    sensitive sinks (ss) and sanitization functions (san) in external
    files so that users can add items without recompiling (Section
    III-A).  The format is line-based:

    {v
    # comment
    entry: _GET
    entry_fn: mysql_fetch_assoc
    sink: mysql_query
    sink: mysqli_query args=1
    sink_method: wpdb query
    sink_echo:
    sink_include:
    sanitizer: esc_sql
    sanitizer_method: wpdb prepare
    v} *)

exception Parse_error of string * int  (** message, line number *)

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun x -> x <> "")

let parse_args_field tok =
  (* "args=0,2" -> [0;2] *)
  match String.index_opt tok '=' with
  | Some i when String.sub tok 0 i = "args" ->
      String.sub tok (i + 1) (String.length tok - i - 1)
      |> String.split_on_char ','
      |> List.filter_map int_of_string_opt
      |> Option.some
  | _ -> None

(** Parse the body of a spec file into sources, sinks and sanitizers. *)
let parse (contents : string) :
    Catalog.source list * Catalog.sink list * Catalog.sanitizer list =
  let sources = ref [] and sinks = ref [] and sans = ref [] in
  let lines = String.split_on_char '\n' contents in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else
        match String.index_opt line ':' with
        | None -> raise (Parse_error ("missing ':' separator", lineno))
        | Some ci -> (
            let kind = String.sub line 0 ci in
            let rest = String.trim (String.sub line (ci + 1) (String.length line - ci - 1)) in
            let words = split_ws rest in
            match (kind, words) with
            | "entry", [ name ] -> sources := Catalog.Src_superglobal name :: !sources
            | "entry_fn", [ name ] -> sources := Catalog.Src_fn name :: !sources
            | "sink", [ name ] -> sinks := Catalog.Sink_fn (name, []) :: !sinks
            | "sink", [ name; argtok ] -> (
                match parse_args_field argtok with
                | Some args -> sinks := Catalog.Sink_fn (name, args) :: !sinks
                | None -> raise (Parse_error ("bad sink arguments field", lineno)))
            | "sink_method", [ obj; meth ] ->
                sinks := Catalog.Sink_method (obj, meth) :: !sinks
            | "sink_echo", [] -> sinks := Catalog.Sink_echo :: !sinks
            | "sink_include", [] -> sinks := Catalog.Sink_include :: !sinks
            | "sanitizer", [ name ] -> sans := Catalog.San_fn name :: !sans
            | "sanitizer_method", [ obj; meth ] ->
                sans := Catalog.San_method (obj, meth) :: !sans
            | _ -> raise (Parse_error ("unrecognized spec line: " ^ line, lineno))))
    lines;
  (List.rev !sources, List.rev !sinks, List.rev !sans)

let source_to_line = function
  | Catalog.Src_superglobal s -> "entry: " ^ s
  | Catalog.Src_fn f -> "entry_fn: " ^ f

let sink_to_line = function
  | Catalog.Sink_fn (f, []) -> "sink: " ^ f
  | Catalog.Sink_fn (f, args) ->
      Printf.sprintf "sink: %s args=%s" f
        (String.concat "," (List.map string_of_int args))
  | Catalog.Sink_method (o, m) -> Printf.sprintf "sink_method: %s %s" o m
  | Catalog.Sink_echo -> "sink_echo:"
  | Catalog.Sink_include -> "sink_include:"

let sanitizer_to_line = function
  | Catalog.San_fn f -> "sanitizer: " ^ f
  | Catalog.San_method (o, m) -> Printf.sprintf "sanitizer_method: %s %s" o m

(** Serialize a spec to the file format (inverse of {!parse}). *)
let to_string (spec : Catalog.spec) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "# %s detector specification\n"
       (Vuln_class.acronym spec.vclass));
  List.iter (fun s -> Buffer.add_string b (source_to_line s ^ "\n")) spec.sources;
  List.iter (fun s -> Buffer.add_string b (sink_to_line s ^ "\n")) spec.sinks;
  List.iter (fun s -> Buffer.add_string b (sanitizer_to_line s ^ "\n")) spec.sanitizers;
  Buffer.contents b

(** Load a spec for [vclass] from a file's contents, replacing the
    default ep/ss/san sets. *)
let spec_of_string ~(vclass : Vuln_class.t) contents : Catalog.spec =
  let sources, sinks, sanitizers = parse contents in
  {
    Catalog.vclass;
    submodule = Submodule.of_class vclass;
    sources = (if sources = [] then Catalog.default_sources else sources);
    sinks;
    sanitizers;
  }

let load_file ~vclass path : Catalog.spec =
  spec_of_string ~vclass (Wap_php.Io.read_file path)

let save_file (spec : Catalog.spec) path : unit =
  let oc = open_out_bin path in
  output_string oc (to_string spec);
  close_out oc
