(** Reproduction of every table and figure of the paper's evaluation.

    Each [tableN]/[figN] function returns the rendered report; the
    [*_data] functions expose the underlying numbers for tests and
    benchmarks.  EXPERIMENTS.md records paper-vs-measured values. *)

module VC = Wap_catalog.Vuln_class
module T = Wap_report.Table
module D = Wap_mining.Dataset
module M = Wap_mining.Metrics

let default_seed = 2016

(* ------------------------------------------------------------------ *)
(* Table I: symptoms and attributes.                                   *)

let table1 () : string =
  let rows =
    List.map
      (fun (s : Wap_mining.Symptom.t) ->
        [
          (match s.category with
          | Wap_mining.Symptom.Validation -> "validation"
          | String_manipulation -> "string manipulation"
          | Sql_manipulation -> "SQL query manipulation");
          s.group;
          s.name;
          (if s.original then "WAP v2.1" else "new");
        ])
      Wap_mining.Symptom.all
  in
  let t =
    T.make
      ~title:
        (Printf.sprintf
           "Table I: %d symptoms = %d attributes (+1 class attribute = 61); original tool: %d attributes"
           Wap_mining.Symptom.count
           (Wap_mining.Attributes.arity Wap_mining.Attributes.Extended)
           (Wap_mining.Attributes.paper_count Wap_mining.Attributes.Original))
      ~header:[ "category"; "attribute group"; "symptom"; "since" ]
      ~aligns:[ T.L; T.L; T.L; T.L ] rows
  in
  T.render t

(* ------------------------------------------------------------------ *)
(* Tables II and III: classifier evaluation.                           *)

let top3 =
  [ Wap_mining.Svm.algorithm; Wap_mining.Logistic.algorithm;
    Wap_mining.Random_forest.algorithm ]

type model_eval = { me_name : string; me_confusion : M.confusion }

let evaluate_models ?(seed = default_seed) ?(dataset : D.t option) () :
    model_eval list =
  let d =
    match dataset with Some d -> d | None -> Training.dataset_for ~seed Version.Wape
  in
  List.map
    (fun algo ->
      {
        me_name = algo.Wap_mining.Classifier.algo_name;
        me_confusion = Wap_mining.Evaluation.cross_validate ~k:10 ~seed algo d;
      })
    top3

let table2_rows (evals : model_eval list) =
  List.map
    (fun metric ->
      metric
      :: List.map (fun e -> T.pctf (M.get e.me_confusion metric)) evals)
    M.metric_names

let table2 ?(seed = default_seed) ?dataset () : string =
  let evals = evaluate_models ~seed ?dataset () in
  let d =
    match dataset with Some d -> d | None -> Training.dataset_for ~seed Version.Wape
  in
  let t =
    T.make
      ~title:
        (Printf.sprintf
           "Table II: 10-fold cross-validation of the top-3 classifiers (%d instances, %d attributes)"
           (D.size d)
           (Wap_mining.Attributes.paper_count d.D.mode))
      ~header:("Metric" :: List.map (fun e -> e.me_name) evals)
      (table2_rows (evaluate_models ~seed ~dataset:d ()))
  in
  T.render t

let table3 ?(seed = default_seed) ?dataset () : string =
  let evals = evaluate_models ~seed ?dataset () in
  let row_of e =
    [ e.me_name;
      string_of_int e.me_confusion.M.tp; string_of_int e.me_confusion.M.fp;
      string_of_int e.me_confusion.M.fn; string_of_int e.me_confusion.M.tn ]
  in
  let t =
    T.make ~title:"Table III: confusion matrices of the top-3 classifiers"
      ~header:[ "Classifier"; "tp (Yes/Yes)"; "fp (No->Yes)"; "fn (Yes->No)"; "tn (No/No)" ]
      (List.map row_of evals)
  in
  T.render t

(** The wider model-selection ranking behind the top-3 choice. *)
let classifier_ranking ?(seed = default_seed) () : string =
  let d = Training.dataset_for ~seed Version.Wape in
  let ranked = Wap_mining.Evaluation.rank_classifiers ~k:10 ~seed Wap_mining.Evaluation.default_pool d in
  let rows =
    List.map
      (fun (r : Wap_mining.Evaluation.ranked) ->
        [ r.algo.Wap_mining.Classifier.algo_name;
          T.pctf (M.tpp r.confusion); T.pctf (M.pfp r.confusion);
          T.pctf (M.acc r.confusion); T.pctf (M.inform r.confusion) ])
      ranked
  in
  T.render
    (T.make ~title:"Classifier re-evaluation (model selection pool)"
       ~header:[ "Classifier"; "tpp"; "pfp"; "acc"; "inform" ] rows)

(** Ablation: the original 16-attribute encoding vs the new 61-attribute
    encoding, on the same instances (the paper's central data-mining
    claim). *)
let ablation_attributes ?(seed = default_seed) () : string =
  let rows =
    List.map
      (fun (label, mode) ->
        let d =
          Training.build_dataset ~seed ~mode ~classes:VC.wape ~target:256 ()
        in
        let conf =
          Wap_mining.Evaluation.cross_validate ~k:10 ~seed
            Wap_mining.Svm.algorithm d
        in
        [ label; string_of_int (D.size d); T.pctf (M.acc conf); T.pctf (M.tpp conf);
          T.pctf (M.pfp conf) ])
      [ ("16 attributes (original)", Wap_mining.Attributes.Original);
        ("61 attributes (new)", Wap_mining.Attributes.Extended) ]
  in
  T.render
    (T.make ~title:"Ablation: predictor granularity (SVM, 10-fold CV)"
       ~header:[ "Encoding"; "instances"; "acc"; "tpp"; "pfp" ] rows)

(** Ablation: interprocedural summaries on/off (DESIGN.md §6).  Counts
    detected real vulnerabilities on a web-application slice — without
    summaries, flows whose sink lives inside a helper function are
    lost. *)
let ablation_interprocedural ?(seed = default_seed) () : string =
  let profiles =
    [ List.nth Wap_corpus.Profiles.vulnerable_webapps 0;
      List.nth Wap_corpus.Profiles.vulnerable_webapps 13;
      List.nth Wap_corpus.Profiles.vulnerable_webapps 16 ]
  in
  let specs = Wap_catalog.Catalog.specs_for VC.wape in
  let detect ~interprocedural =
    List.fold_left
      (fun acc profile ->
        let pkg = Wap_corpus.Appgen.of_webapp_profile ~seed profile in
        let units = Tool.parse_package pkg in
        let raw =
          Wap_taint.Analyzer.analyze_with_specs ~interprocedural ~specs units
        in
        acc + List.length (Tool.dedup_candidates raw))
      0 profiles
  in
  let full = detect ~interprocedural:true in
  let intra = detect ~interprocedural:false in
  T.render
    (T.make ~title:"Ablation: interprocedural summaries (3 packages, all detectors)"
       ~header:[ "Configuration"; "candidates detected" ]
       [ [ "interprocedural (summaries)"; string_of_int full ];
         [ "intraprocedural only"; string_of_int intra ] ])

(** Ablation: single classifier vs the top-3 majority vote, measured as
    FPP/FP on the web-application corpus slice. *)
let ablation_vote ?(seed = default_seed) () : string =
  let profiles =
    [ List.nth Wap_corpus.Profiles.vulnerable_webapps 14;
      List.nth Wap_corpus.Profiles.vulnerable_webapps 16 ]
  in
  let dataset = Training.dataset_for ~seed Version.Wape in
  let run label algorithms =
    let config =
      { Wap_mining.Predictor.extended_config with
        Wap_mining.Predictor.algorithms }
    in
    let predictor = Wap_mining.Predictor.train ~seed config dataset in
    let specs = Wap_catalog.Catalog.specs_for VC.wape in
    let fpp = ref 0 and fp = ref 0 and missed = ref 0 in
    List.iter
      (fun profile ->
        let pkg = Wap_corpus.Appgen.of_webapp_profile ~seed profile in
        let units = Tool.parse_package pkg in
        let cands =
          Tool.dedup_candidates (Wap_taint.Analyzer.analyze_with_specs ~specs units)
        in
        List.iter
          (fun c ->
            match
              List.find_opt
                (fun (s : Wap_corpus.Appgen.seeded) ->
                  String.equal s.Wap_corpus.Appgen.sd_file c.Wap_taint.Trace.file
                  && c.Wap_taint.Trace.sink_loc.Wap_php.Loc.line
                     >= s.Wap_corpus.Appgen.sd_line_lo
                  && c.Wap_taint.Trace.sink_loc.Wap_php.Loc.line
                     <= s.Wap_corpus.Appgen.sd_line_hi)
                pkg.Wap_corpus.Appgen.pkg_seeded
            with
            | Some seeded ->
                let truly_fp =
                  match seeded.Wap_corpus.Appgen.sd_label with
                  | Wap_corpus.Snippet.Fp_easy | Wap_corpus.Snippet.Fp_hard -> true
                  | _ -> false
                in
                let predicted = Wap_mining.Predictor.is_false_positive predictor c in
                if truly_fp then if predicted then incr fpp else incr fp
                else if predicted then incr missed
            | None -> ())
          cands)
      profiles;
    [ label; string_of_int !fpp; string_of_int !fp; string_of_int !missed ]
  in
  T.render
    (T.make ~title:"Ablation: top-3 majority vote vs single classifiers (2 packages)"
       ~header:[ "Predictor"; "FPP"; "FP"; "vulns dismissed" ]
       [ run "top-3 vote (SVM+LR+RF)" top3;
         run "SVM alone" [ Wap_mining.Svm.algorithm ];
         run "Logistic Regression alone" [ Wap_mining.Logistic.algorithm ];
         run "Random Forest alone" [ Wap_mining.Random_forest.algorithm ] ])

(* ------------------------------------------------------------------ *)
(* Table IV: sinks added to the sub-modules.                           *)

let table4 () : string =
  let interesting = [ VC.Sf; VC.Cs; VC.Ldapi; VC.Xpathi ] in
  let rows =
    List.map
      (fun c ->
        let spec = Wap_catalog.Catalog.default_spec c in
        let sinks =
          List.filter_map
            (function
              | Wap_catalog.Catalog.Sink_fn (f, _) -> Some f
              | Wap_catalog.Catalog.Sink_method (o, m) -> Some (o ^ "->" ^ m)
              | Wap_catalog.Catalog.Sink_echo -> Some "echo"
              | Wap_catalog.Catalog.Sink_include -> Some "include")
            spec.Wap_catalog.Catalog.sinks
        in
        [ Wap_catalog.Submodule.name spec.Wap_catalog.Catalog.submodule;
          VC.acronym c; String.concat ", " sinks ])
      interesting
  in
  T.render
    (T.make ~title:"Table IV: sensitive sinks added to the sub-modules"
       ~header:[ "Sub-module"; "Vuln."; "Sensitive sinks" ]
       ~aligns:[ T.L; T.L; T.L ] rows)

(* ------------------------------------------------------------------ *)
(* Web application runs (Tables V, VI).                                *)

type app_run = {
  ar_profile : Wap_corpus.Profiles.app_profile;
  ar_result : Tool.package_result;
  ar_score : Aggregate.score;
}

type webapp_runs = {
  wr_wape : app_run list;  (** all 54 packages under WAPe *)
  wr_v21 : app_run list;  (** the same packages under WAP v2.1 *)
}

let run_packages ?jobs ?cache tool packages =
  List.map
    (fun (profile, pkg) ->
      let result =
        (Tool.Scan.run tool (Tool.Scan.request_of_package ?jobs ?cache pkg))
          .Tool.Scan.result
      in
      { ar_profile = profile; ar_result = result; ar_score = Aggregate.score_package result })
    packages

let run_webapps ?(seed = default_seed) ?(only_vulnerable = false) ?jobs ?cache
    () : webapp_runs =
  let packages =
    if only_vulnerable then Wap_corpus.Corpus.vulnerable_webapps ~seed ()
    else Wap_corpus.Corpus.webapps ~seed ()
  in
  let wape = Tool.create ~seed Version.Wape in
  let v21 = Tool.create ~seed Version.Wap_v21 in
  { wr_wape = run_packages ?jobs ?cache wape packages;
    wr_v21 = run_packages ?jobs ?cache v21 packages }

let table5 (runs : webapp_runs) : string =
  let vulnerable =
    List.filter (fun r -> r.ar_score.Aggregate.real_reported > 0) runs.wr_wape
  in
  let rows =
    List.map
      (fun r ->
        [ r.ar_profile.Wap_corpus.Profiles.ap_name;
          r.ar_profile.Wap_corpus.Profiles.ap_version;
          string_of_int r.ar_result.Tool.files_analyzed;
          string_of_int r.ar_result.Tool.loc;
          Printf.sprintf "%.2f" r.ar_result.Tool.analysis_seconds;
          string_of_int r.ar_score.Aggregate.vuln_files;
          string_of_int r.ar_score.Aggregate.real_reported ])
      vulnerable
  in
  let total =
    [ "Total"; "";
      string_of_int (List.fold_left (fun a r -> a + r.ar_result.Tool.files_analyzed) 0 vulnerable);
      string_of_int (List.fold_left (fun a r -> a + r.ar_result.Tool.loc) 0 vulnerable);
      Printf.sprintf "%.2f"
        (List.fold_left (fun a r -> a +. r.ar_result.Tool.analysis_seconds) 0.0 vulnerable);
      string_of_int (List.fold_left (fun a r -> a + r.ar_score.Aggregate.vuln_files) 0 vulnerable);
      string_of_int (List.fold_left (fun a r -> a + r.ar_score.Aggregate.real_reported) 0 vulnerable) ]
  in
  T.render
    (T.make
       ~title:"Table V: WAPe summary on web applications (LoC generated at reduced scale)"
       ~header:[ "Web application"; "Version"; "Files"; "LoC"; "Time (s)"; "Vuln files"; "Vulns found" ]
       ~aligns:[ T.L; T.L; T.R; T.R; T.R; T.R; T.R ]
       (rows @ [ List.map (fun _ -> "---") [ 1; 2; 3; 4; 5; 6; 7 ] ] @ [ total ]))

let table6 (runs : webapp_runs) : string =
  let paired = List.combine runs.wr_wape runs.wr_v21 in
  let interesting =
    List.filter
      (fun (w, v) ->
        w.ar_score.Aggregate.real_reported > 0
        || v.ar_score.Aggregate.real_reported > 0
        || w.ar_score.Aggregate.fpp + w.ar_score.Aggregate.fp > 0)
      paired
  in
  let row_of (w, v) =
    let s = w.ar_score in
    [ w.ar_profile.Wap_corpus.Profiles.ap_name;
      w.ar_profile.Wap_corpus.Profiles.ap_version ]
    @ List.map (fun g -> T.blank_if_zero (Aggregate.group_count s g)) Aggregate.webapp_groups
    @ [ string_of_int s.Aggregate.real_reported;
        T.blank_if_zero v.ar_score.Aggregate.fpp;
        T.blank_if_zero v.ar_score.Aggregate.fp;
        T.blank_if_zero s.Aggregate.fpp;
        T.blank_if_zero s.Aggregate.fp ]
  in
  let rows = List.map row_of interesting in
  let total_wape = Aggregate.sum_scores (List.map (fun (w, _) -> w.ar_score) interesting) in
  let total_v21 = Aggregate.sum_scores (List.map (fun (_, v) -> v.ar_score) interesting) in
  let total_row =
    [ "Total"; "" ]
    @ List.map
        (fun g -> string_of_int (Aggregate.group_count total_wape g))
        Aggregate.webapp_groups
    @ [ string_of_int total_wape.Aggregate.real_reported;
        string_of_int total_v21.Aggregate.fpp; string_of_int total_v21.Aggregate.fp;
        string_of_int total_wape.Aggregate.fpp; string_of_int total_wape.Aggregate.fp ]
  in
  let header =
    [ "Web application"; "Version" ] @ Aggregate.webapp_groups
    @ [ "Total"; "WAP FPP"; "WAP FP"; "WAPe FPP"; "WAPe FP" ]
  in
  T.render
    (T.make
       ~title:"Table VI: vulnerabilities and false positives, WAP v2.1 vs WAPe"
       ~header
       ~aligns:(T.L :: T.L :: List.map (fun _ -> T.R) (Aggregate.webapp_groups @ [ ""; ""; ""; ""; "" ]))
       (rows
       @ [ List.map (fun _ -> "---") header ]
       @ [ total_row ]))

(* ------------------------------------------------------------------ *)
(* Plugin runs (Table VII, Fig. 4).                                    *)

type plugin_run = {
  pr_profile : Wap_corpus.Profiles.plugin_profile;
  pr_result : Tool.package_result;
  pr_score : Aggregate.score;
}

let run_plugins ?(seed = default_seed) ?(only_vulnerable = false) ?jobs ?cache
    () : plugin_run list =
  let packages =
    if only_vulnerable then Wap_corpus.Corpus.vulnerable_plugins ~seed ()
    else Wap_corpus.Corpus.plugins ~seed ()
  in
  (* the base WAPe configuration already detects HI/EI and NoSQLI; the
     plugin analysis only needs the WordPress weapon on top *)
  let weapons = [ Wap_weapon.Generator.wpsqli () ] in
  let tool = Tool.create ~seed ~weapons Version.Wape in
  List.map
    (fun (profile, pkg) ->
      let result =
        (Tool.Scan.run tool (Tool.Scan.request_of_package ?jobs ?cache pkg))
          .Tool.Scan.result
      in
      { pr_profile = profile; pr_result = result; pr_score = Aggregate.score_package result })
    packages

let table7 (runs : plugin_run list) : string =
  let interesting =
    List.filter
      (fun r ->
        r.pr_score.Aggregate.real_reported > 0
        || r.pr_score.Aggregate.fpp + r.pr_score.Aggregate.fp > 0)
      runs
  in
  let row_of r =
    let s = r.pr_score in
    [ r.pr_profile.Wap_corpus.Profiles.pp_name
      ^ (if r.pr_profile.Wap_corpus.Profiles.pp_cve then "**" else "");
      r.pr_profile.Wap_corpus.Profiles.pp_version ]
    @ List.map (fun g -> T.blank_if_zero (Aggregate.group_count s g)) Aggregate.plugin_groups
    @ [ string_of_int s.Aggregate.real_reported;
        T.blank_if_zero s.Aggregate.fpp; T.blank_if_zero s.Aggregate.fp ]
  in
  let total = Aggregate.sum_scores (List.map (fun r -> r.pr_score) interesting) in
  let total_row =
    [ "Total"; "" ]
    @ List.map (fun g -> string_of_int (Aggregate.group_count total g)) Aggregate.plugin_groups
    @ [ string_of_int total.Aggregate.real_reported;
        string_of_int total.Aggregate.fpp; string_of_int total.Aggregate.fp ]
  in
  let header =
    [ "Plugin (** = CVE)"; "Version" ] @ Aggregate.plugin_groups @ [ "Total"; "FPP"; "FP" ]
  in
  T.render
    (T.make ~title:"Table VII: vulnerabilities found in WordPress plugins (WAPe + -wpsqli)"
       ~header
       ~aligns:(T.L :: T.L :: List.map (fun _ -> T.R) (Aggregate.plugin_groups @ [ ""; ""; "" ]))
       (List.map row_of interesting @ [ List.map (fun _ -> "---") header ] @ [ total_row ]))

let bin_label bins value =
  let rec go = function
    | [] -> "?"
    | (label, lo, hi) :: rest -> if value >= lo && value <= hi then label else go rest
  in
  go bins

let fig4 (runs : plugin_run list) : string =
  let count bins pick vulnerable =
    List.map
      (fun (label, _, _) ->
        ( label,
          List.length
            (List.filter
               (fun r ->
                 (not vulnerable || r.pr_score.Aggregate.real_reported > 0)
                 && String.equal (bin_label bins (pick r.pr_profile)) label)
               runs) ))
      bins
  in
  let dl = Wap_corpus.Profiles.download_bins in
  let ai = Wap_corpus.Profiles.active_bins in
  let pick_dl p = p.Wap_corpus.Profiles.pp_downloads in
  let pick_ai p = p.Wap_corpus.Profiles.pp_active_installs in
  Wap_report.Histogram.render ~title:"Fig. 4(a): plugin downloads (analyzed vs vulnerable)"
    [ { Wap_report.Histogram.label = "analyzed"; values = count dl pick_dl false };
      { Wap_report.Histogram.label = "vulnerable"; values = count dl pick_dl true } ]
  ^ "\n"
  ^ Wap_report.Histogram.render
      ~title:"Fig. 4(b): plugin active installs (analyzed vs vulnerable)"
      [ { Wap_report.Histogram.label = "analyzed"; values = count ai pick_ai false };
        { Wap_report.Histogram.label = "vulnerable"; values = count ai pick_ai true } ]

let fig5 (webapps : webapp_runs) (plugins : plugin_run list) : string =
  let total_web = Aggregate.sum_scores (List.map (fun r -> r.ar_score) webapps.wr_wape) in
  let total_plug = Aggregate.sum_scores (List.map (fun r -> r.pr_score) plugins) in
  let groups = [ "SQLI"; "XSS"; "Files"; "SCD"; "LDAPI"; "SF"; "HI"; "CS" ] in
  Wap_report.Histogram.render
    ~title:"Fig. 5: vulnerabilities by class, web applications vs plugins"
    [ { Wap_report.Histogram.label = "webapps";
        values = List.map (fun g -> (g, Aggregate.group_count total_web g)) groups };
      { Wap_report.Histogram.label = "plugins";
        values = List.map (fun g -> (g, Aggregate.group_count total_plug g)) groups } ]

(* ------------------------------------------------------------------ *)
(* Dynamic confirmation (the paper's "all were confirmed by us          *)
(* manually", mechanized).                                               *)

type confirmation = {
  cf_reported_confirmed : int;  (** reported vulns whose exploit replays *)
  cf_reported_refuted : int;  (** reported but the payload never lands *)
  cf_reported_unsupported : int;  (** not replayable (e.g. stored XSS) *)
  cf_fps_confirmed : int;  (** predicted FPs that are in fact exploitable *)
  cf_fps_refuted : int;
  cf_fps_unsupported : int;
}

(** Replay every finding of a few packages with attack payloads: the
    confirmation rate of reported vulnerabilities, and the exploit rate
    of predicted false positives (ideally 0). *)
let run_confirmation ?(seed = default_seed) ?(packages = 5) () : confirmation =
  let profiles =
    List.filteri (fun i _ -> i < packages) Wap_corpus.Profiles.vulnerable_webapps
  in
  let tool = Tool.create ~seed Version.Wape in
  List.fold_left
    (fun acc profile ->
      let pkg = Wap_corpus.Appgen.of_webapp_profile ~seed profile in
      let units = Tool.parse_package pkg in
      let result = (Tool.Scan.run tool (Tool.Scan.request_of_package pkg)).Tool.Scan.result in
      let rc, rr, ru =
        Wap_confirm.Confirm.confirm_batch units result.Tool.reported
      in
      let fc, fr, fu =
        Wap_confirm.Confirm.confirm_batch units result.Tool.predicted_fps
      in
      {
        cf_reported_confirmed = acc.cf_reported_confirmed + rc;
        cf_reported_refuted = acc.cf_reported_refuted + rr;
        cf_reported_unsupported = acc.cf_reported_unsupported + ru;
        cf_fps_confirmed = acc.cf_fps_confirmed + fc;
        cf_fps_refuted = acc.cf_fps_refuted + fr;
        cf_fps_unsupported = acc.cf_fps_unsupported + fu;
      })
    { cf_reported_confirmed = 0; cf_reported_refuted = 0; cf_reported_unsupported = 0;
      cf_fps_confirmed = 0; cf_fps_refuted = 0; cf_fps_unsupported = 0 }
    profiles

let confirmation_table ?(seed = default_seed) ?(packages = 5) () : string =
  let c = run_confirmation ~seed ~packages () in
  T.render
    (T.make
       ~title:
         (Printf.sprintf
            "Dynamic confirmation (%d packages): replaying findings with attack payloads"
            packages)
       ~header:[ "Findings"; "confirmed exploitable"; "not exploitable"; "not replayable" ]
       [ [ "reported vulnerabilities";
           string_of_int c.cf_reported_confirmed;
           string_of_int c.cf_reported_refuted;
           string_of_int c.cf_reported_unsupported ];
         [ "predicted false positives";
           string_of_int c.cf_fps_confirmed;
           string_of_int c.cf_fps_refuted;
           string_of_int c.cf_fps_unsupported ] ])

(* ------------------------------------------------------------------ *)
(* The §V-A extensibility experiment: feeding a user sanitization        *)
(* function removes the hard false reports.                              *)

let escape_experiment ?(seed = default_seed) () : int * int =
  (* a vfront-like package: hard FPs protected by the custom escape() *)
  let pkg =
    Wap_corpus.Appgen.generate ~seed ~kind:Wap_corpus.Appgen.Webapp
      ~name:"vfront-slice" ~version:"0.99.3" ~files:8 ~vuln_files:2
      ~vulns:[ (VC.Sqli, 2) ] ~fp_easy:0 ~fp_hard:6 ~sanitized:1 ()
  in
  let before =
    let tool = Tool.create ~seed Version.Wape in
    (Tool.Scan.run tool (Tool.Scan.request_of_package pkg)).Tool.Scan.result.Tool.reported
  in
  let after =
    let tool =
      Tool.create ~seed ~extra_sanitizers:[ (None, "escape") ] Version.Wape
    in
    (Tool.Scan.run tool (Tool.Scan.request_of_package pkg)).Tool.Scan.result.Tool.reported
  in
  (List.length before, List.length after)
