(** Reproduction of every table and figure of the paper's evaluation.

    Each [tableN]/[figN] function returns the rendered report; the
    [*_data] functions expose the underlying numbers for tests and
    benchmarks.  EXPERIMENTS.md records paper-vs-measured values. *)

val default_seed : int

(** The paper's top-3 classifiers: SVM, Logistic Regression, Random
    Forest. *)
val top3 : Wap_mining.Classifier.algorithm list

(** Table I: the symptom/attribute catalog. *)
val table1 : unit -> string

type model_eval = {
  me_name : string;
  me_confusion : Wap_mining.Metrics.confusion;
}

(** 10-fold CV of the top-3 classifiers on the WAPe data set (or the
    supplied one). *)
val evaluate_models :
  ?seed:int -> ?dataset:Wap_mining.Dataset.t -> unit -> model_eval list

(** Table II: the nine metrics per classifier. *)
val table2 : ?seed:int -> ?dataset:Wap_mining.Dataset.t -> unit -> string

(** Table III: confusion matrices. *)
val table3 : ?seed:int -> ?dataset:Wap_mining.Dataset.t -> unit -> string

(** The wider model-selection ranking behind the top-3 choice. *)
val classifier_ranking : ?seed:int -> unit -> string

(** Ablation: 16 vs 61 attributes on the same instances. *)
val ablation_attributes : ?seed:int -> unit -> string

(** Ablation: interprocedural summaries on/off (DESIGN.md §6). *)
val ablation_interprocedural : ?seed:int -> unit -> string

(** Ablation: single classifier vs the top-3 majority vote. *)
val ablation_vote : ?seed:int -> unit -> string

(** Table IV: sinks added to the sub-modules for SF, CS, LDAPI, XPathI. *)
val table4 : unit -> string

type app_run = {
  ar_profile : Wap_corpus.Profiles.app_profile;
  ar_result : Tool.package_result;
  ar_score : Aggregate.score;
}

type webapp_runs = {
  wr_wape : app_run list;  (** all packages under WAPe *)
  wr_v21 : app_run list;  (** the same packages under WAP v2.1 *)
}

(** Run the web-application corpus under both tool versions.
    [only_vulnerable] restricts to the 17 Table V rows.  [jobs] and
    [cache] are forwarded to the scan engine for every package. *)
val run_webapps :
  ?seed:int ->
  ?only_vulnerable:bool ->
  ?jobs:int ->
  ?cache:Wap_engine.Cache.t ->
  unit ->
  webapp_runs

(** Table V: files / LoC / time / vulnerable files / vulns per package. *)
val table5 : webapp_runs -> string

(** Table VI: per-class detections and FPP/FP, WAP v2.1 vs WAPe. *)
val table6 : webapp_runs -> string

type plugin_run = {
  pr_profile : Wap_corpus.Profiles.plugin_profile;
  pr_result : Tool.package_result;
  pr_score : Aggregate.score;
}

(** Run the plugin corpus under WAPe armed with the [-wpsqli] weapon.
    [jobs] and [cache] are forwarded to the scan engine. *)
val run_plugins :
  ?seed:int ->
  ?only_vulnerable:bool ->
  ?jobs:int ->
  ?cache:Wap_engine.Cache.t ->
  unit ->
  plugin_run list

(** Table VII: per-class detections and FPP/FP over the plugins. *)
val table7 : plugin_run list -> string

(** Fig. 4: download / active-install histograms, analyzed vs
    vulnerable. *)
val fig4 : plugin_run list -> string

(** Fig. 5: vulnerabilities by class, web applications vs plugins. *)
val fig5 : webapp_runs -> plugin_run list -> string

(** Dynamic confirmation totals (see {!Wap_confirm}). *)
type confirmation = {
  cf_reported_confirmed : int;  (** reported vulns whose exploit replays *)
  cf_reported_refuted : int;  (** reported but the payload never lands *)
  cf_reported_unsupported : int;  (** not replayable (e.g. stored XSS) *)
  cf_fps_confirmed : int;  (** predicted FPs that are in fact exploitable *)
  cf_fps_refuted : int;
  cf_fps_unsupported : int;
}

(** Replay every finding of the first [packages] vulnerable web
    applications with attack payloads — the mechanized version of the
    paper's "all were confirmed by us manually". *)
val run_confirmation : ?seed:int -> ?packages:int -> unit -> confirmation

val confirmation_table : ?seed:int -> ?packages:int -> unit -> string

(** The §V-A extensibility experiment: (reports before, reports after)
    feeding the application's own [escape] sanitizer to the tool. *)
val escape_experiment : ?seed:int -> unit -> int * int
