(** Machine-readable export of analysis results (JSON), for integration
    with editors, CI pipelines and issue trackers. *)

module J = Wap_report.Json

let loc_to_json (l : Wap_php.Loc.t) : J.t =
  J.Obj [ ("file", J.Str l.Wap_php.Loc.file); ("line", J.Int l.Wap_php.Loc.line);
          ("col", J.Int l.Wap_php.Loc.col) ]

let origin_to_json (o : Wap_taint.Trace.origin) : J.t =
  J.Obj
    [
      ("source", J.Str o.Wap_taint.Trace.source);
      ("source_loc", loc_to_json o.Wap_taint.Trace.source_loc);
      ( "steps",
        J.List
          (List.map
             (fun (s : Wap_taint.Trace.step) ->
               J.Obj
                 [ ("loc", loc_to_json s.Wap_taint.Trace.step_loc);
                   ("code", J.Str s.Wap_taint.Trace.step_desc) ])
             o.Wap_taint.Trace.steps) );
      ("through", J.List (List.map (fun f -> J.Str f) o.Wap_taint.Trace.through));
      ("guards", J.List (List.map (fun g -> J.Str g) o.Wap_taint.Trace.guards));
    ]

let finding_to_json ?(verdict : Wap_confirm.Confirm.verdict option)
    (f : Tool.finding) : J.t =
  let c = f.Tool.candidate in
  J.Obj
    ([
       ("class", J.Str (Wap_catalog.Vuln_class.acronym c.Wap_taint.Trace.vclass));
       ("kind", J.Str (if f.Tool.predicted_fp then "false_positive" else "vulnerability"));
       ("sink", J.Str c.Wap_taint.Trace.sink_name);
       ("sink_loc", loc_to_json c.Wap_taint.Trace.sink_loc);
       ("origin", origin_to_json (Wap_taint.Trace.primary c));
       ("symptoms", J.List (List.map (fun s -> J.Str s) f.Tool.symptoms));
     ]
    @
    match verdict with
    | None -> []
    | Some v ->
        [ ( "dynamic_confirmation",
            J.Str
              (match v with
              | Wap_confirm.Confirm.Confirmed -> "confirmed"
              | Wap_confirm.Confirm.Not_confirmed -> "not_confirmed"
              | Wap_confirm.Confirm.Unsupported -> "not_replayable") ) ])

(** The whole result of one analyzed package/file as a JSON document.
    [confirm] additionally replays each finding with an attack payload
    and attaches the verdict. *)
let result_to_json ?(confirm = false) (r : Tool.package_result) : J.t =
  let units = lazy (Tool.parse_package r.Tool.package) in
  let by_file = lazy (
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (u : Wap_taint.Analyzer.file_unit) ->
        Hashtbl.replace tbl u.Wap_taint.Analyzer.path u.Wap_taint.Analyzer.program)
      (Lazy.force units);
    tbl)
  in
  let verdict_for (f : Tool.finding) =
    if not confirm then None
    else
      match
        Hashtbl.find_opt (Lazy.force by_file) f.Tool.candidate.Wap_taint.Trace.file
      with
      | Some program ->
          Some (Wap_confirm.Confirm.confirm_candidate ~program f.Tool.candidate)
      | None -> None
  in
  J.Obj
    [
      ("package", J.Str r.Tool.package.Wap_corpus.Appgen.pkg_name);
      ("files", J.Int r.Tool.files_analyzed);
      ("loc", J.Int r.Tool.loc);
      ("analysis_seconds", J.Float r.Tool.analysis_seconds);
      ("analysis_cpu_seconds", J.Float r.Tool.analysis_cpu_seconds);
      ( "phases",
        J.Obj (List.map (fun (k, v) -> (k, J.Float v)) r.Tool.phase_seconds) );
      ( "findings",
        J.List
          (List.map (fun f -> finding_to_json ?verdict:(verdict_for f) f) r.Tool.findings) );
      ("vulnerabilities", J.Int (List.length r.Tool.reported));
      ("predicted_false_positives", J.Int (List.length r.Tool.predicted_fps));
    ]

(** Convenience wrapper producing the serialized document. *)
let result_to_string ?confirm (r : Tool.package_result) : string =
  Wap_report.Json.to_string (result_to_json ?confirm r)

(* ------------------------------------------------------------------ *)
(* HTML export.                                                        *)

let html_row ?(verdict : Wap_confirm.Confirm.verdict option) (f : Tool.finding) :
    Wap_report.Html.row =
  let c = f.Tool.candidate in
  let o = Wap_taint.Trace.primary c in
  {
    Wap_report.Html.r_kind =
      (if f.Tool.predicted_fp then `False_positive else `Vulnerability);
    r_class = Wap_catalog.Vuln_class.acronym c.Wap_taint.Trace.vclass;
    r_file = c.Wap_taint.Trace.file;
    r_line = c.Wap_taint.Trace.sink_loc.Wap_php.Loc.line;
    r_sink = c.Wap_taint.Trace.sink_name;
    r_source = o.Wap_taint.Trace.source;
    r_symptoms = f.Tool.symptoms;
    r_steps =
      List.map
        (fun (s : Wap_taint.Trace.step) ->
          ( s.Wap_taint.Trace.step_loc.Wap_php.Loc.file,
            s.Wap_taint.Trace.step_loc.Wap_php.Loc.line,
            s.Wap_taint.Trace.step_desc ))
        o.Wap_taint.Trace.steps;
    r_confirmation =
      Option.map
        (function
          | Wap_confirm.Confirm.Confirmed -> "exploit confirmed"
          | Wap_confirm.Confirm.Not_confirmed -> "exploit not reproduced"
          | Wap_confirm.Confirm.Unsupported -> "not replayable")
        verdict;
  }

(** The whole result as a standalone HTML report. *)
let result_to_html ?(confirm = false) (r : Tool.package_result) : string =
  let by_file = Hashtbl.create 8 in
  List.iter
    (fun (f : Wap_corpus.Appgen.file) ->
      Hashtbl.replace by_file f.Wap_corpus.Appgen.f_name
        (lazy
          (fst
             (Wap_php.Parser.parse_string_tolerant
                ~file:f.Wap_corpus.Appgen.f_name f.Wap_corpus.Appgen.f_source))))
    r.Tool.package.Wap_corpus.Appgen.pkg_files;
  let verdict_for (f : Tool.finding) =
    if not confirm then None
    else
      match Hashtbl.find_opt by_file f.Tool.candidate.Wap_taint.Trace.file with
      | Some program ->
          Some
            (Wap_confirm.Confirm.confirm_candidate ~program:(Lazy.force program)
               f.Tool.candidate)
      | None -> None
  in
  Wap_report.Html.render
    {
      Wap_report.Html.title =
        Printf.sprintf "WAP report — %s" r.Tool.package.Wap_corpus.Appgen.pkg_name;
      generated_by = "wap 3.0-repro (DSN'16 reproduction)";
      rows =
        List.map (fun f -> html_row ?verdict:(verdict_for f) f) r.Tool.findings;
    }
