(** Alias of {!Tool.Scan} so callers can say [Wap_core.Scan]. *)

include Tool.Scan
