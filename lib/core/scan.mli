(** Alias of {!Tool.Scan} so callers can say [Wap_core.Scan]. *)

include module type of struct
  include Tool.Scan
end
