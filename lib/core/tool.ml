(** The WAP tool pipeline (Fig. 1): code analyzer -> false positive
    predictor -> code corrector, assembled for one of the two tool
    versions, optionally equipped with weapons. *)

module VC = Wap_catalog.Vuln_class
module Cat = Wap_catalog.Catalog

type t = {
  version : Version.t;
  specs : Cat.spec list;  (** active detectors, sub-modules + weapons *)
  predictor : Wap_mining.Predictor.t;
  weapons : Wap_weapon.Weapon.t list;
}

(** Create a tool instance.

    [weapons] adds weapon detectors (and their dynamic symptoms);
    [extra_sanitizers] registers user sanitization functions for
    specific classes, the §V-A "escape" extensibility mechanism —
    [None] as the class applies to every detector. *)
let create ?(seed = 2016) ?(weapons = []) ?(extra_sanitizers = []) ?dataset
    (version : Version.t) : t =
  let base_specs = Cat.specs_for (Version.classes version) in
  let weapon_specs = List.map (fun w -> w.Wap_weapon.Weapon.spec) weapons in
  let apply_extra (spec : Cat.spec) =
    let extras =
      List.filter_map
        (fun (cls, fn) ->
          match cls with
          | None -> Some (Cat.San_fn fn)
          | Some c when VC.equal c spec.Cat.vclass -> Some (Cat.San_fn fn)
          | Some _ -> None)
        extra_sanitizers
    in
    { spec with Cat.sanitizers = spec.Cat.sanitizers @ extras }
  in
  let specs = List.map apply_extra (base_specs @ weapon_specs) in
  let dynamic =
    List.concat_map (fun w -> w.Wap_weapon.Weapon.dynamic_symptoms) weapons
  in
  let config =
    Wap_mining.Predictor.with_dynamic_symptoms
      (Version.predictor_config version)
      dynamic
  in
  let dataset =
    match dataset with
    | Some d -> d
    | None -> Training.dataset_for ~seed version
  in
  let predictor = Wap_mining.Predictor.train ~seed config dataset in
  { version; specs; predictor; weapons }

(* ------------------------------------------------------------------ *)
(* Analysis results.                                                   *)

type finding = {
  candidate : Wap_taint.Trace.candidate;
  predicted_fp : bool;
  symptoms : string list;  (** justification (Fig. 3) *)
}

type package_result = {
  package : Wap_corpus.Appgen.package;
  files_analyzed : int;
  loc : int;
  analysis_seconds : float;  (** wall clock *)
  analysis_cpu_seconds : float;  (** process CPU, all worker domains *)
  phase_seconds : (string * float) list;
      (** wall clock per pipeline phase, in order: the engine's [parse],
          [digest], [analyze], [merge] plus this layer's [predict]
          (dedup + FP classification); sums to nearly
          [analysis_seconds] *)
  candidates : Wap_taint.Trace.candidate list;  (** de-duplicated *)
  findings : finding list;
  reported : Wap_taint.Trace.candidate list;  (** predicted real -> reported *)
  predicted_fps : Wap_taint.Trace.candidate list;
}

(** De-duplicate candidates found by several detectors for the same sink
    location and report group (e.g. RFI and LFI both firing on one
    include). *)
let dedup_candidates (cands : Wap_taint.Trace.candidate list) :
    Wap_taint.Trace.candidate list =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun c ->
      let key = Wap_taint.Trace.dedup_key c in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    cands

exception Parse_failure of string * string (* file, message *)

let parse_package (pkg : Wap_corpus.Appgen.package) :
    Wap_taint.Analyzer.file_unit list =
  List.map
    (fun (f : Wap_corpus.Appgen.file) ->
      try
        {
          Wap_taint.Analyzer.path = f.Wap_corpus.Appgen.f_name;
          program =
            Wap_php.Parser.parse_string ~file:f.Wap_corpus.Appgen.f_name
              f.Wap_corpus.Appgen.f_source;
        }
      with
      | Wap_php.Parser.Error (msg, loc) ->
          raise (Parse_failure (f.Wap_corpus.Appgen.f_name,
                                Printf.sprintf "%s at %s" msg (Wap_php.Loc.to_string loc)))
      | Wap_php.Lexer.Error (msg, loc) ->
          raise (Parse_failure (f.Wap_corpus.Appgen.f_name,
                                Printf.sprintf "%s at %s" msg (Wap_php.Loc.to_string loc))))
    pkg.Wap_corpus.Appgen.pkg_files

(* ------------------------------------------------------------------ *)
(* The unified Scan API: every entry point (CLI, experiments, bench,    *)
(* the legacy wrappers below) routes through one request/outcome pair   *)
(* executed on the parallel engine.                                     *)

module Scan = struct
  type request = {
    files : (string * string) list;  (** [(path, source)], one app *)
    jobs : int;  (** worker domains *)
    cache : Wap_engine.Cache.t option;
    fuse : bool;  (** fused multi-spec analysis (default) vs per-spec *)
    ir : bool;  (** fused pass 3 over lowered IR (default) vs AST walker *)
    summary_store : bool;
        (** content-addressed cross-project summary store (fleet
            workers); see {!Wap_engine.Scan.request} *)
    on_progress : (Wap_engine.Scan.progress -> unit) option;
    package : Wap_corpus.Appgen.package option;
        (** corpus package the files came from (ground truth, LoC);
            synthesized from [files] when absent *)
  }

  let request ?jobs ?cache ?fuse ?ir ?(summary_store = false) ?on_progress
      ?package files =
    {
      files;
      jobs = Wap_engine.Config.jobs jobs;
      cache;
      fuse = Wap_engine.Config.fuse fuse;
      ir = Wap_engine.Config.ir ir;
      summary_store;
      on_progress;
      package;
    }

  let request_of_package ?jobs ?cache ?fuse ?ir ?summary_store ?on_progress
      (pkg : Wap_corpus.Appgen.package) =
    request ?jobs ?cache ?fuse ?ir ?summary_store ?on_progress ~package:pkg
      (List.map
         (fun (f : Wap_corpus.Appgen.file) ->
           (f.Wap_corpus.Appgen.f_name, f.Wap_corpus.Appgen.f_source))
         pkg.Wap_corpus.Appgen.pkg_files)

  type outcome = {
    result : package_result;
    parse_errors : (string * Wap_php.Parser.recovered_error list) list;
        (** recovered errors of the files that needed recovery *)
    file_timings : Wap_engine.Scan.file_report list;  (** input order *)
    spec_timings : Wap_engine.Scan.spec_report list;  (** spec order *)
    jobs_used : int;
    cache_hits : int;
    cache_misses : int;
  }

  (** Cache-key material identifying this tool configuration: the
      version name and the full active spec set (sources, sinks,
      sanitizers — so added weapons or extra sanitizers invalidate). *)
  let fingerprint (t : t) : string =
    Wap_engine.Cache.key
      (Version.name t.version :: List.map Cat.show_spec t.specs)

  let run (t : t) (req : request) : outcome =
    let t0_wall = Unix.gettimeofday () and t0_cpu = Sys.time () in
    let pkg =
      match req.package with
      | Some pkg -> pkg
      | None ->
          {
            Wap_corpus.Appgen.pkg_name =
              (match req.files with (n, _) :: _ -> n | [] -> "<empty>");
            pkg_version = "";
            pkg_kind = Wap_corpus.Appgen.Webapp;
            pkg_files =
              List.map
                (fun (f_name, f_source) -> { Wap_corpus.Appgen.f_name; f_source })
                req.files;
            pkg_seeded = [];
          }
    in
    let engine =
      Wap_engine.Scan.run
        (Wap_engine.Scan.request ~jobs:req.jobs ?cache:req.cache
           ~fingerprint:(fingerprint t) ~fuse:req.fuse ~ir:req.ir
           ~summary_store:req.summary_store ?on_progress:req.on_progress
           ~specs:t.specs req.files)
    in
    let t0_predict = Unix.gettimeofday () in
    let candidates, findings =
      Wap_obs.Trace.with_span ~cat:"core" "phase.predict" (fun () ->
          let candidates = dedup_candidates engine.Wap_engine.Scan.candidates in
          let findings =
            List.map
              (fun c ->
                {
                  candidate = c;
                  predicted_fp =
                    Wap_mining.Predictor.is_false_positive t.predictor c;
                  symptoms = Wap_mining.Predictor.justification t.predictor c;
                })
              candidates
          in
          (candidates, findings))
    in
    let t_predict = Unix.gettimeofday () -. t0_predict in
    let predicted_fps, reported =
      List.partition (fun f -> f.predicted_fp) findings
    in
    let result =
      {
        package = pkg;
        files_analyzed = List.length pkg.Wap_corpus.Appgen.pkg_files;
        loc = Wap_corpus.Appgen.loc_of_package pkg;
        analysis_seconds = Unix.gettimeofday () -. t0_wall;
        analysis_cpu_seconds = Sys.time () -. t0_cpu;
        phase_seconds =
          engine.Wap_engine.Scan.phases @ [ ("predict", t_predict) ];
        candidates;
        findings;
        reported = List.map (fun f -> f.candidate) reported;
        predicted_fps = List.map (fun f -> f.candidate) predicted_fps;
      }
    in
    {
      result;
      parse_errors =
        List.filter_map
          (fun (r : Wap_engine.Scan.file_report) ->
            match r.Wap_engine.Scan.fr_errors with
            | [] -> None
            | errs -> Some (r.Wap_engine.Scan.fr_path, errs))
          engine.Wap_engine.Scan.file_reports;
      file_timings = engine.Wap_engine.Scan.file_reports;
      spec_timings = engine.Wap_engine.Scan.spec_reports;
      jobs_used = engine.Wap_engine.Scan.jobs_used;
      cache_hits = engine.Wap_engine.Scan.cache_hits;
      cache_misses = engine.Wap_engine.Scan.cache_misses;
    }
end

(** Correct the reported vulnerabilities of a single source file,
    returning the fixed PHP. *)
let correct_source (t : t) ~file (src : string) : string * Wap_fixer.Corrector.report =
  let result = (Scan.run t (Scan.request [ (file, src) ])).Scan.result in
  Wap_fixer.Corrector.correct_source ~file src result.reported
