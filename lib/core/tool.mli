(** The WAP tool pipeline (Fig. 1): code analyzer -> false positive
    predictor -> code corrector, assembled for one of the two tool
    versions, optionally equipped with weapons. *)

type t = {
  version : Version.t;
  specs : Wap_catalog.Catalog.spec list;
      (** active detectors: sub-modules + weapons *)
  predictor : Wap_mining.Predictor.t;
  weapons : Wap_weapon.Weapon.t list;
}

(** Create a tool instance; trains the false-positive predictor
    deterministically from the seed.

    [weapons] adds weapon detectors (and their dynamic symptoms);
    [extra_sanitizers] registers user sanitization functions — the §V-A
    "escape" extensibility mechanism ([(None, fn)] applies to every
    detector, [(Some cls, fn)] to one class); [dataset] supplies an
    external training set (the "trained data sets" input of Fig. 1)
    instead of generating one. *)
val create :
  ?seed:int ->
  ?weapons:Wap_weapon.Weapon.t list ->
  ?extra_sanitizers:(Wap_catalog.Vuln_class.t option * string) list ->
  ?dataset:Wap_mining.Dataset.t ->
  Version.t ->
  t

type finding = {
  candidate : Wap_taint.Trace.candidate;
  predicted_fp : bool;
  symptoms : string list;  (** justification (Fig. 3) *)
}

type package_result = {
  package : Wap_corpus.Appgen.package;
  files_analyzed : int;
  loc : int;
  analysis_seconds : float;  (** wall clock *)
  analysis_cpu_seconds : float;  (** process CPU, all worker domains *)
  phase_seconds : (string * float) list;
      (** wall clock per pipeline phase, in order: the engine's [parse],
          [digest], [analyze], [merge] plus this layer's [predict]
          (dedup + FP classification); sums to nearly
          [analysis_seconds] *)
  candidates : Wap_taint.Trace.candidate list;  (** de-duplicated *)
  findings : finding list;
  reported : Wap_taint.Trace.candidate list;
      (** predicted real -> reported to the user *)
  predicted_fps : Wap_taint.Trace.candidate list;
}

(** De-duplicate candidates found by several detectors for the same sink
    location and report group (e.g. RFI and LFI both firing on one
    include). *)
val dedup_candidates :
  Wap_taint.Trace.candidate list -> Wap_taint.Trace.candidate list

(** A corpus file failed to parse: (file, message). *)
exception Parse_failure of string * string

(** Parse a package's files into analyzer units.
    @raise Parse_failure on malformed PHP. *)
val parse_package :
  Wap_corpus.Appgen.package -> Wap_taint.Analyzer.file_unit list

(** The unified scan API.  Every entry point — CLI, experiments and
    bench — routes through one request/outcome pair executed on the
    parallel engine ({!Wap_engine.Scan}, a one-shot
    {!Wap_engine.Session}): tolerant parsing fans out over [jobs]
    worker domains, one fused taint pass covers all detector specs
    (per-file fan-out in its top-level stage; [fuse:false] or
    [WAP_FUSE=0] restores the per-spec pipeline), candidates merge
    deterministically, and an optional digest-keyed cache skips
    unchanged work.  Long-lived callers (the [wap serve] LSP daemon)
    drive {!Wap_engine.Session} directly for incremental re-analysis
    after edits. *)
module Scan : sig
  type request = {
    files : (string * string) list;  (** [(path, source)], one app *)
    jobs : int;  (** worker domains *)
    cache : Wap_engine.Cache.t option;
    fuse : bool;  (** fused multi-spec analysis (default) vs per-spec *)
    ir : bool;  (** fused pass 3 over lowered IR (default) vs AST walker *)
    summary_store : bool;
        (** persist pass-1 summary deltas in the cache under
            content-addressed chained prefix keys, shared across
            projects through a common cache directory; off by default,
            enabled by the fleet workers — see
            {!Wap_engine.Scan.request} *)
    on_progress : (Wap_engine.Scan.progress -> unit) option;
    package : Wap_corpus.Appgen.package option;
        (** corpus package the files came from (ground truth, LoC);
            synthesized from [files] when absent *)
  }

  (** Build a request.  [jobs], [fuse] and [ir] resolve through
      {!Wap_engine.Config} (environment gates [WAP_JOBS], [WAP_FUSE],
      [WAP_IR], flag-beats-env); omitting [cache] disables caching;
      [summary_store] defaults to off. *)
  val request :
    ?jobs:int ->
    ?cache:Wap_engine.Cache.t ->
    ?fuse:bool ->
    ?ir:bool ->
    ?summary_store:bool ->
    ?on_progress:(Wap_engine.Scan.progress -> unit) ->
    ?package:Wap_corpus.Appgen.package ->
    (string * string) list ->
    request

  (** A request over a corpus package's files. *)
  val request_of_package :
    ?jobs:int ->
    ?cache:Wap_engine.Cache.t ->
    ?fuse:bool ->
    ?ir:bool ->
    ?summary_store:bool ->
    ?on_progress:(Wap_engine.Scan.progress -> unit) ->
    Wap_corpus.Appgen.package ->
    request

  type outcome = {
    result : package_result;
    parse_errors : (string * Wap_php.Parser.recovered_error list) list;
        (** recovered errors of the files that needed recovery *)
    file_timings : Wap_engine.Scan.file_report list;  (** input order *)
    spec_timings : Wap_engine.Scan.spec_report list;  (** spec order *)
    jobs_used : int;
    cache_hits : int;
    cache_misses : int;
  }

  (** Cache-key material identifying this tool configuration: version
      name plus the full active spec set, so equipping weapons or extra
      sanitizers invalidates cached analysis results. *)
  val fingerprint : t -> string

  val run : t -> request -> outcome
end

(** Correct the reported vulnerabilities of a single source file,
    returning the fixed PHP. *)
val correct_source :
  t -> file:string -> string -> string * Wap_fixer.Corrector.report
