(** Top-level corpus API: the full evaluation workloads.

    The corpus substitutes for the paper's 54 real web-application
    packages and 115 WordPress plugins (see DESIGN.md §3): every package
    is regenerated deterministically from a seed, with ground truth
    attached. *)

module VC = Wap_catalog.Vuln_class

let default_seed = 2016

(** The 54 web application packages of Section V-A. *)
let webapps ?(seed = default_seed) () :
    (Profiles.app_profile * Appgen.package) list =
  List.map
    (fun p -> (p, Appgen.of_webapp_profile ~seed p))
    Profiles.all_webapps

(** Only the 17 packages with seeded vulnerabilities (Table V rows). *)
let vulnerable_webapps ?(seed = default_seed) () =
  List.map
    (fun p -> (p, Appgen.of_webapp_profile ~seed p))
    Profiles.vulnerable_webapps

(** The 115 WordPress plugins of Section V-B. *)
let plugins ?(seed = default_seed) () :
    (Profiles.plugin_profile * Appgen.package) list =
  List.map
    (fun p -> (p, Appgen.of_plugin_profile ~seed p))
    Profiles.all_plugins

let vulnerable_plugins ?(seed = default_seed) () =
  List.map
    (fun p -> (p, Appgen.of_plugin_profile ~seed p))
    Profiles.vulnerable_plugins

(* ------------------------------------------------------------------ *)
(* Fleet workloads: many projects over one shared framework layer.     *)

(* The WordPress-core stand-in: a benign, function-heavy layer shipped
   verbatim inside every generated project, under [_shared/] so it
   sorts (and is therefore scanned) before the project's own files —
   '_' orders before every lowercase stem.  That prefix position is
   what lets the engine's content-addressed summary store recognise
   the layer as identical across projects and summarize it once
   fleet-wide. *)
let shared_layer ?(seed = default_seed) () : Appgen.file list =
  let core =
    Appgen.generate ~seed:(seed * 127 + 13) ~kind:Appgen.Plugin
      ~name:"shared-core" ~version:"6.0" ~files:6 ~vuln_files:0 ~vulns:[]
      ~fp_easy:0 ~fp_hard:0 ~sanitized:0 ()
  in
  List.mapi
    (fun i (f : Appgen.file) ->
      (* core_<i>.php: basenames distinct from any plugin stem, so
         include splicing inside a project never resolves a project
         file to a framework one by accident *)
      { f with Appgen.f_name = Printf.sprintf "_shared/core_%d.php" i })
    core.Appgen.pkg_files

(** [count] plugin-like projects, each carrying the identical
    {!shared_layer} prefix plus its own seeded files — the workload
    [wap fleet] shards across workers.  Ground truth ([pkg_seeded])
    covers only the per-project files; the shared layer is benign. *)
let generated_projects ?(seed = default_seed) ?(files = 4) ~count () :
    (string * Appgen.package) list =
  let shared = shared_layer ~seed () in
  List.init count (fun i ->
      let name = Printf.sprintf "proj_%03d" i in
      let own =
        Appgen.generate ~seed:(seed + (i * 1009) + 17) ~kind:Appgen.Plugin
          ~name ~version:"1.0" ~files ~vuln_files:2
          ~vulns:[ (VC.Sqli, 1); (VC.Xss_reflected, 1) ]
          ~fp_easy:1 ~fp_hard:0 ~sanitized:1 ()
      in
      (name, { own with Appgen.pkg_files = shared @ own.Appgen.pkg_files }))

(* ------------------------------------------------------------------ *)
(* Training material for the false-positive predictor.                 *)

type training_program = {
  tp_source : string;  (** a small PHP program with exactly one candidate flow *)
  tp_class : VC.t;
  tp_is_fp : bool;  (** ground-truth label *)
}

let training_classes =
  [ VC.Sqli; VC.Xss_reflected; VC.Xss_stored; VC.Dt_pt; VC.Osci; VC.Hi;
    VC.Ldapi; VC.Nosqli; VC.Wp_sqli; VC.Lfi; VC.Ei ]

(** Candidate programs for building the training data set: [n] labelled
    single-flow programs per label (real vulnerability / false
    positive), spread over the vulnerability classes.  A small share of
    the false positives are "hard" ones, mirroring the noise the paper
    removed from its data set. *)
let training_programs ?(seed = default_seed) ?(legacy = false) ~per_label () :
    training_program list =
  let g = Snippet.make_gen ~seed:(seed * 31 + 7) in
  let mk i label =
    let vclass = List.nth training_classes (i mod List.length training_classes) in
    let snip = Snippet.generate ~legacy g vclass label in
    let needs_helper =
      let rec contains h n j =
        j + String.length n <= String.length h
        && (String.sub h j (String.length n) = n || contains h n (j + 1))
      in
      contains snip.Snippet.code "escape(" 0
    in
    {
      tp_source =
        "<?php\n"
        ^ (if needs_helper then Snippet.escape_helper ^ "\n" else "")
        ^ snip.Snippet.code ^ "\n";
      tp_class = vclass;
      tp_is_fp = (match label with Snippet.Real -> false | _ -> true);
    }
  in
  let reals = List.init per_label (fun i -> mk i Snippet.Real) in
  let n_hard = per_label / 16 in
  let fps =
    List.init (per_label - n_hard) (fun i -> mk i Snippet.Fp_easy)
    @ List.init n_hard (fun i -> mk i Snippet.Fp_hard)
  in
  reals @ fps

(* ------------------------------------------------------------------ *)
(* Ground-truth summaries, used to validate runs against profiles.     *)

type truth = {
  t_real : int;
  t_fp : int;  (** easy + hard false-positive candidates *)
  t_sanitized : int;
  t_real_by_group : (string * int) list;
}

let truth_of_package (p : Appgen.package) : truth =
  let count label =
    List.length
      (List.filter
         (fun s -> Snippet.equal_label s.Appgen.sd_label label)
         p.Appgen.pkg_seeded)
  in
  let by_group =
    List.fold_left
      (fun acc (s : Appgen.seeded) ->
        if Snippet.equal_label s.Appgen.sd_label Snippet.Real then begin
          let grp = VC.report_group s.Appgen.sd_class in
          let cur = try List.assoc grp acc with Not_found -> 0 in
          (grp, cur + 1) :: List.remove_assoc grp acc
        end
        else acc)
      [] p.Appgen.pkg_seeded
  in
  {
    t_real = count Snippet.Real;
    t_fp = count Snippet.Fp_easy + count Snippet.Fp_hard;
    t_sanitized = count Snippet.Sanitized;
    t_real_by_group = by_group;
  }
