(** Top-level corpus API: the full evaluation workloads.

    The corpus substitutes for the paper's 54 real web-application
    packages and 115 WordPress plugins (see DESIGN.md §3): every package
    is regenerated deterministically from a seed, with ground truth
    attached. *)

module VC := Wap_catalog.Vuln_class

val default_seed : int

(** The 54 web application packages of Section V-A. *)
val webapps :
  ?seed:int -> unit -> (Profiles.app_profile * Appgen.package) list

(** Only the 17 packages with seeded vulnerabilities (Table V rows). *)
val vulnerable_webapps :
  ?seed:int -> unit -> (Profiles.app_profile * Appgen.package) list

(** The 115 WordPress plugins of Section V-B. *)
val plugins :
  ?seed:int -> unit -> (Profiles.plugin_profile * Appgen.package) list

val vulnerable_plugins :
  ?seed:int -> unit -> (Profiles.plugin_profile * Appgen.package) list

(** The framework layer shared verbatim by every generated project
    (the WordPress-core stand-in): benign, function-heavy files named
    [_shared/core_<i>.php], so they sort — and are scanned — before
    any project's own files.  Deterministic in the seed. *)
val shared_layer : ?seed:int -> unit -> Appgen.file list

(** [count] plugin-like projects, each prefixed with the identical
    {!shared_layer} plus its own seeded files — the multi-project
    workload [wap fleet] shards across workers ([wap corpus-gen
    --projects N] writes it to disk).  Ground truth covers only the
    per-project files.  [files] sizes each project's own layer
    (default 4). *)
val generated_projects :
  ?seed:int -> ?files:int -> count:int -> unit -> (string * Appgen.package) list

(** A small labelled PHP program with exactly one candidate flow, used
    to build the predictor's training data set. *)
type training_program = {
  tp_source : string;
  tp_class : VC.t;
  tp_is_fp : bool;  (** ground-truth label *)
}

(** The classes used to build training material. *)
val training_classes : VC.t list

(** [per_label] labelled single-flow programs per label (real / false
    positive), spread over the classes; a small share of the false
    positives are "hard" ones.  [legacy] restricts the snippets to the
    original WAP's symptom era. *)
val training_programs :
  ?seed:int -> ?legacy:bool -> per_label:int -> unit -> training_program list

(** Ground-truth summary of a generated package. *)
type truth = {
  t_real : int;
  t_fp : int;  (** easy + hard false-positive candidates *)
  t_sanitized : int;
  t_real_by_group : (string * int) list;
}

val truth_of_package : Appgen.package -> truth
