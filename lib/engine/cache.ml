(** Digest-keyed incremental result cache: in-memory table, optionally
    mirrored to a directory of marshalled entries. *)

type t = {
  cache_dir : string option;
  mem : (string, string) Hashtbl.t;
  order : string Queue.t;  (** insertion order, for eviction *)
  max_entries : int option;
  lock : Mutex.t;
  (* lock-free so a hot lookup path never serializes on the table lock
     just to count itself, and counts are exact under any [--jobs] *)
  n_hits : int Atomic.t;
  n_misses : int Atomic.t;
  n_evictions : int Atomic.t;
}

let m_hits = lazy (Wap_obs.Metrics.counter "engine.cache.hits")
let m_misses = lazy (Wap_obs.Metrics.counter "engine.cache.misses")
let m_evictions = lazy (Wap_obs.Metrics.counter "engine.cache.evictions")

let create ?dir ?max_entries () =
  let dir =
    match dir with
    | None -> None
    | Some d -> (
        try
          if not (Sys.file_exists d) then Sys.mkdir d 0o755;
          if Sys.is_directory d then Some d else None
        with Sys_error _ -> None)
  in
  {
    cache_dir = dir;
    mem = Hashtbl.create 64;
    order = Queue.create ();
    max_entries =
      (match max_entries with Some n when n >= 1 -> Some n | _ -> None);
    lock = Mutex.create ();
    n_hits = Atomic.make 0;
    n_misses = Atomic.make 0;
    n_evictions = Atomic.make 0;
  }

let dir t = t.cache_dir

let key parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let disk_path t k =
  Option.map (fun d -> Filename.concat d (k ^ ".wapc")) t.cache_dir

(* On-disk entry frame: magic, hex digest of the payload, payload.
   The digest makes truncation, torn concurrent writes, bit rot and
   foreign files (anything another tool dropped in the directory) all
   detectable on read — a frame that does not verify is handled exactly
   like a missing entry, never surfaced to the caller. *)
let disk_magic = "WAPC1\n"
let digest_hex_len = 32  (* Digest.to_hex is a 32-char MD5 *)

let frame payload =
  String.concat ""
    [ disk_magic; Digest.to_hex (Digest.string payload); payload ]

let unframe (s : string) : string option =
  let header = String.length disk_magic + digest_hex_len in
  if
    String.length s >= header
    && String.sub s 0 (String.length disk_magic) = disk_magic
  then begin
    let claimed = String.sub s (String.length disk_magic) digest_hex_len in
    let payload = String.sub s header (String.length s - header) in
    if String.equal claimed (Digest.to_hex (Digest.string payload)) then
      Some payload
    else None
  end
  else None

let remove_file path = try Sys.remove path with Sys_error _ -> ()

(* A frame that fails to verify is deleted so the cache heals itself:
   the next store rewrites the entry instead of tripping over the
   corpse on every lookup. *)
let read_file path =
  match
    (try
       let ic = open_in_bin path in
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () -> Some (really_input_string ic (in_channel_length ic)))
     with Sys_error _ | End_of_file -> None)
  with
  | None -> None
  | Some raw -> (
      match unframe raw with
      | Some _ as payload -> payload
      | None ->
          remove_file path;
          None)

let write_file path contents =
  (* Atomic publish: write a unique same-directory temp file, then
     [Sys.rename] into place, so a concurrent reader (another fleet
     worker on the same --cache-dir) sees either the old complete entry
     or the new complete entry, never a torn one.  [close_out] is
     inside the [try] on purpose — it performs the final flush, and a
     swallowed flush error (disk full) would otherwise let a truncated
     temp file get renamed over a good entry. *)
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
      (Hashtbl.hash (Domain.self ()))
  in
  try
    let oc = open_out_bin tmp in
    (try
       output_string oc (frame contents);
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e);
    Sys.rename tmp path
  with Sys_error _ | Unix.Unix_error _ -> remove_file tmp

(* Must be called with the lock held.  Evicts in insertion order until
   the in-memory table fits the cap again; disk entries survive (they
   are the persistence layer, not the working set). *)
let evict_over_cap t =
  match t.max_entries with
  | None -> ()
  | Some cap ->
      while Hashtbl.length t.mem > cap && not (Queue.is_empty t.order) do
        let victim = Queue.pop t.order in
        (* re-inserted keys appear twice in [order]; only a key still
           present counts as an eviction *)
        if Hashtbl.mem t.mem victim then begin
          Hashtbl.remove t.mem victim;
          Atomic.incr t.n_evictions;
          Wap_obs.Metrics.incr (Lazy.force m_evictions)
        end
      done

let remember t k s =
  locked t (fun () ->
      if not (Hashtbl.mem t.mem k) then Queue.push k t.order;
      Hashtbl.replace t.mem k s;
      evict_over_cap t)

let find_raw t k : string option =
  match locked t (fun () -> Hashtbl.find_opt t.mem k) with
  | Some _ as hit -> hit
  | None -> (
      match Option.bind (disk_path t k) read_file with
      | Some s as hit ->
          remember t k s;
          hit
      | None -> None)

let store_raw t k v =
  remember t k v;
  match disk_path t k with Some path -> write_file path v | None -> ()

let invalidate t ~key:k =
  locked t (fun () -> Hashtbl.remove t.mem k);
  match disk_path t k with Some path -> remove_file path | None -> ()

let count_miss t k =
  Atomic.incr t.n_misses;
  Wap_obs.Metrics.incr (Lazy.force m_misses);
  Wap_obs.Trace.instant ~cat:"cache" "cache.miss"
    ~args:[ ("key", String.sub k 0 (min 12 (String.length k))) ]

let find t ~key:k : 'a option =
  match find_raw t k with
  | Some s -> (
      (* The frame digest catches disk-level damage, but an entry can
         still hold a marshalled value of another shape (a key collision
         across format eras, a foreign writer that produced a valid
         frame).  [Marshal.from_string] raising must read as a miss —
         and evict the poisoned entry — rather than kill the scan. *)
      match (Marshal.from_string s 0 : 'a) with
      | v ->
          Atomic.incr t.n_hits;
          Wap_obs.Metrics.incr (Lazy.force m_hits);
          Wap_obs.Trace.instant ~cat:"cache" "cache.hit"
            ~args:[ ("key", String.sub k 0 (min 12 (String.length k))) ];
          Some v
      | exception _ ->
          invalidate t ~key:k;
          count_miss t k;
          None)
  | None ->
      count_miss t k;
      None

let store t ~key:k v = store_raw t k (Marshal.to_string v [])

let memoize t ~key:k (compute : unit -> 'a) : 'a * bool =
  match find t ~key:k with
  | Some v -> (v, true)
  | None ->
      let v = compute () in
      store t ~key:k v;
      (v, false)

let hits t = Atomic.get t.n_hits
let misses t = Atomic.get t.n_misses
let evictions t = Atomic.get t.n_evictions

let reset_stats t =
  Atomic.set t.n_hits 0;
  Atomic.set t.n_misses 0;
  Atomic.set t.n_evictions 0
