(** Digest-keyed incremental result cache: in-memory table, optionally
    mirrored to a directory of marshalled entries. *)

type t = {
  cache_dir : string option;
  mem : (string, string) Hashtbl.t;
  lock : Mutex.t;
  mutable n_hits : int;
  mutable n_misses : int;
}

let create ?dir () =
  let dir =
    match dir with
    | None -> None
    | Some d -> (
        try
          if not (Sys.file_exists d) then Sys.mkdir d 0o755;
          if Sys.is_directory d then Some d else None
        with Sys_error _ -> None)
  in
  {
    cache_dir = dir;
    mem = Hashtbl.create 64;
    lock = Mutex.create ();
    n_hits = 0;
    n_misses = 0;
  }

let dir t = t.cache_dir

let key parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let disk_path t k =
  Option.map (fun d -> Filename.concat d (k ^ ".wapc")) t.cache_dir

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with Sys_error _ | End_of_file -> None

let write_file path contents =
  (* write-then-rename so concurrent readers never see a torn entry *)
  try
    let tmp =
      Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
        (Hashtbl.hash (Domain.self ()))
    in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc contents);
    Sys.rename tmp path
  with Sys_error _ | Unix.Unix_error _ -> ()

let find_raw t k : string option =
  match locked t (fun () -> Hashtbl.find_opt t.mem k) with
  | Some _ as hit -> hit
  | None -> (
      match Option.bind (disk_path t k) read_file with
      | Some s as hit ->
          locked t (fun () -> Hashtbl.replace t.mem k s);
          hit
      | None -> None)

let store_raw t k v =
  locked t (fun () -> Hashtbl.replace t.mem k v);
  match disk_path t k with Some path -> write_file path v | None -> ()

let memoize t ~key:k (compute : unit -> 'a) : 'a * bool =
  match find_raw t k with
  | Some s ->
      locked t (fun () -> t.n_hits <- t.n_hits + 1);
      ((Marshal.from_string s 0 : 'a), true)
  | None ->
      locked t (fun () -> t.n_misses <- t.n_misses + 1);
      let v = compute () in
      store_raw t k (Marshal.to_string v []);
      (v, false)

let hits t = locked t (fun () -> t.n_hits)
let misses t = locked t (fun () -> t.n_misses)

let reset_stats t =
  locked t (fun () ->
      t.n_hits <- 0;
      t.n_misses <- 0)
