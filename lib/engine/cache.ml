(** Digest-keyed incremental result cache: in-memory table, optionally
    mirrored to a directory of marshalled entries. *)

type t = {
  cache_dir : string option;
  mem : (string, string) Hashtbl.t;
  order : string Queue.t;  (** insertion order, for eviction *)
  max_entries : int option;
  lock : Mutex.t;
  (* lock-free so a hot lookup path never serializes on the table lock
     just to count itself, and counts are exact under any [--jobs] *)
  n_hits : int Atomic.t;
  n_misses : int Atomic.t;
  n_evictions : int Atomic.t;
}

let m_hits = lazy (Wap_obs.Metrics.counter "engine.cache.hits")
let m_misses = lazy (Wap_obs.Metrics.counter "engine.cache.misses")
let m_evictions = lazy (Wap_obs.Metrics.counter "engine.cache.evictions")

let create ?dir ?max_entries () =
  let dir =
    match dir with
    | None -> None
    | Some d -> (
        try
          if not (Sys.file_exists d) then Sys.mkdir d 0o755;
          if Sys.is_directory d then Some d else None
        with Sys_error _ -> None)
  in
  {
    cache_dir = dir;
    mem = Hashtbl.create 64;
    order = Queue.create ();
    max_entries =
      (match max_entries with Some n when n >= 1 -> Some n | _ -> None);
    lock = Mutex.create ();
    n_hits = Atomic.make 0;
    n_misses = Atomic.make 0;
    n_evictions = Atomic.make 0;
  }

let dir t = t.cache_dir

let key parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let disk_path t k =
  Option.map (fun d -> Filename.concat d (k ^ ".wapc")) t.cache_dir

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with Sys_error _ | End_of_file -> None

let write_file path contents =
  (* write-then-rename so concurrent readers never see a torn entry *)
  try
    let tmp =
      Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
        (Hashtbl.hash (Domain.self ()))
    in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc contents);
    Sys.rename tmp path
  with Sys_error _ | Unix.Unix_error _ -> ()

(* Must be called with the lock held.  Evicts in insertion order until
   the in-memory table fits the cap again; disk entries survive (they
   are the persistence layer, not the working set). *)
let evict_over_cap t =
  match t.max_entries with
  | None -> ()
  | Some cap ->
      while Hashtbl.length t.mem > cap && not (Queue.is_empty t.order) do
        let victim = Queue.pop t.order in
        (* re-inserted keys appear twice in [order]; only a key still
           present counts as an eviction *)
        if Hashtbl.mem t.mem victim then begin
          Hashtbl.remove t.mem victim;
          Atomic.incr t.n_evictions;
          Wap_obs.Metrics.incr (Lazy.force m_evictions)
        end
      done

let remember t k s =
  locked t (fun () ->
      if not (Hashtbl.mem t.mem k) then Queue.push k t.order;
      Hashtbl.replace t.mem k s;
      evict_over_cap t)

let find_raw t k : string option =
  match locked t (fun () -> Hashtbl.find_opt t.mem k) with
  | Some _ as hit -> hit
  | None -> (
      match Option.bind (disk_path t k) read_file with
      | Some s as hit ->
          remember t k s;
          hit
      | None -> None)

let store_raw t k v =
  remember t k v;
  match disk_path t k with Some path -> write_file path v | None -> ()

let find t ~key:k : 'a option =
  match find_raw t k with
  | Some s ->
      Atomic.incr t.n_hits;
      Wap_obs.Metrics.incr (Lazy.force m_hits);
      Wap_obs.Trace.instant ~cat:"cache" "cache.hit"
        ~args:[ ("key", String.sub k 0 (min 12 (String.length k))) ];
      Some (Marshal.from_string s 0 : 'a)
  | None ->
      Atomic.incr t.n_misses;
      Wap_obs.Metrics.incr (Lazy.force m_misses);
      Wap_obs.Trace.instant ~cat:"cache" "cache.miss"
        ~args:[ ("key", String.sub k 0 (min 12 (String.length k))) ];
      None

let store t ~key:k v = store_raw t k (Marshal.to_string v [])

let memoize t ~key:k (compute : unit -> 'a) : 'a * bool =
  match find t ~key:k with
  | Some v -> (v, true)
  | None ->
      let v = compute () in
      store t ~key:k v;
      (v, false)

let hits t = Atomic.get t.n_hits
let misses t = Atomic.get t.n_misses
let evictions t = Atomic.get t.n_evictions

let reset_stats t =
  Atomic.set t.n_hits 0;
  Atomic.set t.n_misses 0;
  Atomic.set t.n_evictions 0
