(** Digest-keyed incremental result cache.

    Entries are keyed by a hex digest built from every input that
    determines the value (source digests, tool version, active detector
    specs, cache-format version) and hold a marshalled value.  Lookups
    hit the in-memory table first; a cache created with [~dir] also
    persists every entry as a file under that directory and re-reads it
    in later runs, which is what lets [wap analyze]/[wap experiments]
    skip unchanged work between processes.

    All operations are safe to call from several domains at once.  The
    hit/miss/eviction counters are atomics, so they stay exact under any
    [--jobs]; each lookup also bumps the process-wide
    [engine.cache.{hits,misses,evictions}] counters of
    {!Wap_obs.Metrics.global} and, when tracing is on, records an
    instant event.

    The marshalling is untyped, so a key must always be requested at the
    type it was stored at — callers guarantee this by embedding a kind
    tag (e.g. ["parse"], ["analyze"]) and a format-version string in the
    key material.

    Disk entries are crash- and concurrency-safe: every entry is
    published by writing a unique same-directory temp file and renaming
    it into place (readers see the old or the new complete entry, never
    a torn one), and carries a digest-verified frame.  An entry that
    fails verification — truncated by a crash, corrupted on disk, or a
    foreign file — is deleted and read as a miss; a verified frame whose
    marshalled payload still cannot be decoded is likewise evicted and
    read as a miss instead of raising.  Several processes may therefore
    share one cache directory (the fleet's cross-project summary store
    does exactly this). *)

type t

(** [create ?dir ?max_entries ()] makes an empty cache.  With [dir] the
    directory is created if missing and entries are persisted there; on
    any disk error the cache silently degrades to in-memory only.  With
    [max_entries] the in-memory table is capped: overflowing entries are
    evicted in insertion order (persisted files are kept, so an evicted
    entry can still be re-read from disk). *)
val create : ?dir:string -> ?max_entries:int -> unit -> t

(** The persistence directory, if any. *)
val dir : t -> string option

(** [key parts] combines the given key material into one hex digest. *)
val key : string list -> string

(** [memoize t ~key compute] returns [(v, hit)]: the cached value and
    [true] on a hit, otherwise [(compute (), false)] after storing the
    computed value under [key]. *)
val memoize : t -> key:string -> (unit -> 'a) -> 'a * bool

(** Typed probe: the cached value, counting a hit or a miss.  Pair with
    {!store} when the compute step cannot be expressed as a closure
    passed to {!memoize} (e.g. probing many keys before deciding). *)
val find : t -> key:string -> 'a option

(** Store a value without touching the hit/miss counters. *)
val store : t -> key:string -> 'a -> unit

(** Drop an entry from the in-memory table and the persistence
    directory (used internally to evict undecodable entries; exposed
    for targeted invalidation and tests). *)
val invalidate : t -> key:string -> unit

(** Lookups that found an entry / had to compute / entries evicted since
    creation (or the last {!reset_stats}). *)
val hits : t -> int

val misses : t -> int
val evictions : t -> int
val reset_stats : t -> unit
