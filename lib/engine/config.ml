(* One place that reads the engine's environment gates.  Each gate has
   a [default_*] reader (the raw environment lookup) and a resolver of
   the same name taking the optional command-line flag: an explicit
   flag always beats the environment, the environment beats the
   built-in default. *)

let bool_gate name =
  match Sys.getenv_opt name with
  | Some ("0" | "false" | "off") -> false
  | _ -> true

let default_fuse () = bool_gate "WAP_FUSE"
let default_ir () = bool_gate "WAP_IR"

let default_jobs () =
  match Sys.getenv_opt "WAP_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let default_trace_out () =
  match Sys.getenv_opt "WAP_TRACE_OUT" with
  | Some "" | None -> None
  | Some path -> Some path

let fuse flag = match flag with Some b -> b | None -> default_fuse ()
let ir flag = match flag with Some b -> b | None -> default_ir ()
let jobs flag = match flag with Some n -> max 1 n | None -> default_jobs ()

let trace_out flag =
  match flag with Some path -> Some path | None -> default_trace_out ()
