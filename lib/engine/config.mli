(** The engine's environment gates, read in one place.

    Four gates tune a scan without touching the call site:

    - [WAP_FUSE] — [0]/[false]/[off] switches the fused multi-spec
      analysis back to the sequential per-spec pipeline.
    - [WAP_IR] — [0]/[false]/[off] runs the fused top-level sweep on
      the AST walker instead of the lowered three-address IR.
    - [WAP_JOBS] — worker-domain count for the {!Pool}; anything that
      is not an integer [>= 1] falls back to
      [Domain.recommended_domain_count ()].
    - [WAP_TRACE_OUT] — default Chrome-trace output path for tools
      that support [--trace-out].

    Each gate comes in two flavors: [default_*] reads the raw
    environment, and the resolver of the same base name applies the
    {e flag-beats-env} precedence — an explicit command-line flag (or
    request field) always wins over the environment, which wins over
    the built-in default.  All engine entry points and the CLI resolve
    through these, so the precedence is uniform tool-wide. *)

(** [false] iff [WAP_FUSE] is set to [0], [false] or [off]. *)
val default_fuse : unit -> bool

(** [false] iff [WAP_IR] is set to [0], [false] or [off]. *)
val default_ir : unit -> bool

(** [WAP_JOBS] if it parses as an integer [>= 1], else
    [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** [WAP_TRACE_OUT] unless unset or empty. *)
val default_trace_out : unit -> string option

(** [fuse flag]: [flag] if given, else {!default_fuse}[ ()]. *)
val fuse : bool option -> bool

(** [ir flag]: [flag] if given, else {!default_ir}[ ()]. *)
val ir : bool option -> bool

(** [jobs flag]: [max 1 flag] if given, else {!default_jobs}[ ()]. *)
val jobs : int option -> int

(** [trace_out flag]: [flag] if given, else {!default_trace_out}[ ()]. *)
val trace_out : string option -> string option
