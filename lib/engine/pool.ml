(** Domain-based worker pool over a mutex-protected deque. *)

(* Queue wait is the time from pool start (every item is enqueued up
   front) to the moment a worker dequeues the item; run time is the
   application of [f] itself.  Striped atomics, so recording from every
   worker domain is lock-free. *)
let m_queue_wait = lazy (Wap_obs.Metrics.histogram "engine.pool.queue_wait_seconds")
let m_task_run = lazy (Wap_obs.Metrics.histogram "engine.pool.task_run_seconds")
let m_tasks = lazy (Wap_obs.Metrics.counter "engine.pool.tasks")

(* ------------------------------------------------------------------ *)
(* Mutex-protected deque of work-item indices.                         *)

type deque = {
  mutable front : int list;
  mutable back : int list;  (** reversed *)
  lock : Mutex.t;
}

let deque_of_indices n =
  { front = List.init n Fun.id; back = []; lock = Mutex.create () }

let pop_front (d : deque) : int option =
  Mutex.lock d.lock;
  let item =
    match d.front with
    | x :: rest ->
        d.front <- rest;
        Some x
    | [] -> (
        match List.rev d.back with
        | x :: rest ->
            d.front <- rest;
            d.back <- [];
            Some x
        | [] -> None)
  in
  Mutex.unlock d.lock;
  item

(* ------------------------------------------------------------------ *)
(* Parallel map.                                                       *)

let map ?(jobs = Config.default_jobs ()) (f : 'a -> 'b) (xs : 'a array) :
    'b array =
  let n = Array.length xs in
  let jobs = max 1 (min jobs n) in
  let t_start = Wap_obs.Clock.now_ns () in
  let timed_apply x =
    let t0 = Wap_obs.Clock.now_ns () in
    Wap_obs.Metrics.observe (Lazy.force m_queue_wait)
      (Wap_obs.Clock.ns_to_s (t0 - t_start));
    let y = f x in
    Wap_obs.Metrics.observe (Lazy.force m_task_run)
      (Wap_obs.Clock.ns_to_s (Wap_obs.Clock.elapsed_ns t0));
    Wap_obs.Metrics.incr (Lazy.force m_tasks);
    y
  in
  if jobs <= 1 then Array.map timed_apply xs
  else begin
    let results : 'b option array = Array.make n None in
    (* first failure by input index, so the escaping exception is
       independent of scheduling *)
    let failure : (int * exn * Printexc.raw_backtrace) option Atomic.t =
      Atomic.make None
    in
    let record_failure i exn bt =
      let rec retry () =
        let cur = Atomic.get failure in
        let better = match cur with None -> true | Some (j, _, _) -> i < j in
        if better && not (Atomic.compare_and_set failure cur (Some (i, exn, bt)))
        then retry ()
      in
      retry ()
    in
    let tasks = deque_of_indices n in
    (* every task runs even after a failure, so the failure with the
       lowest input index is found deterministically *)
    let rec worker () =
      match pop_front tasks with
      | None -> ()
      | Some i ->
          (match timed_apply xs.(i) with
          | y -> results.(i) <- Some y
          | exception exn ->
              record_failure i exn (Printexc.get_raw_backtrace ()));
          worker ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    (match Atomic.get failure with
    | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ());
    Array.map (function Some y -> y | None -> assert false) results
  end

let map_list ?jobs f xs = Array.to_list (map ?jobs f (Array.of_list xs))
