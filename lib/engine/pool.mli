(** A hand-rolled Domain-based worker pool.

    Work items live in a mutex-protected deque; [jobs] domains (the
    calling one included) pop and execute them until the deque drains.
    Results are written into per-index slots, so the output order is
    that of the input regardless of scheduling — the substrate the scan
    engine builds its deterministic merge on.

    Every work item records its queue wait (pool start to dequeue) and
    run time into the [engine.pool.*] histograms of
    {!Wap_obs.Metrics.global}, which the CLI's [--stats] summary
    reads. *)

(** [map ~jobs f xs] is [Array.map f xs] computed by [jobs] domains;
    [jobs] defaults to {!Config.default_jobs}[ ()].
    [jobs] is clamped to [1 .. Array.length xs]; at [1] (or on singleton
    input) no domain is spawned and the map runs in the caller.

    If applications of [f] raise, every work item still runs and the
    exception of the {e lowest} failing input index is re-raised in the
    caller — which exception escapes does not depend on scheduling. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array

(** [map_list ~jobs f xs] is [List.map f xs] through {!map}. *)
val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
