(* The batch entry point, a thin wrapper over a one-shot {!Session}:
   open the project, export it, drop the state.  All pipeline
   machinery lives in [Session]; the type equations below keep the
   historical [Scan.*] names working. *)

type progress = Session.progress =
  | File_parsed of { path : string; cached : bool }
  | Spec_analyzed of { spec : string; cached : bool }
  | File_analyzed of { path : string; cached : bool }

type request = Session.request = {
  files : (string * string) list;
  specs : Wap_catalog.Catalog.spec list;
  jobs : int;
  cache : Cache.t option;
  fingerprint : string;
  interprocedural : bool;
  fuse : bool;
  ir : bool;
  summary_store : bool;
  on_progress : (progress -> unit) option;
}

type file_report = Session.file_report = {
  fr_path : string;
  fr_seconds : float;
  fr_cached : bool;
  fr_errors : Wap_php.Parser.recovered_error list;
}

type spec_report = Session.spec_report = {
  sr_spec : string;
  sr_seconds : float;
  sr_cached : bool;
  sr_candidates : int;
}

type outcome = Session.outcome = {
  units : Wap_taint.Analyzer.file_unit list;
  candidates : Wap_taint.Trace.candidate list;
  file_reports : file_report list;
  spec_reports : spec_report list;
  wall_seconds : float;
  cpu_seconds : float;
  phases : (string * float) list;
  jobs_used : int;
  cache_hits : int;
  cache_misses : int;
}

let cache_format_version = Session.cache_format_version
let request = Session.request
let spec_label = Session.spec_label
let run = Session.run
