(** The parallel scan engine: parse fan-out per file, one fused taint
    pass over all detector specs (analysis fan-out per file in its
    parallel stage), deterministic merge, digest-keyed caching.

    [fuse:false] (or [WAP_FUSE=0]) switches stage 2 back to the
    sequential one-pass-per-spec pipeline — the escape hatch used for
    differential checking of the fused analyzer.

    The fused top-level sweep (pass 3) runs on the three-address IR
    ({!Wap_ir}): each file is lowered once and executed as flat
    instruction arrays.  [ir:false] (or [WAP_IR=0]) keeps the AST
    walker — the differential reference enforced byte-identical by the
    [scan-ir-equiv] oracle. *)

open Wap_php
module Cat = Wap_catalog.Catalog
module Trace = Wap_taint.Trace
module Obs = Wap_obs.Trace

(* v3: the fused analyze-file entries gained the IR/AST mode in their
   digest (and the IR path itself), so v2 entries must not be reused. *)
let cache_format_version = "wap-engine-3"

let default_fuse () =
  match Sys.getenv_opt "WAP_FUSE" with
  | Some ("0" | "false" | "off") -> false
  | _ -> true

let default_ir () =
  match Sys.getenv_opt "WAP_IR" with
  | Some ("0" | "false" | "off") -> false
  | _ -> true

let m_files_parsed = lazy (Wap_obs.Metrics.counter "engine.files_parsed")

let m_parse_recoveries =
  lazy (Wap_obs.Metrics.counter "engine.parse_error_recoveries")

let m_candidates spec_label =
  Wap_obs.Metrics.counter ("engine.candidates." ^ spec_label)

type progress =
  | File_parsed of { path : string; cached : bool }
  | Spec_analyzed of { spec : string; cached : bool }
  | File_analyzed of { path : string; cached : bool }

type request = {
  files : (string * string) list;
  specs : Cat.spec list;
  jobs : int;
  cache : Cache.t option;
  fingerprint : string;
  interprocedural : bool;
  fuse : bool;
  ir : bool;  (** fused pass 3 on the lowered IR (default) or the AST *)
  on_progress : (progress -> unit) option;
}

let request ?(jobs = Pool.default_jobs ()) ?cache ?(fingerprint = "")
    ?(interprocedural = true) ?fuse ?ir ?on_progress ~specs files =
  let fuse = match fuse with Some b -> b | None -> default_fuse () in
  let ir = match ir with Some b -> b | None -> default_ir () in
  { files; specs; jobs; cache; fingerprint; interprocedural; fuse; ir;
    on_progress }

type file_report = {
  fr_path : string;
  fr_seconds : float;
  fr_cached : bool;
  fr_errors : Parser.recovered_error list;
}

type spec_report = {
  sr_spec : string;
  sr_seconds : float;
  sr_cached : bool;
  sr_candidates : int;
}

type outcome = {
  units : Wap_taint.Analyzer.file_unit list;
  candidates : Trace.candidate list;
  file_reports : file_report list;
  spec_reports : spec_report list;
  wall_seconds : float;
  cpu_seconds : float;
  phases : (string * float) list;
  jobs_used : int;
  cache_hits : int;
  cache_misses : int;
}

let spec_label (s : Cat.spec) =
  Wap_catalog.Submodule.name s.Cat.submodule
  ^ "/"
  ^ Wap_catalog.Vuln_class.acronym s.Cat.vclass

(* Total order of the deterministic merge: sink file, then sink
   location, then the spec's position in the active set, then discovery
   order inside that spec.  The location-major order is what users see;
   the two trailing components pin down ties (e.g. RFI and LFI both
   firing on one include) so the later de-duplication keeps the same
   representative as a sequential spec-by-spec run. *)
let merge_compare (si, qi, (a : Trace.candidate)) (sj, qj, (b : Trace.candidate))
    =
  let c = String.compare a.Trace.file b.Trace.file in
  if c <> 0 then c
  else
    let c =
      compare a.Trace.sink_loc.Loc.line b.Trace.sink_loc.Loc.line
    in
    if c <> 0 then c
    else
      let c = compare a.Trace.sink_loc.Loc.col b.Trace.sink_loc.Loc.col in
      if c <> 0 then c
      else
        let c = compare (si : int) sj in
        if c <> 0 then c else compare (qi : int) qj

(* [timed name f] runs [f] under a span and returns its result plus the
   wall clock it took — the per-phase breakdown surfaced by [--stats]
   and the JSON export. *)
let timed name f =
  let t0 = Wap_obs.Clock.now_ns () in
  let v = Obs.with_span ~cat:"engine" name f in
  (v, Wap_obs.Clock.ns_to_s (Wap_obs.Clock.elapsed_ns t0))

let run (req : request) : outcome =
  Obs.with_span ~cat:"engine" "scan"
    ~args:[ ("files", string_of_int (List.length req.files));
            ("specs", string_of_int (List.length req.specs));
            ("jobs", string_of_int req.jobs) ]
  @@ fun () ->
  let t0_wall = Unix.gettimeofday () and t0_cpu = Sys.time () in
  let jobs = max 1 req.jobs in
  let hits0 = match req.cache with Some c -> Cache.hits c | None -> 0 in
  let misses0 = match req.cache with Some c -> Cache.misses c | None -> 0 in
  let progress ev =
    match req.on_progress with Some f -> f ev | None -> ()
  in
  (* ---- stage 1: tolerant parse, one work item per file ------------- *)
  let parse_one (path, src) =
    Obs.with_span ~cat:"engine" "parse_file" ~args:[ ("file", path) ]
    @@ fun () ->
    let t0 = Unix.gettimeofday () in
    let compute () = Parser.parse_string_tolerant ~file:path src in
    let (program, errs), cached =
      match req.cache with
      | Some c ->
          (* parsing depends only on the file itself, not on the active
             spec set, so the key deliberately omits the fingerprint *)
          let k =
            Cache.key
              [ cache_format_version; "parse"; path;
                Digest.to_hex (Digest.string src) ]
          in
          Cache.memoize c ~key:k compute
      | None -> (compute (), false)
    in
    Wap_obs.Metrics.incr (Lazy.force m_files_parsed);
    if errs <> [] then
      Wap_obs.Metrics.incr ~by:(List.length errs)
        (Lazy.force m_parse_recoveries);
    ( { Wap_taint.Analyzer.path; program },
      { fr_path = path; fr_seconds = Unix.gettimeofday () -. t0;
        fr_cached = cached; fr_errors = errs } )
  in
  let parsed, t_parse =
    timed "phase.parse" (fun () ->
        let parsed = Pool.map ~jobs parse_one (Array.of_list req.files) in
        Array.iter
          (fun (_, r) ->
            progress (File_parsed { path = r.fr_path; cached = r.fr_cached }))
          parsed;
        parsed)
  in
  let units = Array.to_list (Array.map fst parsed) in
  let file_reports = Array.to_list (Array.map snd parsed) in
  (* The analysis of one file depends on every other file (shared
     function summaries, include splicing), so analysis entries are
     keyed by a digest of the whole source set: any edit invalidates
     them all, which keeps caching sound. *)
  let project_digest, t_digest =
    timed "phase.digest" (fun () ->
        Cache.key
          (cache_format_version :: req.fingerprint
          :: (List.map
                (fun (p, src) -> p ^ "\x01" ^ Digest.to_hex (Digest.string src))
                req.files
             |> List.sort String.compare)))
  in
  (* ---- stage 2 (fused): one taint pass for all specs, one parallel
     work item per FILE in the top-level sweep -------------------------- *)
  let fused_stage () =
    (* per-file entries still depend on every project-wide input
       (summaries, include splicing), so the digest covers the whole
       source set and the full spec set: any edit, or a weapon
       added/removed, invalidates every entry *)
    (* [ir] is part of the digest so the IR and AST modes never share
       entries — a shared entry would mask exactly the divergences the
       [scan-ir-equiv] differential oracle exists to catch *)
    let fuse_digest =
      Cache.key
        [ cache_format_version; project_digest;
          Cat.set_fingerprint req.specs;
          string_of_bool req.interprocedural;
          string_of_bool req.ir ]
    in
    (* per-file keys carry the file's own source digest, not just its
       path: a request may legally repeat a path with different
       contents (merged corpora do), and path-only keys would hand the
       second file the first one's entry *)
    let src_digests =
      Array.of_list
        (List.map (fun (_, src) -> Digest.to_hex (Digest.string src)) req.files)
    in
    let file_key i (u : Wap_taint.Analyzer.file_unit) =
      Cache.key
        [ cache_format_version; "analyze-file"; fuse_digest;
          u.Wap_taint.Analyzer.path; src_digests.(i) ]
    in
    (* all-or-nothing probe (every key is probed even after a miss, so
       hit/miss counts stay deterministic): assembling a partial set
       would not be cheaper — the passes are whole-project anyway *)
    let probed =
      List.mapi
        (fun i u ->
          let entry :
              ((int * Trace.candidate) list * (int * Trace.candidate) list)
              option =
            match req.cache with
            | Some c -> Cache.find c ~key:(file_key i u)
            | None -> None
          in
          (u, entry))
        units
    in
    let all_hit =
      units <> [] && List.for_all (fun (_, e) -> e <> None) probed
    in
    let per_file =
      if all_hit then
        List.map (fun (u, e) -> (u, Option.get e)) probed
      else begin
        let st =
          Wap_taint.Analyzer.project_state
            ~interprocedural:req.interprocedural ~specs:req.specs ()
        in
        (* passes 1 and 2 are sequential by design (summaries build up
           across files); pass 3 is pure per file and fans out *)
        if req.interprocedural then
          Obs.with_span ~cat:"engine" "fused.summaries" (fun () ->
              List.iter (Wap_taint.Analyzer.summarize_file st) units);
        let pass2 =
          Obs.with_span ~cat:"engine" "fused.functions" (fun () ->
              Array.of_list
                (List.map (Wap_taint.Analyzer.analyze_file_functions st) units))
        in
        (* pass 3 per-file work item: lower once and sweep the flat
           instruction arrays (default), or walk the AST ([ir:false]).
           The memo key is [fuse_digest] (covers every spliced source
           and the spec set) plus the file's own path AND source
           digest — path alone is not enough, see [file_key] — so
           rescans of an unchanged project skip lowering entirely *)
        let unit_arr = Array.of_list units in
        let toplevel_one =
          if req.ir then fun i ->
            let u = unit_arr.(i) in
            Wap_ir.Exec.analyze_file_toplevel
              ~memo_key:
                (String.concat "\x01"
                   [ fuse_digest; u.Wap_taint.Analyzer.path; src_digests.(i) ])
              st ~units u
          else fun i -> Wap_taint.Analyzer.analyze_file_toplevel st ~units unit_arr.(i)
        in
        let pass3 =
          Obs.with_span ~cat:"engine" "fused.toplevel" (fun () ->
              Pool.map ~jobs toplevel_one
                (Array.init (Array.length unit_arr) (fun i -> i)))
        in
        let per_file =
          List.mapi (fun i u -> (u, (pass2.(i), pass3.(i)))) units
        in
        (match req.cache with
        | Some c ->
            List.iteri
              (fun i (u, entry) -> Cache.store c ~key:(file_key i u) entry)
              per_file
        | None -> ());
        per_file
      end
    in
    List.iter
      (fun (u, _) ->
        progress
          (File_analyzed
             { path = u.Wap_taint.Analyzer.path; cached = all_hit }))
      per_file;
    let pass2 = List.concat_map (fun (_, (d, _)) -> d) per_file in
    let pass3 = List.concat_map (fun (_, (_, t)) -> t) per_file in
    let finalized = Wap_taint.Analyzer.finalize ~units (pass2 @ pass3) in
    (* group per spec id (stable, preserving discovery order) *)
    List.mapi
      (fun si spec ->
        let cands =
          List.filter_map
            (fun (j, c) -> if j = si then Some c else None)
            finalized
        in
        let label = spec_label spec in
        Wap_obs.Metrics.incr ~by:(List.length cands) (m_candidates label);
        ( si, cands,
          { sr_spec = label; sr_seconds = 0.; sr_cached = all_hit;
            sr_candidates = List.length cands } ))
      req.specs
  in
  (* ---- stage 2 (per-spec escape hatch): one work item per spec ------ *)
  let per_spec_stage () =
    let analyze_one (idx, spec) =
      let label = spec_label spec in
      Obs.with_span ~cat:"engine" "analyze_spec" ~args:[ ("spec", label) ]
      @@ fun () ->
      let t0 = Unix.gettimeofday () in
      let compute () =
        Wap_taint.Analyzer.analyze_project
          ~interprocedural:req.interprocedural ~spec units
      in
      let cands, cached =
        match req.cache with
        | Some c ->
            let k =
              Cache.key
                [ cache_format_version; "analyze"; project_digest;
                  Cat.show_spec spec;
                  string_of_bool req.interprocedural ]
            in
            Cache.memoize c ~key:k compute
        | None -> (compute (), false)
      in
      Wap_obs.Metrics.incr ~by:(List.length cands) (m_candidates label);
      ( idx, cands,
        { sr_spec = label; sr_seconds = Unix.gettimeofday () -. t0;
          sr_cached = cached; sr_candidates = List.length cands } )
    in
    let analyzed =
      Pool.map ~jobs analyze_one
        (Array.of_list (List.mapi (fun i s -> (i, s)) req.specs))
    in
    Array.iter
      (fun (_, _, r) ->
        progress (Spec_analyzed { spec = r.sr_spec; cached = r.sr_cached }))
      analyzed;
    Array.to_list analyzed
  in
  let per_spec, t_analyze =
    timed "phase.analyze" (fun () ->
        if req.fuse then fused_stage () else per_spec_stage ())
  in
  let spec_reports = List.map (fun (_, _, r) -> r) per_spec in
  (* ---- deterministic merge ----------------------------------------- *)
  let candidates, t_merge =
    timed "phase.merge" (fun () ->
        per_spec
        |> List.concat_map (fun (si, cands, _) ->
               List.mapi (fun qi c -> (si, qi, c)) cands)
        |> List.sort merge_compare
        |> List.map (fun (_, _, c) -> c))
  in
  {
    units;
    candidates;
    file_reports;
    spec_reports;
    wall_seconds = Unix.gettimeofday () -. t0_wall;
    cpu_seconds = Sys.time () -. t0_cpu;
    phases =
      [ ("parse", t_parse); ("digest", t_digest); ("analyze", t_analyze);
        ("merge", t_merge) ];
    jobs_used = jobs;
    cache_hits = (match req.cache with Some c -> Cache.hits c - hits0 | None -> 0);
    cache_misses =
      (match req.cache with Some c -> Cache.misses c - misses0 | None -> 0);
  }
