(** The parallel scan engine: parse fan-out per file, analysis fan-out
    per detector spec, deterministic merge, digest-keyed caching. *)

open Wap_php
module Cat = Wap_catalog.Catalog
module Trace = Wap_taint.Trace

let cache_format_version = "wap-engine-1"

type progress =
  | File_parsed of { path : string; cached : bool }
  | Spec_analyzed of { spec : string; cached : bool }

type request = {
  files : (string * string) list;
  specs : Cat.spec list;
  jobs : int;
  cache : Cache.t option;
  fingerprint : string;
  interprocedural : bool;
  on_progress : (progress -> unit) option;
}

let request ?(jobs = Pool.default_jobs ()) ?cache ?(fingerprint = "")
    ?(interprocedural = true) ?on_progress ~specs files =
  { files; specs; jobs; cache; fingerprint; interprocedural; on_progress }

type file_report = {
  fr_path : string;
  fr_seconds : float;
  fr_cached : bool;
  fr_errors : Parser.recovered_error list;
}

type spec_report = {
  sr_spec : string;
  sr_seconds : float;
  sr_cached : bool;
  sr_candidates : int;
}

type outcome = {
  units : Wap_taint.Analyzer.file_unit list;
  candidates : Trace.candidate list;
  file_reports : file_report list;
  spec_reports : spec_report list;
  wall_seconds : float;
  cpu_seconds : float;
  jobs_used : int;
  cache_hits : int;
  cache_misses : int;
}

let spec_label (s : Cat.spec) =
  Wap_catalog.Submodule.name s.Cat.submodule
  ^ "/"
  ^ Wap_catalog.Vuln_class.acronym s.Cat.vclass

(* Total order of the deterministic merge: sink file, then sink
   location, then the spec's position in the active set, then discovery
   order inside that spec.  The location-major order is what users see;
   the two trailing components pin down ties (e.g. RFI and LFI both
   firing on one include) so the later de-duplication keeps the same
   representative as a sequential spec-by-spec run. *)
let merge_compare (si, qi, (a : Trace.candidate)) (sj, qj, (b : Trace.candidate))
    =
  let c = String.compare a.Trace.file b.Trace.file in
  if c <> 0 then c
  else
    let c =
      compare a.Trace.sink_loc.Loc.line b.Trace.sink_loc.Loc.line
    in
    if c <> 0 then c
    else
      let c = compare a.Trace.sink_loc.Loc.col b.Trace.sink_loc.Loc.col in
      if c <> 0 then c
      else
        let c = compare (si : int) sj in
        if c <> 0 then c else compare (qi : int) qj

let run (req : request) : outcome =
  let t0_wall = Unix.gettimeofday () and t0_cpu = Sys.time () in
  let jobs = max 1 req.jobs in
  let hits0 = match req.cache with Some c -> Cache.hits c | None -> 0 in
  let misses0 = match req.cache with Some c -> Cache.misses c | None -> 0 in
  let progress ev =
    match req.on_progress with Some f -> f ev | None -> ()
  in
  (* ---- stage 1: tolerant parse, one work item per file ------------- *)
  let parse_one (path, src) =
    let t0 = Unix.gettimeofday () in
    let compute () = Parser.parse_string_tolerant ~file:path src in
    let (program, errs), cached =
      match req.cache with
      | Some c ->
          (* parsing depends only on the file itself, not on the active
             spec set, so the key deliberately omits the fingerprint *)
          let k =
            Cache.key
              [ cache_format_version; "parse"; path;
                Digest.to_hex (Digest.string src) ]
          in
          Cache.memoize c ~key:k compute
      | None -> (compute (), false)
    in
    ( { Wap_taint.Analyzer.path; program },
      { fr_path = path; fr_seconds = Unix.gettimeofday () -. t0;
        fr_cached = cached; fr_errors = errs } )
  in
  let parsed = Pool.map ~jobs parse_one (Array.of_list req.files) in
  Array.iter
    (fun (_, r) ->
      progress (File_parsed { path = r.fr_path; cached = r.fr_cached }))
    parsed;
  let units = Array.to_list (Array.map fst parsed) in
  let file_reports = Array.to_list (Array.map snd parsed) in
  (* The analysis of one file depends on every other file (shared
     function summaries, include splicing), so analysis entries are
     keyed by a digest of the whole source set: any edit invalidates
     them all, which keeps caching sound. *)
  let project_digest =
    Cache.key
      (cache_format_version :: req.fingerprint
      :: (List.map (fun (p, src) -> p ^ "\x01" ^ Digest.to_hex (Digest.string src))
            req.files
         |> List.sort String.compare))
  in
  (* ---- stage 2: taint analysis, one work item per detector spec ---- *)
  let analyze_one (idx, spec) =
    let t0 = Unix.gettimeofday () in
    let compute () =
      Wap_taint.Analyzer.analyze_project
        ~interprocedural:req.interprocedural ~spec units
    in
    let cands, cached =
      match req.cache with
      | Some c ->
          let k =
            Cache.key
              [ cache_format_version; "analyze"; project_digest;
                Cat.show_spec spec;
                string_of_bool req.interprocedural ]
          in
          Cache.memoize c ~key:k compute
      | None -> (compute (), false)
    in
    ( idx, cands,
      { sr_spec = spec_label spec; sr_seconds = Unix.gettimeofday () -. t0;
        sr_cached = cached; sr_candidates = List.length cands } )
  in
  let analyzed =
    Pool.map ~jobs analyze_one
      (Array.of_list (List.mapi (fun i s -> (i, s)) req.specs))
  in
  Array.iter
    (fun (_, _, r) ->
      progress (Spec_analyzed { spec = r.sr_spec; cached = r.sr_cached }))
    analyzed;
  let spec_reports = Array.to_list (Array.map (fun (_, _, r) -> r) analyzed) in
  (* ---- deterministic merge ----------------------------------------- *)
  let tagged =
    Array.to_list analyzed
    |> List.concat_map (fun (si, cands, _) ->
           List.mapi (fun qi c -> (si, qi, c)) cands)
  in
  let candidates =
    List.sort merge_compare tagged |> List.map (fun (_, _, c) -> c)
  in
  {
    units;
    candidates;
    file_reports;
    spec_reports;
    wall_seconds = Unix.gettimeofday () -. t0_wall;
    cpu_seconds = Sys.time () -. t0_cpu;
    jobs_used = jobs;
    cache_hits = (match req.cache with Some c -> Cache.hits c - hits0 | None -> 0);
    cache_misses =
      (match req.cache with Some c -> Cache.misses c - misses0 | None -> 0);
  }
