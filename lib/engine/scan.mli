(** The batch scan entry point.

    [run] opens a one-shot {!Session} and exports it: parse fan-out
    over the {!Pool}, fused multi-spec taint analysis (or the per-spec
    escape hatch behind [fuse:false]/[WAP_FUSE=0]), optional
    digest-keyed {!Cache}, deterministic merge — see {!Session} for
    the pipeline's semantics and {!Config} for the environment gates.
    Long-lived callers that want incremental re-analysis after edits
    use {!Session} directly; everything here is a type equation onto
    it, so the two APIs interconvert freely.

    Candidates are merged in a deterministic order — sorted by sink
    file, then sink location, ties broken by spec order and discovery
    order — so the output is byte-identical whatever [jobs] is.

    The run is instrumented with {!Wap_obs}: spans for the whole scan,
    each phase, each parse/analyze work item and every cache lookup
    (visible in a [--trace-out] Chrome trace), plus process-wide
    [engine.*] counters (files parsed, parse-error recoveries,
    candidates per detector spec, cache traffic).  None of it changes
    the scan result: tracing on or off, the merged output is
    byte-identical. *)

open Wap_php

(** Bumped whenever the marshalled shape of cached values changes;
    part of every cache key. *)
val cache_format_version : string

type progress = Session.progress =
  | File_parsed of { path : string; cached : bool }
  | Spec_analyzed of { spec : string; cached : bool }
      (** per-spec pipeline only ([fuse:false]) *)
  | File_analyzed of { path : string; cached : bool }
      (** fused pipeline only: one per file once its analysis (or cache
          assembly) is done *)

type request = Session.request = {
  files : (string * string) list;  (** [(path, source)], scanned as one app *)
  specs : Wap_catalog.Catalog.spec list;  (** active detectors *)
  jobs : int;  (** worker domains; clamped to at least 1 *)
  cache : Cache.t option;
  fingerprint : string;
      (** tool-level cache-key material: version name plus the full
          active spec set, so changing either invalidates analysis
          entries *)
  interprocedural : bool;
  fuse : bool;  (** fused multi-spec analysis (default) vs per-spec *)
  ir : bool;
      (** fused pass 3 runs over lowered three-address IR (default)
          instead of the AST walker; both produce byte-identical merged
          output, which is what the [scan-ir-equiv] fuzz oracle checks *)
  summary_store : bool;
      (** persist pass-1 summary deltas in the cache under
          content-addressed chained prefix keys, shared across projects
          through a common cache directory; off by default, enabled by
          the fleet workers — see {!Session.request} *)
  on_progress : (progress -> unit) option;
      (** invoked in the calling domain, once per finished work item *)
}

(** [request ~specs files] with defaults: [jobs], [fuse] and [ir]
    resolved through {!Config} ([WAP_JOBS], [WAP_FUSE], [WAP_IR]), no
    cache, empty fingerprint, interprocedural on. *)
val request :
  ?jobs:int ->
  ?cache:Cache.t ->
  ?fingerprint:string ->
  ?interprocedural:bool ->
  ?fuse:bool ->
  ?ir:bool ->
  ?summary_store:bool ->
  ?on_progress:(progress -> unit) ->
  specs:Wap_catalog.Catalog.spec list ->
  (string * string) list ->
  request

type file_report = Session.file_report = {
  fr_path : string;
  fr_seconds : float;  (** wall clock spent parsing this file *)
  fr_cached : bool;
  fr_errors : Parser.recovered_error list;
}

type spec_report = Session.spec_report = {
  sr_spec : string;  (** submodule/class label *)
  sr_seconds : float;
      (** wall clock spent on this detector; [0.] in the fused pipeline,
          where the specs share one pass (see [phases]) *)
  sr_cached : bool;
  sr_candidates : int;
}

type outcome = Session.outcome = {
  units : Wap_taint.Analyzer.file_unit list;  (** parsed files, input order *)
  candidates : Wap_taint.Trace.candidate list;
      (** merged (not yet de-duplicated), in the deterministic order
          described above *)
  file_reports : file_report list;  (** input order *)
  spec_reports : spec_report list;  (** spec order *)
  wall_seconds : float;
  cpu_seconds : float;  (** process CPU, all domains aggregated *)
  phases : (string * float) list;
      (** per-phase wall clock, in pipeline order: [parse] (stage-1 pool
          fan-out), [digest] (project cache-key digest), [analyze]
          (stage-2 pool fan-out), [merge] (finalize + deterministic
          sort) *)
  jobs_used : int;
  cache_hits : int;  (** cache lookups served from the cache, this scan *)
  cache_misses : int;
}

(** Human label of a spec, e.g. ["query manipulation/SQLI"]. *)
val spec_label : Wap_catalog.Catalog.spec -> string

val run : request -> outcome
