(** The session-oriented scan engine.

    A session ([open_project]) parses every file once and retains the
    ASTs, per-file pass results, summary table and catalog lookup in
    memory; [update_file]/[add_file]/[remove_file] apply targeted
    invalidation (re-parse + re-run the top-level pass for the touched
    file and its include-dependents only, falling back to a full
    re-analysis only when the edit changes the file's function-summary
    fingerprint under interprocedural analysis); [export] and
    [diagnostics] finalize and merge deterministically.  {!Scan.run}
    is a thin wrapper: open a one-shot session, export it.

    The batch pipeline semantics live here unchanged: fused multi-spec
    analysis (pass 1 summaries, pass 2 function bodies, pass 3
    parallel top-level sweep on the lowered IR) with the per-spec and
    AST escape hatches, digest-keyed caching, deterministic merge. *)

open Wap_php
module Cat = Wap_catalog.Catalog
module Trace = Wap_taint.Trace
module Obs = Wap_obs.Trace
module An = Wap_taint.Analyzer

(* v3: the fused analyze-file entries gained the IR/AST mode in their
   digest (and the IR path itself), so v2 entries must not be reused. *)
let cache_format_version = "wap-engine-3"

let m_files_parsed = lazy (Wap_obs.Metrics.counter "engine.files_parsed")

let m_parse_recoveries =
  lazy (Wap_obs.Metrics.counter "engine.parse_error_recoveries")

let m_candidates spec_label =
  Wap_obs.Metrics.counter ("engine.candidates." ^ spec_label)

type progress =
  | File_parsed of { path : string; cached : bool }
  | Spec_analyzed of { spec : string; cached : bool }
  | File_analyzed of { path : string; cached : bool }

type request = {
  files : (string * string) list;
  specs : Cat.spec list;
  jobs : int;
  cache : Cache.t option;
  fingerprint : string;
  interprocedural : bool;
  fuse : bool;
  ir : bool;  (** fused pass 3 on the lowered IR (default) or the AST *)
  summary_store : bool;
      (** persist pass-1 summary deltas under content-addressed chained
          keys, shared across projects through the cache *)
  on_progress : (progress -> unit) option;
}

let request ?(jobs = Config.default_jobs ()) ?cache ?(fingerprint = "")
    ?(interprocedural = true) ?fuse ?ir ?(summary_store = false) ?on_progress
    ~specs files =
  let fuse = Config.fuse fuse in
  let ir = Config.ir ir in
  { files; specs; jobs; cache; fingerprint; interprocedural; fuse; ir;
    summary_store; on_progress }

type file_report = {
  fr_path : string;
  fr_seconds : float;
  fr_cached : bool;
  fr_errors : Parser.recovered_error list;
}

type spec_report = {
  sr_spec : string;
  sr_seconds : float;
  sr_cached : bool;
  sr_candidates : int;
}

type outcome = {
  units : Wap_taint.Analyzer.file_unit list;
  candidates : Trace.candidate list;
  file_reports : file_report list;
  spec_reports : spec_report list;
  wall_seconds : float;
  cpu_seconds : float;
  phases : (string * float) list;
  jobs_used : int;
  cache_hits : int;
  cache_misses : int;
}

let spec_label (s : Cat.spec) =
  Wap_catalog.Submodule.name s.Cat.submodule
  ^ "/"
  ^ Wap_catalog.Vuln_class.acronym s.Cat.vclass

(* Total order of the deterministic merge: sink file, then sink
   location, then the spec's position in the active set, then discovery
   order inside that spec.  The location-major order is what users see;
   the two trailing components pin down ties (e.g. RFI and LFI both
   firing on one include) so the later de-duplication keeps the same
   representative as a sequential spec-by-spec run. *)
let merge_compare (si, qi, (a : Trace.candidate)) (sj, qj, (b : Trace.candidate))
    =
  let c = String.compare a.Trace.file b.Trace.file in
  if c <> 0 then c
  else
    let c =
      compare a.Trace.sink_loc.Loc.line b.Trace.sink_loc.Loc.line
    in
    if c <> 0 then c
    else
      let c = compare a.Trace.sink_loc.Loc.col b.Trace.sink_loc.Loc.col in
      if c <> 0 then c
      else
        let c = compare (si : int) sj in
        if c <> 0 then c else compare (qi : int) qj

(* [timed name f] runs [f] under a span and returns its result plus the
   wall clock it took — the per-phase breakdown surfaced by [--stats]
   and the JSON export. *)
let timed name f =
  let t0 = Wap_obs.Clock.now_ns () in
  let v = Obs.with_span ~cat:"engine" name f in
  (v, Wap_obs.Clock.ns_to_s (Wap_obs.Clock.elapsed_ns t0))

(* ------------------------------------------------------------------ *)
(* Session state.                                                      *)

(* One file of the open project.  The expensive derived facts (summary
   fingerprint, include list, dead-sink set) are lazy: a one-shot
   [Scan.run] never mutates the session and so never pays for them. *)
type entry = {
  ent_path : string;
  mutable ent_src_digest : string;  (* hex digest of the source text *)
  mutable ent_unit : An.file_unit;
  mutable ent_report : file_report;
  mutable ent_decl : (bool * string) Lazy.t;
      (* (has function decls, fingerprint of the exact function list
         passes 1/2 consume — names, bodies and locations) *)
  mutable ent_includes : string list Lazy.t;  (* top-level literal bases *)
  mutable ent_dead : Wap_flow.Reach.dead Lazy.t;
  mutable ent_pass2 : (int * Trace.candidate) list;
  mutable ent_pass3 : (int * Trace.candidate) list;
}

type fused_state = {
  mutable fs_st : An.project_state option;
      (* [None] until first needed: an all-cache-hit open never builds
         the analyzer state at all *)
  mutable fs_cached : bool;  (* every pass served from cache, no recompute *)
}

type per_spec_state = {
  mutable ps_results : (int * Trace.candidate list * spec_report) list;
}

type analysis = Fused of fused_state | Per_spec of per_spec_state

type event = { generation : int; progress : progress }

type t = {
  s_specs : Cat.spec list;
  s_jobs : int;
  s_cache : Cache.t option;
  s_fingerprint : string;
  s_interprocedural : bool;
  s_fuse : bool;
  s_ir : bool;
  s_summary_store : bool;
  s_on_progress : (progress -> unit) option;
  s_on_event : (event -> unit) option;
  s_hits0 : int;
  s_misses0 : int;
  mutable s_entries : entry list;  (* project order *)
  mutable s_generation : int;
  s_analysis : analysis;
  mutable s_phases : (string * float) list;  (* parse/digest/analyze of open *)
  mutable s_wall : float;  (* wall spent in open + mutations + exports *)
  mutable s_cpu : float;
  mutable s_finalized : (int * (int * Trace.candidate) list) option;
      (* memoized finalize, tagged with the generation it was built at *)
}

let generation t = t.s_generation
let specs t = t.s_specs
let paths t = List.map (fun e -> e.ent_path) t.s_entries
let mem t ~path = List.exists (fun e -> e.ent_path = path) t.s_entries

let emit t p =
  (match t.s_on_progress with Some f -> f p | None -> ());
  match t.s_on_event with
  | Some f -> f { generation = t.s_generation; progress = p }
  | None -> ()

let units_of t = List.map (fun e -> e.ent_unit) t.s_entries

(* ------------------------------------------------------------------ *)
(* Per-file facts.                                                     *)

let decl_of (program : Ast.program) =
  let funcs = Visitor.collect_functions program in
  ( funcs <> [],
    Digest.to_hex
      (Digest.string (String.concat "\x00" (List.map Ast.show_func funcs))) )

let dead_of (program : Ast.program) =
  lazy
    (let d = Wap_flow.Reach.create () in
     Wap_flow.Reach.add_program d program;
     d)

let parse_file t path src =
  (* no span of its own: the nested php "parse" span already covers this
     per-file work at the same granularity *)
  let t0 = Unix.gettimeofday () in
  let compute () = Parser.parse_string_tolerant ~file:path src in
  let (program, errs), cached =
    match t.s_cache with
    | Some c ->
        (* parsing depends only on the file itself, not on the active
           spec set, so the key deliberately omits the fingerprint *)
        let k =
          Cache.key
            [ cache_format_version; "parse"; path;
              Digest.to_hex (Digest.string src) ]
        in
        Cache.memoize c ~key:k compute
    | None -> (compute (), false)
  in
  Wap_obs.Metrics.incr (Lazy.force m_files_parsed);
  if errs <> [] then
    Wap_obs.Metrics.incr ~by:(List.length errs)
      (Lazy.force m_parse_recoveries);
  ( program,
    { fr_path = path; fr_seconds = Unix.gettimeofday () -. t0;
      fr_cached = cached; fr_errors = errs } )

let make_entry t path src =
  let program, report = parse_file t path src in
  {
    ent_path = path;
    ent_src_digest = Digest.to_hex (Digest.string src);
    ent_unit = { An.path; program };
    ent_report = report;
    ent_decl = lazy (decl_of program);
    ent_includes = lazy (An.include_basenames program);
    ent_dead = dead_of program;
    ent_pass2 = [];
    ent_pass3 = [];
  }

let refresh_entry t e src =
  let program, report = parse_file t e.ent_path src in
  emit t (File_parsed { path = e.ent_path; cached = report.fr_cached });
  e.ent_src_digest <- Digest.to_hex (Digest.string src);
  e.ent_unit <- { An.path = e.ent_path; program };
  e.ent_report <- report;
  e.ent_decl <- lazy (decl_of program);
  e.ent_includes <- lazy (An.include_basenames program);
  e.ent_dead <- dead_of program

(* ------------------------------------------------------------------ *)
(* Digests.                                                            *)

(* The analysis of one file depends on every other file (shared
   function summaries, include splicing), so analysis entries are
   keyed by a digest of the whole source set: any edit invalidates
   them all, which keeps caching sound. *)
let project_digest t =
  Cache.key
    (cache_format_version :: t.s_fingerprint
    :: (List.map
          (fun e -> e.ent_path ^ "\x01" ^ e.ent_src_digest)
          t.s_entries
       |> List.sort String.compare))

(* [ir] is part of the digest so the IR and AST modes never share
   entries — a shared entry would mask exactly the divergences the
   [scan-ir-equiv] differential oracle exists to catch. *)
let fuse_digest t ~project_digest =
  Cache.key
    [ cache_format_version; project_digest; Cat.set_fingerprint t.s_specs;
      string_of_bool t.s_interprocedural; string_of_bool t.s_ir ]

(* per-file keys carry the file's own source digest, not just its
   path: a request may legally repeat a path with different contents
   (merged corpora do), and path-only keys would hand the second file
   the first one's entry *)
let file_key ~fuse_digest e =
  Cache.key
    [ cache_format_version; "analyze-file"; fuse_digest; e.ent_path;
      e.ent_src_digest ]

(* ------------------------------------------------------------------ *)
(* Pass-1 summary store.                                               *)

(* Content-addressed chained keys for pass-1 summary deltas.  The
   delta of file i depends only on the file's own source, the active
   specs and the summaries registered by files 0..i-1 — so its key is
   the running hash of the (path, digest) prefix up to and including
   file i.  Identical prefixes (a framework layer shared by many
   projects, ordered first) therefore share entries {e across}
   projects through a shared cache directory, unlike the analyze-file
   entries whose keys embed the whole-project digest.  Opt-in
   ([summary_store], enabled by the fleet workers): it changes the
   cache hit/miss profile that batch callers observe. *)
let summary_chain_seed t =
  Cache.key
    [ cache_format_version; "summary-chain"; t.s_fingerprint;
      Cat.set_fingerprint t.s_specs; string_of_bool t.s_interprocedural ]

let summarize_entries t st =
  match t.s_cache with
  | Some c when t.s_summary_store ->
      let chain = ref (summary_chain_seed t) in
      List.iter
        (fun e ->
          chain := Cache.key [ !chain; e.ent_path; e.ent_src_digest ];
          match
            (Cache.find c ~key:!chain : Wap_taint.Summary.fused list option)
          with
          | Some fs -> An.register_summaries st fs
          | None ->
              Cache.store c ~key:!chain (An.summarize_file_delta st e.ent_unit))
        t.s_entries
  | _ -> List.iter (fun e -> An.summarize_file st e.ent_unit) t.s_entries

(* ------------------------------------------------------------------ *)
(* Fused pass runners.                                                 *)

(* pass 3 per-file work item: lower once and sweep the flat
   instruction arrays (default), or walk the AST ([ir:false]).  The
   memo key is [fuse_digest] (covers every spliced source and the spec
   set) plus the file's own path AND source digest — path alone is not
   enough, see [file_key] — so rescans of an unchanged project skip
   lowering entirely. *)
let toplevel_map t ~st ~fuse_digest ~units (es : entry array) =
  let one i =
    let e = es.(i) in
    if t.s_ir then
      Wap_ir.Exec.analyze_file_toplevel
        ~memo_key:
          (String.concat "\x01" [ fuse_digest; e.ent_path; e.ent_src_digest ])
        st ~units e.ent_unit
    else An.analyze_file_toplevel st ~units e.ent_unit
  in
  Pool.map ~jobs:t.s_jobs one (Array.init (Array.length es) Fun.id)

(* Rebuild the analyzer state by replaying passes 1 and 2 over the
   current project — needed when an all-cache-hit open skipped them.
   The replayed pass-2 candidate output is identical to the cached
   per-entry results, so it is discarded. *)
let ensure_state t (fs : fused_state) =
  match fs.fs_st with
  | Some st -> st
  | None ->
      let st =
        An.project_state ~interprocedural:t.s_interprocedural
          ~specs:t.s_specs ()
      in
      let units = units_of t in
      if t.s_interprocedural then summarize_entries t st;
      List.iter (fun u -> ignore (An.analyze_file_functions st u)) units;
      fs.fs_st <- Some st;
      st

(* Full fused recompute over the current entries: fresh state, passes
   1–3, one [File_analyzed] per file.  The fallback of every mutation
   that can change the shared summary table. *)
let reanalyze_all t (fs : fused_state) =
  fs.fs_cached <- false;
  let st =
    An.project_state ~interprocedural:t.s_interprocedural ~specs:t.s_specs ()
  in
  fs.fs_st <- Some st;
  let units = units_of t in
  (* passes 1 and 2 are sequential by design (summaries build up
     across files); pass 3 is pure per file and fans out *)
  if t.s_interprocedural then
    Obs.with_span ~cat:"engine" "fused.summaries" (fun () ->
        summarize_entries t st);
  Obs.with_span ~cat:"engine" "fused.functions" (fun () ->
      List.iter
        (fun e -> e.ent_pass2 <- An.analyze_file_functions st e.ent_unit)
        t.s_entries);
  let fd = fuse_digest t ~project_digest:(project_digest t) in
  let arr = Array.of_list t.s_entries in
  let pass3 =
    Obs.with_span ~cat:"engine" "fused.toplevel" (fun () ->
        toplevel_map t ~st ~fuse_digest:fd ~units arr)
  in
  Array.iteri (fun i e -> e.ent_pass3 <- pass3.(i)) arr;
  List.iter
    (fun e -> emit t (File_analyzed { path = e.ent_path; cached = false }))
    t.s_entries;
  paths t

(* Re-run pass 3 only, for the given entries. *)
let rerun_toplevel t (fs : fused_state) (es : entry list) =
  if es = [] then []
  else begin
    fs.fs_cached <- false;
    let st = ensure_state t fs in
    let units = units_of t in
    let fd = fuse_digest t ~project_digest:(project_digest t) in
    let arr = Array.of_list es in
    let res =
      Obs.with_span ~cat:"engine" "fused.toplevel" (fun () ->
          toplevel_map t ~st ~fuse_digest:fd ~units arr)
    in
    Array.iteri (fun i e -> e.ent_pass3 <- res.(i)) arr;
    List.iter
      (fun e -> emit t (File_analyzed { path = e.ent_path; cached = false }))
      es;
    List.map (fun e -> e.ent_path) es
  end

(* Pass 2 of one file in isolation — sound only when interprocedural
   analysis is off: candidate de-duplication keys are file-scoped and
   without summaries no other state is shared across files, so a fresh
   state reproduces exactly what the shared sequential pass computed. *)
let isolated_pass2 t e =
  let st = An.project_state ~interprocedural:false ~specs:t.s_specs () in
  e.ent_pass2 <- An.analyze_file_functions st e.ent_unit

(* Entries whose top-level sweep can splice [base] (transitively,
   through the include graph).  Conservative over-approximation — a
   base name is matched against every entry carrying it, where the
   splice itself picks the first in project order — which only ever
   re-runs too much, never too little. *)
let dependents t ~base ~excluding =
  let by_base = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.add by_base (Filename.basename e.ent_path)
        (Lazy.force e.ent_includes))
    t.s_entries;
  let reaches e =
    let seen = Hashtbl.create 8 in
    let rec go bs =
      List.exists
        (fun b ->
          b = base
          || (not (Hashtbl.mem seen b))
             && begin
                  Hashtbl.add seen b ();
                  List.exists go (Hashtbl.find_all by_base b)
                end)
        bs
    in
    go (Lazy.force e.ent_includes)
  in
  List.filter (fun e -> e != excluding && reaches e) t.s_entries

(* ------------------------------------------------------------------ *)
(* Stage runners shared by open and (full-recompute) mutations.        *)

let fused_stage t ~project_digest =
  let fs =
    match t.s_analysis with Fused fs -> fs | Per_spec _ -> assert false
  in
  let fd = fuse_digest t ~project_digest in
  (* all-or-nothing probe (every key is probed even after a miss, so
     hit/miss counts stay deterministic): assembling a partial set
     would not be cheaper — the passes are whole-project anyway *)
  let probed =
    List.map
      (fun e ->
        let entry :
            ((int * Trace.candidate) list * (int * Trace.candidate) list)
            option =
          match t.s_cache with
          | Some c -> Cache.find c ~key:(file_key ~fuse_digest:fd e)
          | None -> None
        in
        (e, entry))
      t.s_entries
  in
  let all_hit =
    t.s_entries <> [] && List.for_all (fun (_, x) -> x <> None) probed
  in
  fs.fs_cached <- all_hit;
  if all_hit then
    List.iter
      (fun (e, x) ->
        let p2, p3 = Option.get x in
        e.ent_pass2 <- p2;
        e.ent_pass3 <- p3)
      probed
  else begin
    let st =
      An.project_state ~interprocedural:t.s_interprocedural ~specs:t.s_specs
        ()
    in
    fs.fs_st <- Some st;
    let units = units_of t in
    if t.s_interprocedural then
      Obs.with_span ~cat:"engine" "fused.summaries" (fun () ->
          summarize_entries t st);
    Obs.with_span ~cat:"engine" "fused.functions" (fun () ->
        List.iter
          (fun e -> e.ent_pass2 <- An.analyze_file_functions st e.ent_unit)
          t.s_entries);
    let arr = Array.of_list t.s_entries in
    let pass3 =
      Obs.with_span ~cat:"engine" "fused.toplevel" (fun () ->
          toplevel_map t ~st ~fuse_digest:fd ~units arr)
    in
    Array.iteri (fun i e -> e.ent_pass3 <- pass3.(i)) arr;
    match t.s_cache with
    | Some c ->
        List.iter
          (fun e ->
            Cache.store c ~key:(file_key ~fuse_digest:fd e)
              (e.ent_pass2, e.ent_pass3))
          t.s_entries
    | None -> ()
  end;
  List.iter
    (fun e -> emit t (File_analyzed { path = e.ent_path; cached = all_hit }))
    t.s_entries

let per_spec_stage t ~project_digest =
  let ps =
    match t.s_analysis with Per_spec ps -> ps | Fused _ -> assert false
  in
  let units = units_of t in
  let analyze_one (idx, spec) =
    let label = spec_label spec in
    Obs.with_span ~cat:"engine" "analyze_spec" ~args:[ ("spec", label) ]
    @@ fun () ->
    let t0 = Unix.gettimeofday () in
    let compute () =
      Wap_taint.Analyzer.analyze_project
        ~interprocedural:t.s_interprocedural ~spec units
    in
    let cands, cached =
      match t.s_cache with
      | Some c ->
          let k =
            Cache.key
              [ cache_format_version; "analyze"; project_digest;
                Cat.show_spec spec;
                string_of_bool t.s_interprocedural ]
          in
          Cache.memoize c ~key:k compute
      | None -> (compute (), false)
    in
    Wap_obs.Metrics.incr ~by:(List.length cands) (m_candidates label);
    ( idx, cands,
      { sr_spec = label; sr_seconds = Unix.gettimeofday () -. t0;
        sr_cached = cached; sr_candidates = List.length cands } )
  in
  let analyzed =
    Pool.map ~jobs:t.s_jobs analyze_one
      (Array.of_list (List.mapi (fun i s -> (i, s)) t.s_specs))
  in
  Array.iter
    (fun (_, _, r) ->
      emit t (Spec_analyzed { spec = r.sr_spec; cached = r.sr_cached }))
    analyzed;
  ps.ps_results <- Array.to_list analyzed

(* ------------------------------------------------------------------ *)
(* Open.                                                               *)

let open_project ?on_event (req : request) : t =
  Obs.with_span ~cat:"engine" "scan"
    ~args:[ ("files", string_of_int (List.length req.files));
            ("specs", string_of_int (List.length req.specs));
            ("jobs", string_of_int req.jobs) ]
  @@ fun () ->
  let t0_wall = Unix.gettimeofday () and t0_cpu = Sys.time () in
  let jobs = max 1 req.jobs in
  let t =
    {
      s_specs = req.specs;
      s_jobs = jobs;
      s_cache = req.cache;
      s_fingerprint = req.fingerprint;
      s_interprocedural = req.interprocedural;
      s_fuse = req.fuse;
      s_ir = req.ir;
      s_summary_store = req.summary_store;
      s_on_progress = req.on_progress;
      s_on_event = on_event;
      s_hits0 = (match req.cache with Some c -> Cache.hits c | None -> 0);
      s_misses0 = (match req.cache with Some c -> Cache.misses c | None -> 0);
      s_entries = [];
      s_generation = 0;
      s_analysis =
        (if req.fuse then Fused { fs_st = None; fs_cached = false }
         else Per_spec { ps_results = [] });
      s_phases = [];
      s_wall = 0.;
      s_cpu = 0.;
      s_finalized = None;
    }
  in
  (* ---- stage 1: tolerant parse, one work item per file ------------- *)
  let entries, t_parse =
    timed "phase.parse" (fun () ->
        let entries =
          Pool.map ~jobs
            (fun (path, src) -> make_entry t path src)
            (Array.of_list req.files)
        in
        Array.iter
          (fun e ->
            emit t
              (File_parsed
                 { path = e.ent_path; cached = e.ent_report.fr_cached }))
          entries;
        Array.to_list entries)
  in
  t.s_entries <- entries;
  let pdigest, t_digest = timed "phase.digest" (fun () -> project_digest t) in
  (* ---- stage 2: fused (default) or per-spec analysis --------------- *)
  let (), t_analyze =
    timed "phase.analyze" (fun () ->
        if t.s_fuse then fused_stage t ~project_digest:pdigest
        else per_spec_stage t ~project_digest:pdigest)
  in
  t.s_phases <-
    [ ("parse", t_parse); ("digest", t_digest); ("analyze", t_analyze) ];
  t.s_wall <- Unix.gettimeofday () -. t0_wall;
  t.s_cpu <- Sys.time () -. t0_cpu;
  t

(* ------------------------------------------------------------------ *)
(* Finalize / merge / export.                                          *)

(* Cross-file dedup + dead-sink filter over the retained per-file pass
   results — [Analyzer.finalize] with the dead sets kept per file, so
   an edit rebuilds one file's set, not the whole project's.  Memoized
   per generation: repeated [diagnostics] calls between edits are
   free. *)
let finalized_fused t =
  match t.s_finalized with
  | Some (g, f) when g = t.s_generation -> f
  | _ ->
      let pass2 = List.concat_map (fun e -> e.ent_pass2) t.s_entries in
      let pass3 = List.concat_map (fun e -> e.ent_pass3) t.s_entries in
      let by_path = Hashtbl.create 16 in
      List.iter
        (fun e -> Hashtbl.add by_path e.ent_path e.ent_dead)
        t.s_entries;
      let is_dead (loc : Loc.t) =
        List.exists
          (fun d -> Wap_flow.Reach.is_dead (Lazy.force d) loc)
          (Hashtbl.find_all by_path loc.Loc.file)
      in
      let f = An.finalize_with ~is_dead (pass2 @ pass3) in
      t.s_finalized <- Some (t.s_generation, f);
      f

(* Candidates grouped per spec id (stable, preserving discovery
   order).  In per-spec mode the groups are the stage results as-is —
   like [Scan.run], not yet de-duplicated across specs. *)
let grouped t : (int * Trace.candidate list) list =
  match t.s_analysis with
  | Fused _ ->
      let f = finalized_fused t in
      List.mapi
        (fun si _ ->
          ( si,
            List.filter_map (fun (j, c) -> if j = si then Some c else None) f
          ))
        t.s_specs
  | Per_spec ps ->
      List.map (fun (si, cands, _) -> (si, cands)) ps.ps_results

let merged_indexed t : (int * Trace.candidate) list =
  grouped t
  |> List.concat_map (fun (si, cands) ->
         List.mapi (fun qi c -> (si, qi, c)) cands)
  |> List.sort merge_compare
  |> List.map (fun (si, _, c) -> (si, c))

let all_diagnostics t = merged_indexed t

type stats = {
  st_generation : int;
  st_files : int;
  st_candidates : int;
  st_cache_hits : int;
  st_cache_misses : int;
}

(* Cheap between edits: the candidate count reads the per-generation
   memoized finalize, and the cache deltas are two counter reads. *)
let stats t : stats =
  {
    st_generation = t.s_generation;
    st_files = List.length t.s_entries;
    st_candidates = List.length (merged_indexed t);
    st_cache_hits =
      (match t.s_cache with Some c -> Cache.hits c - t.s_hits0 | None -> 0);
    st_cache_misses =
      (match t.s_cache with
      | Some c -> Cache.misses c - t.s_misses0
      | None -> 0);
  }

let diagnostics t ~path =
  List.filter (fun (_, c) -> c.Trace.file = path) (merged_indexed t)

let export t : outcome =
  let t0w = Unix.gettimeofday () and t0c = Sys.time () in
  let (per_spec, candidates), t_merge =
    timed "phase.merge" (fun () ->
        let groups = grouped t in
        let per_spec =
          match t.s_analysis with
          | Per_spec ps -> ps.ps_results
          | Fused fs ->
              List.map2
                (fun spec (si, cands) ->
                  let label = spec_label spec in
                  Wap_obs.Metrics.incr ~by:(List.length cands)
                    (m_candidates label);
                  ( si, cands,
                    { sr_spec = label; sr_seconds = 0.;
                      sr_cached = fs.fs_cached;
                      sr_candidates = List.length cands } ))
                t.s_specs groups
        in
        let candidates =
          per_spec
          |> List.concat_map (fun (si, cands, _) ->
                 List.mapi (fun qi c -> (si, qi, c)) cands)
          |> List.sort merge_compare
          |> List.map (fun (_, _, c) -> c)
        in
        (per_spec, candidates))
  in
  t.s_wall <- t.s_wall +. (Unix.gettimeofday () -. t0w);
  t.s_cpu <- t.s_cpu +. (Sys.time () -. t0c);
  {
    units = units_of t;
    candidates;
    file_reports = List.map (fun e -> e.ent_report) t.s_entries;
    spec_reports = List.map (fun (_, _, r) -> r) per_spec;
    wall_seconds = t.s_wall;
    cpu_seconds = t.s_cpu;
    phases = t.s_phases @ [ ("merge", t_merge) ];
    jobs_used = t.s_jobs;
    cache_hits =
      (match t.s_cache with Some c -> Cache.hits c - t.s_hits0 | None -> 0);
    cache_misses =
      (match t.s_cache with
      | Some c -> Cache.misses c - t.s_misses0
      | None -> 0);
  }

let run (req : request) : outcome = export (open_project req)

(* ------------------------------------------------------------------ *)
(* Mutations.                                                          *)

let find_unique t ~op ~path =
  match List.filter (fun e -> e.ent_path = path) t.s_entries with
  | [ e ] -> Some e
  | [] -> None
  | _ :: _ ->
      invalid_arg
        (Printf.sprintf "Session.%s: duplicate path %S in project" op path)

(* Every mutation: bump the generation (events of superseded edits are
   identifiable by their lower one), drop the finalize memo, account
   the wall/cpu spent. *)
let mutate t name f =
  Obs.with_span ~cat:"engine" name @@ fun () ->
  let t0w = Unix.gettimeofday () and t0c = Sys.time () in
  t.s_generation <- t.s_generation + 1;
  t.s_finalized <- None;
  let r = f () in
  t.s_wall <- t.s_wall +. (Unix.gettimeofday () -. t0w);
  t.s_cpu <- t.s_cpu +. (Sys.time () -. t0c);
  r

let update_file t ~path src =
  let e =
    match find_unique t ~op:"update_file" ~path with
    | Some e -> e
    | None ->
        invalid_arg
          (Printf.sprintf "Session.update_file: no file %S in project" path)
  in
  mutate t "session.update_file" @@ fun () ->
  match t.s_analysis with
  | Per_spec _ ->
      refresh_entry t e src;
      per_spec_stage t ~project_digest:(project_digest t);
      paths t
  | Fused fs ->
      let _, old_fp = Lazy.force e.ent_decl in
      refresh_entry t e src;
      let _, new_fp = Lazy.force e.ent_decl in
      let decl_changed = not (String.equal old_fp new_fp) in
      if decl_changed && t.s_interprocedural then reanalyze_all t fs
      else begin
        if decl_changed then isolated_pass2 t e;
        let deps =
          dependents t ~base:(Filename.basename path) ~excluding:e
        in
        rerun_toplevel t fs (e :: deps)
      end

let add_file t ~path src =
  if mem t ~path then
    invalid_arg
      (Printf.sprintf "Session.add_file: file %S already in project" path);
  mutate t "session.add_file" @@ fun () ->
  let e = make_entry t path src in
  emit t (File_parsed { path; cached = e.ent_report.fr_cached });
  t.s_entries <- t.s_entries @ [ e ];
  match t.s_analysis with
  | Per_spec _ ->
      per_spec_stage t ~project_digest:(project_digest t);
      paths t
  | Fused fs ->
      let has_funcs, _ = Lazy.force e.ent_decl in
      if has_funcs && t.s_interprocedural then reanalyze_all t fs
      else begin
        if has_funcs then isolated_pass2 t e;
        let deps =
          dependents t ~base:(Filename.basename path) ~excluding:e
        in
        rerun_toplevel t fs (e :: deps)
      end

let remove_file t ~path =
  match find_unique t ~op:"remove_file" ~path with
  | None -> []
  | Some e ->
      mutate t "session.remove_file" @@ fun () ->
      let deps =
        match t.s_analysis with
        | Fused _ -> dependents t ~base:(Filename.basename path) ~excluding:e
        | Per_spec _ -> []
      in
      t.s_entries <- List.filter (fun x -> x != e) t.s_entries;
      (match t.s_analysis with
      | Per_spec _ ->
          per_spec_stage t ~project_digest:(project_digest t);
          paths t
      | Fused fs ->
          let had_funcs, _ = Lazy.force e.ent_decl in
          if had_funcs && t.s_interprocedural then reanalyze_all t fs
          else rerun_toplevel t fs deps)
