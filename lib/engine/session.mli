(** The session-oriented scan engine.

    {!open_project} runs the batch pipeline once — parse fan-out, the
    fused multi-spec taint analysis (or the per-spec escape hatch),
    digest-keyed caching — and {e retains} everything in memory: ASTs,
    per-file pass results, the analyzer state with its summary table
    and catalog lookup, per-file dead-sink sets.  {!export} finalizes
    and merges deterministically; {!Scan.run} is exactly
    [export (open_project req)], so a one-shot scan is byte-identical
    to what the batch engine produced.

    {!update_file}, {!add_file} and {!remove_file} apply {e targeted}
    invalidation instead of cold cache probes:

    - the touched file is re-parsed and its top-level pass (pass 3)
      re-run, together with the files whose top-level sweep can splice
      it (transitive reverse include closure, matched by base name
      like the splice itself);
    - its function-bodies pass (pass 2) is re-run only when the
      file's {e function-summary fingerprint} — the exact function
      list passes 1/2 consume, bodies and locations included —
      changes;
    - only when that fingerprint changes {e and} interprocedural
      analysis is on (so the shared summary table itself is stale)
      does the whole project re-analyze.

    Every re-analyzed file emits a [File_analyzed] progress event, so
    clients (and the invalidation tests) can observe exactly how much
    work an edit caused.  After any sequence of mutations the session
    exports byte-identically to a fresh {!Scan.run} over the same
    sources.

    Sessions are not thread-safe: drive each from one domain (the
    pass-3 fan-out parallelizes internally). *)

open Wap_php

(** Bumped whenever the marshalled shape of cached values changes;
    part of every cache key. *)
val cache_format_version : string

type progress =
  | File_parsed of { path : string; cached : bool }
  | Spec_analyzed of { spec : string; cached : bool }
      (** per-spec pipeline only ([fuse:false]) *)
  | File_analyzed of { path : string; cached : bool }
      (** fused pipeline only: one per file once its analysis (or cache
          assembly) is done — and, in a session, one per file a
          mutation re-analyzes *)

type request = {
  files : (string * string) list;  (** [(path, source)], scanned as one app *)
  specs : Wap_catalog.Catalog.spec list;  (** active detectors *)
  jobs : int;  (** worker domains; clamped to at least 1 *)
  cache : Cache.t option;
  fingerprint : string;
      (** tool-level cache-key material: version name plus the full
          active spec set, so changing either invalidates analysis
          entries *)
  interprocedural : bool;
  fuse : bool;  (** fused multi-spec analysis (default) vs per-spec *)
  ir : bool;
      (** fused pass 3 runs over lowered three-address IR (default)
          instead of the AST walker; both produce byte-identical merged
          output, which is what the [scan-ir-equiv] fuzz oracle checks *)
  summary_store : bool;
      (** persist pass-1 summary deltas in the cache under
          content-addressed {e chained} keys — the key of file [i] is
          the running hash of the [(path, source digest)] prefix up to
          it, plus the spec-set fingerprint — so projects sharing a
          common file prefix (a vendored framework layer, ordered
          first) summarize it once {e across} projects.  Off by
          default (it changes the observable cache hit/miss profile);
          the fleet workers turn it on. *)
  on_progress : (progress -> unit) option;
      (** invoked in the calling domain, once per finished work item;
          see {!open_project}'s [on_event] for the generation-tagged
          variant *)
}

(** [request ~specs files] with defaults: [jobs], [fuse] and [ir]
    resolved through {!Config} (environment gates [WAP_JOBS],
    [WAP_FUSE], [WAP_IR]), no cache, empty fingerprint,
    interprocedural on. *)
val request :
  ?jobs:int ->
  ?cache:Cache.t ->
  ?fingerprint:string ->
  ?interprocedural:bool ->
  ?fuse:bool ->
  ?ir:bool ->
  ?summary_store:bool ->
  ?on_progress:(progress -> unit) ->
  specs:Wap_catalog.Catalog.spec list ->
  (string * string) list ->
  request

type file_report = {
  fr_path : string;
  fr_seconds : float;  (** wall clock spent parsing this file *)
  fr_cached : bool;
  fr_errors : Parser.recovered_error list;
}

type spec_report = {
  sr_spec : string;  (** submodule/class label *)
  sr_seconds : float;
      (** wall clock spent on this detector; [0.] in the fused pipeline,
          where the specs share one pass (see [phases]) *)
  sr_cached : bool;
  sr_candidates : int;
}

type outcome = {
  units : Wap_taint.Analyzer.file_unit list;  (** parsed files, input order *)
  candidates : Wap_taint.Trace.candidate list;
      (** merged (not yet de-duplicated), in the deterministic order
          of the scan engine *)
  file_reports : file_report list;  (** input order *)
  spec_reports : spec_report list;  (** spec order *)
  wall_seconds : float;
      (** wall clock of analysis work (open + mutations + exports) —
          idle time between session operations is not counted *)
  cpu_seconds : float;  (** process CPU, all domains aggregated *)
  phases : (string * float) list;
      (** per-phase wall clock, in pipeline order: [parse] (stage-1 pool
          fan-out), [digest] (project cache-key digest), [analyze]
          (stage-2 pool fan-out), [merge] (finalize + deterministic
          sort, measured at the latest export) *)
  jobs_used : int;
  cache_hits : int;  (** cache lookups served from the cache, this session *)
  cache_misses : int;
}

(** Human label of a spec, e.g. ["query manipulation/SQLI"]. *)
val spec_label : Wap_catalog.Catalog.spec -> string

(** An open session. *)
type t

(** A progress event tagged with the session generation it was
    produced at, so clients running edits asynchronously can discard
    notifications of a superseded edit: events whose [generation] is
    below the session's current one are stale. *)
type event = { generation : int; progress : progress }

(** Open a project: parse every file, run the analysis pipeline, retain
    all state.  The request's [on_progress] and the session-level
    [on_event] both fire for every work item (the latter
    generation-tagged); the open itself is generation [0]. *)
val open_project : ?on_event:(event -> unit) -> request -> t

(** [export (open_project req)] — the batch entry point {!Scan.run}
    delegates to. *)
val run : request -> outcome

(** The number of mutations applied so far ([0] right after
    {!open_project}; each [update]/[add]/[remove] increments it). *)
val generation : t -> int

(** The active detector specs, in the (id-defining) request order. *)
val specs : t -> Wap_catalog.Catalog.spec list

(** Paths of the files currently in the project, project order. *)
val paths : t -> string list

val mem : t -> path:string -> bool

(** Replace the contents of [path] and re-analyze incrementally (see
    the module docs for the invalidation rules).  Returns the paths
    whose analysis re-ran.  Raises [Invalid_argument] if [path] is not
    in the project, or occurs more than once (duplicate paths are
    legal in batch requests but not addressable for mutation). *)
val update_file : t -> path:string -> string -> string list

(** Add a new file at the end of the project order and re-analyze
    incrementally.  Returns the paths whose analysis re-ran.  Raises
    [Invalid_argument] if [path] is already in the project. *)
val add_file : t -> path:string -> string -> string list

(** Remove [path] from the project and re-analyze the files whose
    top-level sweep spliced it.  Returns the paths whose analysis
    re-ran (never includes the removed path).  Removing an unknown
    path is a no-op returning [[]]. *)
val remove_file : t -> path:string -> string list

(** Finalized (de-duplicated, dead-sink-filtered) candidates of the
    whole project in the deterministic merge order, each paired with
    the index of the spec that found it (position in {!specs}).
    Memoized per generation, so calling it repeatedly between edits is
    free.  In per-spec mode ([fuse:false]) the candidates are the
    stage results — not de-duplicated across specs, like
    [Scan.run]. *)
val all_diagnostics : t -> (int * Wap_taint.Trace.candidate) list

(** {!all_diagnostics} restricted to candidates whose sink file is
    [path]. *)
val diagnostics : t -> path:string -> (int * Wap_taint.Trace.candidate) list

(** Cheap live counters for monitoring surfaces ([wap serve]'s
    [/status]): unlike {!export}, reading them does no merge work
    beyond the per-generation memoized finalize. *)
type stats = {
  st_generation : int;
  st_files : int;  (** files currently in the project *)
  st_candidates : int;  (** finalized candidates at this generation *)
  st_cache_hits : int;  (** cache hits attributed to this session *)
  st_cache_misses : int;
}

val stats : t -> stats

(** The full outcome over the current project state — byte-identical
    to a fresh {!Scan.run} over the same sources, whatever mutations
    led here. *)
val export : t -> outcome
