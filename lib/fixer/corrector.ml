(** The code corrector: inserts fixes into vulnerable source (the
    right-hand module of Fig. 1).

    Correction happens on the AST: the tainted argument expressions at
    the sink are wrapped in a call to the fix function, whose definition
    is prepended once per file.  Fixes are applied at the line of the
    sensitive sink, as in the original WAP. *)

open Wap_php

type correction = {
  candidate : Wap_taint.Trace.candidate;
  fix : Fix.t;
}

type report = {
  file : string;
  applied : (Fix.t * Loc.t) list;  (** fix and sink line it protects *)
}

let wrap_call fix_name (e : Ast.expr) : Ast.expr =
  Ast.mk_e ~loc:e.Ast.eloc
    (Ast.Call
       (Ast.F_ident fix_name, [ { Ast.a_expr = e; a_spread = false } ]))

let already_wrapped fix_name (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Call (Ast.F_ident f, _) -> String.equal f fix_name
  | _ -> false

(* An expression is "the same sink argument" if it is physically the one
   the analyzer recorded, or (after a reparse) an equal expression at the
   same location. *)
let is_target (targets : Ast.expr list) (e : Ast.expr) =
  List.exists
    (fun t ->
      t == e
      || (Loc.equal t.Ast.eloc e.Ast.eloc && Ast.equal_expr t e))
    targets

(** Wrap the tainted sink arguments of one candidate with [fix]. *)
let apply_one (prog : Ast.program) ({ candidate; fix } : correction) :
    Ast.program =
  let tainted_args =
    List.filteri
      (fun i _ -> List.mem i candidate.Wap_taint.Trace.tainted_positions)
      candidate.Wap_taint.Trace.sink_args
  in
  let f (e : Ast.expr) =
    if is_target tainted_args e && not (already_wrapped fix.Fix.fix_name e) then
      wrap_call fix.Fix.fix_name e
    else e
  in
  Visitor.map_stmts f prog

(* A fix function definition, parsed from its PHP source so it prints
   uniformly with the rest of the file. *)
let fix_def_stmts (fix : Fix.t) : Ast.stmt list =
  Parser.parse_string ~file:"<fix>" ("<?php\n" ^ Fix.runtime_code fix)

let fix_already_defined (prog : Ast.program) name =
  List.exists
    (fun (f : Ast.func) -> String.lowercase_ascii f.Ast.f_name = String.lowercase_ascii name)
    (Visitor.collect_functions prog)

(** Apply a batch of corrections to a parsed file: wraps every tainted
    sink argument and prepends each needed fix definition once. *)
let correct_program (prog : Ast.program) (corrections : correction list) :
    Ast.program * report =
  let file =
    match corrections with
    | c :: _ -> c.candidate.Wap_taint.Trace.file
    | [] -> "<none>"
  in
  (* two detectors can flag the same sink; applying both corrections
     would double-wrap the argument *)
  let corrections =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun { candidate; fix } ->
        let key =
          ( candidate.Wap_taint.Trace.sink_loc.Loc.line,
            candidate.Wap_taint.Trace.sink_loc.Loc.col,
            fix.Fix.fix_name )
        in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      corrections
  in
  let prog = List.fold_left apply_one prog corrections in
  let needed_fixes =
    List.sort_uniq
      (fun (a : Fix.t) b -> String.compare a.fix_name b.fix_name)
      (List.map (fun c -> c.fix) corrections)
  in
  let defs =
    List.concat_map
      (fun fix ->
        if fix_already_defined prog fix.Fix.fix_name then [] else fix_def_stmts fix)
      needed_fixes
  in
  let applied =
    List.map (fun c -> (c.fix, c.candidate.Wap_taint.Trace.sink_loc)) corrections
  in
  (defs @ prog, { file; applied })

(** End-to-end correction of source text: parse, fix every candidate
    with its class's stock fix, and print the corrected PHP. *)
let correct_source ~file (src : string)
    (candidates : Wap_taint.Trace.candidate list) : string * report =
  Wap_obs.Trace.with_span ~cat:"fixer" "correct_source"
    ~args:
      [ ("file", file); ("candidates", string_of_int (List.length candidates)) ]
  @@ fun () ->
  let prog = Parser.parse_string ~file src in
  let corrections =
    List.map
      (fun c -> { candidate = c; fix = Fix.stock c.Wap_taint.Trace.vclass })
      candidates
  in
  let prog, report = correct_program prog corrections in
  (Printer.program_to_string prog, report)
