(** The code corrector: inserts fixes into vulnerable source (the
    right-hand module of Fig. 1).

    Correction happens on the AST: the tainted argument expressions at
    the sink are wrapped in a call to the fix function, whose definition
    is prepended once per file.  Fixes are applied at the line of the
    sensitive sink, as in the original WAP. *)

open Wap_php

type correction = {
  candidate : Wap_taint.Trace.candidate;
  fix : Fix.t;
}

type report = {
  file : string;
  applied : (Fix.t * Loc.t) list;  (** fix and sink line it protects *)
}

let wrap_call fix_name (e : Ast.expr) : Ast.expr =
  Ast.mk_e ~loc:e.Ast.eloc
    (Ast.Call
       (Ast.F_ident fix_name, [ { Ast.a_expr = e; a_spread = false } ]))

let already_wrapped fix_name (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Call (Ast.F_ident f, _) -> String.equal f fix_name
  | _ -> false

(* An expression is "the same sink argument" if it is physically the one
   the analyzer recorded, or (after a reparse) an equal expression at the
   same location. *)
let is_target (targets : Ast.expr list) (e : Ast.expr) =
  List.exists
    (fun t ->
      t == e
      || (Loc.equal t.Ast.eloc e.Ast.eloc && Ast.equal_expr t e))
    targets

(* A backtick sink cannot be fixed by wrapping: [`cmd {$x}`] executes
   like [shell_exec("cmd {$x}")], so sanitizing the *result* leaves the
   injection intact — and PHP's interpolation syntax cannot carry the
   sanitizer call inside the string.  Rewrite to an explicit
   [shell_exec] over a concatenation, sanitizing every interpolated
   expression. *)
let backtick_rewrite fix_name (parts : Ast.interp_part list) loc : Ast.expr =
  let piece = function
    | Ast.Ip_str s -> Ast.mk_e ~loc (Ast.String s)
    | Ast.Ip_expr pe ->
        if already_wrapped fix_name pe then pe else wrap_call fix_name pe
  in
  let arg =
    match List.map piece parts with
    | [] -> Ast.mk_e ~loc (Ast.String "")
    | first :: rest ->
        List.fold_left
          (fun acc p -> Ast.mk_e ~loc (Ast.Binop (Ast.Concat, acc, p)))
          first rest
  in
  Ast.mk_e ~loc
    (Ast.Call
       (Ast.F_ident "shell_exec", [ { Ast.a_expr = arg; a_spread = false } ]))

(** Wrap the tainted sink arguments of one candidate with [fix]. *)
let apply_one (prog : Ast.program) ({ candidate; fix } : correction) :
    Ast.program =
  let tainted_args =
    List.filteri
      (fun i _ -> List.mem i candidate.Wap_taint.Trace.tainted_positions)
      candidate.Wap_taint.Trace.sink_args
  in
  let f (e : Ast.expr) =
    if not (is_target tainted_args e) then e
    else
      match e.Ast.e with
      | Ast.Backtick parts
        when String.equal candidate.Wap_taint.Trace.sink_name "shell_exec"
             && Loc.equal candidate.Wap_taint.Trace.sink_loc e.Ast.eloc ->
          backtick_rewrite fix.Fix.fix_name parts e.Ast.eloc
      | _ ->
          if already_wrapped fix.Fix.fix_name e then e
          else wrap_call fix.Fix.fix_name e
  in
  Visitor.map_stmts f prog

(** Apply every correction, backtick rewrites last.  An ordinary wrap
    preserves the wrapped subtree, so a later correction still finds
    its target by location + structural equality even inside an earlier
    wrap — e.g. [echo `cmd $x` . $y] is both an XSS sink (the whole
    concatenation) and an OS-command-injection sink (the backtick).
    The backtick rewrite is the one destructive rewrite, so it must not
    run before a correction matching an expression that *contains* the
    backtick. *)
let apply_all (prog : Ast.program) (corrections : correction list) :
    Ast.program =
  let is_backtick_sink { candidate; _ } =
    String.equal candidate.Wap_taint.Trace.sink_name "shell_exec"
  in
  let ordered =
    List.filter (fun c -> not (is_backtick_sink c)) corrections
    @ List.filter is_backtick_sink corrections
  in
  List.fold_left apply_one prog ordered

(* A fix function definition, parsed from its PHP source so it prints
   uniformly with the rest of the file. *)
let fix_def_stmts (fix : Fix.t) : Ast.stmt list =
  Parser.parse_string ~file:"<fix>" ("<?php\n" ^ Fix.runtime_code fix)

let fix_already_defined (prog : Ast.program) name =
  List.exists
    (fun (f : Ast.func) -> String.lowercase_ascii f.Ast.f_name = String.lowercase_ascii name)
    (Visitor.collect_functions prog)

(** Apply a batch of corrections to a parsed file: wraps every tainted
    sink argument and prepends each needed fix definition once. *)
let correct_program (prog : Ast.program) (corrections : correction list) :
    Ast.program * report =
  let file =
    match corrections with
    | c :: _ -> c.candidate.Wap_taint.Trace.file
    | [] -> "<none>"
  in
  (* two detectors can flag the same sink; applying both corrections
     would double-wrap the argument *)
  let corrections =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun { candidate; fix } ->
        let key =
          ( candidate.Wap_taint.Trace.sink_loc.Loc.line,
            candidate.Wap_taint.Trace.sink_loc.Loc.col,
            fix.Fix.fix_name )
        in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      corrections
  in
  let prog = apply_all prog corrections in
  let needed_fixes =
    List.sort_uniq
      (fun (a : Fix.t) b -> String.compare a.fix_name b.fix_name)
      (List.map (fun c -> c.fix) corrections)
  in
  let defs =
    List.concat_map
      (fun fix ->
        if fix_already_defined prog fix.Fix.fix_name then [] else fix_def_stmts fix)
      needed_fixes
  in
  let applied =
    List.map (fun c -> (c.fix, c.candidate.Wap_taint.Trace.sink_loc)) corrections
  in
  (defs @ prog, { file; applied })

(** End-to-end correction of source text: parse, fix every candidate
    with its class's stock fix, and print the corrected PHP. *)
let correct_source ~file (src : string)
    (candidates : Wap_taint.Trace.candidate list) : string * report =
  Wap_obs.Trace.with_span ~cat:"fixer" "correct_source"
    ~args:
      [ ("file", file); ("candidates", string_of_int (List.length candidates)) ]
  @@ fun () ->
  let prog = Parser.parse_string ~file src in
  let corrections =
    List.map
      (fun c -> { candidate = c; fix = Fix.stock c.Wap_taint.Trace.vclass })
      candidates
  in
  let prog, report = correct_program prog corrections in
  (Printer.program_to_string prog, report)
