(** The fleet coordinator: shard a set of project directories over N
    spawned worker processes and merge their results.

    One domain drives each worker over a pair of pipes, pulling jobs
    from a shared queue — a worker that finishes a small project early
    immediately takes the next one, so the shard boundaries are
    dynamic.  A worker that dies mid-project (crash, OOM kill) is
    detected as [EOF] on its result pipe; the coordinator respawns a
    fresh worker and retries the project {e once}, and only a project
    whose retry also fails is recorded as a failure.

    The merged output is deterministic: per-project payloads carry no
    timings or cache state, and {!merged_lines} orders them by project
    name — byte-identical whatever the worker count, the scheduling or
    the cache temperature.  Timing, throughput and cache statistics
    live in the separate {!report}. *)

module Json = Wap_report.Json

type config = {
  fc_workers : int;  (** worker processes; clamped to at least 1 *)
  fc_worker_jobs : int;  (** analysis domains inside each worker *)
  fc_cache_dir : string option;  (** shared disk cache, fleet-wide *)
  fc_summary_store : bool;  (** cross-project summary store *)
  fc_progress : bool;
      (** emit periodic [done/total, files/s, ETA] lines on stderr *)
}

type report = {
  rp_projects : int;
  rp_failed : string list;  (** projects failed after their retry *)
  rp_retried : int;  (** first-attempt worker deaths recovered *)
  rp_files : int;
  rp_loc : int;
  rp_candidates : int;
  rp_reported : int;
  rp_wall_seconds : float;
  rp_projects_per_second : float;
  rp_files_per_second : float;
  rp_cache_hits : int;
  rp_cache_misses : int;
  rp_dedup_hit_ratio : float;
      (** hits / (hits + misses) across all workers; > 0 means some
          file was parsed or summarized once and reused *)
}

type outcome = { results : Proto.result list; report : report }

(* ------------------------------------------------------------------ *)
(* Project discovery.                                                  *)

let discover roots : string list =
  List.concat_map
    (fun root ->
      if not (Sys.is_directory root) then
        invalid_arg (Printf.sprintf "wap fleet: %S is not a directory" root)
      else
        let subdirs =
          Sys.readdir root |> Array.to_list |> List.sort String.compare
          |> List.filter_map (fun e ->
                 let p = Filename.concat root e in
                 if Sys.is_directory p then Some p else None)
        in
        match subdirs with [] -> [ root ] | ds -> ds)
    roots

(* ------------------------------------------------------------------ *)
(* Worker processes.                                                   *)

type wproc = { w_pid : int; w_send : out_channel; w_recv : in_channel }

let worker_config (cfg : config) : Proto.config =
  {
    Proto.cfg_jobs = cfg.fc_worker_jobs;
    cfg_cache_dir = cfg.fc_cache_dir;
    cfg_summary_store = cfg.fc_summary_store;
  }

(* Self-exec: the worker is this very binary in its hidden mode, so
   the fleet works from the CLI, the bench harness and the test
   executables alike — whoever the host is, it dispatched
   [Worker.maybe_main] before reaching its own main. *)
let spawn (cfg : config) : wproc =
  let job_r, job_w = Unix.pipe () in
  let res_r, res_w = Unix.pipe () in
  Unix.set_close_on_exec job_w;
  Unix.set_close_on_exec res_r;
  let pid =
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; Worker.dispatch_argv |]
      job_r res_w Unix.stderr
  in
  Unix.close job_r;
  Unix.close res_w;
  let w = { w_pid = pid; w_send = Unix.out_channel_of_descr job_w;
            w_recv = Unix.in_channel_of_descr res_r }
  in
  (try
     output_string w.w_send (Proto.config_line (worker_config cfg));
     output_char w.w_send '\n';
     flush w.w_send
   with Sys_error _ -> ()  (* died instantly: detected at first job *));
  w

let dispose (w : wproc) =
  close_out_noerr w.w_send;
  close_in_noerr w.w_recv;
  try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ()

(* One job round-trip.  [None] means the worker is gone (EOF, broken
   pipe, or an unparseable — torn — line): the caller respawns. *)
let attempt (w : wproc) (job : Proto.job) : Proto.result option =
  match
    output_string w.w_send (Proto.job_line job);
    output_char w.w_send '\n';
    flush w.w_send;
    input_line w.w_recv
  with
  | exception (End_of_file | Sys_error _) -> None
  | line -> (
      match Proto.result_of_line line with Ok r -> Some r | Error _ -> None)

(* ------------------------------------------------------------------ *)
(* The shard loop.                                                     *)

type shared = {
  sh_queue : Proto.job Queue.t;
  sh_mutex : Mutex.t;
  mutable sh_results : Proto.result list;
  mutable sh_retried : int;
  sh_on_result : (Proto.result -> unit) option;
  sh_progress : progress option;
}

(* Progress accounting, mutated only under [sh_mutex].  The ETA
   extrapolates the mean project rate so far; lines are throttled to
   one per second plus a final one at [done = total]. *)
and progress = {
  pg_total : int;
  pg_t0 : float;
  mutable pg_done : int;
  mutable pg_files : int;
  mutable pg_last_emit : float;
}

let locked sh f =
  Mutex.lock sh.sh_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.sh_mutex) f

let pop sh = locked sh (fun () -> Queue.take_opt sh.sh_queue)

let emit_progress pg ~now =
  pg.pg_last_emit <- now;
  let elapsed = now -. pg.pg_t0 in
  let fps =
    if elapsed > 0. then float_of_int pg.pg_files /. elapsed else 0.
  in
  let rate =
    if elapsed > 0. then float_of_int pg.pg_done /. elapsed else 0.
  in
  if pg.pg_done >= pg.pg_total then
    Printf.eprintf "fleet: %d/%d projects, %.1f files/s, done in %.0fs\n%!"
      pg.pg_done pg.pg_total fps elapsed
  else begin
    let eta =
      if rate > 0. then float_of_int (pg.pg_total - pg.pg_done) /. rate
      else 0.
    in
    Printf.eprintf "fleet: %d/%d projects, %.1f files/s, ETA %.0fs\n%!"
      pg.pg_done pg.pg_total fps eta
  end

let record sh r =
  locked sh (fun () ->
      sh.sh_results <- r :: sh.sh_results;
      (match sh.sh_progress with
      | Some pg ->
          pg.pg_done <- pg.pg_done + 1;
          if r.Proto.res_ok then
            pg.pg_files <- pg.pg_files + r.Proto.res_files;
          let now = Unix.gettimeofday () in
          if pg.pg_done >= pg.pg_total || now -. pg.pg_last_emit >= 1.0 then
            emit_progress pg ~now
      | None -> ());
      match sh.sh_on_result with Some f -> f r | None -> ())

let drive (cfg : config) (sh : shared) =
  let w = ref (spawn cfg) in
  let rec next () =
    match pop sh with
    | None -> dispose !w
    | Some job -> (
        match attempt !w job with
        | Some r ->
            record sh r;
            next ()
        | None ->
            (* worker died mid-project: fresh worker, one retry *)
            dispose !w;
            w := spawn cfg;
            if job.Proto.job_attempt = 1 then begin
              locked sh (fun () -> sh.sh_retried <- sh.sh_retried + 1);
              let retry = { job with Proto.job_attempt = 2 } in
              (match attempt !w retry with
              | Some r -> record sh r
              | None ->
                  dispose !w;
                  w := spawn cfg;
                  record sh (Worker.error_result retry "worker died twice"))
            end
            else record sh (Worker.error_result job "worker died");
            next ())
  in
  next ()

(* Stable fleet-wide order: project name, directory as tie-break. *)
let compare_results (a : Proto.result) (b : Proto.result) =
  let c = String.compare a.Proto.res_project b.Proto.res_project in
  if c <> 0 then c else String.compare a.Proto.res_dir b.Proto.res_dir

let run ?on_result (cfg : config) ~dirs : outcome =
  (* a worker dying between our write and its read turns the job pipe
     into a broken pipe; take the EPIPE, not the signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let t0 = Unix.gettimeofday () in
  let sh =
    {
      sh_queue = Queue.create ();
      sh_mutex = Mutex.create ();
      sh_results = [];
      sh_retried = 0;
      sh_on_result = on_result;
      sh_progress =
        (if cfg.fc_progress && dirs <> [] then
           Some
             {
               pg_total = List.length dirs;
               pg_t0 = t0;
               pg_done = 0;
               pg_files = 0;
               pg_last_emit = t0;
             }
         else None);
    }
  in
  List.iter
    (fun dir ->
      Queue.add { Proto.job_dir = dir; job_attempt = 1 } sh.sh_queue)
    dirs;
  let n = max 1 (min cfg.fc_workers (List.length dirs)) in
  if dirs <> [] then
    List.init n (fun _ -> Domain.spawn (fun () -> drive cfg sh))
    |> List.iter Domain.join;
  let wall = Unix.gettimeofday () -. t0 in
  let results = List.sort compare_results sh.sh_results in
  let ok = List.filter (fun r -> r.Proto.res_ok) results in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 ok in
  let files = sum (fun r -> r.Proto.res_files) in
  let hits = sum (fun r -> r.Proto.res_cache_hits) in
  let misses = sum (fun r -> r.Proto.res_cache_misses) in
  let report =
    {
      rp_projects = List.length results;
      rp_failed =
        List.filter_map
          (fun r ->
            if r.Proto.res_ok then None else Some r.Proto.res_project)
          results;
      rp_retried = sh.sh_retried;
      rp_files = files;
      rp_loc = sum (fun r -> r.Proto.res_loc);
      rp_candidates = sum (fun r -> r.Proto.res_candidates);
      rp_reported = sum (fun r -> r.Proto.res_reported);
      rp_wall_seconds = wall;
      rp_projects_per_second =
        (if wall > 0. then float_of_int (List.length ok) /. wall else 0.);
      rp_files_per_second =
        (if wall > 0. then float_of_int files /. wall else 0.);
      rp_cache_hits = hits;
      rp_cache_misses = misses;
      rp_dedup_hit_ratio =
        (if hits + misses > 0 then
           float_of_int hits /. float_of_int (hits + misses)
         else 0.);
    }
  in
  { results; report }

(* ------------------------------------------------------------------ *)
(* Outputs.                                                            *)

let merged_lines (o : outcome) : string list =
  List.filter_map
    (fun r ->
      if r.Proto.res_ok then
        Some (Json.to_string ~indent:false r.Proto.res_payload)
      else None)
    o.results

let report_json (r : report) : Json.t =
  Json.Obj
    [ ("projects", Json.Int r.rp_projects);
      ("failed", Json.List (List.map (fun p -> Json.Str p) r.rp_failed));
      ("retried", Json.Int r.rp_retried);
      ("files", Json.Int r.rp_files);
      ("loc", Json.Int r.rp_loc);
      ("candidates", Json.Int r.rp_candidates);
      ("reported", Json.Int r.rp_reported);
      ("wall_seconds", Json.Float r.rp_wall_seconds);
      ("fleet_projects_per_second", Json.Float r.rp_projects_per_second);
      ("fleet_files_per_second", Json.Float r.rp_files_per_second);
      ("cache_hits", Json.Int r.rp_cache_hits);
      ("cache_misses", Json.Int r.rp_cache_misses);
      ("fleet_dedup_hit_ratio", Json.Float r.rp_dedup_hit_ratio) ]
