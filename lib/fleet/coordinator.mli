(** The fleet coordinator: shard project directories over N spawned
    worker processes (this very binary, re-executed in its hidden
    [__fleet-worker] mode), stream per-project results back, retry a
    project once when its worker dies, and merge deterministically.

    One domain drives each worker over a pair of pipes, pulling jobs
    from a shared queue, so shard boundaries are dynamic.  The merged
    NDJSON ({!merged_lines}) is byte-identical whatever the worker
    count or cache temperature; timing, throughput and cache traffic
    live in the separate {!report}. *)

module Json = Wap_report.Json

type config = {
  fc_workers : int;  (** worker processes; clamped to at least 1 *)
  fc_worker_jobs : int;  (** analysis domains inside each worker *)
  fc_cache_dir : string option;  (** shared disk cache, fleet-wide *)
  fc_summary_store : bool;  (** cross-project summary store *)
  fc_progress : bool;
      (** emit a [fleet: done/total projects, files/s, ETA] line on
          stderr about once a second (and at completion); stdout and
          the merged NDJSON are untouched *)
}

type report = {
  rp_projects : int;
  rp_failed : string list;  (** projects failed after their retry *)
  rp_retried : int;  (** first-attempt worker deaths recovered *)
  rp_files : int;
  rp_loc : int;
  rp_candidates : int;
  rp_reported : int;
  rp_wall_seconds : float;
  rp_projects_per_second : float;
  rp_files_per_second : float;
  rp_cache_hits : int;
  rp_cache_misses : int;
  rp_dedup_hit_ratio : float;
      (** hits / (hits + misses) across all workers; > 0 means some
          file was parsed or summarized once and reused *)
}

type outcome = {
  results : Proto.result list;  (** sorted by project name, then dir *)
  report : report;
}

(** Expand fleet roots to project directories: a root with
    subdirectories contributes them (sorted); a leaf root is itself
    one project.  Raises [Invalid_argument] on a non-directory. *)
val discover : string list -> string list

(** Run the fleet over the given project directories.  [on_result]
    streams each per-project result as it lands (any worker domain's
    order, under the coordinator's lock). *)
val run : ?on_result:(Proto.result -> unit) -> config -> dirs:string list -> outcome

(** The deterministic merged output: one compact-JSON line per
    successful project, in {!outcome}[.results] order. *)
val merged_lines : outcome -> string list

val report_json : report -> Json.t
