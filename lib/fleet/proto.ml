(** The fleet wire protocol: newline-delimited JSON between the
    coordinator and its worker processes.

    Three line shapes flow over the pipes: one [config] line (first
    thing on a worker's stdin), then [job] lines down and [result]
    lines back, one per project.  Everything is a single line of
    compact JSON, so a dead worker is detected as a plain [EOF] and a
    torn line never parses. *)

module Json = Wap_report.Json

type config = {
  cfg_jobs : int;  (** analysis domains inside each worker *)
  cfg_cache_dir : string option;  (** shared disk cache, fleet-wide *)
  cfg_summary_store : bool;  (** cross-project summary store *)
}

type job = { job_dir : string; job_attempt : int  (** 1, then 2 on retry *) }

type result = {
  res_project : string;  (** base name of the project directory *)
  res_dir : string;
  res_attempt : int;
  res_ok : bool;
  res_error : string;  (** [""] when ok *)
  res_payload : Json.t;
      (** the deterministic per-project scan report (no timings, no
          cache state): what the merged NDJSON output is made of *)
  res_files : int;
  res_loc : int;
  res_candidates : int;
  res_reported : int;
  res_seconds : float;  (** worker wall clock on this project *)
  res_cache_hits : int;  (** cache traffic attributed to this scan *)
  res_cache_misses : int;
}

let line j = Json.to_string ~indent:false j

(* -- accessors with typed errors ----------------------------------- *)

let str_member k j =
  match Json.member k j with
  | Some (Json.Str s) -> Ok s
  | _ -> Error (Printf.sprintf "missing string field %S" k)

let int_member k j =
  match Json.member k j with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "missing int field %S" k)

let bool_member k j =
  match Json.member k j with
  | Some (Json.Bool b) -> Ok b
  | _ -> Error (Printf.sprintf "missing bool field %S" k)

let float_member k j =
  match Json.member k j with
  | Some (Json.Float f) -> Ok f
  | Some (Json.Int i) -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "missing float field %S" k)

let ( let* ) = Result.bind

let parse s =
  match Json.of_string s with
  | Ok j -> Ok j
  | Error e -> Error ("malformed protocol line: " ^ e)

(* -- config -------------------------------------------------------- *)

let config_line (c : config) : string =
  line
    (Json.Obj
       [ ("jobs", Json.Int c.cfg_jobs);
         ( "cache_dir",
           match c.cfg_cache_dir with
           | Some d -> Json.Str d
           | None -> Json.Null );
         ("summary_store", Json.Bool c.cfg_summary_store) ])

let config_of_line s : (config, string) Stdlib.result =
  let* j = parse s in
  let* cfg_jobs = int_member "jobs" j in
  let* cfg_summary_store = bool_member "summary_store" j in
  let cfg_cache_dir =
    match Json.member "cache_dir" j with Some (Json.Str d) -> Some d | _ -> None
  in
  Ok { cfg_jobs; cfg_cache_dir; cfg_summary_store }

(* -- job ----------------------------------------------------------- *)

let job_line (j : job) : string =
  line
    (Json.Obj
       [ ("dir", Json.Str j.job_dir); ("attempt", Json.Int j.job_attempt) ])

let job_of_line s : (job, string) Stdlib.result =
  let* j = parse s in
  let* job_dir = str_member "dir" j in
  let* job_attempt = int_member "attempt" j in
  Ok { job_dir; job_attempt }

(* -- result -------------------------------------------------------- *)

let result_line (r : result) : string =
  line
    (Json.Obj
       [ ("project", Json.Str r.res_project);
         ("dir", Json.Str r.res_dir);
         ("attempt", Json.Int r.res_attempt);
         ("ok", Json.Bool r.res_ok);
         ("error", Json.Str r.res_error);
         ("payload", r.res_payload);
         ("files", Json.Int r.res_files);
         ("loc", Json.Int r.res_loc);
         ("candidates", Json.Int r.res_candidates);
         ("reported", Json.Int r.res_reported);
         ("seconds", Json.Float r.res_seconds);
         ("cache_hits", Json.Int r.res_cache_hits);
         ("cache_misses", Json.Int r.res_cache_misses) ])

let result_of_line s : (result, string) Stdlib.result =
  let* j = parse s in
  let* res_project = str_member "project" j in
  let* res_dir = str_member "dir" j in
  let* res_attempt = int_member "attempt" j in
  let* res_ok = bool_member "ok" j in
  let* res_error = str_member "error" j in
  let res_payload =
    match Json.member "payload" j with Some p -> p | None -> Json.Null
  in
  let* res_files = int_member "files" j in
  let* res_loc = int_member "loc" j in
  let* res_candidates = int_member "candidates" j in
  let* res_reported = int_member "reported" j in
  let* res_seconds = float_member "seconds" j in
  let* res_cache_hits = int_member "cache_hits" j in
  let* res_cache_misses = int_member "cache_misses" j in
  Ok
    { res_project; res_dir; res_attempt; res_ok; res_error; res_payload;
      res_files; res_loc; res_candidates; res_reported; res_seconds;
      res_cache_hits; res_cache_misses }
