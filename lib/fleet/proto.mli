(** The fleet wire protocol: newline-delimited JSON between the
    coordinator and its worker processes — one [config] line down at
    startup, then [job] lines down and [result] lines back.  A dead
    worker is detected as plain [EOF]; a torn line never parses. *)

module Json = Wap_report.Json

type config = {
  cfg_jobs : int;  (** analysis domains inside each worker *)
  cfg_cache_dir : string option;  (** shared disk cache, fleet-wide *)
  cfg_summary_store : bool;  (** cross-project summary store *)
}

type job = { job_dir : string; job_attempt : int  (** 1, then 2 on retry *) }

type result = {
  res_project : string;  (** base name of the project directory *)
  res_dir : string;
  res_attempt : int;
  res_ok : bool;
  res_error : string;  (** [""] when ok *)
  res_payload : Json.t;
      (** the deterministic per-project scan report (no timings, no
          cache state): what the merged NDJSON output is made of *)
  res_files : int;
  res_loc : int;
  res_candidates : int;
  res_reported : int;
  res_seconds : float;  (** worker wall clock on this project *)
  res_cache_hits : int;  (** cache traffic attributed to this scan *)
  res_cache_misses : int;
}

val config_line : config -> string
val config_of_line : string -> (config, string) Stdlib.result
val job_line : job -> string
val job_of_line : string -> (job, string) Stdlib.result
val result_line : result -> string
val result_of_line : string -> (result, string) Stdlib.result
