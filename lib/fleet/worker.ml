(** The fleet worker: the hidden process mode every [wap]-family
    executable carries.

    The coordinator re-executes its own binary with
    [argv(1) = "__fleet-worker"]; {!maybe_main}, called first thing by
    each host executable's entry point, intercepts that and never
    returns.  The worker then speaks {!Proto} over stdin/stdout: one
    config line in, then one scan per job line, one result line out
    per project, exit 0 on EOF.

    Each worker holds one tool instance and one cache handle for its
    whole life, so consecutive projects share the in-memory cache and
    — through a [cache_dir]-backed cache plus the engine's
    [summary_store] — the fleet shares parses and pass-1 summaries of
    identical files (the vendored framework layer) across projects
    {e and} across workers. *)

module Json = Wap_report.Json

let dispatch_argv = "__fleet-worker"

(* Deterministic crash hook for the retry tests and the smoke script:
   [WAP_FLEET_TEST_CRASH=<project>] makes the worker die (exit 42)
   when handed that project on a {e first} attempt, so the
   coordinator's single retry deterministically succeeds;
   [<project>:always] dies on every attempt, so the retry
   deterministically fails too. *)
let crash_env = "WAP_FLEET_TEST_CRASH"
let crash_exit_code = 42

let should_crash ~spec (job : Proto.job) =
  let project = Filename.basename job.Proto.job_dir in
  match spec with
  | None -> false
  | Some s when Filename.check_suffix s ":always" ->
      String.equal (Filename.chop_suffix s ":always") project
  | Some s -> String.equal s project && job.Proto.job_attempt = 1

let read_file = Wap_php.Io.read_file

(* Project-relative .php paths, sorted at every level — the same walk
   order on every worker, and relative so cache keys (parse entries,
   summary-chain links) are identical for identical files living in
   different project roots. *)
let php_files dir : string list =
  let rec go rel acc =
    let abs = if rel = "" then dir else Filename.concat dir rel in
    if Sys.is_directory abs then
      Sys.readdir abs |> Array.to_list |> List.sort String.compare
      |> List.fold_left
           (fun acc entry ->
             go (if rel = "" then entry else Filename.concat rel entry) acc)
           acc
    else if Filename.check_suffix rel ".php" then rel :: acc
    else acc
  in
  List.rev (go "" [])

let finding_json (f : Wap_core.Tool.finding) : Json.t =
  let c = f.Wap_core.Tool.candidate in
  Json.Obj
    [ ("class", Json.Str (Wap_catalog.Vuln_class.acronym c.Wap_taint.Trace.vclass));
      ("file", Json.Str c.Wap_taint.Trace.file);
      ("line", Json.Int c.Wap_taint.Trace.sink_loc.Wap_php.Loc.line);
      ("col", Json.Int c.Wap_taint.Trace.sink_loc.Wap_php.Loc.col);
      ("sink", Json.Str c.Wap_taint.Trace.sink_name);
      ("predicted_fp", Json.Bool f.Wap_core.Tool.predicted_fp) ]

(* The merged-output payload: only deterministic scan facts, no
   timings and no cache state, so the fleet's merged NDJSON is
   byte-identical whatever the worker count or cache temperature. *)
let payload ~project (r : Wap_core.Tool.package_result) : Json.t =
  Json.Obj
    [ ("project", Json.Str project);
      ("files", Json.Int r.Wap_core.Tool.files_analyzed);
      ("loc", Json.Int r.Wap_core.Tool.loc);
      ("findings", Json.List (List.map finding_json r.Wap_core.Tool.findings))
    ]

let scan_project ~tool ~cache ~(cfg : Proto.config) (job : Proto.job) :
    Proto.result =
  let t0 = Unix.gettimeofday () in
  let project = Filename.basename job.Proto.job_dir in
  let rels = php_files job.Proto.job_dir in
  let sources =
    List.map
      (fun rel -> (rel, read_file (Filename.concat job.Proto.job_dir rel)))
      rels
  in
  let outcome =
    Wap_core.Scan.run tool
      (Wap_core.Scan.request ~jobs:cfg.Proto.cfg_jobs ?cache
         ~summary_store:cfg.Proto.cfg_summary_store sources)
  in
  let r = outcome.Wap_core.Scan.result in
  {
    Proto.res_project = project;
    res_dir = job.Proto.job_dir;
    res_attempt = job.Proto.job_attempt;
    res_ok = true;
    res_error = "";
    res_payload = payload ~project r;
    res_files = r.Wap_core.Tool.files_analyzed;
    res_loc = r.Wap_core.Tool.loc;
    res_candidates = List.length r.Wap_core.Tool.candidates;
    res_reported = List.length r.Wap_core.Tool.reported;
    res_seconds = Unix.gettimeofday () -. t0;
    res_cache_hits = outcome.Wap_core.Scan.cache_hits;
    res_cache_misses = outcome.Wap_core.Scan.cache_misses;
  }

let error_result (job : Proto.job) msg : Proto.result =
  {
    Proto.res_project = Filename.basename job.Proto.job_dir;
    res_dir = job.Proto.job_dir;
    res_attempt = job.Proto.job_attempt;
    res_ok = false;
    res_error = msg;
    res_payload = Json.Null;
    res_files = 0;
    res_loc = 0;
    res_candidates = 0;
    res_reported = 0;
    res_seconds = 0.;
    res_cache_hits = 0;
    res_cache_misses = 0;
  }

let main () : int =
  match input_line stdin with
  | exception End_of_file -> 0
  | cfg_line -> (
      match Proto.config_of_line cfg_line with
      | Error e ->
          prerr_endline ("wap fleet worker: " ^ e);
          2
      | Ok cfg ->
          let tool = Wap_core.Tool.create Wap_core.Version.Wape in
          (* always scan through a cache: without a fleet-wide
             directory it is worker-local, which still shares parses
             and summaries between this worker's own projects *)
          let cache =
            Some
              (match cfg.Proto.cfg_cache_dir with
              | Some d -> Wap_engine.Cache.create ~dir:d ()
              | None -> Wap_engine.Cache.create ())
          in
          let crash_target = Sys.getenv_opt crash_env in
          let rec loop () =
            match input_line stdin with
            | exception End_of_file -> 0
            | line -> (
                match Proto.job_of_line line with
                | Error e ->
                    prerr_endline ("wap fleet worker: " ^ e);
                    2
                | Ok job ->
                    if should_crash ~spec:crash_target job then
                      exit crash_exit_code;
                    let res =
                      try scan_project ~tool ~cache ~cfg job
                      with e -> error_result job (Printexc.to_string e)
                    in
                    output_string stdout (Proto.result_line res);
                    output_char stdout '\n';
                    flush stdout;
                    loop ())
          in
          loop ())

let maybe_main () =
  if Array.length Sys.argv >= 2 && Sys.argv.(1) = dispatch_argv then
    exit (main ())
