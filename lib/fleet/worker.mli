(** The fleet worker: the hidden process mode every [wap]-family
    executable carries, entered when the coordinator re-executes its
    own binary with [argv(1) = {!dispatch_argv}].

    Protocol (over stdin/stdout, see {!Proto}): one config line in,
    then one result line out per job line, exit 0 on EOF.  The worker
    keeps one tool instance and one cache handle for its whole life,
    so projects share parses and — with the summary store on — pass-1
    summaries of identical files across projects and workers. *)

(** ["__fleet-worker"]. *)
val dispatch_argv : string

(** [WAP_FLEET_TEST_CRASH]: when set to a project's base name, the
    worker exits with {!crash_exit_code} when handed that project on a
    {e first} attempt (so the coordinator's retry succeeds); with a
    [:always] suffix it dies on every attempt (so the retry fails
    too).  The deterministic worker-death hook of the retry tests and
    the fleet smoke script. *)
val crash_env : string

val crash_exit_code : int

(** Project-relative [.php] paths under a directory, sorted at every
    level (the canonical fleet walk order). *)
val php_files : string -> string list

(** A failure result for a job (also used by the coordinator to record
    a project whose worker died on both attempts). *)
val error_result : Proto.job -> string -> Proto.result

(** Run the worker loop on stdin/stdout; returns the exit code. *)
val main : unit -> int

(** Call first thing in every host executable's entry point: if this
    process was spawned as a fleet worker, runs {!main} and exits —
    otherwise returns immediately. *)
val maybe_main : unit -> unit
