(** Growable arenas of basic blocks: dense ids in completion order. *)

type 'a t = { mutable blocks : 'a array array; mutable len : int }

let create () = { blocks = [||]; len = 0 }

let ensure t n =
  if n > Array.length t.blocks then begin
    let cap = max 8 (max n (2 * Array.length t.blocks)) in
    let blocks = Array.make cap [||] in
    Array.blit t.blocks 0 blocks 0 t.len;
    t.blocks <- blocks
  end

let add t block =
  ensure t (t.len + 1);
  t.blocks.(t.len) <- block;
  let id = t.len in
  t.len <- id + 1;
  id

let num_blocks t = t.len
let freeze t = Array.sub t.blocks 0 t.len
