(** Growable arenas of basic blocks.

    A block is an immutable array of instructions of some IR; an arena
    assigns each finished block a dense integer id, in completion order.
    Structured IRs lowered from ASTs ({!Wap_ir}) reference sub-blocks by
    id (a body, a ternary arm, a switch case) and freeze the arena into
    a plain [array] once lowering is done, so the executor indexes
    blocks with no indirection. *)

type 'a t

val create : unit -> 'a t

(** Append a finished block; returns its id (dense, starting at 0). *)
val add : 'a t -> 'a array -> int

val num_blocks : 'a t -> int

(** Snapshot of all blocks added so far, indexed by id. *)
val freeze : 'a t -> 'a array array
