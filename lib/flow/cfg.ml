(** Intra-procedural control-flow graphs over the PHP AST.

    A CFG decomposes one scope (the top level of a file, or one function
    body) into basic blocks of straight-line elements connected by
    control edges.  [if]/[while]/[do]/[for]/[foreach]/[switch] introduce
    branch and loop edges; [break]/[continue] jump to the matching loop
    (or switch) boundary; [return]/[throw]/[exit]/[die] edge to the
    scope's exit block, so everything textually after them lands in a
    block with no path from the entry — the substrate every reachability
    client builds on. *)

open Wap_php

(** One straight-line step inside a basic block. *)
type elem =
  | Elem_stmt of Ast.stmt  (** a simple (non-compound) statement *)
  | Elem_cond of Ast.expr
      (** a branch condition (or [switch] subject / [case] label)
          evaluated at the end of the block *)
  | Elem_foreach of Ast.expr * Ast.foreach_binding
      (** [foreach] header: subject evaluation + per-iteration binding *)
  | Elem_catch of Ast.ident  (** binding of a [catch (E $e)] variable *)

type block = {
  bid : int;
  mutable elems : elem list;  (** in execution order *)
  mutable succs : int list;
  mutable preds : int list;
}

type t = {
  blocks : block array;  (** indexed by [bid] *)
  entry : int;
  exit_ : int;
}

let elem_loc = function
  | Elem_stmt s -> s.Ast.sloc
  | Elem_cond e | Elem_foreach (e, _) -> e.Ast.eloc
  | Elem_catch _ -> Loc.dummy

(* ------------------------------------------------------------------ *)
(* Construction.                                                       *)

type builder = { mutable rev_blocks : block list; mutable count : int }

let new_block b =
  let blk = { bid = b.count; elems = []; succs = []; preds = [] } in
  b.rev_blocks <- blk :: b.rev_blocks;
  b.count <- b.count + 1;
  blk

(* elems are accumulated reversed and flipped once at finalization *)
let add_elem blk e = blk.elems <- e :: blk.elems

let add_edge src dst =
  if not (List.mem dst.bid src.succs) then begin
    src.succs <- dst.bid :: src.succs;
    dst.preds <- src.bid :: dst.preds
  end

(* One frame per enclosing loop or switch.  PHP counts switch as a
   break/continue level, and continue inside switch behaves like break,
   so a switch frame carries its own exit as both targets. *)
type frame = { brk : block; cont : block }

let rec nth_frame stack n =
  match (stack, n) with
  | f :: _, 1 -> Some f
  | _ :: rest, n when n > 1 -> nth_frame rest (n - 1)
  | _ -> None

let wrap_expr (e : Ast.expr) : Ast.stmt =
  Ast.mk_s ~loc:e.Ast.eloc (Ast.Expr_stmt e)

let rec build b ~exit_ ~stack cur (stmts : Ast.stmt list) : block =
  List.fold_left (fun cur s -> build_stmt b ~exit_ ~stack cur s) cur stmts

and build_stmt b ~exit_ ~stack cur (s : Ast.stmt) : block =
  match s.Ast.s with
  | Ast.Expr_stmt { e = Ast.Exit _; _ } | Ast.Return _ | Ast.Throw _ ->
      add_elem cur (Elem_stmt s);
      add_edge cur exit_;
      new_block b
  | Ast.Break n ->
      add_elem cur (Elem_stmt s);
      (match nth_frame stack (Option.value n ~default:1) with
      | Some f -> add_edge cur f.brk
      | None -> add_edge cur exit_);
      new_block b
  | Ast.Continue n ->
      add_elem cur (Elem_stmt s);
      (match nth_frame stack (Option.value n ~default:1) with
      | Some f -> add_edge cur f.cont
      | None -> add_edge cur exit_);
      new_block b
  | Ast.If (branches, els) ->
      let join = new_block b in
      let fall =
        List.fold_left
          (fun fall (cond, body) ->
            add_elem fall (Elem_cond cond);
            let then_b = new_block b in
            add_edge fall then_b;
            let then_end = build b ~exit_ ~stack then_b body in
            add_edge then_end join;
            let else_b = new_block b in
            add_edge fall else_b;
            else_b)
          cur branches
      in
      (match els with
      | Some body ->
          let els_end = build b ~exit_ ~stack fall body in
          add_edge els_end join
      | None -> add_edge fall join);
      join
  | Ast.While (cond, body) ->
      let head = new_block b in
      add_edge cur head;
      add_elem head (Elem_cond cond);
      let body_b = new_block b in
      let exit_b = new_block b in
      add_edge head body_b;
      add_edge head exit_b;
      let stack' = { brk = exit_b; cont = head } :: stack in
      let body_end = build b ~exit_ ~stack:stack' body_b body in
      add_edge body_end head;
      exit_b
  | Ast.Do_while (body, cond) ->
      let body_b = new_block b in
      add_edge cur body_b;
      let cond_b = new_block b in
      let exit_b = new_block b in
      let stack' = { brk = exit_b; cont = cond_b } :: stack in
      let body_end = build b ~exit_ ~stack:stack' body_b body in
      add_edge body_end cond_b;
      add_elem cond_b (Elem_cond cond);
      add_edge cond_b body_b;
      add_edge cond_b exit_b;
      exit_b
  | Ast.For (init, conds, steps, body) ->
      List.iter (fun e -> add_elem cur (Elem_stmt (wrap_expr e))) init;
      let head = new_block b in
      add_edge cur head;
      List.iter (fun e -> add_elem head (Elem_cond e)) conds;
      let body_b = new_block b in
      let exit_b = new_block b in
      let step_b = new_block b in
      add_edge head body_b;
      (* `for (;;)` never exits normally; only break leaves it *)
      if conds <> [] then add_edge head exit_b;
      let stack' = { brk = exit_b; cont = step_b } :: stack in
      let body_end = build b ~exit_ ~stack:stack' body_b body in
      add_edge body_end step_b;
      List.iter (fun e -> add_elem step_b (Elem_stmt (wrap_expr e))) steps;
      add_edge step_b head;
      exit_b
  | Ast.Foreach (subject, binding, body) ->
      let head = new_block b in
      add_edge cur head;
      add_elem head (Elem_foreach (subject, binding));
      let body_b = new_block b in
      let exit_b = new_block b in
      add_edge head body_b;
      add_edge head exit_b;
      let stack' = { brk = exit_b; cont = head } :: stack in
      let body_end = build b ~exit_ ~stack:stack' body_b body in
      add_edge body_end head;
      exit_b
  | Ast.Switch (subject, cases) ->
      add_elem cur (Elem_cond subject);
      List.iter
        (function
          | Ast.Case (e, _) -> add_elem cur (Elem_cond e)
          | Ast.Default _ -> ())
        cases;
      let exit_b = new_block b in
      let stack' = { brk = exit_b; cont = exit_b } :: stack in
      let case_blocks = List.map (fun case -> (case, new_block b)) cases in
      List.iter (fun (_, cb) -> add_edge cur cb) case_blocks;
      if
        not
          (List.exists (function Ast.Default _, _ -> true | _ -> false) case_blocks)
      then add_edge cur exit_b;
      let rec chain = function
        | [] -> ()
        | (case, cb) :: rest ->
            let body =
              match case with Ast.Case (_, body) | Ast.Default body -> body
            in
            let case_end = build b ~exit_ ~stack:stack' cb body in
            (match rest with
            | (_, next_cb) :: _ -> add_edge case_end next_cb  (* fallthrough *)
            | [] -> add_edge case_end exit_b);
            chain rest
      in
      chain case_blocks;
      exit_b
  | Ast.Try (body, catches, fin) ->
      let body_b = new_block b in
      add_edge cur body_b;
      let after = new_block b in
      let fin_b = Option.map (fun _ -> new_block b) fin in
      let landing = Option.value fin_b ~default:after in
      let body_end = build b ~exit_ ~stack body_b body in
      add_edge body_end landing;
      List.iter
        (fun (c : Ast.catch) ->
          let catch_b = new_block b in
          (* conservative: an exception may leave the body at any point,
             so the handler is reachable from both ends of it *)
          add_edge body_b catch_b;
          add_edge body_end catch_b;
          (match c.Ast.c_var with
          | Some v -> add_elem catch_b (Elem_catch v)
          | None -> ());
          let catch_end = build b ~exit_ ~stack catch_b c.Ast.c_body in
          add_edge catch_end landing)
        catches;
      (match (fin_b, fin) with
      | Some fb, Some fbody ->
          let fin_end = build b ~exit_ ~stack fb fbody in
          add_edge fin_end after
      | _ -> ());
      after
  | Ast.Block body -> build b ~exit_ ~stack cur body
  | Ast.Expr_stmt _ | Ast.Echo _ | Ast.Global _ | Ast.Static_vars _
  | Ast.Unset _ | Ast.Inline_html _ | Ast.Nop | Ast.Const_def _
  | Ast.Func_def _ | Ast.Class_def _ ->
      (* simple statements; nested function/class bodies are separate
         scopes and contribute no flow here *)
      add_elem cur (Elem_stmt s);
      cur

let of_stmts (stmts : Ast.stmt list) : t =
  let b = { rev_blocks = []; count = 0 } in
  let entry = new_block b in
  let exit_ = new_block b in
  let last = build b ~exit_ ~stack:[] entry stmts in
  add_edge last exit_;
  let blocks =
    Array.make b.count { bid = 0; elems = []; succs = []; preds = [] }
  in
  List.iter
    (fun blk ->
      blk.elems <- List.rev blk.elems;
      blocks.(blk.bid) <- blk)
    b.rev_blocks;
  { blocks; entry = entry.bid; exit_ = exit_.bid }

(* ------------------------------------------------------------------ *)
(* Queries.                                                            *)

let num_blocks cfg = Array.length cfg.blocks
let block cfg i = cfg.blocks.(i)
let succs cfg i = cfg.blocks.(i).succs
let preds cfg i = cfg.blocks.(i).preds

(** Blocks reachable from the entry, by depth-first search. *)
let reachable (cfg : t) : bool array =
  let seen = Array.make (num_blocks cfg) false in
  let rec go i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter go cfg.blocks.(i).succs
    end
  in
  go cfg.entry;
  seen

(** Debug rendering: one line per block with its edges and element
    count. *)
let to_string (cfg : t) : string =
  let buf = Buffer.create 256 in
  Array.iter
    (fun blk ->
      Buffer.add_string buf
        (Printf.sprintf "B%d%s%s: %d elem(s) -> [%s]\n" blk.bid
           (if blk.bid = cfg.entry then " (entry)" else "")
           (if blk.bid = cfg.exit_ then " (exit)" else "")
           (List.length blk.elems)
           (String.concat "," (List.map string_of_int (List.sort compare blk.succs)))))
    cfg.blocks;
  Buffer.contents buf
