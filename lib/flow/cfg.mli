(** Intra-procedural control-flow graphs over the PHP AST.

    A CFG decomposes one scope (the top level of a file, or one function
    body) into basic blocks of straight-line elements connected by
    control edges.  [break]/[continue] jump to the matching loop (or
    switch) boundary; [return]/[throw]/[exit]/[die] edge to the scope's
    exit block, so everything textually after them lands in a block with
    no path from the entry. *)

open Wap_php

(** One straight-line step inside a basic block. *)
type elem =
  | Elem_stmt of Ast.stmt  (** a simple (non-compound) statement *)
  | Elem_cond of Ast.expr
      (** a branch condition (or [switch] subject / [case] label)
          evaluated at the end of the block *)
  | Elem_foreach of Ast.expr * Ast.foreach_binding
      (** [foreach] header: subject evaluation + per-iteration binding *)
  | Elem_catch of Ast.ident  (** binding of a [catch (E $e)] variable *)

type block = {
  bid : int;
  mutable elems : elem list;  (** in execution order *)
  mutable succs : int list;
  mutable preds : int list;
}

type t = {
  blocks : block array;  (** indexed by [bid] *)
  entry : int;
  exit_ : int;
}

val elem_loc : elem -> Loc.t

(** Build the CFG of one scope's statement list.  Nested function and
    class bodies are opaque simple statements — build their CFGs
    separately (see {!Scope.of_program}). *)
val of_stmts : Ast.stmt list -> t

val num_blocks : t -> int
val block : t -> int -> block
val succs : t -> int -> int list
val preds : t -> int -> int list

(** Blocks reachable from the entry, by depth-first search. *)
val reachable : t -> bool array

(** Debug rendering: one line per block with its edges. *)
val to_string : t -> string
