(** Generic forward/backward dataflow over a {!Cfg}.

    A client supplies a join-semilattice and a monotone per-block
    transfer function; the worklist iteration computes the least
    fixpoint.  Reaching definitions ({!Reaching}), liveness ({!Live})
    and reachability ({!Reach}) are the canonical instances; new
    analyses plug in the same way without touching the engine. *)

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Make (L : LATTICE) = struct
  type result = {
    in_facts : L.t array;
        (** fact at each block's input {e in analysis direction}: block
            entry for a forward analysis, block exit for a backward one *)
    out_facts : L.t array;  (** result of the block's transfer function *)
  }

  let solve ~dir (cfg : Cfg.t) ~(init : L.t)
      ~(transfer : Cfg.block -> L.t -> L.t) : result =
    let n = Cfg.num_blocks cfg in
    let in_facts = Array.make n L.bottom in
    let out_facts = Array.make n L.bottom in
    let sources, targets, start =
      match dir with
      | `Forward -> (Cfg.preds cfg, Cfg.succs cfg, cfg.Cfg.entry)
      | `Backward -> (Cfg.succs cfg, Cfg.preds cfg, cfg.Cfg.exit_)
    in
    let queue = Queue.create () in
    let queued = Array.make n false in
    let enqueue i =
      if not queued.(i) then begin
        queued.(i) <- true;
        Queue.add i queue
      end
    in
    for i = 0 to n - 1 do
      enqueue i
    done;
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      queued.(i) <- false;
      let input =
        List.fold_left
          (fun acc p -> L.join acc out_facts.(p))
          (if i = start then init else L.bottom)
          (sources i)
      in
      in_facts.(i) <- input;
      let output = transfer (Cfg.block cfg i) input in
      if not (L.equal output out_facts.(i)) then begin
        out_facts.(i) <- output;
        List.iter enqueue (targets i)
      end
    done;
    { in_facts; out_facts }

  (** [forward cfg ~init ~transfer] : [init] seeds the entry block;
      [in_facts.(b)] is the fact at [b]'s entry. *)
  let forward cfg ~init ~transfer = solve ~dir:`Forward cfg ~init ~transfer

  (** [backward cfg ~init ~transfer] : [init] seeds the exit block;
      [in_facts.(b)] is the fact at [b]'s exit, [out_facts.(b)] the fact
      at its entry. *)
  let backward cfg ~init ~transfer = solve ~dir:`Backward cfg ~init ~transfer
end
