(** Live variables — the backward instance of {!Dataflow}.

    A variable is live at a point when some path from that point reads
    it before overwriting it.  Weak (container-update) definitions keep
    the container alive; only strong definitions and [unset] kill. *)

module VarSet = Set.Make (String)

module L = struct
  type t = VarSet.t

  let bottom = VarSet.empty
  let equal = VarSet.equal
  let join = VarSet.union
end

module Solver = Dataflow.Make (L)

(* live-before = (live-after - strong defs) ∪ uses ∪ weak-def bases *)
let transfer_elem elem live_after =
  let live =
    List.fold_left
      (fun live (d : Use_def.def) ->
        match d.Use_def.d_kind with
        | Use_def.Strong | Use_def.Kill -> VarSet.remove d.Use_def.d_var live
        | Use_def.Weak -> live)
      live_after (Use_def.defs_of_elem elem)
  in
  let live =
    List.fold_left
      (fun live (d : Use_def.def) ->
        match d.Use_def.d_kind with
        | Use_def.Weak -> VarSet.add d.Use_def.d_var live
        | _ -> live)
      live (Use_def.defs_of_elem elem)
  in
  List.fold_left (fun live v -> VarSet.add v live) live (Use_def.uses_of_elem elem)

let transfer (blk : Cfg.block) live_out =
  List.fold_left
    (fun live elem -> transfer_elem elem live)
    live_out
    (List.rev blk.Cfg.elems)

type t = { cfg : Cfg.t; result : Solver.result }

let analyze (cfg : Cfg.t) : t =
  { cfg; result = Solver.backward cfg ~init:VarSet.empty ~transfer }

(** Variables live at the end of block [i]. *)
let live_out t i = t.result.Solver.in_facts.(i)

(** Variables live at the entry of block [i]. *)
let live_in t i = t.result.Solver.out_facts.(i)

(** Walk block [i]'s elements in {e reverse} order; [f] receives the
    live set {e after} each element. *)
let fold_block_rev t i ~init ~f =
  let _, acc =
    List.fold_left
      (fun (live_after, acc) elem ->
        let acc = f acc live_after elem in
        (transfer_elem elem live_after, acc))
      (live_out t i, init)
      (List.rev (Cfg.block t.cfg i).Cfg.elems)
  in
  acc
