(** Reachability — the simplest {!Dataflow} instance, and the dead-code
    oracle the taint analyzer and linter share.

    A block is reachable when some control path from the scope's entry
    arrives at it.  Statements after an unconditional
    [exit]/[die]/[return]/[throw], after a [break]/[continue], in a
    [case] below a terminated one with no fallthrough, or behind an
    [if]/[else] whose branches all terminate, are not. *)

open Wap_php

module L = struct
  type t = bool

  let bottom = false
  let equal = Bool.equal
  let join = ( || )
end

module Solver = Dataflow.Make (L)

(** Per-block reachability as a dataflow fixpoint (equivalent to
    {!Cfg.reachable}, expressed through the framework). *)
let solve (cfg : Cfg.t) : bool array =
  (Solver.forward cfg ~init:true ~transfer:(fun _ fact -> fact)).Solver.in_facts

(* ------------------------------------------------------------------ *)
(* Dead-location sets.                                                 *)

(** A set of source locations proven unreachable, spanning every scope
    of one or more programs. *)
type dead = (string * int * int, unit) Hashtbl.t

let create () : dead = Hashtbl.create 64

let key (l : Loc.t) = (l.Loc.file, l.Loc.line, l.Loc.col)

let add_loc tbl (l : Loc.t) =
  if l.Loc.line > 0 then Hashtbl.replace tbl (key l) ()

let add_expr tbl (e : Ast.expr) =
  Visitor.fold_expr (fun () e1 -> add_loc tbl e1.Ast.eloc) () e

(* Mark a statement and everything inside it dead — except nested
   function/class definitions: PHP hoists unconditional declarations, so
   a function defined after [exit] is still callable and its body keeps
   its own reachability (computed in its own scope). *)
let rec add_stmt tbl (s : Ast.stmt) =
  match s.Ast.s with
  | Ast.Func_def _ | Ast.Class_def _ -> ()
  | _ ->
      add_loc tbl s.Ast.sloc;
      List.iter (add_expr tbl) (Visitor.stmt_exprs s);
      List.iter (add_stmt tbl) (Visitor.sub_stmts s)

let add_elem tbl = function
  | Cfg.Elem_stmt s -> add_stmt tbl s
  | Cfg.Elem_cond e -> add_expr tbl e
  | Cfg.Elem_foreach (subject, binding) ->
      add_expr tbl subject;
      add_expr tbl binding.Ast.fe_value;
      Option.iter (add_expr tbl) binding.Ast.fe_key
  | Cfg.Elem_catch _ -> ()

(** Fold [prog]'s unreachable locations (every scope) into [tbl]. *)
let add_program (tbl : dead) (prog : Ast.program) : unit =
  List.iter
    (fun (scope : Scope.t) ->
      let cfg = Cfg.of_stmts scope.Scope.body in
      let reach = solve cfg in
      Array.iter
        (fun (blk : Cfg.block) ->
          if not reach.(blk.Cfg.bid) then
            List.iter (add_elem tbl) blk.Cfg.elems)
        cfg.Cfg.blocks)
    (Scope.of_program prog)

let of_program (prog : Ast.program) : dead =
  let tbl = create () in
  add_program tbl prog;
  tbl

(** Is this location inside code proven unreachable? *)
let is_dead (tbl : dead) (l : Loc.t) = Hashtbl.mem tbl (key l)
