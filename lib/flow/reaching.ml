(** Reaching definitions — the forward instance of {!Dataflow}.

    A fact is the set of [(variable, definition site)] pairs that may
    reach a program point.  Strong definitions kill earlier definitions
    of the same variable; weak (container-update) definitions
    accumulate; [unset] kills without generating. *)

open Wap_php

module Def = struct
  type t = Ast.ident * Loc.t

  let compare (a, la) (b, lb) =
    match String.compare a b with 0 -> Loc.compare la lb | c -> c
end

module Set = Stdlib.Set.Make (Def)

module L = struct
  type t = Set.t

  let bottom = Set.empty
  let equal = Set.equal
  let join = Set.union
end

module Solver = Dataflow.Make (L)

let apply_def set (d : Use_def.def) =
  match d.Use_def.d_kind with
  | Use_def.Strong ->
      Set.add
        (d.Use_def.d_var, d.Use_def.d_loc)
        (Set.filter (fun (v, _) -> v <> d.Use_def.d_var) set)
  | Use_def.Weak -> Set.add (d.Use_def.d_var, d.Use_def.d_loc) set
  | Use_def.Kill -> Set.filter (fun (v, _) -> v <> d.Use_def.d_var) set

let transfer_elem set elem =
  List.fold_left apply_def set (Use_def.defs_of_elem elem)

let transfer (blk : Cfg.block) set =
  List.fold_left transfer_elem set blk.Cfg.elems

type t = { cfg : Cfg.t; result : Solver.result }

(** Solve over a CFG; [params] (and any other ambient names, e.g. a
    method's implicit bindings) are definitions live at the entry. *)
let analyze ?(params = []) (cfg : Cfg.t) : t =
  let init =
    List.fold_left (fun s v -> Set.add (v, Loc.dummy) s) Set.empty params
  in
  { cfg; result = Solver.forward cfg ~init ~transfer }

(** Definitions reaching the entry of block [i]. *)
let reaching_in t i = t.result.Solver.in_facts.(i)

(** Is any definition of [v] in the set? *)
let defines set v = Set.exists (fun (v', _) -> v' = v) set

(** Walk block [i]'s elements in order; [f] receives the definition set
    {e before} each element. *)
let fold_block t i ~init ~f =
  let _, acc =
    List.fold_left
      (fun (set, acc) elem ->
        let acc = f acc set elem in
        (transfer_elem set elem, acc))
      (reaching_in t i, init)
      (Cfg.block t.cfg i).Cfg.elems
  in
  acc
