(** Splitting a program into its analysis scopes.

    PHP flow is per scope: the top level of a file and each function or
    method body have independent control flow and variable tables.  All
    flow analyses iterate the scopes this module extracts. *)

open Wap_php

type t = {
  name : string option;  (** [None] for the file's top level *)
  params : string list;
  body : Ast.stmt list;
  loc : Loc.t;
}

let of_func (f : Ast.func) : t =
  {
    name = Some f.Ast.f_name;
    params = List.map (fun (p : Ast.param) -> p.Ast.p_name) f.Ast.f_params;
    body = f.Ast.f_body;
    loc = f.Ast.f_loc;
  }

(** The top-level scope followed by every function and method body
    (including nested definitions). *)
let of_program (prog : Ast.program) : t list =
  { name = None; params = []; body = prog; loc = Loc.dummy }
  :: List.map of_func (Visitor.collect_functions prog)
