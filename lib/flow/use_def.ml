(** Per-element variable uses and definitions, the vocabulary shared by
    the dataflow instances.

    The extraction is scope-local: closure bodies are never entered
    (they are separate scopes), but the variables captured by a
    closure's [use (...)] clause count as uses in the enclosing scope.
    [isset]/[empty] existence checks are not uses — probing an undefined
    variable is exactly what they are for. *)

open Wap_php

(** How a definition affects earlier definitions of the same variable. *)
type def_kind =
  | Strong  (** the whole variable is overwritten: [$x = e] *)
  | Weak
      (** part of a container is updated ([$a[i] = e], [$o->p = e]):
          earlier definitions survive *)
  | Kill  (** [unset($x)]: the variable stops existing *)

type def = { d_var : Ast.ident; d_loc : Loc.t; d_kind : def_kind }

let is_pseudo_var v = Ast.is_superglobal v || v = "this"

(* ------------------------------------------------------------------ *)
(* Uses.                                                               *)

let rec uses_acc acc (e : Ast.expr) : Ast.ident list =
  Visitor.fold_expr_prune
    (fun acc (e : Ast.expr) ->
      match e.Ast.e with
      | Ast.Var v -> ((if is_pseudo_var v then acc else v :: acc), false)
      | Ast.Closure c ->
          (* capture list reads the enclosing scope; the body does not *)
          (List.fold_left (fun acc (_, v) -> v :: acc) acc c.Ast.cl_uses, false)
      | Ast.Isset _ | Ast.Empty _ -> (acc, false)
      | Ast.Assign (Ast.A_eq, lhs, rhs) ->
          let acc = uses_acc acc rhs in
          (lhs_uses acc lhs, false)
      | Ast.Assign_ref (lhs, rhs) ->
          let acc = uses_acc acc rhs in
          (lhs_uses acc lhs, false)
      | _ -> (acc, true))
    acc e

(* In a plain write the target variable itself is not read, but index
   expressions are, and PHP auto-vivifies array bases, so `$a[$i] = e`
   uses $i and not $a. *)
and lhs_uses acc (l : Ast.expr) : Ast.ident list =
  match l.Ast.e with
  | Ast.Var _ -> acc
  | Ast.Index (base, idx) ->
      let acc = match idx with Some i -> uses_acc acc i | None -> acc in
      (match base.Ast.e with
      | Ast.Var _ -> acc  (* vivified, not read *)
      | _ -> lhs_uses acc base)
  | Ast.List es ->
      List.fold_left
        (fun acc -> function Some e -> lhs_uses acc e | None -> acc)
        acc es
  | Ast.Prop (base, m) ->
      (* writing a property does read the object *)
      let acc = uses_acc acc base in
      (match m with Ast.Mem_expr me -> uses_acc acc me | Ast.Mem_ident _ -> acc)
  | _ -> uses_acc acc l

let uses_of_expr e = List.sort_uniq String.compare (uses_acc [] e)

(* ------------------------------------------------------------------ *)
(* Definitions.                                                        *)

let rec lvalue_defs acc ~loc ~kind (l : Ast.expr) =
  match l.Ast.e with
  | Ast.Var v ->
      if is_pseudo_var v then acc
      else { d_var = v; d_loc = loc; d_kind = kind } :: acc
  | Ast.Index (base, _) | Ast.Prop (base, _) -> (
      match Ast.base_variable base with
      | Some v when not (is_pseudo_var v) ->
          { d_var = v; d_loc = loc; d_kind = Weak } :: acc
      | _ -> acc)
  | Ast.List es ->
      List.fold_left
        (fun acc -> function
          | Some e -> lvalue_defs acc ~loc ~kind e
          | None -> acc)
        acc es
  | _ -> acc

let defs_of_expr (e : Ast.expr) : def list =
  List.rev
    (Visitor.fold_expr_prune
       (fun acc (e : Ast.expr) ->
         match e.Ast.e with
         | Ast.Closure _ -> (acc, false)
         | Ast.Assign (_, lhs, _) ->
             (* compound assignments read then overwrite: still strong *)
             (lvalue_defs acc ~loc:e.Ast.eloc ~kind:Strong lhs, true)
         | Ast.Assign_ref (lhs, _) ->
             (lvalue_defs acc ~loc:e.Ast.eloc ~kind:Strong lhs, true)
         | Ast.Incdec (_, { e = Ast.Var v; _ }) when not (is_pseudo_var v) ->
             ({ d_var = v; d_loc = e.Ast.eloc; d_kind = Strong } :: acc, true)
         | _ -> (acc, true))
       [] e)

(* ------------------------------------------------------------------ *)
(* Per-element view.                                                   *)

let uses_of_elem (elem : Cfg.elem) : Ast.ident list =
  match elem with
  | Cfg.Elem_stmt s ->
      List.sort_uniq String.compare
        (List.fold_left uses_acc [] (Visitor.stmt_exprs s))
  | Cfg.Elem_cond e -> uses_of_expr e
  | Cfg.Elem_foreach (subject, _) -> uses_of_expr subject
  | Cfg.Elem_catch _ -> []

let defs_of_elem (elem : Cfg.elem) : def list =
  match elem with
  | Cfg.Elem_stmt s -> (
      match s.Ast.s with
      | Ast.Global vs ->
          List.map
            (fun v -> { d_var = v; d_loc = s.Ast.sloc; d_kind = Strong })
            vs
      | Ast.Static_vars vs ->
          List.concat_map
            (fun (v, init) ->
              { d_var = v; d_loc = s.Ast.sloc; d_kind = Strong }
              :: (match init with Some e -> defs_of_expr e | None -> []))
            vs
      | Ast.Unset es ->
          List.filter_map
            (fun (e : Ast.expr) ->
              match e.Ast.e with
              | Ast.Var v when not (is_pseudo_var v) ->
                  Some { d_var = v; d_loc = s.Ast.sloc; d_kind = Kill }
              | _ -> None)
            es
      | _ -> List.concat_map defs_of_expr (Visitor.stmt_exprs s))
  | Cfg.Elem_cond e -> defs_of_expr e
  | Cfg.Elem_foreach (subject, binding) ->
      let loc = subject.Ast.eloc in
      let acc = lvalue_defs [] ~loc ~kind:Strong binding.Ast.fe_value in
      let acc =
        match binding.Ast.fe_key with
        | Some k -> lvalue_defs acc ~loc ~kind:Strong k
        | None -> acc
      in
      defs_of_expr subject @ List.rev acc
  | Cfg.Elem_catch v -> [ { d_var = v; d_loc = Loc.dummy; d_kind = Strong } ]
