(** Per-element variable uses and definitions, the vocabulary shared by
    the dataflow instances.

    The extraction is scope-local: closure bodies are never entered
    (they are separate scopes), but the variables captured by a
    closure's [use (...)] clause count as uses in the enclosing scope.
    [isset]/[empty] existence checks are not uses. *)

open Wap_php

(** How a definition affects earlier definitions of the same variable. *)
type def_kind =
  | Strong  (** the whole variable is overwritten: [$x = e] *)
  | Weak
      (** part of a container is updated ([$a[i] = e], [$o->p = e]):
          earlier definitions survive *)
  | Kill  (** [unset($x)]: the variable stops existing *)

type def = { d_var : Ast.ident; d_loc : Loc.t; d_kind : def_kind }

(** Variables read by an expression, sorted and de-duplicated.
    Superglobals and [$this] are excluded. *)
val uses_of_expr : Ast.expr -> Ast.ident list

(** Definitions made by an expression (assignments, [++]/[--],
    reference bindings), in evaluation order. *)
val defs_of_expr : Ast.expr -> def list

val uses_of_elem : Cfg.elem -> Ast.ident list
val defs_of_elem : Cfg.elem -> def list
