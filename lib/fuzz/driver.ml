(* The fuzz loop: generate, check, shrink, persist.

   Determinism contract: one (seed, iteration) pair always regenerates
   the same case — the per-iteration generator is derived from both —
   so a failure report names everything needed to reproduce it without
   the seed file. *)

type config = {
  seed : int;
  iterations : int;
  max_stmts : int;  (** top-level statement bound per generated program *)
  oracles : Oracle.t list;
  out_seed_dir : string option;
      (** where shrunk reproducers are written; [None] disables *)
  max_failures : int;  (** stop fuzzing after this many violations *)
  shrink_budget : int;  (** oracle evaluations allowed per shrink *)
}

let default_config =
  {
    seed = 2016;
    iterations = 500;
    max_stmts = 10;
    oracles = Oracle.all;
    out_seed_dir = None;
    max_failures = 5;
    shrink_budget = 400;
  }

type failure = {
  fl_oracle : string;
  fl_iteration : int;  (** -1 for replayed seed files *)
  fl_message : string;
  fl_source : string;  (** shrunk reproducer *)
  fl_seed_file : string option;
}

type report = { cases : int; failures : failure list }

let case_rng seed i = Rng.create ~seed:(seed + (i * 1_000_003))

(* Build one case from its (seed, iteration) coordinates: a generated
   program, printed; one in four also gets raw "spice" fragments the
   AST cannot express and drops the AST (totality-style oracles only
   can judge it). *)
let case_at ~seed ~max_stmts i : Oracle.case =
  let rng = case_rng seed i in
  let ast = Gen.program ~max_stmts rng in
  let printed = Wap_php.Printer.program_to_string ast in
  if Rng.chance rng 1 4 then
    { Oracle.source = Gen.spice rng printed; gen_ast = None }
  else { Oracle.source = printed; gen_ast = Some ast }

let default_ctx () =
  { Oracle.tool = lazy (Wap_core.Tool.create ~seed:2016 Wap_core.Version.Wape) }

let ctx_of_tool = function
  | Some tool -> { Oracle.tool = lazy tool }
  | None -> default_ctx ()

let fails_on (oracle : Oracle.t) ctx case =
  match oracle.check ctx case with
  | Oracle.Fail _ -> true
  | Oracle.Pass -> false
  | exception _ -> true
      (* an oracle blowing up on a shrunk variant still reproduces *)

let shrink_case ~budget (oracle : Oracle.t) ctx (case : Oracle.case) : string =
  match case.gen_ast with
  | Some ast ->
      let fails p =
        fails_on oracle ctx
          {
            Oracle.source = Wap_php.Printer.program_to_string p;
            gen_ast = Some p;
          }
      in
      Wap_php.Printer.program_to_string (Shrink.program ~budget ~fails ast)
  | None ->
      let fails s = fails_on oracle ctx (Oracle.case_of_source s) in
      Shrink.source ~budget ~fails case.source

let write_seed dir name source =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir name in
  let oc = open_out_bin path in
  output_string oc source;
  close_out oc;
  path

let run ?tool ?(on_progress = fun _ _ -> ()) (config : config) : report =
  let ctx = ctx_of_tool tool in
  let failures = ref [] in
  let i = ref 0 in
  while !i < config.iterations && List.length !failures < config.max_failures do
    let case = case_at ~seed:config.seed ~max_stmts:config.max_stmts !i in
    List.iter
      (fun (oracle : Oracle.t) ->
        let verdict =
          try oracle.check ctx case
          with exn ->
            Oracle.Fail
              (Printf.sprintf "oracle raised %s" (Printexc.to_string exn))
        in
        match verdict with
        | Oracle.Pass -> ()
        | Oracle.Fail msg ->
            let shrunk =
              shrink_case ~budget:config.shrink_budget oracle ctx case
            in
            let seed_file =
              Option.map
                (fun dir ->
                  write_seed dir
                    (Printf.sprintf "%s-seed%d-i%d.php" oracle.name config.seed
                       !i)
                    shrunk)
                config.out_seed_dir
            in
            failures :=
              {
                fl_oracle = oracle.name;
                fl_iteration = !i;
                fl_message = msg;
                fl_source = shrunk;
                fl_seed_file = seed_file;
              }
              :: !failures)
      config.oracles;
    incr i;
    on_progress !i config.iterations
  done;
  { cases = !i; failures = List.rev !failures }

(* Replay checked-in regression seeds: every .php file in [dir] must
   pass every requested oracle.  No shrinking — seeds are already
   minimal. *)
let replay ?tool ?(oracles = Oracle.all) dir : report =
  let ctx = ctx_of_tool tool in
  let files =
    if Sys.file_exists dir && Sys.is_directory dir then
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".php")
      |> List.sort String.compare
    else []
  in
  let failures = ref [] in
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      let source = Wap_php.Io.read_file path in
      let case = Oracle.case_of_source source in
      List.iter
        (fun (oracle : Oracle.t) ->
          let verdict =
            try oracle.check ctx case
            with exn ->
              Oracle.Fail
                (Printf.sprintf "oracle raised %s" (Printexc.to_string exn))
          in
          match verdict with
          | Oracle.Pass -> ()
          | Oracle.Fail msg ->
              failures :=
                {
                  fl_oracle = oracle.name;
                  fl_iteration = -1;
                  fl_message = msg;
                  fl_source = source;
                  fl_seed_file = Some path;
                }
                :: !failures)
        oracles)
    files;
  { cases = List.length files; failures = List.rev !failures }
