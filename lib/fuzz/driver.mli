(** The fuzz loop: generate, check every oracle, shrink failures, and
    persist reproducers.

    Fully deterministic: one [(seed, iteration)] pair regenerates the
    same case on every platform, so a failure report alone suffices to
    reproduce a bug. *)

type config = {
  seed : int;
  iterations : int;
  max_stmts : int;  (** top-level statement bound per generated program *)
  oracles : Oracle.t list;
  out_seed_dir : string option;
      (** directory for shrunk reproducers; [None] disables writing *)
  max_failures : int;  (** stop fuzzing after this many violations *)
  shrink_budget : int;  (** oracle evaluations allowed per shrink *)
}

(** seed 2016, 500 iterations, all oracles, no seed dir. *)
val default_config : config

type failure = {
  fl_oracle : string;
  fl_iteration : int;  (** [-1] for replayed seed files *)
  fl_message : string;
  fl_source : string;  (** shrunk reproducer *)
  fl_seed_file : string option;  (** where it was written, if anywhere *)
}

type report = { cases : int; failures : failure list }

(** The case generated at [(seed, iteration)] — exposed so a failure can
    be regenerated without its seed file. *)
val case_at : seed:int -> max_stmts:int -> int -> Oracle.case

(** Run the fuzz loop.  [tool] defaults to a fresh
    [Wap_core.Tool.create ~seed:2016 Wape]; pass one to share the
    (expensive) predictor training across runs.  [on_progress] is
    called after each case with [(done, total)]. *)
val run : ?tool:Wap_core.Tool.t -> ?on_progress:(int -> int -> unit) -> config -> report

(** Replay every [.php] file under [dir] (sorted) against [oracles]
    (default: all).  Used by the test suite on [test/fuzz_seeds/] so
    each shrunk reproducer pins its bug forever. *)
val replay : ?tool:Wap_core.Tool.t -> ?oracles:Oracle.t list -> string -> report
