(* Grammar-driven random PHP programs.

   Two constraints shape everything here.  First, the output is weighted
   toward what WAP's pipeline actually exercises: superglobal reads,
   sensitive sinks, sanitizer wraps, string interpolation — a uniformly
   random AST almost never builds a tainted flow.  Second, generated
   ASTs must be *canonical*: the printer/parser fixpoint oracle demands
   [parse (print ast) = ast] modulo locations, so the generator only
   emits shapes the parser normalizes to themselves (e.g. non-negative
   integer literals, since [-5] parses as [Unop (Neg, Int 5)];
   interpolation parts that alternate and start with [$], since the
   printed [{e}] only re-lexes as an expression part when [e] does). *)

open Wap_php
open Ast

type t = { rng : Rng.t; mutable vars : string list }

let create rng = { rng; vars = [] }

(* ------------------------------------------------------------------ *)
(* Pools.                                                              *)

let superglobal_pool = [ "_GET"; "_POST"; "_COOKIE"; "_REQUEST" ]

let key_pool =
  [ "id"; "name"; "q"; "page"; "user"; "file"; "cmd"; "x"; "emo\xf0\x9f\x98\x80ji" ]

(* Deliberately nasty: quotes, backslashes, braces, backticks, dollar
   signs, control characters, astral UTF-8.  The printer must escape all
   of these correctly in whichever quoting style it picks. *)
let string_pool =
  [ "a"; "hello"; " "; "x'y"; "a\\b"; "nl\nend"; "tab\tend"; "do$lar";
    "cur{ly}"; "ba`ck"; "qu\"ote"; "emo\xf0\x9f\x98\x80ji"; "acc\xc3\xa9nt";
    "%s"; "SELECT * FROM t WHERE id = "; "0"; "{$not_interp}"; "\\" ]

let float_pool = [ 0.0; 0.5; 1.25; 3.14; 10.0; 0.1; 1e10; 1.5e-3; 0.30000000000000004 ]

let constant_pool = [ "true"; "false"; "null"; "PHP_EOL" ]

let benign_fns =
  [ "strlen"; "substr"; "trim"; "strtolower"; "strtoupper"; "implode";
    "sprintf"; "md5"; "count"; "intval"; "str_replace"; "is_numeric" ]

let sanitizer_pool =
  [ "htmlspecialchars"; "htmlentities"; "mysql_real_escape_string";
    "addslashes"; "escapeshellarg"; "basename"; "strip_tags" ]

let source_fn_pool = [ "mysql_fetch_assoc"; "mysqli_fetch_array"; "file_get_contents" ]

let prop_pool = [ "name"; "value"; "row"; "data" ]

(* ------------------------------------------------------------------ *)
(* Variables.                                                          *)

let fresh t =
  let v = Printf.sprintf "v%d" (List.length t.vars) in
  t.vars <- v :: t.vars;
  v

let any_var t = if t.vars = [] || Rng.chance t.rng 1 4 then fresh t else Rng.pick t.rng t.vars

(* ------------------------------------------------------------------ *)
(* Expressions.                                                        *)

let superglobal_read t =
  mk_e
    (Index
       ( var (Rng.pick t.rng superglobal_pool),
         Some (str (Rng.pick t.rng key_pool)) ))

(* Expressions allowed inside [{...}] interpolation: must start with [$]
   so the printed [{$...}] re-lexes as a complex part. *)
let interp_expr t =
  match Rng.int t.rng 4 with
  | 0 -> var (any_var t)
  | 1 -> mk_e (Index (var (any_var t), Some (str (Rng.pick t.rng key_pool))))
  | 2 -> mk_e (Index (var (any_var t), Some (int_ (Rng.int t.rng 100))))
  | _ -> mk_e (Prop (var (any_var t), Mem_ident (Rng.pick t.rng prop_pool)))

(* Alternating parts, at least one expression, no empty string part:
   anything else is normalized away by the lexer. *)
let interp_parts t =
  let n = Rng.range t.rng 1 3 in
  let parts = ref [] in
  for _ = 1 to n do
    if Rng.chance t.rng 2 3 then
      parts := Ip_str (Rng.pick t.rng string_pool) :: !parts;
    parts := Ip_expr (interp_expr t) :: !parts
  done;
  if Rng.chance t.rng 1 2 then
    parts := Ip_str (Rng.pick t.rng string_pool) :: !parts;
  List.rev !parts

let atom t =
  match Rng.weighted t.rng [ (3, `Int); (2, `Str); (1, `Float); (3, `Var); (1, `Const); (2, `Sg) ] with
  | `Int -> int_ (Rng.int t.rng 1000)
  | `Str -> str (Rng.pick t.rng string_pool)
  | `Float -> mk_e (Float (Rng.pick t.rng float_pool))
  | `Var -> var (any_var t)
  | `Const -> mk_e (Constant (Rng.pick t.rng constant_pool))
  | `Sg -> superglobal_read t

let rec expr t depth =
  if depth <= 0 then atom t
  else
    match
      Rng.weighted t.rng
        [ (6, `Atom); (4, `Binop); (3, `Interp); (3, `Call); (2, `Index);
          (1, `Ternary); (1, `Unop); (1, `Cast); (1, `Array); (1, `Prop);
          (1, `Isset); (1, `Backtick) ]
    with
    | `Atom -> atom t
    | `Binop ->
        let op =
          Rng.weighted t.rng
            [ (5, Concat); (2, Plus); (1, Minus); (1, Mul); (1, Eq_eq);
              (1, Lt); (1, Bool_and); (1, Coalesce) ]
        in
        mk_e (Binop (op, expr t (depth - 1), expr t (depth - 1)))
    | `Interp -> mk_e (Interp (interp_parts t))
    | `Call -> call (Rng.pick t.rng benign_fns) [ expr t (depth - 1) ]
    | `Index -> mk_e (Index (var (any_var t), Some (expr t (depth - 1))))
    | `Ternary ->
        let c = expr t (depth - 1) in
        if Rng.chance t.rng 1 4 then mk_e (Ternary (c, None, expr t (depth - 1)))
        else mk_e (Ternary (c, Some (expr t (depth - 1)), expr t (depth - 1)))
    | `Unop -> mk_e (Unop (Rng.pick t.rng [ Neg; Not ], expr t (depth - 1)))
    | `Cast -> mk_e (Cast (Rng.pick t.rng [ C_int; C_string ], expr t (depth - 1)))
    | `Array ->
        let n = Rng.range t.rng 0 3 in
        let item _ =
          let key =
            if Rng.chance t.rng 1 2 then None
            else if Rng.bool t.rng then Some (str (Rng.pick t.rng key_pool))
            else Some (int_ (Rng.int t.rng 10))
          in
          { ai_key = key; ai_value = expr t (depth - 1); ai_by_ref = false }
        in
        mk_e (Array_lit (List.init n item))
    | `Prop -> mk_e (Prop (var (any_var t), Mem_ident (Rng.pick t.rng prop_pool)))
    | `Isset -> mk_e (Isset [ var (any_var t) ])
    | `Backtick -> mk_e (Backtick (interp_parts t))

(* A possibly-tainted expression: a source, sometimes propagated through
   concatenation / interpolation / a function, sometimes sanitized. *)
let tainted_expr t =
  let base =
    if Rng.chance t.rng 3 4 then superglobal_read t
    else call (Rng.pick t.rng source_fn_pool) [ var (any_var t) ]
  in
  let e =
    match Rng.int t.rng 4 with
    | 0 -> base
    | 1 -> mk_e (Binop (Concat, str (Rng.pick t.rng string_pool), base))
    | 2 -> call (Rng.pick t.rng benign_fns) [ base ]
    | _ -> base
  in
  if Rng.chance t.rng 1 4 then call (Rng.pick t.rng sanitizer_pool) [ e ] else e

(* ------------------------------------------------------------------ *)
(* Statements.                                                         *)

let assign_lvalue t =
  match Rng.int t.rng 5 with
  | 0 | 1 -> var (fresh t)
  | 2 -> var (any_var t)
  | 3 -> mk_e (Index (var (any_var t), Some (str (Rng.pick t.rng key_pool))))
  | _ -> mk_e (Index (var (any_var t), None))

let sink_stmt t arg =
  match
    Rng.weighted t.rng
      [ (3, `Mysql); (1, `Mysqli); (2, `Exec); (1, `System); (3, `Echo);
        (1, `Print); (1, `Include); (1, `Fopen); (1, `Header); (1, `Wpdb);
        (1, `Readfile) ]
  with
  | `Mysql -> mk_s (Expr_stmt (call "mysql_query" [ arg ]))
  | `Mysqli -> mk_s (Expr_stmt (call "mysqli_query" [ var "conn"; arg ]))
  | `Exec -> mk_s (Expr_stmt (call "exec" [ arg ]))
  | `System -> mk_s (Expr_stmt (call "system" [ arg ]))
  | `Echo ->
      if Rng.chance t.rng 1 3 then mk_s (Echo [ str (Rng.pick t.rng string_pool); arg ])
      else mk_s (Echo [ arg ])
  | `Print -> mk_s (Expr_stmt (mk_e (Print arg)))
  | `Include -> mk_s (Expr_stmt (mk_e (Include (Inc, arg))))
  | `Fopen -> mk_s (Expr_stmt (call "fopen" [ arg; str "r" ]))
  | `Header -> mk_s (Expr_stmt (call "header" [ arg ]))
  | `Wpdb ->
      mk_s
        (Expr_stmt
           (mk_e (Call (F_method (var "wpdb", Mem_ident "query"),
                        [ { a_expr = arg; a_spread = false } ]))))
  | `Readfile -> mk_s (Expr_stmt (call "readfile" [ arg ]))

(* The shape the detectors exist for: source, optional propagation,
   sink.  Emitted with high probability so most programs contain at
   least one candidate flow. *)
let taint_chain t =
  let v = fresh t in
  let s1 = mk_s (Expr_stmt (mk_e (Assign (A_eq, var v, tainted_expr t)))) in
  let prop =
    match Rng.int t.rng 4 with
    | 0 ->
        let w = fresh t in
        [ mk_s
            (Expr_stmt
               (mk_e
                  (Assign
                     ( A_eq,
                       var w,
                       mk_e
                         (Interp
                            [ Ip_str (Rng.pick t.rng string_pool); Ip_expr (var v) ]) )))) ]
    | 1 ->
        [ mk_s
            (Expr_stmt
               (mk_e (Assign (A_concat, var v, str (Rng.pick t.rng string_pool))))) ]
    | 2 ->
        let w = fresh t in
        [ mk_s (Expr_stmt (mk_e (Assign (A_eq, var w, mk_e (Binop (Concat, str "q=", var v)))))) ]
    | _ -> []
  in
  let sink_var = match t.vars with v' :: _ -> v' | [] -> v in
  [ s1 ] @ prop @ [ sink_stmt t (var sink_var) ]

let rec stmt t depth =
  match
    Rng.weighted t.rng
      [ (6, `Assign); (3, `SinkCall); (2, `Echo); (2, `If); (1, `While);
        (1, `Foreach); (1, `ExprOnly); (1, `Global); (1, `Unset);
        (1, `Return); (1, `Block) ]
  with
  | `Assign ->
      let op = Rng.weighted t.rng [ (5, A_eq); (2, A_concat); (1, A_plus) ] in
      mk_s (Expr_stmt (mk_e (Assign (op, assign_lvalue t, expr t depth))))
  | `SinkCall -> sink_stmt t (expr t depth)
  | `Echo -> mk_s (Echo [ expr t depth ])
  | `If ->
      let cond = expr t (depth - 1) in
      let body = stmts t (depth - 1) (Rng.range t.rng 1 2) in
      let els =
        if Rng.chance t.rng 1 3 then Some (stmts t (depth - 1) 1) else None
      in
      mk_s (If ([ (cond, body) ], els))
  | `While -> mk_s (While (expr t (depth - 1), stmts t (depth - 1) (Rng.range t.rng 1 2)))
  | `Foreach ->
      let key =
        if Rng.chance t.rng 1 3 then Some (var (fresh t)) else None
      in
      mk_s
        (Foreach
           ( var (any_var t),
             { fe_key = key; fe_by_ref = false; fe_value = var (fresh t) },
             stmts t (depth - 1) (Rng.range t.rng 1 2) ))
  | `ExprOnly -> mk_s (Expr_stmt (expr t depth))
  | `Global -> mk_s (Global [ any_var t ])
  | `Unset -> mk_s (Unset [ var (any_var t) ])
  | `Return ->
      if Rng.bool t.rng then mk_s (Return (Some (expr t (depth - 1))))
      else mk_s (Return None)
  | `Block -> mk_s (Block (stmts t (depth - 1) (Rng.range t.rng 1 2)))

and stmts t depth n = List.init n (fun _ -> stmt t (max 0 depth))

let func_def t =
  let name = Printf.sprintf "fn%d" (Rng.int t.rng 1000) in
  let outer = t.vars in
  let params =
    List.init (Rng.range t.rng 0 2) (fun i ->
        let p = Printf.sprintf "p%d" i in
        t.vars <- p :: t.vars;
        { p_name = p; p_default = None; p_by_ref = false; p_hint = None; p_variadic = false })
  in
  let body =
    let body_stmts = stmts t 1 (Rng.range t.rng 1 3) in
    (* sometimes a param flows straight into a sink: the interprocedural
       summary path *)
    match params with
    | p :: _ when Rng.chance t.rng 1 2 -> sink_stmt t (var p.p_name) :: body_stmts
    | _ -> body_stmts
  in
  t.vars <- outer;
  mk_s (Func_def { f_name = name; f_params = params; f_body = body; f_by_ref = false; f_loc = Loc.dummy })

(* ------------------------------------------------------------------ *)
(* Whole programs.                                                     *)

let program ?(max_stmts = 10) rng : program =
  let t = create rng in
  let funcs = List.init (Rng.int t.rng 2) (fun _ -> func_def t) in
  let n = Rng.range t.rng 1 (max 1 max_stmts) in
  let body = stmts t 2 n in
  let body =
    if Rng.chance t.rng 2 3 then
      let chain = taint_chain t in
      let cut = Rng.int t.rng (List.length body + 1) in
      List.filteri (fun i _ -> i < cut) body
      @ chain
      @ List.filteri (fun i _ -> i >= cut) body
    else body
  in
  funcs @ body

(* ------------------------------------------------------------------ *)
(* Spice: raw source fragments the AST cannot express (heredocs,
   overflowing literals, comments, binary literals), appended to a
   printed program.  Cases carrying spice only run the totality-style
   oracles — the fragments are exactly the ones designed to stress the
   lexer's literal handling. *)

let spice_pool =
  [ "$fz = 0xFFFFFFFFFFFFFFFF;";
    "$fz = 9223372036854775808;";
    "$fz = 0x10000000000000000;";
    "$fz = \"$a[99999999999999999999]\";";
    "$fz = \"$a[18446744073709551616] tail\";";
    "$fz = 1e309;";
    "$fz = 077777777777777777777777777;";
    "$fz = <<<EOT\nrow $a[12345678901234567890] end\nEOT;";
    "$fz = `id \\`sub\\` $x`;";
    "$fz = '\xf0\x9f\x98\x80';";
    "$fz = \"\\x41\\101 $v\";";
    "// line comment\n$fz = 1;";
    "/* block */ $fz = 2;";
    "$fz = 0b11;";
    "$fz = \"{$a[0xFF]}\";";
    "$fz = .5;" ]

let spice rng source =
  let n = Rng.range rng 1 3 in
  let extras = List.init n (fun _ -> Rng.pick rng spice_pool) in
  source ^ "\n" ^ String.concat "\n" extras ^ "\n"
