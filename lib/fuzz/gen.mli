(** Seeded random PHP program generator.

    Grammar-driven over {!Wap_php.Ast}, weighted toward the shapes WAP's
    pipeline cares about: superglobal reads, sensitive sinks, sanitizer
    wraps, interpolated strings and concatenation chains.  Generated
    ASTs are {e canonical} — the parser maps their printed form back to
    the same tree modulo locations — which is what lets the
    printer/parser fixpoint oracle compare ASTs structurally. *)

(** Generate a program; same [Rng] state, same program.  [max_stmts]
    bounds the top-level statement count (default 10). *)
val program : ?max_stmts:int -> Rng.t -> Wap_php.Ast.program

(** Append 1–3 raw source fragments that the AST cannot express —
    heredocs, overflowing integer literals, comments, binary literals —
    to a printed program.  Spiced sources are only checked against the
    totality-style oracles. *)
val spice : Rng.t -> string -> string

(** The raw fragment pool used by {!spice}, exposed for tests. *)
val spice_pool : string list
