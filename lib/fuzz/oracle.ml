(* The differential oracles.

   Each oracle is a predicate over one fuzz case that must hold for
   *every* input: not "the scan finds the planted bug" but "the pipeline
   never lies, crashes, or contradicts itself".  Violations are real
   bugs by construction, which is what makes the harness useful as a
   regression net — every shrunk failing input checked into
   [test/fuzz_seeds/] pins one. *)

open Wap_php

type case = {
  source : string;
  gen_ast : Ast.program option;
      (** the generated AST, when the source was printed from one;
          [None] for spiced/replayed raw sources *)
}

let case_of_source source = { source; gen_ast = None }

type verdict = Pass | Fail of string

type ctx = { tool : Wap_core.Tool.t Lazy.t }

type t = { name : string; describe : string; check : ctx -> case -> verdict }

let failf fmt = Printf.ksprintf (fun m -> Fail m) fmt

let file = "fuzz.php"

(* ------------------------------------------------------------------ *)
(* 1. Lexer totality: no exception but [Lexer.Error], token positions
   inside the source. *)

let check_spans src toks =
  let lines = String.split_on_char '\n' src in
  let nlines = List.length lines in
  let line_len i = try String.length (List.nth lines (i - 1)) with _ -> 0 in
  let bad =
    List.find_opt
      (fun ((_ : Token.t), (loc : Loc.t)) ->
        loc.line < 1 || loc.line > nlines + 1 || loc.col < 0
        || loc.col > line_len loc.line + 1)
      toks
  in
  match bad with
  | Some (tok, loc) ->
      failf "token %s has out-of-bounds location %s (source has %d lines)"
        (Token.show tok) (Loc.to_string loc) nlines
  | None -> Pass

let lexer_totality _ctx case =
  match Lexer.tokenize ~file case.source with
  | exception Lexer.Error _ -> Pass (* rejecting bad input is fine *)
  | exception exn ->
      failf "lexer raised %s instead of Lexer.Error" (Printexc.to_string exn)
  | toks -> (
      match check_spans case.source toks with
      | Fail _ as f -> f
      | Pass -> (
          (* the tolerant parser is the scan engine's entry point: it
             must recover, not die, on anything lexable *)
          match Parser.parse_string_tolerant ~file case.source with
          | exception Lexer.Error _ -> Pass
          | exception exn ->
              failf "tolerant parser raised %s" (Printexc.to_string exn)
          | (_ : Ast.program * Parser.recovered_error list) -> Pass))

(* ------------------------------------------------------------------ *)
(* 2. Printer/parser fixpoint: reparsing printed output yields the same
   AST modulo locations (and printing is idempotent). *)

let reparse_equal printed reference =
  match Parser.parse_string ~file printed with
  | exception Lexer.Error (m, loc) ->
      failf "printed source does not lex: %s at %s" m (Loc.to_string loc)
  | exception Parser.Error (m, loc) ->
      failf "printed source does not parse: %s at %s" m (Loc.to_string loc)
  | reparsed ->
      if not (Strip.equal reference reparsed) then
        Fail "reparsing the printed program changed the AST"
      else
        let printed2 = Printer.program_to_string reparsed in
        if String.equal printed printed2 then Pass
        else Fail "printing is not idempotent over a parse round-trip"

let printer_fixpoint _ctx case =
  match case.gen_ast with
  | Some ast -> reparse_equal (Printer.program_to_string ast) ast
  | None -> (
      match Parser.parse_string ~file case.source with
      | exception (Lexer.Error _ | Parser.Error _) -> Pass (* not applicable *)
      | p1 -> reparse_equal (Printer.program_to_string p1) p1)

(* ------------------------------------------------------------------ *)
(* 3. Scan determinism: the exported JSON is byte-identical across
   worker counts and across cold/warm cache, well-formed, and stable
   under the ASCII-escaping serializer. *)

let zero_timings (r : Wap_core.Tool.package_result) =
  {
    r with
    Wap_core.Tool.analysis_seconds = 0.0;
    analysis_cpu_seconds = 0.0;
    phase_seconds = List.map (fun (k, _) -> (k, 0.0)) r.phase_seconds;
  }

let scan ?cache ~jobs tool src =
  Wap_core.Scan.run tool (Wap_core.Scan.request ~jobs ?cache [ (file, src) ])

let canon_export (o : Wap_core.Scan.outcome) =
  Wap_core.Export.result_to_string (zero_timings o.result)

let scan_determinism ctx case =
  let tool = Lazy.force ctx.tool in
  let e1 = canon_export (scan ~jobs:1 tool case.source) in
  let e4 = canon_export (scan ~jobs:4 tool case.source) in
  if not (String.equal e1 e4) then
    Fail "export differs between --jobs 1 and --jobs 4"
  else
    let cache = Wap_engine.Cache.create () in
    let cold = canon_export (scan ~cache ~jobs:2 tool case.source) in
    let warm = canon_export (scan ~cache ~jobs:2 tool case.source) in
    if not (String.equal cold e1) then
      Fail "export differs between cached and uncached scans"
    else if not (String.equal cold warm) then
      Fail "export differs between cold and warm cache"
    else
      (* the export must be JSON a consumer can actually parse, and the
         ASCII serializer must describe the same document *)
      match Wap_report.Json.of_string e1 with
      | Error m -> failf "exported JSON is malformed: %s" m
      | Ok j -> (
          let ascii = Wap_report.Json.to_string_ascii j in
          match Wap_report.Json.of_string ascii with
          | Error m -> failf "ASCII-escaped export does not re-parse: %s" m
          | Ok j2 ->
              if
                String.equal
                  (Wap_report.Json.to_string j)
                  (Wap_report.Json.to_string j2)
              then Pass
              else Fail "ASCII-escaping the export changed its contents")

(* ------------------------------------------------------------------ *)
(* 4. Fused/per-spec equivalence: the fused multi-spec taint pass and
   the sequential one-pass-per-spec pipeline export byte-identical
   results.  This is the differential check of the fused analyzer: the
   per-spec path exercises N independent single-spec analyses, so any
   cross-spec interaction inside the fused pass shows up here. *)

let scan_fused_equiv ctx case =
  let tool = Lazy.force ctx.tool in
  let export ~fuse =
    canon_export
      (Wap_core.Scan.run tool
         (Wap_core.Scan.request ~fuse ~jobs:1 [ (file, case.source) ]))
  in
  if String.equal (export ~fuse:true) (export ~fuse:false) then Pass
  else Fail "fused scan export differs from the per-spec scan export"

(* ------------------------------------------------------------------ *)
(* 4b. IR/AST equivalence: the fused pass over lowered three-address IR
   and the original AST walker export byte-identical results.  This is
   the differential check of the lowering + IR executor (Wap_ir): the
   [ir:false] path runs the walker verbatim, so any divergence in
   evaluation order, guard refinement, loop fixpoints or candidate
   rendering shows up here. *)

let scan_ir_equiv ctx case =
  let tool = Lazy.force ctx.tool in
  let export ~ir =
    canon_export
      (Wap_core.Scan.run tool
         (Wap_core.Scan.request ~ir ~jobs:1 [ (file, case.source) ]))
  in
  if String.equal (export ~ir:true) (export ~ir:false) then Pass
  else Fail "IR scan export differs from the AST-walker scan export"

(* ------------------------------------------------------------------ *)
(* 5. Sanitizer monotonicity: wrapping a tainted sink argument in a
   sanitizer of the candidate's class never *adds* candidates. *)

let count_by_key cands =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (c : Wap_taint.Trace.candidate) ->
      let key =
        (Wap_catalog.Vuln_class.report_group c.vclass, c.sink_loc.Loc.line)
      in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    cands;
  tbl

let sanitizer_for (tool : Wap_core.Tool.t) vclass =
  List.find_map
    (fun (s : Wap_catalog.Catalog.spec) ->
      if Wap_catalog.Vuln_class.equal s.vclass vclass then
        List.find_map
          (function Wap_catalog.Catalog.San_fn f -> Some f | _ -> None)
          s.sanitizers
      else None)
    tool.specs

let wrap_targets san targets prog =
  let is_target (e : Ast.expr) =
    List.exists
      (fun (t : Ast.expr) ->
        Loc.equal t.eloc e.eloc && Ast.equal_expr (Strip.expr t) (Strip.expr e))
      targets
  in
  Visitor.map_stmts
    (fun e ->
      if is_target e then
        Ast.mk_e ~loc:e.eloc
          (Ast.Call (Ast.F_ident san, [ { Ast.a_expr = e; a_spread = false } ]))
      else e)
    prog

let count_lines s =
  String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 1 s

let sanitizer_monotonicity ctx case =
  match Parser.parse_string ~file case.source with
  | exception (Lexer.Error _ | Parser.Error _) -> Pass
  | p ->
      let tool = Lazy.force ctx.tool in
      let s1 = Printer.program_to_string p in
      let o1 = scan ~jobs:1 tool s1 in
      let cands1 = o1.result.candidates in
      let pick =
        List.find_map
          (fun (c : Wap_taint.Trace.candidate) ->
            match sanitizer_for tool c.vclass with
            | Some san when c.tainted_positions <> [] -> Some (c, san)
            | _ -> None)
          cands1
      in
      (match pick with
      | None -> Pass
      | Some (c, san) -> (
          let targets =
            List.filteri
              (fun i _ -> List.mem i c.tainted_positions)
              c.sink_args
          in
          let p1 = Parser.parse_string ~file s1 in
          let s2 = Printer.program_to_string (wrap_targets san targets p1) in
          if count_lines s2 <> count_lines s1 then Pass
            (* wrapping moved lines (multi-line argument); incomparable *)
          else
            let o2 = scan ~jobs:1 tool s2 in
            let before = count_by_key cands1 in
            let after = count_by_key o2.result.candidates in
            let grew = ref None in
            Hashtbl.iter
              (fun (group, line) n2 ->
                let n1 = Option.value ~default:0 (Hashtbl.find_opt before (group, line)) in
                if n2 > n1 && !grew = None then grew := Some (group, line, n1, n2))
              after;
            match !grew with
            | Some (group, line, n1, n2) ->
                failf
                  "wrapping a tainted argument in %s added %s candidates at line %d (%d -> %d)"
                  san group line n1 n2
            | None -> Pass))

(* ------------------------------------------------------------------ *)
(* 6. Fixer soundness: corrected source reparses, and the rescan reports
   no candidate of the fixed class at the fixed line. *)

let fixer_soundness ctx case =
  match Parser.parse_string ~file case.source with
  | exception (Lexer.Error _ | Parser.Error _) -> Pass
  | p -> (
      let tool = Lazy.force ctx.tool in
      let s1 = Printer.program_to_string p in
      let o1 = scan ~jobs:1 tool s1 in
      if o1.result.reported = [] then Pass
      else
        let fixed, report = Wap_core.Tool.correct_source tool ~file s1 in
        match Parser.parse_string ~file fixed with
        | exception Lexer.Error (m, loc) ->
            failf "corrected source does not lex: %s at %s" m (Loc.to_string loc)
        | exception Parser.Error (m, loc) ->
            failf "corrected source does not parse: %s at %s" m (Loc.to_string loc)
        | (_ : Ast.program) -> (
            let shift = count_lines fixed - count_lines s1 in
            let o2 = scan ~jobs:1 tool fixed in
            let group = Wap_catalog.Vuln_class.report_group in
            (* strict only where *every* original candidate at the sink
               line was reported (and therefore fixed): a predicted-FP
               twin flow legitimately survives the correction *)
            let count l g line =
              List.length
                (List.filter
                   (fun (c : Wap_taint.Trace.candidate) ->
                     String.equal (group c.vclass) g && c.sink_loc.Loc.line = line)
                   l)
            in
            let offending =
              List.find_opt
                (fun ((fix : Wap_fixer.Fix.t), (loc : Loc.t)) ->
                  let g = group fix.vclass in
                  count o1.result.reported g loc.Loc.line
                  >= count o1.result.candidates g loc.Loc.line
                  && count o2.result.candidates g (loc.Loc.line + shift) > 0)
                report.applied
            in
            match offending with
            | Some (fix, loc) ->
                failf "%s still reported at line %d after applying %s"
                  (group fix.vclass) (loc.Loc.line + shift) fix.fix_name
            | None -> Pass))

(* ------------------------------------------------------------------ *)
(* 8. Tokenize equivalence: the zero-allocation buffer scanner
   ({!Lexer.tokenize_buf}, observed through its list compat wrapper so
   the buffer round-trip is covered too) agrees with the retained
   list-building reference lexer {!Lexer_ref} token-for-token and
   loc-for-loc — including agreeing on which inputs get rejected, with
   the same message at the same position. *)

let tokenize_equiv _ctx case =
  let run f =
    match f ~file case.source with
    | toks -> Ok toks
    | exception Lexer.Error (m, loc) -> Error (m, loc)
  in
  match (run Lexer.tokenize, run Lexer_ref.tokenize) with
  | Error (m1, l1), Error (m2, l2) ->
      if String.equal m1 m2 && Loc.equal l1 l2 then Pass
      else
        failf "lexers reject differently: %S at %s (buffer) vs %S at %s (reference)"
          m1 (Loc.to_string l1) m2 (Loc.to_string l2)
  | Ok _, Error (m, loc) ->
      failf "buffer scanner accepts what the reference rejects (%s at %s)" m
        (Loc.to_string loc)
  | Error (m, loc), Ok _ ->
      failf "buffer scanner rejects what the reference accepts (its error: %s at %s)"
        m (Loc.to_string loc)
  | Ok t1, Ok t2 ->
      let n1 = List.length t1 and n2 = List.length t2 in
      if n1 <> n2 then
        failf "token counts differ: %d (buffer) vs %d (reference)" n1 n2
      else
        let rec cmp i l1 l2 =
          match (l1, l2) with
          | [], [] -> Pass
          | (tok1, loc1) :: r1, (tok2, loc2) :: r2 ->
              if not (Token.equal tok1 tok2) then
                failf "token %d differs at %s: %s (buffer) vs %s (reference)" i
                  (Loc.to_string loc2) (Token.show tok1) (Token.show tok2)
              else if not (Loc.equal loc1 loc2) then
                failf "token %d (%s) location differs: %s (buffer) vs %s (reference)"
                  i (Token.describe tok1) (Loc.to_string loc1)
                  (Loc.to_string loc2)
              else cmp (i + 1) r1 r2
          | _, _ -> assert false
        in
        cmp 0 t1 t2

(* ------------------------------------------------------------------ *)

let all =
  [
    { name = "lexer-totality";
      describe = "lexing/tolerant parsing never raises unexpectedly; token spans in bounds";
      check = lexer_totality };
    { name = "printer-fixpoint";
      describe = "parse (print ast) = ast modulo locations; printing idempotent";
      check = printer_fixpoint };
    { name = "scan-determinism";
      describe = "JSON export byte-identical across --jobs and cache states; well-formed";
      check = scan_determinism };
    { name = "scan-fused-equiv";
      describe = "fused multi-spec scan byte-identical to the per-spec pipeline";
      check = scan_fused_equiv };
    { name = "scan-ir-equiv";
      describe = "fused scan over lowered IR byte-identical to the AST walker";
      check = scan_ir_equiv };
    { name = "sanitizer-monotonicity";
      describe = "sanitizing a tainted argument never adds candidates";
      check = sanitizer_monotonicity };
    { name = "fixer-soundness";
      describe = "corrected source reparses; fixed line no longer reported";
      check = fixer_soundness };
    { name = "tokenize-equiv";
      describe = "buffer scanner tokens and locs byte-identical to the reference lexer";
      check = tokenize_equiv };
  ]

let by_name name = List.find_opt (fun o -> String.equal o.name name) all

let names = List.map (fun o -> o.name) all
