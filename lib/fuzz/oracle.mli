(** Differential oracles over one fuzz input.

    An oracle states an invariant of the pipeline that must hold for
    {e every} input — totality, round-tripping, determinism,
    monotonicity, soundness — so any violation is a bug by construction,
    not a judgement call about detection quality. *)

type case = {
  source : string;  (** the PHP source under test *)
  gen_ast : Wap_php.Ast.program option;
      (** the generated AST when the source was printed from one; [None]
          for replayed seed files and spiced raw sources *)
}

val case_of_source : string -> case

type verdict = Pass | Fail of string

(** Shared scan context.  The tool is expensive to build (it trains the
    FP predictor), so it is created lazily and shared across the run. *)
type ctx = { tool : Wap_core.Tool.t Lazy.t }

type t = {
  name : string;  (** stable CLI/seed-file identifier, e.g. ["printer-fixpoint"] *)
  describe : string;
  check : ctx -> case -> verdict;
}

(** The seven oracles, in documentation order: [lexer-totality],
    [printer-fixpoint], [scan-determinism], [scan-fused-equiv],
    [scan-ir-equiv], [sanitizer-monotonicity], [fixer-soundness]. *)
val all : t list

val by_name : string -> t option
val names : string list
