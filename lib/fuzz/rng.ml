(* SplitMix64.  Deterministic across OCaml versions and platforms, which
   the stdlib Random is not guaranteed to be: a fuzz seed checked into
   the repository must reproduce the same program forever. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create ~seed =
  (* Pre-mix so that nearby seeds do not yield overlapping streams. *)
  { state = Int64.mul (Int64.of_int seed) 0x2545F4914F6CDD1DL }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t n = if n <= 0 then invalid_arg "Rng.int: bound must be positive" else bits t mod n

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* [chance t num den] is true with probability num/den. *)
let chance t num den = int t den < num

let split t = { state = next_int64 t }

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  if total <= 0 then invalid_arg "Rng.weighted: weights must sum > 0";
  let roll = int t total in
  let rec go acc = function
    | [] -> assert false
    | (w, x) :: rest -> if roll < acc + w then x else go (acc + w) rest
  in
  go 0 choices
