(** Deterministic splittable pseudo-random number generator (SplitMix64).

    The fuzzer cannot use [Stdlib.Random]: its algorithm has changed
    between OCaml releases, and a regression seed checked into
    [test/fuzz_seeds/] must regenerate the identical program on every
    toolchain.  SplitMix64 is fully specified, fast, and splits cleanly
    so each fuzz iteration gets an independent stream. *)

type t

val create : seed:int -> t

(** Uniform in [\[0, n)].  @raise Invalid_argument when [n <= 0]. *)
val int : t -> int -> int

(** Uniform in [\[lo, hi\]] inclusive. *)
val range : t -> int -> int -> int

val bool : t -> bool

(** [chance t num den] is [true] with probability [num/den]. *)
val chance : t -> int -> int -> bool

(** A new generator whose stream is independent of further draws from
    the parent. *)
val split : t -> t

(** Uniform choice.  @raise Invalid_argument on an empty list. *)
val pick : t -> 'a list -> 'a

(** Weighted choice over [(weight, value)] pairs. *)
val weighted : t -> (int * 'a) list -> 'a

(** Raw 62-bit non-negative draw. *)
val bits : t -> int
