(* Greedy structural shrinking.

   Given a failing input, repeatedly try strictly-smaller variants and
   keep any that still fails, until no reduction applies or the
   evaluation budget runs out.  Reductions preserve the generator's
   canonicality invariants (see {!Gen}) so a shrunk AST case still
   fails for the original reason, not because shrinking manufactured a
   non-canonical tree. *)

open Wap_php
open Ast

(* ------------------------------------------------------------------ *)
(* AST reductions.                                                     *)

let body_of_stmt (s : stmt) : stmt list option =
  match s.s with
  | If (branches, els) ->
      Some
        (List.concat_map (fun (_, b) -> b) branches
        @ Option.value ~default:[] els)
  | While (_, b) | Foreach (_, _, b) | Block b -> Some b
  | Func_def f -> Some f.f_body
  | _ -> None

(* Direct sub-expressions, used as replacement candidates. *)
let sub_exprs (e : expr) : expr list =
  match e.e with
  | Int _ | Float _ | String _ | Var _ | Constant _ | Static_prop _
  | Class_const _ ->
      []
  | Interp parts | Backtick parts ->
      List.filter_map (function Ip_expr e -> Some e | Ip_str _ -> None) parts
  | Var_var e | Clone e | Unop (_, e) | Incdec (_, e) | Cast (_, e)
  | Empty e | Print e | Include (_, e) ->
      [ e ]
  | Array_lit items -> List.map (fun i -> i.ai_value) items
  | Index (b, sub) -> b :: Option.to_list sub
  | Prop (b, _) -> [ b ]
  | Call (F_ident _, args) -> List.map (fun a -> a.a_expr) args
  | Call (F_var f, args) -> f :: List.map (fun a -> a.a_expr) args
  | Call (F_method (o, _), args) -> o :: List.map (fun a -> a.a_expr) args
  | Call (F_static _, args) -> List.map (fun a -> a.a_expr) args
  | New (_, args) -> List.map (fun a -> a.a_expr) args
  | Binop (_, a, b) | Assign (_, a, b) | Assign_ref (a, b) -> [ a; b ]
  | Ternary (c, t, e) -> (c :: Option.to_list t) @ [ e ]
  | Isset es -> es
  | Exit e -> Option.to_list e
  | List es -> List.filter_map Fun.id es
  | Closure c -> List.map (fun p -> p.p_default) c.cl_params |> List.filter_map Fun.id

(* Whether an expression is rooted in a variable.  A var-rooted node may
   sit in a position that syntactically demands one — an interpolation
   part, an assignment target — so it is only ever replaced by another
   var-rooted expression. *)
let var_rooted e = Option.is_some (base_variable e)

let replacements_for (e : expr) : expr list =
  let children = sub_exprs e in
  if var_rooted e then List.filter var_rooted children
  else
    match e.e with
    | Int _ | String _ -> [] (* already atomic *)
    | _ -> children @ [ int_ 0 ]

(* Enumerate single-node replacements: [replace_nth prog k r] rewrites
   the [k]-th expression (in [Visitor.map_stmts] visit order) using the
   [r]-th entry of its replacement list. *)
let count_exprs prog =
  let n = ref 0 in
  ignore
    (Visitor.map_stmts
       (fun e ->
         incr n;
         e)
       prog);
  !n

let replace_nth prog k r =
  let n = ref (-1) in
  let changed = ref false in
  let prog' =
    Visitor.map_stmts
      (fun e ->
        incr n;
        if !n = k then
          match List.nth_opt (replacements_for e) r with
          | Some e' ->
              changed := true;
              e'
          | None -> e
        else e)
      prog
  in
  if !changed then Some prog' else None

let stmt_reductions (prog : program) : program list =
  let n = List.length prog in
  let removals =
    List.init n (fun i -> List.filteri (fun j _ -> j <> i) prog)
  in
  let unwraps =
    List.concat
      (List.mapi
         (fun i s ->
           match body_of_stmt s with
           | Some body ->
               [ List.concat
                   (List.mapi (fun j s' -> if j = i then body else [ s' ]) prog) ]
           | None -> [])
         prog)
  in
  removals @ unwraps

let expr_reductions (prog : program) : program list =
  let total = count_exprs prog in
  let out = ref [] in
  for k = total - 1 downto 0 do
    let r = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      match replace_nth prog k !r with
      | Some p -> out := p :: !out; incr r
      | None -> continue_ := false
    done
  done;
  !out

let program ?(budget = 400) ~fails (prog : program) : program =
  let evals = ref 0 in
  let try_fail p =
    if !evals >= budget then false
    else begin
      incr evals;
      fails p
    end
  in
  let rec go prog =
    let candidates = stmt_reductions prog @ expr_reductions prog in
    match List.find_opt try_fail candidates with
    | Some smaller when !evals < budget -> go smaller
    | Some smaller -> smaller
    | None -> prog
  in
  go prog

(* ------------------------------------------------------------------ *)
(* Raw source reduction: line-based ddmin-lite for spiced/replayed
   cases, where there is no AST to cut.  The [<?php] opener is pinned. *)

let source ?(budget = 300) ~fails (src : string) : string =
  let evals = ref 0 in
  let try_fail s =
    if !evals >= budget then false
    else begin
      incr evals;
      fails s
    end
  in
  let rejoin lines = String.concat "\n" lines in
  let rec go lines chunk =
    let n = List.length lines in
    if chunk < 1 then rejoin lines
    else begin
      let found = ref None in
      let i = ref 1 (* keep the opening line *) in
      while !found = None && !i + chunk <= n do
        let candidate =
          List.filteri (fun j _ -> j < !i || j >= !i + chunk) lines
        in
        if try_fail (rejoin candidate) then found := Some candidate;
        incr i
      done;
      match !found with
      | Some smaller -> go smaller (min chunk (List.length smaller - 1))
      | None -> go lines (chunk / 2)
    end
  in
  let lines = String.split_on_char '\n' src in
  let n = List.length lines in
  if n <= 1 then src else go lines (max 1 ((n - 1) / 2))
