(** Greedy shrinking of failing fuzz inputs.

    Reductions are strictly size-decreasing, so shrinking terminates;
    [budget] bounds the number of [fails] evaluations (each of which may
    run a full scan).  AST reductions preserve {!Gen}'s canonicality
    invariants so the shrunk program still fails the original oracle
    rather than a manufactured round-trip mismatch. *)

(** Shrink a generated program.  [fails p] must re-run the violated
    oracle on [p] and report whether it still fails. *)
val program :
  ?budget:int ->
  fails:(Wap_php.Ast.program -> bool) ->
  Wap_php.Ast.program ->
  Wap_php.Ast.program

(** Line-based ddmin-lite for raw sources (spiced or replayed cases);
    the opening [<?php] line is pinned. *)
val source : ?budget:int -> fails:(string -> bool) -> string -> string
