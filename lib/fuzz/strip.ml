(* Deep location erasure.  The derived [Ast.equal_program] compares
   [Loc.t] fields, so the printer/parser fixpoint oracle — "reparsing the
   printed program yields the same AST modulo locations" — normalizes
   both sides through this module first.  [Visitor.map_expr] only
   touches expressions; statements, functions and classes carry
   locations of their own, hence the dedicated recursion. *)

open Wap_php
open Ast

let rec expr { e; _ } = { e = expr_kind e; eloc = Loc.dummy }

and expr_kind = function
  | (Int _ | Float _ | String _ | Var _ | Constant _) as k -> k
  | Interp parts -> Interp (List.map interp_part parts)
  | Var_var e -> Var_var (expr e)
  | Array_lit items -> Array_lit (List.map array_item items)
  | Index (e, sub) -> Index (expr e, Option.map expr sub)
  | Prop (e, m) -> Prop (expr e, member m)
  | Static_prop (c, p) -> Static_prop (c, p)
  | Class_const (c, k) -> Class_const (c, k)
  | Call (f, args) -> Call (callee f, List.map arg args)
  | New (c, args) -> New (c, List.map arg args)
  | Clone e -> Clone (expr e)
  | Binop (op, a, b) -> Binop (op, expr a, expr b)
  | Unop (op, e) -> Unop (op, expr e)
  | Incdec (op, e) -> Incdec (op, expr e)
  | Assign (op, l, r) -> Assign (op, expr l, expr r)
  | Assign_ref (l, r) -> Assign_ref (expr l, expr r)
  | Ternary (c, t, e) -> Ternary (expr c, Option.map expr t, expr e)
  | Cast (c, e) -> Cast (c, expr e)
  | Isset es -> Isset (List.map expr es)
  | Empty e -> Empty (expr e)
  | Exit e -> Exit (Option.map expr e)
  | Print e -> Print (expr e)
  | Include (k, e) -> Include (k, expr e)
  | List es -> List (List.map (Option.map expr) es)
  | Closure c -> Closure (closure c)
  | Backtick parts -> Backtick (List.map interp_part parts)

and interp_part = function
  | Ip_str s -> Ip_str s
  | Ip_expr e -> Ip_expr (expr e)

and array_item { ai_key; ai_value; ai_by_ref } =
  { ai_key = Option.map expr ai_key; ai_value = expr ai_value; ai_by_ref }

and member = function
  | Mem_ident i -> Mem_ident i
  | Mem_expr e -> Mem_expr (expr e)

and callee = function
  | F_ident i -> F_ident i
  | F_var e -> F_var (expr e)
  | F_method (e, m) -> F_method (expr e, member m)
  | F_static (c, m) -> F_static (c, m)

and arg { a_expr; a_spread } = { a_expr = expr a_expr; a_spread }

and closure c =
  {
    cl_params = List.map param c.cl_params;
    cl_uses = c.cl_uses;
    cl_body = stmts c.cl_body;
    cl_static = c.cl_static;
  }

and param p = { p with p_default = Option.map expr p.p_default }

and stmt { s; _ } = { s = stmt_kind s; sloc = Loc.dummy }

and stmt_kind = function
  | Expr_stmt e -> Expr_stmt (expr e)
  | Echo es -> Echo (List.map expr es)
  | If (branches, els) ->
      If
        ( List.map (fun (c, body) -> (expr c, stmts body)) branches,
          Option.map stmts els )
  | While (c, body) -> While (expr c, stmts body)
  | Do_while (body, c) -> Do_while (stmts body, expr c)
  | For (init, cond, step, body) ->
      For (List.map expr init, List.map expr cond, List.map expr step, stmts body)
  | Foreach (e, binding, body) ->
      Foreach
        ( expr e,
          {
            fe_key = Option.map expr binding.fe_key;
            fe_by_ref = binding.fe_by_ref;
            fe_value = expr binding.fe_value;
          },
          stmts body )
  | Switch (e, cases) -> Switch (expr e, List.map case cases)
  | (Break _ | Continue _ | Global _ | Inline_html _ | Nop) as k -> k
  | Return e -> Return (Option.map expr e)
  | Static_vars vars ->
      Static_vars (List.map (fun (n, d) -> (n, Option.map expr d)) vars)
  | Unset es -> Unset (List.map expr es)
  | Throw e -> Throw (expr e)
  | Try (body, catches, fin) ->
      Try (stmts body, List.map catch catches, Option.map stmts fin)
  | Func_def f -> Func_def (func f)
  | Class_def c -> Class_def (cls c)
  | Block body -> Block (stmts body)
  | Const_def defs -> Const_def (List.map (fun (n, e) -> (n, expr e)) defs)

and case = function
  | Case (e, body) -> Case (expr e, stmts body)
  | Default body -> Default (stmts body)

and catch c = { c with c_body = stmts c.c_body }

and func f =
  {
    f with
    f_params = List.map param f.f_params;
    f_body = stmts f.f_body;
    f_loc = Loc.dummy;
  }

and cls c =
  {
    c with
    k_consts = List.map (fun (n, e) -> (n, expr e)) c.k_consts;
    k_props = List.map (fun p -> { p with pr_default = Option.map expr p.pr_default }) c.k_props;
    k_methods = List.map (fun m -> { m with m_func = func m.m_func }) c.k_methods;
    k_loc = Loc.dummy;
  }

and stmts l = List.map stmt l

let program (p : program) = stmts p
let equal a b = equal_program (program a) (program b)
