(** Deep location erasure over the PHP AST.

    The printer/parser fixpoint oracle compares ASTs with the derived
    [Wap_php.Ast.equal_program], which also compares the [Loc.t] carried
    by every node.  Stripping both sides to [Loc.dummy] first turns that
    into the intended "structurally equal modulo locations". *)

val expr : Wap_php.Ast.expr -> Wap_php.Ast.expr
val stmt : Wap_php.Ast.stmt -> Wap_php.Ast.stmt
val program : Wap_php.Ast.program -> Wap_php.Ast.program

(** [equal a b] is structural equality modulo locations. *)
val equal : Wap_php.Ast.program -> Wap_php.Ast.program -> bool
