(** IR renderings for [wap ir --dump]. *)

open Wap_php
module J = Wap_report.Json

let ids l = "[" ^ String.concat "," (List.map string_of_int l) ^ "]"

let idset = function Ir.All -> "all" | Ir.Only l -> ids l

let loc (l : Loc.t) = Printf.sprintf "%d:%d" l.Loc.line l.Loc.col

let temp t = "t" ^ string_of_int t

let temps ts = "[" ^ String.concat ", " (List.map temp ts) ^ "]"

let pos_temps ts =
  "["
  ^ String.concat ", " (List.map (fun (i, t) -> Printf.sprintf "%d:%s" i (temp t)) ts)
  ^ "]"

let plan (p : Ir.plan) =
  "["
  ^ String.concat "; "
      (List.map
         (fun (g : Ir.guard) ->
           g.Ir.g_name ^ "(" ^ String.concat "," g.Ir.g_keys ^ ")")
         p)
  ^ "]"

let rec lvalue = function
  | Ir.Lv_var { name; sg_ids } ->
      "$" ^ name ^ (if sg_ids = [] then "" else " sg" ^ ids sg_ids)
  | Ir.Lv_index (Some v) -> "$" ^ v ^ "[...]"
  | Ir.Lv_index None -> "?[...]"
  | Ir.Lv_prop (Some v) -> "$" ^ v ^ "->..."
  | Ir.Lv_prop None -> "?->..."
  | Ir.Lv_list es ->
      "list("
      ^ String.concat ", "
          (List.map (function Some lv -> lvalue lv | None -> "_") es)
      ^ ")"
  | Ir.Lv_skip -> "<skip>"

let special = function
  | Ir.Fs_sprintf parts ->
      Printf.sprintf "sprintf[%d parts]" (List.length parts)
  | Ir.Fs_plain { clean_if_unknown } ->
      if clean_if_unknown then "clean-if-unknown" else "plain"

let target = function
  | Ir.Ct_dynamic -> "dynamic"
  | Ir.Ct_named { fname; through; ids } ->
      Printf.sprintf "named %s through=%s ids=%s" fname through (idset ids)
  | Ir.Ct_fn { lf; src; rest; special = sp } ->
      Printf.sprintf "fn %s src=%s rest=%s %s" lf (ids src) (idset rest)
        (special sp)

let sink_targets ts =
  "["
  ^ String.concat "; "
      (List.map
         (fun (id, positions) ->
           string_of_int id
           ^ match positions with [] -> ":*" | ps -> ":" ^ ids ps)
         ts)
  ^ "]"

let instr (i : Ir.instr) : string =
  match i with
  | Ir.Const { dst } -> temp dst ^ " <- const"
  | Ir.Copy { dst; src } -> temp dst ^ " <- copy " ^ temp src
  | Ir.Load_var { dst; name; sg_ids; loc = l } ->
      Printf.sprintf "%s <- load $%s%s @%s" (temp dst) name
        (if sg_ids = [] then "" else " source" ^ ids sg_ids)
        (loc l)
  | Ir.Read_rest { dst; name; sg_ids } ->
      Printf.sprintf "%s <- rest $%s without%s" (temp dst) name (ids sg_ids)
  | Ir.Sg_index { dst; rest; sg_ids; rendered; loc = l } ->
      Printf.sprintf "%s <- sg-index %s source%s over %s @%s" (temp dst)
        rendered (ids sg_ids) (temp rest) (loc l)
  | Ir.Array_get { dst; base } -> temp dst ^ " <- array-get " ^ temp base
  | Ir.Field_get { dst; base } -> temp dst ^ " <- field-get " ^ temp base
  | Ir.Binop { dst; l; r; concat } ->
      Printf.sprintf "%s <- %s %s %s" (temp dst)
        (if concat then "concat" else "binop")
        (temp l) (temp r)
  | Ir.Join { dst; srcs; mark } ->
      Printf.sprintf "%s <- join %s%s" (temp dst) (temps srcs)
        (match mark with Some m -> " through=" ^ m | None -> "")
  | Ir.Through { dst; src; name } ->
      Printf.sprintf "%s <- through %s %s" (temp dst) name (temp src)
  | Ir.Assign_val { dst; rhs; prev; concat; loc = l; _ } ->
      Printf.sprintf "%s <- assign%s %s%s @%s" (temp dst)
        (if concat then ".=" else "")
        (temp rhs)
        (match prev with Some p -> " prev=" ^ temp p | None -> "")
        (loc l)
  | Ir.Store_var { src; name; sg_ids } ->
      Printf.sprintf "store $%s%s <- %s" name
        (if sg_ids = [] then "" else " sg" ^ ids sg_ids)
        (temp src)
  | Ir.Array_set { src; base } ->
      Printf.sprintf "array-set %s <- %s"
        (match base with Some v -> "$" ^ v | None -> "?")
        (temp src)
  | Ir.Field_set { src; base } ->
      Printf.sprintf "field-set %s <- %s"
        (match base with Some v -> "$" ^ v | None -> "?")
        (temp src)
  | Ir.Store { src; lv } -> Printf.sprintf "store %s <- %s" (lvalue lv) (temp src)
  | Ir.Sink { name; loc = l; taints; targets; _ } ->
      Printf.sprintf "sink %s specs=%s taints=%s @%s" name
        (sink_targets targets) (pos_temps taints) (loc l)
  | Ir.Call { dst; loc = l; args; target = tg; _ } ->
      Printf.sprintf "%s <- call %s args=%s @%s" (temp dst) (target tg)
        (pos_temps args) (loc l)
  | Ir.Closure { uses; body } ->
      Printf.sprintf "closure uses=[%s] body=b%d" (String.concat "," uses) body
  | Ir.Ternary { dst; plan_t; plan_f; t_blk; t_res; f_blk; f_res } ->
      Printf.sprintf "%s <- ternary b%d:%s / b%d:%s plan_t=%s plan_f=%s"
        (temp dst) t_blk (temp t_res) f_blk (temp f_res) (plan plan_t)
        (plan plan_f)
  | Ir.Run { blk } -> Printf.sprintf "run b%d" blk
  | Ir.Loop { enter; body } ->
      Printf.sprintf "loop b%d enter=%s" body (plan enter)
  | Ir.If_s { arms; else_ } ->
      "if "
      ^ String.concat " elif "
          (List.map
             (fun (ar : Ir.arm) ->
               Printf.sprintf "b%d%s%s plan_t=%s plan_f=%s" ar.Ir.ar_body
                 (if ar.Ir.ar_terminates then " term" else "")
                 (match ar.Ir.ar_exit_guards with
                 | Some _ -> " exit-guards"
                 | None -> "")
                 (plan ar.Ir.ar_plan_true) (plan ar.Ir.ar_plan_false))
             arms)
      ^
      (match else_ with
      | Some (b, term) ->
          Printf.sprintf " else b%d%s" b (if term then " term" else "")
      | None -> "")
  | Ir.Switch_s { cases } ->
      "switch "
      ^ String.concat " " (List.map (fun b -> Printf.sprintf "b%d" b) cases)
  | Ir.Try_s { body; catches; fin } ->
      Printf.sprintf "try b%d catch [%s]%s" body
        (String.concat " "
           (List.map (fun b -> Printf.sprintf "b%d" b) catches))
        (match fin with Some b -> Printf.sprintf " finally b%d" b | None -> "")
  | Ir.Foreach_bind { subject; value_lv; key_lv; loc = l; _ } ->
      Printf.sprintf "foreach-bind %s -> %s%s @%s" (temp subject)
        (lvalue value_lv)
        (match key_lv with Some k -> ", key " ^ lvalue k | None -> "")
        (loc l)
  | Ir.Return_t { src } -> "return " ^ temp src
  | Ir.Set_clean { names } ->
      "set-clean [" ^ String.concat ", " (List.map (fun v -> "$" ^ v) names) ^ "]"
  | Ir.Store_raw { name; src } ->
      Printf.sprintf "store-raw $%s <- %s" name (temp src)
  | Ir.Unset_vars { names } ->
      "unset [" ^ String.concat ", " (List.map (fun v -> "$" ^ v) names) ^ "]"

let to_string (body : Ir.body) : string =
  let b = Buffer.create 1024 in
  Printf.bprintf b "entry b%d, %d blocks, %d temps\n" body.Ir.entry
    (Array.length body.Ir.blocks)
    body.Ir.ntemps;
  Array.iteri
    (fun bi instrs ->
      Printf.bprintf b "b%d:%s\n" bi
        (if bi = body.Ir.entry then "  ; entry" else "");
      Array.iter (fun i -> Printf.bprintf b "  %s\n" (instr i)) instrs)
    body.Ir.blocks;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON.                                                                *)

let j_ids l = J.List (List.map (fun i -> J.Int i) l)
let j_idset = function Ir.All -> J.Str "all" | Ir.Only l -> j_ids l
let j_loc (l : Loc.t) = J.Obj [ ("line", J.Int l.Loc.line); ("col", J.Int l.Loc.col) ]

let j_plan (p : Ir.plan) =
  J.List
    (List.map
       (fun (g : Ir.guard) ->
         J.Obj
           [ ("guard", J.Str g.Ir.g_name);
             ("keys", J.List (List.map (fun k -> J.Str k) g.Ir.g_keys)) ])
       p)

let rec j_lvalue = function
  | Ir.Lv_var { name; sg_ids } ->
      J.Obj [ ("var", J.Str name); ("sg_ids", j_ids sg_ids) ]
  | Ir.Lv_index base ->
      J.Obj [ ("index_base", match base with Some v -> J.Str v | None -> J.Null) ]
  | Ir.Lv_prop base ->
      J.Obj [ ("prop_base", match base with Some v -> J.Str v | None -> J.Null) ]
  | Ir.Lv_list es ->
      J.Obj
        [ ( "list",
            J.List
              (List.map
                 (function Some lv -> j_lvalue lv | None -> J.Null)
                 es) ) ]
  | Ir.Lv_skip -> J.Obj [ ("skip", J.Bool true) ]

let j_pos_temps ts =
  J.List (List.map (fun (i, t) -> J.List [ J.Int i; J.Int t ]) ts)

let j_target = function
  | Ir.Ct_dynamic -> J.Obj [ ("kind", J.Str "dynamic") ]
  | Ir.Ct_named { fname; through; ids } ->
      J.Obj
        [ ("kind", J.Str "named"); ("fname", J.Str fname);
          ("through", J.Str through); ("ids", j_idset ids) ]
  | Ir.Ct_fn { lf; src; rest; special } ->
      J.Obj
        ([ ("kind", J.Str "fn"); ("name", J.Str lf); ("source_ids", j_ids src);
           ("rest_ids", j_idset rest) ]
        @
        match special with
        | Ir.Fs_sprintf parts ->
            [ ("special", J.Str "sprintf"); ("parts", J.Int (List.length parts)) ]
        | Ir.Fs_plain { clean_if_unknown } ->
            [ ("clean_if_unknown", J.Bool clean_if_unknown) ])

let j_instr (i : Ir.instr) : J.t =
  let op name fields = J.Obj (("op", J.Str name) :: fields) in
  match i with
  | Ir.Const { dst } -> op "const" [ ("dst", J.Int dst) ]
  | Ir.Copy { dst; src } -> op "copy" [ ("dst", J.Int dst); ("src", J.Int src) ]
  | Ir.Load_var { dst; name; sg_ids; loc } ->
      op "load_var"
        [ ("dst", J.Int dst); ("name", J.Str name); ("source_ids", j_ids sg_ids);
          ("loc", j_loc loc) ]
  | Ir.Read_rest { dst; name; sg_ids } ->
      op "read_rest"
        [ ("dst", J.Int dst); ("name", J.Str name); ("sg_ids", j_ids sg_ids) ]
  | Ir.Sg_index { dst; rest; sg_ids; rendered; loc } ->
      op "sg_index"
        [ ("dst", J.Int dst); ("rest", J.Int rest); ("source_ids", j_ids sg_ids);
          ("rendered", J.Str rendered); ("loc", j_loc loc) ]
  | Ir.Array_get { dst; base } ->
      op "array_get" [ ("dst", J.Int dst); ("base", J.Int base) ]
  | Ir.Field_get { dst; base } ->
      op "field_get" [ ("dst", J.Int dst); ("base", J.Int base) ]
  | Ir.Binop { dst; l; r; concat } ->
      op "binop"
        [ ("dst", J.Int dst); ("l", J.Int l); ("r", J.Int r);
          ("concat", J.Bool concat) ]
  | Ir.Join { dst; srcs; mark } ->
      op "join"
        [ ("dst", J.Int dst); ("srcs", j_ids srcs);
          ("mark", match mark with Some m -> J.Str m | None -> J.Null) ]
  | Ir.Through { dst; src; name } ->
      op "through"
        [ ("dst", J.Int dst); ("src", J.Int src); ("name", J.Str name) ]
  | Ir.Assign_val { dst; rhs; prev; concat; loc; _ } ->
      op "assign"
        [ ("dst", J.Int dst); ("rhs", J.Int rhs);
          ("prev", match prev with Some p -> J.Int p | None -> J.Null);
          ("concat", J.Bool concat); ("loc", j_loc loc) ]
  | Ir.Store_var { src; name; sg_ids } ->
      op "store_var"
        [ ("src", J.Int src); ("name", J.Str name); ("sg_ids", j_ids sg_ids) ]
  | Ir.Array_set { src; base } ->
      op "array_set"
        [ ("src", J.Int src);
          ("base", match base with Some v -> J.Str v | None -> J.Null) ]
  | Ir.Field_set { src; base } ->
      op "field_set"
        [ ("src", J.Int src);
          ("base", match base with Some v -> J.Str v | None -> J.Null) ]
  | Ir.Store { src; lv } -> op "store" [ ("src", J.Int src); ("lv", j_lvalue lv) ]
  | Ir.Sink { name; loc; taints; targets; _ } ->
      op "sink"
        [ ("name", J.Str name); ("loc", j_loc loc);
          ("taints", j_pos_temps taints);
          ( "targets",
            J.List
              (List.map
                 (fun (id, positions) ->
                   J.Obj
                     [ ("spec", J.Int id); ("positions", j_ids positions) ])
                 targets) ) ]
  | Ir.Call { dst; loc; args; target; _ } ->
      op "call"
        [ ("dst", J.Int dst); ("loc", j_loc loc); ("args", j_pos_temps args);
          ("target", j_target target) ]
  | Ir.Closure { uses; body } ->
      op "closure"
        [ ("uses", J.List (List.map (fun v -> J.Str v) uses));
          ("body", J.Int body) ]
  | Ir.Ternary { dst; plan_t; plan_f; t_blk; t_res; f_blk; f_res } ->
      op "ternary"
        [ ("dst", J.Int dst); ("plan_true", j_plan plan_t);
          ("plan_false", j_plan plan_f); ("t_blk", J.Int t_blk);
          ("t_res", J.Int t_res); ("f_blk", J.Int f_blk);
          ("f_res", J.Int f_res) ]
  | Ir.Run { blk } -> op "run" [ ("blk", J.Int blk) ]
  | Ir.Loop { enter; body } ->
      op "loop" [ ("enter", j_plan enter); ("body", J.Int body) ]
  | Ir.If_s { arms; else_ } ->
      op "if"
        [ ( "arms",
            J.List
              (List.map
                 (fun (ar : Ir.arm) ->
                   J.Obj
                     [ ("plan_true", j_plan ar.Ir.ar_plan_true);
                       ("plan_false", j_plan ar.Ir.ar_plan_false);
                       ("body", J.Int ar.Ir.ar_body);
                       ("terminates", J.Bool ar.Ir.ar_terminates);
                       ( "exit_guards",
                         match ar.Ir.ar_exit_guards with
                         | Some keyss ->
                             J.List
                               (List.map
                                  (fun keys ->
                                    J.List (List.map (fun k -> J.Str k) keys))
                                  keyss)
                         | None -> J.Null ) ])
                 arms) );
          ( "else",
            match else_ with
            | Some (b, term) ->
                J.Obj [ ("body", J.Int b); ("terminates", J.Bool term) ]
            | None -> J.Null ) ]
  | Ir.Switch_s { cases } -> op "switch" [ ("cases", j_ids cases) ]
  | Ir.Try_s { body; catches; fin } ->
      op "try"
        [ ("body", J.Int body); ("catches", j_ids catches);
          ("finally", match fin with Some b -> J.Int b | None -> J.Null) ]
  | Ir.Foreach_bind { subject; value_lv; key_lv; loc; _ } ->
      op "foreach_bind"
        [ ("subject", J.Int subject); ("value", j_lvalue value_lv);
          ("key", match key_lv with Some k -> j_lvalue k | None -> J.Null);
          ("loc", j_loc loc) ]
  | Ir.Return_t { src } -> op "return" [ ("src", J.Int src) ]
  | Ir.Set_clean { names } ->
      op "set_clean" [ ("names", J.List (List.map (fun v -> J.Str v) names)) ]
  | Ir.Store_raw { name; src } ->
      op "store_raw" [ ("name", J.Str name); ("src", J.Int src) ]
  | Ir.Unset_vars { names } ->
      op "unset" [ ("names", J.List (List.map (fun v -> J.Str v) names)) ]

let to_json (body : Ir.body) : J.t =
  J.Obj
    [ ("entry", J.Int body.Ir.entry);
      ("ntemps", J.Int body.Ir.ntemps);
      ( "blocks",
        J.List
          (Array.to_list
             (Array.map
                (fun instrs ->
                  J.List (Array.to_list (Array.map j_instr instrs)))
                body.Ir.blocks)) ) ]
