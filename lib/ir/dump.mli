(** Human- and tool-readable renderings of lowered IR, for the
    [wap ir --dump] debug subcommand and the IR tests. *)

(** Text rendering: one block per section, one instruction per line,
    temporaries as [tN], taint annotations (source/sink/sanitizer spec
    ids, guard plans) inline. *)
val to_string : Ir.body -> string

(** Structured rendering of the same information. *)
val to_json : Ir.body -> Wap_report.Json.t
