(** The IR taint executor (see the interface for the contract).

    Each case below is the image of one [eval]/[exec_stmt] case of the
    AST walker under the lowering: same joins, same emission points,
    same structural merges, same loop fixpoint — with the per-expression
    dispatch, rendering and catalog lookups already paid at lowering
    time.  When editing, keep the correspondence with
    {!Wap_taint.Analyzer} exact; the [scan-ir-equiv] oracle and the
    corpus tests check byte-identity of the exported results. *)

open Wap_php
module A = Wap_taint.Analyzer
module Env = Wap_taint.Env
module Trace = Wap_taint.Trace
module Summary = Wap_taint.Summary
module Cat = Wap_catalog.Catalog

type ctx = {
  specs : Cat.spec array;
  all_ids : int list;
  summaries : Summary.table;
  file : string;
  mutable candidates : (int * Trace.candidate) list;  (** newest first *)
  seen : (string, unit) Hashtbl.t;
  mutable return_taints : Env.taint list;
  mutable param_sinks : (int * Summary.param_sink) list;
  mutable live : int list;
  temps : Env.taint array;
  blocks : Ir.instr array array;
}

let is_live ctx id = ctx.live == ctx.all_ids || List.mem id ctx.live

(* ------------------------------------------------------------------ *)
(* Candidate emission — the walker's [emit_one]/[emit_spec], phase
   always Full (the IR path only runs pass 3).                          *)

let emit_one ctx ~id ~sink_name ~loc ~args ~tainted =
  match tainted with
  | [] -> ()
  | _ when not (is_live ctx id) -> ()
  | _ ->
      let real, params =
        List.partition
          (fun (_, (o : Trace.origin)) ->
            Trace.param_index_of_source o.Trace.source = None)
          tainted
      in
      List.iter
        (fun (_, (o : Trace.origin)) ->
          match Trace.param_index_of_source o.Trace.source with
          | Some i ->
              ctx.param_sinks <-
                ( id,
                  { Summary.ps_index = i; ps_sink_name = sink_name;
                    ps_sink_loc = loc; ps_through = o.Trace.through } )
                :: ctx.param_sinks
          | None -> ())
        params;
      if real <> [] then begin
        let file = if loc.Loc.file = "<none>" then ctx.file else loc.Loc.file in
        let key =
          A.candidate_key ~id ~file ~sink_name ~loc
            ~sources:(List.map (fun (_, o) -> o.Trace.source) real)
        in
        if not (Hashtbl.mem ctx.seen key) then begin
          Hashtbl.add ctx.seen key ();
          ctx.candidates <-
            ( id,
              {
                Trace.vclass = ctx.specs.(id).Cat.vclass;
                file;
                sink_name;
                sink_loc = loc;
                origins = List.map snd real;
                sink_args = args;
                tainted_positions = List.map fst real;
              } )
            :: ctx.candidates
        end
      end

let emit_spec ctx ~id ~sink_name ~loc ~args ~taints =
  let tainted =
    List.filter_map
      (fun (i, t) -> Option.map (fun o -> (i, o)) (Env.find t id))
      taints
  in
  emit_one ctx ~id ~sink_name ~loc ~args ~tainted

(* ------------------------------------------------------------------ *)
(* Guard plans — the walker's [add_guard_to], applied to a precomputed
   plan instead of a re-analyzed condition.                             *)

let add_guard_to ctx env keys gname =
  List.fold_left
    (fun env k ->
      if String.length k > 4 && String.sub k 0 4 = "@sg:" then
        let prev = Env.get env k in
        let v =
          List.map
            (fun id ->
              ( id,
                match Env.find prev id with
                | Some o -> Trace.add_guard o gname
                | None ->
                    Trace.add_guard
                      (Trace.origin ~source:k ~source_loc:Loc.dummy)
                      gname ))
            ctx.all_ids
        in
        Env.set env k v
      else
        match Env.get env k with
        | [] -> env
        | t ->
            Env.set env k (Env.map_origins (fun o -> Trace.add_guard o gname) t))
    env keys

let apply_plan ctx env (plan : Ir.plan) =
  match plan with
  | [] -> env
  | _ ->
      List.fold_left
        (fun env (g : Ir.guard) -> add_guard_to ctx env g.Ir.g_keys g.Ir.g_name)
        env plan

(* ------------------------------------------------------------------ *)
(* Calls.                                                               *)

let ids_of ctx = function Ir.All -> ctx.all_ids | Ir.Only l -> l

let join_all _ctx ~through ~ids taints =
  let t = List.fold_left Env.join_operands Env.clean (List.map snd taints) in
  let t = match ids with Ir.All -> t | Ir.Only l -> Env.restrict t l in
  Env.map_origins (fun o -> Trace.add_through o through) t

let apply_summary ctx loc (fs : Summary.fused) taints arg_exprs ~ids :
    Env.taint =
  List.filter_map
    (fun id ->
      let s = Summary.for_spec fs id in
      List.iter
        (fun (ps : Summary.param_sink) ->
          match List.assoc_opt ps.Summary.ps_index taints with
          | Some tv -> (
              match Env.find tv id with
              | Some o ->
                  let o =
                    List.fold_left Trace.add_through o ps.Summary.ps_through
                  in
                  let o =
                    Trace.add_step o
                      {
                        Trace.step_loc = loc;
                        step_desc =
                          Printf.sprintf "passed to %s()" s.Summary.fn_name;
                      }
                  in
                  emit_one ctx ~id ~sink_name:ps.Summary.ps_sink_name
                    ~loc:ps.Summary.ps_sink_loc ~args:arg_exprs
                    ~tainted:[ (ps.Summary.ps_index, o) ]
              | None -> ())
          | None -> ())
        s.Summary.param_sinks;
      let ret =
        List.fold_left
          (fun acc (i, tv) ->
            match (Env.find tv id, Summary.find_param_flow s i) with
            | Some o, Some pf ->
                let o = List.fold_left Trace.add_through o pf.Summary.pf_through in
                let o = List.fold_left Trace.add_guard o pf.Summary.pf_guards in
                let o = Trace.add_through o s.Summary.fn_name in
                A.join_origin_operands acc o
            | _ -> acc)
          None taints
      in
      let ret =
        match ret with
        | None ->
            Option.map
              (fun (o : Trace.origin) -> { o with Trace.source_loc = loc })
              s.Summary.returns_tainted
        | some -> some
      in
      Option.map (fun o -> (id, o)) ret)
    (ids_of ctx ids)

let summary_or_join ctx loc name ~through taints arg_exprs ~ids =
  match ids with
  | Ir.Only [] -> Env.clean
  | _ -> (
      match Summary.find ctx.summaries name with
      | Some fs -> apply_summary ctx loc fs taints arg_exprs ~ids
      | None -> join_all ctx ~through ~ids taints)

let exec_call ctx loc taints arg_exprs (target : Ir.call_target) : Env.taint =
  match target with
  | Ir.Ct_dynamic -> join_all ctx ~through:"<dynamic>" ~ids:Ir.All taints
  | Ir.Ct_named { fname; through; ids } ->
      summary_or_join ctx loc fname ~through taints arg_exprs ~ids
  | Ir.Ct_fn { lf; src; rest; special } ->
      let src_taint =
        match src with
        | [] -> Env.clean
        | _ -> Env.of_origin ~ids:src (Trace.origin ~source:lf ~source_loc:loc)
      in
      let rest_taint =
        match rest with
        | Ir.Only [] -> Env.clean
        | _ -> (
            match special with
            | Ir.Fs_sprintf parts -> (
                match join_all ctx ~through:lf ~ids:rest taints with
                | [] -> Env.clean
                | t -> Env.map_origins (fun o -> Trace.with_parts o parts) t)
            | Ir.Fs_plain { clean_if_unknown } -> (
                match Summary.find ctx.summaries lf with
                | Some fs -> apply_summary ctx loc fs taints arg_exprs ~ids:rest
                | None ->
                    if clean_if_unknown then Env.clean
                    else join_all ctx ~through:lf ~ids:rest taints))
      in
      Env.overlay src_taint rest_taint

(* ------------------------------------------------------------------ *)
(* Stores — the walker's [assign_to].                                   *)

let rec store_lv env (lv : Ir.lvalue) t =
  match lv with
  | Ir.Lv_var { name; sg_ids } -> (
      match sg_ids with
      | [] -> Env.set env name t
      | _ ->
          let kept = Env.restrict (Env.get env name) sg_ids in
          Env.set env name (Env.overlay kept (Env.without t sg_ids)))
  | Ir.Lv_index base | Ir.Lv_prop base -> (
      match base with
      | Some v -> Env.set env v (Env.join_operands (Env.get env v) t)
      | None -> env)
  | Ir.Lv_list es ->
      List.fold_left
        (fun env lv ->
          match lv with Some lv -> store_lv env lv t | None -> env)
        env es
  | Ir.Lv_skip -> env

(* ------------------------------------------------------------------ *)
(* The instruction sweep.                                               *)

let rec exec_block ctx env bid : Env.t =
  let instrs = ctx.blocks.(bid) in
  let n = Array.length instrs in
  let env = ref env in
  for i = 0 to n - 1 do
    env := exec_instr ctx !env (Array.unsafe_get instrs i)
  done;
  !env

and exec_instr ctx env (i : Ir.instr) : Env.t =
  let tp = ctx.temps in
  match i with
  | Ir.Const { dst } ->
      tp.(dst) <- Env.clean;
      env
  | Ir.Copy { dst; src } ->
      tp.(dst) <- tp.(src);
      env
  | Ir.Load_var { dst; name; sg_ids; loc } ->
      (match sg_ids with
      | [] -> tp.(dst) <- Env.get env name
      | _ ->
          let o = Trace.origin ~source:("$" ^ name) ~source_loc:loc in
          let rest = Env.without (Env.get env name) sg_ids in
          tp.(dst) <- Env.overlay (Env.of_origin ~ids:sg_ids o) rest);
      env
  | Ir.Read_rest { dst; name; sg_ids } ->
      tp.(dst) <- Env.without (Env.get env name) sg_ids;
      env
  | Ir.Sg_index { dst; rest; sg_ids; rendered; loc } ->
      let base = Trace.origin ~source:rendered ~source_loc:loc in
      let prev = Env.get env ("@sg:" ^ rendered) in
      let sg_taint =
        List.map
          (fun id ->
            ( id,
              match Env.find prev id with
              | Some p -> { base with Trace.guards = p.Trace.guards }
              | None -> base ))
          sg_ids
      in
      tp.(dst) <- Env.overlay sg_taint tp.(rest);
      env
  | Ir.Array_get { dst; base } | Ir.Field_get { dst; base } ->
      tp.(dst) <- tp.(base);
      env
  | Ir.Binop { dst; l; r; concat } ->
      let t = Env.join_operands tp.(l) tp.(r) in
      tp.(dst) <-
        (if concat then
           Env.map_origins (fun o -> Trace.add_through o "concat_op") t
         else t);
      env
  | Ir.Join { dst; srcs; mark } ->
      let t =
        List.fold_left (fun acc s -> Env.join_operands acc tp.(s)) Env.clean srcs
      in
      tp.(dst) <-
        (match mark with
        | Some m -> Env.map_origins (fun o -> Trace.add_through o m) t
        | None -> t);
      env
  | Ir.Through { dst; src; name } ->
      tp.(dst) <- Env.map_origins (fun o -> Trace.add_through o name) tp.(src);
      env
  | Ir.Assign_val { dst; rhs; prev; concat; lhs_e; rhs_e; loc } ->
      let t_prev = match prev with None -> Env.clean | Some p -> tp.(p) in
      let t = Env.join_operands t_prev tp.(rhs) in
      let t =
        if concat then
          Env.map_origins (fun o -> Trace.add_through o "concat_op") t
        else t
      in
      let t =
        match t with
        | [] -> Env.clean
        | _ ->
            let step =
              { Trace.step_loc = loc;
                step_desc = A.render_expr lhs_e ^ " = " ^ A.render_expr rhs_e }
            in
            let rps = A.flatten_parts rhs_e in
            Env.map_origins
              (fun o ->
                let o = Trace.add_step o step in
                let parts =
                  if concat then o.Trace.parts @ rps
                  else
                    match rps with
                    | [ Trace.Qdyn ] when o.Trace.parts <> [] -> o.Trace.parts
                    | p -> p
                in
                Trace.with_parts o parts)
              t
      in
      tp.(dst) <- t;
      env
  | Ir.Store_var { src; name; sg_ids } -> (
      let t = tp.(src) in
      match sg_ids with
      | [] -> Env.set env name t
      | _ ->
          let kept = Env.restrict (Env.get env name) sg_ids in
          Env.set env name (Env.overlay kept (Env.without t sg_ids)))
  | Ir.Array_set { src; base } | Ir.Field_set { src; base } -> (
      match base with
      | Some v -> Env.set env v (Env.join_operands (Env.get env v) tp.(src))
      | None -> env)
  | Ir.Store { src; lv } -> store_lv env lv tp.(src)
  | Ir.Sink { name; loc; args; taints; targets } ->
      let tts = List.map (fun (i, tm) -> (i, tp.(tm))) taints in
      List.iter
        (fun (id, positions) ->
          let relevant =
            match positions with
            | [] -> tts
            | ps -> List.filter (fun (i, _) -> List.mem i ps) tts
          in
          emit_spec ctx ~id ~sink_name:name ~loc ~args ~taints:relevant)
        targets;
      env
  | Ir.Call { dst; loc; args; arg_exprs; target } ->
      let tts = List.map (fun (i, tm) -> (i, tp.(tm))) args in
      tp.(dst) <- exec_call ctx loc tts arg_exprs target;
      env
  | Ir.Closure { uses; body } ->
      let inner =
        List.fold_left (fun acc v -> Env.set acc v (Env.get env v)) Env.empty uses
      in
      let saved = ctx.return_taints in
      ctx.return_taints <- [];
      let _ = exec_block ctx inner body in
      ctx.return_taints <- saved;
      env
  | Ir.Ternary { dst; plan_t; plan_f; t_blk; t_res; f_blk; f_res } ->
      let env_t = apply_plan ctx env plan_t in
      let env_f = apply_plan ctx env plan_f in
      let env_t = exec_block ctx env_t t_blk in
      let tt = tp.(t_res) in
      let env_f = exec_block ctx env_f f_blk in
      let tf = tp.(f_res) in
      tp.(dst) <- Env.join tt tf;
      Env.merge env_t env_f
  | Ir.Run { blk } -> exec_block ctx env blk
  | Ir.Loop { enter; body } -> loop_fixpoint ctx env ~enter ~body
  | Ir.If_s { arms; else_ } -> exec_if ctx env arms else_
  | Ir.Switch_s { cases } ->
      let case_envs = List.map (fun b -> exec_block ctx env b) cases in
      List.fold_left Env.merge env case_envs
  | Ir.Try_s { body; catches; fin } -> (
      let env_body = exec_block ctx env body in
      let env_catches = List.map (fun b -> exec_block ctx env b) catches in
      let env' = List.fold_left Env.merge env_body env_catches in
      match fin with Some b -> exec_block ctx env' b | None -> env')
  | Ir.Foreach_bind { subject; subject_e; loc; value_lv; key_lv } -> (
      let t = tp.(subject) in
      let t =
        match t with
        | [] -> Env.clean
        | _ ->
            let step =
              { Trace.step_loc = loc;
                step_desc = "foreach over " ^ A.render_expr subject_e }
            in
            Env.map_origins (fun o -> Trace.add_step o step) t
      in
      let env = store_lv env value_lv t in
      match key_lv with Some k -> store_lv env k t | None -> env)
  | Ir.Return_t { src } ->
      let t = tp.(src) in
      let t_rec =
        if ctx.live == ctx.all_ids then t else Env.restrict t ctx.live
      in
      ctx.return_taints <- t_rec :: ctx.return_taints;
      env
  | Ir.Set_clean { names } ->
      List.fold_left (fun env v -> Env.set env v Env.clean) env names
  | Ir.Store_raw { name; src } -> Env.set env name tp.(src)
  | Ir.Unset_vars { names } -> List.fold_left Env.remove env names

and exec_if ctx env arms else_ : Env.t =
  let branch_outs =
    List.map
      (fun (ar : Ir.arm) ->
        (ar, exec_block ctx (apply_plan ctx env ar.Ir.ar_plan_true) ar.Ir.ar_body))
      arms
  in
  let fallthrough =
    List.fold_left
      (fun e (ar : Ir.arm) ->
        let e = apply_plan ctx e ar.Ir.ar_plan_false in
        match ar.Ir.ar_exit_guards with
        | Some keyss ->
            List.fold_left (fun e keys -> add_guard_to ctx e keys "exit") e keyss
        | None -> e)
      env arms
  in
  let else_env =
    match else_ with
    | Some (b, _) -> Some (exec_block ctx fallthrough b)
    | None -> None
  in
  let live =
    List.filter_map
      (fun ((ar : Ir.arm), env_out) ->
        if ar.Ir.ar_terminates then None else Some env_out)
      branch_outs
  in
  let live =
    match else_ with
    | Some (_, terminates) -> (
        match else_env with
        | Some e when not terminates -> e :: live
        | _ -> live)
    | None -> fallthrough :: live
  in
  match live with
  | [] -> fallthrough
  | first :: rest -> List.fold_left Env.merge first rest

and loop_fixpoint ctx env ~enter ~body : Env.t =
  let saved = ctx.live in
  let rec iterate env frozen live n =
    if live = [] || n = 0 then (env, frozen)
    else begin
      ctx.live <- live;
      let env' = Env.merge env (exec_block ctx (apply_plan ctx env enter) body) in
      let stable, unstable =
        List.partition (fun id -> Env.equal_shallow_for id env env') live
      in
      let frozen = List.map (fun id -> (id, env')) stable @ frozen in
      if unstable = [] then (env', frozen)
      else iterate env' frozen unstable (n - 1)
    end
  in
  let env_final, frozen = iterate env [] saved 3 in
  ctx.live <- saved;
  List.fold_left
    (fun acc (id, e) -> if e == env_final then acc else Env.blend acc ~from:e id)
    env_final frozen

(* ------------------------------------------------------------------ *)
(* Entry points.                                                        *)

let run ~specs ~summaries ~file (body : Ir.body) :
    (int * Trace.candidate) list =
  let all_ids = List.init (Array.length specs) Fun.id in
  let ctx =
    {
      specs;
      all_ids;
      summaries;
      file;
      candidates = [];
      seen = Hashtbl.create 64;
      return_taints = [];
      param_sinks = [];
      live = all_ids;
      temps = Array.make (max 1 body.Ir.ntemps) Env.clean;
      blocks = body.Ir.blocks;
    }
  in
  ignore (exec_block ctx Env.empty body.Ir.entry);
  List.rev ctx.candidates

let analyze_file_toplevel ?memo_key (st : A.project_state)
    ~(units : A.file_unit list) (u : A.file_unit) :
    (int * Trace.candidate) list =
  Wap_obs.Trace.with_span ~cat:"taint" "analyze_toplevel_ir"
    ~args:[ ("file", u.A.path) ]
  @@ fun () ->
  let lower () =
    let program =
      A.splice_includes ~units ~depth:0 ~visited:[ u.A.path ] u.A.program
    in
    Wap_obs.Trace.with_span ~cat:"taint" "lower_file" (fun () ->
        Lower.program ~specs:(A.state_specs st) ~lookup:(A.state_lookup st)
          program)
  in
  let body =
    match memo_key with
    | Some key -> Lower.memoized ~key lower
    | None -> lower ()
  in
  run ~specs:(A.state_specs st) ~summaries:(A.state_summaries st)
    ~file:u.A.path body
