(** The IR taint executor: pass 3 of the fused analysis, retargeted
    from tree walking to flat instruction sweeps.

    The lattice is unchanged — {!Wap_taint.Env}'s sparse per-spec
    origin vectors over a persistent variable map — and the transfer
    function is a per-opcode match over {!Ir.instr}.  Results are
    byte-identical to {!Wap_taint.Analyzer.analyze_file_toplevel}
    (enforced by the [scan-ir-equiv] oracle and the corpus tests). *)

open Wap_taint

(** Execute one lowered scope against fresh state and return its
    candidates (spec-indexed, discovery order), de-duplicated within
    the scope only — exactly the AST path's per-file contract. *)
val run :
  specs:Wap_catalog.Catalog.spec array ->
  summaries:Summary.table ->
  file:string ->
  Ir.body ->
  (int * Trace.candidate) list

(** Drop-in IR replacement for the AST walker's pass-3 step: splice
    includes, lower, execute.  Pure with respect to the state (fresh
    executor context, read-only summaries), so files may run
    concurrently.  [memo_key], when given, caches the lowered body in
    {!Lower.memoized}'s process-wide table — it must cover the spliced
    sources and the spec set (the engine passes its project digest). *)
val analyze_file_toplevel :
  ?memo_key:string ->
  Analyzer.project_state ->
  units:Analyzer.file_unit list ->
  Analyzer.file_unit ->
  (int * Trace.candidate) list
