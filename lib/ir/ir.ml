(** The three-address taint IR.

    A lowered file is a set of instruction blocks over explicit
    temporaries.  Every intermediate value of the PHP program — each
    literal, variable read, operator result, call result — gets a dense
    temporary id; instructions read temporaries and write exactly one
    (or store into the variable environment).  Catalog facts are
    resolved at lowering time: a superglobal read carries the spec ids
    it is an entry point for, a call carries its source/sanitizer/sink
    annotations, a guard refinement carries the precomputed
    [(guard name, guarded keys)] plan.  Executing a block is then a flat
    array sweep with a per-opcode transfer function ({!Exec}) — no tree
    matching, no re-rendering, no catalog lookups.

    {b Lowering invariants} (load-bearing for the byte-identity contract
    with the AST walker, enforced by the [scan-ir-equiv] oracle):

    - Instructions appear in the AST walker's evaluation order; an
      expression's side effects (emissions, environment writes) happen
      at the same point of the sweep as in the walker.
    - Control flow stays {e structured}: a loop is one {!constructor:Loop}
      instruction referencing its body block, an [if]/[elseif] chain one
      {!constructor:If_s} — the executor replays the walker's structural
      merges and its 3-iteration per-spec loop fixpoint exactly, rather
      than a generic CFG fixpoint that would compute a different (if
      sound) result.
    - Every instruction that can emit a candidate or mint an origin
      carries the source location of the AST node it was lowered from,
      so diagnostics, fixes and traces are byte-identical.
    - Strings that only matter on tainted flows (assignment step
      descriptions, [qpart] structure) are lowered lazily and forced at
      most once, where the walker re-renders them per loop iteration. *)

open Wap_php

(** Temporary id, dense within one {!body}.  Temporaries not written by
    any instruction (unreached blocks) read as clean. *)
type temp = int

(** One guard application of a refinement plan: the precomputed effect
    of [refine_true]/[refine_false] on one condition. *)
type guard = { g_name : string; g_keys : string list }

(** Ordered guard applications for entering a branch. *)
type plan = guard list

(** Assignment targets, mirroring the walker's [assign_to] shapes. *)
type lvalue =
  | Lv_var of { name : string; sg_ids : int list }
      (** plain variable; [sg_ids] are the specs for which it is a
          superglobal (those never store) *)
  | Lv_index of string option  (** [$base[...]]: coarse container join *)
  | Lv_prop of string option  (** [$base->p]: coarse container join *)
  | Lv_list of lvalue option list  (** [list(...)] destructuring *)
  | Lv_skip  (** unsupported target: environment unchanged *)

(** A set of spec ids; [All] avoids materializing the full-id case (the
    executor skips the restrict). *)
type idset = All | Only of int list

(** Builtin-specific call behavior, resolved at lowering time. *)
type fn_special =
  | Fs_sprintf of Wap_taint.Trace.qpart list
      (** sprintf/vsprintf: argument taint flows to the result carrying
          the format structure; never a sink, never a summary *)
  | Fs_plain of { clean_if_unknown : bool }
      (** ordinary function; [clean_if_unknown] marks guards and
          return-clean builtins (result clean when no summary exists) *)

type call_target =
  | Ct_dynamic  (** [$f(...)], [$o->$m(...)]: operand join, all specs *)
  | Ct_named of { fname : string; through : string; ids : idset }
      (** method/static call: summary under [fname] or operand join,
          restricted to [ids] (sanitizer/sink specs already peeled) *)
  | Ct_fn of { lf : string; src : int list; rest : idset; special : fn_special }
      (** plain function [lf] (normalized): source taint for [src],
          summary-or-join for [rest]; sink emission is a separate
          {!constructor:Sink} instruction lowered before the call *)

type instr =
  | Const of { dst : temp }  (** literal or other always-clean value *)
  | Copy of { dst : temp; src : temp }
  | Load_var of { dst : temp; name : string; sg_ids : int list; loc : Loc.t }
      (** variable read; for [sg_ids] specs it is a taint source *)
  | Read_rest of { dst : temp; name : string; sg_ids : int list }
      (** the non-superglobal specs' view of [$name], read {e before}
          the index expression of a superglobal access evaluates *)
  | Sg_index of {
      dst : temp;
      rest : temp;
      sg_ids : int list;
      rendered : string;
      loc : Loc.t;
    }
      (** superglobal element read [$_GET['x']]: fresh origin for
          [sg_ids] (picking up ["@sg:"] guards recorded {e after} the
          index evaluated), overlaid on [rest] *)
  | Array_get of { dst : temp; base : temp }  (** element read: base taint *)
  | Field_get of { dst : temp; base : temp }  (** property read: base taint *)
  | Binop of { dst : temp; l : temp; r : temp; concat : bool }
      (** operand join; [concat] adds the ["concat_op"] through mark *)
  | Join of { dst : temp; srcs : temp list; mark : string option }
      (** n-ary operand join (interpolation, array literal, [new]);
          [mark] is an optional through mark applied to the result *)
  | Through of { dst : temp; src : temp; name : string }  (** cast mark *)
  | Assign_val of {
      dst : temp;
      rhs : temp;
      prev : temp option;  (** the lhs value for compound assignments *)
      concat : bool;  (** [.=]: concat mark and qpart append *)
      lhs_e : Ast.expr;  (** rendered into the step only on taint *)
      rhs_e : Ast.expr;
      loc : Loc.t;
    }  (** the assigned value: join, step, qpart bookkeeping *)
  | Store_var of { src : temp; name : string; sg_ids : int list }
  | Array_set of { src : temp; base : string option }
  | Field_set of { src : temp; base : string option }
  | Store of { src : temp; lv : lvalue }  (** compound target ([list]) *)
  | Sink of {
      name : string;
      loc : Loc.t;
      args : Ast.expr list;
      taints : (int * temp) list;  (** argument position -> temp *)
      targets : (int * int list) list;
          (** (spec id, dangerous positions; [] = all) *)
    }
      (** sink check: one candidate per target spec whose component
          survives in a relevant argument.  Covers echo/print/include/
          exit/backticks and catalog function/method sinks. *)
  | Call of {
      dst : temp;
      loc : Loc.t;
      args : (int * temp) list;
      arg_exprs : Ast.expr list;  (** for interprocedural sink evidence *)
      target : call_target;
    }
  | Closure of { uses : string list; body : int }
      (** closure literal: body analyzed in a scope seeded from [uses] *)
  | Ternary of {
      dst : temp;
      plan_t : plan;
      plan_f : plan;
      t_blk : int;
      t_res : temp;
      f_blk : int;
      f_res : temp;
    }  (** value join of both arms, control merge of their envs *)
  | Run of { blk : int }  (** straight-line sub-block (do-while first pass) *)
  | Loop of { enter : plan; body : int }
      (** the 3-iteration per-spec loop fixpoint over [body] *)
  | If_s of { arms : arm list; else_ : (int * bool) option }
      (** if/elseif/else; conditions were evaluated inline just before;
          [else_] carries (block, terminates) *)
  | Switch_s of { cases : int list }
      (** each case block (label eval + body) runs from the pre-switch
          env; merge folds from the pre-switch env *)
  | Try_s of { body : int; catches : int list; fin : int option }
  | Foreach_bind of {
      subject : temp;
      subject_e : Ast.expr;  (** rendered into the step only on taint *)
      loc : Loc.t;
      value_lv : lvalue;
      key_lv : lvalue option;
    }  (** bind loop variables to the subject's taint + step *)
  | Return_t of { src : temp }  (** record return taint (live specs only) *)
  | Set_clean of { names : string list }
  | Store_raw of { name : string; src : temp }  (** static-var init *)
  | Unset_vars of { names : string list }

and arm = {
  ar_plan_true : plan;
  ar_plan_false : plan;
  ar_body : int;
  ar_terminates : bool;  (** body ends in return/throw/break/... *)
  ar_exit_guards : string list list option;
      (** [Some keys] when the body ends in exit/die: the condition's
          guarded keys get the ["exit"] symptom on the fallthrough *)
}

(** One lowered scope (a file's top level, a closure body): blocks
    indexed by id, [entry] first. *)
type body = {
  blocks : instr array array;
  entry : int;
  ntemps : int;
}
