(** AST → IR lowering (see {!Ir} for the invariants).

    The structure below is a transliteration of the AST walker's [eval]/
    [exec_stmt], emitting instructions at the exact points the walker
    would act.  All syntactic helpers (renderings, guard keys, format
    splitting, termination checks) come from {!Wap_taint.Analyzer}'s
    exported primitives — never private copies — so the two paths cannot
    drift apart silently. *)

open Wap_php
module A = Wap_taint.Analyzer
module Trace = Wap_taint.Trace
module VC = Wap_catalog.Vuln_class
module Cat = Wap_catalog.Catalog
module Lookup = Cat.Lookup
module Blocks = Wap_flow.Blocks

type st = {
  specs : Cat.spec array;
  lookup : Lookup.t;
  arena : Ir.instr Blocks.t;
  all_ids : int list;
  mutable ntemps : int;
}

let fresh st =
  let t = st.ntemps in
  st.ntemps <- t + 1;
  t

let push buf i = buf := i :: !buf

(* Sorted-id-set helpers with the same invariants as the analyzer's:
   inputs ascending and duplicate-free; [diff_ids a []] is [a] itself so
   the untouched-spec-set case stays physically equal to [all_ids]. *)
let union_ids a b =
  let rec go a b =
    match (a, b) with
    | [], l | l, [] -> l
    | x :: ta, y :: tb ->
        if x < y then x :: go ta b
        else if y < x then y :: go a tb
        else x :: go ta tb
  in
  go a b

let diff_ids a b = if b = [] then a else List.filter (fun x -> not (List.mem x b)) a

let idset st ids : Ir.idset = if ids == st.all_ids then Ir.All else Ir.Only ids

let arg1 e = { Ast.a_expr = e; a_spread = false }

(* ------------------------------------------------------------------ *)
(* Guard plans: [refine_true]/[refine_false] are purely syntactic over
   the condition, so their guard applications are precomputed here and
   replayed by the executor in the same order.                          *)

let rec plan_true (cond : Ast.expr) : Ir.plan =
  match cond.e with
  | Ast.Binop ((Ast.Bool_and | Ast.Bool_or), a, b) -> plan_true a @ plan_true b
  | Ast.Unop (Ast.Not, a) -> plan_false a
  | Ast.Call (Ast.F_ident f, args) when A.is_guard_fn f ->
      [ { Ir.g_name = A.normalize_fn f; g_keys = A.guarded_keys_of_args args } ]
  | Ast.Isset es ->
      [ { Ir.g_name = "isset";
          g_keys = A.guarded_keys_of_args (List.map arg1 es) } ]
  | Ast.Binop
      ( ( Ast.Eq_eq | Ast.Identical | Ast.Neq | Ast.Not_identical | Ast.Gt
        | Ast.Ge | Ast.Lt | Ast.Le ),
        _,
        _ ) ->
      List.map
        (fun (g, keys) -> { Ir.g_name = g; g_keys = keys })
        (A.guard_calls_in cond)
  | _ -> []

and plan_false (cond : Ast.expr) : Ir.plan =
  match cond.e with
  | Ast.Unop (Ast.Not, a) -> plan_true a
  | Ast.Binop (Ast.Bool_or, a, b) -> plan_false a @ plan_false b
  | Ast.Call (Ast.F_ident f, args)
    when List.mem (A.normalize_fn f) A.set_check_fns ->
      [ { Ir.g_name = A.normalize_fn f; g_keys = A.guarded_keys_of_args args } ]
  | Ast.Empty e1 ->
      [ { Ir.g_name = "empty"; g_keys = A.guarded_keys_of_args [ arg1 e1 ] } ]
  | Ast.Binop ((Ast.Eq_eq | Ast.Identical | Ast.Neq | Ast.Not_identical), _, _)
    ->
      List.map
        (fun (g, keys) -> { Ir.g_name = g; g_keys = keys })
        (A.guard_calls_in cond)
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Lvalues.                                                             *)

let rec lower_lvalue st (lhs : Ast.expr) : Ir.lvalue =
  match lhs.e with
  | Ast.Var v ->
      Ir.Lv_var { name = v; sg_ids = Lookup.superglobal_ids st.lookup v }
  | Ast.Index (base, _) -> Ir.Lv_index (Ast.base_variable base)
  | Ast.Prop (base, _) -> Ir.Lv_prop (Ast.base_variable base)
  | Ast.List es -> Ir.Lv_list (List.map (Option.map (lower_lvalue st)) es)
  | _ -> Ir.Lv_skip

(* Sink targets of a named function, already filtered to the allowed
   spec ids; [(spec id, dangerous positions)]. *)
let fn_sink_targets ?only st name =
  List.filter_map
    (fun (id, _cls, danger) ->
      match only with
      | Some ids when not (List.mem id ids) -> None
      | _ -> Some (id, danger))
    (Lookup.sink_fn_entries st.lookup name)

(* ------------------------------------------------------------------ *)
(* Expressions.  [lx] returns the temp holding the expression's taint;
   instructions are pushed in the walker's evaluation order.            *)

let rec lx st buf (e : Ast.expr) : Ir.temp =
  match e.e with
  | Ast.Int _ | Ast.Float _ | Ast.String _ | Ast.Constant _
  | Ast.Class_const _ | Ast.Static_prop _ ->
      const st buf
  | Ast.Interp parts ->
      let srcs = lower_parts st buf parts in
      (* interpolation into a literal is an implicit concatenation *)
      let mark = match parts with _ :: _ :: _ -> Some "concat_op" | _ -> None in
      let dst = fresh st in
      push buf (Ir.Join { dst; srcs; mark });
      dst
  | Ast.Backtick parts ->
      let srcs = lower_parts st buf parts in
      let t = fresh st in
      push buf (Ir.Join { dst = t; srcs; mark = None });
      push buf
        (Ir.Sink
           { name = "shell_exec"; loc = e.eloc; args = [ e ];
             taints = [ (0, t) ]; targets = fn_sink_targets st "shell_exec" });
      const st buf
  | Ast.Var v ->
      let dst = fresh st in
      push buf
        (Ir.Load_var
           { dst; name = v; sg_ids = Lookup.superglobal_ids st.lookup v;
             loc = e.eloc });
      dst
  | Ast.Var_var inner ->
      ignore (lx st buf inner);
      const st buf
  | Ast.Index ({ e = Ast.Var sg; _ }, idx)
    when Lookup.superglobal_ids st.lookup sg <> [] ->
      let sg_ids = Lookup.superglobal_ids st.lookup sg in
      (* the non-superglobal specs read the base before the index *)
      let rest = fresh st in
      push buf (Ir.Read_rest { dst = rest; name = sg; sg_ids });
      (match idx with Some i -> ignore (lx st buf i) | None -> ());
      let dst = fresh st in
      push buf
        (Ir.Sg_index
           { dst; rest; sg_ids; rendered = A.render_expr e; loc = e.eloc });
      dst
  | Ast.Index (base, idx) ->
      let b = lx st buf base in
      (match idx with Some i -> ignore (lx st buf i) | None -> ());
      let dst = fresh st in
      push buf (Ir.Array_get { dst; base = b });
      dst
  | Ast.Prop (base, _) ->
      let b = lx st buf base in
      let dst = fresh st in
      push buf (Ir.Field_get { dst; base = b });
      dst
  | Ast.Call (callee, args) -> lower_call st buf e.eloc callee args
  | Ast.New (cname, args) ->
      let taints = lower_args st buf args in
      let dst = fresh st in
      push buf
        (Ir.Join
           { dst; srcs = List.map snd taints;
             mark = Some ("new " ^ A.normalize_fn cname) });
      dst
  | Ast.Clone e1 ->
      let src = lx st buf e1 in
      let dst = fresh st in
      push buf (Ir.Copy { dst; src });
      dst
  | Ast.Binop (op, l, r) ->
      let tl = lx st buf l in
      let tr = lx st buf r in
      let dst = fresh st in
      push buf (Ir.Binop { dst; l = tl; r = tr; concat = op = Ast.Concat });
      dst
  | Ast.Unop (_, e1) | Ast.Incdec (_, e1) -> lx st buf e1
  | Ast.Assign (op, lhs, rhs) -> lower_assign st buf e.eloc op lhs rhs
  | Ast.Assign_ref (lhs, rhs) -> lower_assign st buf e.eloc Ast.A_eq lhs rhs
  | Ast.Ternary (c, t_br, f_br) ->
      ignore (lx st buf c);
      let plan_t = plan_true c in
      let plan_f = plan_false c in
      (* `c ?: f` re-evaluates c's value in the true arm *)
      let t_blk, t_res =
        lower_expr_block st (match t_br with Some t -> t | None -> c)
      in
      let f_blk, f_res = lower_expr_block st f_br in
      let dst = fresh st in
      push buf (Ir.Ternary { dst; plan_t; plan_f; t_blk; t_res; f_blk; f_res });
      dst
  | Ast.Cast (c, e1) ->
      let src = lx st buf e1 in
      let dst = fresh st in
      push buf (Ir.Through { dst; src; name = A.cast_name c });
      dst
  | Ast.Isset es ->
      List.iter (fun e1 -> ignore (lx st buf e1)) es;
      const st buf
  | Ast.Empty e1 ->
      ignore (lx st buf e1);
      const st buf
  | Ast.Exit arg ->
      (match arg with
      | Some a ->
          let t = lx st buf a in
          push buf
            (Ir.Sink
               { name = "exit"; loc = e.eloc; args = [ a ]; taints = [ (0, t) ];
                 targets = fn_sink_targets st "exit" })
      | None -> ());
      const st buf
  | Ast.Print e1 ->
      let t = lx st buf e1 in
      push buf
        (Ir.Sink
           { name = "print"; loc = e.eloc; args = [ e1 ]; taints = [ (0, t) ];
             targets = List.map (fun id -> (id, [])) (Lookup.echo_ids st.lookup)
           });
      const st buf
  | Ast.Include (_, e1) ->
      let t = lx st buf e1 in
      push buf
        (Ir.Sink
           { name = "include"; loc = e.eloc; args = [ e1 ];
             taints = [ (0, t) ];
             targets =
               List.map (fun id -> (id, [])) (Lookup.include_ids st.lookup) });
      const st buf
  | Ast.List _ -> const st buf
  | Ast.Array_lit items ->
      let srcs =
        List.rev
          (List.fold_left
             (fun acc (it : Ast.array_item) ->
               (match it.ai_key with
               | Some k -> ignore (lx st buf k)
               | None -> ());
               lx st buf it.ai_value :: acc)
             [] items)
      in
      let dst = fresh st in
      push buf (Ir.Join { dst; srcs; mark = None });
      dst
  | Ast.Closure c ->
      let body = lower_stmts_block st c.cl_body in
      push buf (Ir.Closure { uses = List.map snd c.cl_uses; body });
      const st buf

and const st buf =
  let dst = fresh st in
  push buf (Ir.Const { dst });
  dst

(* interpolated parts: only the expressions produce temps *)
and lower_parts st buf parts =
  List.rev
    (List.fold_left
       (fun acc part ->
         match part with
         | Ast.Ip_str _ -> acc
         | Ast.Ip_expr pe -> lx st buf pe :: acc)
       [] parts)

and lower_expr_block st e =
  let buf = ref [] in
  let res = lx st buf e in
  (finish st buf, res)

and lower_args st buf (args : Ast.arg list) : (int * Ir.temp) list =
  List.rev
    (snd
       (List.fold_left
          (fun (i, acc) (a : Ast.arg) ->
            (i + 1, (i, lx st buf a.Ast.a_expr) :: acc))
          (0, []) args))

and lower_call st buf loc (callee : Ast.callee) (args : Ast.arg list) : Ir.temp
    =
  let taints = lower_args st buf args in
  let arg_exprs = List.map (fun (a : Ast.arg) -> a.Ast.a_expr) args in
  let mk target =
    let dst = fresh st in
    push buf (Ir.Call { dst; loc; args = taints; arg_exprs; target });
    dst
  in
  match callee with
  | Ast.F_method ({ e = Ast.Var obj; _ }, Ast.Mem_ident m)
    when Lookup.sanitizer_method_ids st.lookup obj m <> []
         || Lookup.sanitizer_method_ids st.lookup "*" m <> []
         || Lookup.sink_method_ids st.lookup obj m <> []
         || Lookup.sink_method_ids st.lookup "*" m <> [] ->
      let san =
        union_ids
          (Lookup.sanitizer_method_ids st.lookup obj m)
          (Lookup.sanitizer_method_ids st.lookup "*" m)
      in
      let snk =
        diff_ids
          (union_ids
             (Lookup.sink_method_ids st.lookup obj m)
             (Lookup.sink_method_ids st.lookup "*" m))
          san
      in
      let rest = diff_ids st.all_ids (union_ids san snk) in
      if snk <> [] then
        push buf
          (Ir.Sink
             { name = A.normalize_fn obj ^ "->" ^ A.normalize_fn m; loc;
               args = arg_exprs; taints;
               targets = List.map (fun id -> (id, [])) snk });
      mk
        (Ir.Ct_named
           { fname = m; through = A.normalize_fn m; ids = idset st rest })
  | Ast.F_method (_, Ast.Mem_ident m) ->
      mk (Ir.Ct_named { fname = m; through = A.normalize_fn m; ids = Ir.All })
  | Ast.F_method (_, Ast.Mem_expr _) | Ast.F_var _ -> mk Ir.Ct_dynamic
  | Ast.F_static (c, m) ->
      mk
        (Ir.Ct_named
           { fname = m;
             through = A.normalize_fn c ^ "::" ^ A.normalize_fn m;
             ids = Ir.All })
  | Ast.F_ident f ->
      let lf = A.normalize_fn f in
      let san = Lookup.sanitizer_fn_ids st.lookup lf in
      let src = diff_ids (Lookup.source_fn_ids st.lookup lf) san in
      let rest = diff_ids st.all_ids (union_ids san src) in
      if rest = [] then
        (* sanitizer/source for every spec: no sink check, no summary *)
        mk
          (Ir.Ct_fn
             { lf; src; rest = Ir.Only [];
               special = Ir.Fs_plain { clean_if_unknown = false } })
      else if lf = "sprintf" || lf = "vsprintf" then
        let parts =
          match arg_exprs with
          | { Ast.e = Ast.String fmt; _ } :: _ -> A.split_format fmt
          | _ -> [ Trace.Qdyn ]
        in
        mk (Ir.Ct_fn { lf; src; rest = idset st rest; special = Ir.Fs_sprintf parts })
      else begin
        let only =
          if lf = "preg_replace" then begin
            (* only the /e modifier makes preg_replace a PHP-code sink *)
            let dangerous =
              match arg_exprs with
              | { Ast.e = Ast.String pat; _ } :: _ ->
                  String.length pat > 0 && pat.[String.length pat - 1] = 'e'
              | _ -> true
            in
            if dangerous then rest
            else
              List.filter (fun id -> st.specs.(id).Cat.vclass <> VC.Phpci) rest
          end
          else rest
        in
        (match fn_sink_targets ~only st lf with
        | [] -> ()
        | targets ->
            push buf (Ir.Sink { name = lf; loc; args = arg_exprs; taints; targets }));
        let clean_if_unknown = A.is_guard_fn lf || List.mem lf A.return_clean_fns in
        mk
          (Ir.Ct_fn
             { lf; src; rest = idset st rest;
               special = Ir.Fs_plain { clean_if_unknown } })
      end

and lower_assign st buf loc op (lhs : Ast.expr) (rhs : Ast.expr) : Ir.temp =
  let t_rhs = lx st buf rhs in
  (* compound assignment reads the lhs after the rhs *)
  let prev = match op with Ast.A_eq -> None | _ -> Some (lx st buf lhs) in
  let concat = op = Ast.A_concat in
  let dst = fresh st in
  push buf
    (Ir.Assign_val
       { dst; rhs = t_rhs; prev; concat; lhs_e = lhs; rhs_e = rhs; loc });
  (match lower_lvalue st lhs with
  | Ir.Lv_var { name; sg_ids } -> push buf (Ir.Store_var { src = dst; name; sg_ids })
  | Ir.Lv_index base -> push buf (Ir.Array_set { src = dst; base })
  | Ir.Lv_prop base -> push buf (Ir.Field_set { src = dst; base })
  | Ir.Lv_skip -> ()
  | Ir.Lv_list _ as lv -> push buf (Ir.Store { src = dst; lv }));
  dst

(* ------------------------------------------------------------------ *)
(* Statements.                                                          *)

and lower_stmt st buf (s : Ast.stmt) : unit =
  match s.s with
  | Ast.Expr_stmt e -> ignore (lx st buf e)
  | Ast.Echo es ->
      let targets =
        List.map (fun id -> (id, [])) (Lookup.echo_ids st.lookup)
      in
      List.iter
        (fun e ->
          let t = lx st buf e in
          if targets <> [] then
            push buf
              (Ir.Sink
                 { name = "echo"; loc = s.sloc; args = [ e ];
                   taints = [ (0, t) ]; targets }))
        es
  | Ast.If (branches, els) ->
      (* conditions evaluate for side effects before any branch runs *)
      List.iter (fun (c, _) -> ignore (lx st buf c)) branches;
      let arms =
        List.map
          (fun (cond, body) ->
            { Ir.ar_plan_true = plan_true cond;
              ar_plan_false = plan_false cond;
              ar_body = lower_stmts_block st body;
              ar_terminates = A.terminates body;
              ar_exit_guards =
                (if A.terminates_with_exit body then
                   Some (List.map snd (A.guard_calls_in cond))
                 else None) })
          branches
      in
      let else_ =
        Option.map (fun body -> (lower_stmts_block st body, A.terminates body)) els
      in
      push buf (Ir.If_s { arms; else_ })
  | Ast.While (cond, body) ->
      ignore (lx st buf cond);
      push buf (Ir.Loop { enter = plan_true cond; body = lower_stmts_block st body })
  | Ast.Do_while (body, cond) ->
      let b = lower_stmts_block st body in
      push buf (Ir.Run { blk = b });
      ignore (lx st buf cond);
      push buf (Ir.Loop { enter = plan_true cond; body = b })
  | Ast.For (init, conds, steps, body) ->
      List.iter (fun e -> ignore (lx st buf e)) init;
      List.iter (fun e -> ignore (lx st buf e)) conds;
      push buf (Ir.Loop { enter = []; body = lower_stmts_block st body });
      List.iter (fun e -> ignore (lx st buf e)) steps
  | Ast.Foreach (subject, binding, body) ->
      let t = lx st buf subject in
      push buf
        (Ir.Foreach_bind
           { subject = t; subject_e = subject; loc = s.sloc;
             value_lv = lower_lvalue st binding.Ast.fe_value;
             key_lv = Option.map (lower_lvalue st) binding.Ast.fe_key });
      push buf (Ir.Loop { enter = []; body = lower_stmts_block st body })
  | Ast.Switch (subject, cases) ->
      ignore (lx st buf subject);
      let case_blocks =
        List.map
          (fun case ->
            lower_block st (fun buf ->
                match case with
                | Ast.Case (e, body) ->
                    ignore (lx st buf e);
                    List.iter (lower_stmt st buf) body
                | Ast.Default body -> List.iter (lower_stmt st buf) body))
          cases
      in
      push buf (Ir.Switch_s { cases = case_blocks })
  | Ast.Return (Some e) ->
      let t = lx st buf e in
      push buf (Ir.Return_t { src = t })
  | Ast.Return None -> ()
  | Ast.Break _ | Ast.Continue _ | Ast.Inline_html _ | Ast.Nop
  | Ast.Const_def _ ->
      ()
  | Ast.Global vs -> push buf (Ir.Set_clean { names = vs })
  | Ast.Static_vars vs ->
      List.iter
        (fun (v, init) ->
          match init with
          | Some e ->
              let t = lx st buf e in
              push buf (Ir.Store_raw { name = v; src = t })
          | None -> push buf (Ir.Set_clean { names = [ v ] }))
        vs
  | Ast.Unset es ->
      let names =
        List.filter_map
          (fun e -> match e.Ast.e with Ast.Var v -> Some v | _ -> None)
          es
      in
      if names <> [] then push buf (Ir.Unset_vars { names })
  | Ast.Throw e -> ignore (lx st buf e)
  | Ast.Try (body, catches, fin) ->
      let b = lower_stmts_block st body in
      let cs =
        List.map
          (fun (c : Ast.catch) ->
            lower_block st (fun buf ->
                (match c.Ast.c_var with
                | Some v -> push buf (Ir.Set_clean { names = [ v ] })
                | None -> ());
                List.iter (lower_stmt st buf) c.Ast.c_body))
          catches
      in
      push buf
        (Ir.Try_s
           { body = b; catches = cs; fin = Option.map (lower_stmts_block st) fin })
  | Ast.Func_def _ | Ast.Class_def _ ->
      (* bodies are separate scopes, analyzed by passes 1–2 *)
      ()
  | Ast.Block body -> List.iter (lower_stmt st buf) body

and lower_block st f =
  let buf = ref [] in
  f buf;
  finish st buf

and lower_stmts_block st stmts =
  lower_block st (fun buf -> List.iter (lower_stmt st buf) stmts)

and finish st buf = Blocks.add st.arena (Array.of_list (List.rev !buf))

(* ------------------------------------------------------------------ *)
(* Entry point.                                                         *)

let program ~specs ~lookup (prog : Ast.program) : Ir.body =
  let st =
    { specs; lookup; arena = Blocks.create ();
      all_ids = List.init (Lookup.nspecs lookup) Fun.id; ntemps = 0 }
  in
  let entry = lower_stmts_block st prog in
  { Ir.blocks = Blocks.freeze st.arena; entry; ntemps = st.ntemps }

(* ------------------------------------------------------------------ *)
(* Process-wide memo.  A file's lowered body is a pure function of its
   spliced source and the spec set, so repeated scans of unchanged
   inputs (warm rescans, the experiment harness, a long-lived process)
   skip lowering entirely.  Callers supply the key — the engine derives
   it from its project digest, which covers every spliced file and the
   active specs.  Domain-safe: pass 3 fans files out over domains. *)

let memo : (string, Ir.body) Hashtbl.t = Hashtbl.create 256
let memo_mutex = Mutex.create ()

(* hard cap so a daemon scanning many distinct projects cannot grow the
   table without bound; reset is simpler than LRU and the rebuild cost
   after a flush is one lowering per live file *)
let memo_cap = 4096

let memoized ~key (build : unit -> Ir.body) : Ir.body =
  let hit =
    Mutex.protect memo_mutex (fun () -> Hashtbl.find_opt memo key)
  in
  match hit with
  | Some body -> body
  | None ->
      let body = build () in
      Mutex.protect memo_mutex (fun () ->
          if Hashtbl.length memo >= memo_cap then Hashtbl.reset memo;
          Hashtbl.replace memo key body);
      body
