(** AST → IR lowering.

    Resolves every catalog fact (superglobals, sources, sanitizers,
    sinks, guard plans, printf formats) once, at lowering time, and
    freezes the walker's evaluation order into flat instruction blocks.
    See {!Ir} for the invariants the output upholds. *)

open Wap_php

(** Lower one program (a file's top level, includes already spliced).
    [specs]/[lookup] must be the ones the candidates will be emitted
    under — annotations embed spec ids. *)
val program :
  specs:Wap_catalog.Catalog.spec array ->
  lookup:Wap_catalog.Catalog.Lookup.t ->
  Ast.program ->
  Ir.body

(** [memoized ~key build] returns the body cached under [key], calling
    [build] on the first request.  The table is process-wide,
    domain-safe, and capped (flushed wholesale when full).  [key] must
    cover everything the body depends on: the spliced sources and the
    active spec set — the engine uses its project digest. *)
val memoized : key:string -> (unit -> Ir.body) -> Ir.body
