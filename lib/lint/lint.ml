(** The lint driver: build the flow substrate once, run every rule. *)

let compare_diag (a : Rule.diag) (b : Rule.diag) =
  let c = Wap_php.Loc.compare a.Rule.loc b.Rule.loc in
  if c <> 0 then c else compare a.Rule.rule b.Rule.rule

(** Run [rules] (default: built-ins plus everything {!Rule.register}ed)
    over one parsed file.  Diagnostics come back in source order. *)
let run ?rules ~file (program : Wap_php.Ast.program) : Rule.diag list =
  let rules =
    match rules with Some rs -> rs | None -> Rules.builtin @ Rule.registered ()
  in
  let ctx = Rule.make_ctx ~file program in
  List.concat_map (fun (r : Rule.t) -> r.Rule.check ctx) rules
  |> List.stable_sort compare_diag

(** All rules available to {!run} by default. *)
let all_rules () = Rules.builtin @ Rule.registered ()
