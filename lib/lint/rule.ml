(** The pluggable lint-rule interface.

    A rule inspects one file's program — with the control-flow and
    reachability facts already computed per scope — and returns
    diagnostics.  Rules are values: the shipped ones live in {!Rules},
    and clients add their own with {!register}, the same way weapons add
    detectors without touching the engine. *)

open Wap_php

type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type diag = {
  rule : string;  (** the rule's [id] *)
  severity : severity;
  loc : Loc.t;
  message : string;
}

(** One scope with its flow substrate, shared by every rule so the CFG
    is built once per scope, not once per rule. *)
type scope_info = {
  scope : Wap_flow.Scope.t;
  cfg : Wap_flow.Cfg.t;
  reachable : bool array;
}

type ctx = {
  file : string;
  program : Ast.program;
  scopes : scope_info list;
}

type t = {
  id : string;  (** kebab-case, e.g. ["no-undef-var"] *)
  doc : string;  (** one-line description *)
  check : ctx -> diag list;
}

let make_ctx ~file (program : Ast.program) : ctx =
  let scopes =
    List.map
      (fun (scope : Wap_flow.Scope.t) ->
        let cfg = Wap_flow.Cfg.of_stmts scope.Wap_flow.Scope.body in
        { scope; cfg; reachable = Wap_flow.Reach.solve cfg })
      (Wap_flow.Scope.of_program program)
  in
  { file; program; scopes }

(* ------------------------------------------------------------------ *)
(* Registry of user-added rules.                                       *)

let registered_rules : t list ref = ref []

(** Add a rule; it runs after the built-in ones on every subsequent
    {!Lint.run}.  Registering an id twice replaces the earlier rule. *)
let register (r : t) : unit =
  registered_rules :=
    r :: List.filter (fun r' -> r'.id <> r.id) !registered_rules

let registered () = List.rev !registered_rules
