(** The built-in lint rules.

    Each rule is a {!Rule.t} value over the shared flow substrate:
    reachability marks dead code, reaching definitions back the
    undefined-variable check, and liveness backs the dead-sanitization
    check.  The sink and sanitizer vocabularies come from the same
    catalog the detectors use, so a weapon that teaches the analyzer a
    new sink automatically teaches the linter too. *)

open Wap_php
module Cat = Wap_catalog.Catalog
module VC = Wap_catalog.Vuln_class
module Cfg = Wap_flow.Cfg
module Use_def = Wap_flow.Use_def

let normalize = String.lowercase_ascii

(* ------------------------------------------------------------------ *)
(* Catalog-derived vocabularies.                                       *)

let all_specs =
  lazy (Cat.specs_for VC.all_builtin @ [ Wap_catalog.Wordpress.wpsqli_spec () ])

let sanitizer_fns =
  lazy
    (List.filter_map
       (function Cat.San_fn f -> Some (normalize f) | Cat.San_method _ -> None)
       (List.concat_map (fun (s : Cat.spec) -> s.Cat.sanitizers) (Lazy.force all_specs)))

let sanitizer_methods =
  lazy
    (List.filter_map
       (function
         | Cat.San_method (o, m) -> Some (normalize o, normalize m)
         | Cat.San_fn _ -> None)
       (List.concat_map (fun (s : Cat.spec) -> s.Cat.sanitizers) (Lazy.force all_specs)))

let sink_fns =
  lazy
    (List.filter_map
       (function Cat.Sink_fn (f, _) -> Some (normalize f) | _ -> None)
       (List.concat_map (fun (s : Cat.spec) -> s.Cat.sinks) (Lazy.force all_specs)))

let sink_methods =
  lazy
    (List.filter_map
       (function
         | Cat.Sink_method (o, m) -> Some (normalize o, normalize m)
         | _ -> None)
       (List.concat_map (fun (s : Cat.spec) -> s.Cat.sinks) (Lazy.force all_specs)))

(* ------------------------------------------------------------------ *)
(* Shared helpers.                                                     *)

let in_function (si : Rule.scope_info) =
  match si.Rule.scope.Wap_flow.Scope.name with
  | Some f -> Printf.sprintf " in function %s()" f
  | None -> ""

(* the expressions evaluated by one CFG element *)
let elem_exprs = function
  | Cfg.Elem_stmt s -> Visitor.stmt_exprs s
  | Cfg.Elem_cond e -> [ e ]
  | Cfg.Elem_foreach (subject, _) -> [ subject ]
  | Cfg.Elem_catch _ -> []

let dedup_diags diags =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (d : Rule.diag) ->
      let k = (d.Rule.rule, d.Rule.loc.Loc.line, d.Rule.loc.Loc.col, d.Rule.message) in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    diags

(* ------------------------------------------------------------------ *)
(* no-undef-var: use of a variable with no reaching definition.        *)

(* Variables probed by isset/empty anywhere in the scope: using one
   after such a probe is deliberate optional-input handling, not a bug
   the rule should shout about. *)
let probed_vars (body : Ast.stmt list) =
  let tbl = Hashtbl.create 8 in
  let probe (e : Ast.expr) =
    match Ast.base_variable e with
    | Some v -> Hashtbl.replace tbl v ()
    | None -> ()
  in
  Visitor.fold_stmts_with_expr
    (fun () (e : Ast.expr) ->
      match e.Ast.e with
      | Ast.Isset es -> List.iter probe es
      | Ast.Empty e1 -> probe e1
      | _ -> ())
    () body;
  tbl

let undef_var : Rule.t =
  {
    Rule.id = "no-undef-var";
    doc = "use of a variable that has no reaching definition";
    check =
      (fun ctx ->
        List.concat_map
          (fun (si : Rule.scope_info) ->
            let reaching =
              Wap_flow.Reaching.analyze
                ~params:si.Rule.scope.Wap_flow.Scope.params si.Rule.cfg
            in
            let probed = probed_vars si.Rule.scope.Wap_flow.Scope.body in
            let diags = ref [] in
            Array.iter
              (fun (blk : Cfg.block) ->
                if si.Rule.reachable.(blk.Cfg.bid) then
                  Wap_flow.Reaching.fold_block reaching blk.Cfg.bid ~init:()
                    ~f:(fun () defs elem ->
                      let same_elem_defs =
                        List.map
                          (fun (d : Use_def.def) -> d.Use_def.d_var)
                          (Use_def.defs_of_elem elem)
                      in
                      List.iter
                        (fun v ->
                          if
                            (not (Wap_flow.Reaching.defines defs v))
                            && (not (List.mem v same_elem_defs))
                            && not (Hashtbl.mem probed v)
                          then
                            diags :=
                              {
                                Rule.rule = "no-undef-var";
                                severity = Rule.Error;
                                loc = Cfg.elem_loc elem;
                                message =
                                  Printf.sprintf
                                    "use of undefined variable $%s%s" v
                                    (in_function si);
                              }
                              :: !diags)
                        (Use_def.uses_of_elem elem)))
              si.Rule.cfg.Cfg.blocks;
            List.rev !diags)
          ctx.Rule.scopes
        |> dedup_diags);
  }

(* ------------------------------------------------------------------ *)
(* no-unreachable: statement in a block no path reaches.               *)

let unreachable : Rule.t =
  {
    Rule.id = "no-unreachable";
    doc = "statement that no control path reaches";
    check =
      (fun ctx ->
        List.concat_map
          (fun (si : Rule.scope_info) ->
            Array.to_list si.Rule.cfg.Cfg.blocks
            |> List.filter_map (fun (blk : Cfg.block) ->
                   if si.Rule.reachable.(blk.Cfg.bid) then None
                   else
                     (* first substantive element of the dead block *)
                     List.find_map
                       (fun elem ->
                         match elem with
                         | Cfg.Elem_stmt
                             {
                               Ast.s =
                                 ( Ast.Nop | Ast.Inline_html _
                                 (* declarations are hoisted, not dead *)
                                 | Ast.Func_def _ | Ast.Class_def _ );
                               _;
                             }
                         | Cfg.Elem_catch _ ->
                             None
                         | _ ->
                             Some
                               {
                                 Rule.rule = "no-unreachable";
                                 severity = Rule.Warning;
                                 loc = Cfg.elem_loc elem;
                                 message =
                                   Printf.sprintf "unreachable code%s"
                                     (in_function si);
                               })
                       blk.Cfg.elems))
          ctx.Rule.scopes
        |> dedup_diags);
  }

(* ------------------------------------------------------------------ *)
(* no-dead-sanitizer: sanitization result overwritten before any use.  *)

let sanitizer_call_name (e : Ast.expr) : string option =
  match e.Ast.e with
  | Ast.Call (Ast.F_ident f, _) when List.mem (normalize f) (Lazy.force sanitizer_fns)
    ->
      Some (normalize f)
  | Ast.Call (Ast.F_method ({ e = Ast.Var obj; _ }, Ast.Mem_ident m), _) ->
      let key = (normalize obj, normalize m) in
      let meths = Lazy.force sanitizer_methods in
      if List.mem key meths || List.mem ("*", normalize m) meths then
        Some (normalize obj ^ "->" ^ normalize m)
      else None
  | _ -> None

let dead_sanitizer : Rule.t =
  {
    Rule.id = "no-dead-sanitizer";
    doc = "sanitization result that is overwritten or dropped before use";
    check =
      (fun ctx ->
        List.concat_map
          (fun (si : Rule.scope_info) ->
            let live = Wap_flow.Live.analyze si.Rule.cfg in
            let diags = ref [] in
            Array.iter
              (fun (blk : Cfg.block) ->
                if si.Rule.reachable.(blk.Cfg.bid) then
                  Wap_flow.Live.fold_block_rev live blk.Cfg.bid ~init:()
                    ~f:(fun () live_after elem ->
                      match elem with
                      | Cfg.Elem_stmt
                          {
                            Ast.s =
                              Ast.Expr_stmt
                                {
                                  e =
                                    Ast.Assign
                                      (Ast.A_eq, { e = Ast.Var x; _ }, rhs);
                                  _;
                                };
                            sloc;
                          } -> (
                          match sanitizer_call_name rhs with
                          | Some fn
                            when not (Wap_flow.Live.VarSet.mem x live_after) ->
                              diags :=
                                {
                                  Rule.rule = "no-dead-sanitizer";
                                  severity = Rule.Warning;
                                  loc = sloc;
                                  message =
                                    Printf.sprintf
                                      "result of %s() stored in $%s is never \
                                       used (overwritten or dropped)%s"
                                      fn x (in_function si);
                                }
                                :: !diags
                          | _ -> ())
                      | _ -> ()))
              si.Rule.cfg.Cfg.blocks;
            List.rev !diags)
          ctx.Rule.scopes
        |> dedup_diags);
  }

(* ------------------------------------------------------------------ *)
(* no-assign-in-cond: assignment where a comparison was meant.         *)

(* an assignment in decision position: the condition itself, or a
   member of its &&/||/! skeleton — `($x = f()) !== false` is the
   deliberate idiom and is not matched *)
let rec decision_assign (e : Ast.expr) : Ast.expr option =
  match e.Ast.e with
  | Ast.Assign _ -> Some e
  | Ast.Binop ((Ast.Bool_and | Ast.Bool_or), l, r) -> (
      match decision_assign l with
      | Some a -> Some a
      | None -> decision_assign r)
  | Ast.Unop (Ast.Not, e1) -> decision_assign e1
  | _ -> None

let assign_in_cond : Rule.t =
  {
    Rule.id = "no-assign-in-cond";
    doc = "assignment used as an if/ternary condition (did you mean ==?)";
    check =
      (fun ctx ->
        let diags = ref [] in
        let flag (cond : Ast.expr) =
          match decision_assign cond with
          | Some a ->
              diags :=
                {
                  Rule.rule = "no-assign-in-cond";
                  severity = Rule.Warning;
                  loc = a.Ast.eloc;
                  message =
                    Printf.sprintf
                      "assignment '%s' used as a condition — did you mean a \
                       comparison?"
                      (Printer.expr_to_string a);
                }
                :: !diags
          | None -> ()
        in
        let rec walk_stmt (s : Ast.stmt) =
          (match s.Ast.s with
          | Ast.If (branches, _) -> List.iter (fun (c, _) -> flag c) branches
          | _ -> ());
          (* ternary conditions anywhere in the statement's expressions *)
          List.iter
            (fun e ->
              Visitor.fold_expr
                (fun () (e1 : Ast.expr) ->
                  match e1.Ast.e with
                  | Ast.Ternary (c, _, _) -> flag c
                  | _ -> ())
                () e)
            (Visitor.stmt_exprs s);
          List.iter walk_stmt (Visitor.sub_stmts s)
        in
        List.iter
          (fun (si : Rule.scope_info) ->
            (* only the top-level scope walks statements directly;
               function bodies are reached through their own scope *)
            match si.Rule.scope.Wap_flow.Scope.name with
            | None -> List.iter walk_stmt si.Rule.scope.Wap_flow.Scope.body
            | Some _ -> List.iter walk_stmt si.Rule.scope.Wap_flow.Scope.body)
          ctx.Rule.scopes;
        dedup_diags (List.rev !diags));
  }

(* ------------------------------------------------------------------ *)
(* no-dead-sink: a sensitive sink inside unreachable code.             *)

let dead_sink : Rule.t =
  {
    Rule.id = "no-dead-sink";
    doc = "sensitive sink inside unreachable code";
    check =
      (fun ctx ->
        let fns = Lazy.force sink_fns and meths = Lazy.force sink_methods in
        let diags = ref [] in
        let flag loc name (si : Rule.scope_info) =
          diags :=
            {
              Rule.rule = "no-dead-sink";
              severity = Rule.Warning;
              loc;
              message =
                Printf.sprintf
                  "sensitive sink %s can never execute (unreachable code)%s"
                  name (in_function si);
            }
            :: !diags
        in
        let scan_expr si (e : Ast.expr) =
          Visitor.fold_expr
            (fun () (e1 : Ast.expr) ->
              match e1.Ast.e with
              | Ast.Call (Ast.F_ident f, _) when List.mem (normalize f) fns ->
                  flag e1.Ast.eloc (normalize f ^ "()") si
              | Ast.Call (Ast.F_method ({ e = Ast.Var obj; _ }, Ast.Mem_ident m), _)
                when List.mem (normalize obj, normalize m) meths
                     || List.mem ("*", normalize m) meths ->
                  flag e1.Ast.eloc
                    (Printf.sprintf "$%s->%s()" (normalize obj) (normalize m))
                    si
              | Ast.Print _ -> flag e1.Ast.eloc "print" si
              | Ast.Include (_, _) -> flag e1.Ast.eloc "include/require" si
              | Ast.Backtick _ -> flag e1.Ast.eloc "`...` (shell)" si
              | _ -> ())
            () e
        in
        let scan_elem si elem =
          (match elem with
          | Cfg.Elem_stmt ({ Ast.s = Ast.Echo _; _ } as s) ->
              flag s.Ast.sloc "echo" si
          | _ -> ());
          List.iter (scan_expr si) (elem_exprs elem);
          (* nested statements of a dead compound statement *)
          match elem with
          | Cfg.Elem_stmt s ->
              List.iter
                (fun sub ->
                  List.iter (scan_expr si) (Visitor.stmt_exprs sub))
                (Visitor.sub_stmts s)
          | _ -> ()
        in
        List.iter
          (fun (si : Rule.scope_info) ->
            Array.iter
              (fun (blk : Cfg.block) ->
                if not si.Rule.reachable.(blk.Cfg.bid) then
                  List.iter (scan_elem si) blk.Cfg.elems)
              si.Rule.cfg.Cfg.blocks)
          ctx.Rule.scopes;
        dedup_diags (List.rev !diags));
  }

(** The shipped rules, in reporting order. *)
let builtin : Rule.t list =
  [ undef_var; unreachable; dead_sanitizer; assign_in_cond; dead_sink ]
