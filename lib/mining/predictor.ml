(** The false-positive predictor (Fig. 3): collects symptoms from a
    candidate, builds the attribute vector, and classifies it with the
    top-3 ensemble.

    Two stock configurations exist, matching the two tool versions:
    - {!original_config}: 16 attributes, classifiers LR + Random Tree +
      SVM (WAP v2.1);
    - {!extended_config}: 61 attributes, classifiers SVM + LR + Random
      Forest (WAPe). *)

type config = {
  mode : Attributes.mode;
  algorithms : Classifier.algorithm list;  (** the top-3 ensemble *)
  dynamic_symptoms : Symptom.dynamic_map;
}

let original_config =
  {
    mode = Attributes.Original;
    algorithms = [ Logistic.algorithm; Random_tree.algorithm; Svm.algorithm ];
    dynamic_symptoms = [];
  }

let extended_config =
  {
    mode = Attributes.Extended;
    algorithms = [ Svm.algorithm; Logistic.algorithm; Random_forest.algorithm ];
    dynamic_symptoms = [];
  }

let with_dynamic_symptoms config map =
  { config with dynamic_symptoms = config.dynamic_symptoms @ map }

type t = {
  config : config;
  models : Classifier.model list;
}

(** Train the ensemble on a labelled data set (must be in the same
    attribute mode as the config). *)
let train ?(seed = 42) (config : config) (d : Dataset.t) : t =
  Wap_obs.Trace.with_span ~cat:"mining" "predictor.train"
    ~args:[ ("instances", string_of_int (Dataset.size d)) ]
  @@ fun () ->
  if d.Dataset.mode <> config.mode then
    invalid_arg "Predictor.train: dataset attribute mode mismatch";
  { config; models = List.map (fun a -> a.Classifier.train ~seed d) config.algorithms }

(** Majority vote of the top-3 ensemble: is the candidate a false
    positive? *)
let is_false_positive (p : t) (c : Wap_taint.Trace.candidate) : bool =
  Wap_obs.Trace.with_span ~cat:"mining" "predictor.classify" @@ fun () ->
  let ev = Evidence.collect ~dynamic:p.config.dynamic_symptoms c in
  let x = Attributes.vector_of_evidence p.config.mode ev in
  let votes =
    List.length (List.filter (fun m -> Classifier.predict m x) p.models)
  in
  votes * 2 > List.length p.models

(** Ensemble confidence that the candidate is a false positive. *)
let fp_score (p : t) (c : Wap_taint.Trace.candidate) : float =
  let ev = Evidence.collect ~dynamic:p.config.dynamic_symptoms c in
  let x = Attributes.vector_of_evidence p.config.mode ev in
  match p.models with
  | [] -> 0.5
  | models ->
      List.fold_left (fun acc m -> acc +. Classifier.score m x) 0.0 models
      /. float_of_int (List.length models)

(** The symptoms the predictor saw for a candidate — used to justify FP
    verdicts to the user (the "justifying false positives" box of
    Fig. 3). *)
let justification (p : t) (c : Wap_taint.Trace.candidate) : string list =
  Evidence.to_list (Evidence.collect ~dynamic:p.config.dynamic_symptoms c)

(** Split candidates into predicted false positives and predicted real
    vulnerabilities (the latter are handed to the code corrector). *)
let triage (p : t) (candidates : Wap_taint.Trace.candidate list) :
    Wap_taint.Trace.candidate list * Wap_taint.Trace.candidate list =
  List.partition (is_false_positive p) candidates
