(** Monotonic nanosecond clock: wall clock plus a global high-water mark
    shared by all domains, so readings never decrease. *)

let high_water : int64 Atomic.t = Atomic.make 0L

let now_ns () : int64 =
  let t = Int64.of_float (Unix.gettimeofday () *. 1e9) in
  let prev = Atomic.get high_water in
  if Int64.compare t prev >= 0 then begin
    (* a lost race just means another domain advanced the mark further;
       [t] is still >= the mark we read, so monotonicity holds *)
    ignore (Atomic.compare_and_set high_water prev t);
    t
  end
  else prev

let elapsed_ns since = Int64.sub (now_ns ()) since
let ns_to_us ns = Int64.to_float ns /. 1e3
let ns_to_s ns = Int64.to_float ns /. 1e9
