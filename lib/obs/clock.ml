(** Monotonic nanosecond clock: wall clock plus a global high-water mark
    shared by all domains, so readings never decrease. *)

let high_water : int Atomic.t = Atomic.make 0

let now_ns () : int =
  let t = int_of_float (Unix.gettimeofday () *. 1e9) in
  let prev = Atomic.get high_water in
  if t >= prev then begin
    (* a lost race just means another domain advanced the mark further;
       [t] is still >= the mark we read, so monotonicity holds *)
    ignore (Atomic.compare_and_set high_water prev t);
    t
  end
  else prev

let elapsed_ns since = now_ns () - since
let ns_to_us ns = float_of_int ns /. 1e3
let ns_to_s ns = float_of_int ns /. 1e9

(* Raw reading without the high-water exchange: for per-event call
   sites that maintain their own (domain-local) monotonic floor and
   must not touch a shared cache line on every event. *)
let raw_ns () : int = int_of_float (Unix.gettimeofday () *. 1e9)
