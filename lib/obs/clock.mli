(** A monotonic nanosecond clock for spans and phase timings.

    Built on [Unix.gettimeofday] guarded by a global high-water mark, so
    successive readings never decrease even if the system clock steps
    backwards — the property Chrome trace events need ([ts + dur] of a
    child must stay inside its parent).

    Readings are native [int] nanoseconds: 63 bits hold ~292 years of
    nanoseconds, and keeping the value immediate (unboxed) makes a clock
    read allocation-free aside from the [gettimeofday] float — which
    matters because every traced span reads the clock twice. *)

(** Nanoseconds since an arbitrary epoch; never decreases. *)
val now_ns : unit -> int

(** [elapsed_ns since] is [now_ns () - since]. *)
val elapsed_ns : int -> int

val ns_to_us : int -> float
val ns_to_s : int -> float

(** [raw_ns ()] reads the wall clock with no monotonicity guarantee and
    no shared state — a plain [gettimeofday].  For hot paths that keep
    their own per-domain floor (see [Trace]); everything else should use
    {!now_ns}. *)
val raw_ns : unit -> int
