(** A monotonic nanosecond clock for spans and phase timings.

    Built on [Unix.gettimeofday] guarded by a global high-water mark, so
    successive readings never decrease even if the system clock steps
    backwards — the property Chrome trace events need ([ts + dur] of a
    child must stay inside its parent). *)

(** Nanoseconds since an arbitrary epoch; never decreases. *)
val now_ns : unit -> int64

(** [elapsed_ns since] is [now_ns () - since]. *)
val elapsed_ns : int64 -> int64

val ns_to_us : int64 -> float
val ns_to_s : int64 -> float
