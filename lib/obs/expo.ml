(** Prometheus text-format exposition of a {!Metrics} registry, plus
    the strict parser the tests and [wap top] read it back with. *)

(* ------------------------------------------------------------------ *)
(* Name and label plumbing.                                            *)

(* Prometheus metric names admit [a-zA-Z0-9_:] only; everything else
   (dots, slashes, spaces of the registry's free-form names) maps to
   '_'.  The mapping is lossy by design — the [families] table keeps
   the interesting tail (spec, method) as a label instead. *)
let sanitize (name : string) : string =
  let b = Buffer.create (String.length name + 4) in
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> Buffer.add_char b c
      | '0' .. '9' ->
          if i = 0 then Buffer.add_char b '_';
          Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let escape_label_value (s : string) : string =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Registry names with these prefixes are exposed as ONE metric family
   with the name's tail as a label value — the Prometheus modeling of
   "the same measurement, partitioned": per-detector candidate counts
   become [wap_engine_candidates_total{spec="..."}], per-method request
   latencies [wap_serve_request_seconds_bucket{method="...",le="..."}]. *)
let default_families =
  [
    ("engine.candidates.", "spec");
    ("serve.request_seconds.", "method");
    ("serve.errors.", "method");
    ("serve.requests.", "method");
  ]

(* (metric base name, extra labels) for a raw registry name. *)
let resolve ~families (raw : string) : string * (string * string) list =
  let matching =
    List.filter
      (fun (prefix, _) ->
        String.length raw > String.length prefix
        && String.sub raw 0 (String.length prefix) = prefix)
      families
  in
  (* longest prefix wins, so nested families behave predictably *)
  match
    List.sort
      (fun (a, _) (b, _) -> compare (String.length b) (String.length a))
      matching
  with
  | (prefix, label) :: _ ->
      let n = String.length prefix in
      let tail = String.sub raw n (String.length raw - n) in
      (* the prefix ends with the separator dot: drop it from the base *)
      ("wap_" ^ sanitize (String.sub prefix 0 (n - 1)), [ (label, tail) ])
  | [] -> ("wap_" ^ sanitize raw, [])

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label_value v))
             labels)
      ^ "}"

(* Values print integral when they are, shortest-roundtrip otherwise —
   Prometheus parses both. *)
let fmt_value (v : float) : string =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    let s = Printf.sprintf "%.15g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)

type typ = Counter | Gauge | Histogram

let type_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

(* One family: every raw metric that resolved to the same base name,
   rendered under a single # HELP/# TYPE pair (Prometheus requires all
   samples of a metric to be contiguous). *)
let render_family buf ~base ~typ (lines : string list) =
  Printf.bprintf buf "# HELP %s wap metric %s\n" base base;
  Printf.bprintf buf "# TYPE %s %s\n" base (type_name typ);
  List.iter (Buffer.add_string buf) lines

let prometheus ?(families = default_families) (r : Metrics.registry) : string
    =
  let snap = Metrics.snapshot r in
  (* group (base, typ) -> sample lines, preserving the registry's
     name-sorted order within and across groups *)
  let order = ref [] in
  let groups : (string * typ, string list ref) Hashtbl.t = Hashtbl.create 16 in
  let add ~base ~typ line =
    match Hashtbl.find_opt groups (base, typ) with
    | Some l -> l := line :: !l
    | None ->
        Hashtbl.add groups (base, typ) (ref [ line ]);
        order := (base, typ) :: !order
  in
  List.iter
    (fun (raw, v) ->
      let base, labels = resolve ~families raw in
      let base = base ^ "_total" in
      add ~base ~typ:Counter
        (Printf.sprintf "%s%s %d\n" base (render_labels labels) v))
    snap.Metrics.counters;
  List.iter
    (fun (raw, v) ->
      let base, labels = resolve ~families raw in
      add ~base ~typ:Gauge
        (Printf.sprintf "%s%s %s\n" base (render_labels labels) (fmt_value v)))
    snap.Metrics.gauges;
  List.iter
    (fun (raw, (h : Metrics.hist_snapshot)) ->
      let base, labels = resolve ~families raw in
      let cum = ref 0 in
      let bucket_lines =
        List.concat
          [
            List.mapi
              (fun i limit ->
                cum := !cum + h.Metrics.h_counts.(i);
                Printf.sprintf "%s_bucket%s %d\n" base
                  (render_labels (labels @ [ ("le", fmt_value limit) ]))
                  !cum)
              (Array.to_list h.Metrics.h_buckets);
            [
              Printf.sprintf "%s_bucket%s %d\n" base
                (render_labels (labels @ [ ("le", "+Inf") ]))
                h.Metrics.h_count;
              Printf.sprintf "%s_sum%s %s\n" base (render_labels labels)
                (fmt_value h.Metrics.h_sum);
              Printf.sprintf "%s_count%s %d\n" base (render_labels labels)
                h.Metrics.h_count;
            ];
          ]
      in
      List.iter (add ~base ~typ:Histogram) bucket_lines)
    snap.Metrics.histograms;
  let buf = Buffer.create 4096 in
  List.iter
    (fun (base, typ) ->
      let lines = List.rev !(Hashtbl.find groups (base, typ)) in
      render_family buf ~base ~typ lines)
    (List.rev !order);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Strict parser.                                                      *)

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

type parsed = {
  p_samples : sample list;  (** document order *)
  p_types : (string * string) list;  (** [# TYPE] lines, document order *)
}

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
  | _ -> false

let parse_name line i0 =
  let n = String.length line in
  let rec go i = if i < n && is_name_char line.[i] then go (i + 1) else i in
  let j = go i0 in
  if j = i0 then Error (Printf.sprintf "expected a metric name at column %d" i0)
  else Ok (String.sub line i0 (j - i0), j)

(* one {k="v",...} block; strict about quoting and escapes *)
let parse_labels line i0 =
  let n = String.length line in
  let rec entries i acc =
    match parse_name line i with
    | Error e -> Error e
    | Ok (k, i) ->
        if i >= n || line.[i] <> '=' then Error "expected '=' after label name"
        else if i + 1 >= n || line.[i + 1] <> '"' then
          Error "expected '\"' after label '='"
        else
          let b = Buffer.create 16 in
          let rec value i =
            if i >= n then Error "unterminated label value"
            else
              match line.[i] with
              | '"' -> Ok (i + 1)
              | '\\' ->
                  if i + 1 >= n then Error "dangling escape in label value"
                  else (
                    (match line.[i + 1] with
                    | '\\' -> Buffer.add_char b '\\'
                    | '"' -> Buffer.add_char b '"'
                    | 'n' -> Buffer.add_char b '\n'
                    | c ->
                        Buffer.add_char b '\\';
                        Buffer.add_char b c);
                    value (i + 2))
              | c ->
                  Buffer.add_char b c;
                  value (i + 1)
          in
          (match value (i + 2) with
          | Error e -> Error e
          | Ok i ->
              let acc = (k, Buffer.contents b) :: acc in
              if i < n && line.[i] = ',' then entries (i + 1) acc
              else if i < n && line.[i] = '}' then Ok (List.rev acc, i + 1)
              else Error "expected ',' or '}' after label value")
  in
  entries i0 []

let parse_sample line =
  match parse_name line 0 with
  | Error e -> Error e
  | Ok (name, i) -> (
      let labels_result =
        if i < String.length line && line.[i] = '{' then
          parse_labels line (i + 1)
        else Ok ([], i)
      in
      match labels_result with
      | Error e -> Error e
      | Ok (labels, i) ->
          let rest = String.trim (String.sub line i (String.length line - i)) in
          if rest = "" then Error "missing sample value"
          else
            let value =
              match rest with
              | "+Inf" -> Some infinity
              | "-Inf" -> Some neg_infinity
              | "NaN" -> Some nan
              | s -> float_of_string_opt s
            in
            (match value with
            | None -> Error (Printf.sprintf "unparseable value %S" rest)
            | Some v -> Ok { s_name = name; s_labels = labels; s_value = v }))

let parse_text (text : string) : (parsed, string) result =
  let lines = String.split_on_char '\n' text in
  let rec go lineno samples types = function
    | [] -> Ok { p_samples = List.rev samples; p_types = List.rev types }
    | line :: rest -> (
        let fail msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
        if line = "" then
          if rest = [] then go (lineno + 1) samples types rest
          else fail "blank line inside the document"
        else if String.length line >= 1 && line.[0] = '#' then
          match String.split_on_char ' ' line with
          | "#" :: "TYPE" :: name :: [ typ ] ->
              if not (String.for_all is_name_char name) then
                fail (Printf.sprintf "invalid metric name %S in # TYPE" name)
              else if
                not (List.mem typ [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
              then fail (Printf.sprintf "unknown type %S" typ)
              else go (lineno + 1) samples ((name, typ) :: types) rest
          | "#" :: "HELP" :: name :: _ ->
              if not (String.for_all is_name_char name) then
                fail (Printf.sprintf "invalid metric name %S in # HELP" name)
              else go (lineno + 1) samples types rest
          | _ -> fail (Printf.sprintf "malformed comment line %S" line)
        else
          match parse_sample line with
          | Error e -> fail e
          | Ok s -> go (lineno + 1) (s :: samples) types rest)
  in
  if text = "" then Ok { p_samples = []; p_types = [] }
  else if text.[String.length text - 1] <> '\n' then
    Error "document does not end with a newline"
  else go 1 [] [] lines

(* ------------------------------------------------------------------ *)
(* Process facts for the status document.                              *)

(* VmRSS from /proc/self/status (Linux); [None] elsewhere. *)
let rss_bytes () : int option =
  match open_in "/proc/self/status" with
  | exception _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec scan () =
            match input_line ic with
            | exception End_of_file -> None
            | line ->
                let prefix = "VmRSS:" in
                if
                  String.length line > String.length prefix
                  && String.sub line 0 (String.length prefix) = prefix
                then
                  (* the value is "\t  NNN kB": split on any blank *)
                  let fields =
                    String.split_on_char ' '
                      (String.map
                         (fun c -> if c = '\t' then ' ' else c)
                         (String.sub line (String.length prefix)
                            (String.length line - String.length prefix)))
                    |> List.filter (fun s -> s <> "")
                  in
                  match fields with
                  | kb :: _ ->
                      Option.map (fun n -> n * 1024) (int_of_string_opt kb)
                  | [] -> None
                else scan ()
          in
          scan ())
