(** Prometheus text-format exposition of a {!Metrics} registry.

    {!prometheus} renders every counter, gauge and histogram of a
    registry as one Prometheus text-format (0.0.4) document: counters
    with the [_total] suffix, histograms as cumulative
    [_bucket{le="..."}] series closed by [le="+Inf"] plus [_sum] and
    [_count].  Registry names are free-form (dots, slashes, spaces);
    exposition sanitizes them to the Prometheus charset and, for known
    partitioned families (per-spec candidate counts, per-method request
    latencies), lifts the name's tail into a label so the family stays
    one metric.

    {!parse_text} is the deliberately strict reader of that format used
    by the test suite (round-trip proofs: escaping, bucket
    cumulativity, [_sum]/[_count] consistency) and by [wap top] (which
    rebuilds histogram snapshots from scraped buckets to compute
    quantiles client-side). *)

(** [(prefix, label_name)]: registry names starting with [prefix]
    (which must end at a ["."] separator) are exposed as one metric
    named after the prefix, with the remainder of the name as the value
    of label [label_name]. *)
val default_families : (string * string) list

(** Render the registry's current state as a Prometheus text document.
    Metric names get a [wap_] namespace prefix.  Ends with a newline;
    empty registries render to the empty string. *)
val prometheus : ?families:(string * string) list -> Metrics.registry -> string

(** One sample line, unescaped. *)
type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

type parsed = {
  p_samples : sample list;  (** document order *)
  p_types : (string * string) list;  (** [# TYPE] lines, document order *)
}

(** Strict parse of a Prometheus text document: every line must be a
    well-formed [# HELP]/[# TYPE] comment or sample, label values must
    be quoted with only the three standard escapes, values must parse
    as floats ([+Inf]/[-Inf]/[NaN] included), and the document must end
    with a newline.  Returns [Error "line N: ..."] on the first
    violation. *)
val parse_text : string -> (parsed, string) result

(** This process's resident set size in bytes, read from
    [/proc/self/status] ([None] where unavailable). *)
val rss_bytes : unit -> int option
