(** Leveled structured logger: text or JSONL lines on a configurable
    writer (stderr by default), mutex-protected across domains. *)

type level = Debug | Info | Warn | Error | Quiet

type format = Text | Json

let severity = function
  | Debug -> 0
  | Info -> 1
  | Warn -> 2
  | Error -> 3
  | Quiet -> 4

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"
  | Quiet -> "quiet"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | "quiet" | "none" | "off" -> Some Quiet
  | _ -> None

let format_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "text" -> Some Text
  | "json" | "jsonl" -> Some Json
  | _ -> None

let cur_level = Atomic.make Info
let cur_format = Atomic.make Text

let set_level l = Atomic.set cur_level l
let level () = Atomic.get cur_level
let set_format f = Atomic.set cur_format f
let format () = Atomic.get cur_format

let default_writer line =
  output_string stderr line;
  flush stderr

let writer = Atomic.make default_writer
let set_writer w = Atomic.set writer w
let reset_writer () = Atomic.set writer default_writer

let enabled l = severity l >= severity (Atomic.get cur_level) && l <> Quiet

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit_lock = Mutex.create ()

let render_text l fields msg =
  let b = Buffer.create 80 in
  let now = Unix.gettimeofday () in
  let tm = Unix.localtime now in
  Buffer.add_string b
    (Printf.sprintf "wap %02d:%02d:%02d [%-5s] %s" tm.Unix.tm_hour
       tm.Unix.tm_min tm.Unix.tm_sec (level_name l) msg);
  if fields <> [] then begin
    Buffer.add_string b " (";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ' ';
        Buffer.add_string b k;
        Buffer.add_char b '=';
        Buffer.add_string b v)
      fields;
    Buffer.add_char b ')'
  end;
  Buffer.add_char b '\n';
  Buffer.contents b

let render_json l fields msg =
  let b = Buffer.create 120 in
  Buffer.add_string b
    (Printf.sprintf "{\"ts\":%.6f,\"level\":\"%s\",\"msg\":\"%s\""
       (Unix.gettimeofday ()) (level_name l) (json_escape msg));
  List.iter
    (fun (k, v) ->
      Buffer.add_string b
        (Printf.sprintf ",\"%s\":\"%s\"" (json_escape k) (json_escape v)))
    fields;
  Buffer.add_string b "}\n";
  Buffer.contents b

let log l ?(fields = []) msg =
  if enabled l then begin
    let line =
      match Atomic.get cur_format with
      | Text -> render_text l fields msg
      | Json -> render_json l fields msg
    in
    Mutex.lock emit_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock emit_lock)
      (fun () -> (Atomic.get writer) line)
  end

let debug ?fields msg = log Debug ?fields msg
let info ?fields msg = log Info ?fields msg
let warn ?fields msg = log Warn ?fields msg
let error ?fields msg = log Error ?fields msg
