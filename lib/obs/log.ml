(** Leveled structured logger: text or JSONL lines on a configurable
    writer (stderr by default), mutex-protected across domains. *)

type level = Debug | Info | Warn | Error | Quiet

type format = Text | Json

let severity = function
  | Debug -> 0
  | Info -> 1
  | Warn -> 2
  | Error -> 3
  | Quiet -> 4

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"
  | Quiet -> "quiet"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | "quiet" | "none" | "off" -> Some Quiet
  | _ -> None

let format_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "text" -> Some Text
  | "json" | "jsonl" -> Some Json
  | _ -> None

let cur_level = Atomic.make Info
let cur_format = Atomic.make Text

let set_level l = Atomic.set cur_level l
let level () = Atomic.get cur_level
let set_format f = Atomic.set cur_format f
let format () = Atomic.get cur_format

let default_writer line =
  output_string stderr line;
  flush stderr

let writer = Atomic.make default_writer
let set_writer w = Atomic.set writer w
let reset_writer () = Atomic.set writer default_writer

let enabled l = severity l >= severity (Atomic.get cur_level) && l <> Quiet

(* Wall-clock timestamps: off by default (the interactive formats stay
   short), turned on by daemons so log lines correlate with traces and
   scrapes.  Text lines gain a full ISO-8601 UTC date-time; JSONL
   lines gain a ["time"] field beside the epoch ["ts"]. *)
let cur_timestamps = Atomic.make false
let set_timestamps b = Atomic.set cur_timestamps b
let timestamps () = Atomic.get cur_timestamps

let iso8601 now =
  let tm = Unix.gmtime now in
  let millis = int_of_float (Float.rem now 1.0 *. 1000.0) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec millis

(* Ambient context: per-domain (key, value) fields appended to every
   line emitted inside [with_context] — how a request id reaches the
   log lines of everything a request triggers without threading it
   through each call site.  Domain-local, so worker domains never see
   (or race on) the serving domain's context. *)
let dls_context : (string * string) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let context () = !(Domain.DLS.get dls_context)

let with_context fields f =
  let r = Domain.DLS.get dls_context in
  let saved = !r in
  r := saved @ fields;
  Fun.protect ~finally:(fun () -> r := saved) f

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit_lock = Mutex.create ()

let render_text l fields msg =
  let b = Buffer.create 80 in
  let now = Unix.gettimeofday () in
  let clock =
    if Atomic.get cur_timestamps then iso8601 now
    else
      let tm = Unix.localtime now in
      Printf.sprintf "%02d:%02d:%02d" tm.Unix.tm_hour tm.Unix.tm_min
        tm.Unix.tm_sec
  in
  Buffer.add_string b
    (Printf.sprintf "wap %s [%-5s] %s" clock (level_name l) msg);
  if fields <> [] then begin
    Buffer.add_string b " (";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ' ';
        Buffer.add_string b k;
        Buffer.add_char b '=';
        Buffer.add_string b v)
      fields;
    Buffer.add_char b ')'
  end;
  Buffer.add_char b '\n';
  Buffer.contents b

let render_json l fields msg =
  let b = Buffer.create 120 in
  let now = Unix.gettimeofday () in
  Buffer.add_string b
    (Printf.sprintf "{\"ts\":%.6f,\"level\":\"%s\",\"msg\":\"%s\"" now
       (level_name l) (json_escape msg));
  if Atomic.get cur_timestamps then
    Buffer.add_string b (Printf.sprintf ",\"time\":\"%s\"" (iso8601 now));
  List.iter
    (fun (k, v) ->
      Buffer.add_string b
        (Printf.sprintf ",\"%s\":\"%s\"" (json_escape k) (json_escape v)))
    fields;
  Buffer.add_string b "}\n";
  Buffer.contents b

let log l ?(fields = []) msg =
  if enabled l then begin
    let fields = fields @ context () in
    let line =
      match Atomic.get cur_format with
      | Text -> render_text l fields msg
      | Json -> render_json l fields msg
    in
    Mutex.lock emit_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock emit_lock)
      (fun () -> (Atomic.get writer) line)
  end

let debug ?fields msg = log Debug ?fields msg
let info ?fields msg = log Info ?fields msg
let warn ?fields msg = log Warn ?fields msg
let error ?fields msg = log Error ?fields msg
