(** Leveled structured logger.

    Every message carries a level, a text body and optional [(key,
    value)] fields, and is written as one line to the configured writer
    (stderr by default) — never to stdout, so machine-readable data
    output ([--json]) is never interleaved with diagnostics.

    Two output formats exist: human text
    ([wap: \[warn\] message (key=value ...)]) and JSONL (one JSON object
    per line with [ts], [level], [msg] and the fields).  Emission is
    mutex-protected, so lines from concurrent domains never tear. *)

type level = Debug | Info | Warn | Error | Quiet

type format = Text | Json

val set_level : level -> unit
val level : unit -> level

(** [level_of_string "debug"|"info"|"warn"|"error"|"quiet"]. *)
val level_of_string : string -> level option

val level_name : level -> string

val set_format : format -> unit
val format : unit -> format

(** [format_of_string "text"|"json"]. *)
val format_of_string : string -> format option

(** Replace the line writer (default: [prerr_string] + flush).  The
    writer receives whole lines including the trailing newline; used by
    tests to capture output. *)
val set_writer : (string -> unit) -> unit

(** Restore the default stderr writer. *)
val reset_writer : unit -> unit

(** Would a message at this level be emitted? Guards expensive field
    construction at call sites. *)
val enabled : level -> bool

(** With timestamps on (daemon mode; default off), text lines carry a
    full ISO-8601 UTC date-time instead of the short local clock, and
    JSONL lines gain a ["time"] ISO-8601 field beside the epoch
    ["ts"] — so daemon logs correlate with traces and scrapes across
    days. *)
val set_timestamps : bool -> unit

val timestamps : unit -> bool

(** [with_context fields f] appends [fields] to every line logged while
    [f] runs in this domain (nests; restored even on raise).  The
    server wraps each request in
    [with_context [("rid", ...); ("method", ...)]] so every log line it
    triggers is attributable without plumbing. *)
val with_context : (string * string) list -> (unit -> 'a) -> 'a

(** The current domain's ambient context fields. *)
val context : unit -> (string * string) list

val debug : ?fields:(string * string) list -> string -> unit
val info : ?fields:(string * string) list -> string -> unit
val warn : ?fields:(string * string) list -> string -> unit
val error : ?fields:(string * string) list -> string -> unit

(** Escape a string per RFC 8259 (shared with the trace writer). *)
val json_escape : string -> string
