(** Striped atomic counters and fixed-bucket histograms with
    merge-on-read. *)

(* Power of two; cells are picked by [domain id land (shards - 1)].
   More shards than typical worker counts, so two domains rarely share
   a cell. *)
let shards = 16

let shard_index () = (Domain.self () :> int) land (shards - 1)

type counter = { c_name : string; c_cells : int Atomic.t array }

(* Gauges are last-writer-wins, not accumulating, so one atomic cell is
   enough: striping would only complicate the merge (which cell holds
   the latest value?). *)
type gauge = { g_name : string; g_cell : float Atomic.t }

(* Histogram sums are kept in integer microunits (1e-6 of the observed
   value) so they can use the same lock-free fetch-and-add as counts;
   63-bit ints leave ~292k years of headroom for second-valued
   observations. *)
type histogram = {
  h_name : string;
  h_limits : float array;
  h_cells : int Atomic.t array array;  (** [shard].(bucket), +1 overflow *)
  h_sums : int Atomic.t array;  (** [shard], microunits *)
}

type registry = {
  r_lock : Mutex.t;
  r_counters : (string, counter) Hashtbl.t;
  r_gauges : (string, gauge) Hashtbl.t;
  r_histograms : (string, histogram) Hashtbl.t;
}

let create_registry () =
  {
    r_lock = Mutex.create ();
    r_counters = Hashtbl.create 16;
    r_gauges = Hashtbl.create 16;
    r_histograms = Hashtbl.create 16;
  }

let global = create_registry ()

let locked r f =
  Mutex.lock r.r_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.r_lock) f

let atomic_cells n = Array.init n (fun _ -> Atomic.make 0)

let counter ?(registry = global) name : counter =
  locked registry (fun () ->
      match Hashtbl.find_opt registry.r_counters name with
      | Some c -> c
      | None ->
          let c = { c_name = name; c_cells = atomic_cells shards } in
          Hashtbl.add registry.r_counters name c;
          c)

let incr ?(by = 1) (c : counter) =
  ignore (Atomic.fetch_and_add c.c_cells.(shard_index ()) by)

let value (c : counter) =
  Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.c_cells

let gauge ?(registry = global) name : gauge =
  locked registry (fun () ->
      match Hashtbl.find_opt registry.r_gauges name with
      | Some g -> g
      | None ->
          let g = { g_name = name; g_cell = Atomic.make 0.0 } in
          Hashtbl.add registry.r_gauges name g;
          g)

let set (g : gauge) v = Atomic.set g.g_cell v
let gauge_value (g : gauge) = Atomic.get g.g_cell

let default_buckets =
  [| 1e-4; 1e-3; 5e-3; 0.025; 0.1; 0.5; 1.0; 5.0; 30.0 |]

let histogram ?(registry = global) ?(buckets = default_buckets) name :
    histogram =
  locked registry (fun () ->
      match Hashtbl.find_opt registry.r_histograms name with
      | Some h -> h
      | None ->
          let limits = Array.copy buckets in
          let h =
            {
              h_name = name;
              h_limits = limits;
              h_cells =
                Array.init shards (fun _ ->
                    atomic_cells (Array.length limits + 1));
              h_sums = atomic_cells shards;
            }
          in
          Hashtbl.add registry.r_histograms name h;
          h)

let bucket_of (h : histogram) v =
  let n = Array.length h.h_limits in
  let rec find i = if i >= n || v <= h.h_limits.(i) then i else find (i + 1) in
  find 0

let observe (h : histogram) (v : float) =
  let s = shard_index () in
  ignore (Atomic.fetch_and_add h.h_cells.(s).(bucket_of h v) 1);
  ignore (Atomic.fetch_and_add h.h_sums.(s) (int_of_float (v *. 1e6)))

type hist_snapshot = {
  h_buckets : float array;
  h_counts : int array;
  h_count : int;
  h_sum : float;
}

let hist_snapshot (h : histogram) : hist_snapshot =
  let nbuckets = Array.length h.h_limits + 1 in
  let counts = Array.make nbuckets 0 in
  Array.iter
    (fun cells ->
      Array.iteri (fun i c -> counts.(i) <- counts.(i) + Atomic.get c) cells)
    h.h_cells;
  let sum_micro =
    Array.fold_left (fun acc s -> acc + Atomic.get s) 0 h.h_sums
  in
  {
    h_buckets = Array.copy h.h_limits;
    h_counts = counts;
    h_count = Array.fold_left ( + ) 0 counts;
    h_sum = float_of_int sum_micro /. 1e6;
  }

(* Interpolated quantile from the bucket counts, the way Prometheus's
   [histogram_quantile] reads the same data: find the bucket holding
   the q-th observation, then interpolate linearly inside it (the lower
   edge of the first bucket is 0, of the overflow bucket the last
   bound).  The overflow bucket has no upper edge, so its answer clamps
   to the last finite bound — the resolution limit of the chosen
   buckets, like Prometheus. *)
let quantile_of_snapshot (s : hist_snapshot) (q : float) : float =
  if s.h_count = 0 then nan
  else
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int s.h_count in
    let nlimits = Array.length s.h_buckets in
    let rec find i cum =
      if i >= nlimits then nlimits
      else
        let cum = cum + s.h_counts.(i) in
        if float_of_int cum >= rank && s.h_counts.(i) > 0 then i
        else find (i + 1) cum
    in
    let i = find 0 0 in
    if i >= nlimits then if nlimits = 0 then nan else s.h_buckets.(nlimits - 1)
    else
      let lo = if i = 0 then 0.0 else s.h_buckets.(i - 1) in
      let hi = s.h_buckets.(i) in
      let below = ref 0 in
      for j = 0 to i - 1 do
        below := !below + s.h_counts.(j)
      done;
      let inside = s.h_counts.(i) in
      if inside = 0 then hi
      else
        let frac = (rank -. float_of_int !below) /. float_of_int inside in
        lo +. ((hi -. lo) *. Float.max 0.0 (Float.min 1.0 frac))

let quantile (h : histogram) (q : float) : float =
  quantile_of_snapshot (hist_snapshot h) q

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

let snapshot (r : registry) : snapshot =
  let counters, gauges, histograms =
    locked r (fun () ->
        ( Hashtbl.fold (fun k c acc -> (k, c) :: acc) r.r_counters [],
          Hashtbl.fold (fun k g acc -> (k, g) :: acc) r.r_gauges [],
          Hashtbl.fold (fun k h acc -> (k, h) :: acc) r.r_histograms [] ))
  in
  let by_name (a, _) (b, _) = String.compare a b in
  {
    counters =
      List.sort by_name (List.map (fun (k, c) -> (k, value c)) counters);
    gauges =
      List.sort by_name (List.map (fun (k, g) -> (k, gauge_value g)) gauges);
    histograms =
      List.sort by_name
        (List.map (fun (k, h) -> (k, hist_snapshot h)) histograms);
  }

let reset (r : registry) =
  locked r (fun () ->
      Hashtbl.iter
        (fun _ c -> Array.iter (fun cell -> Atomic.set cell 0) c.c_cells)
        r.r_counters;
      Hashtbl.iter (fun _ g -> Atomic.set g.g_cell 0.0) r.r_gauges;
      Hashtbl.iter
        (fun _ h ->
          Array.iter (Array.iter (fun cell -> Atomic.set cell 0)) h.h_cells;
          Array.iter (fun s -> Atomic.set s 0) h.h_sums)
        r.r_histograms)
