(** Atomic counters and fixed-bucket histograms.

    Each metric stripes its cells over a small array of atomics indexed
    by the emitting domain's id, so concurrent domains rarely contend on
    one cache line; reading ({!value}, {!snapshot}) merges the
    per-domain cells — the "merge at scan end" of the scan pipeline.
    Updates are lock-free and never lost, whatever [--jobs] is.

    Metrics live in a registry keyed by name; {!counter} / {!histogram}
    find-or-create, so instrumentation sites can look a metric up by
    name without coordinating.  The default registry is {!global}; tests
    create private ones. *)

type registry

(** A fresh, empty registry. *)
val create_registry : unit -> registry

(** The process-wide registry the pipeline's instrumentation records
    into. *)
val global : registry

(** {2 Counters} *)

type counter

(** Find or create the named counter. *)
val counter : ?registry:registry -> string -> counter

val incr : ?by:int -> counter -> unit

(** Merged value over all per-domain cells. *)
val value : counter -> int

(** {2 Histograms} *)

type histogram

(** Default bucket upper bounds, in seconds: 100us .. 30s,
    roughly logarithmic. *)
val default_buckets : float array

(** Find or create the named histogram.  [buckets] (ascending upper
    bounds) is only consulted on creation; an implicit overflow bucket
    catches everything above the last bound. *)
val histogram : ?registry:registry -> ?buckets:float array -> string -> histogram

val observe : histogram -> float -> unit

type hist_snapshot = {
  h_buckets : float array;  (** upper bounds, ascending *)
  h_counts : int array;  (** per bucket, one extra overflow slot *)
  h_count : int;  (** total observations *)
  h_sum : float;  (** sum of observed values *)
}

val hist_snapshot : histogram -> hist_snapshot

(** {2 Registry-wide views} *)

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  histograms : (string * hist_snapshot) list;  (** sorted by name *)
}

val snapshot : registry -> snapshot

(** Zero every cell of every metric (the metrics stay registered). *)
val reset : registry -> unit
