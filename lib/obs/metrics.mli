(** Atomic counters and fixed-bucket histograms.

    Each metric stripes its cells over a small array of atomics indexed
    by the emitting domain's id, so concurrent domains rarely contend on
    one cache line; reading ({!value}, {!snapshot}) merges the
    per-domain cells — the "merge at scan end" of the scan pipeline.
    Updates are lock-free and never lost, whatever [--jobs] is.

    Metrics live in a registry keyed by name; {!counter} / {!histogram}
    find-or-create, so instrumentation sites can look a metric up by
    name without coordinating.  The default registry is {!global}; tests
    create private ones. *)

type registry

(** A fresh, empty registry. *)
val create_registry : unit -> registry

(** The process-wide registry the pipeline's instrumentation records
    into. *)
val global : registry

(** {2 Counters} *)

type counter

(** Find or create the named counter. *)
val counter : ?registry:registry -> string -> counter

val incr : ?by:int -> counter -> unit

(** Merged value over all per-domain cells. *)
val value : counter -> int

(** {2 Gauges} *)

(** A last-writer-wins instantaneous value (open documents, RSS,
    generation counter) — unlike counters it can go down, so reads
    return the latest {!set}, not a merge. *)
type gauge

(** Find or create the named gauge (initial value [0.]). *)
val gauge : ?registry:registry -> string -> gauge

val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {2 Histograms} *)

type histogram

(** Default bucket upper bounds, in seconds: 100us .. 30s,
    roughly logarithmic. *)
val default_buckets : float array

(** Find or create the named histogram.  [buckets] (ascending upper
    bounds) is only consulted on creation; an implicit overflow bucket
    catches everything above the last bound. *)
val histogram : ?registry:registry -> ?buckets:float array -> string -> histogram

val observe : histogram -> float -> unit

type hist_snapshot = {
  h_buckets : float array;  (** upper bounds, ascending *)
  h_counts : int array;  (** per bucket, one extra overflow slot *)
  h_count : int;  (** total observations *)
  h_sum : float;  (** sum of observed values *)
}

val hist_snapshot : histogram -> hist_snapshot

(** [quantile h q] estimates the [q]-quantile ([0.5] = median, [0.95] =
    p95) of the observed values by linear interpolation inside the
    bucket that holds the q-th observation — exactly how Prometheus's
    [histogram_quantile] reads the same buckets.  Clamps to the last
    finite bound when the quantile falls in the overflow bucket; [nan]
    on an empty histogram. *)
val quantile : histogram -> float -> float

(** {!quantile} over an already-taken snapshot (used by consumers that
    only have exposition data, e.g. [wap top]). *)
val quantile_of_snapshot : hist_snapshot -> float -> float

(** {2 Registry-wide views} *)

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;  (** sorted by name *)
  histograms : (string * hist_snapshot) list;  (** sorted by name *)
}

val snapshot : registry -> snapshot

(** Zero every cell of every metric (the metrics stay registered). *)
val reset : registry -> unit
