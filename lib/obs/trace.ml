(** Ambient span tracer: per-domain event buffers, Chrome trace-event
    JSON export. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts_ns : int;
  ev_dur_ns : int;
  ev_tid : int;
  ev_depth : int;
  ev_args : (string * string) list;
  ev_instant : bool;
}

(* One per (tracer, domain): appended to only by its owning domain, so
   event emission needs no lock.  Two storage modes: the unbounded list
   of the batch tracer ([--trace-out]), or — when the tracer was
   created with [ring_capacity] — a fixed circular buffer that
   overwrites its oldest event on overflow, which is what lets a
   daemon keep tracing forever and serve the recent window on demand.

   The ring is struct-of-arrays, preallocated in full when the buffer
   is created: the three int fields of slot [i] live at [3i..3i+2] of
   [b_ints] and its name/cat/args at [i] of the parallel arrays.
   Pushing an event therefore allocates nothing and writes
   sequentially, so the cache misses of cycling through the ring
   amortize over consecutive events instead of costing a pointer-chase
   into a scattered record per event; the int stores skip the write
   barrier and the name/cat stores are almost always old-to-old (span
   names are static strings).  Both properties matter: the daemon
   traces every request forever, and an allocated-record ring measurably
   slows a traced scan — each record is promoted to the major heap
   (it stays live well past the next minor collection) and evicts a
   cache line when overwritten. *)
type buf = {
  mutable b_tracer : t option;
      (** the tracer this buffer belongs to — the phys-eq key of the
          per-domain cache; first field so the hot-path check and the
          fields below share the buffer's first cache line *)
  mutable b_last_ns : int;
      (** domain-local monotonic floor for timestamps: raw clock
          readings are clamped to it, so spans nest correctly within
          this domain without touching a shared cache line per event *)
  mutable b_depth : int;  (** current span-stack depth *)
  mutable b_head : int;  (** ring: next slot to write *)
  mutable b_stored : int;  (** ring: live entries, at most the capacity *)
  mutable b_count : int;  (** events recorded, dropped ones included *)
  b_epoch : int;  (** the owning tracer's epoch, cached *)
  b_tid : int;
  mutable b_events : event list;  (** unbounded mode only, reversed *)
  b_cap : int;  (** ring slots; 0 = unbounded mode *)
  b_ints : int array;  (** ring: ts, dur, depth(+instant bit) per slot *)
  b_names : string array;  (** ring: event names *)
  b_cats : string array;  (** ring: event categories *)
  b_args : (string * string) list array;  (** ring: event args *)
  mutable b_dropped : int;  (** ring: events overwritten on overflow *)
}

and t = {
  epoch_ns : int;
  capacity : int option;  (** per-domain ring capacity; [None] = unbounded *)
  lock : Mutex.t;  (** guards [bufs] registration only *)
  bufs : (int, buf) Hashtbl.t;
}

let create ?ring_capacity () =
  let capacity =
    match ring_capacity with
    | Some c when c > 0 -> Some c
    | Some _ | None -> None
  in
  {
    epoch_ns = Clock.raw_ns ();
    capacity;
    lock = Mutex.create ();
    bufs = Hashtbl.create 8;
  }

let ring_capacity t = t.capacity

let global_tracer : t option Atomic.t = Atomic.make None
let set_global t = Atomic.set global_tracer t
let global () = Atomic.get global_tracer
let enabled () = Option.is_some (Atomic.get global_tracer)

(* The current domain's buffer for the current tracer, cached in DLS.
   The DLS value is the buffer ITSELF, not a reference to one: the hot
   path is then [DLS array -> buf record], two cache lines, with the
   phys-eq tracer check, the clock floor and the ring cursor all on the
   buffer's first line.  An earlier [(t * buf) option ref] cache cost
   two more dependent loads per event — measurable on a traced scan,
   where the hundreds of microseconds of real work between spans evict
   the tracer state from L1 every time. *)
let dummy_buf =
  {
    b_tracer = None;
    b_last_ns = 0;
    b_depth = 0;
    b_head = 0;
    b_stored = 0;
    b_count = 0;
    b_epoch = 0;
    b_tid = 0;
    b_events = [];
    b_cap = 0;
    b_ints = [||];
    b_names = [||];
    b_cats = [||];
    b_args = [||];
    b_dropped = 0;
  }

let dls_buf : buf Domain.DLS.key = Domain.DLS.new_key (fun () -> dummy_buf)

let register (t : t) : buf =
  let tid = (Domain.self () :> int) in
  Mutex.lock t.lock;
  let b =
    match Hashtbl.find_opt t.bufs tid with
    | Some b -> b
    | None ->
        let cap = match t.capacity with Some c -> c | None -> 0 in
        let b =
          {
            b_tracer = Some t;
            b_last_ns = t.epoch_ns;
            b_depth = 0;
            b_head = 0;
            b_stored = 0;
            b_count = 0;
            b_epoch = t.epoch_ns;
            b_tid = tid;
            b_events = [];
            b_cap = cap;
            b_ints = Array.make (3 * cap) 0;
            b_names = Array.make cap "";
            b_cats = Array.make cap "";
            b_args = Array.make cap [];
            b_dropped = 0;
          }
        in
        Hashtbl.add t.bufs tid b;
        b
  in
  Mutex.unlock t.lock;
  Domain.DLS.set dls_buf b;
  b

let buffer_for (t : t) : buf =
  let b = Domain.DLS.get dls_buf in
  match b.b_tracer with Some t' when t' == t -> b | _ -> register t

(* [now_mono b] reads the clock clamped to this buffer's floor: all
   state it touches beyond the gettimeofday call is the [buf] record
   already in cache from the surrounding push, so a timestamp costs no
   shared-line traffic (cf. [Clock.now_ns]'s global high-water mark). *)
let now_mono b =
  let t = Clock.raw_ns () in
  if t > b.b_last_ns then begin
    b.b_last_ns <- t;
    t
  end
  else b.b_last_ns

let record b ~name ~cat ~ts ~dur ~depth ~args ~instant =
  let cap = b.b_cap in
  if cap = 0 then
    b.b_events <-
      {
        ev_name = name;
        ev_cat = cat;
        ev_ts_ns = ts;
        ev_dur_ns = dur;
        ev_tid = b.b_tid;
        ev_depth = depth;
        ev_args = args;
        ev_instant = instant;
      }
      :: b.b_events
  else begin
    (* overwrite the oldest slot once full: the window always holds the
       newest [cap] events, oldest evicted first.  [unsafe_set] is
       justified: [i < cap] by construction of [b_head] and the arrays
       were allocated [cap] (and [3 * cap]) long. *)
    let i = b.b_head in
    let j = 3 * i in
    Array.unsafe_set b.b_ints j ts;
    Array.unsafe_set b.b_ints (j + 1) dur;
    Array.unsafe_set b.b_ints (j + 2)
      ((depth lsl 1) lor Bool.to_int instant);
    Array.unsafe_set b.b_names i name;
    Array.unsafe_set b.b_cats i cat;
    Array.unsafe_set b.b_args i args;
    let h = i + 1 in
    b.b_head <- (if h = cap then 0 else h);
    if b.b_stored < cap then b.b_stored <- b.b_stored + 1
    else b.b_dropped <- b.b_dropped + 1
  end;
  b.b_count <- b.b_count + 1

(* The buffer's events, oldest first.  In ring mode the slots are read
   from [head - stored] forward; a concurrent push may tear the window
   by one event, which the (single-digit-Hz) admin poller tolerates. *)
let buf_events (b : buf) : event list =
  let cap = b.b_cap in
  if cap = 0 then List.rev b.b_events
  else
    let n = b.b_stored in
    let start = ((b.b_head - n) mod cap + cap) mod cap in
    List.init n (fun k ->
        let i = (start + k) mod cap in
        let j = 3 * i in
        let packed = b.b_ints.(j + 2) in
        {
          ev_name = b.b_names.(i);
          ev_cat = b.b_cats.(i);
          ev_ts_ns = b.b_ints.(j);
          ev_dur_ns = b.b_ints.(j + 1);
          ev_tid = b.b_tid;
          ev_depth = packed lsr 1;
          ev_args = b.b_args.(i);
          ev_instant = packed land 1 = 1;
        })

let clear_buf (b : buf) =
  b.b_events <- [];
  (* drop heap references the ring still holds; the ints can stay *)
  Array.fill b.b_names 0 b.b_cap "";
  Array.fill b.b_cats 0 b.b_cap "";
  Array.fill b.b_args 0 b.b_cap [];
  b.b_head <- 0;
  b.b_stored <- 0

let with_span ?(args = []) ~cat name (f : unit -> 'a) : 'a =
  match Atomic.get global_tracer with
  | None -> f ()
  | Some t ->
      let b = buffer_for t in
      let depth = b.b_depth in
      b.b_depth <- depth + 1;
      let t0 = now_mono b in
      (* a hand-rolled Fun.protect: this wrapper runs once per traced
         event on the scan's hot paths, and the closure + finaliser
         machinery of the real one is measurable there — as is a
         [finish] closure, hence the [result] detour instead *)
      let res =
        match f () with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      let dur = now_mono b - t0 in
      b.b_depth <- depth;
      record b ~name ~cat ~ts:(t0 - b.b_epoch) ~dur ~depth ~args
        ~instant:false;
      (match res with
      | Ok v -> v
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt)

let instant ?(args = []) ~cat name =
  match Atomic.get global_tracer with
  | None -> ()
  | Some t ->
      let b = buffer_for t in
      record b ~name ~cat ~ts:(now_mono b - b.b_epoch) ~dur:0
        ~depth:b.b_depth ~args ~instant:true

let sort_events evs =
  List.sort
    (fun a b ->
      let c = compare a.ev_ts_ns b.ev_ts_ns in
      if c <> 0 then c else compare a.ev_tid b.ev_tid)
    evs

let all_bufs (t : t) =
  Mutex.lock t.lock;
  let bufs = Hashtbl.fold (fun _ b acc -> b :: acc) t.bufs [] in
  Mutex.unlock t.lock;
  bufs

let events (t : t) : event list =
  sort_events (List.concat_map buf_events (all_bufs t))

let drain (t : t) : event list =
  let bufs = all_bufs t in
  let evs = List.concat_map buf_events bufs in
  List.iter clear_buf bufs;
  sort_events evs

let event_count (t : t) : int =
  Mutex.lock t.lock;
  let n = Hashtbl.fold (fun _ b acc -> acc + b.b_count) t.bufs 0 in
  Mutex.unlock t.lock;
  n

let dropped (t : t) : int =
  Mutex.lock t.lock;
  let n = Hashtbl.fold (fun _ b acc -> acc + b.b_dropped) t.bufs 0 in
  Mutex.unlock t.lock;
  n

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON.                                            *)

let add_args buf args =
  Buffer.add_string buf "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":\"%s\"" (Log.json_escape k) (Log.json_escape v)))
    args;
  Buffer.add_string buf "}"

let events_to_chrome_json ?pid (evs : event list) : string =
  let pid = match pid with Some p -> p | None -> Unix.getpid () in
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.ev_tid) evs)
  in
  let buf = Buffer.create (4096 + (160 * List.length evs)) in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let comma () =
    if !first then first := false else Buffer.add_string buf ",\n"
  in
  (* thread-name metadata so the viewer labels each lane "domain N" *)
  List.iter
    (fun tid ->
      comma ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"domain %d\"}}"
           pid tid tid))
    tids;
  List.iter
    (fun e ->
      comma ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f"
           (Log.json_escape e.ev_name) (Log.json_escape e.ev_cat)
           (if e.ev_instant then "i" else "X")
           pid e.ev_tid (Clock.ns_to_us e.ev_ts_ns));
      if e.ev_instant then Buffer.add_string buf ",\"s\":\"t\""
      else
        Buffer.add_string buf
          (Printf.sprintf ",\"dur\":%.3f" (Clock.ns_to_us e.ev_dur_ns));
      if e.ev_args <> [] then begin
        Buffer.add_string buf ",\"args\":";
        add_args buf e.ev_args
      end;
      Buffer.add_string buf "}")
    evs;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let to_chrome_json ?pid (t : t) : string = events_to_chrome_json ?pid (events t)

let write ?pid (t : t) ~file =
  let oc = open_out_bin file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_chrome_json ?pid t))
