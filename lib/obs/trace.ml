(** Ambient span tracer: per-domain event buffers, Chrome trace-event
    JSON export. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts_ns : int64;
  ev_dur_ns : int64;
  ev_tid : int;
  ev_depth : int;
  ev_args : (string * string) list;
  ev_instant : bool;
}

(* One per (tracer, domain): appended to only by its owning domain, so
   event emission needs no lock. *)
type buf = {
  b_tid : int;
  mutable b_events : event list;  (** reversed *)
  mutable b_count : int;
  mutable b_depth : int;  (** current span-stack depth *)
}

type t = {
  epoch_ns : int64;
  lock : Mutex.t;  (** guards [bufs] registration only *)
  bufs : (int, buf) Hashtbl.t;
}

let create () =
  { epoch_ns = Clock.now_ns (); lock = Mutex.create (); bufs = Hashtbl.create 8 }

let global_tracer : t option Atomic.t = Atomic.make None
let set_global t = Atomic.set global_tracer t
let global () = Atomic.get global_tracer
let enabled () = Option.is_some (Atomic.get global_tracer)

(* Cache the (tracer, buffer) pair per domain so the registration lock
   is taken once per domain per tracer, not once per event. *)
let dls_buf : (t * buf) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let buffer_for (t : t) : buf =
  let cache = Domain.DLS.get dls_buf in
  match !cache with
  | Some (t', b) when t' == t -> b
  | _ ->
      let tid = (Domain.self () :> int) in
      Mutex.lock t.lock;
      let b =
        match Hashtbl.find_opt t.bufs tid with
        | Some b -> b
        | None ->
            let b = { b_tid = tid; b_events = []; b_count = 0; b_depth = 0 } in
            Hashtbl.add t.bufs tid b;
            b
      in
      Mutex.unlock t.lock;
      cache := Some (t, b);
      b

let push b ev =
  b.b_events <- ev :: b.b_events;
  b.b_count <- b.b_count + 1

let with_span ?(args = []) ~cat name (f : unit -> 'a) : 'a =
  match Atomic.get global_tracer with
  | None -> f ()
  | Some t ->
      let b = buffer_for t in
      let depth = b.b_depth in
      b.b_depth <- depth + 1;
      let t0 = Clock.now_ns () in
      Fun.protect
        ~finally:(fun () ->
          let dur = Clock.elapsed_ns t0 in
          b.b_depth <- depth;
          push b
            {
              ev_name = name;
              ev_cat = cat;
              ev_ts_ns = Int64.sub t0 t.epoch_ns;
              ev_dur_ns = dur;
              ev_tid = b.b_tid;
              ev_depth = depth;
              ev_args = args;
              ev_instant = false;
            })
        f

let instant ?(args = []) ~cat name =
  match Atomic.get global_tracer with
  | None -> ()
  | Some t ->
      let b = buffer_for t in
      push b
        {
          ev_name = name;
          ev_cat = cat;
          ev_ts_ns = Int64.sub (Clock.now_ns ()) t.epoch_ns;
          ev_dur_ns = 0L;
          ev_tid = b.b_tid;
          ev_depth = b.b_depth;
          ev_args = args;
          ev_instant = true;
        }

let events (t : t) : event list =
  Mutex.lock t.lock;
  let bufs = Hashtbl.fold (fun _ b acc -> b :: acc) t.bufs [] in
  Mutex.unlock t.lock;
  List.concat_map (fun b -> b.b_events) bufs
  |> List.sort (fun a b ->
         let c = Int64.compare a.ev_ts_ns b.ev_ts_ns in
         if c <> 0 then c else compare a.ev_tid b.ev_tid)

let event_count (t : t) : int =
  Mutex.lock t.lock;
  let n = Hashtbl.fold (fun _ b acc -> acc + b.b_count) t.bufs 0 in
  Mutex.unlock t.lock;
  n

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON.                                            *)

let add_args buf args =
  Buffer.add_string buf "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":\"%s\"" (Log.json_escape k) (Log.json_escape v)))
    args;
  Buffer.add_string buf "}"

let to_chrome_json ?pid (t : t) : string =
  let pid = match pid with Some p -> p | None -> Unix.getpid () in
  let evs = events t in
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.ev_tid) evs)
  in
  let buf = Buffer.create (4096 + (160 * List.length evs)) in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let comma () =
    if !first then first := false else Buffer.add_string buf ",\n"
  in
  (* thread-name metadata so the viewer labels each lane "domain N" *)
  List.iter
    (fun tid ->
      comma ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"domain %d\"}}"
           pid tid tid))
    tids;
  List.iter
    (fun e ->
      comma ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f"
           (Log.json_escape e.ev_name) (Log.json_escape e.ev_cat)
           (if e.ev_instant then "i" else "X")
           pid e.ev_tid (Clock.ns_to_us e.ev_ts_ns));
      if e.ev_instant then Buffer.add_string buf ",\"s\":\"t\""
      else
        Buffer.add_string buf
          (Printf.sprintf ",\"dur\":%.3f" (Clock.ns_to_us e.ev_dur_ns));
      if e.ev_args <> [] then begin
        Buffer.add_string buf ",\"args\":";
        add_args buf e.ev_args
      end;
      Buffer.add_string buf "}")
    evs;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let write ?pid (t : t) ~file =
  let oc = open_out_bin file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_chrome_json ?pid t))
