(** Span tracing over the monotonic clock, exported as Chrome
    trace-event JSON ([chrome://tracing] / Perfetto compatible).

    A {e span} covers one timed region ([with_span]); spans opened while
    another span of the same domain is running nest under it, which the
    trace viewer renders as stacked slices (Chrome "X" complete events
    nest by time containment within one [tid]).  Each domain appends to
    its own buffer — no cross-domain synchronization per event, only a
    one-time registration when a domain emits its first event.

    Tracing is ambient: instrumentation sites call {!with_span}
    unconditionally, and when no tracer is installed ({!set_global}
    [None], the default) the only cost is one atomic load — recording
    never changes what the instrumented code computes or returns. *)

type event = {
  ev_name : string;
  ev_cat : string;  (** category: [engine], [taint], [php], ... *)
  ev_ts_ns : int;  (** start, relative to the tracer's epoch *)
  ev_dur_ns : int;  (** duration; [0] and {!is_instant} for instants *)
  ev_tid : int;  (** emitting domain's id *)
  ev_depth : int;  (** span-stack depth at emission, 0 = top level *)
  ev_args : (string * string) list;
  ev_instant : bool;
}

type t

(** A fresh tracer; its epoch (trace time zero) is the creation
    instant.  Without [ring_capacity] every event is retained until the
    tracer is dropped (the batch [--trace-out] mode).  With
    [ring_capacity] each domain keeps a bounded circular buffer of that
    many events and overwrites its {e oldest} event on overflow — the
    daemon mode, where {!drain} serves the recent window on demand and
    memory stays constant however long the process runs.  A
    non-positive capacity means unbounded. *)
val create : ?ring_capacity:int -> unit -> t

(** The per-domain ring capacity, if the tracer is bounded. *)
val ring_capacity : t -> int option

(** Install [Some t] to start recording process-wide, [None] to stop. *)
val set_global : t option -> unit

val global : unit -> t option

(** Is a global tracer installed? *)
val enabled : unit -> bool

(** [with_span ~cat name f] runs [f ()], recording a span around it in
    the current domain's buffer of the global tracer (no-op without
    one).  The span is recorded even if [f] raises. *)
val with_span :
  ?args:(string * string) list -> cat:string -> string -> (unit -> 'a) -> 'a

(** Record a zero-duration instant event. *)
val instant : ?args:(string * string) list -> cat:string -> string -> unit

(** All recorded events, every domain's buffer merged, sorted by start
    time.  Only meaningful once the traced workload has finished (worker
    domains joined). *)
val events : t -> event list

(** Remove and return the buffered events (sorted like {!events}),
    leaving every buffer empty — what [GET /trace] serves from a live
    daemon, so each poll sees only what happened since the last one.
    Span depths and the {!dropped} tally are preserved.  Safe to call
    while other domains trace; an event pushed concurrently with the
    drain may land in either poll. *)
val drain : t -> event list

val event_count : t -> int

(** Events evicted by ring overflow since creation (0 when
    unbounded). *)
val dropped : t -> int

(** The trace as a Chrome trace-event JSON document
    ([{"traceEvents": [...]}]); timestamps in microseconds.  [pid]
    defaults to the current process id. *)
val to_chrome_json : ?pid:int -> t -> string

(** Render an explicit event list (e.g. a {!drain} batch) as Chrome
    trace-event JSON. *)
val events_to_chrome_json : ?pid:int -> event list -> string

(** Write {!to_chrome_json} to [file]. *)
val write : ?pid:int -> t -> file:string -> unit
