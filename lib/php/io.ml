(** Whole-file source reading, shared by every layer that loads PHP
    text: {!Lexer.tokenize_file}, {!Parser.parse_file}, the CLI and the
    fleet worker all route through this one binary-mode
    [really_input_string] pass — no per-line loops, no intermediate
    [Buffer] accumulation, and the channel is closed even when the read
    raises. *)

let read_file path : string =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))
