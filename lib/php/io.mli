(** Whole-file source reading shared by the lexer, the parser, the CLI
    and the fleet worker. *)

(** [read_file path] reads the whole file in one binary-mode
    [really_input_string] pass.  The channel is closed even on error.

    @raise Sys_error when the file cannot be opened or read. *)
val read_file : string -> string
