(** Hand-written lexer for the PHP subset understood by the tool.

    The lexer alternates between two modes, like PHP itself: outside
    [<?php ... ?>] everything is inline HTML; inside, it produces the
    tokens of {!Token.t}.  Double-quoted strings and heredocs are split
    into interpolation parts here so the parser can rebuild the implicit
    concatenation that WAP's taint analysis must see.

    The hot path is a byte-level scanner that emits straight into a flat
    {!Token_buf.t}: keyword matching compares bytes in place (no
    [String.sub] / [lowercase_ascii] round trip), identifiers and plain
    string literals are recorded as (offset, length) slices of the
    source and materialized at most once through a per-tokenize
    interning pool, and repeated [VARIABLE] / [IDENT] / [CONST_STRING]
    tokens are hashconsed so the buffer's pool holds one boxed token per
    distinct spelling.  Interpolated strings, heredocs and escape-heavy
    literals take the original [Buffer]-based slow path — they are rare
    and their payloads are not source slices.

    {!Lexer_ref} keeps the pre-buffer list-building lexer verbatim as
    the differential reference: the [tokenize-equiv] fuzz oracle and the
    seed-replay tests require the two to agree token-for-token and
    loc-for-loc. *)

exception Error of string * Loc.t

(* ------------------------------------------------------------------ *)
(* Scanner state.                                                      *)

type state = {
  src : string;
  file : string;
  len : int;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  (* Per-tokenize interning pool: fixed buckets of already-materialized
     strings, looked up by hashing a source slice in place. *)
  intern : string list array;
  (* Hashconsed boxed tokens, keyed by their (interned) payload. *)
  var_toks : (string, Token.t) Hashtbl.t;
  ident_toks : (string, Token.t) Hashtbl.t;
  str_toks : (string, Token.t) Hashtbl.t;
}

let intern_buckets = 512

let make_state ~file src =
  {
    src;
    file;
    len = String.length src;
    pos = 0;
    line = 1;
    col = 0;
    intern = Array.make intern_buckets [];
    var_toks = Hashtbl.create 64;
    ident_toks = Hashtbl.create 64;
    str_toks = Hashtbl.create 64;
  }

let loc st = Loc.make ~file:st.file ~line:st.line ~col:st.col

let fail st msg = raise (Error (msg, loc st))

let at_end st = st.pos >= st.len

let peek st = if at_end st then '\000' else String.unsafe_get st.src st.pos

let peek2 st =
  if st.pos + 1 >= st.len then '\000' else String.unsafe_get st.src (st.pos + 1)

let peek3 st =
  if st.pos + 2 >= st.len then '\000' else String.unsafe_get st.src (st.pos + 2)

let advance st =
  if not (at_end st) then begin
    if String.unsafe_get st.src st.pos = '\n' then begin
      st.line <- st.line + 1;
      st.col <- 0
    end
    else st.col <- st.col + 1;
    st.pos <- st.pos + 1
  end

let advance_n st n =
  for _ = 1 to n do
    advance st
  done

(* In-place prefix test: no [String.sub]. *)
let looking_at st s =
  let n = String.length s in
  st.pos + n <= st.len
  &&
  let rec go i =
    i = n
    || (String.unsafe_get st.src (st.pos + i) = String.unsafe_get s i && go (i + 1))
  in
  go 0

let lower_char c =
  if c >= 'A' && c <= 'Z' then Char.unsafe_chr (Char.code c + 32) else c

(* Case-insensitive in-place prefix test ([s] must be lowercase). *)
let looking_at_ci st s =
  let n = String.length s in
  st.pos + n <= st.len
  &&
  let rec go i =
    i = n
    || (lower_char (String.unsafe_get st.src (st.pos + i)) = String.unsafe_get s i
       && go (i + 1))
  in
  go 0

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

(* ------------------------------------------------------------------ *)
(* Interning pool.  One FNV-1a hash works for both source slices and
   already-materialized strings, so escape-processed literals land in
   the same pool as plain slices.                                      *)

let hash_bytes data off len =
  let h = ref 0x811c9dc5 in
  for i = off to off + len - 1 do
    h := (!h lxor Char.code (String.unsafe_get data i)) * 0x01000193 land 0xffffffff
  done;
  !h

let slice_equal data off len s =
  String.length s = len
  &&
  let rec go i =
    i = len || (String.unsafe_get s i = String.unsafe_get data (off + i) && go (i + 1))
  in
  go 0

let intern_bytes st data off len =
  let b = hash_bytes data off len land (intern_buckets - 1) in
  let rec find = function
    | [] ->
        let s = String.sub data off len in
        st.intern.(b) <- s :: st.intern.(b);
        s
    | s :: rest -> if slice_equal data off len s then s else find rest
  in
  find st.intern.(b)

(* Materialize a source slice at most once per tokenize. *)
let intern_slice st off len = intern_bytes st st.src off len

(* Dedupe an already-built string (escape/interp slow paths). *)
let intern_string st s = intern_bytes st s 0 (String.length s)

let hashcons tbl mk s =
  match Hashtbl.find_opt tbl s with
  | Some t -> t
  | None ->
      let t = mk s in
      Hashtbl.add tbl s t;
      t

let var_token st s = hashcons st.var_toks (fun s -> Token.VARIABLE s) s
let ident_token st s = hashcons st.ident_toks (fun s -> Token.IDENT s) s
let const_string_token st s = hashcons st.str_toks (fun s -> Token.CONST_STRING s) s

(* ------------------------------------------------------------------ *)
(* Keyword recognition: buckets of (lowercase spelling, token) by
   length, compared byte-for-byte against the source slice — no
   intermediate string, no lowercased copy.                            *)

let max_kw_len =
  List.fold_left (fun m (k, _) -> max m (String.length k)) 0 Token.keyword_table

let kw_by_len : (string * Token.t) array array =
  let buckets = Array.make (max_kw_len + 1) [] in
  List.iter
    (fun (k, t) ->
      let n = String.length k in
      buckets.(n) <- (String.lowercase_ascii k, t) :: buckets.(n))
    Token.keyword_table;
  Array.map (fun l -> Array.of_list (List.rev l)) buckets

let kw_lookup src off len : Token.t option =
  if len > max_kw_len then None
  else begin
    let cands = kw_by_len.(len) in
    let n = Array.length cands in
    let rec try_cand i =
      if i = n then None
      else
        let k, t = Array.unsafe_get cands i in
        let rec eq j =
          j = len
          || (lower_char (String.unsafe_get src (off + j)) = String.unsafe_get k j
             && eq (j + 1))
        in
        if eq 0 then Some t else try_cand (i + 1)
    in
    try_cand 0
  end

(* Scan an identifier in place; returns its (offset, length) extent. *)
let scan_ident st =
  let start = st.pos in
  while (not (at_end st)) && is_ident_char (peek st) do
    advance st
  done;
  (start, st.pos - start)

let read_ident st =
  let off, len = scan_ident st in
  intern_slice st off len

(* ------------------------------------------------------------------ *)
(* Escape sequences in double-quoted context.                          *)

let resolve_dq_escape ?(quote = '"') st =
  (* Called with [peek st] on the char right after a backslash.  [quote]
     is the delimiter of the surrounding context (['"'] for double-quoted
     strings and heredocs, ['`'] for backticks) — a backslash-escaped
     delimiter always resolves to the delimiter itself. *)
  let c = peek st in
  advance st;
  if c = quote then Some quote
  else
  match c with
  | 'n' -> Some '\n'
  | 't' -> Some '\t'
  | 'r' -> Some '\r'
  | 'v' -> Some '\011'
  | 'f' -> Some '\012'
  | 'e' -> Some '\027'
  | '\\' -> Some '\\'
  | '$' -> Some '$'
  | '"' -> Some '"'
  | '0' .. '7' ->
      (* up to three octal digits, first already consumed *)
      let v = ref (Char.code c - Char.code '0') in
      let n = ref 1 in
      while !n < 3 && peek st >= '0' && peek st <= '7' do
        v := (!v * 8) + (Char.code (peek st) - Char.code '0');
        advance st;
        incr n
      done;
      Some (Char.chr (!v land 0xff))
  | 'x' ->
      if is_hex (peek st) then begin
        let v = ref 0 in
        let n = ref 0 in
        while !n < 2 && is_hex (peek st) do
          let d = peek st in
          let dv =
            if is_digit d then Char.code d - Char.code '0'
            else (Char.code (Char.lowercase_ascii d) - Char.code 'a') + 10
          in
          v := (!v * 16) + dv;
          advance st;
          incr n
        done;
        Some (Char.chr (!v land 0xff))
      end
      else (* not an escape: PHP keeps the backslash *) None
  | other ->
      (* Unknown escape: PHP keeps the backslash. We signal with None and
         let the caller emit both characters. *)
      ignore other;
      None

(* ------------------------------------------------------------------ *)
(* Interpolated (double-quoted / heredoc) content — the slow path,
   reached only for strings that actually contain [$], [{] or [\ ].    *)

let scan_interp_parts ?quote st ~(stop : state -> bool)
    ~(consume_stop : state -> unit) : Token.interp_part list =
  let parts = ref [] in
  let buf = Buffer.create 32 in
  let flush () =
    if Buffer.length buf > 0 then begin
      parts := Token.Part_str (Buffer.contents buf) :: !parts;
      Buffer.clear buf
    end
  in
  let rec loop () =
    if at_end st then fail st "unterminated string"
    else if stop st then consume_stop st
    else
      match peek st with
      | '\\' ->
          advance st;
          if at_end st then fail st "dangling backslash in string";
          let before = peek st in
          (match resolve_dq_escape ?quote st with
          | Some c -> Buffer.add_char buf c
          | None ->
              Buffer.add_char buf '\\';
              Buffer.add_char buf before);
          loop ()
      | '$' when is_ident_start (peek2 st) ->
          flush ();
          advance st (* $ *);
          let name = read_ident st in
          (* simple syntax: optional [sub] or ->prop *)
          if peek st = '[' then begin
            advance st;
            let sub =
              if peek st = '$' then begin
                advance st;
                Token.Sub_var (read_ident st)
              end
              else if is_digit (peek st) then begin
                let b = Buffer.create 8 in
                while is_digit (peek st) do
                  Buffer.add_char b (peek st);
                  advance st
                done;
                (* offsets beyond the native int range behave like plain
                   string keys, as PHP treats them *)
                match int_of_string_opt (Buffer.contents b) with
                | Some n -> Token.Sub_int n
                | None -> Token.Sub_name (Buffer.contents b)
              end
              else if is_ident_start (peek st) then Token.Sub_name (read_ident st)
              else if peek st = '\'' then begin
                (* tolerate quoted key in simple syntax *)
                advance st;
                let b = Buffer.create 8 in
                while peek st <> '\'' && not (at_end st) do
                  Buffer.add_char b (peek st);
                  advance st
                done;
                advance st;
                Token.Sub_name (Buffer.contents b)
              end
              else fail st "bad subscript in string interpolation"
            in
            if peek st <> ']' then fail st "expected ] in string interpolation";
            advance st;
            parts := Token.Part_index (name, sub) :: !parts
          end
          else if peek st = '-' && peek2 st = '>' then begin
            advance_n st 2;
            if not (is_ident_start (peek st)) then
              fail st "expected property name in string interpolation";
            let prop = read_ident st in
            parts := Token.Part_prop (name, prop) :: !parts
          end
          else parts := Token.Part_var name :: !parts;
          loop ()
      | '$' when peek2 st = '{' ->
          (* ${name} legacy syntax *)
          flush ();
          advance_n st 2;
          let name = read_ident st in
          if peek st <> '}' then fail st "expected } in ${...} interpolation";
          advance st;
          parts := Token.Part_var name :: !parts;
          loop ()
      | '{' when peek2 st = '$' ->
          flush ();
          advance st (* { *);
          (* capture to matching close brace, tracking nesting and quotes *)
          let b = Buffer.create 16 in
          let depth = ref 1 in
          let rec cap () =
            if at_end st then fail st "unterminated {$...} interpolation"
            else
              match peek st with
              | '{' ->
                  incr depth;
                  Buffer.add_char b '{';
                  advance st;
                  cap ()
              | '}' ->
                  decr depth;
                  if !depth = 0 then advance st
                  else begin
                    Buffer.add_char b '}';
                    advance st;
                    cap ()
                  end
              | '\'' | '"' ->
                  let q = peek st in
                  Buffer.add_char b q;
                  advance st;
                  let rec instr () =
                    if at_end st then fail st "unterminated string in interpolation"
                    else if peek st = '\\' then begin
                      Buffer.add_char b '\\';
                      advance st;
                      Buffer.add_char b (peek st);
                      advance st;
                      instr ()
                    end
                    else if peek st = q then begin
                      Buffer.add_char b q;
                      advance st
                    end
                    else begin
                      Buffer.add_char b (peek st);
                      advance st;
                      instr ()
                    end
                  in
                  instr ();
                  cap ()
              | c ->
                  Buffer.add_char b c;
                  advance st;
                  cap ()
          in
          cap ();
          parts := Token.Part_complex (Buffer.contents b) :: !parts;
          loop ()
      | c ->
          Buffer.add_char buf c;
          advance st;
          loop ()
  in
  loop ();
  flush ();
  List.rev !parts

(* When a double-quoted string has no interpolation we collapse it into a
   CONST_STRING so downstream code sees plain literals. *)
let collapse_parts st (parts : Token.interp_part list) : Token.t =
  let all_str =
    List.for_all (function Token.Part_str _ -> true | _ -> false) parts
  in
  if all_str then
    const_string_token st
      (intern_string st
         (String.concat ""
            (List.map
               (function Token.Part_str s -> s | _ -> assert false)
               parts)))
  else Token.INTERP_STRING parts

(* ------------------------------------------------------------------ *)
(* Main tokenizer.                                                     *)

type mode = Html | Php

let tokenize_buf ~file src : Token_buf.t =
  let st = make_state ~file src in
  let buf =
    Token_buf.create ~capacity:(max 64 (String.length src / 8)) ~file ()
  in
  let mode = ref Html in
  let rec run () =
    if at_end st then Token_buf.push buf Token.EOF ~line:st.line ~col:st.col
    else match !mode with Html -> html () | Php -> php ()
  and html () =
    let l_line = st.line and l_col = st.col in
    let start = st.pos in
    (* Scan forward to the next open tag (or EOF); the chunk is emitted
       as one source slice, never staged through a Buffer. *)
    let rec scan () =
      if at_end st then `Eof
      else if looking_at_ci st "<?php" then `Open
      else if looking_at st "<?=" then `Echo
      else begin
        advance st;
        scan ()
      end
    in
    let stop = scan () in
    let chunk_len = st.pos - start in
    let emit_chunk () =
      if chunk_len > 0 then
        Token_buf.push buf
          (Token.INLINE_HTML (String.sub st.src start chunk_len))
          ~line:l_line ~col:l_col
    in
    (match stop with
    | `Eof -> emit_chunk ()
    | `Open ->
        advance_n st 5;
        mode := Php;
        emit_chunk ()
    | `Echo ->
        advance_n st 3;
        mode := Php;
        emit_chunk ();
        (* <?= is sugar for echo *)
        Token_buf.push buf Token.K_ECHO ~line:st.line ~col:st.col);
    run ()
  and php () =
    if at_end st then Token_buf.push buf Token.EOF ~line:st.line ~col:st.col
    else begin
      let c = peek st in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then begin
        advance st;
        php ()
      end
      else if c = '?' && peek2 st = '>' then begin
        (* close tag terminates the current statement; only synthesize a
           semicolon when one is actually missing *)
        let l_line = st.line and l_col = st.col in
        advance_n st 2;
        (* PHP swallows a single newline right after the close tag *)
        if peek st = '\n' then advance st;
        (match Token_buf.last_tok buf with
        | Some Token.SEMI | Some Token.LBRACE | Some Token.RBRACE
        | Some Token.COLON | None ->
            ()
        | Some _ -> Token_buf.push buf Token.SEMI ~line:l_line ~col:l_col);
        mode := Html;
        run ()
      end
      else if (c = '/' && peek2 st = '/') || c = '#' then begin
        while
          (not (at_end st))
          && peek st <> '\n'
          && not (peek st = '?' && peek2 st = '>')
        do
          advance st
        done;
        php ()
      end
      else if c = '/' && peek2 st = '*' then begin
        advance_n st 2;
        while (not (at_end st)) && not (peek st = '*' && peek2 st = '/') do
          advance st
        done;
        if at_end st then fail st "unterminated block comment";
        advance_n st 2;
        php ()
      end
      else begin
        let t_line = st.line and t_col = st.col in
        let tok = token () in
        Token_buf.push buf tok ~line:t_line ~col:t_col;
        php ()
      end
    end
  and token () =
    let c = peek st in
    if c = '$' then begin
      advance st;
      if is_ident_start (peek st) then var_token st (read_ident st)
      else if peek st = '$' then Token.DOLLAR
      else if peek st = '{' then fail st "${expr} variable-variables unsupported"
      else Token.DOLLAR
    end
    else if is_ident_start c then begin
      let off, len = scan_ident st in
      match kw_lookup st.src off len with
      | Some k -> k
      | None -> ident_token st (intern_slice st off len)
    end
    else if is_digit c || (c = '.' && is_digit (peek2 st)) then number ()
    else if c = '\'' then single_quoted ()
    else if c = '"' then double_quoted ()
    else if c = '`' then backtick ()
    else if c = '<' && peek2 st = '<' && peek3 st = '<' then heredoc ()
    else operator ()
  and number () =
    (* The literal's text is exactly the consumed source slice, so the
       digits never go through a Buffer; the slice is materialized once
       for the final numeric conversion. *)
    let start = st.pos in
    if peek st = '0' && (peek2 st = 'x' || peek2 st = 'X') then begin
      advance_n st 2;
      let dstart = st.pos in
      while is_hex (peek st) do
        advance st
      done;
      if st.pos = dstart then fail st "malformed hexadecimal literal";
      let s = String.sub st.src start (st.pos - start) in
      match int_of_string_opt s with
      | Some n -> Token.INT n
      | None ->
          (* hex literal beyond the native int range: PHP overflows to
             float; fold the digits ourselves *)
          let v = ref 0.0 in
          String.iter
            (fun c ->
              let d =
                if is_digit c then Char.code c - Char.code '0'
                else (Char.code (Char.lowercase_ascii c) - Char.code 'a') + 10
              in
              v := (!v *. 16.0) +. float_of_int d)
            (String.sub s 2 (String.length s - 2));
          Token.FLOAT !v
    end
    else begin
      let is_float = ref false in
      while is_digit (peek st) do
        advance st
      done;
      if peek st = '.' && is_digit (peek2 st) then begin
        is_float := true;
        advance st;
        while is_digit (peek st) do
          advance st
        done
      end;
      if peek st = 'e' || peek st = 'E' then begin
        let save = st.pos in
        let save_col = st.col in
        advance st;
        if peek st = '+' || peek st = '-' then advance st;
        if is_digit (peek st) then begin
          is_float := true;
          while is_digit (peek st) do
            advance st
          done
        end
        else begin
          (* not an exponent after all; rewind (column included, or
             every later loc on the line drifts) *)
          st.pos <- save;
          st.col <- save_col
        end
      end;
      let s = String.sub st.src start (st.pos - start) in
      if !is_float then Token.FLOAT (float_of_string s)
      else
        match int_of_string_opt s with
        | Some n -> Token.INT n
        | None -> Token.FLOAT (float_of_string s)
    end
  and single_quoted () =
    advance st (* ' *);
    let start = st.pos in
    (* Fast path: no backslash before the closing quote — the payload is
       a pure source slice, interned without a Buffer round trip. *)
    let rec scan () =
      if at_end st then fail st "unterminated single-quoted string"
      else
        match peek st with
        | '\'' ->
            let s = intern_slice st start (st.pos - start) in
            advance st;
            const_string_token st s
        | '\\' ->
            let b = Buffer.create (st.pos - start + 16) in
            Buffer.add_substring b st.src start (st.pos - start);
            slow b
        | _ ->
            advance st;
            scan ()
    and slow b =
      if at_end st then fail st "unterminated single-quoted string"
      else
        match peek st with
        | '\'' ->
            advance st;
            const_string_token st (intern_string st (Buffer.contents b))
        | '\\' ->
            advance st;
            (match peek st with
            | '\'' -> Buffer.add_char b '\''
            | '\\' -> Buffer.add_char b '\\'
            | other ->
                Buffer.add_char b '\\';
                Buffer.add_char b other);
            advance st;
            slow b
        | ch ->
            Buffer.add_char b ch;
            advance st;
            slow b
    in
    scan ()
  and double_quoted () =
    advance st (* opening quote *);
    (* Fast path: lookahead for a closing quote with no escape or
       interpolation trigger in between — then the payload is a pure
       source slice. *)
    let rec plain i =
      if i >= st.len then -1
      else
        match String.unsafe_get st.src i with
        | '"' -> i
        | '\\' | '$' | '{' -> -1
        | _ -> plain (i + 1)
    in
    let e = plain st.pos in
    if e >= 0 then begin
      let s = intern_slice st st.pos (e - st.pos) in
      while st.pos <= e do
        advance st
      done;
      const_string_token st s
    end
    else
      let parts =
        scan_interp_parts st
          ~stop:(fun s -> peek s = '"')
          ~consume_stop:(fun s -> advance s)
      in
      collapse_parts st parts
  and backtick () =
    advance st (* opening backtick *);
    let parts =
      scan_interp_parts ~quote:'`' st
        ~stop:(fun s -> peek s = '`')
        ~consume_stop:(fun s -> advance s)
    in
    Token.BACKTICK_STRING parts
  and heredoc () =
    advance_n st 3;
    (* optional quotes around the tag *)
    let nowdoc = peek st = '\'' in
    if nowdoc || peek st = '"' then advance st;
    let tag = read_ident st in
    if tag = "" then fail st "missing heredoc tag";
    if nowdoc || peek st = '"' then
      if peek st = '\'' || peek st = '"' then advance st;
    (* consume to end of line *)
    while (not (at_end st)) && peek st <> '\n' do
      advance st
    done;
    if not (at_end st) then advance st;
    let terminator st =
      (* the terminator must start a line, possibly indented *)
      let rec check i =
        if i >= st.len then false
        else
          match st.src.[i] with
          | ' ' | '\t' -> check (i + 1)
          | _ ->
              i + String.length tag <= st.len
              && slice_equal st.src i (String.length tag) tag
              && (i + String.length tag >= st.len
                 ||
                 let nc = st.src.[i + String.length tag] in
                 not (is_ident_char nc))
      in
      (st.pos = 0 || st.src.[st.pos - 1] = '\n') && check st.pos
    in
    let consume_term st =
      while peek st = ' ' || peek st = '\t' do
        advance st
      done;
      advance_n st (String.length tag)
    in
    (* PHP strips the newline that precedes the terminator *)
    let strip_last_nl s =
      let n = String.length s in
      if n > 0 && s.[n - 1] = '\n' then String.sub s 0 (n - 1) else s
    in
    if nowdoc then begin
      (* nowdoc bodies are verbatim source slices *)
      let start = st.pos in
      let rec loop () =
        if at_end st then fail st "unterminated nowdoc"
        else if terminator st then begin
          let body_len = st.pos - start in
          consume_term st;
          body_len
        end
        else begin
          advance st;
          loop ()
        end
      in
      let body_len = loop () in
      let body_len =
        if body_len > 0 && st.src.[start + body_len - 1] = '\n' then body_len - 1
        else body_len
      in
      const_string_token st (intern_slice st start body_len)
    end
    else
      let parts = scan_interp_parts st ~stop:terminator ~consume_stop:consume_term in
      let parts =
        match List.rev parts with
        | Token.Part_str s :: rest ->
            let s = strip_last_nl s in
            if s = "" && rest <> [] then List.rev rest
            else List.rev (Token.Part_str s :: rest)
        | _ -> parts
      in
      collapse_parts st parts
  and operator () =
    (* First-char dispatch over in-place lookahead; token-for-token the
       same mapping as the reference lexer's [looking_at] chain. *)
    let take n t =
      advance_n st n;
      t
    in
    let c = peek st in
    let c2 = peek2 st in
    match c with
    | '<' ->
        (* <<< never reaches here: [token] routes it to heredoc *)
        if c2 = '=' && peek3 st = '>' then take 3 Token.SPACESHIP
        else if c2 = '=' then take 2 Token.LE
        else if c2 = '<' && peek3 st = '=' then take 3 Token.SHL_EQ
        else if c2 = '<' then take 2 Token.SHL
        else if c2 = '>' then take 2 Token.NEQ
        else take 1 Token.LT
    | '=' ->
        if c2 = '=' && peek3 st = '=' then take 3 Token.IDENTICAL
        else if c2 = '=' then take 2 Token.EQ_EQ
        else if c2 = '>' then take 2 Token.DOUBLE_ARROW
        else take 1 Token.EQ
    | '!' ->
        if c2 = '=' && peek3 st = '=' then take 3 Token.NOT_IDENTICAL
        else if c2 = '=' then take 2 Token.NEQ
        else take 1 Token.BANG
    | '*' ->
        if c2 = '*' && peek3 st = '=' then take 3 Token.POW_EQ
        else if c2 = '*' then take 2 Token.POW
        else if c2 = '=' then take 2 Token.STAR_EQ
        else take 1 Token.STAR
    | '>' ->
        if c2 = '>' && peek3 st = '=' then take 3 Token.SHR_EQ
        else if c2 = '=' then take 2 Token.GE
        else if c2 = '>' then take 2 Token.SHR
        else take 1 Token.GT
    | '?' ->
        if c2 = '?' && peek3 st = '=' then take 3 Token.QQ_EQ
        else if c2 = '?' then take 2 Token.QQ
        else take 1 Token.QUESTION
    | '.' ->
        if c2 = '.' && peek3 st = '.' then take 3 Token.ELLIPSIS
        else if c2 = '=' then take 2 Token.DOT_EQ
        else take 1 Token.DOT
    | '&' ->
        if c2 = '&' then take 2 Token.AMP_AMP
        else if c2 = '=' then take 2 Token.AMP_EQ
        else take 1 Token.AMP
    | '|' ->
        if c2 = '|' then take 2 Token.PIPE_PIPE
        else if c2 = '=' then take 2 Token.PIPE_EQ
        else take 1 Token.PIPE
    | '+' ->
        if c2 = '+' then take 2 Token.INC
        else if c2 = '=' then take 2 Token.PLUS_EQ
        else take 1 Token.PLUS
    | '-' ->
        if c2 = '-' then take 2 Token.DEC
        else if c2 = '=' then take 2 Token.MINUS_EQ
        else if c2 = '>' then take 2 Token.ARROW
        else take 1 Token.MINUS
    | '/' -> if c2 = '=' then take 2 Token.SLASH_EQ else take 1 Token.SLASH
    | '%' -> if c2 = '=' then take 2 Token.PERCENT_EQ else take 1 Token.PERCENT
    | '^' -> if c2 = '=' then take 2 Token.CARET_EQ else take 1 Token.CARET
    | ':' -> if c2 = ':' then take 2 Token.DOUBLE_COLON else take 1 Token.COLON
    | '(' -> take 1 Token.LPAREN
    | ')' -> take 1 Token.RPAREN
    | '{' -> take 1 Token.LBRACE
    | '}' -> take 1 Token.RBRACE
    | '[' -> take 1 Token.LBRACKET
    | ']' -> take 1 Token.RBRACKET
    | ';' -> take 1 Token.SEMI
    | ',' -> take 1 Token.COMMA
    | '@' -> take 1 Token.AT
    | '~' -> take 1 Token.TILDE
    | other ->
        advance st;
        fail st (Printf.sprintf "unexpected character %C" other)
  in
  run ();
  buf

(* Compat wrapper: the boxed located-token list the pre-buffer lexer
   produced.  Kept for the differential oracle, tests and external
   callers; the parser consumes the buffer directly. *)
let tokenize ~file src : (Token.t * Loc.t) list =
  Token_buf.to_list (tokenize_buf ~file src)

let tokenize_buf_file path = tokenize_buf ~file:path (Io.read_file path)

let tokenize_file path = tokenize ~file:path (Io.read_file path)
