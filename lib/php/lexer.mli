(** Hand-written lexer for the PHP subset understood by the tool.

    The lexer alternates between two modes, like PHP itself: outside
    [<?php ... ?>] everything is inline HTML; inside, it produces
    {!Token.t} values.  Double-quoted strings, heredocs and backticks are
    split into interpolation parts here so the parser can rebuild the
    implicit concatenation that WAP's taint analysis must see.

    The scanner is allocation-free on its hot path: it emits into a flat
    {!Token_buf.t}, matches keywords byte-for-byte in place, and
    materializes identifier / literal slices at most once through a
    per-tokenize interning pool (repeated spellings share one string and
    one hashconsed token).  {!Lexer_ref} keeps the old list-building
    lexer as the differential reference. *)

(** Lexical error with its position. *)
exception Error of string * Loc.t

(** [tokenize_buf ~file src] scans a whole source text (HTML and PHP
    segments) into a flat token buffer ending with {!Token.EOF}.  This
    is the hot path the parser consumes directly.

    @raise Error on malformed input (unterminated strings or comments,
    bad characters, malformed literals). *)
val tokenize_buf : file:string -> string -> Token_buf.t

(** [tokenize ~file src] is [tokenize_buf] re-materialized as the boxed
    located-token list of the pre-buffer lexer — a thin compat wrapper
    for tests, oracles and external callers.

    @raise Error as {!tokenize_buf}. *)
val tokenize : file:string -> string -> (Token.t * Loc.t) list

(** Read ({!Io.read_file}) and tokenize a file from disk. *)
val tokenize_buf_file : string -> Token_buf.t

(** Read and tokenize a file from disk (compat list form). *)
val tokenize_file : string -> (Token.t * Loc.t) list
